// bicgstab.hpp — preconditioned BiCGSTAB.
//
// The third standard Krylov method of the substrate (van der Vorst 1992):
// nonsymmetric systems with short recurrences — constant memory where
// GMRES(m) stores m basis vectors. Each iteration applies the
// preconditioner twice, i.e. runs four of the paper's triangular solves
// when M = ILU(0).
#pragma once

#include <span>

#include "solve/cg.hpp"  // SolveReport
#include "solve/precond.hpp"
#include "sparse/csr.hpp"

namespace pdx::solve {

struct BicgstabOptions {
  int max_iterations = 1000;
  double rel_tolerance = 1e-10;
  bool record_history = true;
  /// Trisolve strategy of the ILU(0) preconditioner built by the
  /// pool-taking overload (ignored when a Preconditioner is supplied).
  sparse::ExecutionStrategy strategy = sparse::ExecutionStrategy::kAuto;
};

/// Solve A x = b; x holds the initial guess on entry, the solution on
/// exit. Reports convergence against ||b||.
SolveReport bicgstab(const sparse::Csr& a, std::span<const double> b,
                     std::span<double> x, const Preconditioner& m,
                     const BicgstabOptions& opts = {});

/// Convenience entry point owning its preconditioner: ILU(0) applied
/// through a strategy-polymorphic TrisolvePlan (opts.strategy, default
/// Auto).
SolveReport bicgstab(rt::ThreadPool& pool, const sparse::Csr& a,
                     std::span<const double> b, std::span<double> x,
                     const BicgstabOptions& opts = {});

}  // namespace pdx::solve
