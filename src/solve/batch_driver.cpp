#include "solve/batch_driver.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "solve/gmres.hpp"
#include "solve/vec.hpp"
#include "sparse/spmv.hpp"

namespace pdx::solve {

BatchDriver::BatchDriver(rt::ThreadPool& pool, const sparse::Csr& a,
                         const BatchDriverOptions& opts)
    : pool_(&pool),
      a_(&a),
      opts_(opts),
      m_(pool, a,
         sparse::PlanOptions{.nthreads = opts.nthreads,
                             .reorder = opts.reorder,
                             .strategy = opts.strategy,
                             .layout = opts.layout,
                             .calibration_epochs = opts.calibration_epochs,
                             .use_tuning_cache = opts.use_tuning_cache,
                             .stall_budget = opts.stall_budget,
                             .kernel = opts.kernel,
                             .ulp_tolerance = opts.ulp_tolerance},
         sparse::FactorPlanOptions{
             .nthreads = opts.nthreads,
             .strategy = opts.factor_strategy,
             .calibration_epochs = opts.calibration_epochs,
             .use_tuning_cache = opts.use_tuning_cache,
             .stall_budget = opts.stall_budget,
             .pivot = {},
             .kernel = opts.kernel,
             .ulp_tolerance = opts.ulp_tolerance}) {
  if (opts.max_iterations < 1) {
    throw std::invalid_argument("BatchDriver: max_iterations must be >= 1");
  }
  if (opts.max_attempts < 1) {
    throw std::invalid_argument("BatchDriver: max_attempts must be >= 1");
  }
  if (opts.retry_iteration_factor < 1) {
    throw std::invalid_argument(
        "BatchDriver: retry_iteration_factor must be >= 1");
  }
}

void BatchDriver::enqueue(std::span<const double> b, std::span<double> x) {
  const std::string job = "job " + std::to_string(queue_.size());
  if (static_cast<index_t>(b.size()) < a_->rows ||
      static_cast<index_t>(x.size()) < a_->rows) {
    throw std::invalid_argument(
        "BatchDriver::enqueue: " + job + ": b has " +
        std::to_string(b.size()) + " and x has " + std::to_string(x.size()) +
        " entries but the matrix has " + std::to_string(a_->rows) + " rows");
  }
  if (opts_.screen_nonfinite) {
    for (index_t i = 0; i < a_->rows; ++i) {
      if (!std::isfinite(b[static_cast<std::size_t>(i)])) {
        throw std::invalid_argument("BatchDriver::enqueue: " + job +
                                    ": non-finite b entry at row " +
                                    std::to_string(i));
      }
      if (!std::isfinite(x[static_cast<std::size_t>(i)])) {
        throw std::invalid_argument("BatchDriver::enqueue: " + job +
                                    ": non-finite initial guess at row " +
                                    std::to_string(i));
      }
    }
  }
  queue_.push_back({b, x});
}

void BatchDriver::refactor(const sparse::Csr& a) {
  if (!queue_.empty()) {
    throw std::logic_error(
        "BatchDriver::refactor: queue not empty — drain() the systems "
        "enqueued against the current operator first");
  }
  m_.refactor(a);  // throws on pattern mismatch before any state changes
  a_ = &a;
}

BatchReport BatchDriver::drain() {
  BatchReport rep;
  rep.jobs = queue_.size();
  // Plan telemetry is captured AFTER the solves below: under kAuto the
  // shared plan may calibrate across this very drain (racing strategies
  // on the first preconditioner applications), so the decision the
  // report carries must be the one the drain ended on.
  const auto snapshot_plan = [this, &rep] {
    rep.strategy = m_.plan().strategy();
    rep.strategy_rationale = m_.plan().telemetry().rationale;
    rep.strategy_calibrated = m_.plan().telemetry().race.calibrated;
    rep.tuning_cache_hit = m_.plan().telemetry().race.cache_hit;
    rep.exploration_epochs = m_.plan().telemetry().race.exploration_epochs;
    rep.layout = m_.plan().layout();
    rep.packed_bytes = m_.plan().packed_bytes();
    rep.factor_ms = m_.plan().telemetry().factor_ms;
    rep.factor_strategy = m_.plan().telemetry().factor_strategy;
    rep.refresh_ms = m_.plan().telemetry().refresh_ms;
    rep.isa = m_.plan().telemetry().isa;
    rep.kernel = m_.plan().telemetry().kernel;
    rep.kernel_calibrated = m_.plan().telemetry().kernel_race.calibrated;
  };
  rep.reports.resize(queue_.size());
  if (queue_.empty()) {
    snapshot_plan();
    return rep;
  }

  const rt::DispatchProbe dispatches(*pool_);
  const std::uint64_t plan_solves0 = m_.plan().solves();

  const index_t n = a_->rows;
  const index_t k = static_cast<index_t>(queue_.size());

  // Batched admission screen: r_j = b_j - A x_j for every queued system in
  // ONE pool dispatch. Row arithmetic matches sparse::spmv exactly, so the
  // screen's convergence decision coincides bitwise with the one
  // pcg/bicgstab would make on their own initial residual.
  if (screen_r_.size() < static_cast<std::size_t>(n * k)) {
    screen_r_.resize(static_cast<std::size_t>(n * k));
    screen_x_cols_.resize(static_cast<std::size_t>(k));
    screen_r_cols_.resize(static_cast<std::size_t>(k));
  }
  for (index_t j = 0; j < k; ++j) {
    screen_x_cols_[static_cast<std::size_t>(j)] =
        queue_[static_cast<std::size_t>(j)].x.data();
    screen_r_cols_[static_cast<std::size_t>(j)] = screen_r_.data() + j * n;
  }
  sparse::spmv_batch_parallel(*pool_, *a_, screen_x_cols_.data(),
                              screen_r_cols_.data(), k, opts_.nthreads);

  std::vector<index_t> live;
  live.reserve(queue_.size());
  for (index_t j = 0; j < k; ++j) {
    const Job& job = queue_[static_cast<std::size_t>(j)];
    double* rj = screen_r_.data() + j * n;
    for (index_t i = 0; i < n; ++i) {
      rj[i] = job.b[static_cast<std::size_t>(i)] - rj[i];
    }
    // Norms over the same spans pcg/bicgstab use (the full b span, the
    // n-sized residual), so the screen's verdict and report agree with
    // the single-solve path even for oversized caller spans.
    const double bnorm = norm2(job.b);
    const double rnorm = norm2(std::span<const double>(
        rj, static_cast<std::size_t>(n)));
    const double stop = opts_.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);
    if (rnorm <= stop) {
      // Same answer (and same report) the Krylov methods produce when the
      // initial guess already meets the tolerance: x untouched, zero
      // iterations.
      SolveReport& out = rep.reports[static_cast<std::size_t>(j)];
      out.converged = true;
      out.iterations = 0;
      out.final_relative_residual = bnorm > 0 ? rnorm / bnorm : rnorm;
      if (opts_.record_history) {
        out.residual_history.push_back(out.final_relative_residual);
      }
      ++rep.screened;
    } else {
      live.push_back(j);
    }
  }

  // Krylov drain: every system shares m_'s plan, so each preconditioner
  // application — each iteration of each system — is one fused dispatch
  // with zero allocation inside the plan. Jobs that fail climb the retry
  // ladder (DESIGN.md §12): attempt 2 widens the iteration budget on the
  // same method, attempts 3+ escalate kCg → kBicgstab → kGmres, every
  // attempt warm-started from the previous one's x.
  for (index_t j : live) {
    const Job& job = queue_[static_cast<std::size_t>(j)];
    SolveReport& out = rep.reports[static_cast<std::size_t>(j)];
    KrylovMethod method = opts_.method;
    int attempt = 0;
    for (;;) {
      ++attempt;
      const int budget = attempt == 1 ? opts_.max_iterations
                                      : opts_.max_iterations *
                                            opts_.retry_iteration_factor;
      out = run_attempt(method, job.b, job.x, budget);
      out.attempts = attempt;
      if (out.converged || attempt >= opts_.max_attempts) break;
      if (attempt >= 2) {
        switch (method) {
          case KrylovMethod::kCg:
            method = KrylovMethod::kBicgstab;
            break;
          case KrylovMethod::kBicgstab:
            method = KrylovMethod::kGmres;
            break;
          case KrylovMethod::kGmres:
            break;  // top of the ladder: re-run at the widened budget
        }
      }
    }
    if (attempt > 1) ++rep.retried;
    if (out.breakdown) ++rep.breakdowns;
  }

  for (const SolveReport& sr : rep.reports) {
    if (sr.converged) ++rep.converged;
    rep.total_iterations += static_cast<std::uint64_t>(sr.iterations);
  }
  rep.precond_solves = m_.plan().solves() - plan_solves0;
  rep.pool_dispatches = dispatches.delta();
  rep.degraded_serial = m_.degraded();
  snapshot_plan();
  queue_.clear();
  return rep;
}

SolveReport BatchDriver::run_attempt(KrylovMethod method,
                                     std::span<const double> b,
                                     std::span<double> x,
                                     int max_iterations) {
  switch (method) {
    case KrylovMethod::kCg: {
      CgOptions o;
      o.max_iterations = max_iterations;
      o.rel_tolerance = opts_.rel_tolerance;
      o.record_history = opts_.record_history;
      return pcg(*a_, b, x, m_, o);
    }
    case KrylovMethod::kBicgstab: {
      BicgstabOptions o;
      o.max_iterations = max_iterations;
      o.rel_tolerance = opts_.rel_tolerance;
      o.record_history = opts_.record_history;
      return bicgstab(*a_, b, x, m_, o);
    }
    case KrylovMethod::kGmres: {
      GmresOptions o;
      o.restart = opts_.gmres_restart;
      o.max_iterations = max_iterations;
      o.rel_tolerance = opts_.rel_tolerance;
      o.record_history = opts_.record_history;
      return gmres(*a_, b, x, m_, o);
    }
  }
  throw std::logic_error("BatchDriver: unknown Krylov method");
}

}  // namespace pdx::solve
