/* service_c.h — stable C ABI for the multi-tenant solve service.
 *
 * Embedding contract (DESIGN.md §15): no exceptions, no RTTI, no C++
 * types cross this boundary. Every function returns a pdx_status; error
 * text and statistics land in caller-owned buffers. Handles are opaque
 * and freed with the matching pdx_*_free — never with free().
 *
 * Thread safety matches the C++ Service: pdx_service_submit /
 * pdx_job_wait may be called from any thread concurrently;
 * pdx_service_shutdown and pdx_service_free must not race submissions.
 *
 * Matrices are square CSR with 64-bit indices: ptr has n+1 entries,
 * idx/val have ptr[n] entries, column indices sorted per row with the
 * diagonal present (the ILU(0) requirement).
 *
 * Minimal session:
 *
 *   pdx_service *svc;
 *   pdx_service_options o; pdx_service_options_init(&o);
 *   if (pdx_service_create(&o, &svc) != PDX_OK) ...;
 *   uint64_t id;
 *   pdx_service_register_matrix(svc, n, ptr, idx, val, &id);
 *   char err[256];
 *   pdx_status s = pdx_service_solve(svc, id, b, x, n, 50.0 (deadline ms),
 *                                    err, sizeof err);
 *   pdx_service_shutdown(svc, 1000.0);
 *   pdx_service_free(svc);
 */
#ifndef PDX_SOLVE_SERVICE_C_H_
#define PDX_SOLVE_SERVICE_C_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* ---------------------------------------------------------------- status */

typedef int32_t pdx_status;

enum {
  PDX_OK = 0,
  /* Caller bugs. */
  PDX_ERR_INVALID_ARGUMENT = 1, /* null pointer, bad CSR, bad option   */
  PDX_ERR_UNKNOWN_MATRIX = 2,   /* id was never registered             */
  /* Overload / lifecycle outcomes (the admission-control surface). */
  PDX_ERR_QUEUE_FULL = 3,       /* rejected: reject policy, queue full */
  PDX_ERR_SHED = 4,             /* rejected: evicted by shed-oldest    */
  PDX_ERR_EXPIRED = 5,          /* deadline passed before the solve    */
  PDX_ERR_SHUTDOWN = 6,         /* service draining / already shut down */
  PDX_ERR_DRAIN_TIMEOUT = 7,    /* shutdown: queue not drained in time */
  /* Execution outcomes. */
  PDX_ERR_SOLVE_FAILED = 8,     /* ran but did not converge / faulted  */
  PDX_ERR_PENDING = 9,          /* pdx_job_poll: not finished yet      */
  PDX_ERR_INTERNAL = 10         /* unexpected failure inside the lib   */
};

/* Static name for a status code ("ok", "expired", ...). Never NULL. */
const char *pdx_status_name(pdx_status s);

/* ---------------------------------------------------------------- options */

enum {
  PDX_BACKPRESSURE_BLOCK = 0,      /* block the submitter until space    */
  PDX_BACKPRESSURE_SHED_OLDEST = 1,/* evict the oldest queued job        */
  PDX_BACKPRESSURE_REJECT = 2      /* fail the new job with QUEUE_FULL   */
};

/* 0 / 0.0 in any field means "library default". Always initialize with
 * pdx_service_options_init so new fields stay forward-compatible. */
typedef struct pdx_service_options {
  size_t queue_capacity;     /* bounded submission queue (default 256)  */
  int32_t backpressure;      /* PDX_BACKPRESSURE_* (default BLOCK)      */
  size_t max_batch;          /* same-matrix jobs per strip (default 32) */
  size_t max_live_plans;     /* LRU cap on built plans (default 8)      */
  double default_timeout_ms; /* applied when submit passes timeout < 0  */
  int32_t breaker_threshold; /* failures before the breaker trips (3)   */
  double breaker_backoff_ms; /* initial planned-path retry backoff (50) */
  uint64_t stall_budget;     /* stall watchdog spin rounds (0 = off)    */
  unsigned nthreads;         /* worker pool width (0 = hardware)        */
  double rel_tolerance;      /* Krylov relative tolerance (1e-10)       */
  int32_t max_iterations;    /* per attempt (default 1000)              */
  int32_t max_attempts;      /* retry/escalation ladder length (1)      */
} pdx_service_options;

void pdx_service_options_init(pdx_service_options *o);

/* -------------------------------------------------------------- telemetry */

/* Caller-owned statistics buffer, filled by pdx_service_report. The
 * outcome counters partition `submitted`; `shed` is the subset of
 * `rejected` evicted by the shed-oldest policy. */
typedef struct pdx_service_report {
  uint64_t submitted;
  uint64_t solved;
  uint64_t expired;
  uint64_t rejected;
  uint64_t failed;
  uint64_t shed;
  uint64_t degraded_jobs;      /* served by the serial fallback        */
  uint64_t breaker_trips;
  uint64_t breaker_recoveries;
  uint64_t stalls;
  uint64_t cache_hits;
  uint64_t cache_misses;
  uint64_t cache_evictions;
  uint64_t value_refreshes;
  uint64_t queue_depth;
  uint64_t queue_high_water;
  uint64_t matrices;
  uint64_t live_plans;
  uint64_t latency_samples;
  double p50_ms;               /* submit->solved latency percentiles   */
  double p99_ms;
  double max_ms;
} pdx_service_report;

/* ---------------------------------------------------------------- service */

typedef struct pdx_service pdx_service; /* opaque */
typedef struct pdx_job pdx_job;         /* opaque */

/* Create a service (and its private worker pool). `opts` may be NULL
 * for all defaults. On success *out owns the handle until
 * pdx_service_free. */
pdx_status pdx_service_create(const pdx_service_options *opts,
                              pdx_service **out);

/* Shut the service down (drain up to drain_timeout_ms, then fail the
 * remainder) and release everything. NULL is a no-op. Implies
 * pdx_service_shutdown(svc, 0) if shutdown was never called. */
void pdx_service_free(pdx_service *svc);

/* Register a square n x n CSR matrix (deep-copied). Writes the tenant
 * id to *out_id. The CSR arrays are validated BEFORE anything is copied
 * (ptr[0] == 0, ptr non-decreasing, column indices in [0, n)) and a
 * malformed matrix returns PDX_ERR_INVALID_ARGUMENT — ptr[n] is never
 * trusted as an element count until then. */
pdx_status pdx_service_register_matrix(pdx_service *svc, int64_t n,
                                       const int64_t *ptr, const int64_t *idx,
                                       const double *val, uint64_t *out_id);

/* Adopt new values for matrix `id` (same CSR layout arguments). An
 * unchanged sparsity pattern is applied as a value-only plan refresh;
 * a changed pattern (same n) replaces the matrix and rebuilds plans on
 * demand. Takes effect before the tenant's next batch. */
pdx_status pdx_service_update_values(pdx_service *svc, uint64_t id, int64_t n,
                                     const int64_t *ptr, const int64_t *idx,
                                     const double *val);

/* Enqueue one solve of A[id] x = b (b[0..n) is copied). timeout_ms:
 * < 0 uses options.default_timeout_ms, 0 means no deadline. On success
 * *out_job owns a handle the caller must pdx_job_free (safe at any
 * time; the service keeps the job alive while it runs). A job rejected
 * or expired AT SUBMISSION still returns PDX_OK here — the verdict is
 * delivered by pdx_job_wait, so every submitted job is accounted for
 * the same way. */
pdx_status pdx_service_submit(pdx_service *svc, uint64_t id, const double *b,
                              int64_t n, double timeout_ms, pdx_job **out_job);

/* Block until the job finishes. Returns PDX_OK when solved (and copies
 * the solution into x_out[0..x_len) when x_out != NULL), else the
 * status matching the job's fate (EXPIRED / QUEUE_FULL / SHED /
 * SHUTDOWN / SOLVE_FAILED). x_len must be >= the matrix dimension and
 * never negative — PDX_ERR_INVALID_ARGUMENT otherwise, with nothing
 * written to x_out. err_buf (may be NULL) receives a NUL-terminated
 * diagnostic, truncated to err_cap. */
pdx_status pdx_job_wait(pdx_job *job, double *x_out, int64_t x_len,
                        char *err_buf, size_t err_cap);

/* Non-blocking probe: PDX_ERR_PENDING while running, else the same
 * verdict pdx_job_wait would return (without copying the solution). */
pdx_status pdx_job_poll(pdx_job *job);

/* 1 if the job was served by the degraded (serial fallback) path. Only
 * meaningful once the job is done. */
int32_t pdx_job_degraded(const pdx_job *job);

/* Release the caller's reference to a job handle. NULL is a no-op. */
void pdx_job_free(pdx_job *job);

/* Synchronous convenience: submit + wait + copy x[0..n). */
pdx_status pdx_service_solve(pdx_service *svc, uint64_t id, const double *b,
                             double *x, int64_t n, double timeout_ms,
                             char *err_buf, size_t err_cap);

/* Graceful drain: refuse new submissions, finish what is queued, and
 * past drain_timeout_ms fail the rest. PDX_OK when fully drained,
 * PDX_ERR_DRAIN_TIMEOUT otherwise. Idempotent. */
pdx_status pdx_service_shutdown(pdx_service *svc, double drain_timeout_ms);

/* Fill a caller-owned statistics buffer. */
pdx_status pdx_service_get_report(pdx_service *svc, pdx_service_report *out);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* PDX_SOLVE_SERVICE_C_H_ */
