#include "solve/precond.hpp"

#include <numeric>
#include <stdexcept>

#include "sparse/permute.hpp"
#include "sparse/trisolve.hpp"
#include "solve/vec.hpp"

namespace pdx::solve {

JacobiPreconditioner::JacobiPreconditioner(const sparse::Csr& a) {
  if (a.rows != a.cols) throw std::invalid_argument("jacobi: not square");
  inv_diag_.resize(static_cast<std::size_t>(a.rows));
  for (index_t i = 0; i < a.rows; ++i) {
    const double d = a.at(i, i);
    if (d == 0.0) throw std::invalid_argument("jacobi: zero diagonal");
    inv_diag_[static_cast<std::size_t>(i)] = 1.0 / d;
  }
}

void JacobiPreconditioner::apply(std::span<const double> r,
                                 std::span<double> z) const {
  for (std::size_t i = 0; i < inv_diag_.size(); ++i) {
    z[i] = r[i] * inv_diag_[i];
  }
}

Ilu0Preconditioner::Ilu0Preconditioner(const sparse::Csr& a)
    : f_(sparse::ilu0(a)), tmp_(static_cast<std::size_t>(a.rows)) {}

void Ilu0Preconditioner::apply(std::span<const double> r,
                               std::span<double> z) const {
  sparse::trisolve_lower_seq(f_.l, r, tmp_);
  sparse::trisolve_upper_seq(f_.u, tmp_, z);
}

DoacrossIlu0Preconditioner::DoacrossIlu0Preconditioner(
    rt::ThreadPool& pool, const sparse::Csr& a, bool reorder,
    unsigned nthreads, sparse::ExecutionStrategy strategy,
    sparse::PlanLayout layout)
    : DoacrossIlu0Preconditioner(
          pool, a,
          sparse::PlanOptions{.nthreads = nthreads,
                              .reorder = reorder,
                              .strategy = strategy,
                              .layout = layout},
          sparse::FactorPlanOptions{.nthreads = nthreads}) {}

DoacrossIlu0Preconditioner::DoacrossIlu0Preconditioner(
    rt::ThreadPool& pool, const sparse::Csr& a,
    const sparse::PlanOptions& plan_opts,
    const sparse::FactorPlanOptions& factor_opts)
    : pool_(&pool),
      nthreads_(plan_opts.nthreads),
      factor_opts_(factor_opts),
      f_(sparse::ilu0(a)),
      plan_(pool, f_.l, f_.u, plan_opts) {}

void DoacrossIlu0Preconditioner::refactor(const sparse::Csr& a) {
  // Symbolic phase, once per pattern: scatter maps, diagonal positions,
  // the doacross schedule of the elimination, strategy selection. Built
  // lazily into a local so a first refactor with the WRONG pattern — the
  // factorize() below validates `a`'s plan against the ctor matrix's
  // factors — throws without retaining a plan for the wrong pattern.
  std::unique_ptr<sparse::FactorPlan> fresh;
  sparse::FactorPlan* fp = factor_plan_.get();
  if (!fp) {
    fresh = std::make_unique<sparse::FactorPlan>(*pool_, a, factor_opts_);
    fresh->set_fault_injector(injector_);
    fp = fresh.get();
  }
  const sparse::FactorStats fs = fp->factorize(a, f_);
  if (fresh) factor_plan_ = std::move(fresh);
  plan_.record_factorization(fs.factor_seconds * 1e3, fp->strategy());
  plan_.refresh_values(f_);
}

void DoacrossIlu0Preconditioner::set_fault_injector(
    rt::FaultInjector* injector) noexcept {
  injector_ = injector;
  plan_.set_fault_injector(injector);
  if (factor_plan_) factor_plan_->set_fault_injector(injector);
}

void DoacrossIlu0Preconditioner::apply_seq(std::span<const double> r,
                                           std::span<double> z) const {
  // Graceful degradation (DESIGN.md §12): the parallel plan is poisoned
  // but the FACTORS are intact, so the sequential Fig. 7 loops — the very
  // arithmetic the plan is bitwise-gated against — keep serving correct
  // answers at sequential speed until the caller rebuilds.
  fb_tmp_.resize(r.size());
  sparse::trisolve_lower_seq(f_.l, r, fb_tmp_);
  sparse::trisolve_upper_seq(f_.u, fb_tmp_, z);
  ++fallbacks_;
}

void DoacrossIlu0Preconditioner::apply(std::span<const double> r,
                                       std::span<double> z) const {
  if (!plan_.poisoned()) {
    try {
      plan_.solve(r, z);
      return;
    } catch (...) {
      // The faulting solve left z garbage. If the fault poisoned the
      // plan, recompute this very application sequentially; anything
      // else (bad arguments, ...) is the caller's problem.
      if (!plan_.poisoned()) throw;
    }
  }
  apply_seq(r, z);
}

void DoacrossIlu0Preconditioner::apply_batch(std::span<const double> r,
                                             std::span<double> z, index_t k,
                                             sparse::BatchMode mode) const {
  if (!plan_.poisoned()) {
    try {
      plan_.solve_batch(r, z, k, mode);
      return;
    } catch (...) {
      if (!plan_.poisoned()) throw;
    }
  }
  const index_t n = plan_.rows();
  for (index_t c = 0; c < k; ++c) {
    apply_seq(r.subspan(static_cast<std::size_t>(c * n),
                        static_cast<std::size_t>(n)),
              z.subspan(static_cast<std::size_t>(c * n),
                        static_cast<std::size_t>(n)));
  }
}

void DoacrossIlu0Preconditioner::apply_batch(const double* const* r_cols,
                                             double* const* z_cols, index_t k,
                                             sparse::BatchMode mode) const {
  if (!plan_.poisoned()) {
    try {
      plan_.solve_batch(r_cols, z_cols, k, mode);
      return;
    } catch (...) {
      if (!plan_.poisoned()) throw;
    }
  }
  const std::size_t n = static_cast<std::size_t>(plan_.rows());
  for (index_t c = 0; c < k; ++c) {
    apply_seq(std::span<const double>(r_cols[c], n),
              std::span<double>(z_cols[c], n));
  }
}

}  // namespace pdx::solve
