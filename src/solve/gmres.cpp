#include "solve/gmres.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "solve/vec.hpp"
#include "sparse/spmv.hpp"

namespace pdx::solve {

SolveReport gmres(const sparse::Csr& a, std::span<const double> b,
                  std::span<double> x, const Preconditioner& m,
                  const GmresOptions& opts) {
  if (a.rows != a.cols) throw std::invalid_argument("gmres: not square");
  const std::size_t n = static_cast<std::size_t>(a.rows);
  if (b.size() < n || x.size() < n) {
    throw std::invalid_argument("gmres: vector size mismatch");
  }
  const int mdim = opts.restart;
  if (mdim < 1) throw std::invalid_argument("gmres: restart must be >= 1");

  const double bnorm = norm2(b);
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  SolveReport rep;
  std::vector<double> r(n), w(n), zv(n);

  // Krylov basis (mdim + 1 vectors) and Hessenberg in column-major-ish
  // h[j] holds column j (entries 0..j+1).
  std::vector<std::vector<double>> v(static_cast<std::size_t>(mdim) + 1,
                                     std::vector<double>(n));
  std::vector<std::vector<double>> h(static_cast<std::size_t>(mdim),
                                     std::vector<double>(static_cast<std::size_t>(mdim) + 1, 0.0));
  std::vector<double> cs(static_cast<std::size_t>(mdim), 0.0);
  std::vector<double> sn(static_cast<std::size_t>(mdim), 0.0);
  std::vector<double> g(static_cast<std::size_t>(mdim) + 1, 0.0);

  int total_iters = 0;
  double rnorm = 0.0;

  while (total_iters < opts.max_iterations) {
    // r = b - A x
    sparse::spmv(a, x, r);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    rnorm = norm2(r);
    if (rep.residual_history.empty() && opts.record_history) {
      rep.residual_history.push_back(bnorm > 0 ? rnorm / bnorm : rnorm);
    }
    if (rnorm <= stop) {
      rep.converged = true;
      break;
    }

    for (std::size_t i = 0; i < n; ++i) v[0][i] = r[i] / rnorm;
    fill(g, 0.0);
    g[0] = rnorm;

    int j = 0;
    for (; j < mdim && total_iters < opts.max_iterations; ++j, ++total_iters) {
      // w = A M⁻¹ v_j (right preconditioning)
      m.apply(v[static_cast<std::size_t>(j)], zv);
      sparse::spmv(a, zv, w);

      // Modified Gram-Schmidt
      for (int i = 0; i <= j; ++i) {
        const double hij = dot(w, v[static_cast<std::size_t>(i)]);
        h[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = hij;
        axpy(-hij, v[static_cast<std::size_t>(i)], w);
      }
      const double hnext = norm2(w);
      h[static_cast<std::size_t>(j)][static_cast<std::size_t>(j) + 1] = hnext;
      if (hnext > 0.0) {
        for (std::size_t i = 0; i < n; ++i) {
          v[static_cast<std::size_t>(j) + 1][i] = w[i] / hnext;
        }
      }

      // Apply previous Givens rotations to the new column.
      for (int i = 0; i < j; ++i) {
        const double t = cs[static_cast<std::size_t>(i)] * h[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] +
                         sn[static_cast<std::size_t>(i)] * h[static_cast<std::size_t>(j)][static_cast<std::size_t>(i) + 1];
        h[static_cast<std::size_t>(j)][static_cast<std::size_t>(i) + 1] =
            -sn[static_cast<std::size_t>(i)] * h[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] +
            cs[static_cast<std::size_t>(i)] * h[static_cast<std::size_t>(j)][static_cast<std::size_t>(i) + 1];
        h[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = t;
      }
      // New rotation to annihilate h(j+1, j).
      const double hjj = h[static_cast<std::size_t>(j)][static_cast<std::size_t>(j)];
      const double hj1 = h[static_cast<std::size_t>(j)][static_cast<std::size_t>(j) + 1];
      const double denom = std::hypot(hjj, hj1);
      if (denom == 0.0) {
        cs[static_cast<std::size_t>(j)] = 1.0;
        sn[static_cast<std::size_t>(j)] = 0.0;
      } else {
        cs[static_cast<std::size_t>(j)] = hjj / denom;
        sn[static_cast<std::size_t>(j)] = hj1 / denom;
      }
      h[static_cast<std::size_t>(j)][static_cast<std::size_t>(j)] = denom;
      h[static_cast<std::size_t>(j)][static_cast<std::size_t>(j) + 1] = 0.0;

      const double gj = g[static_cast<std::size_t>(j)];
      g[static_cast<std::size_t>(j)] = cs[static_cast<std::size_t>(j)] * gj;
      g[static_cast<std::size_t>(j) + 1] = -sn[static_cast<std::size_t>(j)] * gj;

      rnorm = std::fabs(g[static_cast<std::size_t>(j) + 1]);
      rep.iterations = total_iters + 1;
      if (opts.record_history) {
        rep.residual_history.push_back(bnorm > 0 ? rnorm / bnorm : rnorm);
      }
      if (rnorm <= stop) {
        ++j;
        ++total_iters;
        break;
      }
    }

    // Back-substitute the j x j triangular system for the update weights.
    std::vector<double> yk(static_cast<std::size_t>(j), 0.0);
    for (int i = j - 1; i >= 0; --i) {
      double acc = g[static_cast<std::size_t>(i)];
      for (int k = i + 1; k < j; ++k) {
        acc -= h[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] * yk[static_cast<std::size_t>(k)];
      }
      yk[static_cast<std::size_t>(i)] = acc / h[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
    }
    // x += M⁻¹ (V y)
    fill(w, 0.0);
    for (int i = 0; i < j; ++i) {
      axpy(yk[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i)], w);
    }
    m.apply(w, zv);
    axpy(1.0, zv, x);

    if (rnorm <= stop) {
      rep.converged = true;
      break;
    }
  }

  rep.final_relative_residual = bnorm > 0 ? rnorm / bnorm : rnorm;
  return rep;
}

SolveReport gmres(rt::ThreadPool& pool, const sparse::Csr& a,
                  std::span<const double> b, std::span<double> x,
                  const GmresOptions& opts) {
  const DoacrossIlu0Preconditioner m(pool, a, /*reorder=*/true,
                                     /*nthreads=*/0, opts.strategy);
  return gmres(a, b, x, m, opts);
}

}  // namespace pdx::solve
