#include "solve/bicgstab.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "solve/vec.hpp"
#include "sparse/spmv.hpp"

namespace pdx::solve {

SolveReport bicgstab(const sparse::Csr& a, std::span<const double> b,
                     std::span<double> x, const Preconditioner& m,
                     const BicgstabOptions& opts) {
  if (a.rows != a.cols) throw std::invalid_argument("bicgstab: not square");
  const std::size_t n = static_cast<std::size_t>(a.rows);
  if (b.size() < n || x.size() < n) {
    throw std::invalid_argument("bicgstab: vector size mismatch");
  }

  std::vector<double> r(n), r0(n), p(n), v(n), s(n), t(n), phat(n), shat(n);

  sparse::spmv(a, x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  copy(r, r0);  // shadow residual

  const double bnorm = norm2(b);
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  SolveReport rep;
  double rnorm = norm2(r);
  if (opts.record_history) {
    rep.residual_history.push_back(bnorm > 0 ? rnorm / bnorm : rnorm);
  }
  if (rnorm <= stop) {
    rep.converged = true;
    rep.final_relative_residual = bnorm > 0 ? rnorm / bnorm : rnorm;
    return rep;
  }

  double rho_prev = 1.0, alpha = 1.0, omega = 1.0;
  fill(p, 0.0);
  fill(v, 0.0);

  for (int it = 0; it < opts.max_iterations; ++it) {
    const double rho = dot(r0, r);
    if (rho == 0.0 || !std::isfinite(rho)) {
      rep.breakdown = true;
      rep.breakdown_reason = "rho = (r0, r) zero or non-finite";
      break;
    }

    if (it == 0) {
      copy(r, p);
    } else {
      const double beta = (rho / rho_prev) * (alpha / omega);
      // p = r + beta (p - omega v)
      for (std::size_t i = 0; i < n; ++i) {
        p[i] = r[i] + beta * (p[i] - omega * v[i]);
      }
    }

    m.apply(p, phat);
    sparse::spmv(a, phat, v);
    const double denom = dot(r0, v);
    if (denom == 0.0 || !std::isfinite(denom)) {
      rep.breakdown = true;
      rep.breakdown_reason = "(r0, A p^) denominator zero or non-finite";
      break;
    }
    alpha = rho / denom;

    // s = r - alpha v
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];

    rnorm = norm2(s);
    if (rnorm <= stop) {
      axpy(alpha, phat, x);
      rep.iterations = it + 1;
      if (opts.record_history) {
        rep.residual_history.push_back(bnorm > 0 ? rnorm / bnorm : rnorm);
      }
      rep.converged = true;
      break;
    }

    m.apply(s, shat);
    sparse::spmv(a, shat, t);
    const double tt = dot(t, t);
    if (tt == 0.0) {
      rep.breakdown = true;
      rep.breakdown_reason = "(t, t) is zero";
      break;
    }
    omega = dot(t, s) / tt;
    if (omega == 0.0 || !std::isfinite(omega)) {
      rep.breakdown = true;
      rep.breakdown_reason = "omega zero or non-finite";
      break;
    }

    // x += alpha phat + omega shat;  r = s - omega t
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * phat[i] + omega * shat[i];
      r[i] = s[i] - omega * t[i];
    }

    rnorm = norm2(r);
    rep.iterations = it + 1;
    if (opts.record_history) {
      rep.residual_history.push_back(bnorm > 0 ? rnorm / bnorm : rnorm);
    }
    if (rnorm <= stop) {
      rep.converged = true;
      break;
    }
    rho_prev = rho;
  }

  rep.final_relative_residual = bnorm > 0 ? rnorm / bnorm : rnorm;
  return rep;
}

SolveReport bicgstab(rt::ThreadPool& pool, const sparse::Csr& a,
                     std::span<const double> b, std::span<double> x,
                     const BicgstabOptions& opts) {
  const DoacrossIlu0Preconditioner m(pool, a, /*reorder=*/true,
                                     /*nthreads=*/0, opts.strategy);
  return bicgstab(a, b, x, m, opts);
}

}  // namespace pdx::solve
