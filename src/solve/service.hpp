// service.hpp — overload-safe multi-tenant solve service (DESIGN.md §15).
//
// The serving front end the ROADMAP's north star asks for, built as a
// robustness layer first: a server that melts under a burst, hangs on a
// stuck solve, or aborts the process on one bad matrix is worse than no
// server. The §12 containment machinery makes individual solves
// fail-safe; Service makes the *service* around them fail-safe:
//
//   admission     bounded MPSC submission queue with an explicit
//                 backpressure policy — block the submitter, shed the
//                 oldest queued job, or reject the new one with an error.
//                 Nothing ever queues unboundedly.
//   deadlines     every job may carry one. A deadline that has already
//                 passed at submission is rejected without touching the
//                 queue; a job whose deadline passes while queued is
//                 expired at dequeue, never solved. Hangs *during*
//                 execution are bounded by the §12 stall watchdog
//                 (ServiceOptions::stall_budget), whose rt::StallError is
//                 annotated with the tenant and strategy context.
//   isolation     one scheduler thread packs same-matrix jobs into
//                 solve_batch strips through per-tenant BatchDrivers over
//                 ONE shared pool; a fault inside tenant A's plan drains
//                 A's region, poisons A's plan, and leaves every other
//                 tenant's results bitwise untouched (§12).
//   breaker       repeated infrastructure failures (PlanPoisonedError,
//                 injected faults, stalls, pivot blowups) on one tenant
//                 trip a per-matrix circuit breaker: the tenant degrades
//                 to an exact serial fallback driver (no parallel region
//                 to fault) while the planned path is retried with
//                 exponential backoff; success closes the breaker.
//   plan cache    per-tenant (FactorPlan, TrisolvePlan) pairs — inside
//                 their BatchDriver — are LRU-capped across tenants;
//                 update_values() with an unchanged sparsity pattern is a
//                 value-only refresh (FactorPlan numeric pass + packed
//                 stream repack), never a plan rebuild.
//   shutdown      graceful drain with a hard timeout: new submissions
//                 are rejected, queued jobs are drained, and past the
//                 timeout the remainder is rejected loudly.
//
// Accounting is exact by construction: every submitted job is finalized
// into exactly one of {solved, rejected, expired, failed} — the counters
// in ServiceReport partition `submitted`.
//
// The whole object is exported behind an exception-free stable C ABI in
// solve/service_c.h.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/failure.hpp"
#include "runtime/thread_pool.hpp"
#include "solve/batch_driver.hpp"
#include "sparse/csr.hpp"

namespace pdx::solve {

/// Tenant key: returned by register_matrix, named by every job.
using MatrixId = std::uint64_t;

/// What submit() does when the bounded queue is full.
enum class BackpressurePolicy : std::uint8_t {
  kBlock,      ///< block the submitting thread until space (or shutdown)
  kShedOldest, ///< evict the oldest queued job (it fails as rejected/shed)
  kReject,     ///< fail the NEW job immediately with queue-full
};

inline const char* to_string(BackpressurePolicy p) noexcept {
  switch (p) {
    case BackpressurePolicy::kBlock: return "block";
    case BackpressurePolicy::kShedOldest: return "shed-oldest";
    case BackpressurePolicy::kReject: return "reject";
  }
  return "?";
}

/// Terminal state of a job. Every submitted job reaches exactly one.
enum class JobOutcome : std::uint8_t {
  kPending,   ///< not finalized yet (never returned by wait())
  kSolved,    ///< converged; solution available
  kExpired,   ///< deadline passed before the solve ran
  kRejected,  ///< never executed: backpressure shed/reject or shutdown
  kFailed,    ///< executed but did not produce a converged answer
};

inline const char* to_string(JobOutcome o) noexcept {
  switch (o) {
    case JobOutcome::kPending: return "pending";
    case JobOutcome::kSolved: return "solved";
    case JobOutcome::kExpired: return "expired";
    case JobOutcome::kRejected: return "rejected";
    case JobOutcome::kFailed: return "failed";
  }
  return "?";
}

/// Why a kRejected job was rejected (kNone otherwise).
enum class RejectReason : std::uint8_t {
  kNone,
  kQueueFull,  ///< kReject policy, queue at capacity
  kShed,       ///< kShedOldest policy evicted it to admit a newer job
  kShutdown,   ///< submitted or still queued during/after shutdown
};

inline const char* to_string(RejectReason r) noexcept {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue-full";
    case RejectReason::kShed: return "shed";
    case RejectReason::kShutdown: return "shutdown";
  }
  return "?";
}

/// Per-matrix circuit breaker state (DESIGN.md §15).
enum class BreakerState : std::uint8_t {
  kClosed,   ///< healthy: jobs run the planned (parallel) path
  kOpen,     ///< tripped: jobs run the serial fallback until the backoff
  kHalfOpen, ///< backoff elapsed: the next strip probes the planned path
};

inline const char* to_string(BreakerState s) noexcept {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

struct ServiceOptions {
  /// Submission queue capacity (jobs). Admission control is the point:
  /// must be >= 1.
  std::size_t queue_capacity = 256;
  /// What submit() does when the queue is full.
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Jobs per same-matrix strip the scheduler packs into one
  /// BatchDriver drain (the solve_batch screen covers the whole strip in
  /// one dispatch).
  std::size_t max_batch = 32;
  /// LRU cap on tenants with LIVE plans (FactorPlan + TrisolvePlan +
  /// packed streams). Registering more matrices is fine — their plans are
  /// rebuilt on demand (a cache miss) when traffic returns to them.
  std::size_t max_live_plans = 8;
  /// Deadline applied when submit() passes timeout_ms < 0. 0 = none.
  double default_timeout_ms = 0.0;
  /// Consecutive infrastructure failures (faults, stalls, poisoned
  /// plans, build blowups) on one tenant before its breaker trips.
  int breaker_threshold = 3;
  /// Initial planned-path retry backoff once tripped; doubles on every
  /// failed probe up to breaker_backoff_max_ms.
  double breaker_backoff_ms = 50.0;
  double breaker_backoff_max_ms = 5000.0;
  /// Stall watchdog budget (spin rounds per in-region wait) armed on
  /// every tenant's plans; 0 disarms. With a wedged producer this is
  /// what turns "service hangs" into "job fails with an annotated
  /// rt::StallError and the breaker counts it".
  std::uint64_t stall_budget = 0;
  /// After the drain timeout forces a hard stop, how long shutdown()
  /// waits for the scheduler to finish its current strip before breaking
  /// a wedged pool region via rt::ThreadPool::shutdown (which kills the
  /// pool for good — last resort, but it bounds teardown even with the
  /// stall watchdog disarmed and a worker spinning forever).
  double stop_grace_ms = 5000.0;
  /// Completed-job latency samples kept for the p50/p99 report (ring).
  std::size_t latency_window = 1 << 16;
  /// Per-tenant solver configuration (method, tolerance, strategy,
  /// calibration, retry ladder). stall_budget above overrides the
  /// solver's when non-zero.
  BatchDriverOptions solver;
};

/// Everything wait() tells the caller about one finished job.
struct JobResult {
  JobOutcome outcome = JobOutcome::kPending;
  RejectReason reject_reason = RejectReason::kNone;
  /// Empty iff kSolved: deadline diagnostics, backpressure reason, or the
  /// solver/infrastructure error (StallErrors arrive annotated with the
  /// tenant's strategy and matrix id).
  std::string error;
  /// The Krylov report when the job executed (kSolved / kFailed).
  SolveReport report;
  /// Served by the breaker's serial fallback path.
  bool degraded = false;
  double queue_ms = 0.0;  ///< submit -> dequeue
  double solve_ms = 0.0;  ///< dequeue -> finalize (0 if never executed)
  double total_ms = 0.0;  ///< submit -> finalize
};

/// Aggregate service telemetry. The outcome counters partition
/// `submitted` (solved + expired + rejected + failed == submitted once
/// the queue is idle); `shed` is the subset of `rejected` evicted by the
/// kShedOldest policy.
struct ServiceReport {
  std::uint64_t submitted = 0;
  std::uint64_t solved = 0;
  std::uint64_t expired = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed = 0;

  std::uint64_t degraded_jobs = 0;      ///< solved/failed via fallback
  std::uint64_t breaker_trips = 0;      ///< transitions to kOpen
  std::uint64_t breaker_recoveries = 0; ///< half-open probe successes
  std::uint64_t stalls = 0;             ///< jobs failed on rt::StallError

  std::uint64_t cache_hits = 0;       ///< strip found its plans live
  std::uint64_t cache_misses = 0;     ///< strip had to (re)build plans
  std::uint64_t cache_evictions = 0;  ///< LRU evicted a tenant's plans
  std::uint64_t value_refreshes = 0;  ///< pattern-hit value-only updates

  std::size_t queue_depth = 0;       ///< now
  std::size_t queue_high_water = 0;  ///< max depth ever observed
  std::size_t matrices = 0;          ///< registered tenants
  std::size_t live_plans = 0;        ///< tenants with plans built

  std::uint64_t latency_samples = 0;  ///< completed solves measured
  double p50_ms = 0.0;                ///< submit->solved latency median
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Per-tenant diagnostics (plans + breaker), for dashboards and tests.
struct MatrixInfo {
  bool live = false;  ///< plans currently built
  sparse::ExecutionStrategy strategy = sparse::ExecutionStrategy::kAuto;
  sparse::PlanLayout layout = sparse::PlanLayout::kAuto;
  double factor_ms = 0.0;
  double refresh_ms = 0.0;
  std::uint64_t refreshes = 0;
  BreakerState breaker = BreakerState::kClosed;
  int consecutive_failures = 0;
  double backoff_ms = 0.0;
};

class Service;

/// Handle to one submitted job. Shared between the caller and the
/// scheduler; safe to wait() from any thread, any number of times.
class ServiceJob {
 public:
  MatrixId matrix_id() const noexcept { return matrix_; }

  /// Block until the job is finalized and return its result. Subsequent
  /// calls return the same result without blocking.
  JobResult wait();

  /// Non-blocking: true once finalized.
  bool done() const;

  /// The solution vector; valid (and stable) once wait() reported
  /// kSolved. Empty span otherwise.
  std::span<const double> solution() const;

 private:
  friend class Service;
  using Clock = std::chrono::steady_clock;

  MatrixId matrix_ = 0;
  std::vector<double> b_;
  std::vector<double> x_;
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  Clock::time_point submitted_at_{};
  Clock::time_point dequeued_at_{};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool claimed_ = false;  // finalize() in progress or done (once-only)
  JobResult result_;      // result_.outcome != kPending once finalized
};

using JobHandle = std::shared_ptr<ServiceJob>;

class Service {
 public:
  /// The service shares `pool` with nobody: its scheduler thread is the
  /// pool's only caller while the service is alive (parallel regions are
  /// not reentrant). The pool must outlive the service.
  Service(rt::ThreadPool& pool, const ServiceOptions& opts = {});

  /// Hard shutdown (drain timeout 0) if the caller never called
  /// shutdown(); every still-queued job is finalized as rejected.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Register a tenant matrix (copied). Plans are built lazily on the
  /// first strip that needs them — registration itself never touches the
  /// pool. Throws std::invalid_argument on a non-square or malformed
  /// matrix, std::logic_error after shutdown.
  MatrixId register_matrix(const sparse::Csr& a);

  /// Adopt new matrix values for `id`. With an UNCHANGED sparsity
  /// pattern this is the plan-cache pattern hit: the scheduler applies a
  /// value-only refresh (FactorPlan numeric pass + packed-stream repack,
  /// no plan rebuild) before the tenant's next strip. A changed pattern
  /// replaces the matrix and invalidates the plans (rebuilt on demand).
  /// Jobs drained after this call are solved against the new operator.
  void update_values(MatrixId id, const sparse::Csr& a);

  /// Enqueue one solve of A[id] x = b (b is copied; the service owns the
  /// solution buffer — read it via ServiceJob::solution()).
  ///
  /// timeout_ms: < 0 -> ServiceOptions::default_timeout_ms; 0 -> no
  /// deadline; > 0 -> deadline = now + timeout_ms.
  ///
  /// Admission control runs here: a full queue blocks/sheds/rejects per
  /// the configured policy, and a deadline that is already unmeetable is
  /// expired immediately without queueing. Throws std::invalid_argument
  /// for an unknown id or an undersized b (caller bugs, not overload).
  JobHandle submit(MatrixId id, std::span<const double> b,
                   double timeout_ms = -1.0);

  /// submit() with an absolute deadline (the expired-at-enqueue path is
  /// directly testable through this overload).
  JobHandle submit_at(MatrixId id, std::span<const double> b,
                      std::chrono::steady_clock::time_point deadline);

  /// Synchronous convenience: submit + wait; on kSolved the solution is
  /// copied into `x` (which must hold >= rows entries).
  JobResult solve(MatrixId id, std::span<const double> b,
                  std::span<double> x, double timeout_ms = -1.0);

  /// Graceful drain: reject new submissions, let the scheduler finish
  /// everything already queued, and — past `drain_timeout_ms` — stop it
  /// and finalize the remainder as rejected (shutdown). Returns true if
  /// the queue fully drained in time. Idempotent; the destructor calls
  /// shutdown(0).
  ///
  /// Teardown is bounded even when a strip is wedged inside a pool
  /// region (stall watchdog disarmed, worker spinning forever): after
  /// ServiceOptions::stop_grace_ms the wedged region is broken via
  /// rt::ThreadPool::shutdown — the strip's jobs fail with the
  /// PoolShutdownError text, the pool is dead afterwards, and any state
  /// the abandoned workers might still touch (plans, job buffers,
  /// tenants) is parked immortally rather than freed.
  bool shutdown(double drain_timeout_ms);

  /// Aggregate telemetry snapshot (cheap; taken under the stat locks).
  ServiceReport report() const;

  /// Per-tenant plan + breaker diagnostics.
  MatrixInfo matrix_info(MatrixId id) const;

  /// Freeze / unfreeze the scheduler's dequeue loop. An operational
  /// maintenance valve — and the deterministic way for tests to fill the
  /// bounded queue and observe each backpressure policy. Draining
  /// shutdown overrides a pause.
  void pause();
  void resume();

  /// Attach a fault-injection harness to one tenant (tests only): wired
  /// into the tenant's PLANNED driver whenever it is (re)built — never
  /// into the serial fallback, which exists to be immune. nullptr
  /// detaches.
  void set_fault_injector(MatrixId id, rt::FaultInjector* injector);

  std::size_t queue_depth() const;
  const ServiceOptions& options() const noexcept { return opts_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Tenant {
    MatrixId id = 0;
    mutable std::mutex mu;  // guards everything below
    sparse::Csr a;          // the operator jobs are solved against
    std::unique_ptr<BatchDriver> driver;    // planned path (may be null)
    std::unique_ptr<BatchDriver> fallback;  // serial exact path (lazy)
    rt::FaultInjector* injector = nullptr;

    // Pending update_values payload, applied by the scheduler before the
    // tenant's next strip (clients must not run pool regions).
    bool has_pending = false;
    bool pending_same_pattern = false;
    sparse::Csr pending;

    std::uint64_t refreshes = 0;  // value-only refreshes applied

    // Circuit breaker.
    BreakerState breaker = BreakerState::kClosed;
    int consecutive_failures = 0;
    double backoff_ms = 0.0;
    Clock::time_point retry_at{};

    std::uint64_t last_used = 0;  // LRU tick
  };

  void scheduler_main();
  void process_strip(Tenant& t, std::vector<JobHandle>& strip);
  /// Apply a pending update_values payload (value refresh or pattern
  /// swap). Caller holds t.mu.
  void apply_pending_update(Tenant& t);
  /// Make t.driver live (LRU bookkeeping + lazy build). Caller holds
  /// t.mu; throws what the build throws.
  void ensure_driver(Tenant& t);
  void ensure_fallback(Tenant& t);
  /// Evict the least-recently-used OTHER tenant's plans if the live-plan
  /// count is at the cap. Caller holds t.mu (victim mu acquired inside).
  void evict_for(Tenant& t);
  /// Reset t.driver and keep the live-plan count honest. Caller holds
  /// t.mu.
  void drop_driver(Tenant& t);
  /// The pool abandoned wedged workers mid-region: park the tenant's
  /// drivers and the strip's job handles immortally (an abandoned worker
  /// may still be touching them — freeing would be use-after-free).
  /// Caller holds t.mu.
  void quarantine(Tenant& t, const std::vector<JobHandle>& live);
  BatchDriverOptions planned_driver_opts() const;

  bool breaker_allows_planned(Tenant& t, Clock::time_point now);
  void breaker_note_failure(Tenant& t, Clock::time_point now);
  void breaker_note_success(Tenant& t);

  JobHandle make_job(MatrixId id, std::span<const double> b, index_t n,
                     bool has_deadline, Clock::time_point deadline);
  /// Finalize exactly once: set the outcome, bump the matching counter,
  /// record latency for solved jobs, wake waiters.
  void finalize(const JobHandle& job, JobOutcome outcome, RejectReason why,
                std::string error, const SolveReport* report, bool degraded);
  void record_latency(double ms);

  Tenant* find_tenant(MatrixId id) const;

  rt::ThreadPool* pool_;
  ServiceOptions opts_;

  mutable std::mutex tenants_mu_;
  std::unordered_map<MatrixId, std::unique_ptr<Tenant>> tenants_;
  MatrixId next_id_ = 1;
  std::size_t live_plans_ = 0;   // guarded by tenants_mu_
  std::uint64_t lru_tick_ = 0;   // guarded by tenants_mu_

  mutable std::mutex qmu_;
  std::condition_variable cv_jobs_;   // scheduler wakeups
  std::condition_variable cv_space_;  // blocked submitters
  std::condition_variable cv_done_;   // shutdown waiting on the scheduler
  std::deque<JobHandle> queue_;
  bool draining_ = false;   // no new submissions; scheduler empties queue
  bool stop_ = false;       // hard stop: scheduler exits ASAP
  bool paused_ = false;
  bool sched_done_ = false;
  bool shutdown_ran_ = false;
  std::size_t high_water_ = 0;

  // The pool abandoned workers (PoolShutdownError seen by the scheduler
  // or thrown by our own stop-grace break). The destructor then parks the
  // tenants immortally instead of freeing state a detached worker may
  // still touch.
  std::atomic<bool> pool_abandoned_{false};

  std::thread scheduler_;

  // Outcome counters. Atomics: bumped from submit (client threads) and
  // the scheduler concurrently.
  std::atomic<std::uint64_t> submitted_{0}, solved_{0}, expired_{0},
      rejected_{0}, failed_{0}, shed_{0}, degraded_jobs_{0},
      breaker_trips_{0}, breaker_recoveries_{0}, stalls_{0}, cache_hits_{0},
      cache_misses_{0}, cache_evictions_{0}, value_refreshes_{0};

  mutable std::mutex lat_mu_;
  std::vector<double> latencies_;  // ring of the last latency_window
  std::size_t lat_next_ = 0;
  std::uint64_t lat_count_ = 0;
  double lat_max_ = 0.0;
};

}  // namespace pdx::solve
