// service_c.cpp — the C ABI (service_c.h) over solve::Service.
//
// Every entry point is wrapped in catch-all: no exception may cross the
// C boundary. Handles are heap-allocated wrapper structs; pdx_job holds
// a shared_ptr so the service and the C caller can release in either
// order.
#include "solve/service_c.h"

#include <cstring>
#include <exception>
#include <memory>
#include <new>
#include <string>

#include "runtime/thread_pool.hpp"
#include "solve/service.hpp"
#include "sparse/csr.hpp"

using pdx::index_t;

struct pdx_service {
  std::unique_ptr<pdx::rt::ThreadPool> pool;
  std::unique_ptr<pdx::solve::Service> svc;
};

struct pdx_job {
  pdx::solve::JobHandle h;
};

namespace {

void copy_err(char* buf, size_t cap, const std::string& msg) {
  if (!buf || cap == 0) return;
  const size_t n = std::min(cap - 1, msg.size());
  std::memcpy(buf, msg.data(), n);
  buf[n] = '\0';
}

pdx_status status_of(const pdx::solve::JobResult& r) {
  using pdx::solve::JobOutcome;
  using pdx::solve::RejectReason;
  switch (r.outcome) {
    case JobOutcome::kSolved:
      return PDX_OK;
    case JobOutcome::kExpired:
      return PDX_ERR_EXPIRED;
    case JobOutcome::kRejected:
      switch (r.reject_reason) {
        case RejectReason::kQueueFull: return PDX_ERR_QUEUE_FULL;
        case RejectReason::kShed: return PDX_ERR_SHED;
        case RejectReason::kShutdown: return PDX_ERR_SHUTDOWN;
        case RejectReason::kNone: break;
      }
      return PDX_ERR_INTERNAL;
    case JobOutcome::kFailed:
      return PDX_ERR_SOLVE_FAILED;
    case JobOutcome::kPending:
      return PDX_ERR_PENDING;
  }
  return PDX_ERR_INTERNAL;
}

/// The exception-free boundary cannot trust caller arrays: before any
/// element count is used for a copy, ptr must start at 0 and be
/// non-decreasing (which makes nnz = ptr[n] non-negative), and every
/// column index must land in [0, n). A garbage or negative ptr[n] would
/// otherwise cast to a huge size_t and read far out of bounds.
bool csr_args_valid(int64_t n, const int64_t* ptr, const int64_t* idx) {
  if (n <= 0 || ptr[0] != 0) return false;
  for (int64_t i = 0; i < n; ++i) {
    if (ptr[i + 1] < ptr[i]) return false;
  }
  const int64_t nnz = ptr[n];
  for (int64_t k = 0; k < nnz; ++k) {
    if (idx[k] < 0 || idx[k] >= n) return false;
  }
  return true;
}

pdx::sparse::Csr make_csr(int64_t n, const int64_t* ptr, const int64_t* idx,
                          const double* val) {
  pdx::sparse::Csr a;
  a.rows = static_cast<index_t>(n);
  a.cols = static_cast<index_t>(n);
  a.ptr.assign(ptr, ptr + n + 1);
  const auto nnz = static_cast<size_t>(ptr[n]);
  a.idx.assign(idx, idx + nnz);
  a.val.assign(val, val + nnz);
  return a;
}

/// Exceptions the public Service API throws for caller bugs map to
/// INVALID_ARGUMENT / UNKNOWN_MATRIX / SHUTDOWN; everything else is
/// INTERNAL.
pdx_status map_exception(char* err_buf, size_t err_cap) {
  try {
    throw;
  } catch (const std::invalid_argument& e) {
    copy_err(err_buf, err_cap, e.what());
    return std::strstr(e.what(), "unknown matrix") != nullptr
               ? PDX_ERR_UNKNOWN_MATRIX
               : PDX_ERR_INVALID_ARGUMENT;
  } catch (const std::logic_error& e) {
    copy_err(err_buf, err_cap, e.what());
    return std::strstr(e.what(), "shut down") != nullptr ? PDX_ERR_SHUTDOWN
                                                         : PDX_ERR_INTERNAL;
  } catch (const std::exception& e) {
    copy_err(err_buf, err_cap, e.what());
    return PDX_ERR_INTERNAL;
  } catch (...) {
    copy_err(err_buf, err_cap, "unknown error");
    return PDX_ERR_INTERNAL;
  }
}

}  // namespace

extern "C" {

const char* pdx_status_name(pdx_status s) {
  switch (s) {
    case PDX_OK: return "ok";
    case PDX_ERR_INVALID_ARGUMENT: return "invalid-argument";
    case PDX_ERR_UNKNOWN_MATRIX: return "unknown-matrix";
    case PDX_ERR_QUEUE_FULL: return "queue-full";
    case PDX_ERR_SHED: return "shed";
    case PDX_ERR_EXPIRED: return "expired";
    case PDX_ERR_SHUTDOWN: return "shutdown";
    case PDX_ERR_DRAIN_TIMEOUT: return "drain-timeout";
    case PDX_ERR_SOLVE_FAILED: return "solve-failed";
    case PDX_ERR_PENDING: return "pending";
    case PDX_ERR_INTERNAL: return "internal";
    default: return "unknown-status";
  }
}

void pdx_service_options_init(pdx_service_options* o) {
  if (!o) return;
  std::memset(o, 0, sizeof(*o));
}

pdx_status pdx_service_create(const pdx_service_options* opts,
                              pdx_service** out) {
  if (!out) return PDX_ERR_INVALID_ARGUMENT;
  *out = nullptr;
  try {
    pdx::solve::ServiceOptions so;
    unsigned width = 0;
    if (opts) {
      if (opts->queue_capacity) so.queue_capacity = opts->queue_capacity;
      switch (opts->backpressure) {
        case PDX_BACKPRESSURE_BLOCK:
          so.backpressure = pdx::solve::BackpressurePolicy::kBlock;
          break;
        case PDX_BACKPRESSURE_SHED_OLDEST:
          so.backpressure = pdx::solve::BackpressurePolicy::kShedOldest;
          break;
        case PDX_BACKPRESSURE_REJECT:
          so.backpressure = pdx::solve::BackpressurePolicy::kReject;
          break;
        default:
          return PDX_ERR_INVALID_ARGUMENT;
      }
      if (opts->max_batch) so.max_batch = opts->max_batch;
      if (opts->max_live_plans) so.max_live_plans = opts->max_live_plans;
      if (opts->default_timeout_ms > 0) {
        so.default_timeout_ms = opts->default_timeout_ms;
      }
      if (opts->breaker_threshold) {
        so.breaker_threshold = opts->breaker_threshold;
      }
      if (opts->breaker_backoff_ms > 0) {
        so.breaker_backoff_ms = opts->breaker_backoff_ms;
      }
      so.stall_budget = opts->stall_budget;
      width = opts->nthreads;
      if (opts->rel_tolerance > 0) so.solver.rel_tolerance = opts->rel_tolerance;
      if (opts->max_iterations) so.solver.max_iterations = opts->max_iterations;
      if (opts->max_attempts) so.solver.max_attempts = opts->max_attempts;
    }
    auto h = std::make_unique<pdx_service>();
    h->pool = std::make_unique<pdx::rt::ThreadPool>(width);
    h->svc = std::make_unique<pdx::solve::Service>(*h->pool, so);
    *out = h.release();
    return PDX_OK;
  } catch (...) {
    return map_exception(nullptr, 0);
  }
}

void pdx_service_free(pdx_service* svc) {
  if (!svc) return;
  try {
    svc->svc->shutdown(0.0);
  } catch (...) {
    // Teardown must not throw across the boundary.
  }
  delete svc;
}

pdx_status pdx_service_register_matrix(pdx_service* svc, int64_t n,
                                       const int64_t* ptr, const int64_t* idx,
                                       const double* val, uint64_t* out_id) {
  if (!svc || !ptr || !idx || !val || !out_id || n <= 0 ||
      !csr_args_valid(n, ptr, idx)) {
    return PDX_ERR_INVALID_ARGUMENT;
  }
  try {
    *out_id = svc->svc->register_matrix(make_csr(n, ptr, idx, val));
    return PDX_OK;
  } catch (...) {
    return map_exception(nullptr, 0);
  }
}

pdx_status pdx_service_update_values(pdx_service* svc, uint64_t id, int64_t n,
                                     const int64_t* ptr, const int64_t* idx,
                                     const double* val) {
  if (!svc || !ptr || !idx || !val || n <= 0 ||
      !csr_args_valid(n, ptr, idx)) {
    return PDX_ERR_INVALID_ARGUMENT;
  }
  try {
    svc->svc->update_values(id, make_csr(n, ptr, idx, val));
    return PDX_OK;
  } catch (...) {
    return map_exception(nullptr, 0);
  }
}

pdx_status pdx_service_submit(pdx_service* svc, uint64_t id, const double* b,
                              int64_t n, double timeout_ms,
                              pdx_job** out_job) {
  if (!svc || !b || !out_job || n <= 0) return PDX_ERR_INVALID_ARGUMENT;
  *out_job = nullptr;
  try {
    pdx::solve::JobHandle h = svc->svc->submit(
        id, std::span<const double>(b, static_cast<size_t>(n)), timeout_ms);
    *out_job = new pdx_job{std::move(h)};
    return PDX_OK;
  } catch (...) {
    return map_exception(nullptr, 0);
  }
}

pdx_status pdx_job_wait(pdx_job* job, double* x_out, int64_t x_len,
                        char* err_buf, size_t err_cap) {
  if (!job || !job->h) return PDX_ERR_INVALID_ARGUMENT;
  if (x_out && x_len < 0) {
    // A negative length would cast to a huge size_t below, pass the
    // too-small check, and overflow the caller's buffer.
    copy_err(err_buf, err_cap, "x_len is negative");
    return PDX_ERR_INVALID_ARGUMENT;
  }
  try {
    const pdx::solve::JobResult r = job->h->wait();
    copy_err(err_buf, err_cap, r.error);
    const pdx_status s = status_of(r);
    if (s == PDX_OK && x_out) {
      const std::span<const double> sol = job->h->solution();
      if (static_cast<size_t>(x_len) < sol.size()) {
        copy_err(err_buf, err_cap, "x_out buffer too small");
        return PDX_ERR_INVALID_ARGUMENT;
      }
      std::memcpy(x_out, sol.data(), sol.size() * sizeof(double));
    }
    return s;
  } catch (...) {
    return map_exception(err_buf, err_cap);
  }
}

pdx_status pdx_job_poll(pdx_job* job) {
  if (!job || !job->h) return PDX_ERR_INVALID_ARGUMENT;
  try {
    if (!job->h->done()) return PDX_ERR_PENDING;
    return status_of(job->h->wait());
  } catch (...) {
    return map_exception(nullptr, 0);
  }
}

int32_t pdx_job_degraded(const pdx_job* job) {
  if (!job || !job->h || !job->h->done()) return 0;
  try {
    return job->h->wait().degraded ? 1 : 0;
  } catch (...) {
    return 0;
  }
}

void pdx_job_free(pdx_job* job) { delete job; }

pdx_status pdx_service_solve(pdx_service* svc, uint64_t id, const double* b,
                             double* x, int64_t n, double timeout_ms,
                             char* err_buf, size_t err_cap) {
  if (!svc || !b || !x || n <= 0) return PDX_ERR_INVALID_ARGUMENT;
  pdx_job* job = nullptr;
  pdx_status s = pdx_service_submit(svc, id, b, n, timeout_ms, &job);
  if (s != PDX_OK) return s;
  s = pdx_job_wait(job, x, n, err_buf, err_cap);
  pdx_job_free(job);
  return s;
}

pdx_status pdx_service_shutdown(pdx_service* svc, double drain_timeout_ms) {
  if (!svc) return PDX_ERR_INVALID_ARGUMENT;
  try {
    return svc->svc->shutdown(drain_timeout_ms) ? PDX_OK
                                                : PDX_ERR_DRAIN_TIMEOUT;
  } catch (...) {
    return map_exception(nullptr, 0);
  }
}

pdx_status pdx_service_get_report(pdx_service* svc, pdx_service_report* out) {
  if (!svc || !out) return PDX_ERR_INVALID_ARGUMENT;
  try {
    const pdx::solve::ServiceReport r = svc->svc->report();
    std::memset(out, 0, sizeof(*out));
    out->submitted = r.submitted;
    out->solved = r.solved;
    out->expired = r.expired;
    out->rejected = r.rejected;
    out->failed = r.failed;
    out->shed = r.shed;
    out->degraded_jobs = r.degraded_jobs;
    out->breaker_trips = r.breaker_trips;
    out->breaker_recoveries = r.breaker_recoveries;
    out->stalls = r.stalls;
    out->cache_hits = r.cache_hits;
    out->cache_misses = r.cache_misses;
    out->cache_evictions = r.cache_evictions;
    out->value_refreshes = r.value_refreshes;
    out->queue_depth = r.queue_depth;
    out->queue_high_water = r.queue_high_water;
    out->matrices = r.matrices;
    out->live_plans = r.live_plans;
    out->latency_samples = r.latency_samples;
    out->p50_ms = r.p50_ms;
    out->p99_ms = r.p99_ms;
    out->max_ms = r.max_ms;
    return PDX_OK;
  } catch (...) {
    return map_exception(nullptr, 0);
  }
}

}  // extern "C"
