#include "solve/cg.hpp"

#include <cmath>
#include <stdexcept>

#include "solve/vec.hpp"
#include "sparse/spmv.hpp"

namespace pdx::solve {

SolveReport pcg(const sparse::Csr& a, std::span<const double> b,
                std::span<double> x, const Preconditioner& m,
                const CgOptions& opts) {
  if (a.rows != a.cols) throw std::invalid_argument("pcg: matrix not square");
  const std::size_t n = static_cast<std::size_t>(a.rows);
  if (b.size() < n || x.size() < n) {
    throw std::invalid_argument("pcg: vector size mismatch");
  }

  std::vector<double> r(n), z(n), p(n), ap(n);

  // r = b - A x
  sparse::spmv(a, x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];

  const double bnorm = norm2(b);
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  SolveReport rep;
  double rnorm = norm2(r);
  if (opts.record_history) {
    rep.residual_history.push_back(bnorm > 0 ? rnorm / bnorm : rnorm);
  }
  if (rnorm <= stop) {
    rep.converged = true;
    rep.final_relative_residual = bnorm > 0 ? rnorm / bnorm : rnorm;
    return rep;
  }

  m.apply(r, z);
  copy(z, p);
  double rho = dot(r, z);

  for (int it = 0; it < opts.max_iterations; ++it) {
    sparse::spmv(a, p, ap);
    const double denom = dot(p, ap);
    if (denom == 0.0 || !std::isfinite(denom)) {
      rep.breakdown = true;
      rep.breakdown_reason = "p·Ap denominator zero or non-finite";
      break;
    }
    const double alpha = rho / denom;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);

    rnorm = norm2(r);
    rep.iterations = it + 1;
    if (opts.record_history) {
      rep.residual_history.push_back(bnorm > 0 ? rnorm / bnorm : rnorm);
    }
    if (rnorm <= stop) {
      rep.converged = true;
      break;
    }

    m.apply(r, z);
    const double rho_new = dot(r, z);
    const double beta = rho_new / rho;
    rho = rho_new;
    // p = z + beta p
    xpby(z, beta, p);
  }
  rep.final_relative_residual = bnorm > 0 ? rnorm / bnorm : rnorm;
  return rep;
}

SolveReport pcg(rt::ThreadPool& pool, const sparse::Csr& a,
                std::span<const double> b, std::span<double> x,
                const CgOptions& opts) {
  const DoacrossIlu0Preconditioner m(pool, a, /*reorder=*/true,
                                     /*nthreads=*/0, opts.strategy);
  return pcg(a, b, x, m, opts);
}

}  // namespace pdx::solve
