// gmres.hpp — restarted GMRES(m) with right preconditioning.
//
// The nonsymmetric companion to cg.hpp: the SPE-style block operators are
// not symmetric, so their Krylov context is GMRES rather than CG. Each
// preconditioner application again runs the paper's triangular solves.
#pragma once

#include <span>

#include "solve/cg.hpp"  // SolveReport
#include "solve/precond.hpp"
#include "sparse/csr.hpp"

namespace pdx::solve {

struct GmresOptions {
  int restart = 30;
  int max_iterations = 1000;  ///< total inner iterations across restarts
  double rel_tolerance = 1e-10;
  bool record_history = true;
  /// Trisolve strategy of the ILU(0) preconditioner built by the
  /// pool-taking overload (ignored when a Preconditioner is supplied).
  sparse::ExecutionStrategy strategy = sparse::ExecutionStrategy::kAuto;
};

/// Solve A x = b with right-preconditioned restarted GMRES; x holds the
/// initial guess on entry and the solution on exit.
SolveReport gmres(const sparse::Csr& a, std::span<const double> b,
                  std::span<double> x, const Preconditioner& m,
                  const GmresOptions& opts = {});

/// Convenience entry point owning its preconditioner: ILU(0) applied
/// through a strategy-polymorphic TrisolvePlan (opts.strategy, default
/// Auto).
SolveReport gmres(rt::ThreadPool& pool, const sparse::Csr& a,
                  std::span<const double> b, std::span<double> x,
                  const GmresOptions& opts = {});

}  // namespace pdx::solve
