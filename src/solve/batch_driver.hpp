// batch_driver.hpp — queueing front-end for many solves against one matrix.
//
// The serving shape of the ROADMAP north star: one factorization (and its
// TrisolvePlan) is built once while right-hand sides keep arriving.
// BatchDriver queues (b, x) pairs and drains them in one sweep:
//
//   * the initial residuals of ALL queued systems are computed with one
//     batched SpMV pass (sparse::spmv_batch_parallel — a single pool
//     dispatch), so already-converged systems are answered without
//     entering a Krylov loop at all;
//   * the rest run through PCG or BiCGSTAB sharing ONE
//     DoacrossIlu0Preconditioner, so every Krylov iteration of every
//     queued system reuses the same zero-allocation fused L+U plan.
//
// Results are bitwise identical to solving each system alone with
// pcg/bicgstab over a DoacrossIlu0Preconditioner (which is itself bitwise
// identical to the sequential ILU(0) path) — batching changes cost, never
// answers.
//
// Single caller at a time, like the plan it wraps. Spans handed to
// enqueue() must stay alive until the next drain() returns; the matrix
// must outlive the driver.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "solve/bicgstab.hpp"
#include "solve/cg.hpp"
#include "solve/precond.hpp"
#include "sparse/csr.hpp"

namespace pdx::solve {

enum class KrylovMethod : std::uint8_t { kCg, kBicgstab, kGmres };

struct BatchDriverOptions {
  KrylovMethod method = KrylovMethod::kCg;
  int max_iterations = 1000;
  double rel_tolerance = 1e-10;
  bool record_history = false;
  /// Doconsider orderings for the shared plan (PlanOptions::reorder).
  bool reorder = true;
  /// Width of the plan's batched region and the SpMV screen; 0 = pool
  /// width.
  unsigned nthreads = 0;
  /// Trisolve strategy of the shared plan. Auto calibrates: the
  /// heuristic advisor seeds the pick, the first preconditioner
  /// applications race every strategy, and the plan locks in the
  /// measured winner — consulting the process-wide tuning cache first
  /// (DESIGN.md §13; the decision and race telemetry appear in every
  /// BatchReport).
  sparse::ExecutionStrategy strategy = sparse::ExecutionStrategy::kAuto;
  /// Numeric-factorization strategy of the shared FactorPlan
  /// (FactorPlanOptions::strategy). Deliberately independent of the
  /// trisolve pick above: factor rows carry ~nnz/row times the work of a
  /// solve row, so the measured winners often differ.
  sparse::ExecutionStrategy factor_strategy = sparse::ExecutionStrategy::kAuto;
  /// Factor layout of the shared plan (PlanOptions::layout): the
  /// default follows the resolved strategy (kCsrView for serial plans,
  /// packed execution-ordered streams otherwise); pin kPacked/kCsrView
  /// to override.
  sparse::PlanLayout layout = sparse::PlanLayout::kAuto;
  /// Calibration budget for the shared plans under kAuto — timed
  /// epochs per candidate strategy (PlanOptions::calibration_epochs /
  /// FactorPlanOptions::calibration_epochs). 0 pins the heuristic pick.
  int calibration_epochs = 2;
  /// Consult/feed the process-wide core::TuningCache so drivers rebuilt
  /// over a known pattern skip the race (PlanOptions::use_tuning_cache).
  bool use_tuning_cache = true;
  /// Retry/escalation ladder (DESIGN.md §12) for jobs that neither
  /// converge nor get screened: attempt 2 re-runs the SAME method with
  /// max_iterations * retry_iteration_factor (warm-started from the
  /// failed attempt's x); attempts 3+ escalate the method kCg →
  /// kBicgstab → kGmres at the widened budget. 1 (default) disables
  /// retries entirely.
  int max_attempts = 1;
  /// Iteration-budget multiplier applied from attempt 2 on.
  int retry_iteration_factor = 4;
  /// Restart length used when the ladder (or method) reaches kGmres.
  int gmres_restart = 30;
  /// Kernel selection for the shared plans (PlanOptions::kernel /
  /// FactorPlanOptions::kernel; DESIGN.md §14): kAuto races
  /// scalar-vs-vector on the lane-kernel dispatches after the strategy
  /// race locks in; kScalar/kVector pin a table.
  sparse::kernels::KernelChoice kernel = sparse::kernels::KernelChoice::kAuto;
  /// Opt into the ulp-class kernels (reassociated dot, fused scatter
  /// update) on vector tables; 0 (default) keeps every answer bitwise
  /// identical to the sequential reference.
  double ulp_tolerance = 0.0;
  /// Stall watchdog budget in spin rounds per in-region wait, for BOTH
  /// shared plans (PlanOptions::stall_budget /
  /// FactorPlanOptions::stall_budget; DESIGN.md §12). 0 (default)
  /// disarms the watchdog. Serving layers arm it so a wedged producer
  /// surfaces as rt::StallError instead of a hung drain.
  std::uint64_t stall_budget = 0;
  /// Opt-in admission screen: reject enqueue() of a b or x containing
  /// NaN/Inf (named job and row) instead of letting the garbage propagate
  /// into a breakdown mid-drain. Off by default — the scan is O(n) per
  /// enqueue.
  bool screen_nonfinite = false;
};

/// What one drain() did, plus per-job reports in enqueue order.
struct BatchReport {
  std::size_t jobs = 0;
  std::size_t converged = 0;
  /// Jobs answered by the batched residual screen (initial guess already
  /// within tolerance) without entering a Krylov loop.
  std::size_t screened = 0;
  std::uint64_t total_iterations = 0;
  /// Plan solves consumed by this drain — the preconditioner
  /// applications the shared TrisolvePlan amortized.
  std::uint64_t precond_solves = 0;
  /// Pool fork/joins consumed by this drain (rt::DispatchProbe delta).
  std::uint64_t pool_dispatches = 0;
  /// Execution strategy the shared plan resolved to, and why (the plan's
  /// PlanTelemetry — serving reports carry the decision with the data).
  sparse::ExecutionStrategy strategy = sparse::ExecutionStrategy::kDoacross;
  std::string strategy_rationale;
  /// Calibration telemetry of the shared plan (PlanTelemetry::race):
  /// whether the strategy was locked in by measurement, whether the
  /// process-wide tuning cache answered without racing, and how many
  /// exploration solves the race consumed (0 on a cache hit).
  bool strategy_calibrated = false;
  bool tuning_cache_hit = false;
  int exploration_epochs = 0;
  /// Factor layout the shared plan resolved to, and the packed stream
  /// bytes it owns (0 under kCsrView) — also from PlanTelemetry.
  sparse::PlanLayout layout = sparse::PlanLayout::kCsrView;
  std::size_t packed_bytes = 0;
  /// Time-stepping telemetry (PlanTelemetry::factor_* / refresh_ms): the
  /// last refactor()'s numeric factorization time, the FactorPlan
  /// strategy that ran it (kAuto until the first refactor), and the last
  /// value-only plan refresh — so serving reports carry the refactor
  /// cost next to the solve cost it buys.
  double factor_ms = 0.0;
  sparse::ExecutionStrategy factor_strategy = sparse::ExecutionStrategy::kAuto;
  double refresh_ms = 0.0;
  /// Kernel dispatch of the shared trisolve plan (PlanTelemetry; DESIGN.md
  /// §14): the process-wide dispatched ISA, the scalar/vector choice the
  /// drain ended on, and whether a kernel race locked it in by
  /// measurement.
  sparse::kernels::KernelIsa isa = sparse::kernels::KernelIsa::kScalar;
  sparse::kernels::KernelChoice kernel = sparse::kernels::KernelChoice::kScalar;
  bool kernel_calibrated = false;
  /// Jobs whose FINAL attempt stopped on a numerical breakdown (the
  /// per-job SolveReport carries the reason).
  std::size_t breakdowns = 0;
  /// Jobs that took more than one attempt on the retry ladder.
  std::size_t retried = 0;
  /// True when the shared preconditioner served any application through
  /// its sequential fallback because the parallel plan was poisoned
  /// (DoacrossIlu0Preconditioner::degraded()). Answers are still correct;
  /// the driver has lost the parallel executor until rebuilt.
  bool degraded_serial = false;
  std::vector<SolveReport> reports;
};

class BatchDriver {
 public:
  /// Factors `a` (ILU(0)) and builds the shared plan once.
  BatchDriver(rt::ThreadPool& pool, const sparse::Csr& a,
              const BatchDriverOptions& opts = {});

  /// Queue one system A x = b. `x` carries the initial guess on entry and
  /// receives the solution at drain(). Both spans must hold >= rows()
  /// elements and outlive the next drain().
  void enqueue(std::span<const double> b, std::span<double> x);

  /// Re-factorization hook for time-stepping traffic: adopt new matrix
  /// VALUES over the same pattern (implicit integrators change values
  /// every step, never the stencil). Runs the shared preconditioner's
  /// refactor() — parallel numeric ILU(0) through the persistent
  /// FactorPlan plus a value-only TrisolvePlan refresh — and repoints
  /// the driver's SpMV screen at `a`, which must outlive the driver.
  /// Only legal between drains (throws std::logic_error with systems
  /// queued — they were enqueued against the old operator); throws
  /// std::invalid_argument on a pattern mismatch.
  void refactor(const sparse::Csr& a);

  std::size_t pending() const noexcept { return queue_.size(); }

  /// Solve everything queued (clearing the queue) and report.
  BatchReport drain();

  const DoacrossIlu0Preconditioner& preconditioner() const { return m_; }
  index_t rows() const noexcept { return a_->rows; }

  /// Attach a fault-injection harness (tests only); forwarded to the
  /// shared preconditioner's plans. nullptr detaches.
  void set_fault_injector(rt::FaultInjector* injector) noexcept {
    m_.set_fault_injector(injector);
  }

 private:
  SolveReport run_attempt(KrylovMethod method, std::span<const double> b,
                          std::span<double> x, int max_iterations);

  struct Job {
    std::span<const double> b;
    std::span<double> x;
  };

  rt::ThreadPool* pool_;
  const sparse::Csr* a_;
  BatchDriverOptions opts_;
  DoacrossIlu0Preconditioner m_;
  std::vector<Job> queue_;
  // Screen scratch, grown once to the largest wave seen so repeated
  // drains of steady traffic allocate nothing for the screen itself.
  std::vector<double> screen_r_;
  std::vector<const double*> screen_x_cols_;
  std::vector<double*> screen_r_cols_;
};

}  // namespace pdx::solve
