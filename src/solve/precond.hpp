// precond.hpp — preconditioners for the Krylov solvers.
//
// The triangular solves of paper §3.2 exist because ILU-preconditioned
// Krylov methods apply M⁻¹ = (LU)⁻¹ every iteration — "the solution of
// these sparse triangular systems accounts for a large fraction of the
// sequential execution time of linear solvers that use Krylov methods"
// (citing [1]). Ilu0Preconditioner::apply is exactly two Fig. 7 loops;
// DoacrossIlu0Preconditioner runs the lower one through the preprocessed
// doacross executor.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "runtime/failure.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/csr.hpp"
#include "sparse/factor_plan.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/trisolve_plan.hpp"

namespace pdx::solve {

/// z = M⁻¹ r. Implementations must tolerate aliasing-free spans of equal
/// length n.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual void apply(std::span<const double> r, std::span<double> z) const = 0;
  virtual const char* name() const = 0;
};

class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(std::span<const double> r, std::span<double> z) const override {
    for (std::size_t i = 0; i < r.size(); ++i) z[i] = r[i];
  }
  const char* name() const override { return "identity"; }
};

/// Diagonal (Jacobi) scaling: z_i = r_i / a_ii.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const sparse::Csr& a);
  void apply(std::span<const double> r, std::span<double> z) const override;
  const char* name() const override { return "jacobi"; }

 private:
  std::vector<double> inv_diag_;
};

/// ILU(0): z = U⁻¹ (L⁻¹ r), both solves sequential (Fig. 7 loops).
class Ilu0Preconditioner final : public Preconditioner {
 public:
  explicit Ilu0Preconditioner(const sparse::Csr& a);
  void apply(std::span<const double> r, std::span<double> z) const override;
  const char* name() const override { return "ilu0"; }

  const sparse::IluFactors& factors() const { return f_; }

 private:
  sparse::IluFactors f_;
  mutable std::vector<double> tmp_;
};

/// ILU(0) with both triangular solves executed by a persistent
/// TrisolvePlan: strategy selection, doconsider reorderings, epoch-reset
/// flag tables, barrier, wait counters and region functors are built once
/// per factorization, so every apply() — i.e. every Krylov iteration — is
/// at most ONE fused pool fork/join (zero for a serial-strategy plan)
/// with zero heap allocation and an O(1) flag reset. The default strategy
/// is Auto: the plan measures the factor's dependence structure and asks
/// core::advise_schedule which executor to instantiate (DESIGN.md §9).
/// Results are bitwise identical to Ilu0Preconditioner under every
/// strategy.
class DoacrossIlu0Preconditioner final : public Preconditioner {
 public:
  /// `reorder` steers the flag-based doacross executor only; under the
  /// default kAuto the plan calibrates (races every strategy on the
  /// first applications, locks in the measured winner, and consults the
  /// process-wide tuning cache — DESIGN.md §13), so pass an explicit
  /// strategy (e.g. kDoacross) when the reorder knob must be honored
  /// literally. `layout` is the plan's factor layout: the default
  /// follows the resolved strategy (kCsrView for serial plans, packed
  /// execution-ordered first-touched slabs otherwise); pin kPacked or
  /// kCsrView to override (DESIGN.md §10).
  DoacrossIlu0Preconditioner(
      rt::ThreadPool& pool, const sparse::Csr& a, bool reorder = true,
      unsigned nthreads = 0,
      sparse::ExecutionStrategy strategy = sparse::ExecutionStrategy::kAuto,
      sparse::PlanLayout layout = sparse::PlanLayout::kAuto);

  /// Full-options constructor: `plan_opts` configures the solve plan
  /// verbatim (strategy, layout, calibration budget, tuning cache,
  /// stall watchdog); `factor_opts` configures the persistent
  /// FactorPlan the first refactor() builds. The solve layer's
  /// calibration knobs (BatchDriverOptions) plumb through here.
  DoacrossIlu0Preconditioner(rt::ThreadPool& pool, const sparse::Csr& a,
                             const sparse::PlanOptions& plan_opts,
                             const sparse::FactorPlanOptions& factor_opts);
  void apply(std::span<const double> r, std::span<double> z) const override;
  const char* name() const override { return "ilu0-doacross"; }

  /// Batched application: Z[c] = M⁻¹ R[c] for k column-major columns in
  /// ONE pool dispatch through the shared plan (TrisolvePlan::solve_batch).
  void apply_batch(std::span<const double> r, std::span<double> z, index_t k,
                   sparse::BatchMode mode =
                       sparse::BatchMode::kWavefrontInterleaved) const;
  /// Pointer-per-column batched application for non-contiguous columns.
  void apply_batch(const double* const* r_cols, double* const* z_cols,
                   index_t k,
                   sparse::BatchMode mode =
                       sparse::BatchMode::kWavefrontInterleaved) const;
  /// Pre-size the plan's batch scratch so serving loops allocate nothing.
  void reserve_batch(index_t max_k) const { plan_.reserve_batch(max_k); }

  /// Re-factorize for new matrix VALUES over the ctor matrix's pattern —
  /// the time-stepping hot path (DESIGN.md §11). The first call builds a
  /// persistent sparse::FactorPlan (symbolic phase, once); every call
  /// then runs the parallel zero-allocation numeric factorization into
  /// the existing factors and refreshes the solve plan's packed value
  /// streams in place (TrisolvePlan::refresh_values) — no schedules,
  /// flag tables or layouts are rebuilt. After refactor(), apply() is
  /// bitwise identical to a freshly constructed preconditioner over `a`.
  /// Throws std::invalid_argument if `a`'s pattern differs from the
  /// ctor matrix's. A zero/invalid pivot throws std::runtime_error AND
  /// leaves the factors holding the failed step's (contaminated) values
  /// — do not apply() until a subsequent refactor with healthy values
  /// succeeds (it rewrites every value and fully recovers the object).
  void refactor(const sparse::Csr& a);

  const sparse::IluFactors& factors() const { return f_; }
  const sparse::TrisolvePlan& plan() const { return plan_; }
  /// The persistent factorization plan (nullptr before the first
  /// refactor()).
  const sparse::FactorPlan* factor_plan() const { return factor_plan_.get(); }

  /// True once the parallel plan was poisoned by an in-region fault and
  /// apply() degraded to the sequential Fig. 7 loops (DESIGN.md §12).
  /// The factors themselves are intact, so answers stay bitwise correct —
  /// only the parallel executor is lost until the object is rebuilt.
  bool degraded() const noexcept { return plan_.poisoned(); }
  /// Columns served by the sequential fallback since construction.
  std::uint64_t serial_fallbacks() const noexcept { return fallbacks_; }
  /// Attach a fault-injection harness (tests only); forwarded to the
  /// solve plan and to the factor plan once refactor() builds it.
  void set_fault_injector(rt::FaultInjector* injector) noexcept;

 private:
  void apply_seq(std::span<const double> r, std::span<double> z) const;

  rt::ThreadPool* pool_;
  unsigned nthreads_;
  sparse::FactorPlanOptions factor_opts_;  // for the lazy FactorPlan
  sparse::IluFactors f_;        // must outlive plan_ (declared first)
  mutable sparse::TrisolvePlan plan_;
  std::unique_ptr<sparse::FactorPlan> factor_plan_;  // built on 1st refactor
  rt::FaultInjector* injector_ = nullptr;
  mutable std::vector<double> fb_tmp_;      // scratch of the serial fallback
  mutable std::uint64_t fallbacks_ = 0;
};

}  // namespace pdx::solve
