// cg.hpp — preconditioned conjugate gradients.
//
// The Krylov context of paper §3.2 / reference [1]: an SPD system solved by
// PCG with an ILU(0) (or Jacobi/identity) preconditioner, where each
// iteration applies the preconditioner — i.e. runs the paper's sparse
// triangular solves.
#pragma once

#include <span>
#include <vector>

#include "solve/precond.hpp"
#include "sparse/csr.hpp"

namespace pdx::solve {

struct SolveReport {
  bool converged = false;
  int iterations = 0;
  double final_relative_residual = 0.0;
  std::vector<double> residual_history;  ///< relative residual per iteration
};

struct CgOptions {
  int max_iterations = 1000;
  double rel_tolerance = 1e-10;
  bool record_history = true;
};

/// Solve A x = b for SPD A; x holds the initial guess on entry and the
/// solution on exit.
SolveReport pcg(const sparse::Csr& a, std::span<const double> b,
                std::span<double> x, const Preconditioner& m,
                const CgOptions& opts = {});

}  // namespace pdx::solve
