// cg.hpp — preconditioned conjugate gradients.
//
// The Krylov context of paper §3.2 / reference [1]: an SPD system solved by
// PCG with an ILU(0) (or Jacobi/identity) preconditioner, where each
// iteration applies the preconditioner — i.e. runs the paper's sparse
// triangular solves.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "solve/precond.hpp"
#include "sparse/csr.hpp"

namespace pdx::solve {

struct SolveReport {
  bool converged = false;
  int iterations = 0;
  double final_relative_residual = 0.0;
  std::vector<double> residual_history;  ///< relative residual per iteration
  /// True when the iteration stopped on a numerical breakdown (a zero or
  /// non-finite scalar in the recurrence) rather than convergence or the
  /// iteration cap. Previously a silent early exit; callers deciding
  /// whether to retry or escalate need the distinction (DESIGN.md §12).
  bool breakdown = false;
  /// Which scalar broke, when breakdown is true (empty otherwise).
  std::string breakdown_reason;
  /// Solve attempts the caller made for this answer (1 unless a retry
  /// ladder such as BatchDriver's re-ran or escalated the method).
  int attempts = 1;
};

struct CgOptions {
  int max_iterations = 1000;
  double rel_tolerance = 1e-10;
  bool record_history = true;
  /// Trisolve strategy of the ILU(0) preconditioner built by the
  /// pool-taking overload (ignored when a Preconditioner is supplied).
  /// Auto lets the plan measure the factor and pick (DESIGN.md §9).
  sparse::ExecutionStrategy strategy = sparse::ExecutionStrategy::kAuto;
};

/// Solve A x = b for SPD A; x holds the initial guess on entry and the
/// solution on exit.
SolveReport pcg(const sparse::Csr& a, std::span<const double> b,
                std::span<double> x, const Preconditioner& m,
                const CgOptions& opts = {});

/// Convenience entry point owning its preconditioner: factors `a` with
/// ILU(0) and applies it through a strategy-polymorphic TrisolvePlan
/// (opts.strategy, default Auto). Bitwise identical to calling pcg with a
/// DoacrossIlu0Preconditioner built the same way.
SolveReport pcg(rt::ThreadPool& pool, const sparse::Csr& a,
                std::span<const double> b, std::span<double> x,
                const CgOptions& opts = {});

}  // namespace pdx::solve
