// vec.hpp — dense vector kernels for the Krylov solvers.
#pragma once

#include <cmath>
#include <span>
#include <vector>

namespace pdx::solve {

inline double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

inline double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

/// y += alpha * x
inline void axpy(double alpha, std::span<const double> x,
                 std::span<double> y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

/// y = x + beta * y
inline void xpby(std::span<const double> x, double beta, std::span<double> y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] + beta * y[i];
}

inline void scale(double alpha, std::span<double> x) {
  for (auto& v : x) v *= alpha;
}

inline void copy(std::span<const double> src, std::span<double> dst) {
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i];
}

inline void fill(std::span<double> x, double v) {
  for (auto& e : x) e = v;
}

}  // namespace pdx::solve
