#include "solve/service.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace pdx::solve {

namespace {

std::chrono::steady_clock::duration ms_duration(double ms) {
  if (ms < 0.0) ms = 0.0;
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

double elapsed_ms(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

bool same_pattern(const sparse::Csr& a, const sparse::Csr& b) {
  return a.rows == b.rows && a.cols == b.cols && a.ptr == b.ptr &&
         a.idx == b.idx;
}

void validate_matrix(const sparse::Csr& a, const char* who) {
  if (a.rows <= 0 || a.rows != a.cols) {
    throw std::invalid_argument(std::string(who) +
                                ": matrix must be square and non-empty");
  }
  if (a.ptr.size() != static_cast<std::size_t>(a.rows) + 1 ||
      a.idx.size() != a.val.size() ||
      a.idx.size() != static_cast<std::size_t>(a.ptr.back())) {
    throw std::invalid_argument(std::string(who) + ": malformed CSR arrays");
  }
}

/// State a detached (abandoned) pool worker may still be executing
/// against: plans, job buffers, whole tenants. Parked here immortally on
/// the PoolShutdownError teardown path — freeing it would turn a wedged
/// worker into a use-after-free, and the process is about to exit anyway.
/// The registry itself is intentionally never destroyed (static pointer)
/// so it also survives static teardown order.
std::vector<std::shared_ptr<void>>& abandoned_parking() {
  static auto* v = new std::vector<std::shared_ptr<void>>();
  return *v;
}
std::mutex& abandoned_parking_mu() {
  static auto* m = new std::mutex();
  return *m;
}

void park_abandoned(std::shared_ptr<void> p) {
  if (!p) return;
  std::lock_guard<std::mutex> lk(abandoned_parking_mu());
  abandoned_parking().push_back(std::move(p));
}

}  // namespace

// ---------------------------------------------------------------- ServiceJob

JobResult ServiceJob::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return result_.outcome != JobOutcome::kPending; });
  return result_;
}

bool ServiceJob::done() const {
  std::lock_guard<std::mutex> lk(mu_);
  return result_.outcome != JobOutcome::kPending;
}

std::span<const double> ServiceJob::solution() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (result_.outcome != JobOutcome::kSolved) return {};
  return {x_.data(), x_.size()};
}

// ------------------------------------------------------------------- Service

Service::Service(rt::ThreadPool& pool, const ServiceOptions& opts)
    : pool_(&pool), opts_(opts) {
  if (opts_.queue_capacity < 1) {
    throw std::invalid_argument("Service: queue_capacity must be >= 1");
  }
  if (opts_.max_batch < 1) {
    throw std::invalid_argument("Service: max_batch must be >= 1");
  }
  if (opts_.max_live_plans < 1) {
    throw std::invalid_argument("Service: max_live_plans must be >= 1");
  }
  if (opts_.breaker_threshold < 1) {
    throw std::invalid_argument("Service: breaker_threshold must be >= 1");
  }
  if (opts_.latency_window < 1) opts_.latency_window = 1;
  latencies_.reserve(std::min<std::size_t>(opts_.latency_window, 4096));
  scheduler_ = std::thread([this] { scheduler_main(); });
}

Service::~Service() {
  try {
    shutdown(0.0);
  } catch (...) {
    // Destructors must not throw; shutdown(0) only throws on programmer
    // error, and the scheduler has been joined by the time it does.
  }
  if (pool_abandoned_.load(std::memory_order_acquire)) {
    // A detached worker may still be executing a region body that reaches
    // into a tenant's matrix or plans: park every tenant immortally
    // instead of freeing it (see abandoned_parking above).
    std::lock_guard<std::mutex> lk(tenants_mu_);
    for (auto& [id, t] : tenants_) {
      park_abandoned(std::shared_ptr<void>(std::move(t)));
    }
    tenants_.clear();
  }
}

BatchDriverOptions Service::planned_driver_opts() const {
  BatchDriverOptions o = opts_.solver;
  if (opts_.stall_budget != 0) o.stall_budget = opts_.stall_budget;
  return o;
}

MatrixId Service::register_matrix(const sparse::Csr& a) {
  validate_matrix(a, "Service::register_matrix");
  {
    std::lock_guard<std::mutex> lk(qmu_);
    if (draining_ || stop_) {
      throw std::logic_error("Service::register_matrix: service is shut down");
    }
  }
  std::lock_guard<std::mutex> lk(tenants_mu_);
  const MatrixId id = next_id_++;
  auto t = std::make_unique<Tenant>();
  t->id = id;
  t->a = a;
  tenants_.emplace(id, std::move(t));
  return id;
}

Service::Tenant* Service::find_tenant(MatrixId id) const {
  std::lock_guard<std::mutex> lk(tenants_mu_);
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second.get();
}

void Service::update_values(MatrixId id, const sparse::Csr& a) {
  validate_matrix(a, "Service::update_values");
  Tenant* t = find_tenant(id);
  if (!t) {
    throw std::invalid_argument("Service::update_values: unknown matrix id " +
                                std::to_string(id));
  }
  std::lock_guard<std::mutex> lk(t->mu);
  if (a.rows != t->a.rows) {
    throw std::invalid_argument(
        "Service::update_values: dimension change (" +
        std::to_string(t->a.rows) + " -> " + std::to_string(a.rows) +
        ") — register a new matrix instead");
  }
  // Deferred: the scheduler applies it before the tenant's next strip.
  // Clients must never run pool regions themselves (the refresh is a
  // parallel numeric factorization), and the driver may be mid-drain.
  t->pending = a;
  t->pending_same_pattern = same_pattern(a, t->a);
  t->has_pending = true;
}

void Service::set_fault_injector(MatrixId id, rt::FaultInjector* injector) {
  Tenant* t = find_tenant(id);
  if (!t) {
    throw std::invalid_argument(
        "Service::set_fault_injector: unknown matrix id " +
        std::to_string(id));
  }
  std::lock_guard<std::mutex> lk(t->mu);
  t->injector = injector;
  if (t->driver) t->driver->set_fault_injector(injector);
  // Never the fallback: it exists to be immune.
}

JobHandle Service::make_job(MatrixId id, std::span<const double> b, index_t n,
                            bool has_deadline, Clock::time_point deadline) {
  auto job = std::make_shared<ServiceJob>();
  job->matrix_ = id;
  job->b_.assign(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(n));
  job->x_.assign(static_cast<std::size_t>(n), 0.0);
  job->has_deadline_ = has_deadline;
  job->deadline_ = deadline;
  job->submitted_at_ = Clock::now();
  return job;
}

JobHandle Service::submit(MatrixId id, std::span<const double> b,
                          double timeout_ms) {
  if (timeout_ms < 0.0) timeout_ms = opts_.default_timeout_ms;
  if (timeout_ms > 0.0) {
    return submit_at(id, b, Clock::now() + ms_duration(timeout_ms));
  }
  return submit_at(id, b, Clock::time_point{});  // sentinel: no deadline
}

JobHandle Service::submit_at(MatrixId id, std::span<const double> b,
                             std::chrono::steady_clock::time_point deadline) {
  Tenant* t = find_tenant(id);
  if (!t) {
    throw std::invalid_argument("Service::submit: unknown matrix id " +
                                std::to_string(id));
  }
  index_t n;
  {
    // update_values enforces a fixed dimension, so t->a.rows is the
    // tenant's row count even with an update pending.
    std::lock_guard<std::mutex> lk(t->mu);
    n = t->a.rows;
  }
  if (static_cast<index_t>(b.size()) < n) {
    throw std::invalid_argument(
        "Service::submit: b has " + std::to_string(b.size()) +
        " entries but matrix " + std::to_string(id) + " has " +
        std::to_string(n) + " rows");
  }

  const bool has_deadline = deadline != Clock::time_point{};
  JobHandle job = make_job(id, b, n, has_deadline, deadline);
  submitted_.fetch_add(1, std::memory_order_relaxed);

  // Unmeetable before it is even queued: expire without touching the
  // queue (no solve is ever attempted — the acceptance criterion).
  if (has_deadline && Clock::now() >= deadline) {
    finalize(job, JobOutcome::kExpired, RejectReason::kNone,
             "deadline already expired at submission", nullptr, false);
    return job;
  }

  std::unique_lock<std::mutex> lk(qmu_);
  if (draining_ || stop_) {
    lk.unlock();
    finalize(job, JobOutcome::kRejected, RejectReason::kShutdown,
             "service is shutting down", nullptr, false);
    return job;
  }

  if (queue_.size() >= opts_.queue_capacity) {
    switch (opts_.backpressure) {
      case BackpressurePolicy::kReject: {
        lk.unlock();
        finalize(job, JobOutcome::kRejected, RejectReason::kQueueFull,
                 "queue full (capacity " +
                     std::to_string(opts_.queue_capacity) +
                     ", policy reject)",
                 nullptr, false);
        return job;
      }
      case BackpressurePolicy::kShedOldest: {
        JobHandle victim = std::move(queue_.front());
        queue_.pop_front();
        shed_.fetch_add(1, std::memory_order_relaxed);
        finalize(victim, JobOutcome::kRejected, RejectReason::kShed,
                 "shed by a newer submission (capacity " +
                     std::to_string(opts_.queue_capacity) +
                     ", policy shed-oldest)",
                 nullptr, false);
        break;  // fall through to enqueue the new job
      }
      case BackpressurePolicy::kBlock: {
        const auto space = [&] {
          return queue_.size() < opts_.queue_capacity || draining_ || stop_;
        };
        if (has_deadline) {
          if (!cv_space_.wait_until(lk, deadline, space)) {
            lk.unlock();
            finalize(job, JobOutcome::kExpired, RejectReason::kNone,
                     "deadline expired while blocked on admission",
                     nullptr, false);
            return job;
          }
        } else {
          cv_space_.wait(lk, space);
        }
        if (draining_ || stop_) {
          lk.unlock();
          finalize(job, JobOutcome::kRejected, RejectReason::kShutdown,
                   "service shut down while blocked on admission", nullptr,
                   false);
          return job;
        }
        break;
      }
    }
  }

  queue_.push_back(job);
  high_water_ = std::max(high_water_, queue_.size());
  lk.unlock();
  cv_jobs_.notify_one();
  return job;
}

JobResult Service::solve(MatrixId id, std::span<const double> b,
                         std::span<double> x, double timeout_ms) {
  JobHandle job = submit(id, b, timeout_ms);
  JobResult res = job->wait();
  if (res.outcome == JobOutcome::kSolved) {
    std::span<const double> sol = job->solution();
    if (x.size() < sol.size()) {
      throw std::invalid_argument("Service::solve: x span too small");
    }
    std::copy(sol.begin(), sol.end(), x.begin());
  }
  return res;
}

bool Service::shutdown(double drain_timeout_ms) {
  {
    std::unique_lock<std::mutex> lk(qmu_);
    draining_ = true;
    cv_jobs_.notify_all();
    cv_space_.notify_all();
    const auto deadline = Clock::now() + ms_duration(drain_timeout_ms);
    if (!cv_done_.wait_until(lk, deadline, [&] { return sched_done_; })) {
      // Drain timeout: stop the scheduler after its current strip and
      // fail whatever is still queued, loudly, below.
      stop_ = true;
      cv_jobs_.notify_all();
      // The scheduler normally exits within moments of finishing its
      // current strip. If that strip is wedged inside a pool region
      // (stall watchdog disarmed, worker spinning forever), waiting
      // unconditionally would hang the very teardown this API bounds:
      // past the grace period, break the region. ThreadPool::shutdown
      // abandons the wedged workers and releases the scheduler's join
      // with PoolShutdownError, which process_strip turns into failed
      // jobs (with the wedge-reachable state parked, not freed); the
      // scheduler then sees stop_ and exits.
      if (!cv_done_.wait_for(lk, ms_duration(opts_.stop_grace_ms),
                             [&] { return sched_done_; })) {
        lk.unlock();
        try {
          pool_->shutdown(std::chrono::milliseconds(0));
        } catch (const rt::PoolShutdownError&) {
          pool_abandoned_.store(true, std::memory_order_release);
        }
        lk.lock();
      }
      cv_done_.wait(lk, [&] { return sched_done_; });
    }
  }
  if (scheduler_.joinable()) scheduler_.join();

  std::deque<JobHandle> leftover;
  {
    std::lock_guard<std::mutex> lk(qmu_);
    leftover.swap(queue_);
  }
  for (const JobHandle& job : leftover) {
    finalize(job, JobOutcome::kRejected, RejectReason::kShutdown,
             "service shut down before the job ran", nullptr, false);
  }
  return leftover.empty();
}

void Service::pause() {
  std::lock_guard<std::mutex> lk(qmu_);
  paused_ = true;
}

void Service::resume() {
  {
    std::lock_guard<std::mutex> lk(qmu_);
    paused_ = false;
  }
  cv_jobs_.notify_all();
}

std::size_t Service::queue_depth() const {
  std::lock_guard<std::mutex> lk(qmu_);
  return queue_.size();
}

// -------------------------------------------------------------- scheduler

void Service::scheduler_main() {
  for (;;) {
    std::vector<JobHandle> strip;
    MatrixId mid = 0;
    {
      std::unique_lock<std::mutex> lk(qmu_);
      cv_jobs_.wait(lk, [&] {
        if (stop_) return true;
        if (draining_) return true;  // drain ignores pause
        return !paused_ && !queue_.empty();
      });
      if (stop_) break;
      if (queue_.empty()) {
        if (draining_) break;
        continue;
      }
      // Pack a same-matrix strip: the front job names the tenant; pull
      // every queued job for it (up to max_batch) so the whole strip is
      // one plan-shared BatchDriver drain.
      mid = queue_.front()->matrix_id();
      for (auto it = queue_.begin();
           it != queue_.end() && strip.size() < opts_.max_batch;) {
        if ((*it)->matrix_id() == mid) {
          strip.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    }
    cv_space_.notify_all();

    Tenant* t = find_tenant(mid);
    // Tenants are never erased, so t is always valid.
    //
    // process_strip handles every failure it expects; this catch is the
    // last line of defense, because an exception escaping here would
    // std::terminate the scheduler thread and strand every waiter. Moved-
    // out (null) handles were finalized inside process_strip; finalize is
    // idempotent for the rest.
    try {
      process_strip(*t, strip);
    } catch (const std::exception& e) {
      for (const JobHandle& job : strip) {
        if (!job) continue;
        finalize(job, JobOutcome::kFailed, RejectReason::kNone,
                 std::string("internal error: ") + e.what(), nullptr, false);
      }
    } catch (...) {
      for (const JobHandle& job : strip) {
        if (!job) continue;
        finalize(job, JobOutcome::kFailed, RejectReason::kNone,
                 "internal error: unknown exception", nullptr, false);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lk(qmu_);
    sched_done_ = true;
  }
  cv_done_.notify_all();
}

void Service::process_strip(Tenant& t, std::vector<JobHandle>& strip) {
  const auto now = Clock::now();

  // Deadline enforcement at dequeue: a job whose deadline has passed is
  // expired here and never reaches a solver.
  // Handles are COPIED (shared_ptr), not moved: strip must stay intact so
  // scheduler_main's last-resort catch can still finalize every job if
  // something unexpected escapes this function.
  std::vector<JobHandle> live;
  live.reserve(strip.size());
  for (JobHandle& job : strip) {
    job->dequeued_at_ = now;
    if (job->has_deadline_ && now >= job->deadline_) {
      finalize(job, JobOutcome::kExpired, RejectReason::kNone,
               "deadline expired while queued", nullptr, false);
    } else {
      live.push_back(job);
    }
  }
  if (live.empty()) return;

  // Make LRU capacity BEFORE taking t.mu: evict_for locks a victim
  // tenant's mu, and holding two peer tenant mutexes at once would put
  // them into a lock-order cycle (strip A evicts B, strip B evicts A).
  // No thread may ever hold two tenant mutexes. The unlocked peeks are
  // safe on this thread: t.driver and the breaker fields are written
  // only by the scheduler, and the build decision below recomputes the
  // same breaker condition under t.mu with the same `now`.
  const bool will_build_planned =
      !t.driver &&
      (t.breaker != BreakerState::kOpen || now >= t.retry_at);
  if (will_build_planned) evict_for(t);

  std::lock_guard<std::mutex> lk(t.mu);

  const auto fail_all = [&](const std::string& err, bool degraded) {
    for (const JobHandle& job : live) {
      finalize(job, JobOutcome::kFailed, RejectReason::kNone, err, nullptr,
               degraded);
    }
  };

  // Breaker gate BEFORE touching plans: an open breaker routes the strip
  // to the exact serial fallback without rebuilding the planned driver.
  const bool planned = breaker_allows_planned(t, now);

  BatchDriver* d = nullptr;
  try {
    if (planned) {
      apply_pending_update(t);
      ensure_driver(t);
      d = t.driver.get();
    } else {
      apply_pending_update(t);
      ensure_fallback(t);
      d = t.fallback.get();
    }
  } catch (rt::StallError& e) {
    // A stall watchdog fired inside a refresh's parallel refactor. The
    // in-drain stall path degrades silently inside the preconditioner;
    // this one surfaces here, so annotate it with the serving context
    // before the tenant's job-level error is written.
    if (t.driver) {
      e.add_context(
          "strategy " +
          std::string(core::to_string(
              t.driver->preconditioner().plan().strategy())) +
          ", matrix " + std::to_string(t.id));
    } else {
      e.add_context("matrix " + std::to_string(t.id));
    }
    stalls_.fetch_add(1, std::memory_order_relaxed);
    if (planned) drop_driver(t);
    t.fallback.reset();
    breaker_note_failure(t, now);
    fail_all(std::string("plan build/refresh failed: ") + e.what(), !planned);
    return;
  } catch (const rt::PoolShutdownError& e) {
    // Teardown broke a wedged build/refresh region: abandoned workers may
    // still touch the plans — park, never free.
    pool_abandoned_.store(true, std::memory_order_release);
    quarantine(t, live);
    fail_all(std::string("plan build/refresh failed: ") + e.what(), !planned);
    return;
  } catch (const std::exception& e) {
    // Build/refresh blew up (zero pivot, poisoned refresh, injected
    // fault): infrastructure failure before any job ran. The fallback
    // driver goes too — if the refresh threw after apply_pending_update
    // adopted the new values, its factors are stale/partially updated
    // (the StallError path above does the same).
    if (planned) drop_driver(t);
    t.fallback.reset();
    breaker_note_failure(t, now);
    fail_all(std::string("plan build/refresh failed: ") + e.what(), !planned);
    return;
  }

  try {
    for (const JobHandle& job : live) {
      d->enqueue(job->b_, job->x_);
    }
  } catch (const std::exception& e) {
    // BatchDriver::enqueue rejects undersized or (with screen_nonfinite)
    // non-finite inputs. Sizes were validated at submit, so this is a
    // client-data error, not an infrastructure failure — the breaker is
    // not charged. The partially enqueued strip left spans into the
    // jobs' buffers inside the driver, so the driver is discarded rather
    // than reused with a stale queue.
    if (planned) drop_driver(t);
    t.fallback.reset();
    fail_all(std::string("enqueue failed: ") + e.what(), !planned);
    return;
  }

  try {
    const BatchReport rep = d->drain();
    const bool degraded = !planned || rep.degraded_serial;
    for (std::size_t j = 0; j < live.size(); ++j) {
      const SolveReport& sr = rep.reports[j];
      if (sr.converged) {
        finalize(live[j], JobOutcome::kSolved, RejectReason::kNone, "", &sr,
                 degraded);
      } else {
        std::string err = sr.breakdown
                              ? "numerical breakdown: " + sr.breakdown_reason
                              : "did not converge in " +
                                    std::to_string(sr.iterations) +
                                    " iterations";
        finalize(live[j], JobOutcome::kFailed, RejectReason::kNone,
                 std::move(err), &sr, degraded);
      }
    }
    if (planned) {
      if (rep.degraded_serial) {
        // An in-region fault poisoned the plan mid-drain. The answers
        // above are still exact (§12), but the parallel executor is
        // gone: drop the driver and count an infrastructure failure.
        drop_driver(t);
        breaker_note_failure(t, now);
      } else {
        breaker_note_success(t);
      }
    }
  } catch (rt::StallError& e) {
    e.add_context("strategy " +
                  std::string(core::to_string(
                      d->preconditioner().plan().strategy())) +
                  ", matrix " + std::to_string(t.id));
    stalls_.fetch_add(1, std::memory_order_relaxed);
    if (planned) drop_driver(t);
    t.fallback.reset();  // cheap to rebuild; never keep a suspect driver
    breaker_note_failure(t, now);
    fail_all(e.what(), !planned);
  } catch (const rt::PoolShutdownError& e) {
    // Teardown broke this wedged drain: the abandoned workers may still
    // be executing against the plans and the jobs' b/x buffers — park
    // everything, never free it.
    pool_abandoned_.store(true, std::memory_order_release);
    quarantine(t, live);
    fail_all(e.what(), !planned);
  } catch (const std::exception& e) {
    // Anything else out of a drain (PlanPoisonedError, injected faults
    // rethrown at the join, pivot blowups from a retry refresh...): the
    // driver's internal queue state is unknown — discard it.
    if (planned) drop_driver(t);
    t.fallback.reset();
    breaker_note_failure(t, now);
    fail_all(e.what(), !planned);
  }
}

void Service::apply_pending_update(Tenant& t) {
  if (!t.has_pending) return;
  t.has_pending = false;
  if (t.pending_same_pattern) {
    t.a.val = std::move(t.pending.val);
    t.pending = sparse::Csr{};
    if (t.driver) {
      // The plan-cache pattern hit: parallel numeric refactor through the
      // persistent FactorPlan + value-only TrisolvePlan refresh. Throws
      // on a bad pivot — the caller treats that as an infrastructure
      // failure (factors are contaminated until a healthy refactor).
      t.driver->refactor(t.a);
      value_refreshes_.fetch_add(1, std::memory_order_relaxed);
      ++t.refreshes;
    }
    // No live driver: the values are adopted now, plans build from them
    // on demand (still no symbolic work wasted).
    if (t.fallback) t.fallback->refactor(t.a);
  } else {
    // Pattern changed: plans are structurally invalid. Drop them first
    // (they hold a pointer to t.a) and rebuild lazily.
    drop_driver(t);
    t.fallback.reset();
    t.a = std::move(t.pending);
    t.pending = sparse::Csr{};
  }
}

void Service::ensure_driver(Tenant& t) {
  if (t.driver) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    // Cache capacity was made by process_strip's evict_for call BEFORE
    // t.mu was taken (two tenant mutexes must never nest). The other
    // build path — a pattern change that drop_driver()ed inside
    // apply_pending_update — freed its own slot, so no eviction is
    // needed here either.
    auto d = std::make_unique<BatchDriver>(*pool_, t.a, planned_driver_opts());
    if (t.injector) d->set_fault_injector(t.injector);
    d->preconditioner().reserve_batch(
        static_cast<index_t>(std::min<std::size_t>(opts_.max_batch, 64)));
    t.driver = std::move(d);
    std::lock_guard<std::mutex> lk(tenants_mu_);
    ++live_plans_;
  }
  std::lock_guard<std::mutex> lk(tenants_mu_);
  t.last_used = ++lru_tick_;
}

void Service::ensure_fallback(Tenant& t) {
  if (t.fallback) return;
  // Exact serial path: sequential-chain strategy over the CSR view, no
  // parallel region to fault, no calibration, watchdog irrelevant. The
  // Krylov configuration (method, tolerance, retry ladder) is kept so
  // degraded answers meet the same convergence contract.
  BatchDriverOptions o = opts_.solver;
  o.strategy = sparse::ExecutionStrategy::kSerial;
  o.layout = sparse::PlanLayout::kCsrView;
  o.nthreads = 1;
  o.calibration_epochs = 0;
  o.use_tuning_cache = false;
  o.stall_budget = 0;
  t.fallback = std::make_unique<BatchDriver>(*pool_, t.a, o);
}

void Service::drop_driver(Tenant& t) {
  if (!t.driver) return;
  t.driver.reset();
  std::lock_guard<std::mutex> lk(tenants_mu_);
  --live_plans_;
}

void Service::quarantine(Tenant& t, const std::vector<JobHandle>& live) {
  if (t.driver) {
    park_abandoned(std::shared_ptr<void>(std::move(t.driver)));
    std::lock_guard<std::mutex> lk(tenants_mu_);
    --live_plans_;
  }
  if (t.fallback) {
    park_abandoned(std::shared_ptr<void>(std::move(t.fallback)));
  }
  for (const JobHandle& job : live) {
    park_abandoned(std::static_pointer_cast<void>(job));
  }
}

void Service::evict_for(Tenant& t) {
  // Scheduler-only, called from process_strip BEFORE t.mu is taken: the
  // victim's mu is the only tenant mutex this function (or its caller)
  // holds at any instant, so peer tenant mutexes never nest and cannot
  // form a lock-order cycle. tenants_mu_ stays innermost throughout.
  Tenant* victim = nullptr;
  {
    std::lock_guard<std::mutex> lk(tenants_mu_);
    if (live_plans_ < opts_.max_live_plans) return;
    std::uint64_t oldest = UINT64_MAX;
    for (const auto& [id, up] : tenants_) {
      Tenant* c = up.get();
      if (c == &t) continue;
      // last_used is guarded by tenants_mu_; whether c actually holds a
      // live driver is checked under c->mu below.
      if (c->last_used < oldest) {
        // Only consider plausible victims; the authoritative driver
        // check happens under c->mu.
        oldest = c->last_used;
        victim = c;
      }
    }
  }
  // Walk victims from least recently used until one actually held plans.
  // (The simple scan above can name a tenant that never built plans; in
  // that case re-scan excluding it.)
  std::vector<const Tenant*> skip;
  while (victim) {
    {
      std::lock_guard<std::mutex> vl(victim->mu);
      if (victim->driver) {
        victim->driver.reset();
        victim->fallback.reset();
        cache_evictions_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lk(tenants_mu_);
        --live_plans_;
        return;
      }
    }
    skip.push_back(victim);
    Tenant* next = nullptr;
    {
      std::lock_guard<std::mutex> lk(tenants_mu_);
      if (live_plans_ < opts_.max_live_plans) return;
      std::uint64_t oldest = UINT64_MAX;
      for (const auto& [id, up] : tenants_) {
        Tenant* c = up.get();
        if (c == &t) continue;
        if (std::find(skip.begin(), skip.end(), c) != skip.end()) continue;
        if (c->last_used < oldest) {
          oldest = c->last_used;
          next = c;
        }
      }
    }
    victim = next;
  }
  // Every other tenant is plan-less yet live_plans_ is at the cap: the
  // cap must be 1 and t itself holds the only plans — nothing to do.
}

// ---------------------------------------------------------------- breaker

bool Service::breaker_allows_planned(Tenant& t, Clock::time_point now) {
  switch (t.breaker) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kHalfOpen:
      return true;  // probe already in flight (strips are sequential)
    case BreakerState::kOpen:
      if (now >= t.retry_at) {
        t.breaker = BreakerState::kHalfOpen;  // backoff elapsed: probe
        return true;
      }
      return false;
  }
  return true;
}

void Service::breaker_note_failure(Tenant& t, Clock::time_point now) {
  ++t.consecutive_failures;
  const bool probe_failed = t.breaker == BreakerState::kHalfOpen;
  if (!probe_failed && t.breaker == BreakerState::kClosed &&
      t.consecutive_failures < opts_.breaker_threshold) {
    return;  // not yet: give the planned path its remaining chances
  }
  if (t.breaker == BreakerState::kOpen) return;  // already open (fallback err)
  // Trip (first time) or re-trip (failed half-open probe): exponential
  // backoff, capped.
  t.backoff_ms = t.backoff_ms <= 0.0
                     ? opts_.breaker_backoff_ms
                     : std::min(t.backoff_ms * 2.0, opts_.breaker_backoff_max_ms);
  t.breaker = BreakerState::kOpen;
  t.retry_at = now + ms_duration(t.backoff_ms);
  breaker_trips_.fetch_add(1, std::memory_order_relaxed);
}

void Service::breaker_note_success(Tenant& t) {
  t.consecutive_failures = 0;
  if (t.breaker != BreakerState::kClosed) {
    t.breaker = BreakerState::kClosed;
    t.backoff_ms = 0.0;
    breaker_recoveries_.fetch_add(1, std::memory_order_relaxed);
  }
}

// -------------------------------------------------------------- accounting

void Service::finalize(const JobHandle& job, JobOutcome outcome,
                       RejectReason why, std::string error,
                       const SolveReport* report, bool degraded) {
  const auto now = Clock::now();
  {
    // Claim once-only, but don't publish the outcome yet: counters must
    // be visible BEFORE wait() can return, so a caller who sees its job
    // finished also sees it counted in report().
    std::lock_guard<std::mutex> lk(job->mu_);
    if (job->claimed_) return;  // paranoia: every job finalizes once
    job->claimed_ = true;
  }
  const double total_ms = elapsed_ms(job->submitted_at_, now);

  switch (outcome) {
    case JobOutcome::kSolved:
      solved_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobOutcome::kExpired:
      expired_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobOutcome::kRejected:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobOutcome::kFailed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobOutcome::kPending:
      break;  // unreachable
  }
  if (degraded) degraded_jobs_.fetch_add(1, std::memory_order_relaxed);
  if (outcome == JobOutcome::kSolved) record_latency(total_ms);

  {
    std::lock_guard<std::mutex> lk(job->mu_);
    JobResult& r = job->result_;
    r.outcome = outcome;
    r.reject_reason = why;
    r.error = std::move(error);
    if (report) r.report = *report;
    r.degraded = degraded;
    r.total_ms = total_ms;
    if (job->dequeued_at_ != Clock::time_point{}) {
      r.queue_ms = elapsed_ms(job->submitted_at_, job->dequeued_at_);
      r.solve_ms = elapsed_ms(job->dequeued_at_, now);
    } else {
      r.queue_ms = r.total_ms;
      r.solve_ms = 0.0;
    }
  }
  job->cv_.notify_all();
}

void Service::record_latency(double ms) {
  std::lock_guard<std::mutex> lk(lat_mu_);
  if (latencies_.size() < opts_.latency_window) {
    latencies_.push_back(ms);
  } else {
    latencies_[lat_next_] = ms;
    lat_next_ = (lat_next_ + 1) % opts_.latency_window;
  }
  ++lat_count_;
  lat_max_ = std::max(lat_max_, ms);
}

ServiceReport Service::report() const {
  ServiceReport r;
  r.submitted = submitted_.load(std::memory_order_relaxed);
  r.solved = solved_.load(std::memory_order_relaxed);
  r.expired = expired_.load(std::memory_order_relaxed);
  r.rejected = rejected_.load(std::memory_order_relaxed);
  r.failed = failed_.load(std::memory_order_relaxed);
  r.shed = shed_.load(std::memory_order_relaxed);
  r.degraded_jobs = degraded_jobs_.load(std::memory_order_relaxed);
  r.breaker_trips = breaker_trips_.load(std::memory_order_relaxed);
  r.breaker_recoveries = breaker_recoveries_.load(std::memory_order_relaxed);
  r.stalls = stalls_.load(std::memory_order_relaxed);
  r.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  r.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  r.cache_evictions = cache_evictions_.load(std::memory_order_relaxed);
  r.value_refreshes = value_refreshes_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(qmu_);
    r.queue_depth = queue_.size();
    r.queue_high_water = high_water_;
  }
  {
    std::lock_guard<std::mutex> lk(tenants_mu_);
    r.matrices = tenants_.size();
    r.live_plans = live_plans_;
  }
  {
    std::lock_guard<std::mutex> lk(lat_mu_);
    r.latency_samples = lat_count_;
    r.max_ms = lat_max_;
    if (!latencies_.empty()) {
      std::vector<double> sorted(latencies_);
      std::sort(sorted.begin(), sorted.end());
      const auto q = [&](double p) {
        const std::size_t i = static_cast<std::size_t>(
            p * static_cast<double>(sorted.size() - 1) + 0.5);
        return sorted[std::min(i, sorted.size() - 1)];
      };
      r.p50_ms = q(0.50);
      r.p99_ms = q(0.99);
    }
  }
  return r;
}

MatrixInfo Service::matrix_info(MatrixId id) const {
  Tenant* t = find_tenant(id);
  if (!t) {
    throw std::invalid_argument("Service::matrix_info: unknown matrix id " +
                                std::to_string(id));
  }
  MatrixInfo info;
  std::lock_guard<std::mutex> lk(t->mu);
  info.live = t->driver != nullptr;
  if (t->driver) {
    const sparse::TrisolvePlan& plan = t->driver->preconditioner().plan();
    info.strategy = plan.strategy();
    info.layout = plan.layout();
    info.factor_ms = plan.telemetry().factor_ms;
    info.refresh_ms = plan.telemetry().refresh_ms;
  }
  info.refreshes = t->refreshes;
  info.breaker = t->breaker;
  info.consecutive_failures = t->consecutive_failures;
  info.backoff_ms = t->backoff_ms;
  return info;
}

}  // namespace pdx::solve
