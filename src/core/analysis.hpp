// analysis.hpp — dependence-structure analysis and performance prediction.
//
// Tools for reasoning about what a preprocessed doacross *can* achieve on
// a given loop before running it:
//
//   * dependence-distance histogram — the quantity Figure 6 sweeps (the
//     paper's L controls exactly this distribution);
//   * greedy list-scheduling simulation — an idealized executor (zero
//     synchronization cost, perfect knowledge) that bounds the achievable
//     makespan for a given iteration order and processor count. The
//     benches print predicted next to measured efficiency so the reader
//     can separate "the DAG does not allow more" from "the runtime is
//     losing time".
#pragma once

#include <span>
#include <vector>

#include "core/doconsider.hpp"
#include "runtime/types.hpp"

namespace pdx::core {

struct DistanceHistogram {
  /// count[d] = number of true dependences at distance d (i - j), for
  /// d <= max_tracked; longer distances land in `overflow`.
  std::vector<index_t> count;
  index_t overflow = 0;
  index_t total = 0;
  index_t min_distance = 0;  ///< 0 when there are no dependences
  index_t max_distance = 0;
  double mean_distance = 0.0;
};

DistanceHistogram dependence_distance_histogram(const DepGraph& g,
                                                index_t max_tracked = 64);

/// Result of the idealized executor simulation.
struct ScheduleEstimate {
  double makespan = 0.0;        ///< predicted parallel time (cost units)
  double total_work = 0.0;      ///< sum of all iteration costs
  double critical_path = 0.0;   ///< longest dependence chain (cost units)
  /// total_work / (procs * makespan) — the efficiency an ideal runtime
  /// would reach with this order on this many processors.
  double predicted_efficiency(unsigned procs) const noexcept {
    return makespan > 0.0
               ? total_work / (static_cast<double>(procs) * makespan)
               : 0.0;
  }
};

/// Simulate greedy execution of `order` on `procs` processors: each
/// iteration is claimed in order by the earliest-free processor and starts
/// when both that processor and all its dependences are done (zero
/// synchronization overhead). `cost[i]` is iteration i's execution cost;
/// pass an empty span for unit costs. `order` must be a valid schedule.
ScheduleEstimate simulate_list_schedule(const DepGraph& g,
                                        std::span<const index_t> order,
                                        unsigned procs,
                                        std::span<const double> cost = {});

}  // namespace pdx::core
