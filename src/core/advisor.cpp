#include "core/advisor.hpp"

#include <algorithm>
#include <thread>

#include "core/analysis.hpp"

namespace pdx::core {

namespace {

/// procs == 0 means "hardware width", the ThreadPool(width = 0) /
/// DoacrossOptions::nthreads = 0 convention used everywhere else.
unsigned normalize_procs(unsigned procs) noexcept {
  if (procs != 0) return procs;
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace

ScheduleAdvice advise_schedule(const DepGraph& g, unsigned procs) {
  procs = normalize_procs(procs);
  const index_t n = g.iterations();
  ScheduleAdvice a;

  if (n == 0 || g.edges() == 0) {
    a.schedule = rt::Schedule::static_block();
    a.use_reordering = false;
    a.strategy = ExecStrategy::kLevelBarrier;  // one wavefront: a doall
    a.avg_parallelism = static_cast<double>(n);
    a.rationale =
        "no cross-iteration dependences: doall semantics, block split "
        "for locality";
    return a;
  }

  const std::vector<index_t> levels = dependence_levels(n, g.as_fn());
  a.critical_path =
      1 + *std::max_element(levels.begin(), levels.end());
  a.avg_parallelism =
      static_cast<double>(n) / static_cast<double>(a.critical_path);

  const DistanceHistogram h = dependence_distance_histogram(g);
  a.max_distance = h.max_distance;

  if (a.avg_parallelism < 1.5) {
    // The DAG is (nearly) a serial chain: no schedule can help, and the
    // flag traffic only adds cost.
    a.schedule = rt::Schedule::static_block();
    a.use_reordering = false;
    a.worth_parallelizing = false;
    a.strategy = ExecStrategy::kSerial;
    a.rationale =
        "average parallelism < 1.5: dependence chain is effectively "
        "serial; run sequentially";
    return a;
  }

  // Block size each processor would own under a static split.
  const index_t block = std::max<index_t>(1, n / static_cast<index_t>(procs));
  if (a.max_distance * 8 <= block) {
    // Dependences are short relative to the block: at most 1/8 of each
    // block chains across the boundary, the rest is intra-block and free
    // (bench E6: static-block beat every alternative on the Fig. 4 loop).
    a.schedule = rt::Schedule::static_block();
    a.use_reordering = false;
    a.strategy = ExecStrategy::kBlockedHybrid;
    a.rationale =
        "max dependence distance is small versus the per-processor block: "
        "static-block keeps dependences intra-thread";
    return a;
  }

  // General case: level-order execution with round-robin issue (bench E6
  // and Table 1: dynamic/1 + doconsider order on every sparse factor).
  a.schedule = rt::Schedule::dynamic(1);
  a.use_reordering = true;
  a.strategy = ExecStrategy::kDoacross;
  a.rationale =
      "long-distance dependences: execute in doconsider (wavefront) order "
      "with dynamic single-iteration issue";
  return a;
}

ScheduleAdvice advise_schedule(const TrisolveStructure& s, unsigned procs) {
  procs = normalize_procs(procs);
  ScheduleAdvice a;
  a.critical_path = s.levels;
  a.avg_parallelism = s.avg_level_width;
  a.max_distance = s.max_distance;

  if (s.n == 0) {
    a.schedule = rt::Schedule::static_block();
    a.worth_parallelizing = false;
    a.strategy = ExecStrategy::kSerial;
    a.rationale = "empty system: nothing to schedule";
    return a;
  }

  if (procs == 1) {
    a.schedule = rt::Schedule::static_block();
    a.worth_parallelizing = false;
    a.strategy = ExecStrategy::kSerial;
    a.rationale =
        "single processor: every parallel executor only adds "
        "synchronization; run the plain sequential solve";
    return a;
  }

  if (s.avg_level_width < 1.5) {
    // Chain-like factor (bidiagonal shapes, heavily sequential bands):
    // the critical path is the whole loop; flags or barriers only slow
    // the one thread doing real work.
    a.schedule = rt::Schedule::static_block();
    a.worth_parallelizing = false;
    a.strategy = ExecStrategy::kSerial;
    a.rationale =
        "average wavefront width < 1.5: the dependence chain is "
        "effectively serial; run sequentially";
    return a;
  }

  // Wide, shallow level structure: every barrier is amortized over at
  // least ~2 rows per processor, and dropping the per-row flag traffic
  // (one release store + acquire spin per dependence) wins outright —
  // the bulk-synchronous wavefront executor needs no flags at all.
  const double wide = std::max(4.0, 2.0 * static_cast<double>(procs));
  if (s.avg_level_width >= wide) {
    a.schedule = rt::Schedule::static_block();  // within each wavefront
    a.use_reordering = true;                    // level order IS the order
    a.strategy = ExecStrategy::kLevelBarrier;
    a.rationale =
        "wide shallow wavefronts (avg width >= 2 rows/processor): "
        "bulk-synchronous level execution, no per-row flags";
    return a;
  }

  // Short-distance dependences: a static block split keeps almost every
  // dependence inside one thread's contiguous range, where program order
  // resolves it for free; only the few boundary-crossing edges need
  // flags (the core/blocked_doacross.hpp realization).
  const index_t block =
      std::max<index_t>(1, s.n / static_cast<index_t>(procs));
  if (s.max_distance * 8 <= block) {
    a.schedule = rt::Schedule::static_block();
    a.use_reordering = false;  // source order keeps blocks contiguous
    a.strategy = ExecStrategy::kBlockedHybrid;
    a.rationale =
        "short-distance dependences versus the per-processor block: "
        "static blocks with flags only across block boundaries";
    return a;
  }

  // Long-distance sparse dependences with moderate level widths: the
  // flag-based doacross in doconsider order pipelines across wavefronts
  // where barriers would serialize on the narrow levels (Table 1).
  a.schedule = rt::Schedule::dynamic(1);
  a.use_reordering = true;
  a.strategy = ExecStrategy::kDoacross;
  a.rationale =
      "long-distance dependences and narrow wavefronts: flag-based "
      "doacross in doconsider order with dynamic single-iteration issue";
  return a;
}

}  // namespace pdx::core
