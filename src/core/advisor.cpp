#include "core/advisor.hpp"

#include <algorithm>
#include <thread>

#include "core/analysis.hpp"

namespace pdx::core {

namespace {

/// procs == 0 means "hardware width", the ThreadPool(width = 0) /
/// DoacrossOptions::nthreads = 0 convention used everywhere else.
unsigned normalize_procs(unsigned procs) noexcept {
  if (procs != 0) return procs;
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace

ScheduleAdvice advise_schedule(const DepGraph& g, unsigned procs) {
  procs = normalize_procs(procs);
  const index_t n = g.iterations();
  ScheduleAdvice a;

  if (n == 0 || g.edges() == 0) {
    a.schedule = rt::Schedule::static_block();
    a.use_reordering = false;
    a.strategy = ExecStrategy::kLevelBarrier;  // one wavefront: a doall
    a.avg_parallelism = static_cast<double>(n);
    a.rationale =
        "no cross-iteration dependences: doall semantics, block split "
        "for locality";
    return a;
  }

  const std::vector<index_t> levels = dependence_levels(n, g.as_fn());
  a.critical_path =
      1 + *std::max_element(levels.begin(), levels.end());
  a.avg_parallelism =
      static_cast<double>(n) / static_cast<double>(a.critical_path);

  const DistanceHistogram h = dependence_distance_histogram(g);
  a.max_distance = h.max_distance;

  if (a.avg_parallelism < 1.5) {
    // The DAG is (nearly) a serial chain: no schedule can help, and the
    // flag traffic only adds cost.
    a.schedule = rt::Schedule::static_block();
    a.use_reordering = false;
    a.worth_parallelizing = false;
    a.strategy = ExecStrategy::kSerial;
    a.rationale =
        "average parallelism < 1.5: dependence chain is effectively "
        "serial; run sequentially";
    return a;
  }

  // Block size each processor would own under a static split.
  const index_t block = std::max<index_t>(1, n / static_cast<index_t>(procs));
  if (a.max_distance * 8 <= block) {
    // Dependences are short relative to the block: at most 1/8 of each
    // block chains across the boundary, the rest is intra-block and free
    // (bench E6: static-block beat every alternative on the Fig. 4 loop).
    a.schedule = rt::Schedule::static_block();
    a.use_reordering = false;
    a.strategy = ExecStrategy::kBlockedHybrid;
    a.rationale =
        "max dependence distance is small versus the per-processor block: "
        "static-block keeps dependences intra-thread";
    return a;
  }

  // General case: level-order execution with round-robin issue (bench E6
  // and Table 1: dynamic/1 + doconsider order on every sparse factor).
  a.schedule = rt::Schedule::dynamic(1);
  a.use_reordering = true;
  a.strategy = ExecStrategy::kDoacross;
  a.rationale =
      "long-distance dependences: execute in doconsider (wavefront) order "
      "with dynamic single-iteration issue";
  return a;
}

namespace {

/// One decision ladder serves both the solve and the factorization
/// advisors; only the thresholds and the rationale wording differ.
/// The factorization's looser thresholds encode its heavier rows —
/// every elimination row does ~nnz/row of a solve row's work, so
/// synchronization amortizes sooner (serial cutoff 1.2 vs 1.5, a
/// barrier hidden by 1 row/processor vs 2, boundary waits tolerated at
/// twice the dependence distance).
struct StrategyLadder {
  double serial_width;    ///< below this avg wavefront width: serial
  double wide_per_proc;   ///< width >= max(4, this * procs): level-barrier
  index_t dist_multiple;  ///< max_distance * this <= block: blocked-hybrid
  const char* empty_rationale;
  const char* one_proc_rationale;
  const char* serial_rationale;
  const char* level_rationale;
  const char* blocked_rationale;
  const char* doacross_rationale;
};

ScheduleAdvice advise_trisolve_shaped(const TrisolveStructure& s,
                                      unsigned procs,
                                      const StrategyLadder& l) {
  procs = normalize_procs(procs);
  ScheduleAdvice a;
  a.critical_path = s.levels;
  a.avg_parallelism = s.avg_level_width;
  a.max_distance = s.max_distance;

  if (s.n == 0) {
    a.schedule = rt::Schedule::static_block();
    a.worth_parallelizing = false;
    a.strategy = ExecStrategy::kSerial;
    a.rationale = l.empty_rationale;
    return a;
  }

  if (procs == 1) {
    a.schedule = rt::Schedule::static_block();
    a.worth_parallelizing = false;
    a.strategy = ExecStrategy::kSerial;
    a.rationale = l.one_proc_rationale;
    return a;
  }

  // Chain-like structure (bidiagonal shapes, heavily sequential bands):
  // the critical path is the whole loop; flags or barriers only slow
  // the one thread doing real work.
  if (s.avg_level_width < l.serial_width) {
    a.schedule = rt::Schedule::static_block();
    a.worth_parallelizing = false;
    a.strategy = ExecStrategy::kSerial;
    a.rationale = l.serial_rationale;
    return a;
  }

  // Wide, shallow level structure: every barrier is amortized over
  // enough per-processor row work, and dropping the per-row flag
  // traffic (one release store + acquire spin per dependence) wins
  // outright — the bulk-synchronous wavefront executor needs no flags.
  const double wide =
      std::max(4.0, l.wide_per_proc * static_cast<double>(procs));
  if (s.avg_level_width >= wide) {
    a.schedule = rt::Schedule::static_block();  // within each wavefront
    a.use_reordering = true;                    // level order IS the order
    a.strategy = ExecStrategy::kLevelBarrier;
    a.rationale = l.level_rationale;
    return a;
  }

  // Short-distance dependences: a static block split keeps almost every
  // dependence inside one thread's contiguous range, where program order
  // resolves it for free; only the few boundary-crossing edges need
  // flags (the core/blocked_doacross.hpp realization).
  const index_t block =
      std::max<index_t>(1, s.n / static_cast<index_t>(procs));
  if (s.max_distance * l.dist_multiple <= block) {
    a.schedule = rt::Schedule::static_block();
    a.use_reordering = false;  // source order keeps blocks contiguous
    a.strategy = ExecStrategy::kBlockedHybrid;
    a.rationale = l.blocked_rationale;
    return a;
  }

  // Long-distance sparse dependences with moderate level widths: the
  // flag-based doacross in doconsider order pipelines across wavefronts
  // where barriers would serialize on the narrow levels (Table 1).
  a.schedule = rt::Schedule::dynamic(1);
  a.use_reordering = true;
  a.strategy = ExecStrategy::kDoacross;
  a.rationale = l.doacross_rationale;
  return a;
}

}  // namespace

ScheduleAdvice advise_schedule(const TrisolveStructure& s, unsigned procs) {
  static constexpr StrategyLadder kSolveLadder{
      1.5,
      2.0,
      8,
      "empty system: nothing to schedule",
      "single processor: every parallel executor only adds "
      "synchronization; run the plain sequential solve",
      "average wavefront width < 1.5: the dependence chain is "
      "effectively serial; run sequentially",
      "wide shallow wavefronts (avg width >= 2 rows/processor): "
      "bulk-synchronous level execution, no per-row flags",
      "short-distance dependences versus the per-processor block: "
      "static blocks with flags only across block boundaries",
      "long-distance dependences and narrow wavefronts: flag-based "
      "doacross in doconsider order with dynamic single-iteration issue",
  };
  return advise_trisolve_shaped(s, procs, kSolveLadder);
}

ScheduleAdvice advise_factor_schedule(const TrisolveStructure& s,
                                      unsigned procs) {
  static constexpr StrategyLadder kFactorLadder{
      1.2,
      1.0,
      4,
      "empty system: nothing to factor",
      "single processor: run the plain sequential elimination",
      "average wavefront width < 1.2: the elimination chain is "
      "effectively serial; factor sequentially",
      "wide wavefronts (avg width >= 1 row/processor of elimination "
      "work): bulk-synchronous level factorization, no per-row flags",
      "short-distance dependences versus the per-processor block: "
      "static blocks with flags only across block boundaries",
      "long-distance dependences and narrow wavefronts: flag-based "
      "doacross elimination in doconsider order with dynamic "
      "single-iteration issue",
  };
  return advise_trisolve_shaped(s, procs, kFactorLadder);
}

TuningKey make_tuning_key(const TrisolveStructure& s, unsigned procs,
                          bool factor) noexcept {
  return TuningKey{s.n,           s.nnz,  s.levels, s.max_level_size,
                   s.max_distance, procs, factor};
}

std::size_t TuningCache::KeyHash::operator()(
    const TuningKey& k) const noexcept {
  auto mix = [](std::size_t h, std::uint64_t v) noexcept {
    return h ^ (static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ULL +
                (h << 6) + (h >> 2));
  };
  std::size_t h = 0;
  h = mix(h, static_cast<std::uint64_t>(k.n));
  h = mix(h, static_cast<std::uint64_t>(k.nnz));
  h = mix(h, static_cast<std::uint64_t>(k.levels));
  h = mix(h, static_cast<std::uint64_t>(k.max_level_size));
  h = mix(h, static_cast<std::uint64_t>(k.max_distance));
  h = mix(h, k.procs);
  h = mix(h, k.factor ? 1u : 0u);
  return h;
}

bool TuningCache::lookup(const TuningKey& key, ExecStrategy& out) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  out = it->second;
  return true;
}

void TuningCache::store(const TuningKey& key, ExecStrategy winner) {
  const std::lock_guard<std::mutex> lock(mu_);
  map_[key] = winner;
  ++stores_;
}

void TuningCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  hits_ = misses_ = stores_ = 0;
}

TuningCacheStats TuningCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return TuningCacheStats{hits_, misses_, stores_, map_.size()};
}

TuningCache& tuning_cache() noexcept {
  static TuningCache cache;
  return cache;
}

}  // namespace pdx::core
