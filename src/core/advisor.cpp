#include "core/advisor.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/analysis.hpp"

namespace pdx::core {

ScheduleAdvice advise_schedule(const DepGraph& g, unsigned procs) {
  if (procs == 0) {
    throw std::invalid_argument("advise_schedule: procs must be >= 1");
  }
  const index_t n = g.iterations();
  ScheduleAdvice a;

  if (n == 0 || g.edges() == 0) {
    a.schedule = rt::Schedule::static_block();
    a.use_reordering = false;
    a.avg_parallelism = static_cast<double>(n);
    a.rationale =
        "no cross-iteration dependences: doall semantics, block split "
        "for locality";
    return a;
  }

  const std::vector<index_t> levels = dependence_levels(n, g.as_fn());
  a.critical_path =
      1 + *std::max_element(levels.begin(), levels.end());
  a.avg_parallelism =
      static_cast<double>(n) / static_cast<double>(a.critical_path);

  const DistanceHistogram h = dependence_distance_histogram(g);
  a.max_distance = h.max_distance;

  if (a.avg_parallelism < 1.5) {
    // The DAG is (nearly) a serial chain: no schedule can help, and the
    // flag traffic only adds cost.
    a.schedule = rt::Schedule::static_block();
    a.use_reordering = false;
    a.worth_parallelizing = false;
    a.rationale =
        "average parallelism < 1.5: dependence chain is effectively "
        "serial; run sequentially";
    return a;
  }

  // Block size each processor would own under a static split.
  const index_t block = std::max<index_t>(1, n / static_cast<index_t>(procs));
  if (a.max_distance * 8 <= block) {
    // Dependences are short relative to the block: at most 1/8 of each
    // block chains across the boundary, the rest is intra-block and free
    // (bench E6: static-block beat every alternative on the Fig. 4 loop).
    a.schedule = rt::Schedule::static_block();
    a.use_reordering = false;
    a.rationale =
        "max dependence distance is small versus the per-processor block: "
        "static-block keeps dependences intra-thread";
    return a;
  }

  // General case: level-order execution with round-robin issue (bench E6
  // and Table 1: dynamic/1 + doconsider order on every sparse factor).
  a.schedule = rt::Schedule::dynamic(1);
  a.use_reordering = true;
  a.rationale =
      "long-distance dependences: execute in doconsider (wavefront) order "
      "with dynamic single-iteration issue";
  return a;
}

}  // namespace pdx::core
