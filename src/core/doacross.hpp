// doacross.hpp — the preprocessed doacross engine (paper §2.1–§2.2).
//
// Given a loop
//
//     do i = 1, N
//        y(a(i)) = f( y(b1(i)), y(b2(i)), ... )     -- offsets known only
//     end do                                         -- at execution time
//
// with no output dependences (a injective), DoacrossEngine::run executes it
// in parallel as one fork/join region with three barrier-separated phases:
//
//   1. inspector      parallel do i: iter(a(i)) = i            (Fig. 3)
//   2. executor       parallel do i: body resolves reads through the
//                     iter/ready tables and commits ynew(a(i)) (Fig. 5)
//   3. postprocessor  parallel do i: y(a(i)) = ynew(a(i));
//                     iter(a(i)) = MAXINT; ready(a(i)) = NOTDONE (Fig. 3)
//
// All three phases are fully parallel — the paper's stated requirement for
// execution-time preprocessing. The engine owns the iter/ready/ynew arenas
// and reuses them across calls; the postprocessing sweep (not a full-table
// reset) is what makes that reuse cheap.
//
// The optional `order` lets a doconsider-style transformation (reference
// [4]) execute iterations in a dependence-friendlier sequence. The order
// must be a valid schedule: every true dependence's producer appears before
// its consumers (see core/doconsider.hpp), otherwise the busy waits can
// deadlock.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/doacross_stats.hpp"
#include "core/iter_table.hpp"
#include "core/iteration.hpp"
#include "core/ready_table.hpp"
#include "runtime/aligned.hpp"
#include "runtime/barrier.hpp"
#include "runtime/thread_pool.hpp"

namespace pdx::core {

struct DoacrossOptions {
  /// Members of the parallel region; 0 → the pool's full width.
  unsigned nthreads = 0;
  /// Iteration→processor assignment for the *executor* phase. The
  /// inspector and postprocessor always use a static block split (they are
  /// uniform). Any monotone schedule is deadlock-free (see DESIGN.md §6).
  rt::Schedule schedule = rt::Schedule::static_block();
  /// Optional execution order: execute source iteration order[k] at
  /// position k. Must be a valid schedule for the loop's dependences.
  /// nullptr → source order. The pointer must stay valid during run().
  const index_t* order = nullptr;
  /// Validate the writer map (injective, in range) before running.
  /// O(value_space); intended for tests and first runs.
  bool validate = false;
};

template <class T, class Ready = DenseReadyTable>
class DoacrossEngine {
 public:
  /// `pool`   — parallel region provider (kept by reference).
  /// `value_space` — exclusive upper bound on every offset the loops will
  ///                 read or write; sizes the iter/ready/ynew arenas.
  DoacrossEngine(rt::ThreadPool& pool, index_t value_space)
      : pool_(&pool) {
    reserve(value_space);
  }

  /// Grow arenas to a new value space (never shrinks).
  void reserve(index_t value_space) {
    iter_.ensure_size(value_space);
    ready_.ensure_size(value_space);
    if (static_cast<index_t>(ynew_.size()) < value_space) {
      ynew_.resize(static_cast<std::size_t>(value_space));
    }
  }

  index_t value_space() const noexcept { return iter_.size(); }

  /// Execute one preprocessed doacross loop.
  ///
  /// `writer`  — a(i) for i in [0, N); must be injective (no output deps).
  /// `y`       — the data array, length >= value_space. On return the
  ///             written elements hold their new values (postprocessing
  ///             copied ynew back, paper Fig. 3).
  /// `body`    — callable `void(Iteration<T, Ready>&)`; reads through
  ///             Iteration::read and accumulates into Iteration::lhs.
  template <class Body>
  DoacrossStats run(std::span<const index_t> writer, std::span<T> y,
                    Body&& body, const DoacrossOptions& opts = {}) {
    const index_t n = static_cast<index_t>(writer.size());
    // The loop's value space is y's extent; grow the arenas to cover it.
    // A larger arena left over from a previous loop is harmless: entries
    // beyond this loop's offsets stay never-written/not-done.
    reserve(static_cast<index_t>(y.size()));
    if (opts.validate) {
      const index_t bad =
          find_writer_conflict(writer, static_cast<index_t>(y.size()));
      if (bad >= 0) {
        throw std::invalid_argument(
            "DoacrossEngine::run: writer map has an output dependence or "
            "out-of-range offset at iteration " +
            std::to_string(bad));
      }
    }
    DoacrossStats stats;
    if (n == 0) return stats;

    const unsigned nth = pool_->clamp_threads(opts.nthreads);
    ready_.begin_epoch();

    // Engine-owned synchronization state, reused across calls just like
    // the iter/ready/ynew arenas: no per-run Barrier construction or
    // episodes/rounds allocation (they grow only when the region widens).
    barrier_.reset(nth);
    cursor_.store(0, std::memory_order_relaxed);
    if (episodes_.size() < nth) {
      episodes_.resize(nth);
      rounds_.resize(nth);
    }

    using clock = std::chrono::steady_clock;
    clock::time_point t0, t1, t2, t3;

    const index_t* order = opts.order;
    const index_t* wr = writer.data();
    T* yp = y.data();
    T* ynp = ynew_.data();

    pool_->parallel_region(nth, [&](unsigned tid, unsigned nthreads) {
      // Rendezvous before the clock starts: phase timings measure the
      // algorithm, not the pool's wake-up latency (the Multimax's
      // persistent workers had none to speak of either).
      barrier_.arrive_and_wait();
      if (tid == 0) t0 = clock::now();

      // ---- Phase 1: inspector (paper Fig. 3, preprocessing) ----------
      const rt::IterRange pre = rt::static_block_range(n, tid, nthreads);
      for (index_t i = pre.begin; i < pre.end; ++i) {
        iter_.record(wr[i], i);
      }
      barrier_.arrive_and_wait();
      if (tid == 0) t1 = clock::now();

      // ---- Phase 2: executor (paper Fig. 5) --------------------------
      // `noexcept`: an exception escaping one member mid-phase would
      // leave the others blocked at the next barrier; failing fast
      // (std::terminate) is the only safe behaviour. Bodies that can
      // fail should record the failure and return normally.
      std::uint64_t my_episodes = 0, my_rounds = 0;
      auto run_one = [&](index_t k) noexcept {
        const index_t i = order ? order[k] : k;
        Iteration<T, Ready> it(i, wr[i], iter_.data(), &ready_, yp, ynp,
                               &my_episodes, &my_rounds);
        body(it);
        ynp[wr[i]] = it.lhs();
        ready_.mark_done(wr[i]);  // release: publishes the ynew store
      };
      rt::schedule_run(opts.schedule, n, tid, nthreads, &cursor_, run_one);
      episodes_[tid].value = my_episodes;
      rounds_[tid].value = my_rounds;
      barrier_.arrive_and_wait();
      if (tid == 0) t2 = clock::now();

      // ---- Phase 3: postprocessor (paper Fig. 3) ---------------------
      const rt::IterRange post = rt::static_block_range(n, tid, nthreads);
      for (index_t i = post.begin; i < post.end; ++i) {
        const index_t off = wr[i];
        yp[off] = ynp[off];  // yold(a(i)) = ynew(a(i))
        iter_.clear(off);    // iter(a(i)) = MAXINT
        ready_.clear(off);   // ready(a(i)) = NOTDONE
      }
      barrier_.arrive_and_wait();
      if (tid == 0) t3 = clock::now();
    });

    const auto secs = [](clock::time_point a, clock::time_point b) {
      return std::chrono::duration<double>(b - a).count();
    };
    stats.inspect_seconds = secs(t0, t1);
    stats.execute_seconds = secs(t1, t2);
    stats.post_seconds = secs(t2, t3);
    for (unsigned t = 0; t < nth; ++t) {
      stats.wait_episodes += episodes_[t].value;
      stats.wait_rounds += rounds_[t].value;
    }
    return stats;
  }

  /// The arenas, exposed for tests that verify the reuse invariant
  /// (everything pristine between runs).
  const IterTable& iter_table() const noexcept { return iter_; }
  const Ready& ready_table() const noexcept { return ready_; }

 private:
  rt::ThreadPool* pool_;
  IterTable iter_;
  Ready ready_;
  std::vector<T, rt::CacheAlignedAllocator<T>> ynew_;
  // Reusable per-run synchronization state (run() is single-caller, like
  // the arenas above; concurrent run() on one engine was never legal).
  rt::Barrier barrier_{1};
  std::atomic<index_t> cursor_{0};
  std::vector<rt::Padded<std::uint64_t>> episodes_, rounds_;
};

/// Reference semantics: execute the same loop sequentially, in source
/// order, in place (reads see exactly the values the original loop would
/// see). The doacross must reproduce this bit-for-bit; tests rely on it.
template <class T, class Body>
void doacross_reference(std::span<const index_t> writer, std::span<T> y,
                        Body&& body) {
  const index_t n = static_cast<index_t>(writer.size());
  for (index_t i = 0; i < n; ++i) {
    // In the sequential loop every read simply sees y as it currently is.
    struct SeqIteration {
      index_t i;
      index_t lhs_off;
      T acc;
      T* y;
      index_t index() const noexcept { return i; }
      index_t lhs_index() const noexcept { return lhs_off; }
      T& lhs() noexcept { return acc; }
      T read(index_t off) noexcept {
        return off == lhs_off ? acc : y[off];
      }
    } it{i, writer[static_cast<std::size_t>(i)],
         y[writer[static_cast<std::size_t>(i)]], y.data()};
    body(it);
    y[it.lhs_off] = it.acc;
  }
}

}  // namespace pdx::core
