// ready_table.hpp — the paper's `ready` array (completion flags).
//
// The executor satisfies a true dependence on offset `off` by busy-waiting
// until the producing iteration has stored its result (paper Fig. 2 S1 /
// Fig. 5 S4), and announces its own completion with `ready(a(i)) = DONE`
// (Fig. 2 S3 / Fig. 5 tail). Three interchangeable implementations:
//
//   DenseReadyTable  — one byte per offset, paper-faithful; reset via the
//                      postprocessing loop (`ready(a(i)) = NOTDONE`).
//   PaddedReadyTable — one cache line per offset; ablation for the cost of
//                      false sharing between producer stores and consumer
//                      spins (bench E9).
//   EpochReadyTable  — 32-bit epoch stamps; `begin_epoch()` makes reset
//                      O(1), an engineering extension of the paper's
//                      arena-reuse idea (§2.1 last paragraph).
//
// Memory ordering: `mark_done` is a release store so the producer's ynew
// write happens-before any consumer that observes the flag with the
// acquire loads in `wait_done` / `is_done`.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <span>

#include "runtime/spin_wait.hpp"
#include "runtime/types.hpp"

namespace pdx::core {

class DenseReadyTable {
 public:
  DenseReadyTable() = default;
  explicit DenseReadyTable(index_t size) { ensure_size(size); }

  index_t size() const noexcept { return size_; }

  void ensure_size(index_t size) {
    if (size <= size_) return;
    auto bigger = std::make_unique<std::atomic<std::uint8_t>[]>(
        static_cast<std::size_t>(size));
    for (index_t i = 0; i < size; ++i) {
      bigger[static_cast<std::size_t>(i)].store(0, std::memory_order_relaxed);
    }
    flags_ = std::move(bigger);  // table must be idle when resized
    size_ = size;
  }

  /// No-op for flag-style tables; epoch tables use it to invalidate all
  /// previous DONE marks in O(1).
  void begin_epoch() noexcept {}

  void mark_done(index_t off) noexcept {
    assert(off >= 0 && off < size_);
    flags_[static_cast<std::size_t>(off)].store(1, std::memory_order_release);
  }

  bool is_done(index_t off) const noexcept {
    assert(off >= 0 && off < size_);
    return flags_[static_cast<std::size_t>(off)].load(
               std::memory_order_acquire) != 0;
  }

  /// Busy-wait until `off` is DONE. Returns the number of spin rounds
  /// taken (0 if it was already done) — the executor aggregates these into
  /// the wait statistics reported by bench E3.
  std::uint64_t wait_done(index_t off) const noexcept {
    if (is_done(off)) return 0;
    rt::SpinWait sw;
    std::uint64_t rounds = 0;
    do {
      sw.spin_once();
      ++rounds;
    } while (!is_done(off));
    return rounds;
  }

  /// Postprocessing step for one iteration: ready(writer) = NOTDONE.
  void clear(index_t off) noexcept {
    assert(off >= 0 && off < size_);
    flags_[static_cast<std::size_t>(off)].store(0, std::memory_order_relaxed);
  }

  void clear_all(std::span<const index_t> writer) noexcept {
    for (index_t off : writer) clear(off);
  }

  /// True iff no flag is set (inter-loop invariant; O(size), for tests).
  bool pristine() const noexcept {
    for (index_t i = 0; i < size_; ++i) {
      if (is_done(i)) return false;
    }
    return true;
  }

 private:
  std::unique_ptr<std::atomic<std::uint8_t>[]> flags_;
  index_t size_ = 0;
};

/// One flag per cache line. Identical observable semantics to
/// DenseReadyTable; exists to measure the false-sharing cost of the dense
/// layout (the paper's flag array is dense, as 1990 memories were small).
class PaddedReadyTable {
 public:
  PaddedReadyTable() = default;
  explicit PaddedReadyTable(index_t size) { ensure_size(size); }

  index_t size() const noexcept { return size_; }

  void ensure_size(index_t size) {
    if (size <= size_) return;
    slots_ = std::make_unique<Slot[]>(static_cast<std::size_t>(size));
    size_ = size;
  }

  void begin_epoch() noexcept {}

  void mark_done(index_t off) noexcept {
    slot(off).flag.store(1, std::memory_order_release);
  }

  bool is_done(index_t off) const noexcept {
    return slot(off).flag.load(std::memory_order_acquire) != 0;
  }

  std::uint64_t wait_done(index_t off) const noexcept {
    if (is_done(off)) return 0;
    rt::SpinWait sw;
    std::uint64_t rounds = 0;
    do {
      sw.spin_once();
      ++rounds;
    } while (!is_done(off));
    return rounds;
  }

  void clear(index_t off) noexcept {
    slot(off).flag.store(0, std::memory_order_relaxed);
  }

  void clear_all(std::span<const index_t> writer) noexcept {
    for (index_t off : writer) clear(off);
  }

  bool pristine() const noexcept {
    for (index_t i = 0; i < size_; ++i) {
      if (is_done(i)) return false;
    }
    return true;
  }

 private:
  struct alignas(kCacheLineBytes) Slot {
    std::atomic<std::uint8_t> flag{0};
  };

  Slot& slot(index_t off) noexcept {
    assert(off >= 0 && off < size_);
    return slots_[static_cast<std::size_t>(off)];
  }
  const Slot& slot(index_t off) const noexcept {
    assert(off >= 0 && off < size_);
    return slots_[static_cast<std::size_t>(off)];
  }

  std::unique_ptr<Slot[]> slots_;
  index_t size_ = 0;
};

/// Epoch-stamped flags: DONE means "stamp equals the current epoch", so a
/// whole-table reset is a single counter increment instead of the paper's
/// postprocessing sweep. The stamp starts at 0 and epochs start at 1, so a
/// fresh table is all-NOTDONE.
class EpochReadyTable {
 public:
  /// Epoch-reset marker (see kEpochResetV): begin_epoch() alone already
  /// invalidates every DONE mark, so per-entry postprocessing clears are
  /// dead and executors elide that whole phase at compile time.
  static constexpr bool kEpochReset = true;

  EpochReadyTable() = default;
  explicit EpochReadyTable(index_t size) { ensure_size(size); }

  index_t size() const noexcept { return size_; }

  void ensure_size(index_t size) {
    if (size <= size_) return;
    auto bigger = std::make_unique<std::atomic<std::uint32_t>[]>(
        static_cast<std::size_t>(size));
    for (index_t i = 0; i < size; ++i) {
      bigger[static_cast<std::size_t>(i)].store(0, std::memory_order_relaxed);
    }
    flags_ = std::move(bigger);
    size_ = size;
    epoch_ = 1;
  }

  /// Invalidate every DONE mark from the previous loop. O(1). Wraps after
  /// 2^32-1 loops; at that point the stamps are swept clean.
  void begin_epoch() noexcept {
    ++epoch_;
    if (epoch_ == 0) {  // wrapped: stamps from 2^32 loops ago could alias
      for (index_t i = 0; i < size_; ++i) {
        flags_[static_cast<std::size_t>(i)].store(0, std::memory_order_relaxed);
      }
      epoch_ = 1;
    }
  }

  void mark_done(index_t off) noexcept {
    assert(off >= 0 && off < size_);
    flags_[static_cast<std::size_t>(off)].store(epoch_,
                                                std::memory_order_release);
  }

  bool is_done(index_t off) const noexcept {
    assert(off >= 0 && off < size_);
    return flags_[static_cast<std::size_t>(off)].load(
               std::memory_order_acquire) == epoch_;
  }

  std::uint64_t wait_done(index_t off) const noexcept {
    if (is_done(off)) return 0;
    rt::SpinWait sw;
    std::uint64_t rounds = 0;
    do {
      sw.spin_once();
      ++rounds;
    } while (!is_done(off));
    return rounds;
  }

  /// Per-entry clear is a no-op: `begin_epoch` already invalidated
  /// everything, and the postprocessing loop calls this unconditionally.
  void clear(index_t) noexcept {}
  void clear_all(std::span<const index_t>) noexcept {}

  bool pristine() const noexcept {
    for (index_t i = 0; i < size_; ++i) {
      if (is_done(i)) return false;
    }
    return true;
  }

  std::uint32_t epoch() const noexcept { return epoch_; }

 private:
  std::unique_ptr<std::atomic<std::uint32_t>[]> flags_;
  index_t size_ = 0;
  std::uint32_t epoch_ = 1;
};

/// True for tables (like EpochReadyTable) whose begin_epoch() is a full
/// O(1) reset, making the postprocessing flag sweep — and the barrier that
/// fences it — dead code the executor can drop at compile time.
template <class R>
inline constexpr bool kEpochResetV = requires {
  requires static_cast<bool>(R::kEpochReset);
};

}  // namespace pdx::core
