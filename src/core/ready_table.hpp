// ready_table.hpp — the paper's `ready` array (completion flags).
//
// The executor satisfies a true dependence on offset `off` by busy-waiting
// until the producing iteration has stored its result (paper Fig. 2 S1 /
// Fig. 5 S4), and announces its own completion with `ready(a(i)) = DONE`
// (Fig. 2 S3 / Fig. 5 tail). Three interchangeable implementations:
//
//   DenseReadyTable  — one byte per offset, paper-faithful; reset via the
//                      postprocessing loop (`ready(a(i)) = NOTDONE`).
//   PaddedReadyTable — one cache line per offset; ablation for the cost of
//                      false sharing between producer stores and consumer
//                      spins (bench E9).
//   EpochReadyTable  — 32-bit epoch stamps; `begin_epoch()` makes reset
//                      O(1), an engineering extension of the paper's
//                      arena-reuse idea (§2.1 last paragraph).
//
// Memory ordering: `mark_done` is a release store so the producer's ynew
// write happens-before any consumer that observes the flag with the
// acquire loads in `wait_done` / `is_done`.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <span>

#include "runtime/failure.hpp"
#include "runtime/spin_wait.hpp"
#include "runtime/types.hpp"

namespace pdx::core {

class DenseReadyTable {
 public:
  DenseReadyTable() = default;
  explicit DenseReadyTable(index_t size) { ensure_size(size); }

  index_t size() const noexcept { return size_; }

  void ensure_size(index_t size) {
    if (size <= size_) return;
    auto bigger = std::make_unique<std::atomic<std::uint8_t>[]>(
        static_cast<std::size_t>(size));
    for (index_t i = 0; i < size; ++i) {
      bigger[static_cast<std::size_t>(i)].store(0, std::memory_order_relaxed);
    }
    flags_ = std::move(bigger);  // table must be idle when resized
    size_ = size;
  }

  /// No-op for flag-style tables; epoch tables use it to invalidate all
  /// previous DONE marks in O(1).
  void begin_epoch() noexcept {}

  void mark_done(index_t off) noexcept {
    assert(off >= 0 && off < size_);
    flags_[static_cast<std::size_t>(off)].store(1, std::memory_order_release);
  }

  bool is_done(index_t off) const noexcept {
    assert(off >= 0 && off < size_);
    return flags_[static_cast<std::size_t>(off)].load(
               std::memory_order_acquire) != 0;
  }

  /// Busy-wait until `off` is DONE. Returns the number of spin rounds
  /// taken (0 if it was already done) — the executor aggregates these into
  /// the wait statistics reported by bench E3.
  std::uint64_t wait_done(index_t off) const noexcept {
    if (is_done(off)) return 0;
    rt::SpinWait sw;
    std::uint64_t rounds = 0;
    do {
      sw.spin_once();
      ++rounds;
    } while (!is_done(off));
    return rounds;
  }

  /// Postprocessing step for one iteration: ready(writer) = NOTDONE.
  void clear(index_t off) noexcept {
    assert(off >= 0 && off < size_);
    flags_[static_cast<std::size_t>(off)].store(0, std::memory_order_relaxed);
  }

  void clear_all(std::span<const index_t> writer) noexcept {
    for (index_t off : writer) clear(off);
  }

  /// True iff no flag is set (inter-loop invariant; O(size), for tests).
  bool pristine() const noexcept {
    for (index_t i = 0; i < size_; ++i) {
      if (is_done(i)) return false;
    }
    return true;
  }

 private:
  std::unique_ptr<std::atomic<std::uint8_t>[]> flags_;
  index_t size_ = 0;
};

/// One flag per cache line. Identical observable semantics to
/// DenseReadyTable; exists to measure the false-sharing cost of the dense
/// layout (the paper's flag array is dense, as 1990 memories were small).
class PaddedReadyTable {
 public:
  PaddedReadyTable() = default;
  explicit PaddedReadyTable(index_t size) { ensure_size(size); }

  index_t size() const noexcept { return size_; }

  void ensure_size(index_t size) {
    if (size <= size_) return;
    slots_ = std::make_unique<Slot[]>(static_cast<std::size_t>(size));
    size_ = size;
  }

  void begin_epoch() noexcept {}

  void mark_done(index_t off) noexcept {
    slot(off).flag.store(1, std::memory_order_release);
  }

  bool is_done(index_t off) const noexcept {
    return slot(off).flag.load(std::memory_order_acquire) != 0;
  }

  std::uint64_t wait_done(index_t off) const noexcept {
    if (is_done(off)) return 0;
    rt::SpinWait sw;
    std::uint64_t rounds = 0;
    do {
      sw.spin_once();
      ++rounds;
    } while (!is_done(off));
    return rounds;
  }

  void clear(index_t off) noexcept {
    slot(off).flag.store(0, std::memory_order_relaxed);
  }

  void clear_all(std::span<const index_t> writer) noexcept {
    for (index_t off : writer) clear(off);
  }

  bool pristine() const noexcept {
    for (index_t i = 0; i < size_; ++i) {
      if (is_done(i)) return false;
    }
    return true;
  }

 private:
  struct alignas(kCacheLineBytes) Slot {
    std::atomic<std::uint8_t> flag{0};
  };

  Slot& slot(index_t off) noexcept {
    assert(off >= 0 && off < size_);
    return slots_[static_cast<std::size_t>(off)];
  }
  const Slot& slot(index_t off) const noexcept {
    assert(off >= 0 && off < size_);
    return slots_[static_cast<std::size_t>(off)];
  }

  std::unique_ptr<Slot[]> slots_;
  index_t size_ = 0;
};

/// Epoch-stamped flags: DONE means "stamp equals the current epoch", so a
/// whole-table reset is a single counter increment instead of the paper's
/// postprocessing sweep. The stamp starts at 0 and epochs start at 1, so a
/// fresh table is all-NOTDONE.
///
/// Slot placement is a template knob. With `Strided` (the production
/// alias EpochReadyTable), logical offsets are stride-hashed across cache
/// lines: 16 stamps share a 64-byte line, and in a triangular solve the
/// offsets touched concurrently are *neighboring rows* — under a linear
/// layout a producer's release store to row i invalidates the line every
/// spinner on rows i±15 is polling, an invalidation storm per wavefront.
/// The strided map sends logical offset `off` to physical slot
///
///     ((off mod lines) * 16) + (off div lines),      lines = 2^ceil(...)
///
/// so consecutive offsets land on consecutive *lines* and a line is only
/// shared by offsets `lines` apart — farther than any dense wavefront
/// neighborhood. Cost: two shifts and a mask on the spin path, and up to
/// 2x slack capacity from rounding `lines` to a power of two (which is
/// what keeps the map shift-only). `StridedEpoch = false` keeps the
/// linear layout — the measured "before" of bench/ablation_flags.
template <bool Strided>
class BasicEpochReadyTable {
 public:
  /// Epoch-reset marker (see kEpochResetV): begin_epoch() alone already
  /// invalidates every DONE mark, so per-entry postprocessing clears are
  /// dead and executors elide that whole phase at compile time.
  static constexpr bool kEpochReset = true;

  /// 32-bit stamps sharing one destructive-interference block.
  static constexpr index_t kFlagsPerLine =
      static_cast<index_t>(kCacheLineBytes / sizeof(std::uint32_t));

  BasicEpochReadyTable() = default;
  explicit BasicEpochReadyTable(index_t size) { ensure_size(size); }

  index_t size() const noexcept { return size_; }

  void ensure_size(index_t size) {
    if (size <= size_) return;
    index_t cap = size;
    if constexpr (Strided) {
      lines_shift_ = 0;
      while ((index_t{1} << lines_shift_) * kFlagsPerLine < size) {
        ++lines_shift_;
      }
      cap = (index_t{1} << lines_shift_) * kFlagsPerLine;
    }
    auto bigger = std::make_unique<std::atomic<std::uint32_t>[]>(
        static_cast<std::size_t>(cap));
    for (index_t i = 0; i < cap; ++i) {
      bigger[static_cast<std::size_t>(i)].store(0, std::memory_order_relaxed);
    }
    flags_ = std::move(bigger);  // table must be idle when resized
    size_ = size;
    epoch_ = 1;
  }

  /// Physical slot of logical offset `off` — identity for the linear
  /// layout, the line-spreading permutation for the strided one.
  /// Exposed for layout tests/diagnostics; the mapping is otherwise an
  /// internal detail.
  index_t slot_index(index_t off) const noexcept {
    assert(off >= 0 && off < size_);
    if constexpr (Strided) {
      const index_t line_mask = (index_t{1} << lines_shift_) - 1;
      return ((off & line_mask) * kFlagsPerLine) + (off >> lines_shift_);
    } else {
      return off;
    }
  }

  /// Invalidate every DONE mark from the previous loop. O(1). Wraps after
  /// 2^32-1 loops; at that point the stamps are swept clean.
  void begin_epoch() noexcept {
    ++epoch_;
    if (epoch_ == 0) {  // wrapped: stamps from 2^32 loops ago could alias
      for (index_t i = 0; i < size_; ++i) {
        slot(i).store(0, std::memory_order_relaxed);
      }
      epoch_ = 1;
    }
  }

  void mark_done(index_t off) noexcept {
    slot(off).store(epoch_, std::memory_order_release);
  }

  bool is_done(index_t off) const noexcept {
    return slot(off).load(std::memory_order_acquire) == epoch_;
  }

  std::uint64_t wait_done(index_t off) const noexcept {
    if (is_done(off)) return 0;
    rt::SpinWait sw;
    std::uint64_t rounds = 0;
    do {
      sw.spin_once();
      ++rounds;
    } while (!is_done(off));
    return rounds;
  }

  /// Per-entry clear is a no-op: `begin_epoch` already invalidated
  /// everything, and the postprocessing loop calls this unconditionally.
  void clear(index_t) noexcept {}
  void clear_all(std::span<const index_t>) noexcept {}

  bool pristine() const noexcept {
    for (index_t i = 0; i < size_; ++i) {
      if (is_done(i)) return false;
    }
    return true;
  }

  std::uint32_t epoch() const noexcept { return epoch_; }

 private:
  std::atomic<std::uint32_t>& slot(index_t off) noexcept {
    return flags_[static_cast<std::size_t>(slot_index(off))];
  }
  const std::atomic<std::uint32_t>& slot(index_t off) const noexcept {
    return flags_[static_cast<std::size_t>(slot_index(off))];
  }

  std::unique_ptr<std::atomic<std::uint32_t>[]> flags_;
  index_t size_ = 0;
  unsigned lines_shift_ = 0;  // log2(lines), strided layout only
  std::uint32_t epoch_ = 1;
};

/// The production epoch table: stride-hashed slots (no false sharing
/// between neighboring rows' flags).
using EpochReadyTable = BasicEpochReadyTable<true>;
/// The pre-stride linear layout, kept as the measured baseline of
/// bench/ablation_flags' before/after comparison.
using LinearEpochReadyTable = BasicEpochReadyTable<false>;

/// True for tables (like EpochReadyTable) whose begin_epoch() is a full
/// O(1) reset, making the postprocessing flag sweep — and the barrier that
/// fences it — dead code the executor can drop at compile time.
template <class R>
inline constexpr bool kEpochResetV = requires {
  requires static_cast<bool>(R::kEpochReset);
};

/// Latch-aware flag wait: identical to `ready.wait_done(off)` on the
/// healthy path (same fast path, same spin ladder), but every 64 rounds it
/// consults the guard — abandoning the wait with WorkerAbort once a peer
/// has raised the latch, and with StallError past a non-zero budget. This
/// is what lets a faulting worker's peers drain and join instead of
/// spinning forever on flags that will never be set. `row` is the
/// consumer's own row, reported in StallError diagnostics.
template <class Ready>
inline std::uint64_t wait_done_guarded(const Ready& ready, index_t off,
                                       index_t row, const rt::WaitGuard& g) {
  if (ready.is_done(off)) return 0;
  rt::SpinWait sw;
  std::uint64_t rounds = 0;
  do {
    sw.spin_once();
    ++rounds;
    if ((rounds & 63u) == 0) {
      if (g.latch && g.latch->raised()) throw rt::WorkerAbort{};
      if (g.budget != 0 && rounds >= g.budget) {
        std::uint32_t ep = 0;
        if constexpr (requires { ready.epoch(); }) ep = ready.epoch();
        throw rt::StallError(row, off, ep, rounds, g.site ? g.site : "");
      }
    }
  } while (!ready.is_done(off));
  return rounds;
}

}  // namespace pdx::core
