// advisor.hpp — dependence-aware executor configuration.
//
// The scheduling ablation (bench E6) shows the best executor schedule is
// a function of the loop's dependence structure, which the preprocessed
// doacross makes *measurable at run time*: the inspector machinery that
// already exists for correctness also supports choosing the policy. This
// advisor codifies the measured decision rules:
//
//   * no dependences            -> static-block (doall; locality wins);
//   * negligible parallelism    -> don't parallelize (serial chain);
//   * short-distance deps       -> static-block (deps stay intra-block;
//                                  only block boundaries chain);
//   * otherwise                 -> doconsider reordering + dynamic/1
//                                  (spread each wavefront; paper ref [4]).
#pragma once

#include <string>

#include "core/doconsider.hpp"
#include "runtime/schedule.hpp"

namespace pdx::core {

struct ScheduleAdvice {
  rt::Schedule schedule;
  /// Recommend executing in doconsider (level) order.
  bool use_reordering = false;
  /// Whether parallel execution is expected to beat sequential at all.
  bool worth_parallelizing = true;
  /// Human-readable reason, for logs and reports.
  std::string rationale;
  /// Structural facts the decision used.
  index_t critical_path = 0;
  double avg_parallelism = 0.0;
  index_t max_distance = 0;
};

/// Analyze the true-dependence graph of a loop and recommend an executor
/// configuration for `procs` processors.
ScheduleAdvice advise_schedule(const DepGraph& g, unsigned procs);

}  // namespace pdx::core
