// advisor.hpp — dependence-aware executor configuration.
//
// The scheduling ablation (bench E6) shows the best executor schedule is
// a function of the loop's dependence structure, which the preprocessed
// doacross makes *measurable at run time*: the inspector machinery that
// already exists for correctness also supports choosing the policy. This
// advisor codifies the measured decision rules:
//
//   * no dependences            -> static-block (doall; locality wins);
//   * negligible parallelism    -> don't parallelize (serial chain);
//   * short-distance deps       -> static-block (deps stay intra-block;
//                                  only block boundaries chain);
//   * otherwise                 -> doconsider reordering + dynamic/1
//                                  (spread each wavefront; paper ref [4]).
//
// Beyond schedules, the advisor names a whole *executor strategy*
// (ExecStrategy): the triangular-solve stack instantiates one of four
// execution schemes per plan from the same measured structure — the seam
// sparse::TrisolvePlan selects through at build time (DESIGN.md §9).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/doconsider.hpp"
#include "runtime/schedule.hpp"

namespace pdx::core {

/// Executor strategy families the trisolve stack can instantiate. kAuto
/// is a *request* (measure, then decide); the advisor only ever returns
/// one of the four concrete strategies.
enum class ExecStrategy : std::uint8_t {
  kAuto,           ///< decide from inspector-measured structure
  kDoacross,       ///< busy-wait flags, doconsider order (paper executor)
  kLevelBarrier,   ///< bulk-synchronous wavefronts, no per-row flags
  kSerial,         ///< sequential chain — parallelism would only add cost
  kBlockedHybrid,  ///< static blocks; flags only across block boundaries
};

inline const char* to_string(ExecStrategy s) noexcept {
  switch (s) {
    case ExecStrategy::kAuto: return "auto";
    case ExecStrategy::kDoacross: return "doacross";
    case ExecStrategy::kLevelBarrier: return "level-barrier";
    case ExecStrategy::kSerial: return "serial";
    case ExecStrategy::kBlockedHybrid: return "blocked-hybrid";
  }
  return "?";
}

/// Inspector-measured dependence structure of a triangular solve — the
/// facts the strategy decision uses, all O(n + nnz) to collect (the level
/// analysis already exists for the doconsider reordering).
struct TrisolveStructure {
  index_t n = 0;
  index_t nnz = 0;              ///< stored entries including the diagonal
  index_t levels = 0;           ///< wavefront count == critical path
  index_t max_level_size = 0;   ///< widest wavefront
  index_t max_distance = 0;     ///< max |i - c| over off-diagonal deps
  double avg_level_width = 0.0; ///< n / levels — the available parallelism
  double nnz_per_row = 0.0;     ///< per-row work the synchronization buys
};

struct ScheduleAdvice {
  rt::Schedule schedule;
  /// Recommend executing in doconsider (level) order.
  bool use_reordering = false;
  /// Whether parallel execution is expected to beat sequential at all.
  bool worth_parallelizing = true;
  /// Which executor scheme to instantiate (never kAuto on output).
  ExecStrategy strategy = ExecStrategy::kDoacross;
  /// Human-readable reason, for logs and reports.
  std::string rationale;
  /// Structural facts the decision used.
  index_t critical_path = 0;
  double avg_parallelism = 0.0;
  index_t max_distance = 0;
};

/// Analyze the true-dependence graph of a loop and recommend an executor
/// configuration for `procs` processors. procs == 0 means "the hardware
/// width", matching the rt::ThreadPool(width = 0) convention.
ScheduleAdvice advise_schedule(const DepGraph& g, unsigned procs);

/// Strategy advice from a triangular solve's measured structure (the
/// TrisolvePlan build path — sparse::measure_lower_solve produces the
/// input). Same procs convention: 0 -> hardware width.
ScheduleAdvice advise_schedule(const TrisolveStructure& s, unsigned procs);

/// Strategy advice for a *numeric factorization* over the same measured
/// structure (the sparse::FactorPlan build path). The dependence DAG is
/// the triangular solve's — row i waits on every earlier row its lower
/// pattern stores — but each row carries roughly nnz/row times the work
/// of a solve row (every lower entry triggers a row-length update), so
/// synchronization amortizes sooner: the serial cutoff drops, the
/// level-barrier width threshold relaxes, and blocked-hybrid tolerates
/// longer boundary-crossing dependences. Same procs convention.
ScheduleAdvice advise_factor_schedule(const TrisolveStructure& s,
                                      unsigned procs);

// --- empirical calibration (DESIGN.md §13) --------------------------------
//
// The heuristic ladders above see DAG shape but never synchronization cost
// on the actual machine, and the committed strategy baselines prove they
// can mispick by four orders of magnitude (level-barrier at 2 threads on a
// stencil factor). The paper's amortization premise — the same loop runs
// many times — makes measuring free: a kAuto plan races every strategy on
// its first real solves (all executors are bitwise identical, so switching
// mid-stream is invisible) and locks in the measured winner. The types
// below record the race; the TuningCache persists winners process-wide so
// later plans over the same (pattern fingerprint, threads) skip the race.

/// One lane of a calibration race: the best time a strategy measured.
struct StrategyTiming {
  ExecStrategy strategy = ExecStrategy::kSerial;
  double best_us = 0.0;  ///< fastest observed epoch, microseconds
  int epochs = 0;        ///< timed epochs this strategy ran
};

/// Record of one plan's empirical strategy calibration.
struct StrategyRace {
  /// A measured winner is locked in (via a completed race or a cache hit).
  bool calibrated = false;
  /// The winner came from the process-wide TuningCache — no epochs raced.
  bool cache_hit = false;
  /// Real solves/factorizations spent exploring (0 on a cache hit).
  int exploration_epochs = 0;
  /// Per-strategy race results, candidate order (empty on a cache hit).
  std::vector<StrategyTiming> timings;
};

/// Structure fingerprint a measured winner is keyed by: every field the
/// strategy decision depends on, and nothing value-dependent — two
/// factorizations with the same pattern and thread count hit the same
/// entry. avg_level_width and nnz_per_row are quotients of the stored
/// fields, so the integer fields alone pin the fingerprint exactly.
struct TuningKey {
  index_t n = 0;
  index_t nnz = 0;
  index_t levels = 0;
  index_t max_level_size = 0;
  index_t max_distance = 0;
  unsigned procs = 0;
  /// Solve and factorization races answer different questions (a
  /// factorization row carries ~nnz/row of a solve row's work), so their
  /// winners never share an entry.
  bool factor = false;

  friend bool operator==(const TuningKey&, const TuningKey&) = default;
};

TuningKey make_tuning_key(const TrisolveStructure& s, unsigned procs,
                          bool factor) noexcept;

struct TuningCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::size_t entries = 0;
};

/// Process-wide memo of measured race winners, shared by every plan build
/// on every thread (a mutex guards the map — lookups happen once per plan
/// build, never on a solve path). Only empirically measured winners are
/// stored; heuristic-only picks never enter the cache.
class TuningCache {
 public:
  /// True and sets `out` when a measured winner exists for `key`.
  bool lookup(const TuningKey& key, ExecStrategy& out);
  /// Record a race winner (later races over the same key overwrite —
  /// fresher measurements win).
  void store(const TuningKey& key, ExecStrategy winner);
  /// Drop every entry and zero the counters (tests; otherwise entries
  /// live for the process lifetime — patterns are few, entries are tiny).
  void clear();
  TuningCacheStats stats() const;

 private:
  struct KeyHash {
    std::size_t operator()(const TuningKey& k) const noexcept;
  };

  mutable std::mutex mu_;
  std::unordered_map<TuningKey, ExecStrategy, KeyHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t stores_ = 0;
};

/// The process-wide instance every kAuto plan consults.
TuningCache& tuning_cache() noexcept;

}  // namespace pdx::core
