// blocked_doacross.hpp — strip-mined preprocessed doacross (paper §2.3).
//
// "It is possible to transform the original loop L into a pair of nested
//  loops L_outer and L_inner. The inner loop would range over contiguous
//  iterations of the original loop L [and be] parallelized using the
//  preprocessed doacross methods; L_outer is carried out sequentially.
//  Preprocessing and postprocessing ... is carried out before and after
//  each set of L_inner iterations. This transformation reduces memory
//  requirements because during each iteration of L_outer we can reuse
//  ready and iter."
//
// Our realization goes one step further than reuse: because the writer map
// is injective, within a strip there is a bijection between iterations and
// written offsets, so the ready flags and the ynew shadow can be indexed by
// *iteration-within-strip* and sized O(strip) instead of O(value_space).
// Only the iter table still spans the value space, and it is reused across
// strips exactly as the paper describes (reset cost O(strip writes)).
//
// Cross-strip dependences need no flags at all: each strip's postprocessing
// copies ynew back into y before the next strip starts (the strips are
// separated by barriers), so a later strip's reads find iter == MAXINT and
// take the plain `y` path, which already holds the committed value.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "core/doacross_stats.hpp"
#include "core/hash_iter_table.hpp"
#include "core/iter_table.hpp"
#include "core/ready_table.hpp"
#include "runtime/aligned.hpp"
#include "runtime/barrier.hpp"
#include "runtime/thread_pool.hpp"

namespace pdx::core {

/// Dependence-resolving accessor for the strip-mined executor. Same
/// interface as core::Iteration, but ready/ynew are strip-local. `Iter`
/// is either the dense IterTable or the O(strip)-memory HashIterTable.
template <class T, class Ready, class Iter = IterTable>
class StripIteration {
 public:
  StripIteration(index_t i, index_t strip_begin, index_t lhs_off,
                 const Iter* iter, const Ready* ready, const T* yold,
                 const T* ynew_strip, std::uint64_t* wait_episodes,
                 std::uint64_t* wait_rounds) noexcept
      : i_(i),
        strip_begin_(strip_begin),
        lhs_off_(lhs_off),
        acc_(yold[lhs_off]),
        iter_(iter),
        ready_(ready),
        yold_(yold),
        ynew_(ynew_strip),
        wait_episodes_(wait_episodes),
        wait_rounds_(wait_rounds) {}

  index_t index() const noexcept { return i_; }
  index_t lhs_index() const noexcept { return lhs_off_; }
  T& lhs() noexcept { return acc_; }

  T read(index_t offset) noexcept {
    const index_t w = (*iter_)[offset];
    if (w == i_) return acc_;
    if (w < i_) {
      // Within the current strip by construction (iter holds only this
      // strip's writers), so the strip-local slot is w - strip_begin.
      const index_t slot = w - strip_begin_;
      const std::uint64_t rounds = ready_->wait_done(slot);
      if (rounds != 0) {
        ++*wait_episodes_;
        *wait_rounds_ += rounds;
      }
      return ynew_[slot];
    }
    return yold_[offset];  // antidep, later strip, or never written
  }

 private:
  const index_t i_;
  const index_t strip_begin_;
  const index_t lhs_off_;
  T acc_;
  const Iter* iter_;
  const Ready* ready_;
  const T* yold_;
  const T* ynew_;
  std::uint64_t* wait_episodes_;
  std::uint64_t* wait_rounds_;
};

/// Options for the strip-mined variant (no reordering: the sequential
/// outer loop already fixes the strip order).
struct BlockedOptions {
  unsigned nthreads = 0;
  rt::Schedule schedule = rt::Schedule::static_block();
};

/// `Iter` selects the last-writer table: the dense, value-space-sized
/// IterTable (reused across strips — the paper's own formulation) or the
/// O(strip)-memory HashIterTable (see hash_iter_table.hpp); with the
/// latter the entire arena footprint is bounded by the strip length.
template <class T, class Ready = DenseReadyTable, class Iter = IterTable>
class BlockedDoacross {
 public:
  /// `value_space` sizes the dense iter table (ignored by the hash
  /// flavour); the ready/ynew arenas are sized by the strip at run time.
  BlockedDoacross(rt::ThreadPool& pool, index_t value_space)
      : pool_(&pool), value_space_(value_space) {
    if constexpr (kDenseIter) {
      iter_.ensure_size(value_space);
    }
  }

  index_t value_space() const noexcept { return value_space_; }

  /// Bytes of strip-scaled arena memory (ready flags + ynew shadow), the
  /// part both iter flavours share.
  static std::size_t strip_arena_bytes(index_t strip) {
    return static_cast<std::size_t>(strip) * (sizeof(T) + 1);
  }

  /// Bytes held by the last-writer table.
  std::size_t iter_memory_bytes() const noexcept {
    if constexpr (kDenseIter) {
      return static_cast<std::size_t>(iter_.size()) * sizeof(index_t);
    } else {
      return iter_.memory_bytes();
    }
  }

  template <class Body>
  DoacrossStats run(std::span<const index_t> writer, std::span<T> y,
                    Body&& body, index_t strip,
                    const BlockedOptions& opts = {}) {
    const index_t n = static_cast<index_t>(writer.size());
    if (strip <= 0) throw std::invalid_argument("strip must be positive");
    value_space_ = std::max(value_space_, static_cast<index_t>(y.size()));
    if constexpr (kDenseIter) {
      iter_.ensure_size(static_cast<index_t>(y.size()));
    } else {
      iter_.reserve_writes(strip);  // also wipes for the first strip
    }
    DoacrossStats stats;
    if (n == 0) return stats;

    const unsigned nth = pool_->clamp_threads(opts.nthreads);
    ready_.ensure_size(strip);
    ready_.begin_epoch();
    if (static_cast<index_t>(ynew_strip_.size()) < strip) {
      ynew_strip_.resize(static_cast<std::size_t>(strip));
    }

    rt::Barrier barrier(nth);
    std::atomic<index_t> cursor{0};
    std::vector<rt::Padded<std::uint64_t>> episodes(nth), rounds(nth);

    using clock = std::chrono::steady_clock;
    const index_t* wr = writer.data();
    T* yp = y.data();
    T* ynp = ynew_strip_.data();

    // Per-thread accumulated phase seconds, measured by thread 0 only.
    double t_ins = 0.0, t_exe = 0.0, t_post = 0.0;

    pool_->parallel_region(nth, [&](unsigned tid, unsigned nthreads) {
      std::uint64_t my_episodes = 0, my_rounds = 0;
      clock::time_point p0, p1, p2, p3;
      barrier.arrive_and_wait();  // rendezvous: exclude pool wake-up
      for (index_t b = 0; b < n; b += strip) {
        const index_t e = std::min(b + strip, n);
        const index_t len = e - b;
        if (tid == 0) p0 = clock::now();

        // Inspector over this strip.
        const rt::IterRange pre = rt::static_block_range(len, tid, nthreads);
        for (index_t k = pre.begin; k < pre.end; ++k) {
          iter_.record(wr[b + k], b + k);
        }
        barrier.arrive_and_wait();
        if (tid == 0) p1 = clock::now();

        // Executor over this strip (positions k, iterations b + k).
        // noexcept: see DoacrossEngine::run — a throwing body would
        // deadlock the phase barriers, so fail fast instead.
        auto run_one = [&](index_t k) noexcept {
          const index_t i = b + k;
          StripIteration<T, Ready, Iter> it(i, b, wr[i], &iter_, &ready_, yp,
                                            ynp, &my_episodes, &my_rounds);
          body(it);
          ynp[k] = it.lhs();
          ready_.mark_done(k);
        };
        rt::schedule_run(opts.schedule, len, tid, nthreads, &cursor, run_one);
        barrier.arrive_and_wait();
        if (tid == 0) p2 = clock::now();

        // Postprocessor over this strip; thread 0 also rewinds the dynamic
        // cursor and the ready epoch for the next strip.
        const rt::IterRange post = rt::static_block_range(len, tid, nthreads);
        for (index_t k = post.begin; k < post.end; ++k) {
          const index_t i = b + k;
          yp[wr[i]] = ynp[k];
          iter_.clear(wr[i]);
          ready_.clear(k);
        }
        if (tid == 0) {
          cursor.store(0, std::memory_order_relaxed);
          ready_.begin_epoch();
          iter_.begin_epoch();  // hash flavour wipes; dense is a no-op
        }
        barrier.arrive_and_wait();
        if (tid == 0) {
          p3 = clock::now();
          t_ins += std::chrono::duration<double>(p1 - p0).count();
          t_exe += std::chrono::duration<double>(p2 - p1).count();
          t_post += std::chrono::duration<double>(p3 - p2).count();
        }
      }
      episodes[tid].value = my_episodes;
      rounds[tid].value = my_rounds;
    });

    stats.inspect_seconds = t_ins;
    stats.execute_seconds = t_exe;
    stats.post_seconds = t_post;
    for (unsigned t = 0; t < nth; ++t) {
      stats.wait_episodes += episodes[t].value;
      stats.wait_rounds += rounds[t].value;
    }
    return stats;
  }

  const Iter& iter_table() const noexcept { return iter_; }

 private:
  static constexpr bool kDenseIter = std::is_same_v<Iter, IterTable>;

  rt::ThreadPool* pool_;
  index_t value_space_ = 0;
  Iter iter_;
  Ready ready_;  // strip-sized, iteration-indexed
  std::vector<T, rt::CacheAlignedAllocator<T>> ynew_strip_;
};

/// The fully memory-bounded strip-mined doacross: every arena (last-writer
/// table, ready flags, ynew shadow) is O(strip), independent of the value
/// space.
template <class T>
using CompactBlockedDoacross = BlockedDoacross<T, DenseReadyTable,
                                               HashIterTable>;

}  // namespace pdx::core
