#include "core/analysis.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace pdx::core {

DistanceHistogram dependence_distance_histogram(const DepGraph& g,
                                                index_t max_tracked) {
  DistanceHistogram h;
  h.count.assign(static_cast<std::size_t>(max_tracked) + 1, 0);
  h.min_distance = std::numeric_limits<index_t>::max();
  double sum = 0.0;
  for (index_t i = 0; i < g.iterations(); ++i) {
    for (index_t j : g.deps_of(i)) {
      const index_t d = i - j;
      ++h.total;
      sum += static_cast<double>(d);
      h.min_distance = std::min(h.min_distance, d);
      h.max_distance = std::max(h.max_distance, d);
      if (d <= max_tracked) {
        ++h.count[static_cast<std::size_t>(d)];
      } else {
        ++h.overflow;
      }
    }
  }
  if (h.total == 0) {
    h.min_distance = 0;
  } else {
    h.mean_distance = sum / static_cast<double>(h.total);
  }
  return h;
}

ScheduleEstimate simulate_list_schedule(const DepGraph& g,
                                        std::span<const index_t> order,
                                        unsigned procs,
                                        std::span<const double> cost) {
  const index_t n = g.iterations();
  if (static_cast<index_t>(order.size()) != n) {
    throw std::invalid_argument("simulate_list_schedule: bad order size");
  }
  if (procs == 0) {
    throw std::invalid_argument("simulate_list_schedule: procs must be >= 1");
  }
  if (!cost.empty() && static_cast<index_t>(cost.size()) != n) {
    throw std::invalid_argument("simulate_list_schedule: bad cost size");
  }

  ScheduleEstimate est;
  std::vector<double> finish(static_cast<std::size_t>(n), 0.0);
  std::vector<double> chain(static_cast<std::size_t>(n), 0.0);

  // Earliest-free processor pool.
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (unsigned p = 0; p < procs; ++p) free_at.push(0.0);

  for (index_t k = 0; k < n; ++k) {
    const index_t i = order[static_cast<std::size_t>(k)];
    const double c = cost.empty() ? 1.0 : cost[static_cast<std::size_t>(i)];
    double ready_time = 0.0;
    double chain_in = 0.0;
    for (index_t j : g.deps_of(i)) {
      ready_time = std::max(ready_time, finish[static_cast<std::size_t>(j)]);
      chain_in = std::max(chain_in, chain[static_cast<std::size_t>(j)]);
    }
    const double proc_free = free_at.top();
    free_at.pop();
    const double start = std::max(proc_free, ready_time);
    const double end = start + c;
    finish[static_cast<std::size_t>(i)] = end;
    chain[static_cast<std::size_t>(i)] = chain_in + c;
    free_at.push(end);

    est.total_work += c;
    est.makespan = std::max(est.makespan, end);
    est.critical_path =
        std::max(est.critical_path, chain[static_cast<std::size_t>(i)]);
  }
  return est;
}

}  // namespace pdx::core
