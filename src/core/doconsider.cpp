#include "core/doconsider.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>
#include <string>

#include "core/iter_table.hpp"

namespace pdx::core {

std::vector<index_t> dependence_levels(index_t n, const DepFn& deps) {
  std::vector<index_t> level(static_cast<std::size_t>(n), 0);
  for (index_t i = 0; i < n; ++i) {
    index_t lvl = 0;
    deps(i, [&](index_t j) {
      if (j < 0 || j >= i) {
        throw std::invalid_argument(
            "dependence_levels: dependence must point to an earlier "
            "iteration (got " +
            std::to_string(j) + " for iteration " + std::to_string(i) + ")");
      }
      lvl = std::max(lvl, level[static_cast<std::size_t>(j)] + 1);
    });
    level[static_cast<std::size_t>(i)] = lvl;
  }
  return level;
}

Reordering doconsider_order(index_t n, const DepFn& deps) {
  Reordering r;
  r.level_of = dependence_levels(n, deps);

  const index_t max_level =
      n == 0 ? -1
             : *std::max_element(r.level_of.begin(), r.level_of.end());
  const index_t nlevels = max_level + 1;

  // Counting sort by level — stable, so same-level iterations keep their
  // source order (and with them whatever locality the source loop had).
  r.level_ptr.assign(static_cast<std::size_t>(nlevels) + 1, 0);
  for (index_t i = 0; i < n; ++i) {
    ++r.level_ptr[static_cast<std::size_t>(r.level_of[static_cast<std::size_t>(i)]) + 1];
  }
  std::partial_sum(r.level_ptr.begin(), r.level_ptr.end(),
                   r.level_ptr.begin());

  r.order.resize(static_cast<std::size_t>(n));
  r.position.resize(static_cast<std::size_t>(n));
  std::vector<index_t> cursor(r.level_ptr.begin(), r.level_ptr.end() - 1);
  for (index_t i = 0; i < n; ++i) {
    const index_t l = r.level_of[static_cast<std::size_t>(i)];
    const index_t k = cursor[static_cast<std::size_t>(l)]++;
    r.order[static_cast<std::size_t>(k)] = i;
    r.position[static_cast<std::size_t>(i)] = k;
  }
  return r;
}

Reordering doconsider_order(const DepGraph& g) {
  return doconsider_order(g.iterations(), g.as_fn());
}

bool is_valid_schedule(index_t n, std::span<const index_t> order,
                       const DepFn& deps) {
  if (static_cast<index_t>(order.size()) != n) return false;
  std::vector<index_t> position(static_cast<std::size_t>(n), -1);
  for (index_t k = 0; k < n; ++k) {
    const index_t i = order[static_cast<std::size_t>(k)];
    if (i < 0 || i >= n) return false;
    if (position[static_cast<std::size_t>(i)] != -1) return false;  // dup
    position[static_cast<std::size_t>(i)] = k;
  }
  bool ok = true;
  for (index_t i = 0; i < n && ok; ++i) {
    deps(i, [&](index_t j) {
      if (j < 0 || j >= n ||
          position[static_cast<std::size_t>(j)] >=
              position[static_cast<std::size_t>(i)]) {
        ok = false;
      }
    });
  }
  return ok;
}

DepGraph build_true_deps(index_t n, std::span<const index_t> writer,
                         index_t value_space, const ReadFn& reads) {
  if (static_cast<index_t>(writer.size()) != n) {
    throw std::invalid_argument("build_true_deps: writer size != n");
  }
  // One sequential inspector pass gives the writer of every offset; the
  // executor's three-way check then classifies each read.
  IterTable iter(value_space);
  iter.record_all(writer);

  DepGraph g;
  g.ptr.assign(static_cast<std::size_t>(n) + 1, 0);

  // Two passes: count, then fill (CSR construction without reallocation).
  for (index_t i = 0; i < n; ++i) {
    index_t count = 0;
    reads(i, [&](index_t off) {
      const index_t w = iter[off];
      if (w != kNeverWritten && w < i) ++count;
    });
    g.ptr[static_cast<std::size_t>(i) + 1] = count;
  }
  std::partial_sum(g.ptr.begin(), g.ptr.end(), g.ptr.begin());
  g.adj.resize(static_cast<std::size_t>(g.ptr.back()));

  std::vector<index_t> cursor(g.ptr.begin(), g.ptr.end() - 1);
  for (index_t i = 0; i < n; ++i) {
    reads(i, [&](index_t off) {
      const index_t w = iter[off];
      if (w != kNeverWritten && w < i) {
        g.adj[static_cast<std::size_t>(cursor[static_cast<std::size_t>(i)]++)] = w;
      }
    });
  }
  return g;
}

}  // namespace pdx::core
