// doacross_stats.hpp — phase timing and synchronization counters.
//
// Characterizing the cost of execution-time preprocessing is "a critical
// aspect of this research" (paper §1), so the engine always measures the
// three phases separately and counts busy-wait activity. Bench E3
// (overhead_breakdown) is built entirely on these numbers.
#pragma once

#include <cstdint>

namespace pdx::core {

struct DoacrossStats {
  double inspect_seconds = 0.0;  ///< parallel preprocessing (iter fill)
  double execute_seconds = 0.0;  ///< transformed loop body
  double post_seconds = 0.0;     ///< parallel postprocessing (reset + copyback)

  /// Number of read() calls that actually had to spin (summed over threads).
  std::uint64_t wait_episodes = 0;
  /// Total spin rounds across all waits (see rt::SpinWait::spin_once).
  std::uint64_t wait_rounds = 0;

  double total_seconds() const noexcept {
    return inspect_seconds + execute_seconds + post_seconds;
  }
  /// Fraction of wall time spent outside the executor phase.
  double overhead_fraction() const noexcept {
    const double t = total_seconds();
    return t > 0.0 ? (inspect_seconds + post_seconds) / t : 0.0;
  }
};

}  // namespace pdx::core
