// doconsider.hpp — dependence-level iteration reordering (the Doconsider
// transformation of Saltz, Mirchandaney & Crowley, ICS 1989 — reference
// [4] of the paper).
//
// "A modified loop was produced by carrying out the loop iterations in a
//  more advantageous order. This reordering leaves the inter-iteration
//  dependencies unchanged but reduces the effects of these dependencies on
//  performance." (paper §3.2)
//
// The mechanism: compute each iteration's *wavefront level* — the length
// of the longest true-dependence chain ending at it — and execute
// iterations sorted (stably) by level. Any dependence then points to a
// strictly earlier position, so the reordered sequence is a valid schedule
// for the busy-wait executor, and iterations of equal level, which are
// mutually independent, land next to each other where the doacross
// scheduler spreads them across processors without waiting.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "runtime/types.hpp"

namespace pdx::core {

/// Visitor for the true dependences of one iteration: `deps(i, emit)` must
/// call `emit(j)` for every iteration j < i that i truly depends on
/// (i reads a value j writes). Emitting j >= i is a precondition violation.
using DepVisitor = std::function<void(index_t)>;
using DepFn = std::function<void(index_t, const DepVisitor&)>;

/// Compressed true-dependence graph: deps of iteration i are
/// adj[ptr[i] .. ptr[i+1]).
struct DepGraph {
  std::vector<index_t> ptr;
  std::vector<index_t> adj;

  index_t iterations() const noexcept {
    return static_cast<index_t>(ptr.empty() ? 0 : ptr.size() - 1);
  }
  index_t edges() const noexcept { return static_cast<index_t>(adj.size()); }

  std::span<const index_t> deps_of(index_t i) const noexcept {
    return {adj.data() + ptr[static_cast<std::size_t>(i)],
            adj.data() + ptr[static_cast<std::size_t>(i) + 1]};
  }

  /// Adapter to the callback form used by the analysis functions.
  DepFn as_fn() const {
    return [this](index_t i, const DepVisitor& emit) {
      for (index_t j : deps_of(i)) emit(j);
    };
  }
};

/// The result of the doconsider analysis.
struct Reordering {
  /// order[k] = source iteration executed at position k.
  std::vector<index_t> order;
  /// position[i] = k such that order[k] == i (inverse permutation).
  std::vector<index_t> position;
  /// level_of[i] = longest true-dependence chain length ending at i
  /// (iterations with no dependences have level 0).
  std::vector<index_t> level_of;
  /// Wavefront l occupies order[level_ptr[l] .. level_ptr[l+1]).
  std::vector<index_t> level_ptr;

  index_t iterations() const noexcept {
    return static_cast<index_t>(order.size());
  }
  index_t num_levels() const noexcept {
    return static_cast<index_t>(level_ptr.empty() ? 0 : level_ptr.size() - 1);
  }
  /// Length of the critical dependence chain (= number of wavefronts).
  index_t critical_path() const noexcept { return num_levels(); }
  /// Mean iterations per wavefront — the available parallelism.
  double average_parallelism() const noexcept {
    const index_t l = num_levels();
    return l > 0 ? static_cast<double>(iterations()) / static_cast<double>(l)
                 : 0.0;
  }
  index_t level_size(index_t l) const noexcept {
    return level_ptr[static_cast<std::size_t>(l) + 1] -
           level_ptr[static_cast<std::size_t>(l)];
  }
};

/// Compute wavefront levels. Dependences must point backwards (j < i).
std::vector<index_t> dependence_levels(index_t n, const DepFn& deps);

/// Full doconsider analysis: levels + stable-by-level execution order.
Reordering doconsider_order(index_t n, const DepFn& deps);
Reordering doconsider_order(const DepGraph& g);

/// True iff `order` is a permutation of [0, n) in which every dependence's
/// producer precedes its consumers — the deadlock-freedom requirement of
/// the reordered doacross executor.
bool is_valid_schedule(index_t n, std::span<const index_t> order,
                       const DepFn& deps);

/// Build the true-dependence graph of a preprocessed-doacross loop from
/// its writer map and a read enumerator: i depends on j iff j < i and
/// iteration j writes an offset that i reads. `reads(i, emit)` must emit
/// every read offset of iteration i (duplicates are fine; self-references
/// and antidependences are filtered out here, exactly as the executor's
/// three-way check would).
using ReadFn = std::function<void(index_t, const std::function<void(index_t)>&)>;
DepGraph build_true_deps(index_t n, std::span<const index_t> writer,
                         index_t value_space, const ReadFn& reads);

}  // namespace pdx::core
