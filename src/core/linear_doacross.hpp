// linear_doacross.hpp — inspector-free doacross for linear writer maps
// (paper §2.3, second variant).
//
// "When the left hand side arrays are indexed by a linear subscript
//  function (a(i) = c*i + d) it is possible to eliminate the execution
//  time preprocessing phase along with the need to allocate storage for
//  array iter. We can determine whether y(off) can be written to by
//  testing whether (off - d) mod c == 0; if a write is carried out it
//  occurs during loop iteration (off - d) / c."
//
// Consequences realized here:
//   * no inspector phase (stats.inspect_seconds == 0 identically);
//   * no iter table — the writer of an offset is computed arithmetically;
//   * ready flags and the ynew shadow are indexed by *iteration* (the
//     writer map is a bijection onto its image), so arena memory is O(N)
//     regardless of the value space.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/doacross_stats.hpp"
#include "core/iter_table.hpp"
#include "core/ready_table.hpp"
#include "runtime/aligned.hpp"
#include "runtime/barrier.hpp"
#include "runtime/thread_pool.hpp"

namespace pdx::core {

/// The linear writer map a(i) = c*i + d over i in [0, n), with the paper's
/// closed-form inverse.
struct LinearWriter {
  index_t c = 1;  ///< stride; must be >= 1 (injectivity)
  index_t d = 0;  ///< base offset
  index_t n = 0;  ///< iteration count

  index_t operator()(index_t i) const noexcept { return c * i + d; }

  /// Iteration that writes `off`, or kNeverWritten. This is the paper's
  /// "(off - d) mod c == 0, write occurs during iteration (off - d)/c".
  index_t writer_of(index_t off) const noexcept {
    const index_t t = off - d;
    if (t < 0 || t % c != 0) return kNeverWritten;
    const index_t i = t / c;
    return i < n ? i : kNeverWritten;
  }

  /// Smallest value space that covers all written offsets.
  index_t written_extent() const noexcept { return n == 0 ? 0 : c * (n - 1) + d + 1; }
};

/// Accessor with the same duck-typed interface as core::Iteration, but
/// dependence resolution by arithmetic instead of table lookup.
///
/// `StaticC` specializes the stride at compile time (0 = runtime stride):
/// the hot path divides by c on *every read*, and an integer division by a
/// runtime divisor costs more than the iter-table load it replaces — with
/// a constant divisor the compiler strength-reduces it to shifts/masks and
/// the §2.3 elimination pays off. LinearDoacross dispatches to common
/// strides automatically.
template <class T, class Ready, index_t StaticC = 0>
class LinearIteration {
 public:
  LinearIteration(index_t i, LinearWriter w, const Ready* ready, const T* yold,
                  const T* ynew_by_iter, std::uint64_t* wait_episodes,
                  std::uint64_t* wait_rounds) noexcept
      : i_(i),
        w_(w),
        acc_(yold[w(i)]),
        ready_(ready),
        yold_(yold),
        ynew_(ynew_by_iter),
        wait_episodes_(wait_episodes),
        wait_rounds_(wait_rounds) {}

  index_t index() const noexcept { return i_; }
  index_t lhs_index() const noexcept { return w_(i_); }
  T& lhs() noexcept { return acc_; }

  T read(index_t offset) noexcept {
    const index_t c = StaticC > 0 ? StaticC : w_.c;
    const index_t t = offset - w_.d;
    if (t >= 0 && t % c == 0) {
      const index_t w = t / c;
      if (w < w_.n) {
        if (w == i_) return acc_;
        if (w < i_) {
          const std::uint64_t rounds = ready_->wait_done(w);
          if (rounds != 0) {
            ++*wait_episodes_;
            *wait_rounds_ += rounds;
          }
          return ynew_[w];
        }
        return yold_[offset];  // antidependence
      }
    }
    return yold_[offset];  // never written
  }

 private:
  const index_t i_;
  const LinearWriter w_;
  T acc_;
  const Ready* ready_;
  const T* yold_;
  const T* ynew_;
  std::uint64_t* wait_episodes_;
  std::uint64_t* wait_rounds_;
};

struct LinearOptions {
  unsigned nthreads = 0;
  rt::Schedule schedule = rt::Schedule::static_block();
  /// Optional valid execution order over [0, n), as in DoacrossOptions.
  const index_t* order = nullptr;
};

template <class T, class Ready = DenseReadyTable>
class LinearDoacross {
 public:
  explicit LinearDoacross(rt::ThreadPool& pool) : pool_(&pool) {}

  /// Execute the loop `for i: y[c*i + d] = f(reads)` with runtime-resolved
  /// reads. `y` must cover every read offset and the written extent.
  /// Common strides dispatch to compile-time-specialized executors (the
  /// per-read division strength-reduces to shifts).
  template <class Body>
  DoacrossStats run(LinearWriter w, std::span<T> y, Body&& body,
                    const LinearOptions& opts = {}) {
    if (w.c < 1) throw std::invalid_argument("LinearWriter: c must be >= 1");
    if (w.n > 0 && static_cast<index_t>(y.size()) < w.written_extent()) {
      throw std::invalid_argument("LinearDoacross::run: y too small");
    }
    switch (w.c) {
      case 1:
        return run_impl<1>(w, y, body, opts);
      case 2:
        return run_impl<2>(w, y, body, opts);
      case 3:
        return run_impl<3>(w, y, body, opts);
      case 4:
        return run_impl<4>(w, y, body, opts);
      default:
        return run_impl<0>(w, y, body, opts);
    }
  }

 private:
  template <index_t StaticC, class Body>
  DoacrossStats run_impl(LinearWriter w, std::span<T> y, Body&& body,
                         const LinearOptions& opts) {
    DoacrossStats stats;
    const index_t n = w.n;
    if (n == 0) return stats;

    const unsigned nth = pool_->clamp_threads(opts.nthreads);
    ready_.ensure_size(n);
    ready_.begin_epoch();
    if (static_cast<index_t>(ynew_.size()) < n) {
      ynew_.resize(static_cast<std::size_t>(n));
    }

    rt::Barrier barrier(nth);
    std::atomic<index_t> cursor{0};
    std::vector<rt::Padded<std::uint64_t>> episodes(nth), rounds(nth);

    using clock = std::chrono::steady_clock;
    clock::time_point t0, t1, t2;
    const index_t* order = opts.order;
    T* yp = y.data();
    T* ynp = ynew_.data();

    pool_->parallel_region(nth, [&](unsigned tid, unsigned nthreads) {
      barrier.arrive_and_wait();  // rendezvous: exclude pool wake-up
      if (tid == 0) t0 = clock::now();

      // No inspector phase — that is the point of this variant.
      std::uint64_t my_episodes = 0, my_rounds = 0;
      // noexcept: see DoacrossEngine::run — fail fast over deadlock.
      auto run_one = [&](index_t k) noexcept {
        const index_t i = order ? order[k] : k;
        LinearIteration<T, Ready, StaticC> it(i, w, &ready_, yp, ynp,
                                              &my_episodes, &my_rounds);
        body(it);
        ynp[i] = it.lhs();
        ready_.mark_done(i);
      };
      rt::schedule_run(opts.schedule, n, tid, nthreads, &cursor, run_one);
      episodes[tid].value = my_episodes;
      rounds[tid].value = my_rounds;
      barrier.arrive_and_wait();
      if (tid == 0) t1 = clock::now();

      // Postprocessing: copy back and reset flags (iteration-indexed).
      const rt::IterRange post = rt::static_block_range(n, tid, nthreads);
      for (index_t i = post.begin; i < post.end; ++i) {
        yp[w(i)] = ynp[i];
        ready_.clear(i);
      }
      barrier.arrive_and_wait();
      if (tid == 0) t2 = clock::now();
    });

    stats.inspect_seconds = 0.0;
    stats.execute_seconds = std::chrono::duration<double>(t1 - t0).count();
    stats.post_seconds = std::chrono::duration<double>(t2 - t1).count();
    for (unsigned t = 0; t < nth; ++t) {
      stats.wait_episodes += episodes[t].value;
      stats.wait_rounds += rounds[t].value;
    }
    return stats;
  }

  rt::ThreadPool* pool_;
  Ready ready_;  // iteration-indexed
  std::vector<T, rt::CacheAlignedAllocator<T>> ynew_;
};

}  // namespace pdx::core
