// iteration.hpp — per-iteration dependence-resolving accessor.
//
// An `Iteration` is what a preprocessed-doacross loop body receives instead
// of raw array indexing. It implements the transformed reference semantics
// of paper Fig. 5:
//
//     check = iter(offset) - i
//     check <  0 : true dependence  -> wait ready(offset); use ynew(offset)
//     check == 0 : same iteration   -> use the partial left-hand side
//     check >  0 : antidependence or never written -> use y(offset)
//
// and the transformed write semantics: the left-hand side accumulates in
// `lhs()` (initialized from the old value, Fig. 5 statement S2) and is
// committed to ynew + ready by the executor after the body returns.
#pragma once

#include <cstdint>

#include "core/iter_table.hpp"
#include "core/ready_table.hpp"
#include "runtime/types.hpp"

namespace pdx::core {

template <class T, class Ready>
class Iteration {
 public:
  Iteration(index_t i, index_t lhs_off, const index_t* iter, const Ready* ready,
            const T* yold, const T* ynew, std::uint64_t* wait_episodes,
            std::uint64_t* wait_rounds) noexcept
      : i_(i),
        lhs_off_(lhs_off),
        acc_(yold[lhs_off]),
        iter_(iter),
        ready_(ready),
        yold_(yold),
        ynew_(ynew),
        wait_episodes_(wait_episodes),
        wait_rounds_(wait_rounds) {}

  Iteration(const Iteration&) = delete;
  Iteration& operator=(const Iteration&) = delete;

  /// Source-order iteration number `i`.
  index_t index() const noexcept { return i_; }

  /// Offset this iteration writes — the paper's a(i).
  index_t lhs_index() const noexcept { return lhs_off_; }

  /// The left-hand-side accumulator ynew(a(i)); starts at y(a(i)).
  T& lhs() noexcept { return acc_; }
  const T& lhs() const noexcept { return acc_; }

  /// Dependence-resolved read of y(offset) per the three-way check above.
  T read(index_t offset) noexcept {
    const index_t w = iter_[offset];  // writer iteration, or kNeverWritten
    if (w == i_) {
      return acc_;  // check == 0: intra-iteration reference
    }
    if (w < i_) {
      // check < 0: true dependence — busy-wait for the producer.
      const std::uint64_t rounds = ready_->wait_done(offset);
      if (rounds != 0) {
        ++*wait_episodes_;
        *wait_rounds_ += rounds;
      }
      return ynew_[offset];
    }
    // check > 0: antidependence (a later iteration writes it) or the
    // offset is never written — either way the old value is correct.
    return yold_[offset];
  }

  /// Peek the resolved value *source* without waiting; for diagnostics.
  /// Returns -1 for a true dependence, 0 intra-iteration, +1 old value.
  int classify(index_t offset) const noexcept {
    const index_t w = iter_[offset];
    if (w == i_) return 0;
    return w < i_ ? -1 : +1;
  }

 private:
  const index_t i_;
  const index_t lhs_off_;
  T acc_;
  const index_t* iter_;
  const Ready* ready_;
  const T* yold_;
  const T* ynew_;
  std::uint64_t* wait_episodes_;
  std::uint64_t* wait_rounds_;
};

}  // namespace pdx::core
