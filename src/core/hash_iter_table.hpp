// hash_iter_table.hpp — memory-bounded last-writer table (§2.3 extension).
//
// The paper reduces doacross memory by strip-mining so that `iter` and
// `ready` can be *reused*; the table itself still spans the value space.
// This open-addressing hash table finishes the job: capacity scales with
// the number of writes per strip (O(strip)), not with the value space, so
// a blocked doacross over a loop writing into a huge sparsely-touched
// array needs arena memory proportional only to the strip.
//
// Concurrency contract (matching the engine's phase structure):
//   * inspector phase — concurrent `record` calls from many threads,
//     distinct offsets (writer map is injective); insertion claims a slot
//     with a CAS on the key;
//   * executor phase — concurrent read-only `operator[]` lookups; the
//     phase barrier orders them after all inserts;
//   * postprocess — `begin_epoch()` (thread 0, between barriers) wipes the
//     keys for the next strip; per-entry `clear` is a no-op.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <memory>

#include "core/iter_table.hpp"
#include "runtime/types.hpp"

namespace pdx::core {

class HashIterTable {
 public:
  HashIterTable() = default;
  explicit HashIterTable(index_t expected_writes) {
    reserve_writes(expected_writes);
  }

  /// Size the table for up to `expected_writes` insertions per epoch at a
  /// load factor <= 0.5. Existing contents are discarded.
  ///
  /// The hint is checked against reality: if any prior epoch inserted more
  /// keys than the load-factor budget (capacity/2), the table records an
  /// overflow and remembers a larger capacity floor — so a caller passing
  /// the same (too small) estimate every strip gets a grown table here
  /// instead of silently keeping the stale capacity forever.
  void reserve_writes(index_t expected_writes) {
    fold_epoch_stats();
    const std::uint64_t wanted =
        std::max(std::bit_ceil(static_cast<std::uint64_t>(
                     expected_writes > 0 ? 2 * expected_writes : 2)),
                 min_capacity_);
    if (wanted == capacity_ && slots_) {
      wipe_slots();
      return;
    }
    capacity_ = wanted;
    mask_ = capacity_ - 1;
    slots_ = std::make_unique<Slot[]>(capacity_);
    for (std::uint64_t s = 0; s < capacity_; ++s) {
      slots_[s].key.store(kEmpty, std::memory_order_relaxed);
    }
  }

  index_t capacity() const noexcept { return static_cast<index_t>(capacity_); }

  /// Arena bytes — the number the §2.3 ablation (bench E4) reports.
  std::size_t memory_bytes() const noexcept {
    return static_cast<std::size_t>(capacity_) * sizeof(Slot);
  }

  /// Wipe all entries (O(capacity), which is O(strip)). Capacity is kept
  /// — this runs single-threaded between barriers, where reallocation is
  /// not allowed; an overflowed epoch is recorded here and the growth is
  /// applied at the next reserve_writes call. One fused sweep counts the
  /// epoch's occupied slots while clearing them (this is the per-strip
  /// serialized postprocess path, so no second scan).
  void begin_epoch() noexcept {
    std::uint64_t used = 0;
    for (std::uint64_t s = 0; s < capacity_; ++s) {
      if (slots_[s].key.load(std::memory_order_relaxed) != kEmpty) ++used;
      slots_[s].key.store(kEmpty, std::memory_order_relaxed);
      slots_[s].value = kNeverWritten;
    }
    note_overflow(used);
  }

  /// Epochs (so far) whose insert count exceeded the load-factor budget of
  /// capacity/2. Nonzero means some reserve_writes hint was too small; the
  /// table has already scheduled itself to grow past the hint.
  std::uint64_t overflow_epochs() const noexcept { return overflow_epochs_; }

  /// Insertions present in the current epoch (occupied slots — new keys
  /// only, not overwrites). O(capacity) scan, like pristine(): overflow
  /// detection is paid at the epoch boundaries that already sweep the
  /// slots, keeping record() free of shared-counter contention.
  std::uint64_t epoch_writes() const noexcept {
    std::uint64_t used = 0;
    for (std::uint64_t s = 0; s < capacity_; ++s) {
      if (slots_[s].key.load(std::memory_order_relaxed) != kEmpty) ++used;
    }
    return used;
  }

  /// Inspector step: iter(offset) = i. Thread-safe for distinct offsets.
  /// The value store is plain: executor reads are ordered behind the
  /// phase barrier.
  void record(index_t offset, index_t i) noexcept {
    assert(offset >= 0);
    std::uint64_t s = probe_start(offset);
    for (;;) {
      index_t seen = slots_[s].key.load(std::memory_order_relaxed);
      if (seen == offset) {  // duplicate writer: precondition violation,
        slots_[s].value = i;  // keep last like the dense table would
        return;
      }
      if (seen == kEmpty) {
        if (slots_[s].key.compare_exchange_strong(
                seen, offset, std::memory_order_relaxed)) {
          slots_[s].value = i;
          return;
        }
        if (seen == offset) {  // lost the race to ourselves-by-offset
          slots_[s].value = i;
          return;
        }
        continue;  // lost to a different offset: re-inspect this slot
      }
      s = (s + 1) & mask_;
      assert(s != probe_start(offset) && "HashIterTable full");
    }
  }

  /// Executor lookup: the writer of `offset`, or kNeverWritten.
  index_t operator[](index_t offset) const noexcept {
    std::uint64_t s = probe_start(offset);
    for (;;) {
      const index_t seen = slots_[s].key.load(std::memory_order_relaxed);
      if (seen == offset) return slots_[s].value;
      if (seen == kEmpty) return kNeverWritten;
      s = (s + 1) & mask_;
    }
  }

  /// Postprocess per-entry reset: a no-op (begin_epoch wipes wholesale).
  void clear(index_t) noexcept {}

  /// True iff no entry is present (test hook; O(capacity)).
  bool pristine() const {
    for (std::uint64_t s = 0; s < capacity_; ++s) {
      if (slots_[s].key.load(std::memory_order_relaxed) != kEmpty) {
        return false;
      }
    }
    return true;
  }

 private:
  static constexpr index_t kEmpty = -1;

  struct Slot {
    std::atomic<index_t> key{kEmpty};
    index_t value = kNeverWritten;
  };

  void wipe_slots() noexcept {
    for (std::uint64_t s = 0; s < capacity_; ++s) {
      slots_[s].key.store(kEmpty, std::memory_order_relaxed);
      slots_[s].value = kNeverWritten;
    }
  }

  /// Close out the current epoch's insert count (an occupied-slot scan,
  /// without wiping — reserve_writes may realloc instead).
  void fold_epoch_stats() noexcept {
    if (!slots_) return;
    note_overflow(epoch_writes());
  }

  /// Past the load-factor budget: remember both the overflow and a
  /// capacity floor that covers the observed count at load factor <= 0.5.
  void note_overflow(std::uint64_t used) noexcept {
    if (slots_ && used > capacity_ / 2) {
      ++overflow_epochs_;
      min_capacity_ = std::max(min_capacity_, std::bit_ceil(2 * used));
    }
  }

  std::uint64_t probe_start(index_t offset) const noexcept {
    // splitmix-style finalizer scatters dense offset ranges.
    std::uint64_t z = static_cast<std::uint64_t>(offset);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return (z ^ (z >> 31)) & mask_;
  }

  std::unique_ptr<Slot[]> slots_;
  std::uint64_t capacity_ = 0;
  std::uint64_t mask_ = 0;
  std::uint64_t min_capacity_ = 0;    // learned floor after overflow epochs
  std::uint64_t overflow_epochs_ = 0;
};

}  // namespace pdx::core
