// iter_table.hpp — the paper's `iter` array (last-writer table).
//
// The inspector phase of the preprocessed doacross records, for every data
// offset that the loop writes, *which iteration* writes it:
//
//     parallel do i = 1, N
//        iter(a(i)) = i          (paper Fig. 3, "Preprocessing")
//     end parallel do
//
// every other entry holds MAXINT ("never written"). The executor then
// resolves each right-hand-side reference y(off) with the three-way test on
// `check = iter(off) - i` (paper §2.1/§2.2). The postprocessing phase
// resets exactly the entries that were written — O(writes), not O(table) —
// so one table is reused across many doacross loops (paper Fig. 3,
// "Postprocessing").
#pragma once

#include <cassert>
#include <limits>
#include <span>
#include <vector>

#include "runtime/types.hpp"

namespace pdx::core {

/// Sentinel meaning "this offset is written by no iteration of the current
/// loop" — the paper's MAXINT. It compares greater than every iteration
/// index, so the executor's `check > 0` branch (read the old value) handles
/// never-written offsets with no extra test.
inline constexpr index_t kNeverWritten = std::numeric_limits<index_t>::max();

class IterTable {
 public:
  IterTable() = default;
  explicit IterTable(index_t size)
      : slots_(static_cast<std::size_t>(size), kNeverWritten) {}

  index_t size() const noexcept { return static_cast<index_t>(slots_.size()); }

  /// Grow (never shrink) to cover offsets [0, size). New slots start as
  /// never-written; existing contents are preserved.
  void ensure_size(index_t size) {
    if (size > this->size()) {
      slots_.resize(static_cast<std::size_t>(size), kNeverWritten);
    }
  }

  /// No-op: the dense table resets through per-entry `clear` in the
  /// postprocessing sweep. (The hash table flavour resets here instead.)
  void begin_epoch() noexcept {}

  /// iter(offset) — the iteration that writes `offset`, or kNeverWritten.
  index_t operator[](index_t off) const noexcept {
    assert(off >= 0 && off < size());
    return slots_[static_cast<std::size_t>(off)];
  }

  /// Inspector step for one iteration: iter(writer) = i.
  /// Distinct iterations must target distinct offsets (no output
  /// dependences, a stated paper precondition), so concurrent calls from
  /// different iterations never race.
  void record(index_t writer_off, index_t i) noexcept {
    assert(writer_off >= 0 && writer_off < size());
    slots_[static_cast<std::size_t>(writer_off)] = i;
  }

  /// Postprocessing step for one iteration: iter(writer) = MAXINT.
  void clear(index_t writer_off) noexcept {
    assert(writer_off >= 0 && writer_off < size());
    slots_[static_cast<std::size_t>(writer_off)] = kNeverWritten;
  }

  /// Sequential whole-loop inspector (tests / single-thread paths).
  void record_all(std::span<const index_t> writer) {
    for (index_t i = 0; i < static_cast<index_t>(writer.size()); ++i) {
      record(writer[static_cast<std::size_t>(i)], i);
    }
  }

  /// Sequential whole-loop reset (tests / single-thread paths).
  void clear_all(std::span<const index_t> writer) {
    for (index_t off : writer) clear(off);
  }

  /// True iff every slot is kNeverWritten — the invariant the table must
  /// satisfy between loops. O(size); meant for tests and debug checks.
  bool pristine() const {
    for (index_t v : slots_) {
      if (v != kNeverWritten) return false;
    }
    return true;
  }

  const index_t* data() const noexcept { return slots_.data(); }

 private:
  std::vector<index_t> slots_;
};

/// Check the paper's no-output-dependence precondition: `writer` maps
/// distinct iterations to distinct offsets, all within [0, value_space).
/// Returns the first offending iteration index, or -1 if the map is valid.
inline index_t find_writer_conflict(std::span<const index_t> writer,
                                    index_t value_space) {
  std::vector<bool> seen(static_cast<std::size_t>(value_space), false);
  for (index_t i = 0; i < static_cast<index_t>(writer.size()); ++i) {
    const index_t off = writer[static_cast<std::size_t>(i)];
    if (off < 0 || off >= value_space) return i;
    if (seen[static_cast<std::size_t>(off)]) return i;
    seen[static_cast<std::size_t>(off)] = true;
  }
  return -1;
}

}  // namespace pdx::core
