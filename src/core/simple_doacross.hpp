// simple_doacross.hpp — the paper's Figure 2: doacross with true
// dependences only.
//
// Before introducing the full preprocessed machinery, the paper presents
// the restricted case a(i) = i and b(i) < i — every reference to another
// iteration's element is a *true* dependence on an earlier iteration, so
// no iter table, no ynew shadow, and no antidependence handling are
// needed:
//
//     parallel do i = 1, N
//   S1:  while (ready(b(i)) .eq. NOTDONE) endwhile
//   S2:  y(i) = ... y(b(i))
//   S3:  ready(i) = DONE
//     end parallel do
//
// This executor generalizes that figure to any body that writes y(i) and
// reads only offsets j < i (checked in debug builds). It is both the
// pedagogical entry point of the library and the fast path the sparse
// triangular solves specialize further.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/doacross_stats.hpp"
#include "core/ready_table.hpp"
#include "runtime/aligned.hpp"
#include "runtime/barrier.hpp"
#include "runtime/thread_pool.hpp"

namespace pdx::core {

/// Accessor for the Figure 2 executor: reads wait on the producer's flag
/// and then load y directly (writes are published by the release flag).
template <class T, class Ready>
class SimpleIteration {
 public:
  SimpleIteration(index_t i, const Ready* ready, T* y,
                  std::uint64_t* wait_episodes,
                  std::uint64_t* wait_rounds) noexcept
      : i_(i),
        acc_(),
        ready_(ready),
        y_(y),
        wait_episodes_(wait_episodes),
        wait_rounds_(wait_rounds) {}

  index_t index() const noexcept { return i_; }
  index_t lhs_index() const noexcept { return i_; }

  /// The value being computed for y(i); committed by the executor.
  T& lhs() noexcept { return acc_; }

  /// Read y(j) for j < i: wait until iteration j is DONE (paper S1).
  T read(index_t j) noexcept {
    assert(j < i_ && "Figure 2 form requires b(i) < i (true dependences)");
    const std::uint64_t rounds = ready_->wait_done(j);
    if (rounds != 0) {
      ++*wait_episodes_;
      *wait_rounds_ += rounds;
    }
    return y_[j];
  }

  /// Read y(i)'s old value (no wait; the writer is this iteration).
  T read_own() const noexcept { return y_[i_]; }

 private:
  const index_t i_;
  T acc_;
  const Ready* ready_;
  const T* y_;
  std::uint64_t* wait_episodes_;
  std::uint64_t* wait_rounds_;
};

struct SimpleDoacrossOptions {
  unsigned nthreads = 0;
  rt::Schedule schedule = rt::Schedule::static_block();
  /// Optional valid execution order (producers before consumers).
  const index_t* order = nullptr;
};

/// Execute `for i in [0, n): y[i] = body(i, reads of y[j<i])` in parallel
/// (paper Fig. 2). `ready` is reused across calls (reset during the
/// postprocessing sweep). Results are bitwise equal to sequential
/// execution.
template <class T, class Ready = DenseReadyTable, class Body>
DoacrossStats simple_doacross(rt::ThreadPool& pool, index_t n,
                              std::span<T> y, Ready& ready, Body&& body,
                              const SimpleDoacrossOptions& opts = {}) {
  if (static_cast<index_t>(y.size()) < n) {
    throw std::invalid_argument("simple_doacross: y too small");
  }
  DoacrossStats stats;
  if (n == 0) return stats;

  const unsigned nth = pool.clamp_threads(opts.nthreads);
  ready.ensure_size(n);
  ready.begin_epoch();

  rt::Barrier barrier(nth);
  std::atomic<index_t> cursor{0};
  std::vector<rt::Padded<std::uint64_t>> episodes(nth), rounds(nth);

  using clock = std::chrono::steady_clock;
  clock::time_point t0, t1, t2;
  const index_t* order = opts.order;
  T* yp = y.data();

  pool.parallel_region(nth, [&](unsigned tid, unsigned nthreads) {
    barrier.arrive_and_wait();  // rendezvous: exclude pool wake-up
    if (tid == 0) t0 = clock::now();

    std::uint64_t my_episodes = 0, my_rounds = 0;
    // noexcept: see DoacrossEngine::run — fail fast over deadlock.
    auto run_one = [&](index_t k) noexcept {
      const index_t i = order ? order[k] : k;
      SimpleIteration<T, Ready> it(i, &ready, yp, &my_episodes, &my_rounds);
      body(it);
      yp[i] = it.lhs();
      ready.mark_done(i);  // paper S3; release-publishes the y store
    };
    rt::schedule_run(opts.schedule, n, tid, nthreads, &cursor, run_one);
    episodes[tid].value = my_episodes;
    rounds[tid].value = my_rounds;
    barrier.arrive_and_wait();
    if (tid == 0) t1 = clock::now();

    const rt::IterRange post = rt::static_block_range(n, tid, nthreads);
    for (index_t i = post.begin; i < post.end; ++i) ready.clear(i);
    barrier.arrive_and_wait();
    if (tid == 0) t2 = clock::now();
  });

  stats.execute_seconds = std::chrono::duration<double>(t1 - t0).count();
  stats.post_seconds = std::chrono::duration<double>(t2 - t1).count();
  for (unsigned t = 0; t < nth; ++t) {
    stats.wait_episodes += episodes[t].value;
    stats.wait_rounds += rounds[t].value;
  }
  return stats;
}

/// Sequential reference for the Figure 2 form.
template <class T, class Body>
void simple_doacross_reference(index_t n, std::span<T> y, Body&& body) {
  struct SeqIt {
    index_t i;
    T acc;
    T* y;
    index_t index() const noexcept { return i; }
    index_t lhs_index() const noexcept { return i; }
    T& lhs() noexcept { return acc; }
    T read(index_t j) noexcept {
      assert(j < i);
      return y[j];
    }
    T read_own() const noexcept { return y[i]; }
  };
  for (index_t i = 0; i < n; ++i) {
    SeqIt it{i, T{}, y.data()};
    body(it);
    y[static_cast<std::size_t>(i)] = it.acc;
  }
}

}  // namespace pdx::core
