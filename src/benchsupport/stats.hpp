// stats.hpp — robust summary statistics over timing samples.
#pragma once

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace pdx::bench {

struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
  std::size_t n = 0;
};

inline Summary summarize(std::vector<double> samples) {
  if (samples.empty()) throw std::invalid_argument("summarize: no samples");
  Summary s;
  s.n = samples.size();
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  const std::size_t mid = samples.size() / 2;
  s.median = samples.size() % 2 == 1
                 ? samples[mid]
                 : 0.5 * (samples[mid - 1] + samples[mid]);
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0.0;
  for (double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                 : 0.0;
  return s;
}

/// The paper's metric: T_seq / (p * T_par).
inline double parallel_efficiency(double t_seq, double t_par, unsigned procs) {
  if (t_par <= 0.0 || procs == 0) return 0.0;
  return t_seq / (static_cast<double>(procs) * t_par);
}

inline double speedup(double t_seq, double t_par) {
  return t_par > 0.0 ? t_seq / t_par : 0.0;
}

}  // namespace pdx::bench
