// env.hpp — bench-harness configuration from the environment.
//
//   PDX_THREADS — processor count for the parallel runs
//                 (default: min(16, available CPUs), matching the paper's
//                 16-processor Multimax).
//   PDX_REPS    — timing repetitions per configuration (default 5).
//   PDX_QUICK   — if set (non-zero), benches shrink problem sizes for CI.
#pragma once

#include <string>

namespace pdx::bench {

/// Parse a positive integer environment variable, or `fallback`.
int env_int(const char* name, int fallback);

/// Processor count used by all paper-reproduction benches.
unsigned default_procs();

/// Timing repetitions.
int default_reps();

/// Whether to run in quick (CI) mode.
bool quick_mode();

/// One-line description of the bench environment (procs, mode).
std::string environment_banner(const std::string& bench_name);

}  // namespace pdx::bench
