// timer.hpp — wall-clock measurement helpers for the benchmark harnesses.
#pragma once

#include <chrono>
#include <utility>
#include <vector>

namespace pdx::bench {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void restart() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Time one call of `fn` in seconds.
template <class Fn>
double time_call(Fn&& fn) {
  WallTimer t;
  fn();
  return t.seconds();
}

/// Run `fn` `reps` times (after `warmup` unrecorded runs) and return the
/// per-run seconds. Benches report the minimum — the least-disturbed run —
/// as the paper's single-shot timings effectively did on a quiet Multimax.
template <class Fn>
std::vector<double> time_samples(int reps, int warmup, Fn&& fn) {
  for (int r = 0; r < warmup; ++r) fn();
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) out.push_back(time_call(fn));
  return out;
}

}  // namespace pdx::bench
