// table.hpp — aligned text tables and CSV output for the bench harnesses.
//
// Every bench prints the same rows/series the paper reports; this keeps
// the formatting in one place so outputs stay uniform and parseable.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace pdx::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Begin a new row; append cells with `cell()`.
  Table& row() {
    rows_.emplace_back();
    return *this;
  }

  Table& cell(const std::string& v) {
    rows_.back().push_back(v);
    return *this;
  }
  Table& cell(const char* v) { return cell(std::string(v)); }
  Table& cell(double v, int precision = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return cell(os.str());
  }
  Table& cell(long long v) { return cell(std::to_string(v)); }
  Table& cell(int v) { return cell(std::to_string(v)); }
  Table& cell(unsigned v) { return cell(std::to_string(v)); }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& r) {
      os << "  ";
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& v = c < r.size() ? r[c] : std::string();
        os << std::left << std::setw(static_cast<int>(width[c]) + 2) << v;
      }
      os << '\n';
    };
    print_row(headers_);
    std::vector<std::string> rule;
    rule.reserve(headers_.size());
    for (std::size_t c = 0; c < width.size(); ++c) {
      rule.push_back(std::string(width[c], '-'));
    }
    print_row(rule);
    for (const auto& r : rows_) print_row(r);
  }

  void print_csv(std::ostream& os) const {
    auto emit = [&](const std::vector<std::string>& r) {
      for (std::size_t c = 0; c < r.size(); ++c) {
        if (c) os << ',';
        os << r[c];
      }
      os << '\n';
    };
    emit(headers_);
    for (const auto& r : rows_) emit(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pdx::bench
