#include "benchsupport/env.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "runtime/affinity.hpp"

namespace pdx::bench {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || parsed <= 0) return fallback;
  return static_cast<int>(parsed);
}

unsigned default_procs() {
  const unsigned avail = rt::allowed_cpus();
  const unsigned paper = std::min(16u, avail);
  return static_cast<unsigned>(env_int("PDX_THREADS", static_cast<int>(paper)));
}

int default_reps() { return env_int("PDX_REPS", 3); }

bool quick_mode() { return env_int("PDX_QUICK", 0) != 0; }

std::string environment_banner(const std::string& bench_name) {
  std::ostringstream os;
  os << "# " << bench_name << " | procs=" << default_procs()
     << " reps=" << default_reps() << (quick_mode() ? " (quick mode)" : "");
  return os.str();
}

}  // namespace pdx::bench
