// rng.hpp — deterministic pseudo-random generation for workloads.
//
// Every generator in the library takes an explicit 64-bit seed and uses
// this SplitMix64 engine, so all experiments are exactly reproducible
// across runs and platforms (no dependence on std:: distribution
// implementation details).
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "runtime/types.hpp"

namespace pdx::gen {

/// SplitMix64 (Steele, Lea & Flood): tiny, high-quality, splittable.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() noexcept {
    state_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double next_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, bound). Uses rejection to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    const std::uint64_t limit = ~std::uint64_t{0} - ~std::uint64_t{0} % bound;
    std::uint64_t x;
    do {
      x = next();
    } while (x >= limit);
    return x % bound;
  }

  index_t next_index(index_t bound) noexcept {
    return static_cast<index_t>(next_below(static_cast<std::uint64_t>(bound)));
  }

 private:
  std::uint64_t state_;
};

/// Fisher–Yates shuffle driven by SplitMix64.
template <class T>
void shuffle(std::vector<T>& v, SplitMix64& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(i)));
    std::swap(v[i - 1], v[j]);
  }
}

/// A random injective map from [0, n) into [0, space): a uniformly chosen
/// n-subset of offsets in random order. Requires n <= space.
std::vector<index_t> random_injection(index_t n, index_t space,
                                      SplitMix64& rng);

}  // namespace pdx::gen
