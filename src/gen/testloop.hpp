// testloop.hpp — the paper's preprocessed-doacross test loop (Fig. 4).
//
//     do i = 1, N
//        do j = 1, M
//           y(a(i)) = y(a(i)) + val(j) * y(b(i) + nbrs(j))
//        end do
//     end do
//
// with the §3.1 initialization a(i) = 2i and nbrs(j) = 2j - L (we use
// b(i) = 2i as well, which reproduces the paper's behaviour exactly):
//
//   * odd L  — read offsets have opposite parity from written offsets, so
//     there are **no cross-iteration dependences**; measured efficiency is
//     the pure overhead floor of the mechanism (paper: ~0.33 at M=1,
//     ~0.50 at M=5 on 16 procs).
//   * even L — the reader of offset 2i + 2j - L is iteration i + j - L/2,
//     i.e. a true dependence at distance L/2 - j (j < L/2), a self
//     reference (j = L/2), or an antidependence (j > L/2). Larger L means
//     longer distances, fewer forced waits, and monotonically rising
//     efficiency — Figure 6's even-L series.
//
// All indices here are 0-based; a constant `base` shift (>= L) keeps every
// offset non-negative without altering any dependence relation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/doacross.hpp"
#include "core/doconsider.hpp"
#include "gen/rng.hpp"
#include "runtime/types.hpp"

namespace pdx::gen {

struct TestLoopParams {
  index_t n = 10000;  ///< N — outer iterations
  int m = 5;          ///< M — reads per iteration (inner loop trips)
  int l = 1;          ///< L — dependence-distance control, 1..14 in Fig. 6
  /// Extra synthetic flops folded into each inner step. The 1990 Multimax
  /// spent far more cycles per iteration relative to synchronization than
  /// a modern core does; work_reps recovers the paper's work/overhead
  /// ratio without changing any dependence (bench E1 reports both).
  int work_reps = 0;
};

struct TestLoop {
  TestLoopParams params;
  index_t base = 0;           ///< offset shift applied to a and b
  std::vector<index_t> a;     ///< writer map, a[i] = 2i + base
  std::vector<index_t> b;     ///< read base,  b[i] = 2i + base
  std::vector<index_t> nbrs;  ///< nbrs[j] = 2(j+1) - L, j in [0, M)
  std::vector<double> val;    ///< val[j], deterministic pseudo-random
  std::vector<double> y0;     ///< initial y, deterministic pseudo-random
  index_t value_space = 0;    ///< exclusive bound on every offset used

  index_t n() const noexcept { return params.n; }
};

/// Build the Fig. 4 workload for the given parameters.
TestLoop make_test_loop(const TestLoopParams& p, std::uint64_t seed = 42);

/// Deterministic extra work: `reps` fused multiply-adds that keep the
/// value finite. Identical code on the sequential and parallel paths, so
/// results stay bitwise comparable.
inline double work_spin(double x, int reps) noexcept {
  double acc = x;
  for (int r = 0; r < reps; ++r) {
    acc = acc * 0.999999999 + 1e-12;
  }
  return acc;
}

/// The loop body, shared verbatim by the sequential reference and every
/// parallel executor (duck-typed `It`: index/lhs/read).
template <class It>
inline void test_loop_body(const TestLoop& tl, It& it) {
  const index_t i = it.index();
  const index_t bi = tl.b[static_cast<std::size_t>(i)];
  const int m = tl.params.m;
  const int reps = tl.params.work_reps;
  double acc = it.lhs();
  for (int j = 0; j < m; ++j) {
    const double v = it.read(bi + tl.nbrs[static_cast<std::size_t>(j)]);
    acc += tl.val[static_cast<std::size_t>(j)] * v;
    if (reps > 0) acc = work_spin(acc, reps);
  }
  it.lhs() = acc;
}

/// Optimized sequential execution (the paper's T_seq baseline): original
/// source order, original memory semantics, no synchronization state.
void run_test_loop_seq(const TestLoop& tl, std::span<double> y);

/// Fresh copy of the initial data sized to the loop's value space.
std::vector<double> make_initial_y(const TestLoop& tl);

/// Count the cross-iteration true dependences of the workload (for test
/// assertions: zero for odd L, positive for even L with L/2 <= ... ).
index_t count_true_deps(const TestLoop& tl);

/// Build the dependence graph of the test loop (for doconsider and tests).
core::DepGraph test_loop_deps(const TestLoop& tl);

}  // namespace pdx::gen
