#include "gen/block_operator.hpp"

#include <cmath>
#include <stdexcept>

#include "gen/rng.hpp"

namespace pdx::gen {

sparse::Csr block_seven_point(const BlockOperatorParams& p) {
  if (p.nx < 1 || p.ny < 1 || p.nz < 1 || p.block < 1) {
    throw std::invalid_argument("block_seven_point: bad extents");
  }
  const index_t points = p.nx * p.ny * p.nz;
  const index_t n = points * p.block;
  SplitMix64 rng(p.seed);
  sparse::CsrBuilder builder(n, n);

  auto point_id = [&](index_t x, index_t y, index_t z) {
    return (z * p.ny + y) * p.nx + x;
  };

  // Dense b-by-b coupling block between grid points P (rows) and Q (cols).
  auto add_block = [&](index_t pr, index_t pc, bool diag_block) {
    for (index_t r = 0; r < p.block; ++r) {
      for (index_t c = 0; c < p.block; ++c) {
        const index_t row = pr * p.block + r;
        const index_t col = pc * p.block + c;
        if (diag_block && r == c) {
          // Placeholder; the dominance pass below overwrites diagonals.
          builder.add(row, col, 1.0);
        } else {
          builder.add(row, col, rng.next_double(-0.5, 0.5));
        }
      }
    }
  };

  for (index_t z = 0; z < p.nz; ++z) {
    for (index_t y = 0; y < p.ny; ++y) {
      for (index_t x = 0; x < p.nx; ++x) {
        const index_t pt = point_id(x, y, z);
        add_block(pt, pt, /*diag_block=*/true);
        if (x > 0) add_block(pt, point_id(x - 1, y, z), false);
        if (x + 1 < p.nx) add_block(pt, point_id(x + 1, y, z), false);
        if (y > 0) add_block(pt, point_id(x, y - 1, z), false);
        if (y + 1 < p.ny) add_block(pt, point_id(x, y + 1, z), false);
        if (z > 0) add_block(pt, point_id(x, y, z - 1), false);
        if (z + 1 < p.nz) add_block(pt, point_id(x, y, z + 1), false);
      }
    }
  }

  sparse::Csr a = builder.build();

  // Strict diagonal dominance: a(ii) = sum of |off-diagonal| + 1. Keeps
  // ILU(0) pivots bounded away from zero for any seed.
  for (index_t i = 0; i < a.rows; ++i) {
    double off_sum = 0.0;
    index_t diag_pos = -1;
    for (index_t k = a.row_begin(i); k < a.row_end(i); ++k) {
      if (a.idx[static_cast<std::size_t>(k)] == i) {
        diag_pos = k;
      } else {
        off_sum += std::fabs(a.val[static_cast<std::size_t>(k)]);
      }
    }
    a.val[static_cast<std::size_t>(diag_pos)] = off_sum + 1.0;
  }
  return a;
}

sparse::Csr matrix_spe2(std::uint64_t seed) {
  return block_seven_point({.nx = 6, .ny = 6, .nz = 5, .block = 6, .seed = seed});
}

sparse::Csr matrix_spe5(std::uint64_t seed) {
  return block_seven_point({.nx = 16, .ny = 23, .nz = 3, .block = 3, .seed = seed});
}

}  // namespace pdx::gen
