#include "gen/testloop.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace pdx::gen {

TestLoop make_test_loop(const TestLoopParams& p, std::uint64_t seed) {
  if (p.n < 1 || p.m < 1 || p.l < 1) {
    throw std::invalid_argument("make_test_loop: n, m, l must be positive");
  }
  TestLoop tl;
  tl.params = p;
  // Shift both a and b by `base` so that the smallest read offset
  // (i = 0, j = 0: base + 2 - L) stays non-negative. Shifting a and b
  // together preserves every dependence relation of the paper's setup.
  tl.base = p.l;

  tl.a.resize(static_cast<std::size_t>(p.n));
  tl.b.resize(static_cast<std::size_t>(p.n));
  for (index_t i = 0; i < p.n; ++i) {
    tl.a[static_cast<std::size_t>(i)] = 2 * i + tl.base;
    tl.b[static_cast<std::size_t>(i)] = 2 * i + tl.base;
  }

  tl.nbrs.resize(static_cast<std::size_t>(p.m));
  for (int j = 0; j < p.m; ++j) {
    // Paper is 1-based: nbrs(j) = 2j - L for j = 1..M.
    tl.nbrs[static_cast<std::size_t>(j)] = 2 * (j + 1) - p.l;
  }

  SplitMix64 rng(seed);
  tl.val.resize(static_cast<std::size_t>(p.m));
  for (int j = 0; j < p.m; ++j) {
    // Small coefficients keep the length-N accumulation chains finite.
    tl.val[static_cast<std::size_t>(j)] =
        rng.next_double(-0.25, 0.25) / static_cast<double>(p.m);
  }

  // Largest offset either map can produce.
  const index_t max_write = tl.a[static_cast<std::size_t>(p.n - 1)];
  const index_t max_read =
      tl.b[static_cast<std::size_t>(p.n - 1)] + tl.nbrs[static_cast<std::size_t>(p.m - 1)];
  tl.value_space = std::max(max_write, max_read) + 1;

  tl.y0.resize(static_cast<std::size_t>(tl.value_space));
  for (auto& v : tl.y0) v = rng.next_double(-1.0, 1.0);
  return tl;
}

std::vector<double> make_initial_y(const TestLoop& tl) { return tl.y0; }

void run_test_loop_seq(const TestLoop& tl, std::span<double> y) {
  if (static_cast<index_t>(y.size()) < tl.value_space) {
    throw std::invalid_argument("run_test_loop_seq: y too small");
  }
  core::doacross_reference<double>(
      std::span<const index_t>(tl.a), y,
      [&tl](auto& it) { test_loop_body(tl, it); });
}

core::DepGraph test_loop_deps(const TestLoop& tl) {
  return core::build_true_deps(
      tl.params.n, std::span<const index_t>(tl.a), tl.value_space,
      [&tl](index_t i, const std::function<void(index_t)>& emit) {
        const index_t bi = tl.b[static_cast<std::size_t>(i)];
        for (int j = 0; j < tl.params.m; ++j) {
          emit(bi + tl.nbrs[static_cast<std::size_t>(j)]);
        }
      });
}

index_t count_true_deps(const TestLoop& tl) {
  return test_loop_deps(tl).edges();
}

}  // namespace pdx::gen
