// random_loop.hpp — randomized irregular-loop workloads for property tests.
//
// Generates loops of the general shape the preprocessed doacross targets:
//
//     do i = 1, N
//        y(writer(i)) = y(writer(i)) + sum_k coeff(i,k) * y(read(i,k))
//     end do
//
// with a random injective writer map and random read offsets, so a single
// instance mixes true dependences (short and long distance), intra-
// iteration references, antidependences, and never-written reads — every
// branch of the executor's three-way check. The doacross result must match
// the sequential reference bitwise for any seed; the property suites sweep
// seeds and shapes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/doacross.hpp"
#include "core/doconsider.hpp"
#include "gen/rng.hpp"
#include "runtime/types.hpp"

namespace pdx::gen {

struct RandomLoopParams {
  index_t n = 1000;          ///< iterations
  index_t value_space = 0;   ///< 0 → 2n
  int min_reads = 0;         ///< reads per iteration, uniform in range
  int max_reads = 4;
  /// Probability that a read is drawn from already-written offsets
  /// (biasing toward true dependences); the rest are uniform over the
  /// whole space.
  double dep_bias = 0.5;
};

struct RandomLoop {
  RandomLoopParams params;
  std::vector<index_t> writer;    ///< injective, size n
  std::vector<index_t> read_ptr;  ///< CSR over iterations, size n+1
  std::vector<index_t> read_off;  ///< read offsets
  std::vector<double> coeff;      ///< one per read
  std::vector<double> y0;         ///< initial data, size value_space
  index_t value_space = 0;

  index_t n() const noexcept { return static_cast<index_t>(writer.size()); }
  index_t reads_of(index_t i, index_t k) const noexcept {
    return read_off[static_cast<std::size_t>(read_ptr[static_cast<std::size_t>(i)] + k)];
  }
};

RandomLoop make_random_loop(const RandomLoopParams& p, std::uint64_t seed);

/// The loop body (shared by reference and parallel executors).
template <class It>
inline void random_loop_body(const RandomLoop& rl, It& it) {
  const index_t i = it.index();
  const index_t k0 = rl.read_ptr[static_cast<std::size_t>(i)];
  const index_t k1 = rl.read_ptr[static_cast<std::size_t>(i) + 1];
  double acc = it.lhs();
  for (index_t k = k0; k < k1; ++k) {
    acc += rl.coeff[static_cast<std::size_t>(k)] *
           it.read(rl.read_off[static_cast<std::size_t>(k)]);
  }
  it.lhs() = acc;
}

/// Sequential reference execution on `y` (in source order, source
/// semantics).
void run_random_loop_seq(const RandomLoop& rl, std::span<double> y);

/// True-dependence graph of the instance.
core::DepGraph random_loop_deps(const RandomLoop& rl);

}  // namespace pdx::gen
