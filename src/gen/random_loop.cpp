#include "gen/random_loop.hpp"

#include <stdexcept>

namespace pdx::gen {

RandomLoop make_random_loop(const RandomLoopParams& p, std::uint64_t seed) {
  if (p.n < 1) throw std::invalid_argument("make_random_loop: n must be >= 1");
  if (p.min_reads < 0 || p.max_reads < p.min_reads) {
    throw std::invalid_argument("make_random_loop: bad read counts");
  }
  RandomLoop rl;
  rl.params = p;
  rl.value_space = p.value_space > 0 ? p.value_space : 2 * p.n;
  if (rl.value_space < p.n) {
    throw std::invalid_argument(
        "make_random_loop: value_space must be >= n for an injective writer");
  }

  SplitMix64 rng(seed);
  rl.writer = random_injection(p.n, rl.value_space, rng);

  rl.read_ptr.assign(static_cast<std::size_t>(p.n) + 1, 0);
  const int spread = p.max_reads - p.min_reads + 1;
  for (index_t i = 0; i < p.n; ++i) {
    const index_t reads =
        p.min_reads + static_cast<index_t>(rng.next_below(
                          static_cast<std::uint64_t>(spread)));
    rl.read_ptr[static_cast<std::size_t>(i) + 1] =
        rl.read_ptr[static_cast<std::size_t>(i)] + reads;
  }

  const index_t total = rl.read_ptr[static_cast<std::size_t>(p.n)];
  rl.read_off.resize(static_cast<std::size_t>(total));
  rl.coeff.resize(static_cast<std::size_t>(total));
  for (index_t i = 0; i < p.n; ++i) {
    for (index_t k = rl.read_ptr[static_cast<std::size_t>(i)];
         k < rl.read_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      index_t off;
      if (i > 0 && rng.next_double() < p.dep_bias) {
        // Aim at an offset some earlier iteration writes: guarantees a
        // true dependence (unless it happens to be i itself — excluded by
        // drawing below i).
        off = rl.writer[static_cast<std::size_t>(rng.next_index(i))];
      } else {
        off = rng.next_index(rl.value_space);
      }
      rl.read_off[static_cast<std::size_t>(k)] = off;
      rl.coeff[static_cast<std::size_t>(k)] =
          rng.next_double(-0.5, 0.5) /
          static_cast<double>(p.max_reads > 0 ? p.max_reads : 1);
    }
  }

  rl.y0.resize(static_cast<std::size_t>(rl.value_space));
  for (auto& v : rl.y0) v = rng.next_double(-1.0, 1.0);
  return rl;
}

void run_random_loop_seq(const RandomLoop& rl, std::span<double> y) {
  if (static_cast<index_t>(y.size()) < rl.value_space) {
    throw std::invalid_argument("run_random_loop_seq: y too small");
  }
  core::doacross_reference<double>(
      std::span<const index_t>(rl.writer), y,
      [&rl](auto& it) { random_loop_body(rl, it); });
}

core::DepGraph random_loop_deps(const RandomLoop& rl) {
  return core::build_true_deps(
      rl.n(), std::span<const index_t>(rl.writer), rl.value_space,
      [&rl](index_t i, const std::function<void(index_t)>& emit) {
        for (index_t k = rl.read_ptr[static_cast<std::size_t>(i)];
             k < rl.read_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
          emit(rl.read_off[static_cast<std::size_t>(k)]);
        }
      });
}

}  // namespace pdx::gen
