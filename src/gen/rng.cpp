#include "gen/rng.hpp"

#include <stdexcept>

namespace pdx::gen {

std::vector<index_t> random_injection(index_t n, index_t space,
                                      SplitMix64& rng) {
  if (n > space) {
    throw std::invalid_argument("random_injection: n > space");
  }
  // Partial Fisher–Yates over [0, space): after k swaps the prefix holds a
  // uniform k-subset in uniform order. O(space) memory, O(space + n) time.
  std::vector<index_t> pool(static_cast<std::size_t>(space));
  std::iota(pool.begin(), pool.end(), index_t{0});
  std::vector<index_t> out(static_cast<std::size_t>(n));
  for (index_t k = 0; k < n; ++k) {
    const index_t j = k + rng.next_index(space - k);
    std::swap(pool[static_cast<std::size_t>(k)],
              pool[static_cast<std::size_t>(j)]);
    out[static_cast<std::size_t>(k)] = pool[static_cast<std::size_t>(k)];
  }
  return out;
}

}  // namespace pdx::gen
