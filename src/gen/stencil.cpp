#include "gen/stencil.hpp"

#include <stdexcept>

namespace pdx::gen {

namespace {

void require_positive(index_t v, const char* what) {
  if (v < 1) throw std::invalid_argument(std::string(what) + " must be >= 1");
}

}  // namespace

sparse::Csr five_point(index_t nx, index_t ny) {
  require_positive(nx, "nx");
  require_positive(ny, "ny");
  const index_t n = nx * ny;
  sparse::CsrBuilder b(n, n);
  for (index_t yy = 0; yy < ny; ++yy) {
    for (index_t xx = 0; xx < nx; ++xx) {
      const index_t p = yy * nx + xx;
      b.add(p, p, 4.0);
      if (xx > 0) b.add(p, p - 1, -1.0);
      if (xx + 1 < nx) b.add(p, p + 1, -1.0);
      if (yy > 0) b.add(p, p - nx, -1.0);
      if (yy + 1 < ny) b.add(p, p + nx, -1.0);
    }
  }
  return b.build();
}

sparse::Csr seven_point(index_t nx, index_t ny, index_t nz) {
  require_positive(nx, "nx");
  require_positive(ny, "ny");
  require_positive(nz, "nz");
  const index_t n = nx * ny * nz;
  sparse::CsrBuilder b(n, n);
  for (index_t zz = 0; zz < nz; ++zz) {
    for (index_t yy = 0; yy < ny; ++yy) {
      for (index_t xx = 0; xx < nx; ++xx) {
        const index_t p = (zz * ny + yy) * nx + xx;
        b.add(p, p, 6.0);
        if (xx > 0) b.add(p, p - 1, -1.0);
        if (xx + 1 < nx) b.add(p, p + 1, -1.0);
        if (yy > 0) b.add(p, p - nx, -1.0);
        if (yy + 1 < ny) b.add(p, p + nx, -1.0);
        if (zz > 0) b.add(p, p - nx * ny, -1.0);
        if (zz + 1 < nz) b.add(p, p + nx * ny, -1.0);
      }
    }
  }
  return b.build();
}

sparse::Csr nine_point(index_t nx, index_t ny) {
  require_positive(nx, "nx");
  require_positive(ny, "ny");
  const index_t n = nx * ny;
  sparse::CsrBuilder b(n, n);
  for (index_t yy = 0; yy < ny; ++yy) {
    for (index_t xx = 0; xx < nx; ++xx) {
      const index_t p = yy * nx + xx;
      b.add(p, p, 8.0);
      for (index_t dy = -1; dy <= 1; ++dy) {
        for (index_t dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const index_t x2 = xx + dx, y2 = yy + dy;
          if (x2 < 0 || x2 >= nx || y2 < 0 || y2 >= ny) continue;
          b.add(p, y2 * nx + x2, -1.0);
        }
      }
    }
  }
  return b.build();
}

sparse::Csr matrix_5pt() { return five_point(63, 63); }
sparse::Csr matrix_7pt() { return seven_point(20, 20, 20); }
sparse::Csr matrix_9pt() { return nine_point(63, 63); }

}  // namespace pdx::gen
