// block_operator.hpp — block seven-point reservoir-simulation operators.
//
// The paper's SPE2 and SPE5 triangular systems come from proprietary
// reservoir simulations; the appendix specifies their structure exactly:
//
//   SPE2 — "thermal simulation of a steam injection process. The grid is
//          6x6x5 with 6 unknowns per grid point → 1080 equations. The
//          matrix is a block seven point operator with 6x6 blocks."
//   SPE5 — "fully-implicit black oil model ... block seven point operator
//          on a 16x23x3 grid with 3x3 blocks → 3312 equations."
//
// We reproduce that structure with deterministic pseudo-random block
// values made strictly diagonally dominant (so ILU(0) exists and is well
// behaved). The *dependence DAG* of the resulting triangular factors — the
// thing the experiment measures — is fixed by the block structure, which
// is exact; only the numeric values are synthetic. See DESIGN.md §2.
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

namespace pdx::gen {

struct BlockOperatorParams {
  index_t nx = 1, ny = 1, nz = 1;  ///< grid extents
  index_t block = 1;               ///< unknowns per grid point
  std::uint64_t seed = 42;         ///< value generator seed
};

/// Build a block seven-point operator: grid points couple to their six
/// axis neighbours and themselves with dense block-by-block stencils.
sparse::Csr block_seven_point(const BlockOperatorParams& p);

/// The appendix instances (deterministic default seeds).
sparse::Csr matrix_spe2(std::uint64_t seed = 1990);  ///< 6x6x5, 6x6 blocks, 1080 eqs
sparse::Csr matrix_spe5(std::uint64_t seed = 1990);  ///< 16x23x3, 3x3 blocks, 3312 eqs

}  // namespace pdx::gen
