// stencil.hpp — central-difference discretizations on regular grids.
//
// The scalar test matrices of the paper's appendix:
//
//   5-PT — five point central difference on a 63 x 63 grid (3969 eqs)
//   7-PT — seven point central difference on 20 x 20 x 20 (8000 eqs)
//   9-PT — nine point box scheme on a 63 x 63 grid (3969 eqs)
//
// All are standard Poisson-type operators: positive diagonal, -1 couplings,
// weakly diagonally dominant, symmetric — ILU(0)-friendly and SPD, so the
// same matrices also exercise the CG solver in the examples.
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

namespace pdx::gen {

/// 2-D five point operator on an nx-by-ny grid: 4 on the diagonal,
/// -1 to the N/S/E/W neighbours. Row-major grid numbering.
sparse::Csr five_point(index_t nx, index_t ny);

/// 3-D seven point operator on nx-by-ny-by-nz: 6 diagonal, -1 to the six
/// axis neighbours.
sparse::Csr seven_point(index_t nx, index_t ny, index_t nz);

/// 2-D nine point box operator on nx-by-ny: 8 diagonal, -1 to all eight
/// surrounding points (the box scheme of the appendix).
sparse::Csr nine_point(index_t nx, index_t ny);

/// The appendix's exact scalar instances.
sparse::Csr matrix_5pt();  ///< 63 x 63 grid -> 3969 equations
sparse::Csr matrix_7pt();  ///< 20 x 20 x 20 grid -> 8000 equations
sparse::Csr matrix_9pt();  ///< 63 x 63 grid -> 3969 equations

}  // namespace pdx::gen
