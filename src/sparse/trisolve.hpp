// trisolve.hpp — sequential sparse triangular solves (paper Fig. 7).
//
//     do i = 1, n
//        y(i) = rhs(i)
//        do j = low(i), high(i)
//           y(i) = y(i) - a(j) * y(column(j))
//        end do
//     end do
//
// "The data dependencies between the elements of y are determined by the
//  values assigned to the data structure column during program execution.
//  These dependencies inhibit the parallelization of the outer loop."
//
// Conventions: the matrix passed to these routines contains only the
// *strictly* triangular part plus an explicit diagonal entry per row
// (ILU(0) factors are emitted in that form by sparse/ilu0.hpp; the L
// factor's diagonal is all ones, matching the paper's solves, where the
// division is absent).
#pragma once

#include <span>
#include <stdexcept>

#include "sparse/csr.hpp"

namespace pdx::sparse {

/// Machine-emulation hook: `reps` extra *dependent* flops folded into the
/// accumulator after each off-diagonal term. A 13 MHz Multimax spent
/// roughly 10^4 times more cycles per matrix entry than a modern core, so
/// the paper's work/synchronization ratio is unreachable at native speed;
/// running every executor (sequential and parallel) with the same
/// `work_reps` restores that ratio without touching any dependence, and
/// results remain bitwise comparable across executors because the
/// arithmetic is identical everywhere. work_reps = 0 (the default) is a
/// predictable dead branch.
inline double machine_emulation_work(double x, int reps) noexcept {
  double acc = x;
  for (int r = 0; r < reps; ++r) {
    acc = acc * 0.999999999 + 1e-12;
  }
  return acc;
}

/// Solve L y = rhs where L is lower triangular with an explicit diagonal
/// entry in every row (last entry of the sorted row). The optimized
/// sequential baseline of Table 1.
inline void trisolve_lower_seq(const Csr& l, std::span<const double> rhs,
                               std::span<double> y, int work_reps = 0) {
  if (l.rows != l.cols) throw std::invalid_argument("trisolve: not square");
  if (static_cast<index_t>(rhs.size()) < l.rows ||
      static_cast<index_t>(y.size()) < l.rows) {
    throw std::invalid_argument("trisolve: vector size mismatch");
  }
  for (index_t i = 0; i < l.rows; ++i) {
    double acc = rhs[static_cast<std::size_t>(i)];
    const index_t k_end = l.row_end(i) - 1;  // diagonal is last (sorted row)
    for (index_t k = l.row_begin(i); k < k_end; ++k) {
      acc -= l.val[static_cast<std::size_t>(k)] *
             y[static_cast<std::size_t>(l.idx[static_cast<std::size_t>(k)])];
      if (work_reps > 0) acc = machine_emulation_work(acc, work_reps);
    }
    y[static_cast<std::size_t>(i)] = acc / l.val[static_cast<std::size_t>(k_end)];
  }
}

/// Multi-right-hand-side lower solve: L Y = RHS for `nrhs` vectors at
/// once. Row-major layout: element (i, r) lives at i*nrhs + r. The
/// dependence DAG is that of the single solve; per-row work scales by
/// nrhs — this is how Krylov methods with multiple vectors (and our
/// Table 1 harness, emulating the 1990 work/synchronization ratio) run.
inline void trisolve_lower_seq_multi(const Csr& l,
                                     std::span<const double> rhs,
                                     std::span<double> y, index_t nrhs) {
  if (l.rows != l.cols) throw std::invalid_argument("trisolve: not square");
  if (nrhs < 1) throw std::invalid_argument("trisolve: nrhs must be >= 1");
  if (static_cast<index_t>(rhs.size()) < l.rows * nrhs ||
      static_cast<index_t>(y.size()) < l.rows * nrhs) {
    throw std::invalid_argument("trisolve: vector size mismatch");
  }
  for (index_t i = 0; i < l.rows; ++i) {
    double* yi = y.data() + i * nrhs;
    const double* bi = rhs.data() + i * nrhs;
    for (index_t r = 0; r < nrhs; ++r) yi[r] = bi[r];
    const index_t k_end = l.row_end(i) - 1;
    for (index_t k = l.row_begin(i); k < k_end; ++k) {
      const double a = l.val[static_cast<std::size_t>(k)];
      const double* yc =
          y.data() + l.idx[static_cast<std::size_t>(k)] * nrhs;
      for (index_t r = 0; r < nrhs; ++r) yi[r] -= a * yc[r];
    }
    // Division (not reciprocal-multiply) keeps each column bitwise equal
    // to the corresponding single-RHS solve.
    const double d = l.val[static_cast<std::size_t>(k_end)];
    for (index_t r = 0; r < nrhs; ++r) yi[r] /= d;
  }
}

/// Solve U y = rhs where U is upper triangular with the diagonal stored as
/// the *first* entry of each sorted row.
inline void trisolve_upper_seq(const Csr& u, std::span<const double> rhs,
                               std::span<double> y) {
  if (u.rows != u.cols) throw std::invalid_argument("trisolve: not square");
  if (static_cast<index_t>(rhs.size()) < u.rows ||
      static_cast<index_t>(y.size()) < u.rows) {
    throw std::invalid_argument("trisolve: vector size mismatch");
  }
  for (index_t i = u.rows - 1; i >= 0; --i) {
    double acc = rhs[static_cast<std::size_t>(i)];
    const index_t k_diag = u.row_begin(i);  // diagonal first in sorted row
    for (index_t k = k_diag + 1; k < u.row_end(i); ++k) {
      acc -= u.val[static_cast<std::size_t>(k)] *
             y[static_cast<std::size_t>(u.idx[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(i)] = acc / u.val[static_cast<std::size_t>(k_diag)];
  }
}

}  // namespace pdx::sparse
