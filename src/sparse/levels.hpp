// levels.hpp — wavefront (level-set) analysis of triangular solves.
//
// The dependence DAG of the Fig. 7 loop is given by the matrix structure:
// row i depends on every row column(j) < i it references. The doconsider
// transformation (reference [4]) reorders iterations by dependence level;
// this header derives those levels straight from a triangular CSR matrix
// and packages the result as a core::Reordering.
#pragma once

#include "core/advisor.hpp"
#include "core/doconsider.hpp"
#include "sparse/csr.hpp"

namespace pdx::sparse {

/// Dependence levels of a lower-triangular solve: level(i) = 1 + max over
/// strictly-lower entries' levels, 0 if row i only touches the diagonal.
std::vector<index_t> lower_solve_levels(const Csr& l);

/// Full doconsider reordering for a lower-triangular solve.
core::Reordering lower_solve_reordering(const Csr& l);

/// Dependence levels of an upper-triangular (backward) solve: row i
/// depends on strictly-upper entries' rows, so levels grow from the last
/// row toward the first.
std::vector<index_t> upper_solve_levels(const Csr& u);

/// Doconsider reordering for an upper-triangular solve. The produced
/// `order` lists rows level by level (within a level: descending row
/// index, the backward solve's natural order), and is a valid schedule
/// for trisolve_upper_doacross.
core::Reordering upper_solve_reordering(const Csr& u);

/// Per-workload dependence summary used in EXPERIMENTS.md tables.
struct DagProfile {
  index_t n = 0;
  index_t edges = 0;          ///< strictly-lower stored entries
  index_t critical_path = 0;  ///< number of wavefronts
  double avg_parallelism = 0; ///< n / critical_path
  index_t max_level_size = 0;
};

DagProfile profile_lower_solve(const Csr& l);

/// Inspector-measured structure of a lower-triangular solve — the input
/// of the strategy advisor (core::advise_schedule's TrisolveStructure
/// overload). The reordering variant reuses an already-built doconsider
/// analysis so the plan-build path measures for free.
core::TrisolveStructure measure_lower_solve(const Csr& l);
core::TrisolveStructure measure_lower_solve(const Csr& l,
                                            const core::Reordering& r);

/// Per-thread row sequences of a bulk-synchronous wavefront solve:
/// element t lists, level by level, the static-block slice of each
/// wavefront that thread t of `nthreads` executes — exactly the order
/// the level-barrier kernel walks. Used to stream plan-owned packed
/// factor slabs in execution order (DESIGN.md §10).
std::vector<std::vector<index_t>> level_schedule_sequences(
    const core::Reordering& ord, unsigned nthreads);

}  // namespace pdx::sparse
