#include "sparse/rcm.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace pdx::sparse {

std::vector<index_t> rcm_order(const Csr& a) {
  if (a.rows != a.cols) throw std::invalid_argument("rcm_order: not square");
  const index_t n = a.rows;

  std::vector<index_t> degree(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) degree[static_cast<std::size_t>(i)] = a.row_nnz(i);

  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<index_t> nbrs;

  for (;;) {
    // Seed the next component with its minimum-degree unvisited vertex —
    // a cheap stand-in for a pseudo-peripheral search that works well on
    // mesh problems.
    index_t seed = -1;
    for (index_t i = 0; i < n; ++i) {
      if (!visited[static_cast<std::size_t>(i)] &&
          (seed < 0 || degree[static_cast<std::size_t>(i)] <
                           degree[static_cast<std::size_t>(seed)])) {
        seed = i;
      }
    }
    if (seed < 0) break;

    // BFS, expanding each vertex's unvisited neighbours in increasing
    // degree order (Cuthill–McKee).
    std::queue<index_t> q;
    visited[static_cast<std::size_t>(seed)] = true;
    q.push(seed);
    while (!q.empty()) {
      const index_t v = q.front();
      q.pop();
      order.push_back(v);
      nbrs.clear();
      for (index_t c : a.row_cols(v)) {
        if (c != v && !visited[static_cast<std::size_t>(c)]) {
          nbrs.push_back(c);
          visited[static_cast<std::size_t>(c)] = true;
        }
      }
      std::sort(nbrs.begin(), nbrs.end(), [&](index_t x, index_t y) {
        return degree[static_cast<std::size_t>(x)] !=
                       degree[static_cast<std::size_t>(y)]
                   ? degree[static_cast<std::size_t>(x)] <
                         degree[static_cast<std::size_t>(y)]
                   : x < y;
      });
      for (index_t c : nbrs) q.push(c);
    }
  }

  std::reverse(order.begin(), order.end());  // the "reverse" in RCM
  return order;
}

index_t bandwidth(const Csr& a) {
  index_t b = 0;
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t c : a.row_cols(i)) {
      b = std::max(b, i >= c ? i - c : c - i);
    }
  }
  return b;
}

}  // namespace pdx::sparse
