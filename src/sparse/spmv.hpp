// spmv.hpp — sparse matrix–vector products.
//
// Used by the Krylov solvers (S8) and as a doall-style contrast workload in
// the benches: SpMV has no cross-iteration dependences, so it parallelizes
// with a plain `parallel_for` — exactly the kind of loop the preprocessed
// doacross is *not* needed for.
#pragma once

#include <span>
#include <stdexcept>

#include "runtime/thread_pool.hpp"
#include "sparse/csr.hpp"

namespace pdx::sparse {

/// y = A * x, sequential.
inline void spmv(const Csr& a, std::span<const double> x,
                 std::span<double> y) {
  if (static_cast<index_t>(x.size()) < a.cols ||
      static_cast<index_t>(y.size()) < a.rows) {
    throw std::invalid_argument("spmv: vector size mismatch");
  }
  for (index_t r = 0; r < a.rows; ++r) {
    double acc = 0.0;
    for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      acc += a.val[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(a.idx[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
}

/// y = A * x across `nthreads` pool members (row-parallel doall).
inline void spmv_parallel(rt::ThreadPool& pool, const Csr& a,
                          std::span<const double> x, std::span<double> y,
                          unsigned nthreads = 0) {
  if (static_cast<index_t>(x.size()) < a.cols ||
      static_cast<index_t>(y.size()) < a.rows) {
    throw std::invalid_argument("spmv_parallel: vector size mismatch");
  }
  const double* xp = x.data();
  double* yp = y.data();
  pool.parallel_for(a.rows, nthreads, [&a, xp, yp](index_t r) {
    double acc = 0.0;
    for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      acc += a.val[static_cast<std::size_t>(k)] *
             xp[a.idx[static_cast<std::size_t>(k)]];
    }
    yp[r] = acc;
  });
}

}  // namespace pdx::sparse
