// spmv.hpp — sparse matrix–vector products.
//
// Used by the Krylov solvers (S8) and as a doall-style contrast workload in
// the benches: SpMV has no cross-iteration dependences, so it parallelizes
// with a plain `parallel_for` — exactly the kind of loop the preprocessed
// doacross is *not* needed for.
#pragma once

#include <algorithm>
#include <span>
#include <stdexcept>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "sparse/csr.hpp"

namespace pdx::sparse {

/// y = A * x, sequential.
inline void spmv(const Csr& a, std::span<const double> x,
                 std::span<double> y) {
  if (static_cast<index_t>(x.size()) < a.cols ||
      static_cast<index_t>(y.size()) < a.rows) {
    throw std::invalid_argument("spmv: vector size mismatch");
  }
  for (index_t r = 0; r < a.rows; ++r) {
    double acc = 0.0;
    for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      acc += a.val[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(a.idx[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
}

/// Columns per register block in the batched products below; bounds the
/// per-row accumulator footprint while letting one pass over a row's
/// indices/values serve up to this many vectors.
inline constexpr index_t kSpmvBatchBlock = 8;

namespace detail {

/// One row of the batched product: y_cols[c][r] = (A x_cols[c])[r] for all
/// k columns. Column-blocked so A's row entries are read once per block;
/// each column's accumulation order matches spmv exactly (bitwise equal).
inline void spmv_batch_row(const Csr& a, const double* const* x_cols,
                           double* const* y_cols, index_t k,
                           index_t r) noexcept {
  // Row bounds and raw entry pointers are invariant across the column
  // blocks; hoisting them keeps the inner loops free of loads through
  // the vector headers (which alias-analysis cannot prove unchanged
  // across the stores into y_cols).
  const index_t rb = a.row_begin(r);
  const index_t re = a.row_end(r);
  const double* const val = a.val.data();
  const index_t* const idx = a.idx.data();
  for (index_t c0 = 0; c0 < k; c0 += kSpmvBatchBlock) {
    const index_t cb = std::min(kSpmvBatchBlock, k - c0);
    const double* const* xb = x_cols + c0;
    double acc[kSpmvBatchBlock] = {};
    for (index_t kk = rb; kk < re; ++kk) {
      const double v = val[static_cast<std::size_t>(kk)];
      const index_t col = idx[static_cast<std::size_t>(kk)];
      for (index_t j = 0; j < cb; ++j) acc[j] += v * xb[j][col];
    }
    for (index_t j = 0; j < cb; ++j) y_cols[c0 + j][r] = acc[j];
  }
}

/// Validated column-pointer tables for the contiguous column-major
/// convenience overloads (column c of x at data() + c*a.cols, of y at
/// data() + c*a.rows).
struct BatchCols {
  std::vector<const double*> x;
  std::vector<double*> y;
};

inline BatchCols make_batch_cols(const Csr& a, std::span<const double> x,
                                 std::span<double> y, index_t k) {
  if (k < 1) throw std::invalid_argument("spmv_batch: k must be >= 1");
  if (static_cast<index_t>(x.size()) < a.cols * k ||
      static_cast<index_t>(y.size()) < a.rows * k) {
    throw std::invalid_argument("spmv_batch: vector size mismatch");
  }
  BatchCols cols;
  cols.x.resize(static_cast<std::size_t>(k));
  cols.y.resize(static_cast<std::size_t>(k));
  for (index_t c = 0; c < k; ++c) {
    cols.x[static_cast<std::size_t>(c)] = x.data() + c * a.cols;
    cols.y[static_cast<std::size_t>(c)] = y.data() + c * a.rows;
  }
  return cols;
}

}  // namespace detail

/// Batched product: y_cols[c] = A * x_cols[c] for k column vectors,
/// sequential. Each x column must hold >= a.cols elements, each y column
/// >= a.rows; columns must not alias.
inline void spmv_batch(const Csr& a, const double* const* x_cols,
                       double* const* y_cols, index_t k) {
  if (k < 1) throw std::invalid_argument("spmv_batch: k must be >= 1");
  for (index_t r = 0; r < a.rows; ++r) {
    detail::spmv_batch_row(a, x_cols, y_cols, k, r);
  }
}

/// Column-major contiguous convenience of spmv_batch.
inline void spmv_batch(const Csr& a, std::span<const double> x,
                       std::span<double> y, index_t k) {
  const detail::BatchCols cols = detail::make_batch_cols(a, x, y, k);
  spmv_batch(a, cols.x.data(), cols.y.data(), k);
}

/// Batched row-parallel product: all k columns in ONE pool dispatch — the
/// doall companion of TrisolvePlan::solve_batch for multi-vector serving.
inline void spmv_batch_parallel(rt::ThreadPool& pool, const Csr& a,
                                const double* const* x_cols,
                                double* const* y_cols, index_t k,
                                unsigned nthreads = 0) {
  if (k < 1) throw std::invalid_argument("spmv_batch: k must be >= 1");
  pool.parallel_for(a.rows, nthreads, [&a, x_cols, y_cols, k](index_t r) {
    detail::spmv_batch_row(a, x_cols, y_cols, k, r);
  });
}

/// Column-major contiguous convenience of spmv_batch_parallel.
inline void spmv_batch_parallel(rt::ThreadPool& pool, const Csr& a,
                                std::span<const double> x,
                                std::span<double> y, index_t k,
                                unsigned nthreads = 0) {
  const detail::BatchCols cols = detail::make_batch_cols(a, x, y, k);
  spmv_batch_parallel(pool, a, cols.x.data(), cols.y.data(), k, nthreads);
}

/// y = A * x across `nthreads` pool members (row-parallel doall).
inline void spmv_parallel(rt::ThreadPool& pool, const Csr& a,
                          std::span<const double> x, std::span<double> y,
                          unsigned nthreads = 0) {
  if (static_cast<index_t>(x.size()) < a.cols ||
      static_cast<index_t>(y.size()) < a.rows) {
    throw std::invalid_argument("spmv_parallel: vector size mismatch");
  }
  const double* xp = x.data();
  double* yp = y.data();
  pool.parallel_for(a.rows, nthreads, [&a, xp, yp](index_t r) {
    double acc = 0.0;
    for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      acc += a.val[static_cast<std::size_t>(k)] *
             xp[a.idx[static_cast<std::size_t>(k)]];
    }
    yp[r] = acc;
  });
}

}  // namespace pdx::sparse
