// dense.hpp — small dense matrices for reference checks.
//
// The unit tests validate sparse kernels (SpMV, triangular solves, ILU(0))
// against straightforward dense arithmetic on small problems. Row-major,
// double only; nothing here is performance-relevant.
#pragma once

#include <span>
#include <vector>

#include "runtime/types.hpp"
#include "sparse/csr.hpp"

namespace pdx::sparse {

class Dense {
 public:
  Dense() = default;
  Dense(index_t rows, index_t cols)
      : rows_(rows), cols_(cols),
        a_(static_cast<std::size_t>(rows * cols), 0.0) {}

  static Dense from_csr(const Csr& m);

  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }

  double& operator()(index_t r, index_t c) noexcept {
    return a_[static_cast<std::size_t>(r * cols_ + c)];
  }
  double operator()(index_t r, index_t c) const noexcept {
    return a_[static_cast<std::size_t>(r * cols_ + c)];
  }

  std::vector<double> matvec(std::span<const double> x) const;
  Dense matmul(const Dense& b) const;

  /// Forward substitution for a lower-triangular dense matrix.
  std::vector<double> lower_solve(std::span<const double> rhs) const;
  /// Backward substitution for an upper-triangular dense matrix.
  std::vector<double> upper_solve(std::span<const double> rhs) const;

  /// max |a - b| over all entries (infinity norm of the difference).
  static double max_abs_diff(const Dense& a, const Dense& b);

 private:
  index_t rows_ = 0, cols_ = 0;
  std::vector<double> a_;
};

}  // namespace pdx::sparse
