// rcm.hpp — reverse Cuthill–McKee ordering.
//
// Bandwidth-reducing symmetric permutation. Relevant to this library
// because the dependence *distances* of a triangular solve are exactly the
// bandwidth structure of the factor: RCM shortens them (pulling rows'
// dependences close behind, favouring the pipelined source-order
// executor), while doconsider sorts by level regardless of distance. The
// ordering ablation in the triangular-solve benches contrasts the two.
#pragma once

#include <vector>

#include "sparse/csr.hpp"

namespace pdx::sparse {

/// Compute the RCM permutation of a structurally symmetric matrix.
/// Returns `perm` with perm[k] = old index of the row placed k-th (the
/// convention of permute_symmetric). Disconnected components are ordered
/// one after another, each seeded from its minimum-degree vertex.
std::vector<index_t> rcm_order(const Csr& a);

/// Structural bandwidth: max |i - j| over stored entries.
index_t bandwidth(const Csr& a);

}  // namespace pdx::sparse
