// par_trisolve.hpp — parallel sparse triangular solves (paper §3.2).
//
// Three executors for `L y = rhs`:
//
//   trisolve_doacross       — the preprocessed doacross applied to Fig. 7.
//     The left-hand side subscript is the identity (y(i) written by
//     iteration i), the §2.3 linear-subscript case with c = 1, d = 0: no
//     iter table is needed and the "inspector" is free. Every reference
//     y(column(j)) with column(j) < i is a true dependence resolved by a
//     busy wait on the producer's ready flag; the committed value is read
//     straight from y (each offset is written exactly once, so no ynew
//     shadow or copy-back is needed — writes are published by the flag).
//
//   trisolve_doacross (with order) — same executor, iterations issued in a
//     doconsider order (sparse/levels.hpp). Dependencies are unchanged;
//     waiting shrinks because producers sit earlier in the schedule.
//
//   trisolve_levelsched     — classic level-scheduled execution: one
//     barrier per wavefront, no flags at all. The ablation baseline of
//     bench E7.
//
// All three produce bitwise-identical results to trisolve_lower_seq.
#pragma once

#include <atomic>
#include <chrono>
#include <concepts>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/doacross_stats.hpp"
#include "core/doconsider.hpp"
#include "core/ready_table.hpp"
#include "runtime/aligned.hpp"
#include "runtime/barrier.hpp"
#include "runtime/failure.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/csr.hpp"
#include "sparse/trisolve.hpp"

namespace pdx::sparse {

struct TrisolveOptions {
  unsigned nthreads = 0;
  rt::Schedule schedule = rt::Schedule::dynamic();
  /// Optional doconsider execution order (order[k] = row solved at
  /// position k); must be a valid schedule for L's dependence DAG.
  const index_t* order = nullptr;
  /// Machine-emulation knob (see sparse/trisolve.hpp): extra dependent
  /// flops per off-diagonal term, identical to the sequential baseline's.
  int work_reps = 0;
  /// Stall watchdog budget in spin rounds per flag/barrier wait; 0
  /// (default) disables the watchdog, keeping the hot path of the bitwise
  /// and perf gates untouched. Past the budget the wait raises StallError.
  std::uint64_t stall_budget = 0;
  /// Test-only fault source (see rt::FaultInjector); nullptr = disarmed.
  rt::FaultInjector* injector = nullptr;
};

/// Anything that provides the ready-flag protocol of core/ready_table.hpp.
template <class R>
concept ReadyTableLike = requires(R r, const R cr, index_t i) {
  r.ensure_size(i);
  r.begin_epoch();
  r.mark_done(i);
  { cr.wait_done(i) } -> std::convertible_to<std::uint64_t>;
  r.clear(i);
};

/// Preprocessed-doacross lower solve. L must be lower triangular, sorted,
/// diagonal stored last in each row.
template <ReadyTableLike Ready = core::DenseReadyTable>
core::DoacrossStats trisolve_doacross(rt::ThreadPool& pool, const Csr& l,
                                      std::span<const double> rhs,
                                      std::span<double> y,
                                      Ready& ready,
                                      const TrisolveOptions& opts = {}) {
  if (l.rows != l.cols) throw std::invalid_argument("trisolve: not square");
  if (static_cast<index_t>(rhs.size()) < l.rows ||
      static_cast<index_t>(y.size()) < l.rows) {
    throw std::invalid_argument("trisolve: vector size mismatch");
  }
  const index_t n = l.rows;
  core::DoacrossStats stats;
  if (n == 0) return stats;

  const unsigned nth = pool.clamp_threads(opts.nthreads);
  ready.ensure_size(n);
  ready.begin_epoch();

  rt::Barrier barrier(nth);
  rt::FailureLatch latch;
  barrier.watch(&latch, opts.stall_budget);
  const rt::WaitGuard guard{&latch, opts.stall_budget, "doacross-flag"};
  std::atomic<index_t> cursor{0};
  std::vector<rt::Padded<std::uint64_t>> episodes(nth), rounds(nth);

  using clock = std::chrono::steady_clock;
  clock::time_point t0, t1, t2;

  const index_t* order = opts.order;
  const double* rhs_p = rhs.data();
  double* yp = y.data();

  const auto body = [&](unsigned tid, unsigned nthreads) {
    barrier.arrive_and_wait();  // rendezvous: exclude pool wake-up
    if (tid == 0) t0 = clock::now();
    std::uint64_t my_episodes = 0, my_rounds = 0;

    const int work_reps = opts.work_reps;
    auto solve_row = [&](index_t k) {
      const index_t i = order ? order[k] : k;
      if (opts.injector) opts.injector->on_row(tid, i, &latch);
      double acc = rhs_p[i];
      const index_t k_end = l.row_end(i) - 1;  // diagonal last
      for (index_t kk = l.row_begin(i); kk < k_end; ++kk) {
        const index_t c = l.idx[static_cast<std::size_t>(kk)];
        const std::uint64_t r = core::wait_done_guarded(ready, c, i, guard);
        if (r != 0) {
          ++my_episodes;
          my_rounds += r;
        }
        acc -= l.val[static_cast<std::size_t>(kk)] * yp[c];
        if (work_reps > 0) acc = machine_emulation_work(acc, work_reps);
      }
      yp[i] = acc / l.val[static_cast<std::size_t>(k_end)];
      ready.mark_done(i);  // release-publishes the y store
    };
    rt::schedule_run(opts.schedule, n, tid, nthreads, &cursor, solve_row);
    episodes[tid].value = my_episodes;
    rounds[tid].value = my_rounds;
    barrier.arrive_and_wait();
    if (tid == 0) t1 = clock::now();

    // Postprocessing (paper Fig. 3): reset the flags for reuse. An
    // epoch-reset table already invalidated everything in begin_epoch(),
    // so the sweep and the barrier fencing it are elided at compile time.
    if constexpr (!core::kEpochResetV<Ready>) {
      const rt::IterRange post = rt::static_block_range(n, tid, nthreads);
      for (index_t i = post.begin; i < post.end; ++i) ready.clear(i);
      barrier.arrive_and_wait();
    }
    if (tid == 0) t2 = clock::now();
  };
  // Fault containment: a worker that throws records its exception in the
  // latch; every wait loop above polls the latch and unwinds via
  // WorkerAbort, so peers drain and join instead of spinning forever. The
  // first recorded fault is rethrown after the join.
  pool.parallel_region(nth, [&](unsigned tid, unsigned nthreads) {
    try {
      body(tid, nthreads);
    } catch (rt::WorkerAbort&) {
    } catch (...) {
      latch.raise(std::current_exception());
    }
  });
  if (latch.raised()) latch.rethrow_and_reset();

  stats.execute_seconds = std::chrono::duration<double>(t1 - t0).count();
  stats.post_seconds = std::chrono::duration<double>(t2 - t1).count();
  for (unsigned t = 0; t < nth; ++t) {
    stats.wait_episodes += episodes[t].value;
    stats.wait_rounds += rounds[t].value;
  }
  return stats;
}

/// Convenience overload owning a throwaway flag table.
inline core::DoacrossStats trisolve_doacross(rt::ThreadPool& pool,
                                             const Csr& l,
                                             std::span<const double> rhs,
                                             std::span<double> y,
                                             const TrisolveOptions& opts = {}) {
  core::DenseReadyTable ready(l.rows);
  return trisolve_doacross(pool, l, rhs, y, ready, opts);
}

/// Multi-right-hand-side preprocessed-doacross lower solve (row-major
/// layout as in trisolve_lower_seq_multi). One ready flag per row guards
/// all nrhs values of that row; per-row work scales by nrhs while the
/// synchronization cost stays fixed — the work/overhead knob used by the
/// Table 1 harness. Bitwise equal to trisolve_lower_seq_multi.
template <ReadyTableLike Ready = core::DenseReadyTable>
core::DoacrossStats trisolve_doacross_multi(rt::ThreadPool& pool,
                                            const Csr& l,
                                            std::span<const double> rhs,
                                            std::span<double> y, index_t nrhs,
                                            Ready& ready,
                                            const TrisolveOptions& opts = {}) {
  if (l.rows != l.cols) throw std::invalid_argument("trisolve: not square");
  if (nrhs < 1) throw std::invalid_argument("trisolve: nrhs must be >= 1");
  if (static_cast<index_t>(rhs.size()) < l.rows * nrhs ||
      static_cast<index_t>(y.size()) < l.rows * nrhs) {
    throw std::invalid_argument("trisolve: vector size mismatch");
  }
  const index_t n = l.rows;
  core::DoacrossStats stats;
  if (n == 0) return stats;

  const unsigned nth = pool.clamp_threads(opts.nthreads);
  ready.ensure_size(n);
  ready.begin_epoch();

  rt::Barrier barrier(nth);
  rt::FailureLatch latch;
  barrier.watch(&latch, opts.stall_budget);
  const rt::WaitGuard guard{&latch, opts.stall_budget, "doacross-flag"};
  std::atomic<index_t> cursor{0};
  std::vector<rt::Padded<std::uint64_t>> episodes(nth), rounds(nth);

  using clock = std::chrono::steady_clock;
  clock::time_point t0, t1, t2;

  const index_t* order = opts.order;
  const double* rhs_p = rhs.data();
  double* yp = y.data();

  const auto body = [&](unsigned tid, unsigned nthreads) {
    barrier.arrive_and_wait();  // rendezvous: exclude pool wake-up
    if (tid == 0) t0 = clock::now();
    std::uint64_t my_episodes = 0, my_rounds = 0;

    auto solve_row = [&](index_t k) {
      const index_t i = order ? order[k] : k;
      if (opts.injector) opts.injector->on_row(tid, i, &latch);
      double* yi = yp + i * nrhs;
      const double* bi = rhs_p + i * nrhs;
      for (index_t r = 0; r < nrhs; ++r) yi[r] = bi[r];
      const index_t k_end = l.row_end(i) - 1;
      for (index_t kk = l.row_begin(i); kk < k_end; ++kk) {
        const index_t c = l.idx[static_cast<std::size_t>(kk)];
        const std::uint64_t w = core::wait_done_guarded(ready, c, i, guard);
        if (w != 0) {
          ++my_episodes;
          my_rounds += w;
        }
        const double a = l.val[static_cast<std::size_t>(kk)];
        const double* yc = yp + c * nrhs;
        for (index_t r = 0; r < nrhs; ++r) yi[r] -= a * yc[r];
      }
      const double d = l.val[static_cast<std::size_t>(k_end)];
      for (index_t r = 0; r < nrhs; ++r) yi[r] /= d;
      ready.mark_done(i);
    };
    rt::schedule_run(opts.schedule, n, tid, nthreads, &cursor, solve_row);
    episodes[tid].value = my_episodes;
    rounds[tid].value = my_rounds;
    barrier.arrive_and_wait();
    if (tid == 0) t1 = clock::now();

    // Postprocessing flag sweep — dead (and elided) for epoch-reset tables.
    if constexpr (!core::kEpochResetV<Ready>) {
      const rt::IterRange post = rt::static_block_range(n, tid, nthreads);
      for (index_t i = post.begin; i < post.end; ++i) ready.clear(i);
      barrier.arrive_and_wait();
    }
    if (tid == 0) t2 = clock::now();
  };
  // Fault containment: a worker that throws records its exception in the
  // latch; every wait loop above polls the latch and unwinds via
  // WorkerAbort, so peers drain and join instead of spinning forever. The
  // first recorded fault is rethrown after the join.
  pool.parallel_region(nth, [&](unsigned tid, unsigned nthreads) {
    try {
      body(tid, nthreads);
    } catch (rt::WorkerAbort&) {
    } catch (...) {
      latch.raise(std::current_exception());
    }
  });
  if (latch.raised()) latch.rethrow_and_reset();

  stats.execute_seconds = std::chrono::duration<double>(t1 - t0).count();
  stats.post_seconds = std::chrono::duration<double>(t2 - t1).count();
  for (unsigned t = 0; t < nth; ++t) {
    stats.wait_episodes += episodes[t].value;
    stats.wait_rounds += rounds[t].value;
  }
  return stats;
}

/// Multi-right-hand-side preprocessed-doacross *upper* (backward) solve,
/// completing the multi-RHS API pair: row-major layout as in
/// trisolve_doacross_multi, one ready flag per row guarding all nrhs
/// values. U must be upper triangular, sorted, diagonal first in each
/// row. Each column is bitwise equal to trisolve_upper_seq on it.
template <ReadyTableLike Ready = core::DenseReadyTable>
core::DoacrossStats trisolve_upper_doacross_multi(
    rt::ThreadPool& pool, const Csr& u, std::span<const double> rhs,
    std::span<double> y, index_t nrhs, Ready& ready,
    const TrisolveOptions& opts = {}) {
  if (u.rows != u.cols) throw std::invalid_argument("trisolve: not square");
  if (nrhs < 1) throw std::invalid_argument("trisolve: nrhs must be >= 1");
  if (static_cast<index_t>(rhs.size()) < u.rows * nrhs ||
      static_cast<index_t>(y.size()) < u.rows * nrhs) {
    throw std::invalid_argument("trisolve: vector size mismatch");
  }
  const index_t n = u.rows;
  core::DoacrossStats stats;
  if (n == 0) return stats;

  const unsigned nth = pool.clamp_threads(opts.nthreads);
  ready.ensure_size(n);
  ready.begin_epoch();

  rt::Barrier barrier(nth);
  rt::FailureLatch latch;
  barrier.watch(&latch, opts.stall_budget);
  const rt::WaitGuard guard{&latch, opts.stall_budget, "doacross-flag"};
  std::atomic<index_t> cursor{0};
  std::vector<rt::Padded<std::uint64_t>> episodes(nth), rounds(nth);

  using clock = std::chrono::steady_clock;
  clock::time_point t0, t1, t2;

  const index_t* order = opts.order;
  const double* rhs_p = rhs.data();
  double* yp = y.data();

  const auto body = [&](unsigned tid, unsigned nthreads) {
    barrier.arrive_and_wait();  // rendezvous: exclude pool wake-up
    if (tid == 0) t0 = clock::now();
    std::uint64_t my_episodes = 0, my_rounds = 0;

    auto solve_row = [&](index_t k) {
      const index_t i = order ? order[k] : n - 1 - k;
      if (opts.injector) opts.injector->on_row(tid, i, &latch);
      double* yi = yp + i * nrhs;
      const double* bi = rhs_p + i * nrhs;
      for (index_t r = 0; r < nrhs; ++r) yi[r] = bi[r];
      const index_t k_diag = u.row_begin(i);  // diagonal first
      for (index_t kk = k_diag + 1; kk < u.row_end(i); ++kk) {
        const index_t c = u.idx[static_cast<std::size_t>(kk)];
        const std::uint64_t w = core::wait_done_guarded(ready, c, i, guard);
        if (w != 0) {
          ++my_episodes;
          my_rounds += w;
        }
        const double a = u.val[static_cast<std::size_t>(kk)];
        const double* yc = yp + c * nrhs;
        for (index_t r = 0; r < nrhs; ++r) yi[r] -= a * yc[r];
      }
      const double d = u.val[static_cast<std::size_t>(k_diag)];
      for (index_t r = 0; r < nrhs; ++r) yi[r] /= d;
      ready.mark_done(i);
    };
    rt::schedule_run(opts.schedule, n, tid, nthreads, &cursor, solve_row);
    episodes[tid].value = my_episodes;
    rounds[tid].value = my_rounds;
    barrier.arrive_and_wait();
    if (tid == 0) t1 = clock::now();

    // Postprocessing flag sweep — dead (and elided) for epoch-reset tables.
    if constexpr (!core::kEpochResetV<Ready>) {
      const rt::IterRange post = rt::static_block_range(n, tid, nthreads);
      for (index_t i = post.begin; i < post.end; ++i) ready.clear(i);
      barrier.arrive_and_wait();
    }
    if (tid == 0) t2 = clock::now();
  };
  // Fault containment: a worker that throws records its exception in the
  // latch; every wait loop above polls the latch and unwinds via
  // WorkerAbort, so peers drain and join instead of spinning forever. The
  // first recorded fault is rethrown after the join.
  pool.parallel_region(nth, [&](unsigned tid, unsigned nthreads) {
    try {
      body(tid, nthreads);
    } catch (rt::WorkerAbort&) {
    } catch (...) {
      latch.raise(std::current_exception());
    }
  });
  if (latch.raised()) latch.rethrow_and_reset();

  stats.execute_seconds = std::chrono::duration<double>(t1 - t0).count();
  stats.post_seconds = std::chrono::duration<double>(t2 - t1).count();
  for (unsigned t = 0; t < nth; ++t) {
    stats.wait_episodes += episodes[t].value;
    stats.wait_rounds += rounds[t].value;
  }
  return stats;
}

/// Level-scheduled multi-RHS lower solve (barrier per wavefront), the
/// ablation partner of trisolve_doacross_multi.
core::DoacrossStats trisolve_levelsched_multi(rt::ThreadPool& pool,
                                              const Csr& l,
                                              std::span<const double> rhs,
                                              std::span<double> y,
                                              index_t nrhs,
                                              const core::Reordering& reorder,
                                              unsigned nthreads = 0);

/// Preprocessed-doacross *upper* (backward) solve. U must be upper
/// triangular, sorted, diagonal stored first in each row. Default
/// execution order is the source order of the backward solve (row n-1
/// first); `opts.order` may supply an upper_solve_reordering. Off-diagonal
/// accumulation runs in ascending column order, exactly like
/// trisolve_upper_seq, so results are bitwise identical.
template <ReadyTableLike Ready = core::DenseReadyTable>
core::DoacrossStats trisolve_upper_doacross(rt::ThreadPool& pool,
                                            const Csr& u,
                                            std::span<const double> rhs,
                                            std::span<double> y, Ready& ready,
                                            const TrisolveOptions& opts = {}) {
  if (u.rows != u.cols) throw std::invalid_argument("trisolve: not square");
  if (static_cast<index_t>(rhs.size()) < u.rows ||
      static_cast<index_t>(y.size()) < u.rows) {
    throw std::invalid_argument("trisolve: vector size mismatch");
  }
  const index_t n = u.rows;
  core::DoacrossStats stats;
  if (n == 0) return stats;

  const unsigned nth = pool.clamp_threads(opts.nthreads);
  ready.ensure_size(n);
  ready.begin_epoch();

  rt::Barrier barrier(nth);
  rt::FailureLatch latch;
  barrier.watch(&latch, opts.stall_budget);
  const rt::WaitGuard guard{&latch, opts.stall_budget, "doacross-flag"};
  std::atomic<index_t> cursor{0};
  std::vector<rt::Padded<std::uint64_t>> episodes(nth), rounds(nth);

  using clock = std::chrono::steady_clock;
  clock::time_point t0, t1, t2;

  const index_t* order = opts.order;
  const double* rhs_p = rhs.data();
  double* yp = y.data();

  const auto body = [&](unsigned tid, unsigned nthreads) {
    barrier.arrive_and_wait();  // rendezvous: exclude pool wake-up
    if (tid == 0) t0 = clock::now();
    std::uint64_t my_episodes = 0, my_rounds = 0;

    auto solve_row = [&](index_t k) {
      const index_t i = order ? order[k] : n - 1 - k;
      if (opts.injector) opts.injector->on_row(tid, i, &latch);
      double acc = rhs_p[i];
      const index_t k_diag = u.row_begin(i);  // diagonal first
      for (index_t kk = k_diag + 1; kk < u.row_end(i); ++kk) {
        const index_t c = u.idx[static_cast<std::size_t>(kk)];
        const std::uint64_t r = core::wait_done_guarded(ready, c, i, guard);
        if (r != 0) {
          ++my_episodes;
          my_rounds += r;
        }
        acc -= u.val[static_cast<std::size_t>(kk)] * yp[c];
      }
      yp[i] = acc / u.val[static_cast<std::size_t>(k_diag)];
      ready.mark_done(i);
    };
    rt::schedule_run(opts.schedule, n, tid, nthreads, &cursor, solve_row);
    episodes[tid].value = my_episodes;
    rounds[tid].value = my_rounds;
    barrier.arrive_and_wait();
    if (tid == 0) t1 = clock::now();

    // Postprocessing flag sweep — dead (and elided) for epoch-reset tables.
    if constexpr (!core::kEpochResetV<Ready>) {
      const rt::IterRange post = rt::static_block_range(n, tid, nthreads);
      for (index_t i = post.begin; i < post.end; ++i) ready.clear(i);
      barrier.arrive_and_wait();
    }
    if (tid == 0) t2 = clock::now();
  };
  // Fault containment: a worker that throws records its exception in the
  // latch; every wait loop above polls the latch and unwinds via
  // WorkerAbort, so peers drain and join instead of spinning forever. The
  // first recorded fault is rethrown after the join.
  pool.parallel_region(nth, [&](unsigned tid, unsigned nthreads) {
    try {
      body(tid, nthreads);
    } catch (rt::WorkerAbort&) {
    } catch (...) {
      latch.raise(std::current_exception());
    }
  });
  if (latch.raised()) latch.rethrow_and_reset();

  stats.execute_seconds = std::chrono::duration<double>(t1 - t0).count();
  stats.post_seconds = std::chrono::duration<double>(t2 - t1).count();
  for (unsigned t = 0; t < nth; ++t) {
    stats.wait_episodes += episodes[t].value;
    stats.wait_rounds += rounds[t].value;
  }
  return stats;
}

/// Convenience overload owning a throwaway flag table.
inline core::DoacrossStats trisolve_upper_doacross(
    rt::ThreadPool& pool, const Csr& u, std::span<const double> rhs,
    std::span<double> y, const TrisolveOptions& opts = {}) {
  core::DenseReadyTable ready(u.rows);
  return trisolve_upper_doacross(pool, u, rhs, y, ready, opts);
}

/// Level-scheduled lower solve: rows of one wavefront run as a doall;
/// a barrier separates consecutive wavefronts. `work_reps` as in
/// TrisolveOptions.
core::DoacrossStats trisolve_levelsched(rt::ThreadPool& pool, const Csr& l,
                                        std::span<const double> rhs,
                                        std::span<double> y,
                                        const core::Reordering& reorder,
                                        unsigned nthreads = 0,
                                        int work_reps = 0);

/// Level-scheduled *upper* (backward) solve, the standalone counterpart of
/// the plan's level-barrier strategy: wavefronts from
/// upper_solve_reordering, one barrier per level, no flags. Bitwise equal
/// to trisolve_upper_seq.
core::DoacrossStats trisolve_levelsched_upper(rt::ThreadPool& pool,
                                              const Csr& u,
                                              std::span<const double> rhs,
                                              std::span<double> y,
                                              const core::Reordering& reorder,
                                              unsigned nthreads = 0);

}  // namespace pdx::sparse
