// ilu0.hpp — incomplete LU factorization with zero fill (ILU(0)).
//
// "Many of the sparse triangular systems we use for model problems arise
//  from incompletely factored matrices obtained from a variety of
//  discretized partial differential equations." (paper §3.2, citing [1])
//
// ILU(0) computes L (unit lower) and U (upper) such that A ≈ L·U with the
// product's sparsity restricted to A's pattern: at every stored position of
// A, (L·U)(i,j) equals A(i,j) exactly. Rows must be sorted and every
// diagonal entry must be stored and end up nonzero.
#pragma once

#include <cstdint>
#include <span>

#include "sparse/csr.hpp"

namespace pdx::sparse {

struct IluFactors {
  /// Unit lower triangular factor, diagonal (1.0) stored explicitly as the
  /// last entry of each row.
  Csr l;
  /// Upper triangular factor, diagonal stored as the first entry of each
  /// row.
  Csr u;
};

/// What to do when elimination produces a zero or non-finite pivot.
enum class PivotPolicy : std::uint8_t {
  /// Report the offending row and throw (default). The factors are
  /// unusable; refactorizing with good values recovers them.
  kThrow,
  /// Substitute an escalating diagonal shift for every bad pivot: pass 1
  /// uses PivotOptions::initial_shift, and whenever a pass still yields
  /// non-finite factors the whole factorization reruns with the shift
  /// multiplied by shift_growth (up to max_passes). The substitution
  /// happens at the pivot's production, before any consumer reads it, so
  /// the result is deterministic and identical across executors.
  kShift,
  /// Substitute a fixed value (PivotOptions::replacement) once, no
  /// escalation. Cheapest recovery when the caller knows the scale.
  kReplace,
};

/// Recovery knobs for zero/non-finite pivots (DESIGN.md §12).
struct PivotOptions {
  PivotPolicy policy = PivotPolicy::kThrow;
  /// First-pass substitute pivot under kShift.
  double initial_shift = 1e-6;
  /// Multiplier applied to the shift between kShift escalation passes.
  double shift_growth = 100.0;
  /// Substitute pivot under kReplace.
  double replacement = 1.0;
  /// Bound on numeric passes under kShift before giving up (throws).
  int max_passes = 4;
};

/// What pivot recovery actually did in the accepted (final) pass.
struct PivotOutcome {
  /// Bad pivots substituted in the accepted pass (0 = clean factorization).
  std::uint64_t shifted_pivots = 0;
  /// The substitute value the accepted pass used (0.0 when clean).
  double shift_value = 0.0;
  /// Numeric passes run (> 1 only under kShift escalation).
  int passes = 1;
};

/// Factor `a` (square, sorted rows, explicit nonzero diagonal) in the
/// IKJ ordering restricted to a's pattern. Throws on structural problems
/// or a zero pivot.
IluFactors ilu0(const Csr& a);

/// ilu0 with explicit pivot recovery. Under kThrow this is bitwise
/// identical to ilu0(a); under kShift/kReplace bad pivots are substituted
/// at production (see PivotPolicy) and `outcome`, when non-null, reports
/// what the accepted pass did. FactorPlan with the same PivotOptions
/// produces bitwise-identical factors under every execution strategy.
IluFactors ilu0(const Csr& a, const PivotOptions& pivot,
                PivotOutcome* outcome = nullptr);

/// Allocate the exact-size L/U split of `a`'s pattern: every ptr/idx/val
/// array is counted first and sized once (no push_back growth). `diag[i]`
/// is the position of (i, i) in a.idx. Values are zero except L's unit
/// diagonal; ilu0() and FactorPlan::factorize fill them.
IluFactors ilu0_split_pattern(const Csr& a, std::span<const index_t> diag);

}  // namespace pdx::sparse
