// ilu0.hpp — incomplete LU factorization with zero fill (ILU(0)).
//
// "Many of the sparse triangular systems we use for model problems arise
//  from incompletely factored matrices obtained from a variety of
//  discretized partial differential equations." (paper §3.2, citing [1])
//
// ILU(0) computes L (unit lower) and U (upper) such that A ≈ L·U with the
// product's sparsity restricted to A's pattern: at every stored position of
// A, (L·U)(i,j) equals A(i,j) exactly. Rows must be sorted and every
// diagonal entry must be stored and end up nonzero.
#pragma once

#include <span>

#include "sparse/csr.hpp"

namespace pdx::sparse {

struct IluFactors {
  /// Unit lower triangular factor, diagonal (1.0) stored explicitly as the
  /// last entry of each row.
  Csr l;
  /// Upper triangular factor, diagonal stored as the first entry of each
  /// row.
  Csr u;
};

/// Factor `a` (square, sorted rows, explicit nonzero diagonal) in the
/// IKJ ordering restricted to a's pattern. Throws on structural problems
/// or a zero pivot.
IluFactors ilu0(const Csr& a);

/// Allocate the exact-size L/U split of `a`'s pattern: every ptr/idx/val
/// array is counted first and sized once (no push_back growth). `diag[i]`
/// is the position of (i, i) in a.idx. Values are zero except L's unit
/// diagonal; ilu0() and FactorPlan::factorize fill them.
IluFactors ilu0_split_pattern(const Csr& a, std::span<const index_t> diag);

}  // namespace pdx::sparse
