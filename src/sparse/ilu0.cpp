#include "sparse/ilu0.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace pdx::sparse {

IluFactors ilu0(const Csr& a) {
  if (a.rows != a.cols) throw std::invalid_argument("ilu0: matrix not square");
  a.validate();

  const index_t n = a.rows;
  // Work on a copy of the values; the pattern never changes (zero fill).
  std::vector<double> w = a.val;

  // Diagonal positions, needed as pivots throughout.
  std::vector<index_t> diag(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    const index_t d = a.find(i, i);
    if (d < 0) {
      throw std::invalid_argument("ilu0: missing diagonal at row " +
                                  std::to_string(i));
    }
    diag[static_cast<std::size_t>(i)] = d;
  }

  // Scatter buffer: position of column c within the current row, or -1.
  std::vector<index_t> pos(static_cast<std::size_t>(n), -1);

  for (index_t i = 0; i < n; ++i) {
    for (index_t k = a.row_begin(i); k < a.row_end(i); ++k) {
      pos[static_cast<std::size_t>(a.idx[static_cast<std::size_t>(k)])] = k;
    }
    // Eliminate with every previous row k that appears in row i.
    for (index_t kk = a.row_begin(i); kk < a.row_end(i); ++kk) {
      const index_t k = a.idx[static_cast<std::size_t>(kk)];
      if (k >= i) break;  // sorted row: strictly-lower part is first
      const double pivot = w[static_cast<std::size_t>(diag[static_cast<std::size_t>(k)])];
      if (pivot == 0.0 || !std::isfinite(pivot)) {
        throw std::runtime_error("ilu0: zero/invalid pivot at row " +
                                 std::to_string(k));
      }
      const double lik = w[static_cast<std::size_t>(kk)] / pivot;
      w[static_cast<std::size_t>(kk)] = lik;
      // Subtract lik * (row k's upper part), restricted to row i's pattern.
      for (index_t jj = diag[static_cast<std::size_t>(k)] + 1;
           jj < a.row_end(k); ++jj) {
        const index_t j = a.idx[static_cast<std::size_t>(jj)];
        const index_t p = pos[static_cast<std::size_t>(j)];
        if (p >= 0) {
          w[static_cast<std::size_t>(p)] -=
              lik * w[static_cast<std::size_t>(jj)];
        }
      }
    }
    for (index_t k = a.row_begin(i); k < a.row_end(i); ++k) {
      pos[static_cast<std::size_t>(a.idx[static_cast<std::size_t>(k)])] = -1;
    }
    const double piv = w[static_cast<std::size_t>(diag[static_cast<std::size_t>(i)])];
    if (piv == 0.0 || !std::isfinite(piv)) {
      throw std::runtime_error("ilu0: zero/invalid pivot produced at row " +
                               std::to_string(i));
    }
  }

  // Split the factored values into L (strictly lower + unit diagonal) and
  // U (diagonal + strictly upper).
  IluFactors f;
  f.l = Csr(a.rows, a.cols);
  f.u = Csr(a.rows, a.cols);
  for (index_t i = 0; i < n; ++i) {
    for (index_t k = a.row_begin(i); k < a.row_end(i); ++k) {
      const index_t c = a.idx[static_cast<std::size_t>(k)];
      if (c < i) {
        f.l.idx.push_back(c);
        f.l.val.push_back(w[static_cast<std::size_t>(k)]);
        ++f.l.ptr[static_cast<std::size_t>(i) + 1];
      } else {
        f.u.idx.push_back(c);
        f.u.val.push_back(w[static_cast<std::size_t>(k)]);
        ++f.u.ptr[static_cast<std::size_t>(i) + 1];
      }
    }
    // Explicit unit diagonal closes each L row (kept last, sorted order).
    f.l.idx.push_back(i);
    f.l.val.push_back(1.0);
    ++f.l.ptr[static_cast<std::size_t>(i) + 1];
  }
  for (index_t i = 0; i < n; ++i) {
    f.l.ptr[static_cast<std::size_t>(i) + 1] += f.l.ptr[static_cast<std::size_t>(i)];
    f.u.ptr[static_cast<std::size_t>(i) + 1] += f.u.ptr[static_cast<std::size_t>(i)];
  }
  return f;
}

}  // namespace pdx::sparse
