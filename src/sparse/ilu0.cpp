#include "sparse/ilu0.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace pdx::sparse {

namespace {

/// One numeric pass of the IKJ elimination over `w` (a fresh copy of
/// a.val). Under kThrow bad pivots throw (bitwise the historical ilu0);
/// otherwise each bad pivot is overwritten with `substitute` at its
/// production — before any later row reads it — and counted. Returns the
/// number of substitutions.
std::uint64_t ilu0_pass(const Csr& a, std::span<const index_t> diag,
                        std::vector<index_t>& pos, std::vector<double>& w,
                        PivotPolicy policy, double substitute) {
  const index_t n = a.rows;
  std::uint64_t fixed = 0;
  for (index_t i = 0; i < n; ++i) {
    for (index_t k = a.row_begin(i); k < a.row_end(i); ++k) {
      pos[static_cast<std::size_t>(a.idx[static_cast<std::size_t>(k)])] = k;
    }
    // Eliminate with every previous row k that appears in row i.
    for (index_t kk = a.row_begin(i); kk < a.row_end(i); ++kk) {
      const index_t k = a.idx[static_cast<std::size_t>(kk)];
      if (k >= i) break;  // sorted row: strictly-lower part is first
      const double pivot =
          w[static_cast<std::size_t>(diag[static_cast<std::size_t>(k)])];
      if (policy == PivotPolicy::kThrow &&
          (pivot == 0.0 || !std::isfinite(pivot))) {
        throw std::runtime_error("ilu0: zero/invalid pivot at row " +
                                 std::to_string(k));
      }
      const double lik = w[static_cast<std::size_t>(kk)] / pivot;
      w[static_cast<std::size_t>(kk)] = lik;
      // Subtract lik * (row k's upper part), restricted to row i's pattern.
      for (index_t jj = diag[static_cast<std::size_t>(k)] + 1;
           jj < a.row_end(k); ++jj) {
        const index_t j = a.idx[static_cast<std::size_t>(jj)];
        const index_t p = pos[static_cast<std::size_t>(j)];
        if (p >= 0) {
          w[static_cast<std::size_t>(p)] -=
              lik * w[static_cast<std::size_t>(jj)];
        }
      }
    }
    for (index_t k = a.row_begin(i); k < a.row_end(i); ++k) {
      pos[static_cast<std::size_t>(a.idx[static_cast<std::size_t>(k)])] = -1;
    }
    const std::size_t d =
        static_cast<std::size_t>(diag[static_cast<std::size_t>(i)]);
    const double piv = w[d];
    if (piv == 0.0 || !std::isfinite(piv)) {
      if (policy == PivotPolicy::kThrow) {
        throw std::runtime_error("ilu0: zero/invalid pivot produced at row " +
                                 std::to_string(i));
      }
      w[d] = substitute;
      ++fixed;
    }
  }
  return fixed;
}

}  // namespace

IluFactors ilu0(const Csr& a) { return ilu0(a, PivotOptions{}); }

IluFactors ilu0(const Csr& a, const PivotOptions& pivot,
                PivotOutcome* outcome) {
  if (a.rows != a.cols) throw std::invalid_argument("ilu0: matrix not square");
  a.validate();

  const index_t n = a.rows;

  // Diagonal positions, needed as pivots throughout.
  std::vector<index_t> diag(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    const index_t d = a.find(i, i);
    if (d < 0) {
      throw std::invalid_argument("ilu0: missing diagonal at row " +
                                  std::to_string(i));
    }
    diag[static_cast<std::size_t>(i)] = d;
  }

  // Scatter buffer: position of column c within the current row, or -1.
  std::vector<index_t> pos(static_cast<std::size_t>(n), -1);
  // Work on a copy of the values; the pattern never changes (zero fill).
  std::vector<double> w;

  // kShift escalation: rerun the whole factorization from fresh values
  // with a larger substitute until every factored value is finite (a
  // shifted pivot can still overflow later rows through a huge lik).
  // kThrow and kReplace never take a second pass.
  double sigma = pivot.initial_shift;
  double substitute = 0.0;
  std::uint64_t fixed = 0;
  int pass = 0;
  for (;;) {
    ++pass;
    w = a.val;
    substitute =
        pivot.policy == PivotPolicy::kReplace ? pivot.replacement : sigma;
    fixed = ilu0_pass(a, diag, pos, w, pivot.policy, substitute);
    if (fixed == 0 || pivot.policy != PivotPolicy::kShift) break;
    bool finite = true;
    for (const double v : w) {
      if (!std::isfinite(v)) {
        finite = false;
        break;
      }
    }
    if (finite) break;
    if (pass >= pivot.max_passes) {
      throw std::runtime_error(
          "ilu0: diagonal shift failed to produce finite factors after " +
          std::to_string(pass) + " passes");
    }
    sigma *= pivot.shift_growth;
  }
  if (outcome) {
    outcome->shifted_pivots = fixed;
    outcome->shift_value = fixed != 0 ? substitute : 0.0;
    outcome->passes = pass;
  }

  // Split the factored values into L (strictly lower + unit diagonal) and
  // U (diagonal + strictly upper). The pattern split is exact-size
  // (ilu0_split_pattern counts both factors up front), so nothing here
  // reallocates; within a sorted row the lower run precedes the diagonal,
  // making each factor row a contiguous copy out of w.
  IluFactors f = ilu0_split_pattern(a, diag);
  for (index_t i = 0; i < n; ++i) {
    const index_t rb = a.row_begin(i);
    const index_t d = diag[static_cast<std::size_t>(i)];
    const index_t re = a.row_end(i);
    index_t lp = f.l.row_begin(i);
    for (index_t k = rb; k < d; ++k) {
      f.l.val[static_cast<std::size_t>(lp++)] = w[static_cast<std::size_t>(k)];
    }
    index_t up = f.u.row_begin(i);
    for (index_t k = d; k < re; ++k) {
      f.u.val[static_cast<std::size_t>(up++)] = w[static_cast<std::size_t>(k)];
    }
  }
  return f;
}

IluFactors ilu0_split_pattern(const Csr& a,
                              std::span<const index_t> diag) {
  const index_t n = a.rows;
  // Count both factors first: L rows carry the strictly-lower run plus
  // the explicit unit diagonal, U rows the diagonal plus the upper run.
  IluFactors f;
  f.l = Csr(n, a.cols);
  f.u = Csr(n, a.cols);
  for (index_t i = 0; i < n; ++i) {
    const index_t d = diag[static_cast<std::size_t>(i)];
    f.l.ptr[static_cast<std::size_t>(i) + 1] =
        f.l.ptr[static_cast<std::size_t>(i)] + (d - a.row_begin(i)) + 1;
    f.u.ptr[static_cast<std::size_t>(i) + 1] =
        f.u.ptr[static_cast<std::size_t>(i)] + (a.row_end(i) - d);
  }
  const std::size_t lnnz = static_cast<std::size_t>(f.l.ptr.back());
  const std::size_t unnz = static_cast<std::size_t>(f.u.ptr.back());
  f.l.idx.resize(lnnz);
  f.l.val.assign(lnnz, 0.0);
  f.u.idx.resize(unnz);
  f.u.val.assign(unnz, 0.0);
  for (index_t i = 0; i < n; ++i) {
    const index_t d = diag[static_cast<std::size_t>(i)];
    index_t lp = f.l.row_begin(i);
    for (index_t k = a.row_begin(i); k < d; ++k) {
      f.l.idx[static_cast<std::size_t>(lp++)] =
          a.idx[static_cast<std::size_t>(k)];
    }
    // Explicit unit diagonal closes each L row (kept last, sorted order).
    f.l.idx[static_cast<std::size_t>(lp)] = i;
    f.l.val[static_cast<std::size_t>(lp)] = 1.0;
    index_t up = f.u.row_begin(i);
    for (index_t k = d; k < a.row_end(i); ++k) {
      f.u.idx[static_cast<std::size_t>(up++)] =
          a.idx[static_cast<std::size_t>(k)];
    }
  }
  return f;
}

}  // namespace pdx::sparse
