// permute.hpp — symmetric permutations of matrices and vectors.
//
// Reordering transformations (doconsider, bandwidth-reducing orderings)
// are expressed as permutations; these helpers apply them. `perm` maps
// new index -> old index throughout (i.e. row k of the permuted matrix is
// row perm[k] of the original), matching core::Reordering::order.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace pdx::sparse {

/// B = P A Pᵀ with B(k, :) = A(perm[k], perm-mapped columns). Rows of the
/// result are sorted.
Csr permute_symmetric(const Csr& a, std::span<const index_t> perm);

/// out[k] = v[perm[k]] (gather into the new numbering).
std::vector<double> permute_vector(std::span<const double> v,
                                   std::span<const index_t> perm);

/// out[perm[k]] = v[k] (scatter back to the old numbering).
std::vector<double> unpermute_vector(std::span<const double> v,
                                     std::span<const index_t> perm);

/// inverse[perm[k]] = k.
std::vector<index_t> invert_permutation(std::span<const index_t> perm);

}  // namespace pdx::sparse
