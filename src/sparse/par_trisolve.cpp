#include "sparse/par_trisolve.hpp"

#include <chrono>

namespace pdx::sparse {

core::DoacrossStats trisolve_levelsched(rt::ThreadPool& pool, const Csr& l,
                                        std::span<const double> rhs,
                                        std::span<double> y,
                                        const core::Reordering& reorder,
                                        unsigned nthreads, int work_reps) {
  if (l.rows != l.cols) throw std::invalid_argument("trisolve: not square");
  if (static_cast<index_t>(rhs.size()) < l.rows ||
      static_cast<index_t>(y.size()) < l.rows ||
      reorder.iterations() != l.rows) {
    throw std::invalid_argument("trisolve_levelsched: size mismatch");
  }
  core::DoacrossStats stats;
  const index_t n = l.rows;
  if (n == 0) return stats;

  const unsigned nth = pool.clamp_threads(nthreads);
  rt::Barrier barrier(nth);
  const double* rhs_p = rhs.data();
  double* yp = y.data();

  using clock = std::chrono::steady_clock;
  clock::time_point t0, t1;

  pool.parallel_region(nth, [&](unsigned tid, unsigned nthreads_in) {
    barrier.arrive_and_wait();  // rendezvous: exclude pool wake-up
    if (tid == 0) t0 = clock::now();
    for (index_t lvl = 0; lvl < reorder.num_levels(); ++lvl) {
      const index_t lo = reorder.level_ptr[static_cast<std::size_t>(lvl)];
      const index_t hi = reorder.level_ptr[static_cast<std::size_t>(lvl) + 1];
      const rt::IterRange r =
          rt::static_block_range(hi - lo, tid, nthreads_in);
      for (index_t k = lo + r.begin; k < lo + r.end; ++k) {
        const index_t i = reorder.order[static_cast<std::size_t>(k)];
        double acc = rhs_p[i];
        const index_t k_end = l.row_end(i) - 1;
        for (index_t kk = l.row_begin(i); kk < k_end; ++kk) {
          acc -= l.val[static_cast<std::size_t>(kk)] *
                 yp[l.idx[static_cast<std::size_t>(kk)]];
          if (work_reps > 0) acc = machine_emulation_work(acc, work_reps);
        }
        yp[i] = acc / l.val[static_cast<std::size_t>(k_end)];
      }
      barrier.arrive_and_wait();  // wavefront boundary
    }
    if (tid == 0) t1 = clock::now();
  });

  stats.execute_seconds = std::chrono::duration<double>(t1 - t0).count();
  return stats;
}

core::DoacrossStats trisolve_levelsched_upper(rt::ThreadPool& pool,
                                              const Csr& u,
                                              std::span<const double> rhs,
                                              std::span<double> y,
                                              const core::Reordering& reorder,
                                              unsigned nthreads) {
  if (u.rows != u.cols) throw std::invalid_argument("trisolve: not square");
  if (static_cast<index_t>(rhs.size()) < u.rows ||
      static_cast<index_t>(y.size()) < u.rows ||
      reorder.iterations() != u.rows) {
    throw std::invalid_argument("trisolve_levelsched_upper: size mismatch");
  }
  core::DoacrossStats stats;
  const index_t n = u.rows;
  if (n == 0) return stats;

  const unsigned nth = pool.clamp_threads(nthreads);
  rt::Barrier barrier(nth);
  const double* rhs_p = rhs.data();
  double* yp = y.data();

  using clock = std::chrono::steady_clock;
  clock::time_point t0, t1;

  pool.parallel_region(nth, [&](unsigned tid, unsigned nthreads_in) {
    barrier.arrive_and_wait();  // rendezvous: exclude pool wake-up
    if (tid == 0) t0 = clock::now();
    for (index_t lvl = 0; lvl < reorder.num_levels(); ++lvl) {
      const index_t lo = reorder.level_ptr[static_cast<std::size_t>(lvl)];
      const index_t hi = reorder.level_ptr[static_cast<std::size_t>(lvl) + 1];
      const rt::IterRange r =
          rt::static_block_range(hi - lo, tid, nthreads_in);
      for (index_t k = lo + r.begin; k < lo + r.end; ++k) {
        const index_t i = reorder.order[static_cast<std::size_t>(k)];
        double acc = rhs_p[i];
        const index_t k_diag = u.row_begin(i);  // diagonal first
        for (index_t kk = k_diag + 1; kk < u.row_end(i); ++kk) {
          acc -= u.val[static_cast<std::size_t>(kk)] *
                 yp[u.idx[static_cast<std::size_t>(kk)]];
        }
        yp[i] = acc / u.val[static_cast<std::size_t>(k_diag)];
      }
      barrier.arrive_and_wait();  // wavefront boundary
    }
    if (tid == 0) t1 = clock::now();
  });

  stats.execute_seconds = std::chrono::duration<double>(t1 - t0).count();
  return stats;
}

core::DoacrossStats trisolve_levelsched_multi(rt::ThreadPool& pool,
                                              const Csr& l,
                                              std::span<const double> rhs,
                                              std::span<double> y,
                                              index_t nrhs,
                                              const core::Reordering& reorder,
                                              unsigned nthreads) {
  if (l.rows != l.cols) throw std::invalid_argument("trisolve: not square");
  if (nrhs < 1) throw std::invalid_argument("trisolve: nrhs must be >= 1");
  if (static_cast<index_t>(rhs.size()) < l.rows * nrhs ||
      static_cast<index_t>(y.size()) < l.rows * nrhs ||
      reorder.iterations() != l.rows) {
    throw std::invalid_argument("trisolve_levelsched_multi: size mismatch");
  }
  core::DoacrossStats stats;
  const index_t n = l.rows;
  if (n == 0) return stats;

  const unsigned nth = pool.clamp_threads(nthreads);
  rt::Barrier barrier(nth);
  const double* rhs_p = rhs.data();
  double* yp = y.data();

  using clock = std::chrono::steady_clock;
  clock::time_point t0, t1;

  pool.parallel_region(nth, [&](unsigned tid, unsigned nthreads_in) {
    barrier.arrive_and_wait();  // rendezvous: exclude pool wake-up
    if (tid == 0) t0 = clock::now();
    for (index_t lvl = 0; lvl < reorder.num_levels(); ++lvl) {
      const index_t lo = reorder.level_ptr[static_cast<std::size_t>(lvl)];
      const index_t hi = reorder.level_ptr[static_cast<std::size_t>(lvl) + 1];
      const rt::IterRange r =
          rt::static_block_range(hi - lo, tid, nthreads_in);
      for (index_t k = lo + r.begin; k < lo + r.end; ++k) {
        const index_t i = reorder.order[static_cast<std::size_t>(k)];
        double* yi = yp + i * nrhs;
        const double* bi = rhs_p + i * nrhs;
        for (index_t rr = 0; rr < nrhs; ++rr) yi[rr] = bi[rr];
        const index_t k_end = l.row_end(i) - 1;
        for (index_t kk = l.row_begin(i); kk < k_end; ++kk) {
          const double a = l.val[static_cast<std::size_t>(kk)];
          const double* yc =
              yp + l.idx[static_cast<std::size_t>(kk)] * nrhs;
          for (index_t rr = 0; rr < nrhs; ++rr) yi[rr] -= a * yc[rr];
        }
        const double d = l.val[static_cast<std::size_t>(k_end)];
        for (index_t rr = 0; rr < nrhs; ++rr) yi[rr] /= d;
      }
      barrier.arrive_and_wait();
    }
    if (tid == 0) t1 = clock::now();
  });

  stats.execute_seconds = std::chrono::duration<double>(t1 - t0).count();
  return stats;
}

}  // namespace pdx::sparse
