#include "sparse/packed_stream.hpp"

#include <cassert>

namespace pdx::sparse {

namespace {

/// Round a slab up to whole cache lines so adjacent slabs (separate
/// allocations anyway) and whatever the allocator places next never
/// share a line with the stream's tail record.
std::size_t pad_to_line(std::size_t bytes) noexcept {
  const std::size_t line = kCacheLineBytes;
  return (bytes + line - 1) / line * line;
}

/// Where row i's record content lives in the CSR: the diagonal entry and
/// the contiguous off-diagonal run. The single authority for the
/// diag-first (upper factor) vs diag-last (lower factor) split — pack()
/// and repack_values() must agree byte-for-byte on it.
struct RowSplit {
  index_t off;  ///< first off-diagonal position in idx/val
  index_t dia;  ///< diagonal position in val
  index_t cnt;  ///< off-diagonal entries
};

RowSplit split_row(const Csr& m, bool diag_first, index_t i) noexcept {
  const index_t b = m.row_begin(i);
  const index_t e = m.row_end(i);
  return {diag_first ? b + 1 : b, diag_first ? b : e - 1, e - b - 1};
}

}  // namespace

std::size_t PackedFactorStream::bytes() const noexcept {
  std::size_t total = 0;
  for (const Slab& s : slabs_) total += s.mem.size();
  return total;
}

void PackedFactorStream::clear() noexcept {
  m_ = nullptr;
  seq_.clear();
  slabs_.clear();
  addr_.clear();
}

void PackedFactorStream::prepare(const Csr& m, bool diag_first,
                                 std::vector<std::vector<index_t>> sequences,
                                 bool build_position_index) {
  clear();
  m_ = &m;
  diag_first_ = diag_first;
  seq_ = std::move(sequences);
  slabs_.reserve(seq_.size());
  for (const std::vector<index_t>& rows : seq_) {
    std::size_t slab_bytes = 0;
    for (index_t i : rows) {
      assert(m.row_nnz(i) >= 1 && "factor rows carry an explicit diagonal");
      slab_bytes += record_bytes(m.row_nnz(i) - 1);
    }
    slabs_.emplace_back();
    slabs_.back().mem = rt::FirstTouchBuffer(pad_to_line(slab_bytes));
    slabs_.back().records = static_cast<index_t>(rows.size());
  }
  if (build_position_index) {
    // Record addresses are pure arithmetic over the (untouched) slab
    // bases — building the index faults no stream page.
    addr_.reserve(static_cast<std::size_t>(m.rows));
    for (std::size_t s = 0; s < seq_.size(); ++s) {
      const std::byte* p = slabs_[s].mem.data();
      for (index_t i : seq_[s]) {
        addr_.push_back(p);
        p += record_bytes(m.row_nnz(i) - 1);
      }
    }
  }
}

void PackedFactorStream::pack(unsigned s) noexcept {
  const Csr& m = *m_;
  std::byte* p = slabs_[s].mem.data();
  for (index_t i : seq_[s]) {
    const RowSplit r = split_row(m, diag_first_, i);
    const index_t voff = vals_offset_words(r.cnt);
    index_t* h = reinterpret_cast<index_t*>(p);
    h[0] = i;
    h[1] = r.cnt;
    reinterpret_cast<double*>(p)[2] = m.val[static_cast<std::size_t>(r.dia)];
    std::memcpy(h + 3, m.idx.data() + r.off,
                static_cast<std::size_t>(r.cnt) * sizeof(index_t));
    // Zero the alignment pads (after cols and after vals) so the whole
    // slab is deterministic bytes — repack_values can skip them and any
    // slab-level comparison or checksum stays meaningful.
    for (index_t z = 3 + r.cnt; z < voff; ++z) h[z] = 0;
    std::memcpy(reinterpret_cast<double*>(p) + voff, m.val.data() + r.off,
                static_cast<std::size_t>(r.cnt) * sizeof(double));
    const index_t total = static_cast<index_t>(record_bytes(r.cnt) / 8);
    for (index_t z = voff + r.cnt; z < total; ++z) h[z] = 0;
    p += record_bytes(r.cnt);
  }
}

void PackedFactorStream::repack_values(const Csr& m, unsigned s) noexcept {
  std::byte* p = slabs_[s].mem.data();
  for (index_t rec = 0; rec < slabs_[s].records; ++rec) {
    // The record's header is pattern state: the row id and count written
    // by pack() locate the row's fresh values in m.
    const index_t* h = reinterpret_cast<const index_t*>(p);
    const index_t i = h[0];
    const index_t cnt = h[1];
    const RowSplit r = split_row(m, diag_first_, i);
    reinterpret_cast<double*>(p)[2] = m.val[static_cast<std::size_t>(r.dia)];
    std::memcpy(reinterpret_cast<double*>(p) + vals_offset_words(cnt),
                m.val.data() + r.off,
                static_cast<std::size_t>(cnt) * sizeof(double));
    p += record_bytes(cnt);
  }
}

}  // namespace pdx::sparse
