#include "sparse/packed_stream.hpp"

#include <cassert>

namespace pdx::sparse {

namespace {

/// Round a slab up to whole cache lines so adjacent slabs (separate
/// allocations anyway) and whatever the allocator places next never
/// share a line with the stream's tail record.
std::size_t pad_to_line(std::size_t bytes) noexcept {
  const std::size_t line = kCacheLineBytes;
  return (bytes + line - 1) / line * line;
}

}  // namespace

std::size_t PackedFactorStream::bytes() const noexcept {
  std::size_t total = 0;
  for (const Slab& s : slabs_) total += s.mem.size();
  return total;
}

void PackedFactorStream::clear() noexcept {
  m_ = nullptr;
  seq_.clear();
  slabs_.clear();
  addr_.clear();
}

void PackedFactorStream::prepare(const Csr& m, bool diag_first,
                                 std::vector<std::vector<index_t>> sequences,
                                 bool build_position_index) {
  clear();
  m_ = &m;
  diag_first_ = diag_first;
  seq_ = std::move(sequences);
  slabs_.reserve(seq_.size());
  for (const std::vector<index_t>& rows : seq_) {
    std::size_t slab_bytes = 0;
    for (index_t i : rows) {
      assert(m.row_nnz(i) >= 1 && "factor rows carry an explicit diagonal");
      slab_bytes += record_bytes(m.row_nnz(i) - 1);
    }
    slabs_.emplace_back();
    slabs_.back().mem = rt::FirstTouchBuffer(pad_to_line(slab_bytes));
  }
  if (build_position_index) {
    // Record addresses are pure arithmetic over the (untouched) slab
    // bases — building the index faults no stream page.
    addr_.reserve(static_cast<std::size_t>(m.rows));
    for (std::size_t s = 0; s < seq_.size(); ++s) {
      const std::byte* p = slabs_[s].mem.data();
      for (index_t i : seq_[s]) {
        addr_.push_back(p);
        p += record_bytes(m.row_nnz(i) - 1);
      }
    }
  }
}

void PackedFactorStream::pack(unsigned s) noexcept {
  const Csr& m = *m_;
  std::byte* p = slabs_[s].mem.data();
  for (index_t i : seq_[s]) {
    const index_t b = m.row_begin(i);
    const index_t e = m.row_end(i);
    const index_t cnt = e - b - 1;
    const index_t off = diag_first_ ? b + 1 : b;  // off-diagonal run
    const index_t dia = diag_first_ ? b : e - 1;
    index_t* h = reinterpret_cast<index_t*>(p);
    h[0] = i;
    h[1] = cnt;
    reinterpret_cast<double*>(p)[2] = m.val[static_cast<std::size_t>(dia)];
    std::memcpy(h + 3, m.idx.data() + off,
                static_cast<std::size_t>(cnt) * sizeof(index_t));
    std::memcpy(reinterpret_cast<double*>(p) + 3 + cnt,
                m.val.data() + off,
                static_cast<std::size_t>(cnt) * sizeof(double));
    p += record_bytes(cnt);
  }
}

}  // namespace pdx::sparse
