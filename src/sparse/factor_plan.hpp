// factor_plan.hpp — persistent ILU(0) factorization plans: the paper's
// symbolic/numeric split applied to our own preprocessing step.
//
// PRs 1–4 amortized the triangular *solve*: inspect the dependence
// structure once, execute many times. But in a time-stepping workload the
// matrix VALUES change every step while the PATTERN does not, and the
// ILU(0) factorization itself — still a sequential loop in ilu0() — plus
// a full TrisolvePlan rebuild became the dominant per-step cost. The
// elimination loop of ILU(0) carries exactly the row-on-earlier-row true
// dependences the doacross machinery already schedules: row i reads the
// finalized values of every row k < i stored in its strictly-lower
// pattern, which is the lower-triangular-solve dependence DAG.
//
// A FactorPlan does the symbolic phase ONCE per sparsity pattern:
//
//   symbolic (once)                 numeric (every value change)
//   ---------------                 ----------------------------
//   diagonal positions              zero heap allocation
//   per-row scatter maps            O(1) epoch flag reset
//   (elimination steps compiled     one pool fork/join (zero for the
//    to flat target/source pairs)    serial strategy)
//   doconsider levels of the        bitwise identical values to the
//    lower pattern                   sequential ilu0()
//   strategy selection
//    (core::advise_factor_schedule)
//
// and then runs parallel numeric factorizations through the ThreadPool
// with the same epoch-flag / level-barrier / blocked-hybrid / serial
// executor family TrisolvePlan uses (DESIGN.md §11). Results are bitwise
// identical to ilu0() under every strategy because each row's arithmetic
// — the step order, the update order within a step, the divisions — is
// exactly the sequential IKJ loop's, and a row only ever reads rows that
// have fully retired.
//
// Lifetime: the plan copies the pattern it was built from (it outlives
// the matrix); factorize() validates each incoming matrix against that
// pattern and throws on mismatch. One caller at a time, like
// TrisolvePlan.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/advisor.hpp"
#include "core/doconsider.hpp"
#include "core/ready_table.hpp"
#include "runtime/aligned.hpp"
#include "runtime/barrier.hpp"
#include "runtime/failure.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/csr.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/trisolve_plan.hpp"

namespace pdx::sparse {

struct FactorPlanOptions {
  /// Region width; 0 → the pool's full width (fixed at build time).
  unsigned nthreads = 0;
  /// Executor schedule for the flag-based doacross strategy.
  rt::Schedule schedule = rt::Schedule::dynamic();
  /// Run the doacross strategy in doconsider (level) order. Under kAuto
  /// the advisor owns this knob, exactly like PlanOptions::reorder.
  bool reorder = true;
  /// Execution scheme for the numeric phase. kAuto measures the lower
  /// pattern's dependence structure at build time and takes
  /// core::advise_factor_schedule's pick as the opening bid
  /// (factorization rows carry ~nnz/row times the work of a solve row,
  /// so synchronization amortizes sooner than the solve advisor
  /// assumes); with a viable race the first factorize() calls then time
  /// every strategy and lock in the measured winner — same calibration
  /// protocol as TrisolvePlan (DESIGN.md §13).
  ExecutionStrategy strategy = ExecutionStrategy::kAuto;
  /// Calibration budget under kAuto: timed factorizations per candidate
  /// strategy before the race locks in. 0 keeps the heuristic pick.
  int calibration_epochs = 2;
  /// Consult (and feed) the process-wide core::TuningCache (keyed with
  /// factor=true — solve winners never leak into factorization picks).
  bool use_tuning_cache = true;
  /// Stall watchdog budget in spin rounds for every in-region wait
  /// (flags and barriers); 0 (default) disarms the watchdog. See
  /// PlanOptions::stall_budget.
  std::uint64_t stall_budget = 0;
  /// Zero/non-finite pivot recovery (DESIGN.md §12). The substitution is
  /// applied at pivot production, before the row is published, so every
  /// execution strategy produces factors bitwise identical to
  /// ilu0(a, pivot).
  PivotOptions pivot;
  /// Lane-kernel selection for the scatter updates (DESIGN.md §14).
  /// kAuto runs the dispatched vector table and — when a vector ISA is
  /// present and calibration_epochs > 0 — races it against scalar on the
  /// factorizations after the strategy race locks in; kScalar pins the
  /// reference table; kVector pins the vector table. The bitwise
  /// gather_axpy kernel is used in every case, so factors stay bitwise
  /// identical to ilu0() — unless ulp_tolerance below opts out.
  kernels::KernelChoice kernel = kernels::KernelChoice::kAuto;
  /// Opt-in fused scatter updates. 0 (default) keeps the bitwise
  /// mul+sub gather kernel. A positive value states the caller accepts
  /// one-rounding-per-update (FMA-level) deviation from ilu0() in
  /// exchange for gather_axpy_fma; ignored when the resolved table is
  /// scalar.
  double ulp_tolerance = 0.0;
};

/// What one numeric factorization cost.
struct FactorStats {
  double factor_seconds = 0.0;
  std::uint64_t wait_episodes = 0;
  std::uint64_t wait_rounds = 0;
  /// Bad pivots substituted in the accepted pass (kShift/kReplace only).
  std::uint64_t pivot_shifts = 0;
  /// The substitute value the accepted pass used (0.0 when clean).
  double pivot_shift = 0.0;
  /// Numeric passes run (> 1 only under kShift escalation).
  int shift_passes = 1;
};

/// What the plan decided and owns — reported by benches and forwarded
/// (as PlanTelemetry::factor_*) by the solve layer.
struct FactorTelemetry {
  ExecutionStrategy requested = ExecutionStrategy::kAuto;
  /// The resolved strategy (never kAuto).
  ExecutionStrategy strategy = ExecutionStrategy::kSerial;
  /// The advisor's reason under kAuto; "strategy fixed by caller"
  /// otherwise. Rewritten when a calibration race locks in its winner.
  std::string rationale;
  /// The empirical calibration record (DESIGN.md §13).
  core::StrategyRace race;
  /// Measured structure of the lower pattern (populated under kAuto).
  core::TrisolveStructure structure;
  /// Processor count the decision assumed.
  unsigned procs = 0;
  /// Bytes of the symbolic products (scatter maps, step tables, pattern
  /// copy, working array) the plan owns.
  std::size_t symbolic_bytes = 0;
  /// Heap footprint of one allocated factor pair (Csr::memory_bytes()
  /// over L and U) — what allocate_factors() costs the caller.
  std::size_t factor_bytes = 0;
  /// Lifetime count of substituted pivots across every factorize() call.
  std::uint64_t total_pivot_shifts = 0;
  /// Substitute value of the most recent factorize that shifted (0.0 if
  /// the plan has never shifted a pivot).
  double last_shift = 0.0;
  /// The process-wide dispatched ISA (CPUID + PDX_KERNEL; DESIGN.md §14).
  kernels::KernelIsa isa = kernels::KernelIsa::kScalar;
  /// The resolved kernel choice the scatter updates run (never kAuto
  /// after construction; the current race candidate while a kernel race
  /// is exploring, the measured winner once locked in).
  kernels::KernelChoice kernel = kernels::KernelChoice::kScalar;
  /// The scalar-vs-vector kernel race record (armed only for kAuto
  /// kernels on machines with a vector ISA; fed by the factorizations
  /// after the strategy race locks in).
  kernels::KernelRaceState kernel_race;
};

/// Persistent ILU(0) plan over one sparsity pattern: symbolic phase at
/// construction, then parallel zero-allocation numeric factorizations of
/// any matrix sharing the pattern.
class FactorPlan {
 public:
  /// Symbolic phase over `a`'s pattern (square, sorted rows, explicit
  /// diagonal in every row). `a`'s values are not read and `a` need not
  /// outlive the plan.
  FactorPlan(rt::ThreadPool& pool, const Csr& a,
             const FactorPlanOptions& opts = {});

  // The pre-bound region functor captures `this`.
  FactorPlan(const FactorPlan&) = delete;
  FactorPlan& operator=(const FactorPlan&) = delete;

  /// Allocate an L/U pair with the plan's split pattern: L = strictly
  /// lower + explicit unit diagonal (1.0, last in each row), U = diagonal
  /// + strictly upper. Exact-size allocations; values are zero except L's
  /// unit diagonal until factorize() fills them. The returned factors are
  /// what TrisolvePlan / refresh_values consume.
  IluFactors allocate_factors() const;

  /// Numeric phase: factor `a` (same pattern as the plan's) into `f`
  /// (allocated by allocate_factors(), or any factor pair with the
  /// identical split pattern — e.g. a previous ilu0(a) result, whose
  /// values are simply overwritten). At most one pool fork/join (zero for
  /// kSerial), zero heap allocation, values bitwise identical to
  /// ilu0(a). Throws std::invalid_argument on a pattern mismatch (before
  /// any value is written) and std::runtime_error on a zero/invalid
  /// pivot — after the region completes, since workers must never throw
  /// while peers may be spinning on their flags. On the pivot throw `f`
  /// holds the failed factorization's (inf/NaN-contaminated) values; a
  /// subsequent successful factorize rewrites every value and recovers
  /// it.
  FactorStats factorize(const Csr& a, IluFactors& f);

  index_t rows() const noexcept { return n_; }
  unsigned nthreads() const noexcept { return nth_; }
  /// The resolved execution strategy (never kAuto; the current race
  /// candidate while calibrating()).
  ExecutionStrategy strategy() const noexcept { return telemetry_.strategy; }
  /// True while a kAuto calibration race is still exploring — the next
  /// factorize() calls time the remaining candidates (bitwise identical
  /// factors throughout) before the plan locks in.
  bool calibrating() const noexcept { return calibrating_; }
  const FactorTelemetry& telemetry() const noexcept { return telemetry_; }
  /// Completed factorize() calls.
  std::uint64_t factorizations() const noexcept { return factorizations_; }
  /// True once an in-region fault poisoned the plan (a worker threw or
  /// stalled mid-factorization); every later factorize() throws
  /// rt::PlanPoisonedError. A clean pivot throw does NOT poison — a
  /// refactorize with good values recovers the plan.
  bool poisoned() const noexcept { return poisoned_; }
  /// Attach a fault-injection harness (tests only); nullptr detaches.
  void set_fault_injector(rt::FaultInjector* injector) noexcept {
    injector_ = injector;
  }

 private:
  template <class WaitFn>
  void factor_row(index_t i, WaitFn&& wait);
  bool split_idx_matches(const IluFactors& f) const noexcept;
  void bind_region();
  void build_symbolic(const Csr& a);
  /// Resolve FactorPlanOptions::kernel against the dispatched ISA and arm
  /// the scalar-vs-vector race for kAuto kernels (DESIGN.md §14).
  void resolve_kernel() noexcept;
  /// Swap the active LaneOps table and re-resolve the scatter-update
  /// entry point (gather_axpy, or gather_axpy_fma under ulp_tolerance).
  void set_lanes(const kernels::LaneOps* ops) noexcept;
  /// Kernel-race bookkeeping after a successful non-exploration
  /// factorize(); locks in the measured winner at budget end.
  void note_kernel_epoch(double seconds) noexcept;
  /// Point the plan at strategy `s` (telemetry, doacross configuration,
  /// guard site); callers rebind the region after.
  void set_strategy_state(ExecutionStrategy s);
  /// Race bookkeeping after each SUCCESSFUL factorize() while exploring;
  /// mirrors TrisolvePlan::note_calibration_epoch (DESIGN.md §13).
  void note_calibration_epoch(double seconds);
  void finish_calibration();

  rt::ThreadPool* pool_;
  FactorPlanOptions opts_;
  index_t n_ = 0;
  unsigned nth_ = 0;
  FactorTelemetry telemetry_;

  // --- symbolic products (pattern-derived, built once) ---
  std::vector<index_t> ptr_, idx_;     // pattern copy (validation + kernel)
  std::vector<index_t> diag_;          // position of (i, i) in idx_/w_
  std::vector<index_t> lptr_, uptr_;   // row pointers of the split factors
  // Elimination steps: row i's steps are [row_step_ptr_[i],
  // row_step_ptr_[i+1]); step s eliminates with pivot row idx_[lik_pos_[s]]
  // whose diagonal lives at pivot_pos_[s], and applies the update pairs
  // w[upd_tgt_[t]] -= lik * w[upd_src_[t]] for t in [upd_ptr_[s],
  // upd_ptr_[s+1]) — the scatter of the sequential IKJ loop compiled to a
  // flat stream.
  std::vector<index_t> row_step_ptr_, lik_pos_, pivot_pos_;
  std::vector<index_t> upd_ptr_, upd_tgt_, upd_src_;
  std::unique_ptr<core::Reordering> order_;  // doconsider levels (lower pattern)

  // --- numeric scratch (allocated once, reused every factorize) ---
  std::vector<double, rt::CacheAlignedAllocator<double>> w_;
  core::EpochReadyTable ready_;
  rt::Barrier barrier_;
  std::atomic<index_t> cursor_{0};
  std::vector<rt::Padded<std::uint64_t>> episodes_, rounds_;
  std::atomic<index_t> bad_row_{-1};
  rt::FailureLatch latch_;
  rt::WaitGuard guard_;  // latch + stall budget shared by every flag wait
  bool poisoned_ = false;
  rt::FaultInjector* injector_ = nullptr;

  // kAuto calibration race state (DESIGN.md §13), advanced by successful
  // factorize() calls.
  bool calibrating_ = false;
  std::vector<ExecutionStrategy> candidates_;
  std::size_t cand_idx_ = 0;
  int cand_epoch_ = 0;
  core::TuningKey tuning_key_{};
  bool have_tuning_key_ = false;

  // Lane-kernel state (DESIGN.md §14): the active table, the resolved
  // scatter-update entry point (bitwise gather_axpy, or gather_axpy_fma
  // when the caller opted into ulp_tolerance on a vector table), and the
  // scalar-vs-vector race fed by post-lock-in factorizations.
  const kernels::LaneOps* lanes_ = nullptr;
  void (*gather_)(double*, const index_t*, const index_t*, index_t,
                  double) = nullptr;
  kernels::Race kernel_race_;

  /// Substituted pivots of the current pass (kShift/kReplace).
  std::atomic<std::uint64_t> shift_count_{0};
  /// Substitute value of the current kShift pass (escalates per pass).
  double shift_sigma_ = 0.0;

  // Per-call endpoints, published to the pre-bound region functor through
  // members (same trick as TrisolvePlan: the std::function is constructed
  // exactly once, so factorize() never allocates).
  const double* aval_ = nullptr;
  double* lval_ = nullptr;
  double* uval_ = nullptr;

  // Buffers that already passed the full O(nnz) pattern validation; a
  // steady-state factorize over the same buffers skips straight to the
  // numeric phase.
  const index_t* checked_ptr_ = nullptr;
  const index_t* checked_idx_ = nullptr;
  const index_t* checked_lidx_ = nullptr;
  const index_t* checked_uidx_ = nullptr;

  rt::ThreadPool::RegionFn region_;
  std::uint64_t factorizations_ = 0;
};

}  // namespace pdx::sparse
