#include "sparse/trisolve_plan.hpp"

#include <cassert>
#include <chrono>
#include <stdexcept>

#include "runtime/schedule.hpp"
#include "sparse/levels.hpp"
#include "sparse/trisolve.hpp"

namespace pdx::sparse {

namespace {

void check_factor(const Csr& m, const char* what) {
  if (m.rows != m.cols) {
    throw std::invalid_argument(std::string("TrisolvePlan: ") + what +
                                " factor is not square");
  }
}

}  // namespace

bool TrisolvePlan::needs_reordering() const noexcept {
  // Both factors build (or skip) their doconsider analyses by the same
  // rule: level-barrier executes the levels themselves; doacross uses
  // the order only when asked to.
  return telemetry_.strategy == ExecutionStrategy::kLevelBarrier ||
         (telemetry_.strategy == ExecutionStrategy::kDoacross &&
          opts_.reorder);
}

void TrisolvePlan::resolve_strategy() {
  telemetry_.requested = opts_.strategy;
  telemetry_.procs = nth_;
  if (opts_.strategy == ExecutionStrategy::kAuto) {
    // The inspector pass of the strategy decision: the doconsider
    // analysis (levels, widths) plus an O(nnz) distance scan. The
    // reordering is kept — if the advisor lands on doacross or
    // level-barrier it is the execution order.
    l_order_ =
        std::make_unique<core::Reordering>(lower_solve_reordering(*l_));
    telemetry_.structure = measure_lower_solve(*l_, *l_order_);
    core::ScheduleAdvice advice =
        core::advise_schedule(telemetry_.structure, nth_);
    telemetry_.strategy = advice.strategy;
    telemetry_.rationale = std::move(advice.rationale);
    if (advice.strategy == ExecutionStrategy::kDoacross) {
      // Auto owns the executor configuration: adopt the advised schedule
      // and ordering for the flag-based path.
      opts_.schedule = advice.schedule;
      opts_.reorder = advice.use_reordering;
    }
  } else {
    telemetry_.strategy = opts_.strategy;
    telemetry_.rationale = "strategy fixed by caller";
  }
}

void TrisolvePlan::bind_lower_region() {
  // Region functors are bound once, here; per-call inputs travel through
  // the lo_/up_ pointer members. This is what makes solve_* allocation
  // free: a fresh capturing lambda would not fit std::function's small
  // buffer and would heap-allocate on every call.
  switch (telemetry_.strategy) {
    case ExecutionStrategy::kDoacross:
      lower_region_ = [this](unsigned tid, unsigned nthreads) {
        std::uint64_t eps = 0, rds = 0;
        lower_kernel(lo_rhs_, lo_y_, tid, nthreads, eps, rds);
        episodes_[tid].value = eps;
        rounds_[tid].value = rds;
      };
      break;
    case ExecutionStrategy::kLevelBarrier:
      lower_region_ = [this](unsigned tid, unsigned nthreads) {
        lower_levels_kernel(lo_rhs_, lo_y_, tid, nthreads);
        episodes_[tid].value = 0;
        rounds_[tid].value = 0;
      };
      break;
    case ExecutionStrategy::kBlockedHybrid:
      lower_region_ = [this](unsigned tid, unsigned nthreads) {
        std::uint64_t eps = 0, rds = 0;
        lower_blocked_kernel(lo_rhs_, lo_y_, tid, nthreads, eps, rds);
        episodes_[tid].value = eps;
        rounds_[tid].value = rds;
      };
      break;
    case ExecutionStrategy::kSerial:
      lower_region_ = [this](unsigned, unsigned) {
        serial_lower(lo_rhs_, lo_y_);
      };
      break;
    case ExecutionStrategy::kAuto:
      break;  // unreachable: resolve_strategy() never leaves kAuto
  }
}

void TrisolvePlan::bind_upper_regions() {
  switch (telemetry_.strategy) {
    case ExecutionStrategy::kDoacross:
      upper_region_ = [this](unsigned tid, unsigned nthreads) {
        std::uint64_t eps = 0, rds = 0;
        upper_kernel(up_rhs_, up_y_, tid, nthreads, eps, rds);
        episodes_[tid].value = eps;
        rounds_[tid].value = rds;
      };
      fused_region_ = [this](unsigned tid, unsigned nthreads) {
        std::uint64_t eps = 0, rds = 0;
        lower_kernel(lo_rhs_, lo_y_, tid, nthreads, eps, rds);
        // The one synchronization point of a fused preconditioner
        // application: every tmp_ element is published before any thread
        // starts consuming it in the backward solve. The busy-wait flags
        // handle everything else on both sides.
        barrier_.arrive_and_wait();
        upper_kernel(up_rhs_, up_y_, tid, nthreads, eps, rds);
        episodes_[tid].value = eps;
        rounds_[tid].value = rds;
      };
      batch_region_ = [this](unsigned tid, unsigned nthreads) {
        std::uint64_t eps = 0, rds = 0;
        if (batch_mode_ == BatchMode::kWavefrontInterleaved) {
          // One doacross pass per factor; every row carries all k columns.
          lower_kernel_multi(tid, nthreads, eps, rds);
          barrier_.arrive_and_wait();
          upper_kernel_multi(tid, nthreads, eps, rds);
        } else {
          for (index_t c = 0; c < batch_k_; ++c) {
            if (c > 0) {
              // Column boundary: the first barrier guarantees every
              // thread is done with column c-1's flags; thread 0 re-arms
              // both epoch tables and cursors; the second barrier
              // publishes the new epoch before any thread of column c
              // waits on a flag.
              barrier_.arrive_and_wait();
              if (tid == 0) reset_for_call(/*lower=*/true, /*upper=*/true);
              barrier_.arrive_and_wait();
            }
            lower_kernel(batch_b_[static_cast<std::size_t>(c)], tmp_.data(),
                         tid, nthreads, eps, rds);
            barrier_.arrive_and_wait();
            upper_kernel(tmp_.data(),
                         batch_x_[static_cast<std::size_t>(c)], tid,
                         nthreads, eps, rds);
          }
        }
        episodes_[tid].value = eps;
        rounds_[tid].value = rds;
      };
      break;
    case ExecutionStrategy::kLevelBarrier:
      // No flags anywhere: the trailing barrier of each level loop is
      // also the L→U handoff and the column boundary, so neither the
      // fused nor the batched region needs any extra synchronization or
      // epoch re-arming.
      upper_region_ = [this](unsigned tid, unsigned nthreads) {
        upper_levels_kernel(up_rhs_, up_y_, tid, nthreads);
        episodes_[tid].value = 0;
        rounds_[tid].value = 0;
      };
      fused_region_ = [this](unsigned tid, unsigned nthreads) {
        lower_levels_kernel(lo_rhs_, lo_y_, tid, nthreads);
        upper_levels_kernel(up_rhs_, up_y_, tid, nthreads);
        episodes_[tid].value = 0;
        rounds_[tid].value = 0;
      };
      batch_region_ = [this](unsigned tid, unsigned nthreads) {
        if (batch_mode_ == BatchMode::kWavefrontInterleaved) {
          lower_levels_multi(tid, nthreads);
          upper_levels_multi(tid, nthreads);
        } else {
          for (index_t c = 0; c < batch_k_; ++c) {
            lower_levels_kernel(batch_b_[static_cast<std::size_t>(c)],
                                tmp_.data(), tid, nthreads);
            upper_levels_kernel(tmp_.data(),
                                batch_x_[static_cast<std::size_t>(c)], tid,
                                nthreads);
          }
        }
        episodes_[tid].value = 0;
        rounds_[tid].value = 0;
      };
      break;
    case ExecutionStrategy::kBlockedHybrid:
      upper_region_ = [this](unsigned tid, unsigned nthreads) {
        std::uint64_t eps = 0, rds = 0;
        upper_blocked_kernel(up_rhs_, up_y_, tid, nthreads, eps, rds);
        episodes_[tid].value = eps;
        rounds_[tid].value = rds;
      };
      fused_region_ = [this](unsigned tid, unsigned nthreads) {
        std::uint64_t eps = 0, rds = 0;
        lower_blocked_kernel(lo_rhs_, lo_y_, tid, nthreads, eps, rds);
        barrier_.arrive_and_wait();
        upper_blocked_kernel(up_rhs_, up_y_, tid, nthreads, eps, rds);
        episodes_[tid].value = eps;
        rounds_[tid].value = rds;
      };
      batch_region_ = [this](unsigned tid, unsigned nthreads) {
        std::uint64_t eps = 0, rds = 0;
        if (batch_mode_ == BatchMode::kWavefrontInterleaved) {
          lower_blocked_multi(tid, nthreads, eps, rds);
          barrier_.arrive_and_wait();
          upper_blocked_multi(tid, nthreads, eps, rds);
        } else {
          for (index_t c = 0; c < batch_k_; ++c) {
            if (c > 0) {
              barrier_.arrive_and_wait();
              if (tid == 0) reset_for_call(/*lower=*/true, /*upper=*/true);
              barrier_.arrive_and_wait();
            }
            lower_blocked_kernel(batch_b_[static_cast<std::size_t>(c)],
                                 tmp_.data(), tid, nthreads, eps, rds);
            barrier_.arrive_and_wait();
            upper_blocked_kernel(tmp_.data(),
                                 batch_x_[static_cast<std::size_t>(c)], tid,
                                 nthreads, eps, rds);
          }
        }
        episodes_[tid].value = eps;
        rounds_[tid].value = rds;
      };
      break;
    case ExecutionStrategy::kSerial:
      // These run inline on the calling thread (dispatch() never enters
      // the pool for a serial plan); tid/nthreads are (0, 1).
      upper_region_ = [this](unsigned, unsigned) {
        serial_upper(up_rhs_, up_y_);
      };
      fused_region_ = [this](unsigned, unsigned) {
        serial_lower(lo_rhs_, lo_y_);
        serial_upper(up_rhs_, up_y_);
      };
      batch_region_ = [this](unsigned, unsigned) {
        for (index_t c = 0; c < batch_k_; ++c) {
          serial_lower(batch_b_[static_cast<std::size_t>(c)], tmp_.data());
          serial_upper(tmp_.data(), batch_x_[static_cast<std::size_t>(c)]);
        }
      };
      break;
    case ExecutionStrategy::kAuto:
      break;  // unreachable
  }
}

TrisolvePlan::TrisolvePlan(rt::ThreadPool& pool, const Csr& l,
                           const PlanOptions& opts)
    : pool_(&pool),
      l_(&l),
      u_(nullptr),
      opts_(opts),
      n_(l.rows),
      nth_(pool.clamp_threads(opts.nthreads)),
      barrier_(nth_ == 0 ? 1 : nth_) {
  check_factor(l, "lower");
  ready_l_.ensure_size(n_);
  episodes_.resize(nth_);
  rounds_.resize(nth_);
  resolve_strategy();
  if (needs_reordering() && !l_order_) {
    l_order_ = std::make_unique<core::Reordering>(lower_solve_reordering(l));
  }
  if (!needs_reordering()) {
    l_order_.reset();  // kSerial / kBlockedHybrid run in source order
  }
  bind_lower_region();
}

TrisolvePlan::TrisolvePlan(rt::ThreadPool& pool, const Csr& l, const Csr& u,
                           const PlanOptions& opts)
    : TrisolvePlan(pool, l, opts) {  // all lower-solve state
  check_factor(u, "upper");
  if (u.rows != l.rows) {
    throw std::invalid_argument("TrisolvePlan: L/U dimension mismatch");
  }
  u_ = &u;
  ready_u_.ensure_size(n_);
  tmp_.resize(static_cast<std::size_t>(n_));
  if (needs_reordering()) {
    u_order_ = std::make_unique<core::Reordering>(upper_solve_reordering(u));
  }
  bind_upper_regions();
}

void TrisolvePlan::lower_kernel(const double* rhs_p, double* yp, unsigned tid,
                                unsigned nthreads, std::uint64_t& episodes,
                                std::uint64_t& rounds) noexcept {
  const Csr& l = *l_;
  const index_t* order = l_order_ ? l_order_->order.data() : nullptr;
  const int work_reps = opts_.work_reps;
  std::uint64_t my_episodes = 0, my_rounds = 0;
  // Identical arithmetic (term order, division) to trisolve_lower_seq —
  // results are bitwise equal; the ready flags only sequence the reads.
  auto solve_row = [&](index_t k) noexcept {
    const index_t i = order ? order[k] : k;
    double acc = rhs_p[i];
    const index_t k_end = l.row_end(i) - 1;  // diagonal last
    for (index_t kk = l.row_begin(i); kk < k_end; ++kk) {
      const index_t c = l.idx[static_cast<std::size_t>(kk)];
      const std::uint64_t r = ready_l_.wait_done(c);
      if (r != 0) {
        ++my_episodes;
        my_rounds += r;
      }
      acc -= l.val[static_cast<std::size_t>(kk)] * yp[c];
      if (work_reps > 0) acc = machine_emulation_work(acc, work_reps);
    }
    yp[i] = acc / l.val[static_cast<std::size_t>(k_end)];
    ready_l_.mark_done(i);  // release-publishes the y store
  };
  rt::schedule_run(opts_.schedule, n_, tid, nthreads, &cursor_l_, solve_row);
  episodes += my_episodes;
  rounds += my_rounds;
}

void TrisolvePlan::upper_kernel(const double* rhs_p, double* yp, unsigned tid,
                                unsigned nthreads, std::uint64_t& episodes,
                                std::uint64_t& rounds) noexcept {
  const Csr& u = *u_;
  const index_t* order = u_order_ ? u_order_->order.data() : nullptr;
  std::uint64_t my_episodes = 0, my_rounds = 0;
  auto solve_row = [&](index_t k) noexcept {
    const index_t i = order ? order[k] : n_ - 1 - k;
    double acc = rhs_p[i];
    const index_t k_diag = u.row_begin(i);  // diagonal first
    for (index_t kk = k_diag + 1; kk < u.row_end(i); ++kk) {
      const index_t c = u.idx[static_cast<std::size_t>(kk)];
      const std::uint64_t r = ready_u_.wait_done(c);
      if (r != 0) {
        ++my_episodes;
        my_rounds += r;
      }
      acc -= u.val[static_cast<std::size_t>(kk)] * yp[c];
    }
    yp[i] = acc / u.val[static_cast<std::size_t>(k_diag)];
    ready_u_.mark_done(i);
  };
  rt::schedule_run(opts_.schedule, n_, tid, nthreads, &cursor_u_, solve_row);
  episodes += my_episodes;
  rounds += my_rounds;
}

void TrisolvePlan::lower_kernel_multi(unsigned tid, unsigned nthreads,
                                      std::uint64_t& episodes,
                                      std::uint64_t& rounds) noexcept {
  const Csr& l = *l_;
  const index_t* order = l_order_ ? l_order_->order.data() : nullptr;
  const index_t k = batch_k_;
  const double* const* b_cols = batch_b_.data();
  double* tp = batch_tmp_.data();
  const int work_reps = opts_.work_reps;
  std::uint64_t my_episodes = 0, my_rounds = 0;
  // Column c runs the exact arithmetic of lower_kernel on b_cols[c] (term
  // order, division) — bitwise equal per column. One ready flag per row
  // covers all k columns: a dependence is waited on once, not k times,
  // and the row's indices/values are read once for the whole batch.
  // Row i's k results accumulate in place in the row-major strip, where
  // consumers read them contiguously.
  auto solve_row = [&](index_t pos) noexcept {
    const index_t i = order ? order[pos] : pos;
    double* ti = tp + i * k;
    for (index_t c = 0; c < k; ++c) ti[c] = b_cols[c][i];
    const index_t k_end = l.row_end(i) - 1;  // diagonal last
    for (index_t kk = l.row_begin(i); kk < k_end; ++kk) {
      const index_t col = l.idx[static_cast<std::size_t>(kk)];
      const std::uint64_t r = ready_l_.wait_done(col);
      if (r != 0) {
        ++my_episodes;
        my_rounds += r;
      }
      const double a = l.val[static_cast<std::size_t>(kk)];
      const double* tc = tp + col * k;
      for (index_t c = 0; c < k; ++c) {
        ti[c] -= a * tc[c];
        if (work_reps > 0) ti[c] = machine_emulation_work(ti[c], work_reps);
      }
    }
    const double d = l.val[static_cast<std::size_t>(k_end)];
    for (index_t c = 0; c < k; ++c) ti[c] /= d;
    ready_l_.mark_done(i);  // release-publishes all k stores of this row
  };
  rt::schedule_run(opts_.schedule, n_, tid, nthreads, &cursor_l_, solve_row);
  episodes += my_episodes;
  rounds += my_rounds;
}

void TrisolvePlan::upper_kernel_multi(unsigned tid, unsigned nthreads,
                                      std::uint64_t& episodes,
                                      std::uint64_t& rounds) noexcept {
  const Csr& u = *u_;
  const index_t* order = u_order_ ? u_order_->order.data() : nullptr;
  const index_t k = batch_k_;
  double* const* x_cols = batch_x_.data();
  double* tp = batch_tmp_.data();
  std::uint64_t my_episodes = 0, my_rounds = 0;
  // Row i's strip holds the forward-solve results on entry and is updated
  // in place into the backward-solve solution; the solution stays
  // resident in the strip (consumers read it contiguously) and is
  // mirrored into the caller's column vectors before the row is marked.
  auto solve_row = [&](index_t pos) noexcept {
    const index_t i = order ? order[pos] : n_ - 1 - pos;
    double* ti = tp + i * k;
    const index_t k_diag = u.row_begin(i);  // diagonal first
    for (index_t kk = k_diag + 1; kk < u.row_end(i); ++kk) {
      const index_t col = u.idx[static_cast<std::size_t>(kk)];
      const std::uint64_t r = ready_u_.wait_done(col);
      if (r != 0) {
        ++my_episodes;
        my_rounds += r;
      }
      const double a = u.val[static_cast<std::size_t>(kk)];
      const double* tc = tp + col * k;
      for (index_t c = 0; c < k; ++c) ti[c] -= a * tc[c];
    }
    const double d = u.val[static_cast<std::size_t>(k_diag)];
    for (index_t c = 0; c < k; ++c) {
      ti[c] /= d;
      x_cols[c][i] = ti[c];
    }
    ready_u_.mark_done(i);
  };
  rt::schedule_run(opts_.schedule, n_, tid, nthreads, &cursor_u_, solve_row);
  episodes += my_episodes;
  rounds += my_rounds;
}

void TrisolvePlan::lower_levels_kernel(const double* rhs_p, double* yp,
                                       unsigned tid,
                                       unsigned nthreads) noexcept {
  // Bulk-synchronous wavefronts: every producer of level l finished
  // before the barrier that opens level l+1, so no flags are consulted
  // or published. Row arithmetic is identical to lower_kernel.
  const Csr& l = *l_;
  const core::Reordering& ord = *l_order_;
  const int work_reps = opts_.work_reps;
  for (index_t lvl = 0; lvl < ord.num_levels(); ++lvl) {
    const index_t lo = ord.level_ptr[static_cast<std::size_t>(lvl)];
    const index_t hi = ord.level_ptr[static_cast<std::size_t>(lvl) + 1];
    const rt::IterRange r = rt::static_block_range(hi - lo, tid, nthreads);
    for (index_t k = lo + r.begin; k < lo + r.end; ++k) {
      const index_t i = ord.order[static_cast<std::size_t>(k)];
      double acc = rhs_p[i];
      const index_t k_end = l.row_end(i) - 1;  // diagonal last
      for (index_t kk = l.row_begin(i); kk < k_end; ++kk) {
        acc -= l.val[static_cast<std::size_t>(kk)] *
               yp[l.idx[static_cast<std::size_t>(kk)]];
        if (work_reps > 0) acc = machine_emulation_work(acc, work_reps);
      }
      yp[i] = acc / l.val[static_cast<std::size_t>(k_end)];
    }
    // The trailing episode doubles as the L→U handoff of a fused solve.
    barrier_.arrive_and_wait();
  }
}

void TrisolvePlan::upper_levels_kernel(const double* rhs_p, double* yp,
                                       unsigned tid,
                                       unsigned nthreads) noexcept {
  const Csr& u = *u_;
  const core::Reordering& ord = *u_order_;
  for (index_t lvl = 0; lvl < ord.num_levels(); ++lvl) {
    const index_t lo = ord.level_ptr[static_cast<std::size_t>(lvl)];
    const index_t hi = ord.level_ptr[static_cast<std::size_t>(lvl) + 1];
    const rt::IterRange r = rt::static_block_range(hi - lo, tid, nthreads);
    for (index_t k = lo + r.begin; k < lo + r.end; ++k) {
      const index_t i = ord.order[static_cast<std::size_t>(k)];
      double acc = rhs_p[i];
      const index_t k_diag = u.row_begin(i);  // diagonal first
      for (index_t kk = k_diag + 1; kk < u.row_end(i); ++kk) {
        acc -= u.val[static_cast<std::size_t>(kk)] *
               yp[u.idx[static_cast<std::size_t>(kk)]];
      }
      yp[i] = acc / u.val[static_cast<std::size_t>(k_diag)];
    }
    barrier_.arrive_and_wait();
  }
}

void TrisolvePlan::lower_levels_multi(unsigned tid,
                                      unsigned nthreads) noexcept {
  const Csr& l = *l_;
  const core::Reordering& ord = *l_order_;
  const index_t k = batch_k_;
  const double* const* b_cols = batch_b_.data();
  double* tp = batch_tmp_.data();
  const int work_reps = opts_.work_reps;
  for (index_t lvl = 0; lvl < ord.num_levels(); ++lvl) {
    const index_t lo = ord.level_ptr[static_cast<std::size_t>(lvl)];
    const index_t hi = ord.level_ptr[static_cast<std::size_t>(lvl) + 1];
    const rt::IterRange r = rt::static_block_range(hi - lo, tid, nthreads);
    for (index_t pos = lo + r.begin; pos < lo + r.end; ++pos) {
      const index_t i = ord.order[static_cast<std::size_t>(pos)];
      double* ti = tp + i * k;
      for (index_t c = 0; c < k; ++c) ti[c] = b_cols[c][i];
      const index_t k_end = l.row_end(i) - 1;
      for (index_t kk = l.row_begin(i); kk < k_end; ++kk) {
        const double a = l.val[static_cast<std::size_t>(kk)];
        const double* tc =
            tp + l.idx[static_cast<std::size_t>(kk)] * k;
        for (index_t c = 0; c < k; ++c) {
          ti[c] -= a * tc[c];
          if (work_reps > 0) ti[c] = machine_emulation_work(ti[c], work_reps);
        }
      }
      const double d = l.val[static_cast<std::size_t>(k_end)];
      for (index_t c = 0; c < k; ++c) ti[c] /= d;
    }
    barrier_.arrive_and_wait();
  }
}

void TrisolvePlan::upper_levels_multi(unsigned tid,
                                      unsigned nthreads) noexcept {
  const Csr& u = *u_;
  const core::Reordering& ord = *u_order_;
  const index_t k = batch_k_;
  double* const* x_cols = batch_x_.data();
  double* tp = batch_tmp_.data();
  for (index_t lvl = 0; lvl < ord.num_levels(); ++lvl) {
    const index_t lo = ord.level_ptr[static_cast<std::size_t>(lvl)];
    const index_t hi = ord.level_ptr[static_cast<std::size_t>(lvl) + 1];
    const rt::IterRange r = rt::static_block_range(hi - lo, tid, nthreads);
    for (index_t pos = lo + r.begin; pos < lo + r.end; ++pos) {
      const index_t i = ord.order[static_cast<std::size_t>(pos)];
      double* ti = tp + i * k;
      const index_t k_diag = u.row_begin(i);
      for (index_t kk = k_diag + 1; kk < u.row_end(i); ++kk) {
        const double a = u.val[static_cast<std::size_t>(kk)];
        const double* tc =
            tp + u.idx[static_cast<std::size_t>(kk)] * k;
        for (index_t c = 0; c < k; ++c) ti[c] -= a * tc[c];
      }
      const double d = u.val[static_cast<std::size_t>(k_diag)];
      for (index_t c = 0; c < k; ++c) {
        ti[c] /= d;
        x_cols[c][i] = ti[c];
      }
    }
    barrier_.arrive_and_wait();
  }
}

void TrisolvePlan::lower_blocked_kernel(const double* rhs_p, double* yp,
                                        unsigned tid, unsigned nthreads,
                                        std::uint64_t& episodes,
                                        std::uint64_t& rounds) noexcept {
  // Static contiguous blocks in source order: a dependence on a row this
  // thread owns was already retired (rows run in increasing order), so
  // only boundary-crossing dependences — c before my block's first row —
  // consult a flag. Every row is still published — marking is one release
  // store, and whether a consumer exists in another block is not worth a
  // build-time scan to know.
  const Csr& l = *l_;
  const int work_reps = opts_.work_reps;
  std::uint64_t my_episodes = 0, my_rounds = 0;
  const rt::IterRange range = rt::static_block_range(n_, tid, nthreads);
  for (index_t i = range.begin; i < range.end; ++i) {
    double acc = rhs_p[i];
    const index_t k_end = l.row_end(i) - 1;  // diagonal last
    for (index_t kk = l.row_begin(i); kk < k_end; ++kk) {
      const index_t c = l.idx[static_cast<std::size_t>(kk)];
      if (c < range.begin) {  // cross-block: the only flag traffic
        const std::uint64_t r = ready_l_.wait_done(c);
        if (r != 0) {
          ++my_episodes;
          my_rounds += r;
        }
      }
      acc -= l.val[static_cast<std::size_t>(kk)] * yp[c];
      if (work_reps > 0) acc = machine_emulation_work(acc, work_reps);
    }
    yp[i] = acc / l.val[static_cast<std::size_t>(k_end)];
    ready_l_.mark_done(i);
  }
  episodes += my_episodes;
  rounds += my_rounds;
}

void TrisolvePlan::upper_blocked_kernel(const double* rhs_p, double* yp,
                                        unsigned tid, unsigned nthreads,
                                        std::uint64_t& episodes,
                                        std::uint64_t& rounds) noexcept {
  const Csr& u = *u_;
  std::uint64_t my_episodes = 0, my_rounds = 0;
  // Position space of the backward solve: position k is row n-1-k, so
  // this thread's block is a contiguous run of *descending* rows topped
  // by row n-1-range.begin; every intra-block dependence (c > i up to
  // that top row) is already retired, only rows above it need the flag.
  const rt::IterRange range = rt::static_block_range(n_, tid, nthreads);
  const index_t top = n_ - 1 - range.begin;
  for (index_t k = range.begin; k < range.end; ++k) {
    const index_t i = n_ - 1 - k;
    double acc = rhs_p[i];
    const index_t k_diag = u.row_begin(i);  // diagonal first
    for (index_t kk = k_diag + 1; kk < u.row_end(i); ++kk) {
      const index_t c = u.idx[static_cast<std::size_t>(kk)];
      if (c > top) {
        const std::uint64_t r = ready_u_.wait_done(c);
        if (r != 0) {
          ++my_episodes;
          my_rounds += r;
        }
      }
      acc -= u.val[static_cast<std::size_t>(kk)] * yp[c];
    }
    yp[i] = acc / u.val[static_cast<std::size_t>(k_diag)];
    ready_u_.mark_done(i);
  }
  episodes += my_episodes;
  rounds += my_rounds;
}

void TrisolvePlan::lower_blocked_multi(unsigned tid, unsigned nthreads,
                                       std::uint64_t& episodes,
                                       std::uint64_t& rounds) noexcept {
  const Csr& l = *l_;
  const index_t k = batch_k_;
  const double* const* b_cols = batch_b_.data();
  double* tp = batch_tmp_.data();
  const int work_reps = opts_.work_reps;
  std::uint64_t my_episodes = 0, my_rounds = 0;
  const rt::IterRange range = rt::static_block_range(n_, tid, nthreads);
  for (index_t i = range.begin; i < range.end; ++i) {
    double* ti = tp + i * k;
    for (index_t c = 0; c < k; ++c) ti[c] = b_cols[c][i];
    const index_t k_end = l.row_end(i) - 1;
    for (index_t kk = l.row_begin(i); kk < k_end; ++kk) {
      const index_t col = l.idx[static_cast<std::size_t>(kk)];
      if (col < range.begin) {
        const std::uint64_t r = ready_l_.wait_done(col);
        if (r != 0) {
          ++my_episodes;
          my_rounds += r;
        }
      }
      const double a = l.val[static_cast<std::size_t>(kk)];
      const double* tc = tp + col * k;
      for (index_t c = 0; c < k; ++c) {
        ti[c] -= a * tc[c];
        if (work_reps > 0) ti[c] = machine_emulation_work(ti[c], work_reps);
      }
    }
    const double d = l.val[static_cast<std::size_t>(k_end)];
    for (index_t c = 0; c < k; ++c) ti[c] /= d;
    ready_l_.mark_done(i);
  }
  episodes += my_episodes;
  rounds += my_rounds;
}

void TrisolvePlan::upper_blocked_multi(unsigned tid, unsigned nthreads,
                                       std::uint64_t& episodes,
                                       std::uint64_t& rounds) noexcept {
  const Csr& u = *u_;
  const index_t k = batch_k_;
  double* const* x_cols = batch_x_.data();
  double* tp = batch_tmp_.data();
  std::uint64_t my_episodes = 0, my_rounds = 0;
  const rt::IterRange range = rt::static_block_range(n_, tid, nthreads);
  const index_t top = n_ - 1 - range.begin;
  for (index_t pos = range.begin; pos < range.end; ++pos) {
    const index_t i = n_ - 1 - pos;
    double* ti = tp + i * k;
    const index_t k_diag = u.row_begin(i);
    for (index_t kk = k_diag + 1; kk < u.row_end(i); ++kk) {
      const index_t col = u.idx[static_cast<std::size_t>(kk)];
      if (col > top) {
        const std::uint64_t r = ready_u_.wait_done(col);
        if (r != 0) {
          ++my_episodes;
          my_rounds += r;
        }
      }
      const double a = u.val[static_cast<std::size_t>(kk)];
      const double* tc = tp + col * k;
      for (index_t c = 0; c < k; ++c) ti[c] -= a * tc[c];
    }
    const double d = u.val[static_cast<std::size_t>(k_diag)];
    for (index_t c = 0; c < k; ++c) {
      ti[c] /= d;
      x_cols[c][i] = ti[c];
    }
    ready_u_.mark_done(i);
  }
  episodes += my_episodes;
  rounds += my_rounds;
}

void TrisolvePlan::serial_lower(const double* rhs_p, double* yp) noexcept {
  // The strategy for chains is to pay NOTHING — no flags, no barrier, no
  // pool wake-up: exactly the sequential reference the bitwise contract
  // is defined against.
  trisolve_lower_seq(*l_,
                     std::span<const double>(rhs_p,
                                             static_cast<std::size_t>(n_)),
                     std::span<double>(yp, static_cast<std::size_t>(n_)),
                     opts_.work_reps);
}

void TrisolvePlan::serial_upper(const double* rhs_p, double* yp) noexcept {
  trisolve_upper_seq(*u_,
                     std::span<const double>(rhs_p,
                                             static_cast<std::size_t>(n_)),
                     std::span<double>(yp, static_cast<std::size_t>(n_)));
}

void TrisolvePlan::reset_for_call(bool lower, bool upper) noexcept {
  // The whole per-call reset: two O(1) epoch bumps and two counter
  // stores. Compare trisolve_doacross's per-call Barrier + two vector
  // allocations + O(n/p) flag sweep + extra barrier. (Flag-free
  // strategies pay the bumps too — they are two relaxed stores.)
  if (lower) {
    ready_l_.begin_epoch();
    cursor_l_.store(0, std::memory_order_relaxed);
  }
  if (upper) {
    ready_u_.begin_epoch();
    cursor_u_.store(0, std::memory_order_relaxed);
  }
}

core::DoacrossStats TrisolvePlan::dispatch(
    const rt::ThreadPool::RegionFn& region) {
  using clock = std::chrono::steady_clock;
  core::DoacrossStats stats;
  if (telemetry_.strategy == ExecutionStrategy::kSerial) {
    // The serial strategy's entire value is paying zero parallel
    // overhead: the region runs inline on the calling thread, the pool
    // is never woken, and there are no wait episodes to sum.
    const clock::time_point t0 = clock::now();
    region(0, 1);
    const clock::time_point t1 = clock::now();
    stats.execute_seconds = std::chrono::duration<double>(t1 - t0).count();
    ++solves_;
    return stats;
  }
  const clock::time_point t0 = clock::now();
  pool_->parallel_region(nth_, region);
  const clock::time_point t1 = clock::now();
  // Preprocessing was amortized at plan build and the postprocessing
  // sweep no longer exists, so the whole call is executor time (pool
  // wake-up included — the number a repeated caller actually pays).
  stats.execute_seconds = std::chrono::duration<double>(t1 - t0).count();
  for (unsigned t = 0; t < nth_; ++t) {
    stats.wait_episodes += episodes_[t].value;
    stats.wait_rounds += rounds_[t].value;
  }
  ++solves_;
  return stats;
}

core::DoacrossStats TrisolvePlan::solve_lower(std::span<const double> rhs,
                                              std::span<double> y) {
  if (static_cast<index_t>(rhs.size()) < n_ ||
      static_cast<index_t>(y.size()) < n_) {
    throw std::invalid_argument("TrisolvePlan::solve_lower: size mismatch");
  }
  if (n_ == 0) return {};
  reset_for_call(/*lower=*/true, /*upper=*/false);
  lo_rhs_ = rhs.data();
  lo_y_ = y.data();
  return dispatch(lower_region_);
}

core::DoacrossStats TrisolvePlan::solve_upper(std::span<const double> rhs,
                                              std::span<double> z) {
  if (!u_) {
    throw std::logic_error("TrisolvePlan::solve_upper: lower-only plan");
  }
  if (static_cast<index_t>(rhs.size()) < n_ ||
      static_cast<index_t>(z.size()) < n_) {
    throw std::invalid_argument("TrisolvePlan::solve_upper: size mismatch");
  }
  if (n_ == 0) return {};
  reset_for_call(/*lower=*/false, /*upper=*/true);
  up_rhs_ = rhs.data();
  up_y_ = z.data();
  return dispatch(upper_region_);
}

core::DoacrossStats TrisolvePlan::solve(std::span<const double> rhs,
                                        std::span<double> z) {
  if (!u_) {
    throw std::logic_error("TrisolvePlan::solve: lower-only plan");
  }
  if (static_cast<index_t>(rhs.size()) < n_ ||
      static_cast<index_t>(z.size()) < n_) {
    throw std::invalid_argument("TrisolvePlan::solve: size mismatch");
  }
  if (n_ == 0) return {};
  reset_for_call(/*lower=*/true, /*upper=*/true);
  lo_rhs_ = rhs.data();
  lo_y_ = tmp_.data();
  up_rhs_ = tmp_.data();
  up_y_ = z.data();
  return dispatch(fused_region_);
}

void TrisolvePlan::reserve_batch(index_t max_k, BatchMode mode) {
  if (max_k < 1) {
    throw std::invalid_argument("TrisolvePlan::reserve_batch: max_k < 1");
  }
  const std::size_t k = static_cast<std::size_t>(max_k);
  if (batch_b_.size() < k) {
    batch_b_.resize(k);
    batch_x_.resize(k);
  }
  // The n-by-k strip backs only the interleaved mode; column-sequential
  // batches keep the documented O(n) scratch (the plan's tmp_). A serial
  // plan runs every batch column-sequentially and never needs the strip.
  if (mode == BatchMode::kWavefrontInterleaved &&
      telemetry_.strategy != ExecutionStrategy::kSerial) {
    const std::size_t strip = static_cast<std::size_t>(n_) * k;
    if (batch_tmp_.size() < strip) batch_tmp_.resize(strip);
  }
}

core::DoacrossStats TrisolvePlan::run_batch(index_t k, BatchMode mode) {
  if (n_ == 0) return {};
  batch_k_ = k;
  batch_mode_ = mode;
  reset_for_call(/*lower=*/true, /*upper=*/true);
#ifndef NDEBUG
  const rt::DispatchProbe probe(*pool_);
#endif
  const core::DoacrossStats stats = dispatch(batch_region_);
#ifndef NDEBUG
  assert(probe.delta() == (telemetry_.strategy == ExecutionStrategy::kSerial
                               ? 0u
                               : 1u) &&
         "solve_batch must cost exactly one pool dispatch (zero serial)");
#endif
  batch_columns_ += static_cast<std::uint64_t>(k);
  return stats;
}

core::DoacrossStats TrisolvePlan::solve_batch(std::span<const double> b,
                                              std::span<double> x, index_t k,
                                              BatchMode mode) {
  if (!u_) {
    throw std::logic_error("TrisolvePlan::solve_batch: lower-only plan");
  }
  if (k < 1) {
    throw std::invalid_argument("TrisolvePlan::solve_batch: k must be >= 1");
  }
  if (static_cast<index_t>(b.size()) < n_ * k ||
      static_cast<index_t>(x.size()) < n_ * k) {
    throw std::invalid_argument("TrisolvePlan::solve_batch: size mismatch");
  }
  reserve_batch(k, mode);
  for (index_t c = 0; c < k; ++c) {
    batch_b_[static_cast<std::size_t>(c)] = b.data() + c * n_;
    batch_x_[static_cast<std::size_t>(c)] = x.data() + c * n_;
  }
  return run_batch(k, mode);
}

core::DoacrossStats TrisolvePlan::solve_batch(const double* const* b_cols,
                                              double* const* x_cols,
                                              index_t k, BatchMode mode) {
  if (!u_) {
    throw std::logic_error("TrisolvePlan::solve_batch: lower-only plan");
  }
  if (k < 1) {
    throw std::invalid_argument("TrisolvePlan::solve_batch: k must be >= 1");
  }
  reserve_batch(k, mode);
  for (index_t c = 0; c < k; ++c) {
    batch_b_[static_cast<std::size_t>(c)] = b_cols[c];
    batch_x_[static_cast<std::size_t>(c)] = x_cols[c];
  }
  return run_batch(k, mode);
}

}  // namespace pdx::sparse
