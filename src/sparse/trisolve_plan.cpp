#include "sparse/trisolve_plan.hpp"

#include <cassert>
#include <chrono>
#include <stdexcept>

#include "runtime/schedule.hpp"
#include "sparse/levels.hpp"
#include "sparse/trisolve.hpp"

namespace pdx::sparse {

namespace {

void check_factor(const Csr& m, const char* what) {
  if (m.rows != m.cols) {
    throw std::invalid_argument(std::string("TrisolvePlan: ") + what +
                                " factor is not square");
  }
}

}  // namespace

TrisolvePlan::TrisolvePlan(rt::ThreadPool& pool, const Csr& l,
                           const PlanOptions& opts)
    : pool_(&pool),
      l_(&l),
      u_(nullptr),
      opts_(opts),
      n_(l.rows),
      nth_(pool.clamp_threads(opts.nthreads)),
      barrier_(nth_ == 0 ? 1 : nth_) {
  check_factor(l, "lower");
  ready_l_.ensure_size(n_);
  episodes_.resize(nth_);
  rounds_.resize(nth_);
  if (opts_.reorder) {
    l_order_ = std::make_unique<core::Reordering>(lower_solve_reordering(l));
  }
  // Region functors are bound once, here; per-call inputs travel through
  // the lo_/up_ pointer members. This is what makes solve_* allocation
  // free: a fresh capturing lambda would not fit std::function's small
  // buffer and would heap-allocate on every call.
  lower_region_ = [this](unsigned tid, unsigned nthreads) {
    std::uint64_t eps = 0, rds = 0;
    lower_kernel(lo_rhs_, lo_y_, tid, nthreads, eps, rds);
    episodes_[tid].value = eps;
    rounds_[tid].value = rds;
  };
}

TrisolvePlan::TrisolvePlan(rt::ThreadPool& pool, const Csr& l, const Csr& u,
                           const PlanOptions& opts)
    : TrisolvePlan(pool, l, opts) {  // all lower-solve state
  check_factor(u, "upper");
  if (u.rows != l.rows) {
    throw std::invalid_argument("TrisolvePlan: L/U dimension mismatch");
  }
  u_ = &u;
  ready_u_.ensure_size(n_);
  tmp_.resize(static_cast<std::size_t>(n_));
  if (opts_.reorder) {
    u_order_ = std::make_unique<core::Reordering>(upper_solve_reordering(u));
  }
  upper_region_ = [this](unsigned tid, unsigned nthreads) {
    std::uint64_t eps = 0, rds = 0;
    upper_kernel(up_rhs_, up_y_, tid, nthreads, eps, rds);
    episodes_[tid].value = eps;
    rounds_[tid].value = rds;
  };
  fused_region_ = [this](unsigned tid, unsigned nthreads) {
    std::uint64_t eps = 0, rds = 0;
    lower_kernel(lo_rhs_, lo_y_, tid, nthreads, eps, rds);
    // The one synchronization point of a fused preconditioner
    // application: every tmp_ element is published before any thread
    // starts consuming it in the backward solve. The busy-wait flags
    // handle everything else on both sides.
    barrier_.arrive_and_wait();
    upper_kernel(up_rhs_, up_y_, tid, nthreads, eps, rds);
    episodes_[tid].value = eps;
    rounds_[tid].value = rds;
  };
  batch_region_ = [this](unsigned tid, unsigned nthreads) {
    std::uint64_t eps = 0, rds = 0;
    if (batch_mode_ == BatchMode::kWavefrontInterleaved) {
      // One doacross pass per factor; every row carries all k columns.
      lower_kernel_multi(tid, nthreads, eps, rds);
      barrier_.arrive_and_wait();
      upper_kernel_multi(tid, nthreads, eps, rds);
    } else {
      for (index_t c = 0; c < batch_k_; ++c) {
        if (c > 0) {
          // Column boundary: the first barrier guarantees every thread is
          // done with column c-1's flags; thread 0 re-arms both epoch
          // tables and cursors; the second barrier publishes the new
          // epoch before any thread of column c waits on a flag.
          barrier_.arrive_and_wait();
          if (tid == 0) reset_for_call(/*lower=*/true, /*upper=*/true);
          barrier_.arrive_and_wait();
        }
        lower_kernel(batch_b_[static_cast<std::size_t>(c)], tmp_.data(),
                     tid, nthreads, eps, rds);
        barrier_.arrive_and_wait();
        upper_kernel(tmp_.data(), batch_x_[static_cast<std::size_t>(c)],
                     tid, nthreads, eps, rds);
      }
    }
    episodes_[tid].value = eps;
    rounds_[tid].value = rds;
  };
}

void TrisolvePlan::lower_kernel(const double* rhs_p, double* yp, unsigned tid,
                                unsigned nthreads, std::uint64_t& episodes,
                                std::uint64_t& rounds) noexcept {
  const Csr& l = *l_;
  const index_t* order = l_order_ ? l_order_->order.data() : nullptr;
  const int work_reps = opts_.work_reps;
  std::uint64_t my_episodes = 0, my_rounds = 0;
  // Identical arithmetic (term order, division) to trisolve_lower_seq —
  // results are bitwise equal; the ready flags only sequence the reads.
  auto solve_row = [&](index_t k) noexcept {
    const index_t i = order ? order[k] : k;
    double acc = rhs_p[i];
    const index_t k_end = l.row_end(i) - 1;  // diagonal last
    for (index_t kk = l.row_begin(i); kk < k_end; ++kk) {
      const index_t c = l.idx[static_cast<std::size_t>(kk)];
      const std::uint64_t r = ready_l_.wait_done(c);
      if (r != 0) {
        ++my_episodes;
        my_rounds += r;
      }
      acc -= l.val[static_cast<std::size_t>(kk)] * yp[c];
      if (work_reps > 0) acc = machine_emulation_work(acc, work_reps);
    }
    yp[i] = acc / l.val[static_cast<std::size_t>(k_end)];
    ready_l_.mark_done(i);  // release-publishes the y store
  };
  rt::schedule_run(opts_.schedule, n_, tid, nthreads, &cursor_l_, solve_row);
  episodes += my_episodes;
  rounds += my_rounds;
}

void TrisolvePlan::upper_kernel(const double* rhs_p, double* yp, unsigned tid,
                                unsigned nthreads, std::uint64_t& episodes,
                                std::uint64_t& rounds) noexcept {
  const Csr& u = *u_;
  const index_t* order = u_order_ ? u_order_->order.data() : nullptr;
  std::uint64_t my_episodes = 0, my_rounds = 0;
  auto solve_row = [&](index_t k) noexcept {
    const index_t i = order ? order[k] : n_ - 1 - k;
    double acc = rhs_p[i];
    const index_t k_diag = u.row_begin(i);  // diagonal first
    for (index_t kk = k_diag + 1; kk < u.row_end(i); ++kk) {
      const index_t c = u.idx[static_cast<std::size_t>(kk)];
      const std::uint64_t r = ready_u_.wait_done(c);
      if (r != 0) {
        ++my_episodes;
        my_rounds += r;
      }
      acc -= u.val[static_cast<std::size_t>(kk)] * yp[c];
    }
    yp[i] = acc / u.val[static_cast<std::size_t>(k_diag)];
    ready_u_.mark_done(i);
  };
  rt::schedule_run(opts_.schedule, n_, tid, nthreads, &cursor_u_, solve_row);
  episodes += my_episodes;
  rounds += my_rounds;
}

void TrisolvePlan::lower_kernel_multi(unsigned tid, unsigned nthreads,
                                      std::uint64_t& episodes,
                                      std::uint64_t& rounds) noexcept {
  const Csr& l = *l_;
  const index_t* order = l_order_ ? l_order_->order.data() : nullptr;
  const index_t k = batch_k_;
  const double* const* b_cols = batch_b_.data();
  double* tp = batch_tmp_.data();
  const int work_reps = opts_.work_reps;
  std::uint64_t my_episodes = 0, my_rounds = 0;
  // Column c runs the exact arithmetic of lower_kernel on b_cols[c] (term
  // order, division) — bitwise equal per column. One ready flag per row
  // covers all k columns: a dependence is waited on once, not k times,
  // and the row's indices/values are read once for the whole batch.
  // Row i's k results accumulate in place in the row-major strip, where
  // consumers read them contiguously.
  auto solve_row = [&](index_t pos) noexcept {
    const index_t i = order ? order[pos] : pos;
    double* ti = tp + i * k;
    for (index_t c = 0; c < k; ++c) ti[c] = b_cols[c][i];
    const index_t k_end = l.row_end(i) - 1;  // diagonal last
    for (index_t kk = l.row_begin(i); kk < k_end; ++kk) {
      const index_t col = l.idx[static_cast<std::size_t>(kk)];
      const std::uint64_t r = ready_l_.wait_done(col);
      if (r != 0) {
        ++my_episodes;
        my_rounds += r;
      }
      const double a = l.val[static_cast<std::size_t>(kk)];
      const double* tc = tp + col * k;
      for (index_t c = 0; c < k; ++c) {
        ti[c] -= a * tc[c];
        if (work_reps > 0) ti[c] = machine_emulation_work(ti[c], work_reps);
      }
    }
    const double d = l.val[static_cast<std::size_t>(k_end)];
    for (index_t c = 0; c < k; ++c) ti[c] /= d;
    ready_l_.mark_done(i);  // release-publishes all k stores of this row
  };
  rt::schedule_run(opts_.schedule, n_, tid, nthreads, &cursor_l_, solve_row);
  episodes += my_episodes;
  rounds += my_rounds;
}

void TrisolvePlan::upper_kernel_multi(unsigned tid, unsigned nthreads,
                                      std::uint64_t& episodes,
                                      std::uint64_t& rounds) noexcept {
  const Csr& u = *u_;
  const index_t* order = u_order_ ? u_order_->order.data() : nullptr;
  const index_t k = batch_k_;
  double* const* x_cols = batch_x_.data();
  double* tp = batch_tmp_.data();
  std::uint64_t my_episodes = 0, my_rounds = 0;
  // Row i's strip holds the forward-solve results on entry and is updated
  // in place into the backward-solve solution; the solution stays
  // resident in the strip (consumers read it contiguously) and is
  // mirrored into the caller's column vectors before the row is marked.
  auto solve_row = [&](index_t pos) noexcept {
    const index_t i = order ? order[pos] : n_ - 1 - pos;
    double* ti = tp + i * k;
    const index_t k_diag = u.row_begin(i);  // diagonal first
    for (index_t kk = k_diag + 1; kk < u.row_end(i); ++kk) {
      const index_t col = u.idx[static_cast<std::size_t>(kk)];
      const std::uint64_t r = ready_u_.wait_done(col);
      if (r != 0) {
        ++my_episodes;
        my_rounds += r;
      }
      const double a = u.val[static_cast<std::size_t>(kk)];
      const double* tc = tp + col * k;
      for (index_t c = 0; c < k; ++c) ti[c] -= a * tc[c];
    }
    const double d = u.val[static_cast<std::size_t>(k_diag)];
    for (index_t c = 0; c < k; ++c) {
      ti[c] /= d;
      x_cols[c][i] = ti[c];
    }
    ready_u_.mark_done(i);
  };
  rt::schedule_run(opts_.schedule, n_, tid, nthreads, &cursor_u_, solve_row);
  episodes += my_episodes;
  rounds += my_rounds;
}

void TrisolvePlan::reset_for_call(bool lower, bool upper) noexcept {
  // The whole per-call reset: two O(1) epoch bumps and two counter
  // stores. Compare trisolve_doacross's per-call Barrier + two vector
  // allocations + O(n/p) flag sweep + extra barrier.
  if (lower) {
    ready_l_.begin_epoch();
    cursor_l_.store(0, std::memory_order_relaxed);
  }
  if (upper) {
    ready_u_.begin_epoch();
    cursor_u_.store(0, std::memory_order_relaxed);
  }
}

core::DoacrossStats TrisolvePlan::dispatch(
    const rt::ThreadPool::RegionFn& region) {
  using clock = std::chrono::steady_clock;
  const clock::time_point t0 = clock::now();
  pool_->parallel_region(nth_, region);
  const clock::time_point t1 = clock::now();
  core::DoacrossStats stats;
  // Preprocessing was amortized at plan build and the postprocessing
  // sweep no longer exists, so the whole call is executor time (pool
  // wake-up included — the number a repeated caller actually pays).
  stats.execute_seconds = std::chrono::duration<double>(t1 - t0).count();
  for (unsigned t = 0; t < nth_; ++t) {
    stats.wait_episodes += episodes_[t].value;
    stats.wait_rounds += rounds_[t].value;
  }
  ++solves_;
  return stats;
}

core::DoacrossStats TrisolvePlan::solve_lower(std::span<const double> rhs,
                                              std::span<double> y) {
  if (static_cast<index_t>(rhs.size()) < n_ ||
      static_cast<index_t>(y.size()) < n_) {
    throw std::invalid_argument("TrisolvePlan::solve_lower: size mismatch");
  }
  if (n_ == 0) return {};
  reset_for_call(/*lower=*/true, /*upper=*/false);
  lo_rhs_ = rhs.data();
  lo_y_ = y.data();
  return dispatch(lower_region_);
}

core::DoacrossStats TrisolvePlan::solve_upper(std::span<const double> rhs,
                                              std::span<double> z) {
  if (!u_) {
    throw std::logic_error("TrisolvePlan::solve_upper: lower-only plan");
  }
  if (static_cast<index_t>(rhs.size()) < n_ ||
      static_cast<index_t>(z.size()) < n_) {
    throw std::invalid_argument("TrisolvePlan::solve_upper: size mismatch");
  }
  if (n_ == 0) return {};
  reset_for_call(/*lower=*/false, /*upper=*/true);
  up_rhs_ = rhs.data();
  up_y_ = z.data();
  return dispatch(upper_region_);
}

core::DoacrossStats TrisolvePlan::solve(std::span<const double> rhs,
                                        std::span<double> z) {
  if (!u_) {
    throw std::logic_error("TrisolvePlan::solve: lower-only plan");
  }
  if (static_cast<index_t>(rhs.size()) < n_ ||
      static_cast<index_t>(z.size()) < n_) {
    throw std::invalid_argument("TrisolvePlan::solve: size mismatch");
  }
  if (n_ == 0) return {};
  reset_for_call(/*lower=*/true, /*upper=*/true);
  lo_rhs_ = rhs.data();
  lo_y_ = tmp_.data();
  up_rhs_ = tmp_.data();
  up_y_ = z.data();
  return dispatch(fused_region_);
}

void TrisolvePlan::reserve_batch(index_t max_k, BatchMode mode) {
  if (max_k < 1) {
    throw std::invalid_argument("TrisolvePlan::reserve_batch: max_k < 1");
  }
  const std::size_t k = static_cast<std::size_t>(max_k);
  if (batch_b_.size() < k) {
    batch_b_.resize(k);
    batch_x_.resize(k);
  }
  // The n-by-k strip backs only the interleaved mode; column-sequential
  // batches keep the documented O(n) scratch (the plan's tmp_).
  if (mode == BatchMode::kWavefrontInterleaved) {
    const std::size_t strip = static_cast<std::size_t>(n_) * k;
    if (batch_tmp_.size() < strip) batch_tmp_.resize(strip);
  }
}

core::DoacrossStats TrisolvePlan::run_batch(index_t k, BatchMode mode) {
  if (n_ == 0) return {};
  batch_k_ = k;
  batch_mode_ = mode;
  reset_for_call(/*lower=*/true, /*upper=*/true);
#ifndef NDEBUG
  const rt::DispatchProbe probe(*pool_);
#endif
  const core::DoacrossStats stats = dispatch(batch_region_);
#ifndef NDEBUG
  assert(probe.delta() == 1 &&
         "solve_batch must cost exactly one pool dispatch");
#endif
  batch_columns_ += static_cast<std::uint64_t>(k);
  return stats;
}

core::DoacrossStats TrisolvePlan::solve_batch(std::span<const double> b,
                                              std::span<double> x, index_t k,
                                              BatchMode mode) {
  if (!u_) {
    throw std::logic_error("TrisolvePlan::solve_batch: lower-only plan");
  }
  if (k < 1) {
    throw std::invalid_argument("TrisolvePlan::solve_batch: k must be >= 1");
  }
  if (static_cast<index_t>(b.size()) < n_ * k ||
      static_cast<index_t>(x.size()) < n_ * k) {
    throw std::invalid_argument("TrisolvePlan::solve_batch: size mismatch");
  }
  reserve_batch(k, mode);
  for (index_t c = 0; c < k; ++c) {
    batch_b_[static_cast<std::size_t>(c)] = b.data() + c * n_;
    batch_x_[static_cast<std::size_t>(c)] = x.data() + c * n_;
  }
  return run_batch(k, mode);
}

core::DoacrossStats TrisolvePlan::solve_batch(const double* const* b_cols,
                                              double* const* x_cols,
                                              index_t k, BatchMode mode) {
  if (!u_) {
    throw std::logic_error("TrisolvePlan::solve_batch: lower-only plan");
  }
  if (k < 1) {
    throw std::invalid_argument("TrisolvePlan::solve_batch: k must be >= 1");
  }
  reserve_batch(k, mode);
  for (index_t c = 0; c < k; ++c) {
    batch_b_[static_cast<std::size_t>(c)] = b_cols[c];
    batch_x_[static_cast<std::size_t>(c)] = x_cols[c];
  }
  return run_batch(k, mode);
}

}  // namespace pdx::sparse
