#include "sparse/trisolve_plan.hpp"

#include <cassert>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>

#include "runtime/schedule.hpp"
#include "sparse/levels.hpp"
#include "sparse/trisolve.hpp"

namespace pdx::sparse {

namespace {

void check_factor(const Csr& m, const char* what) {
  if (m.rows != m.cols) {
    throw std::invalid_argument(std::string("TrisolvePlan: ") + what +
                                " factor is not square");
  }
}

// --- row sources -----------------------------------------------------
//
// The layout-generic kernels read rows only through src.at(position);
// these adapters supply the two layouts. The CSR views reproduce the
// historical access path exactly (position -> row via the order array,
// row -> entries via row_ptr); the packed sources walk the plan-owned
// execution-ordered record streams of DESIGN.md §10.

/// kCsrView, lower factor: diagonal last in the sorted row. A null
/// order means position == row (source order).
struct CsrLowerSrc {
  const Csr* m;
  const index_t* order;
  PackedRow at(index_t k) const noexcept {
    const index_t i = order ? order[k] : k;
    const index_t b = m->row_begin(i);
    const index_t e = m->row_end(i) - 1;  // diagonal last
    return {i, e - b, m->val[static_cast<std::size_t>(e)],
            m->idx.data() + b, m->val.data() + b};
  }
};

/// kCsrView, upper factor: diagonal first. A null order means the
/// backward solve's natural order, position k == row n-1-k.
struct CsrUpperSrc {
  const Csr* m;
  const index_t* order;
  index_t n;
  PackedRow at(index_t k) const noexcept {
    const index_t i = order ? order[k] : n - 1 - k;
    const index_t b = m->row_begin(i);  // diagonal first
    return {i, m->row_end(i) - b - 1, m->val[static_cast<std::size_t>(b)],
            m->idx.data() + b + 1, m->val.data() + b + 1};
  }
};

CsrLowerSrc csr_lower(const Csr& m, const core::Reordering* ord) noexcept {
  return {&m, ord ? ord->order.data() : nullptr};
}

CsrUpperSrc csr_upper(const Csr& m, const core::Reordering* ord,
                      index_t n) noexcept {
  return {&m, ord ? ord->order.data() : nullptr, n};
}

/// kPacked, statically owned slab: positions arrive consecutively, so
/// the position argument is implicit in the cursor — the pure linear
/// walk (serial, level-barrier, blocked-hybrid).
struct PackedWalkSrc {
  PackedFactorStream::Cursor c;
  PackedRow at(index_t) noexcept { return c.next(); }
};

/// kPacked, dynamically claimed positions (the doacross schedules): one
/// predictable pointer load into the position index, then the record is
/// a single contiguous read. Consecutive positions of a claimed chunk
/// are adjacent records, so the walk stays linear per chunk.
struct PackedSeekSrc {
  const PackedFactorStream* s;
  PackedRow at(index_t k) const noexcept { return s->at(k); }
};

// --- multi-RHS lane arithmetic ----------------------------------------
//
// The k columns of the interleaved strip are the SIMD lanes: one vector
// op retires k right-hand sides per nonzero, and because column c's
// element never mixes with column c''s, the vector forms are bitwise
// identical to the scalar per-column arithmetic (DESIGN.md §14). Narrow
// batches (k < kLaneMin) and machine-emulation runs keep the inline
// scalar loops — same bits, no indirect-call overhead.

inline void lane_update(const kernels::LaneOps* lanes, double* ti,
                        const double* tc, double a, index_t k,
                        int work_reps) noexcept {
  if (work_reps > 0) {
    for (index_t c = 0; c < k; ++c) {
      ti[c] -= a * tc[c];
      ti[c] = machine_emulation_work(ti[c], work_reps);
    }
  } else if (k >= kernels::kLaneMin) {
    lanes->axpy(ti, tc, a, k);
  } else {
    for (index_t c = 0; c < k; ++c) ti[c] -= a * tc[c];
  }
}

inline void lane_div(const kernels::LaneOps* lanes, double* ti, double d,
                     index_t k) noexcept {
  if (k >= kernels::kLaneMin) {
    lanes->div_inplace(ti, d, k);
  } else {
    for (index_t c = 0; c < k; ++c) ti[c] /= d;
  }
}

/// Prefetch the strip row of the NEXT dependence while the lane kernel
/// computes on the current one: the gathered x-entries of the packed
/// dot, one dependence ahead (DESIGN.md §14 discusses the distance).
inline void prefetch_next_dep(const PackedRow& r, index_t j,
                              const double* tp, index_t k) noexcept {
  if (j + 1 < r.cnt) {
    kernels::prefetch_read(tp + r.cols[j + 1] * k);
  }
}

/// Every cache line of one k-wide strip row (k=16 spans two), gated on
/// the vector table: the scalar table is the pre-kernel-layer reference
/// and the kernel race times it as exactly that — SIMD and the prefetch
/// schedule win or lose together (DESIGN.md §14).
inline void prefetch_strip_row(const kernels::LaneOps* lanes,
                               const double* tp, index_t col,
                               index_t k) noexcept {
  if (lanes->isa == kernels::KernelIsa::kScalar) return;
  const double* p = tp + col * k;
  for (index_t o = 0; o < k; o += 8) kernels::prefetch_read(p + o);
}

/// The NEXT record's gathered strip rows, issued while the lane kernels
/// chew the current record — one full record of distance, enough to
/// cover a last-level-cache hit on the spilled factors the packed
/// layout targets. Only the walk-order executors (serial, level) use
/// this: their lookahead row's dependences are all final, so the
/// prefetch never tugs a line another thread is writing.
inline void prefetch_row_deps(const PackedRow& r, const double* tp,
                              index_t k) noexcept {
  for (index_t j = 0; j < r.cnt; ++j) {
    const double* p = tp + r.cols[j] * k;
    for (index_t o = 0; o < k; o += 8) kernels::prefetch_read(p + o);
  }
}

/// The lookahead pipeline (parse the next record, prefetch its strip
/// rows, then compute the current one) only pays when the lane kernels
/// are actually in play: wide batches on a vector table. Narrow batches,
/// machine-emulation runs, and the scalar table keep the plain walk —
/// the scalar candidate the kernel race times IS the pre-kernel-layer
/// executor, prefetch-free.
inline bool want_lookahead(const kernels::LaneOps* lanes, index_t k,
                           int work_reps) noexcept {
  return lanes->isa != kernels::KernelIsa::kScalar &&
         k >= kernels::kLaneMin && work_reps == 0;
}

/// One record's WHOLE dependence list against the strip. Wide un-emulated
/// batches take the fused row kernel — one indirect call per row,
/// accumulators register-resident across the dependence list; everything
/// else keeps the per-dependence loops. All callers retire their waits
/// BEFORE this runs (the fused kernel reads every dependence's strip
/// row). Bitwise equal either way: per column the j-ordered mul+sub
/// sequence is identical.
inline void lane_row_update(const kernels::LaneOps* lanes, double* ti,
                            const double* tp, const PackedRow& r, index_t k,
                            int work_reps) noexcept {
  if (work_reps == 0 && k >= kernels::kLaneMin) {
    lanes->row_axpy(ti, r.vals, r.cols, r.cnt, tp, k);
    return;
  }
  for (index_t j = 0; j < r.cnt; ++j) {
    prefetch_next_dep(r, j, tp, k);
    lane_update(lanes, ti, tp + r.cols[j] * k, r.vals[j], k, work_reps);
  }
}

}  // namespace

rt::ThreadPool::RegionFn TrisolvePlan::contained(
    rt::ThreadPool::RegionFn raw) {
  return [this, raw = std::move(raw)](unsigned tid, unsigned nthreads) {
    try {
      raw(tid, nthreads);
    } catch (rt::WorkerAbort&) {
      // A peer faulted first; this thread drained its waits and joins.
    } catch (...) {
      latch_.raise(std::current_exception());
    }
  };
}

bool TrisolvePlan::needs_reordering() const noexcept {
  // Both factors build (or skip) their doconsider analyses by the same
  // rule: level-barrier executes the levels themselves; doacross uses
  // the order only when asked to. A calibration race keeps both orders
  // alive — the level-barrier and doacross candidates need them; the
  // winner drops what it does not use at lock-in.
  return calibrating_ ||
         telemetry_.strategy == ExecutionStrategy::kLevelBarrier ||
         (telemetry_.strategy == ExecutionStrategy::kDoacross &&
          opts_.reorder);
}

void TrisolvePlan::set_strategy_state(ExecutionStrategy s) {
  telemetry_.strategy = s;
  if (s == ExecutionStrategy::kDoacross &&
      opts_.strategy == ExecutionStrategy::kAuto) {
    // The advisor's canonical flag-based configuration: dynamic
    // single-iteration issue in doconsider order. Fixing it here keeps
    // raced doacross epochs and cache-hit plans configured identically.
    opts_.schedule = rt::Schedule::dynamic(1);
    opts_.reorder = true;
  }
  guard_ = rt::WaitGuard{&latch_, opts_.stall_budget, core::to_string(s)};
}

void TrisolvePlan::rebind_regions() {
  bind_lower_region();
  if (u_) bind_upper_regions();
}

void TrisolvePlan::set_lanes(const kernels::LaneOps* ops) noexcept {
  lanes_ = ops;
  // The ulp dot is a horizontal reduction only the vector tables
  // implement differently; forced-scalar plans stay bitwise even when
  // the caller set a tolerance, and the machine-emulation knob pins the
  // scalar per-term loop it instruments.
  ulp_dot_ = opts_.ulp_tolerance > 0.0 && opts_.work_reps == 0 &&
             ops->isa != kernels::KernelIsa::kScalar;
}

void TrisolvePlan::resolve_kernel() noexcept {
  telemetry_.isa = kernels::dispatched_isa();
  const bool have_vector = telemetry_.isa != kernels::KernelIsa::kScalar;
  switch (opts_.kernel) {
    case kernels::KernelChoice::kScalar:
      set_lanes(&kernels::scalar_ops());
      telemetry_.kernel = kernels::KernelChoice::kScalar;
      return;
    case kernels::KernelChoice::kVector:
      set_lanes(&kernels::dispatched_ops());
      telemetry_.kernel = have_vector ? kernels::KernelChoice::kVector
                                      : kernels::KernelChoice::kScalar;
      return;
    case kernels::KernelChoice::kAuto:
      set_lanes(&kernels::dispatched_ops());
      telemetry_.kernel = have_vector ? kernels::KernelChoice::kVector
                                      : kernels::KernelChoice::kScalar;
      // The strategy race stays a pure 4-strategy race (its budget and
      // winner bookkeeping are contractual — DESIGN.md §13); the kernel
      // dimension races separately on the dispatches that actually run
      // lane kernels, which only begin once strategy exploration is
      // done. Same epoch budget per choice as the strategy race.
      if (have_vector && opts_.calibration_epochs > 0 && n_ > 0) {
        kernel_race_.arm(opts_.calibration_epochs);
      }
      return;
  }
}

void TrisolvePlan::note_kernel_epoch(double seconds, index_t k) noexcept {
  // Normalize per column so epochs of different batch widths compare.
  const double us = seconds * 1e6 / static_cast<double>(k);
  if (kernel_race_.note_epoch(us)) {
    set_lanes(kernel_race_.winner() == kernels::KernelChoice::kScalar
                  ? &kernels::scalar_ops()
                  : &kernels::dispatched_ops());
    telemetry_.kernel = kernel_race_.winner();
  }
  telemetry_.kernel_race = kernel_race_.state();
}

void TrisolvePlan::resolve_strategy() {
  telemetry_.requested = opts_.strategy;
  telemetry_.procs = nth_;
  if (opts_.strategy != ExecutionStrategy::kAuto) {
    telemetry_.strategy = opts_.strategy;
    telemetry_.rationale = "strategy fixed by caller";
    return;
  }
  // The inspector pass of the strategy decision: the doconsider
  // analysis (levels, widths) plus an O(nnz) distance scan. The
  // reordering is kept — if the plan lands on doacross or
  // level-barrier it is the execution order.
  l_order_ =
      std::make_unique<core::Reordering>(lower_solve_reordering(*l_));
  telemetry_.structure = measure_lower_solve(*l_, *l_order_);
  core::ScheduleAdvice advice =
      core::advise_schedule(telemetry_.structure, nth_);
  // The heuristic pick is the opening bid; with a viable race below it
  // only decides which strategy explores first.
  telemetry_.strategy = advice.strategy;
  telemetry_.rationale = advice.rationale;
  if (advice.strategy == ExecutionStrategy::kDoacross) {
    opts_.schedule = advice.schedule;
    opts_.reorder = advice.use_reordering;
  }
  // Empirical calibration (DESIGN.md §13). The heuristic ladder sees DAG
  // shape, never synchronization cost on the actual machine, and the
  // strategy baselines prove it can mispick by orders of magnitude. A
  // race is viable whenever more than one strategy is plausible — with
  // parallel width and a budget — because all executors are bitwise
  // identical: the first solves time each candidate invisibly.
  const bool can_calibrate =
      opts_.calibration_epochs > 0 && nth_ > 1 && n_ > 0;
  if (!can_calibrate) return;
  if (opts_.use_tuning_cache) {
    tuning_key_ = core::make_tuning_key(telemetry_.structure, nth_,
                                        /*factor=*/false);
    have_tuning_key_ = true;
    ExecutionStrategy cached;
    if (core::tuning_cache().lookup(tuning_key_, cached)) {
      set_strategy_state(cached);
      telemetry_.rationale =
          std::string("tuning cache hit: ") + core::to_string(cached) +
          " measured fastest earlier for this (pattern, threads)";
      telemetry_.race.calibrated = true;
      telemetry_.race.cache_hit = true;
      return;
    }
  }
  calibrating_ = true;
  candidates_ = {telemetry_.strategy};
  for (const ExecutionStrategy s :
       {ExecutionStrategy::kSerial, ExecutionStrategy::kDoacross,
        ExecutionStrategy::kBlockedHybrid, ExecutionStrategy::kLevelBarrier}) {
    if (s != candidates_.front()) candidates_.push_back(s);
  }
  telemetry_.race.timings.resize(candidates_.size());
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    telemetry_.race.timings[i].strategy = candidates_[i];
  }
  set_strategy_state(candidates_.front());
  telemetry_.rationale +=
      " — calibrating: racing every strategy on the first live solves";
}

void TrisolvePlan::note_calibration_epoch(double seconds) {
  core::StrategyTiming& t = telemetry_.race.timings[cand_idx_];
  const double us = seconds * 1e6;
  if (t.epochs == 0 || us < t.best_us) t.best_us = us;
  ++t.epochs;
  ++telemetry_.race.exploration_epochs;
  if (++cand_epoch_ < opts_.calibration_epochs) return;
  cand_epoch_ = 0;
  if (++cand_idx_ < candidates_.size()) {
    set_strategy_state(candidates_[cand_idx_]);
    rebind_regions();
    return;
  }
  finish_calibration();
}

void TrisolvePlan::finish_calibration() {
  std::size_t best = 0;
  for (std::size_t i = 1; i < telemetry_.race.timings.size(); ++i) {
    if (telemetry_.race.timings[i].best_us <
        telemetry_.race.timings[best].best_us) {
      best = i;
    }
  }
  const ExecutionStrategy winner = candidates_[best];
  calibrating_ = false;
  set_strategy_state(winner);
  telemetry_.race.calibrated = true;
  telemetry_.rationale =
      std::string("calibrated: ") + core::to_string(winner) +
      " measured fastest (" +
      std::to_string(telemetry_.race.timings[best].best_us) +
      " us/solve over " + std::to_string(telemetry_.race.exploration_epochs) +
      " exploration solves)";
  if (have_tuning_key_) core::tuning_cache().store(tuning_key_, winner);
  // Lock-in: drop the orders the winner does not read, resolve the
  // deferred layout (pack the winner's execution order), and rebind the
  // regions to the winner's kernels.
  if (!needs_reordering()) {
    l_order_.reset();
    u_order_.reset();
  }
  build_packed();
  rebind_regions();
}

void TrisolvePlan::build_packed() {
  // Packed slab sequences are strategy-specific, so a calibrating plan
  // defers packing to lock-in and explores through CSR-view sources.
  if (calibrating_ || n_ == 0) return;
  PlanLayout want = opts_.layout;
  if (want == PlanLayout::kAuto) {
    // A serial plan walks each factor once per solve with no cross-thread
    // sharing to localize; the packed duplication measurably loses there
    // (layout_speedup 0.66–0.96 in BENCH_strategy), so only a caller
    // pinning kPacked pays for it.
    want = telemetry_.strategy == ExecutionStrategy::kSerial
               ? PlanLayout::kCsrView
               : PlanLayout::kPacked;
  }
  if (want != PlanLayout::kPacked) return;
  const unsigned width = nth_ == 0 ? 1 : nth_;
  const unsigned slabs =
      telemetry_.strategy == ExecutionStrategy::kSerial ? 1 : width;
  const index_t* lord = l_order_ ? l_order_->order.data() : nullptr;
  const index_t* uord = u_order_ ? u_order_->order.data() : nullptr;

  // Per-slab row sequences: the exact order each thread's kernel walks.
  std::vector<std::vector<index_t>> lseq, useq;
  bool position_index = false;
  switch (telemetry_.strategy) {
    case ExecutionStrategy::kSerial: {
      lseq.resize(1);
      lseq[0].resize(static_cast<std::size_t>(n_));
      std::iota(lseq[0].begin(), lseq[0].end(), index_t{0});
      if (u_) {
        useq.resize(1);
        useq[0].reserve(static_cast<std::size_t>(n_));
        for (index_t i = n_ - 1; i >= 0; --i) useq[0].push_back(i);
      }
      break;
    }
    case ExecutionStrategy::kBlockedHybrid: {
      lseq.resize(slabs);
      if (u_) useq.resize(slabs);
      for (unsigned t = 0; t < slabs; ++t) {
        const rt::IterRange r = rt::static_block_range(n_, t, slabs);
        lseq[t].reserve(static_cast<std::size_t>(r.size()));
        for (index_t i = r.begin; i < r.end; ++i) lseq[t].push_back(i);
        if (u_) {
          useq[t].reserve(static_cast<std::size_t>(r.size()));
          for (index_t k = r.begin; k < r.end; ++k) {
            useq[t].push_back(n_ - 1 - k);
          }
        }
      }
      break;
    }
    case ExecutionStrategy::kLevelBarrier: {
      lseq = level_schedule_sequences(*l_order_, slabs);
      if (u_) useq = level_schedule_sequences(*u_order_, slabs);
      break;
    }
    case ExecutionStrategy::kDoacross: {
      // Any schedule may claim any position at run time, so the stream
      // carries a position index; the slab split mirrors the static-
      // block assignment, which is also where dynamic chunks of a
      // steady-state solve tend to land.
      position_index = true;
      lseq.resize(slabs);
      if (u_) useq.resize(slabs);
      for (unsigned t = 0; t < slabs; ++t) {
        const rt::IterRange r = rt::static_block_range(n_, t, slabs);
        lseq[t].reserve(static_cast<std::size_t>(r.size()));
        if (u_) useq[t].reserve(static_cast<std::size_t>(r.size()));
        for (index_t pos = r.begin; pos < r.end; ++pos) {
          lseq[t].push_back(lord ? lord[pos] : pos);
          if (u_) useq[t].push_back(uord ? uord[pos] : n_ - 1 - pos);
        }
      }
      break;
    }
    case ExecutionStrategy::kAuto:
      return;  // unreachable: resolve_strategy() never leaves kAuto
  }

  packed_l_.prepare(*l_, /*diag_first=*/false, std::move(lseq),
                    position_index);
  if (u_) {
    packed_u_.prepare(*u_, /*diag_first=*/true, std::move(useq),
                      position_index);
  }
  // First-touch packing: every slab is written — page-placed — by the
  // thread that will execute it, in ONE pool dispatch covering both
  // factors. Serial plans pack inline: the calling thread IS the
  // executor, and waking the pool would first-touch nothing useful.
  if (slabs <= 1) {
    packed_l_.pack(0);
    if (u_) packed_u_.pack(0);
  } else {
    pool_->parallel_region(nth_, [this](unsigned tid, unsigned) {
      packed_l_.pack(tid);
      if (u_) packed_u_.pack(tid);
    });
  }
  packed_l_.finish_build();
  if (u_) packed_u_.finish_build();
  telemetry_.layout = PlanLayout::kPacked;
  telemetry_.packed_bytes = packed_l_.bytes() + packed_u_.bytes();
  // The value-refresh region (refresh_values) is bound once, like the
  // solve regions: each thread re-streams the values of its own slabs,
  // on the pages it first-touched at build.
  if (slabs > 1) {
    refresh_region_ = [this](unsigned tid, unsigned) {
      packed_l_.repack_values(*l_, tid);
      if (u_) packed_u_.repack_values(*u_, tid);
    };
  }
}

void TrisolvePlan::bind_lower_region() {
  // Region functors are bound once, here; per-call inputs travel through
  // the lo_/up_ pointer members. This is what makes solve_* allocation
  // free: a fresh capturing lambda would not fit std::function's small
  // buffer and would heap-allocate on every call. The layout branch runs
  // once per kernel invocation, not per row.
  switch (telemetry_.strategy) {
    case ExecutionStrategy::kDoacross:
      lower_region_ = [this](unsigned tid, unsigned nthreads) {
        std::uint64_t eps = 0, rds = 0;
        if (packed_l_.packed()) {
          lower_flags_k(PackedSeekSrc{&packed_l_}, lo_rhs_, lo_y_, tid,
                        nthreads, eps, rds);
        } else {
          lower_flags_k(csr_lower(*l_, l_order_.get()), lo_rhs_, lo_y_, tid,
                        nthreads, eps, rds);
        }
        episodes_[tid].value = eps;
        rounds_[tid].value = rds;
      };
      break;
    case ExecutionStrategy::kLevelBarrier:
      lower_region_ = [this](unsigned tid, unsigned nthreads) {
        if (packed_l_.packed()) {
          lower_levels_k(PackedWalkSrc{packed_l_.cursor(tid)}, lo_rhs_,
                         lo_y_, tid, nthreads);
        } else {
          lower_levels_k(csr_lower(*l_, l_order_.get()), lo_rhs_, lo_y_,
                         tid, nthreads);
        }
        episodes_[tid].value = 0;
        rounds_[tid].value = 0;
      };
      break;
    case ExecutionStrategy::kBlockedHybrid:
      lower_region_ = [this](unsigned tid, unsigned nthreads) {
        std::uint64_t eps = 0, rds = 0;
        if (packed_l_.packed()) {
          lower_blocked_k(PackedWalkSrc{packed_l_.cursor(tid)}, lo_rhs_,
                          lo_y_, tid, nthreads, eps, rds);
        } else {
          lower_blocked_k(csr_lower(*l_, nullptr), lo_rhs_, lo_y_, tid,
                          nthreads, eps, rds);
        }
        episodes_[tid].value = eps;
        rounds_[tid].value = rds;
      };
      break;
    case ExecutionStrategy::kSerial:
      lower_region_ = [this](unsigned, unsigned) {
        if (packed_l_.packed()) {
          serial_lower_k(PackedWalkSrc{packed_l_.cursor(0)}, lo_rhs_, lo_y_);
        } else {
          serial_lower_k(csr_lower(*l_, nullptr), lo_rhs_, lo_y_);
        }
      };
      break;
    case ExecutionStrategy::kAuto:
      break;  // unreachable: resolve_strategy() never leaves kAuto
  }
  lower_region_ = contained(std::move(lower_region_));
}

void TrisolvePlan::bind_upper_regions() {
  switch (telemetry_.strategy) {
    case ExecutionStrategy::kDoacross:
      upper_region_ = [this](unsigned tid, unsigned nthreads) {
        std::uint64_t eps = 0, rds = 0;
        if (packed_u_.packed()) {
          upper_flags_k(PackedSeekSrc{&packed_u_}, up_rhs_, up_y_, tid,
                        nthreads, eps, rds);
        } else {
          upper_flags_k(csr_upper(*u_, u_order_.get(), n_), up_rhs_, up_y_,
                        tid, nthreads, eps, rds);
        }
        episodes_[tid].value = eps;
        rounds_[tid].value = rds;
      };
      fused_region_ = [this](unsigned tid, unsigned nthreads) {
        std::uint64_t eps = 0, rds = 0;
        if (packed_l_.packed()) {
          lower_flags_k(PackedSeekSrc{&packed_l_}, lo_rhs_, lo_y_, tid,
                        nthreads, eps, rds);
          // The one synchronization point of a fused preconditioner
          // application: every tmp_ element is published before any
          // thread starts consuming it in the backward solve. The
          // busy-wait flags handle everything else on both sides.
          barrier_.arrive_and_wait();
          upper_flags_k(PackedSeekSrc{&packed_u_}, up_rhs_, up_y_, tid,
                        nthreads, eps, rds);
        } else {
          lower_flags_k(csr_lower(*l_, l_order_.get()), lo_rhs_, lo_y_, tid,
                        nthreads, eps, rds);
          barrier_.arrive_and_wait();
          upper_flags_k(csr_upper(*u_, u_order_.get(), n_), up_rhs_, up_y_,
                        tid, nthreads, eps, rds);
        }
        episodes_[tid].value = eps;
        rounds_[tid].value = rds;
      };
      batch_region_ = [this](unsigned tid, unsigned nthreads) {
        std::uint64_t eps = 0, rds = 0;
        const bool packed = packed_l_.packed();
        if (batch_mode_ == BatchMode::kWavefrontInterleaved) {
          // One doacross pass per factor; every row carries all k columns.
          if (packed) {
            lower_flags_multi_k(PackedSeekSrc{&packed_l_}, tid, nthreads,
                                eps, rds);
            barrier_.arrive_and_wait();
            upper_flags_multi_k(PackedSeekSrc{&packed_u_}, tid, nthreads,
                                eps, rds);
          } else {
            lower_flags_multi_k(csr_lower(*l_, l_order_.get()), tid,
                                nthreads, eps, rds);
            barrier_.arrive_and_wait();
            upper_flags_multi_k(csr_upper(*u_, u_order_.get(), n_), tid,
                                nthreads, eps, rds);
          }
        } else {
          for (index_t c = 0; c < batch_k_; ++c) {
            if (c > 0) {
              // Column boundary: the first barrier guarantees every
              // thread is done with column c-1's flags; thread 0 re-arms
              // both epoch tables and cursors; the second barrier
              // publishes the new epoch before any thread of column c
              // waits on a flag.
              barrier_.arrive_and_wait();
              if (tid == 0) reset_for_call(/*lower=*/true, /*upper=*/true);
              barrier_.arrive_and_wait();
            }
            const double* bc = batch_b_[static_cast<std::size_t>(c)];
            double* xc = batch_x_[static_cast<std::size_t>(c)];
            if (packed) {
              lower_flags_k(PackedSeekSrc{&packed_l_}, bc, tmp_.data(), tid,
                            nthreads, eps, rds);
              barrier_.arrive_and_wait();
              upper_flags_k(PackedSeekSrc{&packed_u_}, tmp_.data(), xc, tid,
                            nthreads, eps, rds);
            } else {
              lower_flags_k(csr_lower(*l_, l_order_.get()), bc, tmp_.data(),
                            tid, nthreads, eps, rds);
              barrier_.arrive_and_wait();
              upper_flags_k(csr_upper(*u_, u_order_.get(), n_), tmp_.data(),
                            xc, tid, nthreads, eps, rds);
            }
          }
        }
        episodes_[tid].value = eps;
        rounds_[tid].value = rds;
      };
      break;
    case ExecutionStrategy::kLevelBarrier:
      // No flags anywhere: the trailing barrier of each level loop is
      // also the L→U handoff and the column boundary, so neither the
      // fused nor the batched region needs any extra synchronization or
      // epoch re-arming.
      upper_region_ = [this](unsigned tid, unsigned nthreads) {
        if (packed_u_.packed()) {
          upper_levels_k(PackedWalkSrc{packed_u_.cursor(tid)}, up_rhs_,
                         up_y_, tid, nthreads);
        } else {
          upper_levels_k(csr_upper(*u_, u_order_.get(), n_), up_rhs_, up_y_,
                         tid, nthreads);
        }
        episodes_[tid].value = 0;
        rounds_[tid].value = 0;
      };
      fused_region_ = [this](unsigned tid, unsigned nthreads) {
        if (packed_l_.packed()) {
          lower_levels_k(PackedWalkSrc{packed_l_.cursor(tid)}, lo_rhs_,
                         lo_y_, tid, nthreads);
          upper_levels_k(PackedWalkSrc{packed_u_.cursor(tid)}, up_rhs_,
                         up_y_, tid, nthreads);
        } else {
          lower_levels_k(csr_lower(*l_, l_order_.get()), lo_rhs_, lo_y_,
                         tid, nthreads);
          upper_levels_k(csr_upper(*u_, u_order_.get(), n_), up_rhs_, up_y_,
                         tid, nthreads);
        }
        episodes_[tid].value = 0;
        rounds_[tid].value = 0;
      };
      batch_region_ = [this](unsigned tid, unsigned nthreads) {
        const bool packed = packed_l_.packed();
        if (batch_mode_ == BatchMode::kWavefrontInterleaved) {
          if (packed) {
            lower_levels_multi_k(PackedWalkSrc{packed_l_.cursor(tid)}, tid,
                                 nthreads);
            upper_levels_multi_k(PackedWalkSrc{packed_u_.cursor(tid)}, tid,
                                 nthreads);
          } else {
            lower_levels_multi_k(csr_lower(*l_, l_order_.get()), tid,
                                 nthreads);
            upper_levels_multi_k(csr_upper(*u_, u_order_.get(), n_), tid,
                                 nthreads);
          }
        } else {
          for (index_t c = 0; c < batch_k_; ++c) {
            const double* bc = batch_b_[static_cast<std::size_t>(c)];
            double* xc = batch_x_[static_cast<std::size_t>(c)];
            if (packed) {
              lower_levels_k(PackedWalkSrc{packed_l_.cursor(tid)}, bc,
                             tmp_.data(), tid, nthreads);
              upper_levels_k(PackedWalkSrc{packed_u_.cursor(tid)},
                             tmp_.data(), xc, tid, nthreads);
            } else {
              lower_levels_k(csr_lower(*l_, l_order_.get()), bc,
                             tmp_.data(), tid, nthreads);
              upper_levels_k(csr_upper(*u_, u_order_.get(), n_),
                             tmp_.data(), xc, tid, nthreads);
            }
          }
        }
        episodes_[tid].value = 0;
        rounds_[tid].value = 0;
      };
      break;
    case ExecutionStrategy::kBlockedHybrid:
      upper_region_ = [this](unsigned tid, unsigned nthreads) {
        std::uint64_t eps = 0, rds = 0;
        if (packed_u_.packed()) {
          upper_blocked_k(PackedWalkSrc{packed_u_.cursor(tid)}, up_rhs_,
                          up_y_, tid, nthreads, eps, rds);
        } else {
          upper_blocked_k(csr_upper(*u_, nullptr, n_), up_rhs_, up_y_, tid,
                          nthreads, eps, rds);
        }
        episodes_[tid].value = eps;
        rounds_[tid].value = rds;
      };
      fused_region_ = [this](unsigned tid, unsigned nthreads) {
        std::uint64_t eps = 0, rds = 0;
        if (packed_l_.packed()) {
          lower_blocked_k(PackedWalkSrc{packed_l_.cursor(tid)}, lo_rhs_,
                          lo_y_, tid, nthreads, eps, rds);
          barrier_.arrive_and_wait();
          upper_blocked_k(PackedWalkSrc{packed_u_.cursor(tid)}, up_rhs_,
                          up_y_, tid, nthreads, eps, rds);
        } else {
          lower_blocked_k(csr_lower(*l_, nullptr), lo_rhs_, lo_y_, tid,
                          nthreads, eps, rds);
          barrier_.arrive_and_wait();
          upper_blocked_k(csr_upper(*u_, nullptr, n_), up_rhs_, up_y_, tid,
                          nthreads, eps, rds);
        }
        episodes_[tid].value = eps;
        rounds_[tid].value = rds;
      };
      batch_region_ = [this](unsigned tid, unsigned nthreads) {
        std::uint64_t eps = 0, rds = 0;
        const bool packed = packed_l_.packed();
        if (batch_mode_ == BatchMode::kWavefrontInterleaved) {
          if (packed) {
            lower_blocked_multi_k(PackedWalkSrc{packed_l_.cursor(tid)}, tid,
                                  nthreads, eps, rds);
            barrier_.arrive_and_wait();
            upper_blocked_multi_k(PackedWalkSrc{packed_u_.cursor(tid)}, tid,
                                  nthreads, eps, rds);
          } else {
            lower_blocked_multi_k(csr_lower(*l_, nullptr), tid, nthreads,
                                  eps, rds);
            barrier_.arrive_and_wait();
            upper_blocked_multi_k(csr_upper(*u_, nullptr, n_), tid,
                                  nthreads, eps, rds);
          }
        } else {
          for (index_t c = 0; c < batch_k_; ++c) {
            if (c > 0) {
              barrier_.arrive_and_wait();
              if (tid == 0) reset_for_call(/*lower=*/true, /*upper=*/true);
              barrier_.arrive_and_wait();
            }
            const double* bc = batch_b_[static_cast<std::size_t>(c)];
            double* xc = batch_x_[static_cast<std::size_t>(c)];
            if (packed) {
              lower_blocked_k(PackedWalkSrc{packed_l_.cursor(tid)}, bc,
                              tmp_.data(), tid, nthreads, eps, rds);
              barrier_.arrive_and_wait();
              upper_blocked_k(PackedWalkSrc{packed_u_.cursor(tid)},
                              tmp_.data(), xc, tid, nthreads, eps, rds);
            } else {
              lower_blocked_k(csr_lower(*l_, nullptr), bc, tmp_.data(), tid,
                              nthreads, eps, rds);
              barrier_.arrive_and_wait();
              upper_blocked_k(csr_upper(*u_, nullptr, n_), tmp_.data(), xc,
                              tid, nthreads, eps, rds);
            }
          }
        }
        episodes_[tid].value = eps;
        rounds_[tid].value = rds;
      };
      break;
    case ExecutionStrategy::kSerial:
      // These run inline on the calling thread (dispatch() never enters
      // the pool for a serial plan); tid/nthreads are (0, 1).
      upper_region_ = [this](unsigned, unsigned) {
        if (packed_u_.packed()) {
          serial_upper_k(PackedWalkSrc{packed_u_.cursor(0)}, up_rhs_, up_y_);
        } else {
          serial_upper_k(csr_upper(*u_, nullptr, n_), up_rhs_, up_y_);
        }
      };
      fused_region_ = [this](unsigned, unsigned) {
        if (packed_l_.packed()) {
          serial_lower_k(PackedWalkSrc{packed_l_.cursor(0)}, lo_rhs_, lo_y_);
          serial_upper_k(PackedWalkSrc{packed_u_.cursor(0)}, up_rhs_, up_y_);
        } else {
          serial_lower_k(csr_lower(*l_, nullptr), lo_rhs_, lo_y_);
          serial_upper_k(csr_upper(*u_, nullptr, n_), up_rhs_, up_y_);
        }
      };
      batch_region_ = [this](unsigned, unsigned) {
        const bool packed = packed_l_.packed();
        if (batch_mode_ == BatchMode::kWavefrontInterleaved) {
          // One pass per factor with all k columns in the strip: even
          // with nothing to overlap across threads, each nonzero now
          // retires k right-hand sides through one lane kernel.
          if (packed) {
            serial_lower_multi_k(PackedWalkSrc{packed_l_.cursor(0)});
            serial_upper_multi_k(PackedWalkSrc{packed_u_.cursor(0)});
          } else {
            serial_lower_multi_k(csr_lower(*l_, nullptr));
            serial_upper_multi_k(csr_upper(*u_, nullptr, n_));
          }
          return;
        }
        for (index_t c = 0; c < batch_k_; ++c) {
          const double* bc = batch_b_[static_cast<std::size_t>(c)];
          double* xc = batch_x_[static_cast<std::size_t>(c)];
          if (packed) {
            serial_lower_k(PackedWalkSrc{packed_l_.cursor(0)}, bc,
                           tmp_.data());
            serial_upper_k(PackedWalkSrc{packed_u_.cursor(0)}, tmp_.data(),
                           xc);
          } else {
            serial_lower_k(csr_lower(*l_, nullptr), bc, tmp_.data());
            serial_upper_k(csr_upper(*u_, nullptr, n_), tmp_.data(), xc);
          }
        }
      };
      break;
    case ExecutionStrategy::kAuto:
      break;  // unreachable
  }
  upper_region_ = contained(std::move(upper_region_));
  fused_region_ = contained(std::move(fused_region_));
  batch_region_ = contained(std::move(batch_region_));
}

TrisolvePlan::TrisolvePlan(rt::ThreadPool& pool, const Csr& l, const Csr* u,
                           const PlanOptions& opts)
    : pool_(&pool),
      l_(&l),
      u_(u),
      opts_(opts),
      n_(l.rows),
      nth_(pool.clamp_threads(opts.nthreads)),
      barrier_(nth_ == 0 ? 1 : nth_) {
  check_factor(l, "lower");
  if (u) {
    check_factor(*u, "upper");
    if (u->rows != l.rows) {
      throw std::invalid_argument("TrisolvePlan: L/U dimension mismatch");
    }
  }
  ready_l_.ensure_size(n_);
  episodes_.resize(nth_);
  rounds_.resize(nth_);
  resolve_kernel();
  resolve_strategy();
  // Fault containment: every flag wait and barrier wait of this plan
  // polls the latch (and the optional stall budget); see DESIGN.md §12.
  barrier_.watch(&latch_, opts_.stall_budget);
  guard_ = rt::WaitGuard{&latch_, opts_.stall_budget,
                         core::to_string(telemetry_.strategy)};
  if (needs_reordering() && !l_order_) {
    l_order_ = std::make_unique<core::Reordering>(lower_solve_reordering(l));
  }
  if (!needs_reordering()) {
    l_order_.reset();  // kSerial / kBlockedHybrid run in source order
  }
  if (u) {
    ready_u_.ensure_size(n_);
    tmp_.resize(static_cast<std::size_t>(n_));
    if (needs_reordering()) {
      u_order_ =
          std::make_unique<core::Reordering>(upper_solve_reordering(*u));
    }
  }
  build_packed();
  bind_lower_region();
  if (u) bind_upper_regions();
}

TrisolvePlan::TrisolvePlan(rt::ThreadPool& pool, const Csr& l,
                           const PlanOptions& opts)
    : TrisolvePlan(pool, l, nullptr, opts) {}

TrisolvePlan::TrisolvePlan(rt::ThreadPool& pool, const Csr& l, const Csr& u,
                           const PlanOptions& opts)
    : TrisolvePlan(pool, l, &u, opts) {}

template <class Src>
void TrisolvePlan::lower_flags_k(Src src, const double* rhs_p, double* yp,
                                 unsigned tid, unsigned nthreads,
                                 std::uint64_t& episodes,
                                 std::uint64_t& rounds) {
  const int work_reps = opts_.work_reps;
  const bool ulp = ulp_dot_;
  std::uint64_t my_episodes = 0, my_rounds = 0;
  // Identical arithmetic (term order, division) to trisolve_lower_seq —
  // results are bitwise equal; the ready flags only sequence the reads.
  // The opt-in ulp path retires every wait first, then runs the
  // reassociated vector dot over the whole row.
  auto solve_row = [&](index_t k) {
    const PackedRow r = src.at(k);
    if (injector_) injector_->on_row(tid, r.row, &latch_);
    double acc = rhs_p[r.row];
    if (ulp) {
      for (index_t j = 0; j < r.cnt; ++j) {
        const std::uint64_t w =
            core::wait_done_guarded(ready_l_, r.cols[j], r.row, guard_);
        if (w != 0) {
          ++my_episodes;
          my_rounds += w;
        }
      }
      acc -= lanes_->dot(r.vals, r.cols, yp, r.cnt);
    } else {
      for (index_t j = 0; j < r.cnt; ++j) {
        const index_t c = r.cols[j];
        const std::uint64_t w =
            core::wait_done_guarded(ready_l_, c, r.row, guard_);
        if (w != 0) {
          ++my_episodes;
          my_rounds += w;
        }
        acc -= r.vals[j] * yp[c];
        if (work_reps > 0) acc = machine_emulation_work(acc, work_reps);
      }
    }
    yp[r.row] = acc / r.diag;
    ready_l_.mark_done(r.row);  // release-publishes the y store
  };
  rt::schedule_run(opts_.schedule, n_, tid, nthreads, &cursor_l_, solve_row);
  episodes += my_episodes;
  rounds += my_rounds;
}

template <class Src>
void TrisolvePlan::upper_flags_k(Src src, const double* rhs_p, double* yp,
                                 unsigned tid, unsigned nthreads,
                                 std::uint64_t& episodes,
                                 std::uint64_t& rounds) {
  const bool ulp = ulp_dot_;
  std::uint64_t my_episodes = 0, my_rounds = 0;
  auto solve_row = [&](index_t k) {
    const PackedRow r = src.at(k);
    if (injector_) injector_->on_row(tid, r.row, &latch_);
    double acc = rhs_p[r.row];
    if (ulp) {
      for (index_t j = 0; j < r.cnt; ++j) {
        const std::uint64_t w =
            core::wait_done_guarded(ready_u_, r.cols[j], r.row, guard_);
        if (w != 0) {
          ++my_episodes;
          my_rounds += w;
        }
      }
      acc -= lanes_->dot(r.vals, r.cols, yp, r.cnt);
    } else {
      for (index_t j = 0; j < r.cnt; ++j) {
        const index_t c = r.cols[j];
        const std::uint64_t w =
            core::wait_done_guarded(ready_u_, c, r.row, guard_);
        if (w != 0) {
          ++my_episodes;
          my_rounds += w;
        }
        acc -= r.vals[j] * yp[c];
      }
    }
    yp[r.row] = acc / r.diag;
    ready_u_.mark_done(r.row);
  };
  rt::schedule_run(opts_.schedule, n_, tid, nthreads, &cursor_u_, solve_row);
  episodes += my_episodes;
  rounds += my_rounds;
}

template <class Src>
void TrisolvePlan::lower_flags_multi_k(Src src, unsigned tid,
                                       unsigned nthreads,
                                       std::uint64_t& episodes,
                                       std::uint64_t& rounds) {
  const index_t k = batch_k_;
  const double* const* b_cols = batch_b_.data();
  double* tp = batch_tmp_.data();
  const int work_reps = opts_.work_reps;
  std::uint64_t my_episodes = 0, my_rounds = 0;
  // Column c runs the exact arithmetic of the single-RHS kernel on
  // b_cols[c] (term order, division) — bitwise equal per column. One
  // ready flag per row covers all k columns: a dependence is waited on
  // once, not k times, and the row's record is read once for the whole
  // batch. Row i's k results accumulate in place in the row-major strip,
  // where consumers read them contiguously.
  auto solve_row = [&](index_t pos) {
    const PackedRow r = src.at(pos);
    if (injector_) injector_->on_row(tid, r.row, &latch_);
    double* ti = tp + r.row * k;
    for (index_t c = 0; c < k; ++c) ti[c] = b_cols[c][r.row];
    // Waits retire first (pulling each ready dependence's strip row
    // toward L1 as it lands), then the whole dependence list runs
    // through one fused lane-kernel call.
    for (index_t j = 0; j < r.cnt; ++j) {
      const index_t col = r.cols[j];
      const std::uint64_t w = core::wait_done_guarded(ready_l_, col, r.row, guard_);
      if (w != 0) {
        ++my_episodes;
        my_rounds += w;
      }
      prefetch_strip_row(lanes_, tp, col, k);
    }
    lane_row_update(lanes_, ti, tp, r, k, work_reps);
    lane_div(lanes_, ti, r.diag, k);
    ready_l_.mark_done(r.row);  // release-publishes all k stores of this row
  };
  rt::schedule_run(opts_.schedule, n_, tid, nthreads, &cursor_l_, solve_row);
  episodes += my_episodes;
  rounds += my_rounds;
}

template <class Src>
void TrisolvePlan::upper_flags_multi_k(Src src, unsigned tid,
                                       unsigned nthreads,
                                       std::uint64_t& episodes,
                                       std::uint64_t& rounds) {
  const index_t k = batch_k_;
  double* const* x_cols = batch_x_.data();
  double* tp = batch_tmp_.data();
  std::uint64_t my_episodes = 0, my_rounds = 0;
  // Row i's strip holds the forward-solve results on entry and is updated
  // in place into the backward-solve solution; the solution stays
  // resident in the strip (consumers read it contiguously) and is
  // mirrored into the caller's column vectors before the row is marked.
  auto solve_row = [&](index_t pos) {
    const PackedRow r = src.at(pos);
    if (injector_) injector_->on_row(tid, r.row, &latch_);
    double* ti = tp + r.row * k;
    for (index_t j = 0; j < r.cnt; ++j) {
      const index_t col = r.cols[j];
      const std::uint64_t w = core::wait_done_guarded(ready_u_, col, r.row, guard_);
      if (w != 0) {
        ++my_episodes;
        my_rounds += w;
      }
      prefetch_strip_row(lanes_, tp, col, k);
    }
    lane_row_update(lanes_, ti, tp, r, k, /*work_reps=*/0);
    lane_div(lanes_, ti, r.diag, k);
    for (index_t c = 0; c < k; ++c) x_cols[c][r.row] = ti[c];
    ready_u_.mark_done(r.row);
  };
  rt::schedule_run(opts_.schedule, n_, tid, nthreads, &cursor_u_, solve_row);
  episodes += my_episodes;
  rounds += my_rounds;
}

template <class Src>
void TrisolvePlan::lower_levels_k(Src src, const double* rhs_p, double* yp,
                                  unsigned tid, unsigned nthreads) {
  // Bulk-synchronous wavefronts: every producer of level l finished
  // before the barrier that opens level l+1, so no flags are consulted
  // or published. Row arithmetic is identical to the flag kernels.
  const core::Reordering& ord = *l_order_;
  const int work_reps = opts_.work_reps;
  const bool ulp = ulp_dot_;
  for (index_t lvl = 0; lvl < ord.num_levels(); ++lvl) {
    const index_t lo = ord.level_ptr[static_cast<std::size_t>(lvl)];
    const index_t hi = ord.level_ptr[static_cast<std::size_t>(lvl) + 1];
    const rt::IterRange r = rt::static_block_range(hi - lo, tid, nthreads);
    for (index_t pos = lo + r.begin; pos < lo + r.end; ++pos) {
      const PackedRow row = src.at(pos);
      if (injector_) injector_->on_row(tid, row.row, &latch_);
      double acc = rhs_p[row.row];
      if (ulp) {
        acc -= lanes_->dot(row.vals, row.cols, yp, row.cnt);
      } else {
        for (index_t j = 0; j < row.cnt; ++j) {
          acc -= row.vals[j] * yp[row.cols[j]];
          if (work_reps > 0) acc = machine_emulation_work(acc, work_reps);
        }
      }
      yp[row.row] = acc / row.diag;
    }
    // The trailing episode doubles as the L→U handoff of a fused solve.
    barrier_.arrive_and_wait();
  }
}

template <class Src>
void TrisolvePlan::upper_levels_k(Src src, const double* rhs_p, double* yp,
                                  unsigned tid, unsigned nthreads) {
  const core::Reordering& ord = *u_order_;
  const bool ulp = ulp_dot_;
  for (index_t lvl = 0; lvl < ord.num_levels(); ++lvl) {
    const index_t lo = ord.level_ptr[static_cast<std::size_t>(lvl)];
    const index_t hi = ord.level_ptr[static_cast<std::size_t>(lvl) + 1];
    const rt::IterRange r = rt::static_block_range(hi - lo, tid, nthreads);
    for (index_t pos = lo + r.begin; pos < lo + r.end; ++pos) {
      const PackedRow row = src.at(pos);
      if (injector_) injector_->on_row(tid, row.row, &latch_);
      double acc = rhs_p[row.row];
      if (ulp) {
        acc -= lanes_->dot(row.vals, row.cols, yp, row.cnt);
      } else {
        for (index_t j = 0; j < row.cnt; ++j) {
          acc -= row.vals[j] * yp[row.cols[j]];
        }
      }
      yp[row.row] = acc / row.diag;
    }
    barrier_.arrive_and_wait();
  }
}

template <class Src>
void TrisolvePlan::lower_levels_multi_k(Src src, unsigned tid,
                                        unsigned nthreads) {
  const core::Reordering& ord = *l_order_;
  const index_t k = batch_k_;
  const double* const* b_cols = batch_b_.data();
  double* tp = batch_tmp_.data();
  const int work_reps = opts_.work_reps;
  auto body = [&](const PackedRow& row) {
    if (injector_) injector_->on_row(tid, row.row, &latch_);
    double* ti = tp + row.row * k;
    for (index_t c = 0; c < k; ++c) ti[c] = b_cols[c][row.row];
    lane_row_update(lanes_, ti, tp, row, k, work_reps);
    lane_div(lanes_, ti, row.diag, k);
  };
  const bool look = want_lookahead(lanes_, k, work_reps);
  for (index_t lvl = 0; lvl < ord.num_levels(); ++lvl) {
    const index_t lo = ord.level_ptr[static_cast<std::size_t>(lvl)];
    const index_t hi = ord.level_ptr[static_cast<std::size_t>(lvl) + 1];
    const rt::IterRange r = rt::static_block_range(hi - lo, tid, nthreads);
    const index_t end = lo + r.end;
    index_t pos = lo + r.begin;
    if (look && pos < end) {
      // Pipelined within the level: the lookahead row's dependences are
      // all in earlier levels, so prefetching them is always final data.
      PackedRow row = src.at(pos);
      for (; pos < end; ++pos) {
        const PackedRow nxt = pos + 1 < end ? src.at(pos + 1) : PackedRow{};
        prefetch_row_deps(nxt, tp, k);
        body(row);
        row = nxt;
      }
    } else {
      for (; pos < end; ++pos) body(src.at(pos));
    }
    barrier_.arrive_and_wait();
  }
}

template <class Src>
void TrisolvePlan::upper_levels_multi_k(Src src, unsigned tid,
                                        unsigned nthreads) {
  const core::Reordering& ord = *u_order_;
  const index_t k = batch_k_;
  double* const* x_cols = batch_x_.data();
  double* tp = batch_tmp_.data();
  auto body = [&](const PackedRow& row) {
    if (injector_) injector_->on_row(tid, row.row, &latch_);
    double* ti = tp + row.row * k;
    lane_row_update(lanes_, ti, tp, row, k, /*work_reps=*/0);
    lane_div(lanes_, ti, row.diag, k);
    for (index_t c = 0; c < k; ++c) x_cols[c][row.row] = ti[c];
  };
  const bool look = want_lookahead(lanes_, k, /*work_reps=*/0);
  for (index_t lvl = 0; lvl < ord.num_levels(); ++lvl) {
    const index_t lo = ord.level_ptr[static_cast<std::size_t>(lvl)];
    const index_t hi = ord.level_ptr[static_cast<std::size_t>(lvl) + 1];
    const rt::IterRange r = rt::static_block_range(hi - lo, tid, nthreads);
    const index_t end = lo + r.end;
    index_t pos = lo + r.begin;
    if (look && pos < end) {
      PackedRow row = src.at(pos);
      for (; pos < end; ++pos) {
        const PackedRow nxt = pos + 1 < end ? src.at(pos + 1) : PackedRow{};
        prefetch_row_deps(nxt, tp, k);
        body(row);
        row = nxt;
      }
    } else {
      for (; pos < end; ++pos) body(src.at(pos));
    }
    barrier_.arrive_and_wait();
  }
}

template <class Src>
void TrisolvePlan::lower_blocked_k(Src src, const double* rhs_p, double* yp,
                                   unsigned tid, unsigned nthreads,
                                   std::uint64_t& episodes,
                                   std::uint64_t& rounds) {
  // Static contiguous blocks in source order: a dependence on a row this
  // thread owns was already retired (rows run in increasing order), so
  // only boundary-crossing dependences — c before my block's first row —
  // consult a flag. Every row is still published — marking is one release
  // store, and whether a consumer exists in another block is not worth a
  // build-time scan to know.
  const int work_reps = opts_.work_reps;
  const bool ulp = ulp_dot_;
  std::uint64_t my_episodes = 0, my_rounds = 0;
  const rt::IterRange range = rt::static_block_range(n_, tid, nthreads);
  for (index_t pos = range.begin; pos < range.end; ++pos) {
    const PackedRow r = src.at(pos);  // r.row == pos
    if (injector_) injector_->on_row(tid, r.row, &latch_);
    double acc = rhs_p[r.row];
    if (ulp) {
      for (index_t j = 0; j < r.cnt; ++j) {
        const index_t c = r.cols[j];
        if (c < range.begin) {
          const std::uint64_t w =
              core::wait_done_guarded(ready_l_, c, r.row, guard_);
          if (w != 0) {
            ++my_episodes;
            my_rounds += w;
          }
        }
      }
      acc -= lanes_->dot(r.vals, r.cols, yp, r.cnt);
    } else {
      for (index_t j = 0; j < r.cnt; ++j) {
        const index_t c = r.cols[j];
        if (c < range.begin) {  // cross-block: the only flag traffic
          const std::uint64_t w =
              core::wait_done_guarded(ready_l_, c, r.row, guard_);
          if (w != 0) {
            ++my_episodes;
            my_rounds += w;
          }
        }
        acc -= r.vals[j] * yp[c];
        if (work_reps > 0) acc = machine_emulation_work(acc, work_reps);
      }
    }
    yp[r.row] = acc / r.diag;
    ready_l_.mark_done(r.row);
  }
  episodes += my_episodes;
  rounds += my_rounds;
}

template <class Src>
void TrisolvePlan::upper_blocked_k(Src src, const double* rhs_p, double* yp,
                                   unsigned tid, unsigned nthreads,
                                   std::uint64_t& episodes,
                                   std::uint64_t& rounds) {
  std::uint64_t my_episodes = 0, my_rounds = 0;
  // Position space of the backward solve: position k is row n-1-k, so
  // this thread's block is a contiguous run of *descending* rows topped
  // by row n-1-range.begin; every intra-block dependence (c > i up to
  // that top row) is already retired, only rows above it need the flag.
  const bool ulp = ulp_dot_;
  const rt::IterRange range = rt::static_block_range(n_, tid, nthreads);
  const index_t top = n_ - 1 - range.begin;
  for (index_t pos = range.begin; pos < range.end; ++pos) {
    const PackedRow r = src.at(pos);  // r.row == n_-1-pos
    if (injector_) injector_->on_row(tid, r.row, &latch_);
    double acc = rhs_p[r.row];
    if (ulp) {
      for (index_t j = 0; j < r.cnt; ++j) {
        const index_t c = r.cols[j];
        if (c > top) {
          const std::uint64_t w =
              core::wait_done_guarded(ready_u_, c, r.row, guard_);
          if (w != 0) {
            ++my_episodes;
            my_rounds += w;
          }
        }
      }
      acc -= lanes_->dot(r.vals, r.cols, yp, r.cnt);
    } else {
      for (index_t j = 0; j < r.cnt; ++j) {
        const index_t c = r.cols[j];
        if (c > top) {
          const std::uint64_t w =
              core::wait_done_guarded(ready_u_, c, r.row, guard_);
          if (w != 0) {
            ++my_episodes;
            my_rounds += w;
          }
        }
        acc -= r.vals[j] * yp[c];
      }
    }
    yp[r.row] = acc / r.diag;
    ready_u_.mark_done(r.row);
  }
  episodes += my_episodes;
  rounds += my_rounds;
}

template <class Src>
void TrisolvePlan::lower_blocked_multi_k(Src src, unsigned tid,
                                         unsigned nthreads,
                                         std::uint64_t& episodes,
                                         std::uint64_t& rounds) {
  const index_t k = batch_k_;
  const double* const* b_cols = batch_b_.data();
  double* tp = batch_tmp_.data();
  const int work_reps = opts_.work_reps;
  std::uint64_t my_episodes = 0, my_rounds = 0;
  const rt::IterRange range = rt::static_block_range(n_, tid, nthreads);
  for (index_t pos = range.begin; pos < range.end; ++pos) {
    const PackedRow r = src.at(pos);
    if (injector_) injector_->on_row(tid, r.row, &latch_);
    double* ti = tp + r.row * k;
    for (index_t c = 0; c < k; ++c) ti[c] = b_cols[c][r.row];
    // Cross-block waits retire first; intra-block dependences already
    // did (rows run in increasing order within the block).
    for (index_t j = 0; j < r.cnt; ++j) {
      const index_t col = r.cols[j];
      if (col < range.begin) {
        const std::uint64_t w =
            core::wait_done_guarded(ready_l_, col, r.row, guard_);
        if (w != 0) {
          ++my_episodes;
          my_rounds += w;
        }
      }
      prefetch_strip_row(lanes_, tp, col, k);
    }
    lane_row_update(lanes_, ti, tp, r, k, work_reps);
    lane_div(lanes_, ti, r.diag, k);
    ready_l_.mark_done(r.row);
  }
  episodes += my_episodes;
  rounds += my_rounds;
}

template <class Src>
void TrisolvePlan::upper_blocked_multi_k(Src src, unsigned tid,
                                         unsigned nthreads,
                                         std::uint64_t& episodes,
                                         std::uint64_t& rounds) {
  const index_t k = batch_k_;
  double* const* x_cols = batch_x_.data();
  double* tp = batch_tmp_.data();
  std::uint64_t my_episodes = 0, my_rounds = 0;
  const rt::IterRange range = rt::static_block_range(n_, tid, nthreads);
  const index_t top = n_ - 1 - range.begin;
  for (index_t pos = range.begin; pos < range.end; ++pos) {
    const PackedRow r = src.at(pos);
    if (injector_) injector_->on_row(tid, r.row, &latch_);
    double* ti = tp + r.row * k;
    for (index_t j = 0; j < r.cnt; ++j) {
      const index_t col = r.cols[j];
      if (col > top) {
        const std::uint64_t w =
            core::wait_done_guarded(ready_u_, col, r.row, guard_);
        if (w != 0) {
          ++my_episodes;
          my_rounds += w;
        }
      }
      prefetch_strip_row(lanes_, tp, col, k);
    }
    lane_row_update(lanes_, ti, tp, r, k, /*work_reps=*/0);
    lane_div(lanes_, ti, r.diag, k);
    for (index_t c = 0; c < k; ++c) x_cols[c][r.row] = ti[c];
    ready_u_.mark_done(r.row);
  }
  episodes += my_episodes;
  rounds += my_rounds;
}

template <class Src>
void TrisolvePlan::serial_lower_k(Src src, const double* rhs_p,
                                  double* yp) {
  // The strategy for chains is to pay NOTHING — no flags, no barrier, no
  // pool wake-up: the sequential Fig. 7 arithmetic the bitwise contract
  // is defined against, read through whichever layout the plan owns.
  const int work_reps = opts_.work_reps;
  const bool ulp = ulp_dot_;
  for (index_t k = 0; k < n_; ++k) {
    const PackedRow r = src.at(k);
    if (injector_) injector_->on_row(0, r.row, &latch_);
    double acc = rhs_p[r.row];
    if (ulp) {
      acc -= lanes_->dot(r.vals, r.cols, yp, r.cnt);
    } else {
      for (index_t j = 0; j < r.cnt; ++j) {
        acc -= r.vals[j] * yp[r.cols[j]];
        if (work_reps > 0) acc = machine_emulation_work(acc, work_reps);
      }
    }
    yp[r.row] = acc / r.diag;
  }
}

template <class Src>
void TrisolvePlan::serial_upper_k(Src src, const double* rhs_p,
                                  double* yp) {
  const bool ulp = ulp_dot_;
  for (index_t k = 0; k < n_; ++k) {
    const PackedRow r = src.at(k);
    if (injector_) injector_->on_row(0, r.row, &latch_);
    double acc = rhs_p[r.row];
    if (ulp) {
      acc -= lanes_->dot(r.vals, r.cols, yp, r.cnt);
    } else {
      for (index_t j = 0; j < r.cnt; ++j) {
        acc -= r.vals[j] * yp[r.cols[j]];
      }
    }
    yp[r.row] = acc / r.diag;
  }
}

template <class Src>
void TrisolvePlan::serial_lower_multi_k(Src src) {
  // The interleaved batch through the serial walk: no flags, no barrier,
  // no dispatch — but the k columns of each strip row still retire
  // through one lane kernel per nonzero, which is where a single-core
  // batch server earns its vector units (bitwise equal per column to the
  // column-sequential walk; same term order, same division).
  const index_t k = batch_k_;
  const double* const* b_cols = batch_b_.data();
  double* tp = batch_tmp_.data();
  const int work_reps = opts_.work_reps;
  auto body = [&](const PackedRow& r) {
    if (injector_) injector_->on_row(0, r.row, &latch_);
    double* ti = tp + r.row * k;
    for (index_t c = 0; c < k; ++c) ti[c] = b_cols[c][r.row];
    lane_row_update(lanes_, ti, tp, r, k, work_reps);
    lane_div(lanes_, ti, r.diag, k);
  };
  if (want_lookahead(lanes_, k, work_reps) && n_ > 0) {
    PackedRow r = src.at(0);
    for (index_t pos = 0; pos < n_; ++pos) {
      const PackedRow nxt = pos + 1 < n_ ? src.at(pos + 1) : PackedRow{};
      prefetch_row_deps(nxt, tp, k);
      body(r);
      r = nxt;
    }
  } else {
    for (index_t pos = 0; pos < n_; ++pos) body(src.at(pos));
  }
}

template <class Src>
void TrisolvePlan::serial_upper_multi_k(Src src) {
  const index_t k = batch_k_;
  double* const* x_cols = batch_x_.data();
  double* tp = batch_tmp_.data();
  auto body = [&](const PackedRow& r) {
    if (injector_) injector_->on_row(0, r.row, &latch_);
    double* ti = tp + r.row * k;
    lane_row_update(lanes_, ti, tp, r, k, /*work_reps=*/0);
    lane_div(lanes_, ti, r.diag, k);
    for (index_t c = 0; c < k; ++c) x_cols[c][r.row] = ti[c];
  };
  if (want_lookahead(lanes_, k, /*work_reps=*/0) && n_ > 0) {
    PackedRow r = src.at(0);
    for (index_t pos = 0; pos < n_; ++pos) {
      const PackedRow nxt = pos + 1 < n_ ? src.at(pos + 1) : PackedRow{};
      prefetch_row_deps(nxt, tp, k);
      body(r);
      r = nxt;
    }
  } else {
    for (index_t pos = 0; pos < n_; ++pos) body(src.at(pos));
  }
}

void TrisolvePlan::refresh_values(const IluFactors& f) {
  if (poisoned_) {
    throw rt::PlanPoisonedError(
        "TrisolvePlan::refresh_values: plan poisoned by an earlier "
        "in-region fault; rebuild the plan");
  }
  if (!u_) {
    throw std::logic_error("TrisolvePlan::refresh_values: lower-only plan");
  }
  using clock = std::chrono::steady_clock;
  const clock::time_point t0 = clock::now();
  // Same-object refreshes (the factorization re-filled the values of the
  // very factors the plan reads) skip the pattern comparison; a foreign
  // pair must prove pattern equality before the plan rebinds to it.
  auto same_pattern = [](const Csr& x, const Csr& y) noexcept {
    return x.rows == y.rows && x.cols == y.cols && x.ptr == y.ptr &&
           x.idx == y.idx;
  };
  if ((&f.l != l_ && !same_pattern(f.l, *l_)) ||
      (&f.u != u_ && !same_pattern(f.u, *u_))) {
    throw std::invalid_argument(
        "TrisolvePlan::refresh_values: pattern mismatch — a value-only "
        "refresh requires the plan's sparsity pattern; rebuild the plan");
  }
  l_ = &f.l;  // kCsrView's whole refresh: the kernels read through these
  u_ = &f.u;
  if (telemetry_.layout == PlanLayout::kPacked) {
    if (packed_l_.slab_count() <= 1) {
      // Serial plans repack inline — the calling thread is the executor.
      packed_l_.repack_values(*l_, 0);
      packed_u_.repack_values(*u_, 0);
    } else {
      pool_->parallel_region(nth_, refresh_region_);
    }
  }
  const clock::time_point t1 = clock::now();
  telemetry_.refresh_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  ++refreshes_;
}

void TrisolvePlan::reset_for_call(bool lower, bool upper) noexcept {
  // The whole per-call reset: two O(1) epoch bumps and two counter
  // stores. Compare trisolve_doacross's per-call Barrier + two vector
  // allocations + O(n/p) flag sweep + extra barrier. (Flag-free
  // strategies pay the bumps too — they are two relaxed stores.)
  if (lower) {
    ready_l_.begin_epoch();
    cursor_l_.store(0, std::memory_order_relaxed);
  }
  if (upper) {
    ready_u_.begin_epoch();
    cursor_u_.store(0, std::memory_order_relaxed);
  }
}

core::DoacrossStats TrisolvePlan::dispatch(
    const rt::ThreadPool::RegionFn& region) {
  if (poisoned_) {
    throw rt::PlanPoisonedError(
        "TrisolvePlan: plan poisoned by an earlier in-region fault; "
        "rebuild the plan before solving again");
  }
  using clock = std::chrono::steady_clock;
  core::DoacrossStats stats;
  if (telemetry_.strategy == ExecutionStrategy::kSerial) {
    // The serial strategy's entire value is paying zero parallel
    // overhead: the region runs inline on the calling thread, the pool
    // is never woken, and there are no wait episodes to sum.
    const clock::time_point t0 = clock::now();
    region(0, 1);
    const clock::time_point t1 = clock::now();
    if (latch_.raised()) {
      poisoned_ = true;
      latch_.rethrow_and_reset();
    }
    stats.execute_seconds = std::chrono::duration<double>(t1 - t0).count();
    ++solves_;
    // Race bookkeeping only after a SUCCESSFUL epoch: a fault above
    // poisons the plan without corrupting the race or feeding the cache.
    if (calibrating_) note_calibration_epoch(stats.execute_seconds);
    return stats;
  }
  const clock::time_point t0 = clock::now();
  pool_->parallel_region(nth_, region);
  const clock::time_point t1 = clock::now();
  if (latch_.raised()) {
    // A worker faulted inside the region; its peers drained their flag
    // waits via the latch and joined. Partial y/x contents are garbage —
    // poison so every later solve fails fast instead of reading them.
    poisoned_ = true;
    latch_.rethrow_and_reset();
  }
  // Preprocessing was amortized at plan build and the postprocessing
  // sweep no longer exists, so the whole call is executor time (pool
  // wake-up included — the number a repeated caller actually pays).
  stats.execute_seconds = std::chrono::duration<double>(t1 - t0).count();
  for (unsigned t = 0; t < nth_; ++t) {
    stats.wait_episodes += episodes_[t].value;
    stats.wait_rounds += rounds_[t].value;
  }
  ++solves_;
  if (calibrating_) note_calibration_epoch(stats.execute_seconds);
  return stats;
}

core::DoacrossStats TrisolvePlan::solve_lower(std::span<const double> rhs,
                                              std::span<double> y) {
  if (static_cast<index_t>(rhs.size()) < n_ ||
      static_cast<index_t>(y.size()) < n_) {
    throw std::invalid_argument("TrisolvePlan::solve_lower: size mismatch");
  }
  if (n_ == 0) return {};
  reset_for_call(/*lower=*/true, /*upper=*/false);
  lo_rhs_ = rhs.data();
  lo_y_ = y.data();
  return dispatch(lower_region_);
}

core::DoacrossStats TrisolvePlan::solve_upper(std::span<const double> rhs,
                                              std::span<double> z) {
  if (!u_) {
    throw std::logic_error("TrisolvePlan::solve_upper: lower-only plan");
  }
  if (static_cast<index_t>(rhs.size()) < n_ ||
      static_cast<index_t>(z.size()) < n_) {
    throw std::invalid_argument("TrisolvePlan::solve_upper: size mismatch");
  }
  if (n_ == 0) return {};
  reset_for_call(/*lower=*/false, /*upper=*/true);
  up_rhs_ = rhs.data();
  up_y_ = z.data();
  return dispatch(upper_region_);
}

core::DoacrossStats TrisolvePlan::solve(std::span<const double> rhs,
                                        std::span<double> z) {
  if (!u_) {
    throw std::logic_error("TrisolvePlan::solve: lower-only plan");
  }
  if (static_cast<index_t>(rhs.size()) < n_ ||
      static_cast<index_t>(z.size()) < n_) {
    throw std::invalid_argument("TrisolvePlan::solve: size mismatch");
  }
  if (n_ == 0) return {};
  reset_for_call(/*lower=*/true, /*upper=*/true);
  lo_rhs_ = rhs.data();
  lo_y_ = tmp_.data();
  up_rhs_ = tmp_.data();
  up_y_ = z.data();
  return dispatch(fused_region_);
}

void TrisolvePlan::reserve_batch(index_t max_k, BatchMode mode) {
  if (max_k < 1) {
    throw std::invalid_argument("TrisolvePlan::reserve_batch: max_k < 1");
  }
  const std::size_t k = static_cast<std::size_t>(max_k);
  if (batch_b_.size() < k) {
    batch_b_.resize(k);
    batch_x_.resize(k);
  }
  // The n-by-k strip backs only the interleaved mode; column-sequential
  // batches keep the documented O(n) scratch (the plan's tmp_). Serial
  // plans run the interleaved walk too since the lane kernels landed —
  // a single core still retires k columns per nonzero through one
  // vector op — so every strategy needs the strip in this mode.
  if (mode == BatchMode::kWavefrontInterleaved) {
    const std::size_t strip = static_cast<std::size_t>(n_) * k;
    if (batch_tmp_.size() < strip) batch_tmp_.resize(strip);
  }
}

core::DoacrossStats TrisolvePlan::run_batch(index_t k, BatchMode mode) {
  if (n_ == 0) return {};
  batch_k_ = k;
  batch_mode_ = mode;
  // Scalar-vs-vector kernel race (DESIGN.md §14): fed only by dispatches
  // that actually execute lane kernels — interleaved batches at least one
  // vector wide, after the strategy race locked in (so the timing
  // compares kernels, not strategies) and never under machine emulation
  // (which pins the instrumented scalar loop). Both candidates are
  // bitwise identical per column, so exploring is invisible to callers.
  const bool kernel_epoch = kernel_race_.active() && !calibrating_ &&
                            mode == BatchMode::kWavefrontInterleaved &&
                            k >= kernels::kLaneMin && opts_.work_reps == 0;
  if (kernel_epoch) {
    const kernels::KernelChoice cand = kernel_race_.candidate();
    set_lanes(cand == kernels::KernelChoice::kScalar
                  ? &kernels::scalar_ops()
                  : &kernels::dispatched_ops());
    telemetry_.kernel = cand;
  }
  reset_for_call(/*lower=*/true, /*upper=*/true);
#ifndef NDEBUG
  // A calibration epoch may advance the race inside dispatch() —
  // switching the strategy the budget is defined by, and a lock-in can
  // spend an extra dispatch packing the winner — so the budget assert
  // only covers locked-in plans.
  const bool was_calibrating = calibrating_;
  const rt::DispatchProbe probe(*pool_);
#endif
  const core::DoacrossStats stats = dispatch(batch_region_);
#ifndef NDEBUG
  assert((was_calibrating ||
          probe.delta() ==
              (telemetry_.strategy == ExecutionStrategy::kSerial ? 0u
                                                                 : 1u)) &&
         "solve_batch must cost exactly one pool dispatch (zero serial)");
#endif
  // Only a SUCCESSFUL epoch feeds the race — a fault above threw out of
  // dispatch() after poisoning the plan.
  if (kernel_epoch) note_kernel_epoch(stats.execute_seconds, k);
  batch_columns_ += static_cast<std::uint64_t>(k);
  return stats;
}

core::DoacrossStats TrisolvePlan::solve_batch(std::span<const double> b,
                                              std::span<double> x, index_t k,
                                              BatchMode mode) {
  if (!u_) {
    throw std::logic_error("TrisolvePlan::solve_batch: lower-only plan");
  }
  if (k < 1) {
    throw std::invalid_argument("TrisolvePlan::solve_batch: k must be >= 1");
  }
  if (static_cast<index_t>(b.size()) < n_ * k ||
      static_cast<index_t>(x.size()) < n_ * k) {
    throw std::invalid_argument(
        "TrisolvePlan::solve_batch: size mismatch — b has " +
        std::to_string(b.size()) + " and x has " + std::to_string(x.size()) +
        " entries but n*k = " + std::to_string(n_) + "*" + std::to_string(k) +
        " = " + std::to_string(n_ * k) + " are required");
  }
  reserve_batch(k, mode);
  for (index_t c = 0; c < k; ++c) {
    batch_b_[static_cast<std::size_t>(c)] = b.data() + c * n_;
    batch_x_[static_cast<std::size_t>(c)] = x.data() + c * n_;
  }
  return run_batch(k, mode);
}

core::DoacrossStats TrisolvePlan::solve_batch(const double* const* b_cols,
                                              double* const* x_cols,
                                              index_t k, BatchMode mode) {
  if (!u_) {
    throw std::logic_error("TrisolvePlan::solve_batch: lower-only plan");
  }
  if (k < 1) {
    throw std::invalid_argument("TrisolvePlan::solve_batch: k must be >= 1");
  }
  reserve_batch(k, mode);
  for (index_t c = 0; c < k; ++c) {
    batch_b_[static_cast<std::size_t>(c)] = b_cols[c];
    batch_x_[static_cast<std::size_t>(c)] = x_cols[c];
  }
  return run_batch(k, mode);
}

}  // namespace pdx::sparse
