#include "sparse/trisolve_plan.hpp"

#include <chrono>
#include <stdexcept>

#include "runtime/schedule.hpp"
#include "sparse/levels.hpp"
#include "sparse/trisolve.hpp"

namespace pdx::sparse {

namespace {

void check_factor(const Csr& m, const char* what) {
  if (m.rows != m.cols) {
    throw std::invalid_argument(std::string("TrisolvePlan: ") + what +
                                " factor is not square");
  }
}

}  // namespace

TrisolvePlan::TrisolvePlan(rt::ThreadPool& pool, const Csr& l,
                           const PlanOptions& opts)
    : pool_(&pool),
      l_(&l),
      u_(nullptr),
      opts_(opts),
      n_(l.rows),
      nth_(pool.clamp_threads(opts.nthreads)),
      barrier_(nth_ == 0 ? 1 : nth_) {
  check_factor(l, "lower");
  ready_l_.ensure_size(n_);
  episodes_.resize(nth_);
  rounds_.resize(nth_);
  if (opts_.reorder) {
    l_order_ = std::make_unique<core::Reordering>(lower_solve_reordering(l));
  }
  // Region functors are bound once, here; per-call inputs travel through
  // the lo_/up_ pointer members. This is what makes solve_* allocation
  // free: a fresh capturing lambda would not fit std::function's small
  // buffer and would heap-allocate on every call.
  lower_region_ = [this](unsigned tid, unsigned nthreads) {
    std::uint64_t eps = 0, rds = 0;
    lower_kernel(tid, nthreads, eps, rds);
    episodes_[tid].value = eps;
    rounds_[tid].value = rds;
  };
}

TrisolvePlan::TrisolvePlan(rt::ThreadPool& pool, const Csr& l, const Csr& u,
                           const PlanOptions& opts)
    : TrisolvePlan(pool, l, opts) {  // all lower-solve state
  check_factor(u, "upper");
  if (u.rows != l.rows) {
    throw std::invalid_argument("TrisolvePlan: L/U dimension mismatch");
  }
  u_ = &u;
  ready_u_.ensure_size(n_);
  tmp_.resize(static_cast<std::size_t>(n_));
  if (opts_.reorder) {
    u_order_ = std::make_unique<core::Reordering>(upper_solve_reordering(u));
  }
  upper_region_ = [this](unsigned tid, unsigned nthreads) {
    std::uint64_t eps = 0, rds = 0;
    upper_kernel(tid, nthreads, eps, rds);
    episodes_[tid].value = eps;
    rounds_[tid].value = rds;
  };
  fused_region_ = [this](unsigned tid, unsigned nthreads) {
    std::uint64_t eps = 0, rds = 0;
    lower_kernel(tid, nthreads, eps, rds);
    // The one synchronization point of a fused preconditioner
    // application: every tmp_ element is published before any thread
    // starts consuming it in the backward solve. The busy-wait flags
    // handle everything else on both sides.
    barrier_.arrive_and_wait();
    upper_kernel(tid, nthreads, eps, rds);
    episodes_[tid].value = eps;
    rounds_[tid].value = rds;
  };
}

void TrisolvePlan::lower_kernel(unsigned tid, unsigned nthreads,
                                std::uint64_t& episodes,
                                std::uint64_t& rounds) noexcept {
  const Csr& l = *l_;
  const index_t* order = l_order_ ? l_order_->order.data() : nullptr;
  const double* rhs_p = lo_rhs_;
  double* yp = lo_y_;
  const int work_reps = opts_.work_reps;
  std::uint64_t my_episodes = 0, my_rounds = 0;
  // Identical arithmetic (term order, division) to trisolve_lower_seq —
  // results are bitwise equal; the ready flags only sequence the reads.
  auto solve_row = [&](index_t k) noexcept {
    const index_t i = order ? order[k] : k;
    double acc = rhs_p[i];
    const index_t k_end = l.row_end(i) - 1;  // diagonal last
    for (index_t kk = l.row_begin(i); kk < k_end; ++kk) {
      const index_t c = l.idx[static_cast<std::size_t>(kk)];
      const std::uint64_t r = ready_l_.wait_done(c);
      if (r != 0) {
        ++my_episodes;
        my_rounds += r;
      }
      acc -= l.val[static_cast<std::size_t>(kk)] * yp[c];
      if (work_reps > 0) acc = machine_emulation_work(acc, work_reps);
    }
    yp[i] = acc / l.val[static_cast<std::size_t>(k_end)];
    ready_l_.mark_done(i);  // release-publishes the y store
  };
  rt::schedule_run(opts_.schedule, n_, tid, nthreads, &cursor_l_, solve_row);
  episodes += my_episodes;
  rounds += my_rounds;
}

void TrisolvePlan::upper_kernel(unsigned tid, unsigned nthreads,
                                std::uint64_t& episodes,
                                std::uint64_t& rounds) noexcept {
  const Csr& u = *u_;
  const index_t* order = u_order_ ? u_order_->order.data() : nullptr;
  const double* rhs_p = up_rhs_;
  double* yp = up_y_;
  std::uint64_t my_episodes = 0, my_rounds = 0;
  auto solve_row = [&](index_t k) noexcept {
    const index_t i = order ? order[k] : n_ - 1 - k;
    double acc = rhs_p[i];
    const index_t k_diag = u.row_begin(i);  // diagonal first
    for (index_t kk = k_diag + 1; kk < u.row_end(i); ++kk) {
      const index_t c = u.idx[static_cast<std::size_t>(kk)];
      const std::uint64_t r = ready_u_.wait_done(c);
      if (r != 0) {
        ++my_episodes;
        my_rounds += r;
      }
      acc -= u.val[static_cast<std::size_t>(kk)] * yp[c];
    }
    yp[i] = acc / u.val[static_cast<std::size_t>(k_diag)];
    ready_u_.mark_done(i);
  };
  rt::schedule_run(opts_.schedule, n_, tid, nthreads, &cursor_u_, solve_row);
  episodes += my_episodes;
  rounds += my_rounds;
}

void TrisolvePlan::reset_for_call(bool lower, bool upper) noexcept {
  // The whole per-call reset: two O(1) epoch bumps and two counter
  // stores. Compare trisolve_doacross's per-call Barrier + two vector
  // allocations + O(n/p) flag sweep + extra barrier.
  if (lower) {
    ready_l_.begin_epoch();
    cursor_l_.store(0, std::memory_order_relaxed);
  }
  if (upper) {
    ready_u_.begin_epoch();
    cursor_u_.store(0, std::memory_order_relaxed);
  }
}

core::DoacrossStats TrisolvePlan::dispatch(
    const rt::ThreadPool::RegionFn& region) {
  using clock = std::chrono::steady_clock;
  const clock::time_point t0 = clock::now();
  pool_->parallel_region(nth_, region);
  const clock::time_point t1 = clock::now();
  core::DoacrossStats stats;
  // Preprocessing was amortized at plan build and the postprocessing
  // sweep no longer exists, so the whole call is executor time (pool
  // wake-up included — the number a repeated caller actually pays).
  stats.execute_seconds = std::chrono::duration<double>(t1 - t0).count();
  for (unsigned t = 0; t < nth_; ++t) {
    stats.wait_episodes += episodes_[t].value;
    stats.wait_rounds += rounds_[t].value;
  }
  ++solves_;
  return stats;
}

core::DoacrossStats TrisolvePlan::solve_lower(std::span<const double> rhs,
                                              std::span<double> y) {
  if (static_cast<index_t>(rhs.size()) < n_ ||
      static_cast<index_t>(y.size()) < n_) {
    throw std::invalid_argument("TrisolvePlan::solve_lower: size mismatch");
  }
  if (n_ == 0) return {};
  reset_for_call(/*lower=*/true, /*upper=*/false);
  lo_rhs_ = rhs.data();
  lo_y_ = y.data();
  return dispatch(lower_region_);
}

core::DoacrossStats TrisolvePlan::solve_upper(std::span<const double> rhs,
                                              std::span<double> z) {
  if (!u_) {
    throw std::logic_error("TrisolvePlan::solve_upper: lower-only plan");
  }
  if (static_cast<index_t>(rhs.size()) < n_ ||
      static_cast<index_t>(z.size()) < n_) {
    throw std::invalid_argument("TrisolvePlan::solve_upper: size mismatch");
  }
  if (n_ == 0) return {};
  reset_for_call(/*lower=*/false, /*upper=*/true);
  up_rhs_ = rhs.data();
  up_y_ = z.data();
  return dispatch(upper_region_);
}

core::DoacrossStats TrisolvePlan::solve(std::span<const double> rhs,
                                        std::span<double> z) {
  if (!u_) {
    throw std::logic_error("TrisolvePlan::solve: lower-only plan");
  }
  if (static_cast<index_t>(rhs.size()) < n_ ||
      static_cast<index_t>(z.size()) < n_) {
    throw std::invalid_argument("TrisolvePlan::solve: size mismatch");
  }
  if (n_ == 0) return {};
  reset_for_call(/*lower=*/true, /*upper=*/true);
  lo_rhs_ = rhs.data();
  lo_y_ = tmp_.data();
  up_rhs_ = tmp_.data();
  up_y_ = z.data();
  return dispatch(fused_region_);
}

}  // namespace pdx::sparse
