#include "sparse/dense.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pdx::sparse {

Dense Dense::from_csr(const Csr& m) {
  Dense d(m.rows, m.cols);
  for (index_t r = 0; r < m.rows; ++r) {
    for (index_t k = m.row_begin(r); k < m.row_end(r); ++k) {
      d(r, m.idx[static_cast<std::size_t>(k)]) =
          m.val[static_cast<std::size_t>(k)];
    }
  }
  return d;
}

std::vector<double> Dense::matvec(std::span<const double> x) const {
  if (static_cast<index_t>(x.size()) < cols_) {
    throw std::invalid_argument("Dense::matvec: x too small");
  }
  std::vector<double> y(static_cast<std::size_t>(rows_), 0.0);
  for (index_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (index_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[static_cast<std::size_t>(c)];
    y[static_cast<std::size_t>(r)] = acc;
  }
  return y;
}

Dense Dense::matmul(const Dense& b) const {
  if (cols_ != b.rows_) throw std::invalid_argument("Dense::matmul: shape");
  Dense out(rows_, b.cols_);
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (index_t j = 0; j < b.cols_; ++j) {
        out(i, j) += aik * b(k, j);
      }
    }
  }
  return out;
}

std::vector<double> Dense::lower_solve(std::span<const double> rhs) const {
  if (rows_ != cols_ || static_cast<index_t>(rhs.size()) < rows_) {
    throw std::invalid_argument("Dense::lower_solve: shape");
  }
  std::vector<double> y(static_cast<std::size_t>(rows_), 0.0);
  for (index_t i = 0; i < rows_; ++i) {
    double acc = rhs[static_cast<std::size_t>(i)];
    for (index_t c = 0; c < i; ++c) acc -= (*this)(i, c) * y[static_cast<std::size_t>(c)];
    y[static_cast<std::size_t>(i)] = acc / (*this)(i, i);
  }
  return y;
}

std::vector<double> Dense::upper_solve(std::span<const double> rhs) const {
  if (rows_ != cols_ || static_cast<index_t>(rhs.size()) < rows_) {
    throw std::invalid_argument("Dense::upper_solve: shape");
  }
  std::vector<double> y(static_cast<std::size_t>(rows_), 0.0);
  for (index_t i = rows_ - 1; i >= 0; --i) {
    double acc = rhs[static_cast<std::size_t>(i)];
    for (index_t c = i + 1; c < cols_; ++c) acc -= (*this)(i, c) * y[static_cast<std::size_t>(c)];
    y[static_cast<std::size_t>(i)] = acc / (*this)(i, i);
  }
  return y;
}

double Dense::max_abs_diff(const Dense& a, const Dense& b) {
  if (a.rows_ != b.rows_ || a.cols_ != b.cols_) {
    throw std::invalid_argument("Dense::max_abs_diff: shape");
  }
  double m = 0.0;
  for (std::size_t k = 0; k < a.a_.size(); ++k) {
    m = std::max(m, std::fabs(a.a_[k] - b.a_[k]));
  }
  return m;
}

}  // namespace pdx::sparse
