// trisolve_plan.hpp — persistent solve plans for repeated triangular
// solves (the paper's amortization premise, applied to our own runtime).
//
// The paper's whole argument is that execution-time preprocessing pays off
// because "the same loop is executed many times" (§1): the inspector runs
// once, the executor many times. Our hottest repeated path — the ILU(0)
// preconditioner inside Krylov iterations — was still re-paying per-call
// setup on every trisolve_doacross call: a fresh rt::Barrier, two
// std::vector<rt::Padded<...>> allocations, a full flag-reset sweep plus
// the barrier fencing it, and two separate pool fork/joins per
// preconditioner application.
//
// A TrisolvePlan is built once per factorization and hoists all of that
// out of the run loop:
//
//   build time (once)          solve time (every Krylov iteration)
//   -----------------          -----------------------------------
//   strategy selection         zero heap allocation
//   doconsider reorderings     O(1) begin_epoch() flag reset
//   EpochReadyTables (L, U)    no postprocessing sweep, no extra barrier
//   padded wait-stat slots     ONE pool fork/join for L⁻¹ then U⁻¹
//   reusable barrier           (threads flow from the forward solve into
//   pre-bound region functors   the backward solve through one in-region
//   packed factor streams       barrier); factors read as linear,
//    (first-touched per thread)  execution-ordered record streams
//
// Plans are *strategy-polymorphic* (DESIGN.md §9): the same build-time
// analysis that makes the dependence structure measurable also selects
// the execution scheme. Four strategies share the plan's state and
// invariants; `ExecutionStrategy::kAuto` measures the factor's structure
// at build time and asks core::advise_schedule which to instantiate.
// Every strategy is bitwise identical to the sequential Fig. 7 solves;
// the parallel strategies keep the one-dispatch-per-solve budget, and the
// serial strategy costs zero dispatches (the whole point of choosing it).
//
// Lifetime: the plan keeps references to the pool and the factor matrices;
// both must outlive it. One plan serves one caller at a time (solve
// members mutate plan-owned scratch state), exactly like DoacrossEngine.
// Epoch semantics and the deadlock-freedom argument are in DESIGN.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/advisor.hpp"
#include "core/doacross_stats.hpp"
#include "core/doconsider.hpp"
#include "core/ready_table.hpp"
#include "runtime/aligned.hpp"
#include "runtime/barrier.hpp"
#include "runtime/failure.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/csr.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/kernels.hpp"
#include "sparse/packed_stream.hpp"

namespace pdx::sparse {

/// Execution scheme of a plan. The vocabulary lives in core (the advisor
/// names a strategy from measured structure); the sparse layer implements
/// it:
///
///   kDoacross      — busy-wait ready flags, optional doconsider order,
///                    any rt::Schedule (the paper's executor).
///   kLevelBarrier  — bulk-synchronous wavefronts: rows of one level run
///                    as a doall, a barrier separates levels, NO per-row
///                    flags at all (the level order already proves every
///                    producer finished).
///   kSerial        — the plain sequential solves on the calling thread:
///                    zero pool dispatches, zero synchronization. Chosen
///                    when the dependence chain leaves nothing to overlap.
///   kBlockedHybrid — static contiguous blocks in source order; a
///                    dependence inside a block is resolved by program
///                    order for free, flags are consulted only across
///                    block boundaries (core/blocked_doacross.hpp's idea
///                    applied to the triangular solve).
///   kAuto          — measure the factor at build time and let
///                    core::advise_schedule pick one of the above.
using ExecutionStrategy = core::ExecStrategy;

/// Memory layout the plan's kernels read the factors through
/// (DESIGN.md §10).
///
///   kPacked  — plan-owned packed record streams in schedule execution
///              order, per-thread slabs first-touched by their executing
///              thread: the hot loop becomes a linear walk.
///   kCsrView — read the caller's CSR directly (zero-copy); the
///              historical behavior, and the right call when the factor
///              is too large to duplicate or the plan runs only a few
///              times.
///   kAuto    — (default) follow the resolved strategy: kCsrView for
///              kSerial (the packed duplication measurably loses there —
///              BENCH_strategy layout_speedup 0.66–0.96 on serial picks),
///              kPacked for every parallel strategy. Resolved after
///              calibration when the strategy itself is under a race.
enum class PlanLayout : std::uint8_t { kPacked, kCsrView, kAuto };

inline const char* to_string(PlanLayout l) noexcept {
  switch (l) {
    case PlanLayout::kPacked: return "packed";
    case PlanLayout::kCsrView: return "csr-view";
    case PlanLayout::kAuto: return "auto";
  }
  return "?";
}

/// What the plan decided and why — reported by benches and BatchDriver.
struct PlanTelemetry {
  ExecutionStrategy requested = ExecutionStrategy::kDoacross;
  /// The resolved strategy (never kAuto). Under a calibration race this
  /// is the strategy the NEXT solve will run — the current candidate
  /// while exploring, the measured winner once locked in.
  ExecutionStrategy strategy = ExecutionStrategy::kDoacross;
  /// The advisor's reason under kAuto; "strategy fixed by caller"
  /// otherwise. Never empty after construction. Rewritten when a
  /// calibration race locks in its measured winner.
  std::string rationale;
  /// The empirical calibration record (DESIGN.md §13): whether a measured
  /// winner is locked in, whether it came from the TuningCache, and the
  /// per-strategy race timings.
  core::StrategyRace race;
  /// Inspector-measured structure of L (populated under kAuto).
  core::TrisolveStructure structure;
  /// Processor count the decision assumed (the plan's region width).
  unsigned procs = 0;
  /// Resolved factor layout (kCsrView for empty plans even when packing
  /// was requested — there is nothing to pack).
  PlanLayout layout = PlanLayout::kCsrView;
  /// Plan-owned packed stream bytes across both factors (0 for kCsrView).
  std::size_t packed_bytes = 0;
  /// Last numeric refactorization feeding this plan, in milliseconds, and
  /// the FactorPlan strategy that ran it — recorded by the solve layer
  /// via record_factorization() (0 / kAuto until the first refactor).
  double factor_ms = 0.0;
  ExecutionStrategy factor_strategy = ExecutionStrategy::kAuto;
  /// Last refresh_values() sweep, in milliseconds (0 until the first).
  double refresh_ms = 0.0;
  /// The process-wide dispatched ISA (CPUID + PDX_KERNEL; DESIGN.md §14).
  kernels::KernelIsa isa = kernels::KernelIsa::kScalar;
  /// The resolved kernel choice this plan's lane executors run (never
  /// kAuto after construction; the current race candidate's table while
  /// a kernel race is exploring, the measured winner once locked in).
  kernels::KernelChoice kernel = kernels::KernelChoice::kScalar;
  /// The scalar-vs-vector kernel race record (armed only for kAuto
  /// kernels on machines with a vector ISA; fed by wavefront-interleaved
  /// batch dispatches wide enough to execute lane kernels).
  kernels::KernelRaceState kernel_race;
};

struct PlanOptions {
  /// Region width; 0 → the pool's full width. Fixed at build time (the
  /// plan's barrier and wait-stat slots are sized once).
  unsigned nthreads = 0;
  /// Executor schedule for both solves (kDoacross only; kLevelBarrier and
  /// kBlockedHybrid are static-block by construction).
  rt::Schedule schedule = rt::Schedule::dynamic();
  /// Build doconsider (level-order) reorderings for both factors
  /// (kDoacross; kLevelBarrier builds them regardless — the levels ARE
  /// its schedule).
  bool reorder = true;
  /// Machine-emulation knob for the lower solve (see sparse/trisolve.hpp).
  int work_reps = 0;
  /// Execution scheme. kAuto measures the LOWER factor's dependence
  /// structure at build time, takes core::advise_schedule's heuristic
  /// pick as the opening bid, then — when a race is viable (parallel
  /// width, calibration_epochs > 0) — times every strategy on the first
  /// real solves and locks in the measured winner (DESIGN.md §13); the
  /// process-wide core::TuningCache short-circuits repeat patterns. One
  /// decision covers both solves, which is right for ILU-style pairs
  /// whose U mirrors L's structure; callers pairing structurally
  /// unrelated factors should pick a strategy explicitly. The default
  /// preserves the historical flag-based plan behavior.
  ExecutionStrategy strategy = ExecutionStrategy::kDoacross;
  /// Factor memory layout. kAuto (default) resolves from the strategy —
  /// kCsrView for serial plans, kPacked otherwise; kPacked re-streams
  /// both factors into plan-owned, execution-ordered, NUMA-first-touched
  /// record slabs (one extra pool dispatch, ~the factors' size in extra
  /// memory); kCsrView pins the zero-copy read-through-the-caller's-CSR
  /// behavior. Results are bitwise identical in every layout.
  PlanLayout layout = PlanLayout::kAuto;
  /// Calibration budget under ExecutionStrategy::kAuto: timed solves per
  /// candidate strategy before the race locks in (the whole race costs
  /// 4 * calibration_epochs solves — all of them REAL solves the caller
  /// needed anyway, each bitwise identical to the locked-in plan). 0
  /// disables the race: Auto keeps the heuristic advisor's pick, the
  /// historical behavior. Ignored for pinned strategies, single-threaded
  /// plans, and empty systems.
  int calibration_epochs = 2;
  /// Consult (and feed) the process-wide core::TuningCache so later
  /// plans over the same (pattern fingerprint, threads) skip the race
  /// entirely — the BatchDriver / timestep-server refresh loops rebuild
  /// plans per pattern and must not re-explore every time.
  bool use_tuning_cache = true;
  /// Stall watchdog budget in spin rounds per flag/barrier wait; 0
  /// (default) disables the watchdog — the bitwise and perf gates run
  /// with it off. Past the budget a wait raises rt::StallError with
  /// diagnostics (row, awaited offset, epoch, rounds, site), the fault is
  /// contained like any other worker exception, and the plan is poisoned.
  std::uint64_t stall_budget = 0;
  /// Lane-kernel selection (DESIGN.md §14). kAuto runs the dispatched
  /// vector table and — when calibration_epochs > 0 and the machine has
  /// a vector ISA — races it against scalar on the first lane-kernel
  /// dispatches; kScalar pins the reference table (what the forced-
  /// scalar CI job exercises); kVector pins the vector table. Every
  /// choice is bitwise identical on the lane paths (multi-RHS batches);
  /// only the opt-in ulp_tolerance path below may differ.
  kernels::KernelChoice kernel = kernels::KernelChoice::kAuto;
  /// Opt-in reassociated single-RHS kernels. 0 (default) keeps the
  /// bitwise scalar reduction in every single-RHS solve. A positive
  /// value states the caller accepts reassociation-level (few-ulp)
  /// deviation from the sequential solves in exchange for the vector
  /// dot kernel (gather + FMA + vector-width accumulators); the value
  /// itself is the caller's error budget and is not consumed by the
  /// plan. Ignored — solves stay bitwise — when the resolved kernel
  /// table is scalar or work_reps > 0. Multi-RHS batch lane kernels are
  /// unaffected: they are bitwise per column regardless.
  double ulp_tolerance = 0.0;
};

/// How solve_batch walks its k right-hand-side columns inside the single
/// parallel region (DESIGN.md §8; bench/batch_solve.cpp measures both).
enum class BatchMode : std::uint8_t {
  /// One fused L+U solve per column, columns back-to-back. Flag-based
  /// strategies re-arm the epoch tables between columns (two barrier
  /// episodes per column boundary). Scratch stays O(n).
  kColumnSequential,
  /// One pass over rows per factor; each row carries all k columns, so
  /// per-dependence synchronization covers all k values via a row-major
  /// n×k strip: sync cost amortized k-fold. Scratch is O(n*k).
  kWavefrontInterleaved,
};

/// Persistent execution plan for L y = rhs / U z = y triangular solves.
/// Every solve_* call runs with zero per-call heap allocation and resets
/// synchronization state in O(1); results are bitwise identical to
/// trisolve_lower_seq / trisolve_upper_seq under every strategy.
class TrisolvePlan {
 public:
  /// Full plan over an L/U factor pair (e.g. IluFactors::l / ::u). L must
  /// be lower triangular with the diagonal last in each sorted row, U
  /// upper triangular with the diagonal first.
  TrisolvePlan(rt::ThreadPool& pool, const Csr& l, const Csr& u,
               const PlanOptions& opts = {});

  /// Lower-only plan: solve() and solve_upper() are unavailable.
  TrisolvePlan(rt::ThreadPool& pool, const Csr& l,
               const PlanOptions& opts = {});

  // The pre-bound region functors capture `this`.
  TrisolvePlan(const TrisolvePlan&) = delete;
  TrisolvePlan& operator=(const TrisolvePlan&) = delete;

  /// y = L⁻¹ rhs. At most one pool fork/join (zero for kSerial), no
  /// allocation.
  core::DoacrossStats solve_lower(std::span<const double> rhs,
                                  std::span<double> y);

  /// z = U⁻¹ rhs. Same budget as solve_lower.
  core::DoacrossStats solve_upper(std::span<const double> rhs,
                                  std::span<double> z);

  /// z = U⁻¹ (L⁻¹ rhs): one fused preconditioner application in a single
  /// parallel region — the forward solve flows into the backward solve
  /// without returning to the pool.
  core::DoacrossStats solve(std::span<const double> rhs,
                            std::span<double> z);

  /// Batched fused solve: X[c] = U⁻¹ (L⁻¹ B[c]) for k right-hand-side
  /// columns in ONE pool dispatch. B and X are column-major n-by-k
  /// (column c contiguous at data() + c * rows()); each column's result
  /// is bitwise identical to solve() on that column. Scratch grows on the
  /// first call with a larger k — pre-size with reserve_batch for a
  /// zero-allocation hot path.
  core::DoacrossStats solve_batch(
      std::span<const double> b, std::span<double> x, index_t k,
      BatchMode mode = BatchMode::kWavefrontInterleaved);

  /// Pointer-per-column batched solve for columns that are not contiguous
  /// (e.g. a queue of caller-owned vectors): x_cols[c] = U⁻¹ L⁻¹
  /// b_cols[c]. Every column must hold at least rows() elements; columns
  /// must not alias each other or the plan's scratch.
  core::DoacrossStats solve_batch(
      const double* const* b_cols, double* const* x_cols, index_t k,
      BatchMode mode = BatchMode::kWavefrontInterleaved);

  /// Pre-size batch scratch so subsequent solve_batch calls with
  /// k <= max_k in the given mode allocate nothing. Column pointer tables
  /// are always sized; the n-by-max_k interleaved strip is only allocated
  /// for kWavefrontInterleaved (column-sequential scratch stays O(n)).
  void reserve_batch(index_t max_k,
                     BatchMode mode = BatchMode::kWavefrontInterleaved);

  /// Value-only plan refresh for time-stepping workloads (DESIGN.md §11):
  /// given factors with the SAME pattern as the plan's (e.g. the same
  /// IluFactors re-filled by FactorPlan::factorize, or a fresh pair),
  /// rebind the plan to `f` and re-stream only the VALUES into the
  /// existing packed slabs — schedules, flag tables, reorderings and the
  /// slab layout (including its first-touch page placement) are pattern
  /// state and survive untouched. Costs one pool dispatch for a parallel
  /// packed plan and zero otherwise (kCsrView swaps pointers for free;
  /// serial plans repack inline), allocates nothing, and leaves every
  /// subsequent solve bitwise identical to a full plan rebuild over `f`.
  /// Throws std::invalid_argument if `f`'s pattern differs from the
  /// plan's and std::logic_error on a lower-only plan.
  void refresh_values(const IluFactors& f);

  /// Completed refresh_values() calls.
  std::uint64_t refreshes() const noexcept { return refreshes_; }

  /// Record the numeric refactorization that produced the plan's current
  /// values (telemetry only — shows up as PlanTelemetry::factor_ms /
  /// factor_strategy in BatchReport and the serving examples).
  void record_factorization(double factor_ms,
                            ExecutionStrategy strategy) noexcept {
    telemetry_.factor_ms = factor_ms;
    telemetry_.factor_strategy = strategy;
  }

  index_t rows() const noexcept { return n_; }
  unsigned nthreads() const noexcept { return nth_; }
  bool has_upper() const noexcept { return u_ != nullptr; }
  /// The resolved factor layout (kCsrView when nothing was packed).
  PlanLayout layout() const noexcept { return telemetry_.layout; }
  /// Plan-owned packed stream bytes (0 under kCsrView).
  std::size_t packed_bytes() const noexcept { return telemetry_.packed_bytes; }
  /// The resolved execution strategy (never kAuto; the current race
  /// candidate while calibrating()).
  ExecutionStrategy strategy() const noexcept { return telemetry_.strategy; }
  /// True while a kAuto calibration race is still exploring — the next
  /// solves time the remaining candidates before the plan locks in.
  /// Every exploration solve is bitwise identical to the final plan.
  bool calibrating() const noexcept { return calibrating_; }
  /// Chosen strategy, rationale and the measured structure behind it.
  const PlanTelemetry& telemetry() const noexcept { return telemetry_; }
  /// Completed solve_* calls (one per pool dispatch; a whole solve_batch
  /// counts once).
  std::uint64_t solves() const noexcept { return solves_; }
  /// Total right-hand-side columns completed through solve_batch.
  std::uint64_t batch_columns() const noexcept { return batch_columns_; }
  std::uint32_t lower_epoch() const noexcept { return ready_l_.epoch(); }

  /// True once a fault escaped a worker inside this plan's parallel
  /// region. A poisoned plan's flag tables, cursors and barrier may be
  /// mid-episode, so every subsequent solve_*/refresh_values call throws
  /// rt::PlanPoisonedError — rebuild the plan (or let the solve layer
  /// degrade to the sequential trisolves, see solve/precond.hpp).
  bool poisoned() const noexcept { return poisoned_; }
  /// Wire a test-only fault source into the executors (nullptr disarms).
  void set_fault_injector(rt::FaultInjector* injector) noexcept {
    injector_ = injector;
  }

  /// Build-time reorderings (nullptr when the strategy does not use
  /// them — kSerial and kBlockedHybrid run in source order).
  const core::Reordering* lower_reordering() const noexcept {
    return l_order_.get();
  }
  const core::Reordering* upper_reordering() const noexcept {
    return u_order_.get();
  }

 private:
  // --- layout-generic kernels ---
  // Every kernel is a template over a row Source: src.at(k) yields the
  // PackedRow record for execution position k. bind_*_region instantiates
  // each kernel twice — over a packed-stream source (kPacked: a linear
  // slab walk, or the position index for dynamically claimed doacross
  // chunks) and over a CSR view (kCsrView: the historical access path).
  // Per-thread positions arrive in increasing order, which is what lets
  // the packed walks advance a bare cursor. Arithmetic is identical to
  // the sequential Fig. 7 solves in every instantiation.
  //
  // flag-based doacross (ExecutionStrategy::kDoacross):
  template <class Src>
  void lower_flags_k(Src src, const double* rhs, double* y, unsigned tid,
                     unsigned nthreads, std::uint64_t& episodes,
                     std::uint64_t& rounds);
  template <class Src>
  void upper_flags_k(Src src, const double* rhs, double* y, unsigned tid,
                     unsigned nthreads, std::uint64_t& episodes,
                     std::uint64_t& rounds);
  template <class Src>
  void lower_flags_multi_k(Src src, unsigned tid, unsigned nthreads,
                           std::uint64_t& episodes,
                           std::uint64_t& rounds);
  template <class Src>
  void upper_flags_multi_k(Src src, unsigned tid, unsigned nthreads,
                           std::uint64_t& episodes,
                           std::uint64_t& rounds);
  // bulk-synchronous wavefronts (kLevelBarrier):
  template <class Src>
  void lower_levels_k(Src src, const double* rhs, double* y, unsigned tid,
                      unsigned nthreads);
  template <class Src>
  void upper_levels_k(Src src, const double* rhs, double* y, unsigned tid,
                      unsigned nthreads);
  template <class Src>
  void lower_levels_multi_k(Src src, unsigned tid, unsigned nthreads);
  template <class Src>
  void upper_levels_multi_k(Src src, unsigned tid, unsigned nthreads);
  // static-block hybrid (kBlockedHybrid):
  template <class Src>
  void lower_blocked_k(Src src, const double* rhs, double* y, unsigned tid,
                       unsigned nthreads, std::uint64_t& episodes,
                       std::uint64_t& rounds);
  template <class Src>
  void upper_blocked_k(Src src, const double* rhs, double* y, unsigned tid,
                       unsigned nthreads, std::uint64_t& episodes,
                       std::uint64_t& rounds);
  template <class Src>
  void lower_blocked_multi_k(Src src, unsigned tid, unsigned nthreads,
                             std::uint64_t& episodes,
                             std::uint64_t& rounds);
  template <class Src>
  void upper_blocked_multi_k(Src src, unsigned tid, unsigned nthreads,
                             std::uint64_t& episodes,
                             std::uint64_t& rounds);
  // sequential (kSerial; run inline on the calling thread):
  template <class Src>
  void serial_lower_k(Src src, const double* rhs, double* y);
  template <class Src>
  void serial_upper_k(Src src, const double* rhs, double* y);
  template <class Src>
  void serial_lower_multi_k(Src src);
  template <class Src>
  void serial_upper_multi_k(Src src);

  TrisolvePlan(rt::ThreadPool& pool, const Csr& l, const Csr* u,
               const PlanOptions& opts);

  bool needs_reordering() const noexcept;
  void resolve_strategy();
  /// Resolve PlanOptions::kernel against the dispatched ISA: pick the
  /// plan's LaneOps table, record ISA + choice in telemetry, and arm the
  /// scalar-vs-vector race for kAuto kernels (DESIGN.md §14).
  void resolve_kernel() noexcept;
  /// Swap the active LaneOps table and recompute whether the single-RHS
  /// kernels run the opt-in ulp dot (requires ulp_tolerance > 0, a
  /// vector table, and work_reps == 0).
  void set_lanes(const kernels::LaneOps* ops) noexcept;
  /// Kernel-race bookkeeping after a successful lane-kernel dispatch:
  /// per-column-normalized time in, candidate table out; locks in the
  /// measured winner when both choices spent their budget.
  void note_kernel_epoch(double seconds, index_t k) noexcept;
  /// Point the plan at strategy `s`: telemetry, the doacross executor
  /// configuration (the advisor's canonical dynamic/1 + doconsider
  /// order), and the wait-guard site name. Callers rebind regions after.
  void set_strategy_state(ExecutionStrategy s);
  void rebind_regions();
  /// Calibration bookkeeping, run after each SUCCESSFUL dispatch while
  /// exploring: record the epoch's time, advance to the next candidate
  /// after the per-candidate budget, and lock in the winner at race end.
  void note_calibration_epoch(double seconds);
  void finish_calibration();
  /// Wrap a region functor in the abort protocol: a fault records its
  /// exception in the latch (raising it); WorkerAbort — a peer draining
  /// after observing the latch — is discarded. Bound once per region, so
  /// the per-solve cost is one extra call, not a per-call allocation.
  rt::ThreadPool::RegionFn contained(rt::ThreadPool::RegionFn raw);
  /// Stream both factors into execution-ordered slabs (PlanLayout::
  /// kPacked): lay the slabs out, then run ONE pool dispatch in which
  /// each thread packs — first-touches — its own slab for both factors.
  void build_packed();
  void bind_lower_region();
  void bind_upper_regions();
  void reset_for_call(bool lower, bool upper) noexcept;
  core::DoacrossStats run_batch(index_t k, BatchMode mode);
  core::DoacrossStats dispatch(const rt::ThreadPool::RegionFn& region);

  rt::ThreadPool* pool_;
  const Csr* l_;
  const Csr* u_;  // nullptr for a lower-only plan
  PlanOptions opts_;
  index_t n_;
  unsigned nth_;
  PlanTelemetry telemetry_;

  std::unique_ptr<core::Reordering> l_order_, u_order_;
  PackedFactorStream packed_l_, packed_u_;
  core::EpochReadyTable ready_l_, ready_u_;
  rt::Barrier barrier_;
  rt::FailureLatch latch_;
  rt::WaitGuard guard_;  // latch + stall budget shared by every flag wait
  bool poisoned_ = false;
  rt::FaultInjector* injector_ = nullptr;

  // kAuto calibration race state (DESIGN.md §13). While calibrating_ the
  // plan serves solves through the current candidate's executor (bitwise
  // identical to every other candidate) over CSR-view sources — packed
  // slabs are strategy-specific, so packing waits for the winner.
  bool calibrating_ = false;
  std::vector<ExecutionStrategy> candidates_;
  std::size_t cand_idx_ = 0;
  int cand_epoch_ = 0;
  core::TuningKey tuning_key_{};
  bool have_tuning_key_ = false;

  // Lane-kernel state (DESIGN.md §14): the active dispatch table, the
  // pre-resolved "single-RHS solves run the ulp dot" flag, and the
  // scalar-vs-vector race fed by wide interleaved batch dispatches once
  // the strategy race is done.
  const kernels::LaneOps* lanes_ = nullptr;
  bool ulp_dot_ = false;
  kernels::Race kernel_race_;

  std::atomic<index_t> cursor_l_{0}, cursor_u_{0};
  std::vector<rt::Padded<std::uint64_t>> episodes_, rounds_;
  std::vector<double, rt::CacheAlignedAllocator<double>> tmp_;

  // Per-call vector endpoints, published to the pre-bound region functors
  // through members so the std::function is constructed exactly once (a
  // capturing lambda wider than the small-buffer would otherwise allocate
  // on every call).
  const double* lo_rhs_ = nullptr;
  double* lo_y_ = nullptr;
  const double* up_rhs_ = nullptr;
  double* up_y_ = nullptr;

  // Batch state: per-call column pointer tables and the row-major n-by-k
  // mid-value strip of the interleaved mode. Published to the pre-bound
  // batch region functor through members, like the single-RHS endpoints.
  index_t batch_k_ = 0;
  BatchMode batch_mode_ = BatchMode::kWavefrontInterleaved;
  std::vector<const double*> batch_b_;
  std::vector<double*> batch_x_;
  std::vector<double, rt::CacheAlignedAllocator<double>> batch_tmp_;

  rt::ThreadPool::RegionFn lower_region_, upper_region_, fused_region_,
      batch_region_, refresh_region_;
  std::uint64_t solves_ = 0;
  std::uint64_t batch_columns_ = 0;
  std::uint64_t refreshes_ = 0;
};

}  // namespace pdx::sparse
