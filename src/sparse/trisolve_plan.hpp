// trisolve_plan.hpp — persistent solve plans for repeated triangular
// solves (the paper's amortization premise, applied to our own runtime).
//
// The paper's whole argument is that execution-time preprocessing pays off
// because "the same loop is executed many times" (§1): the inspector runs
// once, the executor many times. Our hottest repeated path — the ILU(0)
// preconditioner inside Krylov iterations — was still re-paying per-call
// setup on every trisolve_doacross call: a fresh rt::Barrier, two
// std::vector<rt::Padded<...>> allocations, a full flag-reset sweep plus
// the barrier fencing it, and two separate pool fork/joins per
// preconditioner application.
//
// A TrisolvePlan is built once per factorization and hoists all of that
// out of the run loop:
//
//   build time (once)          solve time (every Krylov iteration)
//   -----------------          -----------------------------------
//   doconsider reorderings     zero heap allocation
//   EpochReadyTables (L, U)    O(1) begin_epoch() flag reset
//   padded wait-stat slots     no postprocessing sweep, no extra barrier
//   reusable barrier           ONE pool fork/join for L⁻¹ then U⁻¹
//   pre-bound region functors  (threads flow from the forward solve into
//                               the backward solve through one in-region
//                               barrier)
//
// Lifetime: the plan keeps references to the pool and the factor matrices;
// both must outlive it. One plan serves one caller at a time (solve
// members mutate plan-owned scratch state), exactly like DoacrossEngine.
// Epoch semantics and the deadlock-freedom argument are in DESIGN.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/doacross_stats.hpp"
#include "core/doconsider.hpp"
#include "core/ready_table.hpp"
#include "runtime/aligned.hpp"
#include "runtime/barrier.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/csr.hpp"

namespace pdx::sparse {

struct PlanOptions {
  /// Region width; 0 → the pool's full width. Fixed at build time (the
  /// plan's barrier and wait-stat slots are sized once).
  unsigned nthreads = 0;
  /// Executor schedule for both solves.
  rt::Schedule schedule = rt::Schedule::dynamic();
  /// Build doconsider (level-order) reorderings for both factors.
  bool reorder = true;
  /// Machine-emulation knob for the lower solve (see sparse/trisolve.hpp).
  int work_reps = 0;
};

/// How solve_batch walks its k right-hand-side columns inside the single
/// parallel region (DESIGN.md §8; bench/batch_solve.cpp measures both).
enum class BatchMode : std::uint8_t {
  /// One fused L+U doacross per column, columns back-to-back. Thread 0
  /// re-arms the epoch tables between columns (two barrier episodes per
  /// column boundary). Scratch stays O(n).
  kColumnSequential,
  /// One doacross over rows; each row carries all k columns, so one ready
  /// flag — and at most one busy wait — per dependence covers k values:
  /// synchronization cost is amortized k-fold and each L/U row's indices
  /// and values are read once per batch. Scratch is O(n*k).
  kWavefrontInterleaved,
};

/// Persistent execution plan for L y = rhs / U z = y triangular solves.
/// Every solve_* call runs with zero per-call heap allocation and resets
/// synchronization state in O(1); results are bitwise identical to
/// trisolve_lower_seq / trisolve_upper_seq.
class TrisolvePlan {
 public:
  /// Full plan over an L/U factor pair (e.g. IluFactors::l / ::u). L must
  /// be lower triangular with the diagonal last in each sorted row, U
  /// upper triangular with the diagonal first.
  TrisolvePlan(rt::ThreadPool& pool, const Csr& l, const Csr& u,
               const PlanOptions& opts = {});

  /// Lower-only plan: solve() and solve_upper() are unavailable.
  TrisolvePlan(rt::ThreadPool& pool, const Csr& l,
               const PlanOptions& opts = {});

  // The pre-bound region functors capture `this`.
  TrisolvePlan(const TrisolvePlan&) = delete;
  TrisolvePlan& operator=(const TrisolvePlan&) = delete;

  /// y = L⁻¹ rhs. One pool fork/join, no allocation.
  core::DoacrossStats solve_lower(std::span<const double> rhs,
                                  std::span<double> y);

  /// z = U⁻¹ rhs. One pool fork/join, no allocation.
  core::DoacrossStats solve_upper(std::span<const double> rhs,
                                  std::span<double> z);

  /// z = U⁻¹ (L⁻¹ rhs): one fused preconditioner application in a single
  /// parallel region — the forward solve flows into the backward solve
  /// through one in-region barrier instead of two pool fork/joins.
  core::DoacrossStats solve(std::span<const double> rhs,
                            std::span<double> z);

  /// Batched fused solve: X[c] = U⁻¹ (L⁻¹ B[c]) for k right-hand-side
  /// columns in ONE pool dispatch. B and X are column-major n-by-k
  /// (column c contiguous at data() + c * rows()); each column's result
  /// is bitwise identical to solve() on that column. Scratch grows on the
  /// first call with a larger k — pre-size with reserve_batch for a
  /// zero-allocation hot path.
  core::DoacrossStats solve_batch(
      std::span<const double> b, std::span<double> x, index_t k,
      BatchMode mode = BatchMode::kWavefrontInterleaved);

  /// Pointer-per-column batched solve for columns that are not contiguous
  /// (e.g. a queue of caller-owned vectors): x_cols[c] = U⁻¹ L⁻¹
  /// b_cols[c]. Every column must hold at least rows() elements; columns
  /// must not alias each other or the plan's scratch.
  core::DoacrossStats solve_batch(
      const double* const* b_cols, double* const* x_cols, index_t k,
      BatchMode mode = BatchMode::kWavefrontInterleaved);

  /// Pre-size batch scratch so subsequent solve_batch calls with
  /// k <= max_k in the given mode allocate nothing. Column pointer tables
  /// are always sized; the n-by-max_k interleaved strip is only allocated
  /// for kWavefrontInterleaved (column-sequential scratch stays O(n)).
  void reserve_batch(index_t max_k,
                     BatchMode mode = BatchMode::kWavefrontInterleaved);

  index_t rows() const noexcept { return n_; }
  unsigned nthreads() const noexcept { return nth_; }
  bool has_upper() const noexcept { return u_ != nullptr; }
  /// Completed solve_* calls (one per pool dispatch; a whole solve_batch
  /// counts once).
  std::uint64_t solves() const noexcept { return solves_; }
  /// Total right-hand-side columns completed through solve_batch.
  std::uint64_t batch_columns() const noexcept { return batch_columns_; }
  std::uint32_t lower_epoch() const noexcept { return ready_l_.epoch(); }

  /// Build-time reorderings (nullptr when opts.reorder was false).
  const core::Reordering* lower_reordering() const noexcept {
    return l_order_.get();
  }
  const core::Reordering* upper_reordering() const noexcept {
    return u_order_.get();
  }

 private:
  void lower_kernel(const double* rhs, double* y, unsigned tid,
                    unsigned nthreads, std::uint64_t& episodes,
                    std::uint64_t& rounds) noexcept;
  void upper_kernel(const double* rhs, double* y, unsigned tid,
                    unsigned nthreads, std::uint64_t& episodes,
                    std::uint64_t& rounds) noexcept;
  void lower_kernel_multi(unsigned tid, unsigned nthreads,
                          std::uint64_t& episodes,
                          std::uint64_t& rounds) noexcept;
  void upper_kernel_multi(unsigned tid, unsigned nthreads,
                          std::uint64_t& episodes,
                          std::uint64_t& rounds) noexcept;
  void reset_for_call(bool lower, bool upper) noexcept;
  core::DoacrossStats run_batch(index_t k, BatchMode mode);
  core::DoacrossStats dispatch(const rt::ThreadPool::RegionFn& region);

  rt::ThreadPool* pool_;
  const Csr* l_;
  const Csr* u_;  // nullptr for a lower-only plan
  PlanOptions opts_;
  index_t n_;
  unsigned nth_;

  std::unique_ptr<core::Reordering> l_order_, u_order_;
  core::EpochReadyTable ready_l_, ready_u_;
  rt::Barrier barrier_;
  std::atomic<index_t> cursor_l_{0}, cursor_u_{0};
  std::vector<rt::Padded<std::uint64_t>> episodes_, rounds_;
  std::vector<double, rt::CacheAlignedAllocator<double>> tmp_;

  // Per-call vector endpoints, published to the pre-bound region functors
  // through members so the std::function is constructed exactly once (a
  // capturing lambda wider than the small-buffer would otherwise allocate
  // on every call).
  const double* lo_rhs_ = nullptr;
  double* lo_y_ = nullptr;
  const double* up_rhs_ = nullptr;
  double* up_y_ = nullptr;

  // Batch state: per-call column pointer tables and the row-major n-by-k
  // mid-value strip of the interleaved mode. Published to the pre-bound
  // batch region functor through members, like the single-RHS endpoints.
  index_t batch_k_ = 0;
  BatchMode batch_mode_ = BatchMode::kWavefrontInterleaved;
  std::vector<const double*> batch_b_;
  std::vector<double*> batch_x_;
  std::vector<double, rt::CacheAlignedAllocator<double>> batch_tmp_;

  rt::ThreadPool::RegionFn lower_region_, upper_region_, fused_region_,
      batch_region_;
  std::uint64_t solves_ = 0;
  std::uint64_t batch_columns_ = 0;
};

}  // namespace pdx::sparse
