#include "sparse/factor_plan.hpp"

#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

#include "runtime/schedule.hpp"
#include "sparse/levels.hpp"

namespace pdx::sparse {

namespace {

/// Keep the smallest bad row observed by any thread: the parallel
/// factorization reports the same row the sequential loop would have
/// thrown on first (a produced diagonal only goes bad in its own row's
/// elimination, and every row smaller than it factored cleanly).
void record_bad_row(std::atomic<index_t>& slot, index_t i) noexcept {
  index_t cur = slot.load(std::memory_order_relaxed);
  while (cur < 0 || i < cur) {
    if (slot.compare_exchange_weak(cur, i, std::memory_order_relaxed)) return;
  }
}

}  // namespace

void FactorPlan::build_symbolic(const Csr& a) {
  if (a.rows != a.cols) {
    throw std::invalid_argument("FactorPlan: matrix not square");
  }
  a.validate();
  n_ = a.rows;
  ptr_ = a.ptr;
  idx_ = a.idx;

  diag_.resize(static_cast<std::size_t>(n_));
  for (index_t i = 0; i < n_; ++i) {
    const index_t d = a.find(i, i);
    if (d < 0) {
      throw std::invalid_argument("FactorPlan: missing diagonal at row " +
                                  std::to_string(i));
    }
    diag_[static_cast<std::size_t>(i)] = d;
  }

  // Split row pointers: L row i holds the strictly-lower run plus the
  // explicit unit diagonal, U row i the diagonal plus the upper run.
  lptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  uptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (index_t i = 0; i < n_; ++i) {
    const index_t d = diag_[static_cast<std::size_t>(i)];
    lptr_[static_cast<std::size_t>(i) + 1] =
        lptr_[static_cast<std::size_t>(i)] + (d - a.row_begin(i)) + 1;
    uptr_[static_cast<std::size_t>(i) + 1] =
        uptr_[static_cast<std::size_t>(i)] + (a.row_end(i) - d);
  }

  // Elimination steps: one per strictly-lower entry, in row-major stored
  // order — exactly the sequential IKJ loop's step sequence. The scatter
  // of each step (row k's upper entries restricted to row i's pattern) is
  // resolved here, once, into flat (target, source) position pairs, so
  // the numeric kernel never probes a pos[] array again.
  row_step_ptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  std::size_t steps = 0;
  for (index_t i = 0; i < n_; ++i) {
    steps += static_cast<std::size_t>(diag_[static_cast<std::size_t>(i)] -
                                      a.row_begin(i));
    row_step_ptr_[static_cast<std::size_t>(i) + 1] =
        static_cast<index_t>(steps);
  }
  lik_pos_.reserve(steps);
  pivot_pos_.reserve(steps);
  upd_ptr_.reserve(steps + 1);
  upd_ptr_.push_back(0);

  std::vector<index_t> pos(static_cast<std::size_t>(n_), -1);
  for (index_t i = 0; i < n_; ++i) {
    for (index_t k = a.row_begin(i); k < a.row_end(i); ++k) {
      pos[static_cast<std::size_t>(a.idx[static_cast<std::size_t>(k)])] = k;
    }
    const index_t d = diag_[static_cast<std::size_t>(i)];
    for (index_t kk = a.row_begin(i); kk < d; ++kk) {
      const index_t k = a.idx[static_cast<std::size_t>(kk)];
      lik_pos_.push_back(kk);
      pivot_pos_.push_back(diag_[static_cast<std::size_t>(k)]);
      for (index_t jj = diag_[static_cast<std::size_t>(k)] + 1;
           jj < a.row_end(k); ++jj) {
        const index_t p =
            pos[static_cast<std::size_t>(a.idx[static_cast<std::size_t>(jj)])];
        if (p >= 0) {
          upd_tgt_.push_back(p);
          upd_src_.push_back(jj);
        }
      }
      upd_ptr_.push_back(static_cast<index_t>(upd_tgt_.size()));
    }
    for (index_t k = a.row_begin(i); k < a.row_end(i); ++k) {
      pos[static_cast<std::size_t>(a.idx[static_cast<std::size_t>(k)])] = -1;
    }
  }
  upd_tgt_.shrink_to_fit();
  upd_src_.shrink_to_fit();

  w_.resize(static_cast<std::size_t>(a.nnz()));
}

FactorPlan::FactorPlan(rt::ThreadPool& pool, const Csr& a,
                       const FactorPlanOptions& opts)
    : pool_(&pool),
      opts_(opts),
      nth_(pool.clamp_threads(opts.nthreads)),
      barrier_(pool.clamp_threads(opts.nthreads) == 0
                   ? 1
                   : pool.clamp_threads(opts.nthreads)) {
  build_symbolic(a);
  resolve_kernel();

  telemetry_.requested = opts_.strategy;
  telemetry_.procs = nth_;
  if (opts_.strategy == ExecutionStrategy::kAuto) {
    order_ = std::make_unique<core::Reordering>(lower_solve_reordering(a));
    telemetry_.structure = measure_lower_solve(a, *order_);
    core::ScheduleAdvice advice =
        core::advise_factor_schedule(telemetry_.structure, nth_);
    // Heuristic opening bid; a viable race below times every strategy on
    // the first real factorizations and locks in the measured winner —
    // same calibration protocol as TrisolvePlan (DESIGN.md §13).
    telemetry_.strategy = advice.strategy;
    telemetry_.rationale = advice.rationale;
    if (advice.strategy == ExecutionStrategy::kDoacross) {
      opts_.schedule = advice.schedule;
      opts_.reorder = advice.use_reordering;
    }
    const bool can_calibrate =
        opts_.calibration_epochs > 0 && nth_ > 1 && n_ > 0;
    if (can_calibrate) {
      bool cache_hit = false;
      if (opts_.use_tuning_cache) {
        tuning_key_ = core::make_tuning_key(telemetry_.structure, nth_,
                                            /*factor=*/true);
        have_tuning_key_ = true;
        ExecutionStrategy cached;
        if (core::tuning_cache().lookup(tuning_key_, cached)) {
          set_strategy_state(cached);
          telemetry_.rationale =
              std::string("tuning cache hit: ") + core::to_string(cached) +
              " measured fastest earlier for this (pattern, threads)";
          telemetry_.race.calibrated = true;
          telemetry_.race.cache_hit = true;
          cache_hit = true;
        }
      }
      if (!cache_hit) {
        calibrating_ = true;
        candidates_ = {telemetry_.strategy};
        for (const ExecutionStrategy s :
             {ExecutionStrategy::kSerial, ExecutionStrategy::kDoacross,
              ExecutionStrategy::kBlockedHybrid,
              ExecutionStrategy::kLevelBarrier}) {
          if (s != candidates_.front()) candidates_.push_back(s);
        }
        telemetry_.race.timings.resize(candidates_.size());
        for (std::size_t i = 0; i < candidates_.size(); ++i) {
          telemetry_.race.timings[i].strategy = candidates_[i];
        }
        set_strategy_state(candidates_.front());
        telemetry_.rationale +=
            " — calibrating: racing every strategy on the first "
            "factorizations";
      }
    }
  } else {
    telemetry_.strategy = opts_.strategy;
    telemetry_.rationale = "strategy fixed by caller";
  }
  // A calibration race keeps the doconsider order alive — the
  // level-barrier and doacross candidates execute through it; the winner
  // drops it at lock-in if unused.
  const bool needs_order =
      calibrating_ ||
      telemetry_.strategy == ExecutionStrategy::kLevelBarrier ||
      (telemetry_.strategy == ExecutionStrategy::kDoacross && opts_.reorder);
  if (needs_order && !order_) {
    order_ = std::make_unique<core::Reordering>(lower_solve_reordering(a));
  }
  if (!needs_order) {
    order_.reset();  // kSerial / kBlockedHybrid run in source order
  }

  ready_.ensure_size(n_);
  episodes_.resize(nth_);
  rounds_.resize(nth_);
  // Fault containment (DESIGN.md §12): every in-region wait — flag or
  // barrier — polls this latch so a faulting worker's peers drain and
  // join instead of deadlocking; a non-zero budget arms the stall
  // watchdog on the same loops.
  barrier_.watch(&latch_, opts_.stall_budget);
  guard_ = rt::WaitGuard{&latch_, opts_.stall_budget,
                         core::to_string(telemetry_.strategy)};
  bind_region();

  telemetry_.symbolic_bytes =
      (ptr_.size() + idx_.size() + diag_.size() + lptr_.size() +
       uptr_.size() + row_step_ptr_.size() + lik_pos_.size() +
       pivot_pos_.size() + upd_ptr_.size() + upd_tgt_.size() +
       upd_src_.size()) *
          sizeof(index_t) +
      w_.size() * sizeof(double);
  // Csr::memory_bytes() of the pair allocate_factors() hands out: L's
  // rows carry the unit diagonal, U's the pivot, so the two together
  // store nnz + n entries.
  {
    const std::size_t lnnz = lptr_.back();
    const std::size_t unnz = uptr_.back();
    telemetry_.factor_bytes =
        2 * (static_cast<std::size_t>(n_) + 1) * sizeof(index_t) +
        (lnnz + unnz) * (sizeof(index_t) + sizeof(double));
  }
}

void FactorPlan::set_strategy_state(ExecutionStrategy s) {
  telemetry_.strategy = s;
  if (s == ExecutionStrategy::kDoacross &&
      opts_.strategy == ExecutionStrategy::kAuto) {
    // The factor advisor's canonical flag-based configuration; keeps
    // raced doacross epochs and cache-hit plans configured identically.
    opts_.schedule = rt::Schedule::dynamic(1);
    opts_.reorder = true;
  }
  guard_ = rt::WaitGuard{&latch_, opts_.stall_budget, core::to_string(s)};
}

void FactorPlan::note_calibration_epoch(double seconds) {
  core::StrategyTiming& t = telemetry_.race.timings[cand_idx_];
  const double us = seconds * 1e6;
  if (t.epochs == 0 || us < t.best_us) t.best_us = us;
  ++t.epochs;
  ++telemetry_.race.exploration_epochs;
  if (++cand_epoch_ < opts_.calibration_epochs) return;
  cand_epoch_ = 0;
  if (++cand_idx_ < candidates_.size()) {
    set_strategy_state(candidates_[cand_idx_]);
    bind_region();
    return;
  }
  finish_calibration();
}

void FactorPlan::finish_calibration() {
  std::size_t best = 0;
  for (std::size_t i = 1; i < telemetry_.race.timings.size(); ++i) {
    if (telemetry_.race.timings[i].best_us <
        telemetry_.race.timings[best].best_us) {
      best = i;
    }
  }
  const ExecutionStrategy winner = candidates_[best];
  calibrating_ = false;
  set_strategy_state(winner);
  telemetry_.race.calibrated = true;
  telemetry_.rationale =
      std::string("calibrated: ") + core::to_string(winner) +
      " measured fastest (" +
      std::to_string(telemetry_.race.timings[best].best_us) +
      " us/factorization over " +
      std::to_string(telemetry_.race.exploration_epochs) +
      " exploration factorizations)";
  if (have_tuning_key_) core::tuning_cache().store(tuning_key_, winner);
  const bool needs_order =
      telemetry_.strategy == ExecutionStrategy::kLevelBarrier ||
      (telemetry_.strategy == ExecutionStrategy::kDoacross && opts_.reorder);
  if (!needs_order) order_.reset();
  bind_region();
}

void FactorPlan::set_lanes(const kernels::LaneOps* ops) noexcept {
  lanes_ = ops;
  // The fused scatter update re-rounds, so it is only reachable when the
  // caller opted into ulp_tolerance AND the table is a vector one — a
  // forced-scalar plan stays bitwise even with a tolerance set.
  gather_ = (opts_.ulp_tolerance > 0.0 &&
             ops->isa != kernels::KernelIsa::kScalar)
                ? ops->gather_axpy_fma
                : ops->gather_axpy;
}

void FactorPlan::resolve_kernel() noexcept {
  telemetry_.isa = kernels::dispatched_isa();
  const bool have_vector = telemetry_.isa != kernels::KernelIsa::kScalar;
  switch (opts_.kernel) {
    case kernels::KernelChoice::kScalar:
      set_lanes(&kernels::scalar_ops());
      telemetry_.kernel = kernels::KernelChoice::kScalar;
      return;
    case kernels::KernelChoice::kVector:
      set_lanes(&kernels::dispatched_ops());
      telemetry_.kernel = have_vector ? kernels::KernelChoice::kVector
                                      : kernels::KernelChoice::kScalar;
      return;
    case kernels::KernelChoice::kAuto:
      set_lanes(&kernels::dispatched_ops());
      telemetry_.kernel = have_vector ? kernels::KernelChoice::kVector
                                      : kernels::KernelChoice::kScalar;
      // Separate race from the strategy race (DESIGN.md §13 budgets are
      // contractual): scalar-vs-vector is timed on the factorizations
      // that run after strategy calibration finishes. Both candidates
      // produce bitwise-identical factors, so exploring is invisible.
      if (have_vector && opts_.calibration_epochs > 0 && n_ > 0) {
        kernel_race_.arm(opts_.calibration_epochs);
      }
      return;
  }
}

void FactorPlan::note_kernel_epoch(double seconds) noexcept {
  if (kernel_race_.note_epoch(seconds * 1e6)) {
    set_lanes(kernel_race_.winner() == kernels::KernelChoice::kScalar
                  ? &kernels::scalar_ops()
                  : &kernels::dispatched_ops());
    telemetry_.kernel = kernel_race_.winner();
  }
  telemetry_.kernel_race = kernel_race_.state();
}

IluFactors FactorPlan::allocate_factors() const {
  // One layout authority: the same split ilu0() allocates through, fed
  // from the plan's pattern copy (the split never reads values).
  Csr pattern(n_, n_);
  pattern.ptr = ptr_;
  pattern.idx = idx_;
  return ilu0_split_pattern(pattern, diag_);
}

template <class WaitFn>
void FactorPlan::factor_row(index_t i, WaitFn&& wait) {
  // Identical arithmetic (step order, update order, divisions) to the
  // sequential ilu0() IKJ loop — values are bitwise equal; the wait hook
  // only sequences the reads of earlier rows' finalized values.
  double* w = w_.data();
  const index_t rb = ptr_[static_cast<std::size_t>(i)];
  const index_t re = ptr_[static_cast<std::size_t>(i) + 1];
  const index_t d = diag_[static_cast<std::size_t>(i)];
  for (index_t k = rb; k < re; ++k) {
    w[k] = aval_[k];  // row i's w slice is written only by row i
  }
  const index_t s_end = row_step_ptr_[static_cast<std::size_t>(i) + 1];
  for (index_t s = row_step_ptr_[static_cast<std::size_t>(i)]; s < s_end;
       ++s) {
    const index_t kk = lik_pos_[static_cast<std::size_t>(s)];
    wait(idx_[static_cast<std::size_t>(kk)]);
    const double lik = w[kk] / w[pivot_pos_[static_cast<std::size_t>(s)]];
    w[kk] = lik;
    const index_t t_begin = upd_ptr_[static_cast<std::size_t>(s)];
    const index_t t_end = upd_ptr_[static_cast<std::size_t>(s) + 1];
    const index_t cnt = t_end - t_begin;
    if (cnt >= kernels::kLaneMin) {
      // Targets are positions in row i (distinct), sources in the
      // retired pivot row — disjoint, as the gather kernels require.
      gather_(w, upd_tgt_.data() + t_begin, upd_src_.data() + t_begin, cnt,
              lik);
    } else {
      for (index_t t = t_begin; t < t_end; ++t) {
        w[upd_tgt_[static_cast<std::size_t>(t)]] -=
            lik * w[upd_src_[static_cast<std::size_t>(t)]];
      }
    }
  }
  // Pivot policy at production, BEFORE the factor copy and before the
  // caller publishes the row: consumers read w, so a substitution is
  // seen by every later row and lands in U — thread-order independent,
  // hence bitwise identical to ilu0(a, pivot) under every strategy.
  double piv = w[d];
  if (injector_) piv = injector_->filter_pivot(i, piv);
  if (piv == 0.0 || !std::isfinite(piv)) {
    switch (opts_.pivot.policy) {
      case PivotPolicy::kThrow:
        record_bad_row(bad_row_, i);
        break;
      case PivotPolicy::kShift:
        piv = shift_sigma_;
        shift_count_.fetch_add(1, std::memory_order_relaxed);
        break;
      case PivotPolicy::kReplace:
        piv = opts_.pivot.replacement;
        shift_count_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
  w[d] = piv;
  // Split row i into the factors: both destination runs are contiguous
  // (sorted row, lower part first), so the scatter of ilu0()'s split loop
  // is two straight copies. L's unit diagonal was written at allocation.
  std::memcpy(lval_ + lptr_[static_cast<std::size_t>(i)], w + rb,
              static_cast<std::size_t>(d - rb) * sizeof(double));
  std::memcpy(uval_ + uptr_[static_cast<std::size_t>(i)], w + d,
              static_cast<std::size_t>(re - d) * sizeof(double));
}

void FactorPlan::bind_region() {
  // Bound once; per-call inputs travel through aval_/lval_/uval_ so
  // factorize() never constructs (= heap-allocates) a std::function.
  switch (telemetry_.strategy) {
    case ExecutionStrategy::kDoacross: {
      const index_t* ord = order_ ? order_->order.data() : nullptr;
      region_ = [this, ord](unsigned tid, unsigned nthreads) {
        std::uint64_t eps = 0, rds = 0;
        index_t cur = -1;  // row being factored, for stall diagnostics
        auto flag_wait = [&](index_t k) {
          const std::uint64_t rounds =
              core::wait_done_guarded(ready_, k, cur, guard_);
          if (rounds != 0) {
            ++eps;
            rds += rounds;
          }
        };
        auto run_pos = [&](index_t pos) {
          const index_t i = ord ? ord[pos] : pos;
          cur = i;
          if (injector_) injector_->on_row(tid, i, &latch_);
          factor_row(i, flag_wait);
          ready_.mark_done(i);  // release-publishes row i's w slice
        };
        rt::schedule_run(opts_.schedule, n_, tid, nthreads, &cursor_,
                         run_pos);
        episodes_[tid].value = eps;
        rounds_[tid].value = rds;
      };
      break;
    }
    case ExecutionStrategy::kLevelBarrier:
      region_ = [this](unsigned tid, unsigned nthreads) {
        // Every producer of level l retired before the barrier that opens
        // level l+1 — no flags consulted or published.
        const core::Reordering& ord = *order_;
        auto no_wait = [](index_t) noexcept {};
        for (index_t lvl = 0; lvl < ord.num_levels(); ++lvl) {
          const index_t lo = ord.level_ptr[static_cast<std::size_t>(lvl)];
          const index_t hi =
              ord.level_ptr[static_cast<std::size_t>(lvl) + 1];
          const rt::IterRange r =
              rt::static_block_range(hi - lo, tid, nthreads);
          for (index_t pos = lo + r.begin; pos < lo + r.end; ++pos) {
            const index_t i = ord.order[static_cast<std::size_t>(pos)];
            if (injector_) injector_->on_row(tid, i, &latch_);
            factor_row(i, no_wait);
          }
          barrier_.arrive_and_wait();
        }
        episodes_[tid].value = 0;
        rounds_[tid].value = 0;
      };
      break;
    case ExecutionStrategy::kBlockedHybrid:
      region_ = [this](unsigned tid, unsigned nthreads) {
        // Static contiguous blocks in source order: an intra-block pivot
        // row already retired (rows run in increasing order), so only
        // boundary-crossing pivots consult a flag.
        std::uint64_t eps = 0, rds = 0;
        const rt::IterRange range = rt::static_block_range(n_, tid, nthreads);
        index_t cur = -1;
        auto boundary_wait = [&](index_t k) {
          if (k < range.begin) {
            const std::uint64_t rounds =
                core::wait_done_guarded(ready_, k, cur, guard_);
            if (rounds != 0) {
              ++eps;
              rds += rounds;
            }
          }
        };
        for (index_t i = range.begin; i < range.end; ++i) {
          cur = i;
          if (injector_) injector_->on_row(tid, i, &latch_);
          factor_row(i, boundary_wait);
          ready_.mark_done(i);
        }
        episodes_[tid].value = eps;
        rounds_[tid].value = rds;
      };
      break;
    case ExecutionStrategy::kSerial:
      region_ = [this](unsigned, unsigned) {
        auto no_wait = [](index_t) noexcept {};
        for (index_t i = 0; i < n_; ++i) {
          if (injector_) injector_->on_row(0, i, &latch_);
          factor_row(i, no_wait);
        }
      };
      break;
    case ExecutionStrategy::kAuto:
      break;  // unreachable: the constructor never leaves kAuto
  }
  // Containment wrapper (applied once — factorize() still never
  // allocates): a faulting worker records its exception in the latch and
  // joins; peers observe the latch in their guarded waits, throw
  // WorkerAbort, and drain here.
  region_ = [this, raw = std::move(region_)](unsigned tid,
                                             unsigned nthreads) {
    try {
      raw(tid, nthreads);
    } catch (rt::WorkerAbort&) {
      // A peer faulted first; this thread drained its waits and joins.
    } catch (...) {
      latch_.raise(std::current_exception());
    }
  };
}

bool FactorPlan::split_idx_matches(const IluFactors& f) const noexcept {
  // Column indices, not just row counts: two patterns can share every
  // per-row split size and still disagree on which columns the rows
  // store, and writing values through the wrong columns would corrupt
  // the factors silently.
  for (index_t i = 0; i < n_; ++i) {
    const index_t d = diag_[static_cast<std::size_t>(i)];
    index_t lp = lptr_[static_cast<std::size_t>(i)];
    for (index_t k = ptr_[static_cast<std::size_t>(i)]; k < d; ++k) {
      if (f.l.idx[static_cast<std::size_t>(lp++)] !=
          idx_[static_cast<std::size_t>(k)]) {
        return false;
      }
    }
    if (f.l.idx[static_cast<std::size_t>(lp)] != i) return false;
    index_t up = uptr_[static_cast<std::size_t>(i)];
    for (index_t k = d; k < ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      if (f.u.idx[static_cast<std::size_t>(up++)] !=
          idx_[static_cast<std::size_t>(k)]) {
        return false;
      }
    }
  }
  return true;
}

FactorStats FactorPlan::factorize(const Csr& a, IluFactors& f) {
  if (poisoned_) {
    throw rt::PlanPoisonedError(
        "FactorPlan: plan poisoned by an earlier in-region fault; rebuild "
        "the plan before factorizing again");
  }
  // The O(nnz) idx comparisons run once per distinct buffer set: a
  // time-stepping caller re-assembles VALUES into the same Csr / factor
  // objects every step, so steady-state validation drops to the O(n)
  // row-pointer compare (kept even on the fast path — it catches any
  // realistic pattern change, including a reallocated buffer landing at
  // a previously validated address with different row counts). Same
  // skip rule as refresh_values: rewriting COLUMN indices in place —
  // same buffers, same row counts, different columns — is the caller
  // breaking the value-only contract.
  const bool same_a = a.ptr.data() == checked_ptr_ &&
                      a.idx.data() == checked_idx_ &&
                      a.val.size() == idx_.size() && a.ptr == ptr_;
  if (!same_a) {
    if (a.rows != n_ || a.cols != n_ || a.ptr != ptr_ || a.idx != idx_ ||
        a.val.size() != idx_.size()) {
      throw std::invalid_argument("FactorPlan::factorize: pattern mismatch");
    }
  }
  const bool same_f =
      f.l.idx.data() == checked_lidx_ && f.u.idx.data() == checked_uidx_ &&
      f.l.val.size() == static_cast<std::size_t>(lptr_.back()) &&
      f.u.val.size() == static_cast<std::size_t>(uptr_.back()) &&
      f.l.ptr == lptr_ && f.u.ptr == uptr_;
  if (!same_f) {
    if (f.l.rows != n_ || f.u.rows != n_ || f.l.ptr != lptr_ ||
        f.u.ptr != uptr_ ||
        f.l.val.size() != static_cast<std::size_t>(lptr_.back()) ||
        f.u.val.size() != static_cast<std::size_t>(uptr_.back()) ||
        !split_idx_matches(f)) {
      throw std::invalid_argument(
          "FactorPlan::factorize: factor pattern mismatch (use "
          "allocate_factors())");
    }
  }
  checked_ptr_ = a.ptr.data();
  checked_idx_ = a.idx.data();
  checked_lidx_ = f.l.idx.data();
  checked_uidx_ = f.u.idx.data();
  FactorStats stats;
  if (n_ == 0) return stats;

  aval_ = a.val.data();
  lval_ = f.l.val.data();
  uval_ = f.u.val.data();

  // The kernel race feeds only on factorizations after the strategy race
  // locked in, so strategy exploration noise never pollutes the
  // scalar-vs-vector timings. The candidate table is set per
  // factorization (both candidates are bitwise identical).
  const bool kernel_epoch = kernel_race_.active() && !calibrating_;
  if (kernel_epoch) {
    const kernels::KernelChoice cand = kernel_race_.candidate();
    set_lanes(cand == kernels::KernelChoice::kScalar
                  ? &kernels::scalar_ops()
                  : &kernels::dispatched_ops());
    telemetry_.kernel = cand;
  }

  using clock = std::chrono::steady_clock;
  const clock::time_point t0 = clock::now();
  // kShift escalation mirrors ilu0(a, pivot): rerun the whole numeric
  // phase with a larger substitute until the factors come out finite (a
  // shifted pivot can still overflow later rows through a huge lik).
  // kThrow and kReplace never take a second pass.
  shift_sigma_ = opts_.pivot.initial_shift;
  std::uint64_t shifts = 0;
  int pass = 0;
  for (;;) {
    ++pass;
    ready_.begin_epoch();
    cursor_.store(0, std::memory_order_relaxed);
    bad_row_.store(-1, std::memory_order_relaxed);
    shift_count_.store(0, std::memory_order_relaxed);
    if (telemetry_.strategy == ExecutionStrategy::kSerial) {
      region_(0, 1);
    } else {
      pool_->parallel_region(nth_, region_);
      for (unsigned t = 0; t < nth_; ++t) {
        stats.wait_episodes += episodes_[t].value;
        stats.wait_rounds += rounds_[t].value;
      }
    }
    if (latch_.raised()) {
      // A worker faulted (injected fault, stall watchdog, ...) and its
      // peers drained; partial factors are garbage, so poison the plan.
      poisoned_ = true;
      latch_.rethrow_and_reset();
    }

    // Pivot failures under kThrow are recorded in-region (throwing there
    // would strand peers spinning on the bad row's flag) and reported
    // here; the row is the same one the sequential loop throws on first.
    // This does NOT poison the plan: a refactorize with good values
    // rewrites every factor value and recovers it.
    const index_t bad = bad_row_.load(std::memory_order_relaxed);
    if (bad >= 0) {
      throw std::runtime_error(
          "FactorPlan::factorize: zero/invalid pivot produced at row " +
          std::to_string(bad));
    }
    shifts = shift_count_.load(std::memory_order_relaxed);
    if (shifts == 0 || opts_.pivot.policy != PivotPolicy::kShift) break;
    bool finite = true;
    const std::size_t lnnz = static_cast<std::size_t>(lptr_.back());
    const std::size_t unnz = static_cast<std::size_t>(uptr_.back());
    for (std::size_t k = 0; k < lnnz && finite; ++k) {
      finite = std::isfinite(lval_[k]);
    }
    for (std::size_t k = 0; k < unnz && finite; ++k) {
      finite = std::isfinite(uval_[k]);
    }
    if (finite) break;
    if (pass >= opts_.pivot.max_passes) {
      throw std::runtime_error(
          "FactorPlan::factorize: diagonal shift failed to produce finite "
          "factors after " +
          std::to_string(pass) + " passes");
    }
    shift_sigma_ *= opts_.pivot.shift_growth;
  }
  const clock::time_point t1 = clock::now();
  stats.factor_seconds = std::chrono::duration<double>(t1 - t0).count();
  // Race bookkeeping only after a fully successful numeric phase: a
  // fault poisons the plan above without touching the race, and a pivot
  // throw returns before this point — neither feeds the cache.
  if (calibrating_) {
    note_calibration_epoch(stats.factor_seconds);
  } else if (kernel_epoch) {
    note_kernel_epoch(stats.factor_seconds);
  }
  stats.pivot_shifts = shifts;
  stats.pivot_shift =
      shifts != 0 ? (opts_.pivot.policy == PivotPolicy::kReplace
                         ? opts_.pivot.replacement
                         : shift_sigma_)
                  : 0.0;
  stats.shift_passes = pass;
  telemetry_.total_pivot_shifts += shifts;
  if (shifts != 0) telemetry_.last_shift = stats.pivot_shift;
  ++factorizations_;
  return stats;
}

}  // namespace pdx::sparse
