#include "sparse/permute.hpp"

#include <algorithm>
#include <stdexcept>

namespace pdx::sparse {

std::vector<index_t> invert_permutation(std::span<const index_t> perm) {
  std::vector<index_t> inv(perm.size(), -1);
  for (std::size_t k = 0; k < perm.size(); ++k) {
    const index_t old = perm[k];
    if (old < 0 || old >= static_cast<index_t>(perm.size()) ||
        inv[static_cast<std::size_t>(old)] != -1) {
      throw std::invalid_argument("invert_permutation: not a permutation");
    }
    inv[static_cast<std::size_t>(old)] = static_cast<index_t>(k);
  }
  return inv;
}

Csr permute_symmetric(const Csr& a, std::span<const index_t> perm) {
  if (a.rows != a.cols || static_cast<index_t>(perm.size()) != a.rows) {
    throw std::invalid_argument("permute_symmetric: size mismatch");
  }
  const std::vector<index_t> inv = invert_permutation(perm);

  Csr b(a.rows, a.cols);
  b.ptr.assign(static_cast<std::size_t>(a.rows) + 1, 0);
  for (index_t k = 0; k < a.rows; ++k) {
    b.ptr[static_cast<std::size_t>(k) + 1] = a.row_nnz(perm[static_cast<std::size_t>(k)]);
  }
  for (index_t k = 0; k < a.rows; ++k) {
    b.ptr[static_cast<std::size_t>(k) + 1] += b.ptr[static_cast<std::size_t>(k)];
  }
  b.idx.resize(static_cast<std::size_t>(a.nnz()));
  b.val.resize(static_cast<std::size_t>(a.nnz()));

  std::vector<std::pair<index_t, double>> row;
  for (index_t k = 0; k < a.rows; ++k) {
    const index_t old_row = perm[static_cast<std::size_t>(k)];
    row.clear();
    for (index_t kk = a.row_begin(old_row); kk < a.row_end(old_row); ++kk) {
      row.emplace_back(inv[static_cast<std::size_t>(
                           a.idx[static_cast<std::size_t>(kk)])],
                       a.val[static_cast<std::size_t>(kk)]);
    }
    std::sort(row.begin(), row.end());
    index_t out = b.row_begin(k);
    for (const auto& [c, v] : row) {
      b.idx[static_cast<std::size_t>(out)] = c;
      b.val[static_cast<std::size_t>(out)] = v;
      ++out;
    }
  }
  return b;
}

std::vector<double> permute_vector(std::span<const double> v,
                                   std::span<const index_t> perm) {
  std::vector<double> out(perm.size());
  for (std::size_t k = 0; k < perm.size(); ++k) {
    out[k] = v[static_cast<std::size_t>(perm[k])];
  }
  return out;
}

std::vector<double> unpermute_vector(std::span<const double> v,
                                     std::span<const index_t> perm) {
  std::vector<double> out(perm.size());
  for (std::size_t k = 0; k < perm.size(); ++k) {
    out[static_cast<std::size_t>(perm[k])] = v[k];
  }
  return out;
}

}  // namespace pdx::sparse
