// kernels.hpp — runtime-dispatched vector kernels for the packed-stream
// executors (DESIGN.md §14).
//
// The inspector fixed the schedule (TrisolvePlan) and the layout
// (PackedFactorStream); what remains between the executor and hardware
// speed is the innermost arithmetic. This module supplies it as a small
// table of function pointers — LaneOps — selected ONCE per process from
// CPUID (overridable via the PDX_KERNEL env var for testing), so the
// plans never branch on ISA inside a row loop and never recompile per
// target: the AVX2 bodies carry per-function target attributes and the
// translation unit builds with the portable baseline flags.
//
// The bitwise contract (DESIGN.md §4) splits the kernels in two classes:
//
//   bitwise   axpy / div_inplace / gather_axpy — element-independent:
//             each output element is produced by exactly the sequential
//             operation sequence (one mul rounding + one sub rounding,
//             or one correctly-rounded division). SIMD only changes how
//             many independent elements retire per instruction, so the
//             vector forms are bitwise identical to the scalar forms.
//             These back the multi-RHS lane executors (the k columns of
//             the wavefront-interleaved strip are the SIMD lanes) and
//             FactorPlan's scatter updates. They deliberately avoid FMA:
//             the scalar reference is compiled without FMA contraction,
//             and a fused multiply-add rounds once where the reference
//             rounds twice.
//
//   ulp       dot / gather_axpy_fma — horizontal reductions and fused
//             forms reassociate or re-round, so they are NOT bitwise
//             against the sequential solves; plans use them only when
//             the caller opted in through ulp_tolerance (> 0), and the
//             forced-scalar table keeps even opted-in plans bitwise.
//
// Every function tolerates unaligned pointers (the CSR-view sources are
// not 32B-aligned; the packed streams are, by the record padding).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/types.hpp"

namespace pdx::sparse::kernels {

/// Instruction set a LaneOps table was compiled for.
enum class KernelIsa : std::uint8_t { kScalar, kAvx2, kNeon };

inline const char* to_string(KernelIsa isa) noexcept {
  switch (isa) {
    case KernelIsa::kScalar: return "scalar";
    case KernelIsa::kAvx2: return "avx2";
    case KernelIsa::kNeon: return "neon";
  }
  return "?";
}

/// Per-plan kernel selection (PlanOptions/FactorPlanOptions::kernel).
///   kAuto   — vector table when the dispatched ISA has one; when the
///             plan also runs a calibration race, scalar-vs-vector is
///             raced on the first lane-kernel dispatches and the
///             measured winner locks in (DESIGN.md §14).
///   kScalar — pin the scalar table (the reference everything is
///             bitwise-tested against).
///   kVector — pin the dispatched vector table (falls back to scalar
///             when the machine has none).
enum class KernelChoice : std::uint8_t { kAuto, kScalar, kVector };

inline const char* to_string(KernelChoice c) noexcept {
  switch (c) {
    case KernelChoice::kAuto: return "auto";
    case KernelChoice::kScalar: return "scalar";
    case KernelChoice::kVector: return "vector";
  }
  return "?";
}

/// Resolve an override string (the PDX_KERNEL env var) against what the
/// hardware supports: "scalar" pins the fallback, "avx2"/"neon" request
/// an ISA (clamped to scalar when absent), "auto"/empty/nullptr/unknown
/// defer to CPUID. Pure function — unit-testable without setenv.
KernelIsa resolve_isa(const char* override_value) noexcept;

/// The process-wide dispatched ISA: CPUID probed once, PDX_KERNEL
/// consulted once, then cached (plans built after a setenv in the same
/// process intentionally keep the first answer).
KernelIsa dispatched_isa() noexcept;

/// The innermost arithmetic of the packed executors as a dispatch table.
/// `k`/`cnt` are element counts; all pointers may be unaligned.
struct LaneOps {
  KernelIsa isa = KernelIsa::kScalar;
  /// BITWISE: t[c] -= a * x[c] for c in [0, k) — one mul rounding, one
  /// sub rounding per element, no FMA. The multi-RHS lane update.
  void (*axpy)(double* t, const double* x, double a, index_t k);
  /// BITWISE: one packed row's WHOLE dependence list against the
  /// row-major strip — t[c] -= vals[j] * xs[cols[j]*k + c] for j in
  /// [0, cnt) stored order. Per column the update sequence (and so every
  /// rounding) is exactly the scalar loop's; the vector forms only keep
  /// the accumulators in registers across the j loop instead of storing
  /// t back per dependence. One indirect call per row, not per
  /// dependence — the executors' hot path.
  void (*row_axpy)(double* t, const double* vals, const index_t* cols,
                   index_t cnt, const double* xs, index_t k);
  /// BITWISE: t[c] /= d for c in [0, k) — correctly rounded per lane.
  void (*div_inplace)(double* t, double d, index_t k);
  /// ULP: sum_j vals[j] * y[cols[j]] over cnt gathered entries, with
  /// vector-width accumulators (reassociated) and FMA where available.
  /// Only consulted by plans whose caller set ulp_tolerance > 0.
  double (*dot)(const double* vals, const index_t* cols, const double* y,
                index_t cnt);
  /// BITWISE: w[tgt[t]] -= a * w[src[t]] for t in [0, cnt). Requires the
  /// tgt and src position sets to be disjoint and the tgt positions
  /// distinct (FactorPlan's scatter steps satisfy both: targets lie in
  /// the row being factored, sources in the already-retired pivot row).
  void (*gather_axpy)(double* w, const index_t* tgt, const index_t* src,
                      index_t cnt, double a);
  /// ULP: the same scatter update with a single fused rounding per
  /// element. Same disjointness requirements.
  void (*gather_axpy_fma)(double* w, const index_t* tgt, const index_t* src,
                          index_t cnt, double a);
};

/// The scalar reference table (always available).
const LaneOps& scalar_ops() noexcept;

/// The table compiled for `isa` (scalar when the build lacks bodies for
/// it — e.g. requesting kNeon on x86).
const LaneOps& ops_for(KernelIsa isa) noexcept;

/// ops_for(dispatched_isa()) — what a kAuto/kVector plan starts from.
const LaneOps& dispatched_ops() noexcept;

/// Below this column count the lane kernels cannot fill one vector and
/// the indirect call costs more than the loop it replaces; the executors
/// inline the scalar arithmetic instead (bitwise-identical either way).
inline constexpr index_t kLaneMin = 4;

/// Software prefetch of the line holding `p` into all cache levels.
/// Prefetches never fault, so callers may pass one-past-the-end
/// addresses (the tail prefetch of a linear record walk).
inline void prefetch_read(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

/// One vector-vs-scalar exploration timing (mirrors core::StrategyTiming
/// for the strategy race; DESIGN.md §14).
struct KernelTiming {
  KernelChoice kernel = KernelChoice::kScalar;
  double best_us = 0.0;  ///< best normalized epoch time
  int epochs = 0;        ///< epochs this choice was timed
};

/// The empirical kernel-race record a plan reports in its telemetry.
struct KernelRaceState {
  bool calibrated = false;     ///< a measured winner is locked in
  int exploration_epochs = 0;  ///< timed dispatches spent exploring
  std::vector<KernelTiming> timings;
};

/// Scalar-vs-vector race bookkeeping shared by TrisolvePlan and
/// FactorPlan. The strategy race (DESIGN.md §13) stays a pure 4-strategy
/// race — its budget and winner assertions are contractual — so the
/// kernel dimension races separately, on the dispatches that actually
/// execute lane kernels, after the strategy race has locked in. Both
/// candidates are bitwise identical on those dispatches, so exploration
/// is invisible to callers.
class Race {
 public:
  /// Arm with a per-choice epoch budget (vector explores first — it is
  /// also the default when nothing ever feeds the race). Non-positive
  /// budgets leave the race disarmed.
  void arm(int epochs_per_choice) noexcept {
    if (epochs_per_choice <= 0) return;
    budget_ = epochs_per_choice;
    active_ = true;
    state_.timings = {KernelTiming{KernelChoice::kVector},
                      KernelTiming{KernelChoice::kScalar}};
  }
  bool active() const noexcept { return active_; }
  /// The choice the next raced dispatch should execute.
  KernelChoice candidate() const noexcept {
    return active_ ? state_.timings[idx_].kernel : winner_;
  }
  /// Record one raced dispatch's normalized time; advances the candidate
  /// after its budget and locks in the winner when every choice has
  /// spent its budget. Returns true exactly once, at lock-in.
  bool note_epoch(double us) noexcept {
    if (!active_) return false;
    KernelTiming& t = state_.timings[idx_];
    if (t.epochs == 0 || us < t.best_us) t.best_us = us;
    ++t.epochs;
    ++state_.exploration_epochs;
    if (++epoch_ < budget_) return false;
    epoch_ = 0;
    if (++idx_ < state_.timings.size()) return false;
    std::size_t best = 0;
    for (std::size_t i = 1; i < state_.timings.size(); ++i) {
      if (state_.timings[i].best_us < state_.timings[best].best_us) best = i;
    }
    winner_ = state_.timings[best].kernel;
    active_ = false;
    state_.calibrated = true;
    return true;
  }
  /// The locked-in choice (kVector until a race completes and says
  /// otherwise — the vector table is the default).
  KernelChoice winner() const noexcept { return winner_; }
  const KernelRaceState& state() const noexcept { return state_; }

 private:
  bool active_ = false;
  int budget_ = 0;
  int epoch_ = 0;
  std::size_t idx_ = 0;
  KernelChoice winner_ = KernelChoice::kVector;
  KernelRaceState state_;
};

}  // namespace pdx::sparse::kernels
