// packed_stream.hpp — plan-owned packed factor streams (DESIGN.md §10).
//
// The inspector-executor systems this library descends from fix the
// *schedule* at preprocessing time; this module lets the inspector fix
// the *data layout* too. A triangular factor that will be solved
// thousands of times through one TrisolvePlan is re-streamed, once at
// plan build, into slabs of fused per-row records laid out in the exact
// order the executor will walk them:
//
//   record  := [row][cnt][diag][cols: cnt words][pad][vals: cnt doubles][pad]
//
// so the hot loop is a single forward walk — no row_ptr indirection, no
// separate idx/val arrays a reordered schedule would stride through, and
// every byte a row needs arrives on the cache lines the previous row
// already pulled in. The diagonal is stored as-is (NOT its reciprocal):
// the plan's bitwise-identity contract with the sequential Fig. 7 solves
// pins the division.
//
// Records are padded (zero words, bitwise-neutral) so that `vals` and
// every record base land on a 32-byte boundary: slabs are cache-line
// (64B) aligned, so keeping each record a multiple of four words and
// placing `vals` at a four-word offset means the vector kernels
// (DESIGN.md §14) can load value lanes without ever splitting a 32B
// load across two lines. Worst case the padding costs 3+3 words per
// record (~37% on an empty row, <6% on a 9-point-stencil row).
//
// Build is two-phase so memory lands on the right NUMA node:
//
//   prepare(...)  sizes and allocates every slab WITHOUT touching its
//                 pages (raw aligned operator new — a vector resize
//                 would zero-fill on the calling thread and decide page
//                 placement there);
//   pack(s)       copies slab s's records out of the CSR — the first
//                 touch. The plan calls it from the thread that will
//                 execute the slab, inside one pool dispatch.
//
// Slabs are cache-line aligned and padded so adjacent threads' streams
// never share a line. Streams are written once and read-only at solve
// time.
#pragma once

#include <cstddef>
#include <cstring>
#include <vector>

#include "runtime/aligned.hpp"
#include "runtime/types.hpp"
#include "sparse/csr.hpp"
#include "sparse/kernels.hpp"

namespace pdx::sparse {

/// One row of a packed stream (or a CSR row viewed through the same
/// lens — the layout-generic plan kernels consume only this shape).
/// `cols`/`vals` hold the `cnt` off-diagonal entries in stored (sorted)
/// order; `diag` is the divisor.
struct PackedRow {
  index_t row = 0;
  index_t cnt = 0;
  double diag = 0.0;
  const index_t* cols = nullptr;
  const double* vals = nullptr;
};

/// A triangular factor packed into execution-ordered record slabs.
/// Slab s holds the rows thread s will execute, in its execution order;
/// seekable streams additionally index records by global execution
/// position for schedules whose per-thread order is decided at run time
/// (the dynamic doacross).
class PackedFactorStream {
 public:
  /// Record wire format is 8-byte words throughout.
  static_assert(sizeof(index_t) == sizeof(double) &&
                    sizeof(double) == 8,
                "packed records assume 8-byte index/value words");

  /// Forward walk over one slab. next() parses the record under the
  /// cursor and advances past it; callers must not read past the slab's
  /// row count (the stream carries no terminator).
  class Cursor {
   public:
    Cursor() = default;
    explicit Cursor(const std::byte* p) : p_(p) {}

    PackedRow next() noexcept {
      PackedRow r;
      const index_t* h = reinterpret_cast<const index_t*>(p_);
      r.row = h[0];
      r.cnt = h[1];
      r.diag = reinterpret_cast<const double*>(p_)[2];
      r.cols = h + 3;
      r.vals = reinterpret_cast<const double*>(p_) + vals_offset_words(r.cnt);
      p_ += record_bytes(r.cnt);
      // Pull the NEXT record's header line while the caller computes on
      // this row (SNIPPETS' prefetcht0-on-the-next-node idea applied to
      // the linear record walk). Prefetches never fault, so the tail
      // record's one-past-the-end prefetch is harmless.
      kernels::prefetch_read(p_);
      return r;
    }

   private:
    const std::byte* p_ = nullptr;
  };

  PackedFactorStream() = default;
  PackedFactorStream(const PackedFactorStream&) = delete;
  PackedFactorStream& operator=(const PackedFactorStream&) = delete;

  /// True once prepare() has laid out slabs (records may not be filled
  /// yet — pack() does that).
  bool packed() const noexcept { return !slabs_.empty(); }
  unsigned slab_count() const noexcept {
    return static_cast<unsigned>(slabs_.size());
  }
  /// Total plan-owned stream bytes (all slabs, padding included).
  std::size_t bytes() const noexcept;

  /// Phase 1: lay out one slab per entry of `sequences` (slab s will
  /// hold sequences[s]'s rows in that order) over factor `m`, which must
  /// outlive pack(). `diag_first` selects the upper-factor row split
  /// (diagonal stored first in the sorted row) versus lower (diagonal
  /// last). With `build_position_index`, records are also addressable by
  /// global execution position — position p is the p-th row of the
  /// concatenated sequences — through at(p). Allocates slab memory
  /// without touching it.
  void prepare(const Csr& m, bool diag_first,
               std::vector<std::vector<index_t>> sequences,
               bool build_position_index);

  /// Phase 2: fill slab s from the CSR — the first touch of its pages.
  /// Call exactly once per slab, on the thread that will execute it.
  /// Thread-safe across distinct slabs.
  void pack(unsigned s) noexcept;

  /// Value-only refresh of a packed slab: walk slab s's records in place
  /// (the row/cnt headers and column arrays are pattern state and stay
  /// untouched) and re-copy each record's diagonal and off-diagonal
  /// values from `m`, which must share the pattern of the factor the
  /// stream was prepared over. Works after finish_build() — the headers
  /// themselves carry the row ids — costs no allocation, and is
  /// thread-safe across distinct slabs; pages keep their first-touch
  /// placement. This is what makes TrisolvePlan::refresh_values one
  /// linear sweep instead of a plan rebuild (DESIGN.md §11).
  void repack_values(const Csr& m, unsigned s) noexcept;

  /// Drop the build-time row sequences once every slab is packed.
  void finish_build() noexcept { seq_.clear(); seq_.shrink_to_fit(); }

  /// Linear walk over slab s.
  Cursor cursor(unsigned s) const noexcept {
    return Cursor(slabs_[s].mem.data());
  }

  /// Record at global execution position `pos` (requires the position
  /// index). One predictable pointer load — the schedule-agnostic access
  /// for dynamically claimed positions.
  PackedRow at(index_t pos) const noexcept {
    return Cursor(addr_[static_cast<std::size_t>(pos)]).next();
  }
  bool has_position_index() const noexcept { return !addr_.empty(); }

  void clear() noexcept;

  /// Word offset of the vals array inside a record: the 3-word header
  /// plus cnt column words, rounded up to a four-word (32B) boundary.
  static constexpr index_t vals_offset_words(index_t cnt) noexcept {
    return (3 + cnt + 3) & ~index_t{3};
  }

  /// Full record size: vals_offset + cnt value words, rounded up to a
  /// four-word multiple so the NEXT record base stays 32B-aligned.
  static constexpr std::size_t record_bytes(index_t cnt) noexcept {
    return static_cast<std::size_t>((vals_offset_words(cnt) + cnt + 3) &
                                    ~index_t{3}) *
           8;
  }

 private:

  struct Slab {
    rt::FirstTouchBuffer mem;
    index_t records = 0;  ///< rows in this slab (survives finish_build)
  };

  const Csr* m_ = nullptr;
  bool diag_first_ = false;
  std::vector<std::vector<index_t>> seq_;  // build-time row sequences
  std::vector<Slab> slabs_;
  std::vector<const std::byte*> addr_;  // per global position (optional)
};

}  // namespace pdx::sparse
