// kernels.cpp — the LaneOps tables (DESIGN.md §14).
//
// The whole file compiles with the project's portable baseline flags;
// the AVX2 bodies opt into their ISA with per-function target attributes
// so nothing else in the binary can accidentally emit AVX2 (or FMA — the
// bitwise kernels must round exactly like the baseline-compiled scalar
// reference, which cannot contract mul+sub into an FMA).
#include "sparse/kernels.hpp"

#include <cstdlib>
#include <cstring>

#if defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#define PDX_HAVE_NEON 1
#endif

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define PDX_HAVE_AVX2_BODIES 1
#endif

namespace pdx::sparse::kernels {

namespace {

// --- scalar reference ---------------------------------------------------
// These loops ARE the plans' historical inner arithmetic; the executors
// call them through the table only for wide rows (k >= kLaneMin), so the
// indirect-call cost never lands on narrow batches.

void axpy_scalar(double* t, const double* x, double a, index_t k) {
  for (index_t c = 0; c < k; ++c) t[c] -= a * x[c];
}

void row_axpy_scalar(double* t, const double* vals, const index_t* cols,
                     index_t cnt, const double* xs, index_t k) {
  for (index_t j = 0; j < cnt; ++j) {
    const double a = vals[j];
    const double* x = xs + cols[j] * k;
    for (index_t c = 0; c < k; ++c) t[c] -= a * x[c];
  }
}

void div_scalar(double* t, double d, index_t k) {
  for (index_t c = 0; c < k; ++c) t[c] /= d;
}

double dot_scalar(const double* vals, const index_t* cols, const double* y,
                  index_t cnt) {
  double acc = 0.0;
  for (index_t j = 0; j < cnt; ++j) acc += vals[j] * y[cols[j]];
  return acc;
}

void gather_axpy_scalar(double* w, const index_t* tgt, const index_t* src,
                        index_t cnt, double a) {
  for (index_t t = 0; t < cnt; ++t) w[tgt[t]] -= a * w[src[t]];
}

constexpr LaneOps kScalarOps = {KernelIsa::kScalar,    axpy_scalar,
                                row_axpy_scalar,       div_scalar,
                                dot_scalar,            gather_axpy_scalar,
                                /*gather_axpy_fma=*/gather_axpy_scalar};

#if defined(PDX_HAVE_AVX2_BODIES)

// --- AVX2 ----------------------------------------------------------------
// Bitwise kernels use mul+sub (two roundings, like the scalar reference);
// only the ulp-class kernels (dot, gather_axpy_fma) may fuse.

__attribute__((target("avx2"))) void axpy_avx2(double* t, const double* x,
                                               double a, index_t k) {
  const __m256d av = _mm256_set1_pd(a);
  index_t c = 0;
  for (; c + 4 <= k; c += 4) {
    const __m256d tv = _mm256_loadu_pd(t + c);
    const __m256d xv = _mm256_loadu_pd(x + c);
    _mm256_storeu_pd(t + c, _mm256_sub_pd(tv, _mm256_mul_pd(av, xv)));
  }
  for (; c < k; ++c) t[c] -= a * x[c];
}

__attribute__((target("avx2"))) void row_axpy_avx2(double* t,
                                                   const double* vals,
                                                   const index_t* cols,
                                                   index_t cnt,
                                                   const double* xs,
                                                   index_t k) {
  // Single pass over the dependence list with the whole lane strip in
  // registers: vals[j] broadcasts once and each dependence's strip row
  // streams once per row, not once per 4-lane block. Per column the
  // j-ordered mul+sub sequence is exactly the scalar loop's, so neither
  // the nest swap nor the register accumulation changes any rounding.
  index_t c = 0;
  for (; c + 16 <= k; c += 16) {
    __m256d a0 = _mm256_loadu_pd(t + c);
    __m256d a1 = _mm256_loadu_pd(t + c + 4);
    __m256d a2 = _mm256_loadu_pd(t + c + 8);
    __m256d a3 = _mm256_loadu_pd(t + c + 12);
    for (index_t j = 0; j < cnt; ++j) {
      const __m256d av = _mm256_set1_pd(vals[j]);
      const double* x = xs + cols[j] * k + c;
      a0 = _mm256_sub_pd(a0, _mm256_mul_pd(av, _mm256_loadu_pd(x)));
      a1 = _mm256_sub_pd(a1, _mm256_mul_pd(av, _mm256_loadu_pd(x + 4)));
      a2 = _mm256_sub_pd(a2, _mm256_mul_pd(av, _mm256_loadu_pd(x + 8)));
      a3 = _mm256_sub_pd(a3, _mm256_mul_pd(av, _mm256_loadu_pd(x + 12)));
    }
    _mm256_storeu_pd(t + c, a0);
    _mm256_storeu_pd(t + c + 4, a1);
    _mm256_storeu_pd(t + c + 8, a2);
    _mm256_storeu_pd(t + c + 12, a3);
  }
  for (; c + 8 <= k; c += 8) {
    __m256d a0 = _mm256_loadu_pd(t + c);
    __m256d a1 = _mm256_loadu_pd(t + c + 4);
    for (index_t j = 0; j < cnt; ++j) {
      const __m256d av = _mm256_set1_pd(vals[j]);
      const double* x = xs + cols[j] * k + c;
      a0 = _mm256_sub_pd(a0, _mm256_mul_pd(av, _mm256_loadu_pd(x)));
      a1 = _mm256_sub_pd(a1, _mm256_mul_pd(av, _mm256_loadu_pd(x + 4)));
    }
    _mm256_storeu_pd(t + c, a0);
    _mm256_storeu_pd(t + c + 4, a1);
  }
  for (; c + 4 <= k; c += 4) {
    __m256d a0 = _mm256_loadu_pd(t + c);
    for (index_t j = 0; j < cnt; ++j) {
      const __m256d xv = _mm256_loadu_pd(xs + cols[j] * k + c);
      a0 = _mm256_sub_pd(a0, _mm256_mul_pd(_mm256_set1_pd(vals[j]), xv));
    }
    _mm256_storeu_pd(t + c, a0);
  }
  for (; c < k; ++c) {
    double acc = t[c];
    for (index_t j = 0; j < cnt; ++j) acc -= vals[j] * xs[cols[j] * k + c];
    t[c] = acc;
  }
}

__attribute__((target("avx2"))) void div_avx2(double* t, double d,
                                              index_t k) {
  const __m256d dv = _mm256_set1_pd(d);
  index_t c = 0;
  for (; c + 4 <= k; c += 4) {
    _mm256_storeu_pd(t + c, _mm256_div_pd(_mm256_loadu_pd(t + c), dv));
  }
  for (; c < k; ++c) t[c] /= d;
}

static_assert(sizeof(index_t) == 8,
              "the AVX2 gathers index with 64-bit lanes");

__attribute__((target("avx2,fma"))) double dot_avx2(const double* vals,
                                                    const index_t* cols,
                                                    const double* y,
                                                    index_t cnt) {
  // Reassociated: 4 independent accumulators hide the gather + FMA
  // latency; the caller opted out of bitwise by setting ulp_tolerance.
  __m256d acc = _mm256_setzero_pd();
  index_t j = 0;
  for (; j + 4 <= cnt; j += 4) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + j));
    const __m256d yv = _mm256_i64gather_pd(y, idx, 8);
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(vals + j), yv, acc);
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double tail = 0.0;
  for (; j < cnt; ++j) tail += vals[j] * y[cols[j]];
  return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail;
}

__attribute__((target("avx2"))) void gather_axpy_avx2(double* w,
                                                      const index_t* tgt,
                                                      const index_t* src,
                                                      index_t cnt, double a) {
  // tgt/src position sets are disjoint and tgt positions distinct (the
  // LaneOps contract), so gathering 4 sources and 4 targets before the
  // 4 scatter stores reads no element the same call writes.
  const __m256d av = _mm256_set1_pd(a);
  index_t t = 0;
  for (; t + 4 <= cnt; t += 4) {
    const __m256i si =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + t));
    const __m256i ti =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tgt + t));
    const __m256d sv = _mm256_i64gather_pd(w, si, 8);
    const __m256d tv = _mm256_i64gather_pd(w, ti, 8);
    alignas(32) double out[4];
    _mm256_store_pd(out, _mm256_sub_pd(tv, _mm256_mul_pd(av, sv)));
    w[tgt[t + 0]] = out[0];
    w[tgt[t + 1]] = out[1];
    w[tgt[t + 2]] = out[2];
    w[tgt[t + 3]] = out[3];
  }
  for (; t < cnt; ++t) w[tgt[t]] -= a * w[src[t]];
}

__attribute__((target("avx2,fma"))) void gather_axpy_fma_avx2(
    double* w, const index_t* tgt, const index_t* src, index_t cnt,
    double a) {
  const __m256d av = _mm256_set1_pd(a);
  index_t t = 0;
  for (; t + 4 <= cnt; t += 4) {
    const __m256i si =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + t));
    const __m256i ti =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tgt + t));
    const __m256d sv = _mm256_i64gather_pd(w, si, 8);
    const __m256d tv = _mm256_i64gather_pd(w, ti, 8);
    alignas(32) double out[4];
    _mm256_store_pd(out, _mm256_fnmadd_pd(av, sv, tv));
    w[tgt[t + 0]] = out[0];
    w[tgt[t + 1]] = out[1];
    w[tgt[t + 2]] = out[2];
    w[tgt[t + 3]] = out[3];
  }
  for (; t < cnt; ++t) w[tgt[t]] -= a * w[src[t]];
}

constexpr LaneOps kAvx2Ops = {KernelIsa::kAvx2, axpy_avx2,
                              row_axpy_avx2,    div_avx2,
                              dot_avx2,         gather_axpy_avx2,
                              gather_axpy_fma_avx2};

#endif  // PDX_HAVE_AVX2_BODIES

#if defined(PDX_HAVE_NEON)

// --- NEON ----------------------------------------------------------------
// Baseline on aarch64 — no target attributes or CPUID probe needed. The
// bitwise kernels keep mul+sub separate (vmlsq_f64 may emit a fused
// FMLS, which rounds once — wrong class); there is no hardware gather,
// so the gather kernels stay scalar and only the streaming lane kernels
// vectorize.

void axpy_neon(double* t, const double* x, double a, index_t k) {
  const float64x2_t av = vdupq_n_f64(a);
  index_t c = 0;
  for (; c + 2 <= k; c += 2) {
    const float64x2_t tv = vld1q_f64(t + c);
    const float64x2_t xv = vld1q_f64(x + c);
    vst1q_f64(t + c, vsubq_f64(tv, vmulq_f64(av, xv)));
  }
  for (; c < k; ++c) t[c] -= a * x[c];
}

void row_axpy_neon(double* t, const double* vals, const index_t* cols,
                   index_t cnt, const double* xs, index_t k) {
  // Same single-pass shape as the AVX2 body (8 lanes = 4 q-registers).
  index_t c = 0;
  for (; c + 8 <= k; c += 8) {
    float64x2_t a0 = vld1q_f64(t + c);
    float64x2_t a1 = vld1q_f64(t + c + 2);
    float64x2_t a2 = vld1q_f64(t + c + 4);
    float64x2_t a3 = vld1q_f64(t + c + 6);
    for (index_t j = 0; j < cnt; ++j) {
      const float64x2_t av = vdupq_n_f64(vals[j]);
      const double* x = xs + cols[j] * k + c;
      a0 = vsubq_f64(a0, vmulq_f64(av, vld1q_f64(x)));
      a1 = vsubq_f64(a1, vmulq_f64(av, vld1q_f64(x + 2)));
      a2 = vsubq_f64(a2, vmulq_f64(av, vld1q_f64(x + 4)));
      a3 = vsubq_f64(a3, vmulq_f64(av, vld1q_f64(x + 6)));
    }
    vst1q_f64(t + c, a0);
    vst1q_f64(t + c + 2, a1);
    vst1q_f64(t + c + 4, a2);
    vst1q_f64(t + c + 6, a3);
  }
  for (; c + 2 <= k; c += 2) {
    float64x2_t acc = vld1q_f64(t + c);
    for (index_t j = 0; j < cnt; ++j) {
      const float64x2_t xv = vld1q_f64(xs + cols[j] * k + c);
      acc = vsubq_f64(acc, vmulq_f64(vdupq_n_f64(vals[j]), xv));
    }
    vst1q_f64(t + c, acc);
  }
  for (; c < k; ++c) {
    double acc = t[c];
    for (index_t j = 0; j < cnt; ++j) acc -= vals[j] * xs[cols[j] * k + c];
    t[c] = acc;
  }
}

void div_neon(double* t, double d, index_t k) {
  const float64x2_t dv = vdupq_n_f64(d);
  index_t c = 0;
  for (; c + 2 <= k; c += 2) {
    vst1q_f64(t + c, vdivq_f64(vld1q_f64(t + c), dv));
  }
  for (; c < k; ++c) t[c] /= d;
}

double dot_neon(const double* vals, const index_t* cols, const double* y,
                index_t cnt) {
  // Reassociated (ulp class): two accumulators, scalar gathers.
  float64x2_t acc = vdupq_n_f64(0.0);
  index_t j = 0;
  for (; j + 2 <= cnt; j += 2) {
    const float64x2_t yv = {y[cols[j]], y[cols[j + 1]]};
    acc = vfmaq_f64(acc, vld1q_f64(vals + j), yv);
  }
  double tail = 0.0;
  for (; j < cnt; ++j) tail += vals[j] * y[cols[j]];
  return vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1) + tail;
}

constexpr LaneOps kNeonOps = {KernelIsa::kNeon,   axpy_neon,
                              row_axpy_neon,      div_neon,
                              dot_neon,           gather_axpy_scalar,
                              gather_axpy_scalar};

#endif  // PDX_HAVE_NEON

KernelIsa probe_isa() noexcept {
#if defined(PDX_HAVE_AVX2_BODIES)
  // The ulp kernels fuse, so the AVX2 table requires FMA too (Haswell+
  // has both; insisting keeps one table per ISA instead of per feature
  // pair).
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return KernelIsa::kAvx2;
  }
#elif defined(PDX_HAVE_NEON)
  return KernelIsa::kNeon;
#endif
  return KernelIsa::kScalar;
}

}  // namespace

KernelIsa resolve_isa(const char* override_value) noexcept {
  const KernelIsa hw = probe_isa();
  if (override_value == nullptr || *override_value == '\0') return hw;
  if (std::strcmp(override_value, "scalar") == 0) return KernelIsa::kScalar;
  if (std::strcmp(override_value, "avx2") == 0) {
    return hw == KernelIsa::kAvx2 ? hw : KernelIsa::kScalar;
  }
  if (std::strcmp(override_value, "neon") == 0) {
    return hw == KernelIsa::kNeon ? hw : KernelIsa::kScalar;
  }
  return hw;  // "auto" and anything unrecognized defer to the probe
}

KernelIsa dispatched_isa() noexcept {
  static const KernelIsa isa = resolve_isa(std::getenv("PDX_KERNEL"));
  return isa;
}

const LaneOps& scalar_ops() noexcept { return kScalarOps; }

const LaneOps& ops_for(KernelIsa isa) noexcept {
  switch (isa) {
    case KernelIsa::kScalar:
      break;
    case KernelIsa::kAvx2:
#if defined(PDX_HAVE_AVX2_BODIES)
      return kAvx2Ops;
#else
      break;
#endif
    case KernelIsa::kNeon:
#if defined(PDX_HAVE_NEON)
      return kNeonOps;
#else
      break;
#endif
  }
  return kScalarOps;
}

const LaneOps& dispatched_ops() noexcept { return ops_for(dispatched_isa()); }

}  // namespace pdx::sparse::kernels
