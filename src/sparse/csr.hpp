// csr.hpp — compressed sparse row matrices.
//
// The substrate for the paper's §3.2 experiments: sparse triangular systems
// from incompletely factored PDE discretizations. Row-major CSR with sorted
// column indices; `index_t` indices to match the rest of the library.
#pragma once

#include <algorithm>
#include <cassert>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/types.hpp"

namespace pdx::sparse {

struct Csr {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> ptr;  ///< size rows + 1
  std::vector<index_t> idx;  ///< column indices, sorted within each row
  std::vector<double> val;   ///< one per stored entry

  Csr() = default;
  Csr(index_t r, index_t c) : rows(r), cols(c), ptr(static_cast<std::size_t>(r) + 1, 0) {}

  index_t nnz() const noexcept { return static_cast<index_t>(idx.size()); }

  /// Heap bytes of the three arrays — what a plan's packed factor stream
  /// (sparse/packed_stream.hpp) is traded against when choosing a layout.
  std::size_t memory_bytes() const noexcept {
    return ptr.size() * sizeof(index_t) + idx.size() * sizeof(index_t) +
           val.size() * sizeof(double);
  }

  index_t row_begin(index_t r) const noexcept {
    return ptr[static_cast<std::size_t>(r)];
  }
  index_t row_end(index_t r) const noexcept {
    return ptr[static_cast<std::size_t>(r) + 1];
  }
  index_t row_nnz(index_t r) const noexcept {
    return row_end(r) - row_begin(r);
  }

  std::span<const index_t> row_cols(index_t r) const noexcept {
    return {idx.data() + row_begin(r), idx.data() + row_end(r)};
  }
  std::span<const double> row_vals(index_t r) const noexcept {
    return {val.data() + row_begin(r), val.data() + row_end(r)};
  }

  /// Value at (r, c), or 0 if the entry is not stored. Binary search —
  /// requires sorted rows.
  double at(index_t r, index_t c) const noexcept {
    const auto cols_span = row_cols(r);
    const auto it = std::lower_bound(cols_span.begin(), cols_span.end(), c);
    if (it == cols_span.end() || *it != c) return 0.0;
    return val[static_cast<std::size_t>(row_begin(r) + (it - cols_span.begin()))];
  }

  /// Position of entry (r, c) in idx/val, or -1 if absent.
  index_t find(index_t r, index_t c) const noexcept {
    const auto cols_span = row_cols(r);
    const auto it = std::lower_bound(cols_span.begin(), cols_span.end(), c);
    if (it == cols_span.end() || *it != c) return -1;
    return row_begin(r) + static_cast<index_t>(it - cols_span.begin());
  }

  bool rows_sorted() const noexcept {
    for (index_t r = 0; r < rows; ++r) {
      const auto c = row_cols(r);
      if (!std::is_sorted(c.begin(), c.end())) return false;
    }
    return true;
  }

  /// Throw if the structure is inconsistent (sizes, ordering, bounds).
  void validate() const {
    if (static_cast<index_t>(ptr.size()) != rows + 1) {
      throw std::invalid_argument("Csr: ptr size mismatch");
    }
    if (ptr.front() != 0 || ptr.back() != nnz() ||
        idx.size() != val.size()) {
      throw std::invalid_argument("Csr: ptr/idx/val mismatch");
    }
    for (index_t r = 0; r < rows; ++r) {
      if (row_begin(r) > row_end(r)) {
        throw std::invalid_argument("Csr: decreasing ptr at row " +
                                    std::to_string(r));
      }
      index_t prev = -1;
      for (index_t k = row_begin(r); k < row_end(r); ++k) {
        const index_t c = idx[static_cast<std::size_t>(k)];
        if (c < 0 || c >= cols) {
          throw std::invalid_argument("Csr: column out of range");
        }
        if (c <= prev) {
          throw std::invalid_argument("Csr: unsorted/duplicate column in row " +
                                      std::to_string(r));
        }
        prev = c;
      }
    }
  }

  /// True iff every stored entry satisfies col <= row (col >= row).
  bool is_lower_triangular() const noexcept {
    for (index_t r = 0; r < rows; ++r) {
      for (index_t c : row_cols(r)) {
        if (c > r) return false;
      }
    }
    return true;
  }
  bool is_upper_triangular() const noexcept {
    for (index_t r = 0; r < rows; ++r) {
      for (index_t c : row_cols(r)) {
        if (c < r) return false;
      }
    }
    return true;
  }

  Csr transposed() const {
    Csr t(cols, rows);
    t.ptr.assign(static_cast<std::size_t>(cols) + 1, 0);
    for (index_t c : idx) ++t.ptr[static_cast<std::size_t>(c) + 1];
    for (index_t c = 0; c < cols; ++c) {
      t.ptr[static_cast<std::size_t>(c) + 1] += t.ptr[static_cast<std::size_t>(c)];
    }
    t.idx.resize(idx.size());
    t.val.resize(val.size());
    std::vector<index_t> cursor(t.ptr.begin(), t.ptr.end() - 1);
    for (index_t r = 0; r < rows; ++r) {
      for (index_t k = row_begin(r); k < row_end(r); ++k) {
        const index_t c = idx[static_cast<std::size_t>(k)];
        const index_t pos = cursor[static_cast<std::size_t>(c)]++;
        t.idx[static_cast<std::size_t>(pos)] = r;
        t.val[static_cast<std::size_t>(pos)] = val[static_cast<std::size_t>(k)];
      }
    }
    return t;
  }
};

/// Triplet (COO) builder: accumulate entries in any order, duplicates sum.
class CsrBuilder {
 public:
  CsrBuilder(index_t rows, index_t cols) : rows_(rows), cols_(cols) {}

  void add(index_t r, index_t c, double v) {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    entries_.push_back({r, c, v});
  }

  index_t pending() const noexcept {
    return static_cast<index_t>(entries_.size());
  }

  /// Sort, merge duplicates, and emit the CSR matrix.
  Csr build() {
    std::sort(entries_.begin(), entries_.end(), [](const E& a, const E& b) {
      return a.r != b.r ? a.r < b.r : a.c < b.c;
    });
    Csr m(rows_, cols_);
    m.ptr.assign(static_cast<std::size_t>(rows_) + 1, 0);
    std::size_t out = 0;
    for (std::size_t k = 0; k < entries_.size();) {
      std::size_t k2 = k;
      double sum = 0.0;
      while (k2 < entries_.size() && entries_[k2].r == entries_[k].r &&
             entries_[k2].c == entries_[k].c) {
        sum += entries_[k2].v;
        ++k2;
      }
      m.idx.push_back(entries_[k].c);
      m.val.push_back(sum);
      ++m.ptr[static_cast<std::size_t>(entries_[k].r) + 1];
      ++out;
      k = k2;
    }
    for (index_t r = 0; r < rows_; ++r) {
      m.ptr[static_cast<std::size_t>(r) + 1] += m.ptr[static_cast<std::size_t>(r)];
    }
    return m;
  }

 private:
  struct E {
    index_t r, c;
    double v;
  };
  index_t rows_, cols_;
  std::vector<E> entries_;
};

}  // namespace pdx::sparse
