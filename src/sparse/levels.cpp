#include "sparse/levels.hpp"

#include <algorithm>
#include <stdexcept>

#include "runtime/schedule.hpp"

namespace pdx::sparse {

namespace {

core::DepFn lower_deps_fn(const Csr& l) {
  return [&l](index_t i, const core::DepVisitor& emit) {
    for (index_t k = l.row_begin(i); k < l.row_end(i); ++k) {
      const index_t c = l.idx[static_cast<std::size_t>(k)];
      if (c < i) emit(c);
    }
  };
}

}  // namespace

std::vector<index_t> lower_solve_levels(const Csr& l) {
  if (l.rows != l.cols) {
    throw std::invalid_argument("lower_solve_levels: matrix not square");
  }
  return core::dependence_levels(l.rows, lower_deps_fn(l));
}

core::Reordering lower_solve_reordering(const Csr& l) {
  if (l.rows != l.cols) {
    throw std::invalid_argument("lower_solve_reordering: matrix not square");
  }
  return core::doconsider_order(l.rows, lower_deps_fn(l));
}

std::vector<index_t> upper_solve_levels(const Csr& u) {
  if (u.rows != u.cols) {
    throw std::invalid_argument("upper_solve_levels: matrix not square");
  }
  const index_t n = u.rows;
  std::vector<index_t> level(static_cast<std::size_t>(n), 0);
  for (index_t i = n - 1; i >= 0; --i) {
    index_t lvl = 0;
    for (index_t k = u.row_begin(i); k < u.row_end(i); ++k) {
      const index_t c = u.idx[static_cast<std::size_t>(k)];
      if (c > i) {
        lvl = std::max(lvl, level[static_cast<std::size_t>(c)] + 1);
      }
    }
    level[static_cast<std::size_t>(i)] = lvl;
  }
  return level;
}

core::Reordering upper_solve_reordering(const Csr& u) {
  core::Reordering r;
  r.level_of = upper_solve_levels(u);
  const index_t n = u.rows;

  index_t max_level = -1;
  for (index_t v : r.level_of) max_level = std::max(max_level, v);
  const index_t nlevels = max_level + 1;

  r.level_ptr.assign(static_cast<std::size_t>(nlevels) + 1, 0);
  for (index_t i = 0; i < n; ++i) {
    ++r.level_ptr[static_cast<std::size_t>(
                      r.level_of[static_cast<std::size_t>(i)]) + 1];
  }
  for (index_t l = 0; l < nlevels; ++l) {
    r.level_ptr[static_cast<std::size_t>(l) + 1] +=
        r.level_ptr[static_cast<std::size_t>(l)];
  }

  r.order.resize(static_cast<std::size_t>(n));
  r.position.resize(static_cast<std::size_t>(n));
  std::vector<index_t> cursor(r.level_ptr.begin(), r.level_ptr.end() - 1);
  // Fill in descending row order so ties within a level execute in the
  // backward solve's natural order.
  for (index_t i = n - 1; i >= 0; --i) {
    const index_t l = r.level_of[static_cast<std::size_t>(i)];
    const index_t k = cursor[static_cast<std::size_t>(l)]++;
    r.order[static_cast<std::size_t>(k)] = i;
    r.position[static_cast<std::size_t>(i)] = k;
  }
  return r;
}

core::TrisolveStructure measure_lower_solve(const Csr& l,
                                            const core::Reordering& r) {
  core::TrisolveStructure s;
  s.n = l.rows;
  s.nnz = l.nnz();
  s.levels = r.num_levels();
  s.avg_level_width = r.average_parallelism();
  s.nnz_per_row =
      l.rows > 0 ? static_cast<double>(l.nnz()) / static_cast<double>(l.rows)
                 : 0.0;
  for (index_t lvl = 0; lvl < r.num_levels(); ++lvl) {
    s.max_level_size = std::max(s.max_level_size, r.level_size(lvl));
  }
  for (index_t i = 0; i < l.rows; ++i) {
    for (index_t c : l.row_cols(i)) {
      if (c < i) s.max_distance = std::max(s.max_distance, i - c);
    }
  }
  return s;
}

core::TrisolveStructure measure_lower_solve(const Csr& l) {
  return measure_lower_solve(l, lower_solve_reordering(l));
}

DagProfile profile_lower_solve(const Csr& l) {
  const core::Reordering r = lower_solve_reordering(l);
  DagProfile p;
  p.n = l.rows;
  for (index_t i = 0; i < l.rows; ++i) {
    for (index_t c : l.row_cols(i)) {
      if (c < i) ++p.edges;
    }
  }
  p.critical_path = r.critical_path();
  p.avg_parallelism = r.average_parallelism();
  for (index_t lvl = 0; lvl < r.num_levels(); ++lvl) {
    p.max_level_size = std::max(p.max_level_size, r.level_size(lvl));
  }
  return p;
}

std::vector<std::vector<index_t>> level_schedule_sequences(
    const core::Reordering& ord, unsigned nthreads) {
  if (nthreads == 0) nthreads = 1;
  std::vector<std::vector<index_t>> seq(nthreads);
  const index_t n = ord.iterations();
  // Each thread's share of every level is within one row of n / (levels *
  // nthreads) rows; reserve the even split to avoid regrowth.
  for (auto& s : seq) {
    s.reserve(static_cast<std::size_t>(n / nthreads) + 1 +
              static_cast<std::size_t>(ord.num_levels()));
  }
  for (index_t lvl = 0; lvl < ord.num_levels(); ++lvl) {
    const index_t lo = ord.level_ptr[static_cast<std::size_t>(lvl)];
    const index_t hi = ord.level_ptr[static_cast<std::size_t>(lvl) + 1];
    for (unsigned t = 0; t < nthreads; ++t) {
      const rt::IterRange r = rt::static_block_range(hi - lo, t, nthreads);
      for (index_t k = lo + r.begin; k < lo + r.end; ++k) {
        seq[t].push_back(ord.order[static_cast<std::size_t>(k)]);
      }
    }
  }
  return seq;
}

}  // namespace pdx::sparse
