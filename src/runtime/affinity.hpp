// affinity.hpp — optional CPU pinning helpers.
//
// The original experiments ran on a 16-processor Encore Multimax where the
// FORTRAN runtime bound workers to processors. On Linux we can reproduce
// that with pthread affinity; on other platforms these calls degrade to
// no-ops and report failure.
#pragma once

namespace pdx::rt {

/// Pin the calling thread to logical CPU `cpu`. Returns true on success.
bool pin_this_thread(unsigned cpu) noexcept;

/// Number of logical CPUs the current thread may run on (affinity mask
/// popcount), or hardware_concurrency if the mask is unavailable.
unsigned allowed_cpus() noexcept;

}  // namespace pdx::rt
