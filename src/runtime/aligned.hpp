// aligned.hpp — cache-line aware storage helpers.
//
// Shared-memory doacross synchronization lives or dies by false sharing:
// per-thread counters and spin flags must not share destructively
// interfered lines. These helpers provide (a) a padded wrapper that gives
// a value its own cache line and (b) an aligned heap allocator usable with
// std::vector.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <utility>

#include "runtime/types.hpp"

namespace pdx::rt {

/// A T padded out to (at least) one cache line. Use for per-thread slots in
/// shared arrays, e.g. `std::vector<Padded<std::atomic<long>>>`.
template <class T>
struct alignas(kCacheLineBytes) Padded {
  T value{};

  Padded() = default;
  explicit Padded(T v) : value(std::move(v)) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

static_assert(sizeof(Padded<char>) >= kCacheLineBytes);
static_assert(alignof(Padded<char>) == kCacheLineBytes);

/// Minimal C++17-style allocator returning cache-line aligned memory.
/// Suitable for the big value arrays (y, ynew) so SIMD loads in the
/// executor bodies never straddle lines at the base.
template <class T>
class CacheAlignedAllocator {
 public:
  using value_type = T;

  CacheAlignedAllocator() noexcept = default;
  template <class U>
  CacheAlignedAllocator(const CacheAlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t{kCacheLineBytes});
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kCacheLineBytes});
  }

  template <class U>
  bool operator==(const CacheAlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <class U>
  bool operator!=(const CacheAlignedAllocator<U>&) const noexcept {
    return false;
  }
};

/// Cache-line aligned raw byte buffer whose pages are NOT touched at
/// allocation: `operator new` reserves address space but (for buffers
/// beyond the allocator's recycling pools) does not fault the pages in,
/// so the first *write* decides NUMA page placement. This is what lets
/// a build-time packing pass first-touch each thread's slab from the
/// thread that will execute it — a std::vector resize would zero-fill
/// (and place) every page on the calling thread instead.
class FirstTouchBuffer {
 public:
  FirstTouchBuffer() = default;
  explicit FirstTouchBuffer(std::size_t bytes) : bytes_(bytes) {
    if (bytes_ > 0) {
      p_.reset(static_cast<std::byte*>(::operator new(
          bytes_, std::align_val_t{kCacheLineBytes})));
    }
  }

  FirstTouchBuffer(FirstTouchBuffer&&) noexcept = default;
  FirstTouchBuffer& operator=(FirstTouchBuffer&&) noexcept = default;

  std::byte* data() noexcept { return p_.get(); }
  const std::byte* data() const noexcept { return p_.get(); }
  std::size_t size() const noexcept { return bytes_; }

 private:
  struct Deleter {
    void operator()(std::byte* p) const noexcept {
      ::operator delete(p, std::align_val_t{kCacheLineBytes});
    }
  };
  std::unique_ptr<std::byte, Deleter> p_;
  std::size_t bytes_ = 0;
};

}  // namespace pdx::rt
