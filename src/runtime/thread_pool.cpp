#include "runtime/thread_pool.hpp"

#include <cassert>

namespace pdx::rt {

ThreadPool::ThreadPool(unsigned width)
    : width_(width == 0 ? std::max(1u, std::thread::hardware_concurrency())
                        : width) {
  workers_.reserve(width_ > 0 ? width_ - 1 : 0);
  for (unsigned tid = 1; tid < width_; ++tid) {
    workers_.emplace_back([this, tid] { worker_main(tid); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
    ++job_epoch_;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::record_exception() noexcept {
  std::lock_guard<std::mutex> lk(exc_mu_);
  if (!first_exception_) first_exception_ = std::current_exception();
}

void ThreadPool::worker_main(unsigned tid) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const RegionFn* job = nullptr;
    unsigned job_width = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] { return stopping_ || job_epoch_ != seen_epoch; });
      if (stopping_) return;
      seen_epoch = job_epoch_;
      job = job_;
      job_width = job_width_;
    }
    if (tid < job_width) {
      try {
        (*job)(tid, job_width);
      } catch (...) {
        record_exception();
      }
      bool last;
      {
        std::lock_guard<std::mutex> lk(mu_);
        last = (--outstanding_ == 0);
      }
      if (last) cv_done_.notify_one();
    }
  }
}

void ThreadPool::parallel_region(unsigned nthreads, const RegionFn& fn) {
  nthreads = clamp_threads(nthreads);
  dispatches_.fetch_add(1, std::memory_order_relaxed);
  if (nthreads <= 1) {
    fn(0, 1);
    return;
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    assert(outstanding_ == 0 && "parallel_region is not reentrant");
    job_ = &fn;
    job_width_ = nthreads;
    outstanding_ = nthreads - 1;  // workers 1..nthreads-1
    ++job_epoch_;
  }
  cv_start_.notify_all();

  // The calling thread is member 0.
  try {
    fn(0, nthreads);
  } catch (...) {
    record_exception();
  }

  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return outstanding_ == 0; });
    job_ = nullptr;
  }

  std::exception_ptr eptr;
  {
    std::lock_guard<std::mutex> lk(exc_mu_);
    eptr = first_exception_;
    first_exception_ = nullptr;
  }
  if (eptr) std::rethrow_exception(eptr);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace pdx::rt
