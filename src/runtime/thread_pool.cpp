#include "runtime/thread_pool.hpp"

#include <cassert>

namespace pdx::rt {

ThreadPool::ThreadPool(unsigned width)
    : width_(width == 0 ? std::max(1u, std::thread::hardware_concurrency())
                        : width),
      sh_(std::make_shared<Shared>()) {
  workers_.reserve(width_ > 0 ? width_ - 1 : 0);
  for (unsigned tid = 1; tid < width_; ++tid) {
    workers_.emplace_back([sh = sh_, tid] { worker_main(sh, tid); });
  }
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) return;  // shutdown() already joined or abandoned
  {
    std::lock_guard<std::mutex> lk(sh_->mu);
    sh_->stopping = true;
    ++sh_->job_epoch;
  }
  sh_->cv_start.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_main(std::shared_ptr<Shared> sh, unsigned tid) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const RegionFn* job = nullptr;
    unsigned job_width = 0;
    {
      std::unique_lock<std::mutex> lk(sh->mu);
      sh->cv_start.wait(lk,
                        [&] { return sh->stopping || sh->job_epoch != seen_epoch; });
      if (sh->stopping) break;
      seen_epoch = sh->job_epoch;
      job = sh->job;
      job_width = sh->job_width;
    }
    if (tid < job_width) {
      try {
        (*job)(tid, job_width);
      } catch (...) {
        sh->record_exception();
      }
      bool last = false;
      {
        std::lock_guard<std::mutex> lk(sh->mu);
        // An abandoned shutdown already forced outstanding to 0 to
        // release the region caller; a worker resuming afterwards must
        // not underflow the counter.
        if (sh->outstanding > 0) last = (--sh->outstanding == 0);
      }
      if (last) sh->cv_done.notify_one();
    }
  }
  {
    std::lock_guard<std::mutex> lk(sh->mu);
    ++sh->exited;
  }
  sh->cv_exit.notify_all();
}

void ThreadPool::parallel_region(unsigned nthreads, const RegionFn& fn) {
  nthreads = clamp_threads(nthreads);
  dispatches_.fetch_add(1, std::memory_order_relaxed);
  if (nthreads <= 1) {
    fn(0, 1);
    return;
  }

  {
    std::lock_guard<std::mutex> lk(sh_->mu);
    if (sh_->stopping) {
      throw std::logic_error(
          "ThreadPool::parallel_region: pool is shut down");
    }
    assert(sh_->outstanding == 0 && "parallel_region is not reentrant");
    sh_->job = &fn;
    sh_->job_width = nthreads;
    sh_->outstanding = nthreads - 1;  // workers 1..nthreads-1
    ++sh_->job_epoch;
  }
  sh_->cv_start.notify_all();

  // The calling thread is member 0.
  try {
    fn(0, nthreads);
  } catch (...) {
    sh_->record_exception();
  }

  bool abandoned = false;
  unsigned abandoned_stuck = 0, abandoned_total = 0;
  {
    std::unique_lock<std::mutex> lk(sh_->mu);
    sh_->cv_done.wait(lk, [&] { return sh_->outstanding == 0; });
    sh_->job = nullptr;
    abandoned = sh_->abandoned;
    abandoned_stuck = sh_->abandoned_stuck;
    abandoned_total = sh_->abandoned_total;
  }

  std::exception_ptr eptr;
  {
    std::lock_guard<std::mutex> lk(sh_->exc_mu);
    eptr = sh_->first_exception;
    sh_->first_exception = nullptr;
  }
  if (abandoned) {
    // shutdown(timeout) released this join by force: some member never
    // finished, so the region's outputs are unreliable and a detached
    // worker may still be executing the body. This outranks any recorded
    // member exception.
    throw PoolShutdownError(abandoned_stuck, abandoned_total);
  }
  if (eptr) std::rethrow_exception(eptr);
}

void ThreadPool::shutdown(std::chrono::milliseconds timeout) {
  if (workers_.empty()) return;  // width 1, already joined, or abandoned
  const unsigned total = static_cast<unsigned>(workers_.size());
  bool all_exited;
  {
    std::unique_lock<std::mutex> lk(sh_->mu);
    sh_->stopping = true;
    ++sh_->job_epoch;
    sh_->cv_start.notify_all();
    all_exited = sh_->cv_exit.wait_for(
        lk, timeout, [&] { return sh_->exited == total; });
  }
  if (all_exited) {
    for (auto& t : workers_) t.join();
    workers_.clear();
    return;
  }
  // Workers are wedged inside a region. Joining would block exactly like
  // the destructor we exist to improve on; instead abandon every thread.
  // Each holds its own shared_ptr to the pool state, so a worker that
  // eventually resumes finds live synchronization objects, observes
  // `stopping`, and exits without touching this (possibly destroyed)
  // ThreadPool.
  unsigned stuck;
  {
    std::lock_guard<std::mutex> lk(sh_->mu);
    stuck = total - sh_->exited;
    sh_->abandoned = true;
    sh_->abandoned_stuck = stuck;
    sh_->abandoned_total = total;
    // A region caller may be blocked in parallel_region's join waiting
    // on the very workers we just gave up on — force the count to zero
    // and wake it so IT can tear down too (it throws PoolShutdownError
    // after observing `abandoned`).
    sh_->outstanding = 0;
  }
  sh_->cv_done.notify_all();
  for (auto& t : workers_) t.detach();
  workers_.clear();
  abandoned_ = true;
  throw PoolShutdownError(stuck, total);
}

bool ThreadPool::is_shutdown() const noexcept {
  std::lock_guard<std::mutex> lk(sh_->mu);
  return sh_->stopping;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace pdx::rt
