// thread_pool.hpp — persistent worker pool with fork/join parallel regions.
//
// This is the stand-in for the Encore Multimax "parallel do" runtime the
// paper ran on: a fixed team of OS threads that repeatedly executes
// SPMD-style regions. The calling thread participates as member 0, so a
// pool of width 1 runs everything inline with zero threads.
//
// The doacross executor needs all `nthreads` members of a region to be
// genuinely concurrent (they busy-wait on each other), which a task-queue
// style pool does not guarantee; this fork/join design does.
//
// Shutdown: the destructor joins the workers, which blocks forever if a
// worker is wedged inside a region (a fault the containment layer did not
// reach — e.g. an uninstrumented infinite loop). shutdown(timeout) is the
// loud alternative for services: it waits a bounded time for every worker
// to exit, then detaches the stragglers and throws PoolShutdownError
// naming the stuck count instead of hanging the process teardown — and it
// releases a thread blocked in parallel_region's join on those workers,
// which rethrows PoolShutdownError there. The pool's mutable state lives
// in a shared_ptr shared with every worker, so abandoning a stuck worker
// never leaves it touching freed POOL memory; region-body state is the
// caller's to park (see PoolShutdownError).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/schedule.hpp"
#include "runtime/types.hpp"

namespace pdx::rt {

/// shutdown(timeout) expired with workers still inside a parallel region.
/// The pool has abandoned them (they keep the shared pool state alive and
/// exit harmlessly if they ever resume); the process can tear down without
/// blocking, but the stuck threads' resources are leaked until then.
///
/// Thrown from two places: shutdown() itself, and — so the teardown is
/// actually bounded — from a parallel_region() call that was blocked in
/// its join waiting on the abandoned workers. A caller unblocked this way
/// must treat the region's outputs as garbage AND must not free state the
/// region body can reach (matrix arrays, plan buffers, output vectors): an
/// abandoned worker that eventually resumes may still be touching it. Park
/// such state immortally or exit the process; shutdown(timeout) is a
/// last-resort valve for loud teardown, not a recovery mechanism.
class PoolShutdownError : public std::runtime_error {
 public:
  PoolShutdownError(unsigned stuck, unsigned total)
      : std::runtime_error("ThreadPool::shutdown: " + std::to_string(stuck) +
                           " of " + std::to_string(total) +
                           " workers still inside a parallel region past the "
                           "timeout — abandoned, not joined"),
        stuck_(stuck) {}

  unsigned stuck_workers() const noexcept { return stuck_; }

 private:
  unsigned stuck_;
};

class ThreadPool {
 public:
  /// Function run by every member of a parallel region.
  using RegionFn = std::function<void(unsigned tid, unsigned nthreads)>;

  /// Create a pool of logical width `width` (0 → hardware_concurrency).
  /// Spawns `width - 1` worker threads; the caller is always member 0.
  explicit ThreadPool(unsigned width = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Logical width (maximum region size).
  unsigned width() const noexcept { return width_; }

  /// Run `fn(tid, nthreads)` on `nthreads` members (clamped to width()).
  /// Blocks until every member finishes. The first exception thrown by any
  /// member is rethrown here after all members have completed. Throws
  /// std::logic_error after shutdown().
  void parallel_region(unsigned nthreads, const RegionFn& fn);

  /// Convenience: run `f(i)` for i in [0, n) across `nthreads` members
  /// under schedule `s`.
  template <class F>
  void parallel_for(index_t n, unsigned nthreads, F&& f,
                    const Schedule& s = {}) {
    if (n <= 0) return;
    nthreads = clamp_threads(nthreads);
    if (nthreads <= 1 || n == 1) {
      for (index_t i = 0; i < n; ++i) f(i);
      return;
    }
    std::atomic<index_t> cursor{0};
    parallel_region(nthreads, [&](unsigned tid, unsigned nth) {
      schedule_run(s, n, tid, nth, &cursor, f);
    });
  }

  /// Explicit bounded-time shutdown. Stops accepting regions, wakes every
  /// idle worker, and waits up to `timeout` for all workers to exit.
  /// Returns normally once every worker has been joined (idempotent —
  /// later calls and the destructor become no-ops). If the timeout
  /// expires with workers still executing a region, every worker thread
  /// is detached (safe: workers own a reference to the shared pool
  /// state), the pool is marked dead, and PoolShutdownError is thrown so
  /// the caller hears about the wedge instead of the destructor silently
  /// blocking forever. A thread blocked in parallel_region's join on the
  /// abandoned workers is released too: its region's outstanding count is
  /// forced to zero and that parallel_region call throws PoolShutdownError
  /// (see the class comment for what the unblocked caller may touch).
  void shutdown(std::chrono::milliseconds timeout);

  /// True once shutdown() ran (successfully or not): the pool no longer
  /// dispatches regions.
  bool is_shutdown() const noexcept;

  /// Process-wide default pool, created on first use with hardware width.
  static ThreadPool& global();

  /// Number of parallel_region dispatches so far (width-1 inline runs
  /// included). A fork/join is the unit of pool overhead, so fused
  /// executors assert on deltas of this counter: one preconditioner
  /// application through a TrisolvePlan must cost exactly one dispatch.
  std::uint64_t dispatch_count() const noexcept {
    return dispatches_.load(std::memory_order_relaxed);
  }

  unsigned clamp_threads(unsigned nthreads) const noexcept {
    if (nthreads == 0 || nthreads > width_) return width_;
    return nthreads;
  }

 private:
  /// State shared between the pool object and its workers. Held by
  /// shared_ptr from both sides so a detached (abandoned) worker that
  /// eventually resumes finds its synchronization objects alive even if
  /// the ThreadPool itself was destroyed.
  struct Shared {
    std::mutex mu;
    std::condition_variable cv_start;
    std::condition_variable cv_done;
    std::condition_variable cv_exit;
    const RegionFn* job = nullptr;
    unsigned job_width = 0;
    std::uint64_t job_epoch = 0;  // bumped per dispatched region
    unsigned outstanding = 0;     // workers still inside current region
    bool stopping = false;
    unsigned exited = 0;          // workers whose loop has returned

    // shutdown() timed out and detached the workers. `outstanding` was
    // forced to 0 to release a region caller blocked in its join; the
    // caller observes this flag and throws PoolShutdownError instead of
    // trusting the (incomplete) region.
    bool abandoned = false;
    unsigned abandoned_stuck = 0;
    unsigned abandoned_total = 0;

    std::mutex exc_mu;
    std::exception_ptr first_exception;

    void record_exception() noexcept {
      std::lock_guard<std::mutex> lk(exc_mu);
      if (!first_exception) first_exception = std::current_exception();
    }
  };

  static void worker_main(std::shared_ptr<Shared> sh, unsigned tid);

  unsigned width_;
  std::shared_ptr<Shared> sh_;
  std::vector<std::thread> workers_;  // members 1 .. width_-1
  bool abandoned_ = false;            // shutdown timed out; threads detached

  std::atomic<std::uint64_t> dispatches_{0};
};

/// Snapshot of a pool's dispatch counter for asserting fork/join budgets.
/// Batched executors promise "one dispatch per batch" — tests, benches and
/// drivers verify the promise by reading `delta()` around the region(s)
/// under test instead of hand-subtracting raw dispatch_count() values.
class DispatchProbe {
 public:
  explicit DispatchProbe(const ThreadPool& pool) noexcept
      : pool_(&pool), start_(pool.dispatch_count()) {}

  /// Dispatches consumed since construction (or the last rebase()).
  std::uint64_t delta() const noexcept {
    return pool_->dispatch_count() - start_;
  }

  /// Restart the count from the pool's current value.
  void rebase() noexcept { start_ = pool_->dispatch_count(); }

 private:
  const ThreadPool* pool_;
  std::uint64_t start_;
};

}  // namespace pdx::rt
