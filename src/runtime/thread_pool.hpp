// thread_pool.hpp — persistent worker pool with fork/join parallel regions.
//
// This is the stand-in for the Encore Multimax "parallel do" runtime the
// paper ran on: a fixed team of OS threads that repeatedly executes
// SPMD-style regions. The calling thread participates as member 0, so a
// pool of width 1 runs everything inline with zero threads.
//
// The doacross executor needs all `nthreads` members of a region to be
// genuinely concurrent (they busy-wait on each other), which a task-queue
// style pool does not guarantee; this fork/join design does.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/schedule.hpp"
#include "runtime/types.hpp"

namespace pdx::rt {

class ThreadPool {
 public:
  /// Function run by every member of a parallel region.
  using RegionFn = std::function<void(unsigned tid, unsigned nthreads)>;

  /// Create a pool of logical width `width` (0 → hardware_concurrency).
  /// Spawns `width - 1` worker threads; the caller is always member 0.
  explicit ThreadPool(unsigned width = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Logical width (maximum region size).
  unsigned width() const noexcept { return width_; }

  /// Run `fn(tid, nthreads)` on `nthreads` members (clamped to width()).
  /// Blocks until every member finishes. The first exception thrown by any
  /// member is rethrown here after all members have completed.
  void parallel_region(unsigned nthreads, const RegionFn& fn);

  /// Convenience: run `f(i)` for i in [0, n) across `nthreads` members
  /// under schedule `s`.
  template <class F>
  void parallel_for(index_t n, unsigned nthreads, F&& f,
                    const Schedule& s = {}) {
    if (n <= 0) return;
    nthreads = clamp_threads(nthreads);
    if (nthreads <= 1 || n == 1) {
      for (index_t i = 0; i < n; ++i) f(i);
      return;
    }
    std::atomic<index_t> cursor{0};
    parallel_region(nthreads, [&](unsigned tid, unsigned nth) {
      schedule_run(s, n, tid, nth, &cursor, f);
    });
  }

  /// Process-wide default pool, created on first use with hardware width.
  static ThreadPool& global();

  /// Number of parallel_region dispatches so far (width-1 inline runs
  /// included). A fork/join is the unit of pool overhead, so fused
  /// executors assert on deltas of this counter: one preconditioner
  /// application through a TrisolvePlan must cost exactly one dispatch.
  std::uint64_t dispatch_count() const noexcept {
    return dispatches_.load(std::memory_order_relaxed);
  }

  unsigned clamp_threads(unsigned nthreads) const noexcept {
    if (nthreads == 0 || nthreads > width_) return width_;
    return nthreads;
  }

 private:
  void worker_main(unsigned tid);
  void record_exception() noexcept;

  unsigned width_;
  std::vector<std::thread> workers_;  // members 1 .. width_-1

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const RegionFn* job_ = nullptr;
  unsigned job_width_ = 0;
  std::uint64_t job_epoch_ = 0;   // bumped per dispatched region
  unsigned outstanding_ = 0;      // workers still inside current region
  bool stopping_ = false;

  std::mutex exc_mu_;
  std::exception_ptr first_exception_;

  std::atomic<std::uint64_t> dispatches_{0};
};

/// Snapshot of a pool's dispatch counter for asserting fork/join budgets.
/// Batched executors promise "one dispatch per batch" — tests, benches and
/// drivers verify the promise by reading `delta()` around the region(s)
/// under test instead of hand-subtracting raw dispatch_count() values.
class DispatchProbe {
 public:
  explicit DispatchProbe(const ThreadPool& pool) noexcept
      : pool_(&pool), start_(pool.dispatch_count()) {}

  /// Dispatches consumed since construction (or the last rebase()).
  std::uint64_t delta() const noexcept {
    return pool_->dispatch_count() - start_;
  }

  /// Restart the count from the pool's current value.
  void rebase() noexcept { start_ = pool_->dispatch_count(); }

 private:
  const ThreadPool* pool_;
  std::uint64_t start_;
};

}  // namespace pdx::rt
