#include "runtime/affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace pdx::rt {

bool pin_this_thread(unsigned cpu) noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

unsigned allowed_cpus() noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (pthread_getaffinity_np(pthread_self(), sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) return static_cast<unsigned>(n);
  }
#endif
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

}  // namespace pdx::rt
