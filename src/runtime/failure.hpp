// failure.hpp — fault containment for busy-wait parallel execution.
//
// The doacross executors synchronize through busy waits on ready flags
// (paper Fig. 2 S1 / Fig. 5 S4) and barriers, which makes a fault in any
// worker a deadlock for its peers: a thread that throws never sets the
// flags others are spinning on. The containment protocol here keeps the
// paper's synchronization untouched on the healthy path and adds an
// out-of-band channel for the unhealthy one:
//
//   FailureLatch — a shared fault flag plus a first-exception slot. A
//       faulting worker records its exception and raises the latch; every
//       wait loop (flag spin, barrier spin, injected stall) polls the
//       latch at a coarse interval and, once raised, abandons its wait by
//       throwing WorkerAbort. Peers therefore drain and join instead of
//       spinning forever; the joiner rethrows the first recorded fault.
//       This is "virtual flag poisoning": rather than storing DONE into
//       flags the faulting worker will never legitimately set (which
//       would let consumers read unpublished values and race with a
//       stalled producer's late stores), waiters give up on the flags
//       themselves. The observable drain-and-join behavior is the same,
//       without data races.
//
//   WorkerAbort — control-flow exception thrown by a wait that observed
//       the latch. Deliberately NOT derived from std::exception: it must
//       never be reported as the fault itself, only unwound to the
//       region-level catch that discards it.
//
//   StallError — raised by a watched wait whose spin-round budget ran
//       out, carrying diagnostics (row, awaited offset, epoch, rounds,
//       site). Off by default (budget 0 = unbounded) so the bitwise and
//       perf gates never see it.
//
//   FaultInjector — test harness hooks (zero cost when disarmed) that
//       throw in a chosen worker/row, stall a producer, or corrupt a
//       pivot, so the containment protocol is provable under every
//       executor strategy.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "runtime/types.hpp"

namespace pdx::rt {

/// Control-flow marker thrown by latch-aware waits when a peer has already
/// faulted. Intentionally not a std::exception: region wrappers catch and
/// discard it, and nothing else should ever observe it.
struct WorkerAbort {};

/// A solve/factorize was attempted on a plan whose previous run faulted
/// inside the parallel region. Poisoned plans refuse to run again because
/// their flag tables, cursors, and barriers may be mid-episode.
class PlanPoisonedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by FaultInjector::on_row when a throw fault is armed.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A watched wait exceeded its spin-round budget: the producer (or a
/// barrier peer) is not making progress. Carries enough diagnostics to
/// name the stuck dependence. Layers above the executor can append their
/// own context (the active strategy, the serving matrix id) with
/// add_context(); what() always reports the full annotated message.
class StallError : public std::runtime_error {
 public:
  StallError(index_t row, index_t waiting_on, std::uint32_t epoch,
             std::uint64_t rounds, std::string site)
      : std::runtime_error(
            "stall watchdog: no progress after " + std::to_string(rounds) +
            " spin rounds (site " + site + ", row " + std::to_string(row) +
            ", waiting on " + std::to_string(waiting_on) + ", epoch " +
            std::to_string(epoch) + ")"),
        msg_(std::runtime_error::what()),
        row_(row),
        waiting_on_(waiting_on),
        epoch_(epoch),
        rounds_(rounds),
        site_(std::move(site)) {}

  /// Append caller context ("strategy doacross, matrix 3") to the
  /// diagnostic. The solve service annotates stalls it catches so the
  /// job-level error names which tenant's plan — and which executor —
  /// was stuck, not just the row offset inside it.
  void add_context(const std::string& context) {
    if (context.empty()) return;
    msg_ += " [";
    msg_ += context;
    msg_ += "]";
  }

  const char* what() const noexcept override { return msg_.c_str(); }

  index_t row() const noexcept { return row_; }
  index_t waiting_on() const noexcept { return waiting_on_; }
  std::uint32_t epoch() const noexcept { return epoch_; }
  std::uint64_t rounds() const noexcept { return rounds_; }
  const std::string& site() const noexcept { return site_; }

 private:
  std::string msg_;
  index_t row_;
  index_t waiting_on_;
  std::uint32_t epoch_;
  std::uint64_t rounds_;
  std::string site_;
};

/// Shared fault flag + first-exception slot. raise() is safe from any
/// number of workers concurrently; the first recorded exception wins.
/// raised() is a single acquire load, cheap enough for wait loops to poll.
class FailureLatch {
 public:
  FailureLatch() = default;
  FailureLatch(const FailureLatch&) = delete;
  FailureLatch& operator=(const FailureLatch&) = delete;

  bool raised() const noexcept {
    return raised_.load(std::memory_order_acquire);
  }

  void raise(std::exception_ptr e) noexcept {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_) first_ = std::move(e);
    }
    raised_.store(true, std::memory_order_release);
  }

  void reset() noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    first_ = nullptr;
    raised_.store(false, std::memory_order_release);
  }

  /// Rethrow the first recorded fault and clear the latch. Must only be
  /// called after the parallel region has joined (the pool join orders
  /// every raise() before this read).
  [[noreturn]] void rethrow_and_reset() {
    std::exception_ptr e;
    {
      std::lock_guard<std::mutex> lock(mu_);
      e = std::exchange(first_, nullptr);
    }
    raised_.store(false, std::memory_order_release);
    if (e) std::rethrow_exception(e);
    throw std::runtime_error("FailureLatch: raised with no recorded fault");
  }

 private:
  std::atomic<bool> raised_{false};
  std::mutex mu_;
  std::exception_ptr first_;
};

/// Parameters a latch-aware wait consults every 64 spin rounds: the shared
/// latch (abandon the wait once a peer faulted), a stall budget in spin
/// rounds (0 = unbounded), and a site label for StallError diagnostics.
struct WaitGuard {
  const FailureLatch* latch = nullptr;
  std::uint64_t budget = 0;
  const char* site = "";
};

/// Test-only fault source. All hooks are armed/consumed with atomics so a
/// single armed fault fires in exactly one worker; disarmed hooks cost one
/// pointer test at the call site plus one relaxed/acquire load here.
class FaultInjector {
 public:
  static constexpr int kAnyTid = -1;
  static constexpr index_t kAnyRow = -1;

  /// Arm a one-shot exception in the first worker that reaches `row`
  /// (restricted to `tid` unless kAnyTid).
  void arm_throw(int tid = kAnyTid, index_t row = kAnyRow,
                 std::string message = "injected worker fault") {
    message_ = std::move(message);
    tid_.store(tid, std::memory_order_relaxed);
    row_.store(row, std::memory_order_relaxed);
    released_.store(false, std::memory_order_relaxed);
    mode_.store(Mode::kThrow, std::memory_order_release);
  }

  /// Arm a one-shot producer stall at `row`: the matching worker blocks
  /// before computing the row until release_stalls(), the shared latch is
  /// raised, or `max_stall_ms` elapses (safety valve — the worker then
  /// resumes normally so a missed expectation cannot wedge a test run).
  void arm_stall(int tid = kAnyTid, index_t row = kAnyRow,
                 int max_stall_ms = 10000) {
    tid_.store(tid, std::memory_order_relaxed);
    row_.store(row, std::memory_order_relaxed);
    max_stall_ms_.store(max_stall_ms, std::memory_order_relaxed);
    released_.store(false, std::memory_order_relaxed);
    mode_.store(Mode::kStall, std::memory_order_release);
  }

  /// Arm a one-shot pivot corruption: filter_pivot(row) returns 0.0 once.
  void arm_pivot_corruption(index_t row) {
    pivot_row_.store(row, std::memory_order_relaxed);
    pivot_armed_.store(true, std::memory_order_release);
  }

  void disarm() noexcept {
    mode_.store(Mode::kNone, std::memory_order_release);
    pivot_armed_.store(false, std::memory_order_release);
    released_.store(true, std::memory_order_release);
  }

  /// Let a stalled producer resume (it aborts if the latch is raised,
  /// otherwise continues its row normally).
  void release_stalls() noexcept {
    released_.store(true, std::memory_order_release);
  }

  int faults_fired() const noexcept {
    return fired_.load(std::memory_order_acquire);
  }
  int stalls_fired() const noexcept {
    return stalls_.load(std::memory_order_acquire);
  }
  int pivots_corrupted() const noexcept {
    return pivots_.load(std::memory_order_acquire);
  }

  /// Executor hook, called before a worker computes `row`. Throws
  /// InjectedFault (armed throw) or blocks (armed stall); a stalled worker
  /// woken by the latch throws WorkerAbort so the region joins promptly.
  void on_row(unsigned tid, index_t row, const FailureLatch* latch) {
    const Mode m = mode_.load(std::memory_order_acquire);
    if (m == Mode::kNone) return;
    const int want_tid = tid_.load(std::memory_order_relaxed);
    if (want_tid != kAnyTid && static_cast<int>(tid) != want_tid) return;
    const index_t want_row = row_.load(std::memory_order_relaxed);
    if (want_row != kAnyRow && row != want_row) return;
    Mode expected = m;  // consume: exactly one worker fires
    if (!mode_.compare_exchange_strong(expected, Mode::kNone,
                                       std::memory_order_acq_rel)) {
      return;
    }
    if (m == Mode::kThrow) {
      fired_.fetch_add(1, std::memory_order_acq_rel);
      throw InjectedFault(message_.empty() ? "injected worker fault"
                                           : message_);
    }
    stalls_.fetch_add(1, std::memory_order_acq_rel);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(max_stall_ms_.load(std::memory_order_relaxed));
    while (!released_.load(std::memory_order_acquire)) {
      if (latch && latch->raised()) throw WorkerAbort{};
      if (std::chrono::steady_clock::now() >= deadline) return;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  /// Factorization hook: returns the (possibly corrupted) pivot value.
  double filter_pivot(index_t row, double pivot) noexcept {
    if (!pivot_armed_.load(std::memory_order_acquire)) return pivot;
    if (pivot_row_.load(std::memory_order_relaxed) != row) return pivot;
    bool expected = true;
    if (!pivot_armed_.compare_exchange_strong(expected, false,
                                              std::memory_order_acq_rel)) {
      return pivot;
    }
    pivots_.fetch_add(1, std::memory_order_acq_rel);
    return 0.0;
  }

 private:
  enum class Mode : std::uint8_t { kNone, kThrow, kStall };

  std::atomic<Mode> mode_{Mode::kNone};
  std::atomic<int> tid_{kAnyTid};
  std::atomic<index_t> row_{kAnyRow};
  std::atomic<index_t> pivot_row_{kAnyRow};
  std::atomic<bool> pivot_armed_{false};
  std::atomic<bool> released_{false};
  std::atomic<int> max_stall_ms_{10000};
  std::atomic<int> fired_{0};
  std::atomic<int> stalls_{0};
  std::atomic<int> pivots_{0};
  std::string message_;  // written while armed from one thread only
};

}  // namespace pdx::rt
