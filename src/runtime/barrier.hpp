// barrier.hpp — epoch-counting centralized barrier.
//
// The preprocessed doacross runs inspector / executor / postprocessor as
// three phases of one parallel region separated by barriers (paper Fig. 3).
// This is a classic central barrier: the last arriver resets the count and
// bumps the epoch; everyone else spins on the epoch. Epoch counting (rather
// than sense reversal) needs no per-thread state and is safe for arbitrary
// reuse, including back-to-back barriers.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "runtime/aligned.hpp"
#include "runtime/spin_wait.hpp"

namespace pdx::rt {

class Barrier {
 public:
  explicit Barrier(unsigned nthreads) : nthreads_(nthreads) {
    assert(nthreads >= 1);
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Block until all `nthreads` participants have arrived.
  void arrive_and_wait() noexcept {
    const std::uint32_t my_epoch = epoch_.value.load(std::memory_order_acquire);
    const unsigned prior = arrived_.value.fetch_add(1, std::memory_order_acq_rel);
    if (prior + 1 == nthreads_) {
      // Last arriver releases the others. The reset of `arrived_` must be
      // visible before the epoch bump, which the release store orders.
      arrived_.value.store(0, std::memory_order_relaxed);
      epoch_.value.fetch_add(1, std::memory_order_release);
    } else {
      SpinWait sw;
      while (epoch_.value.load(std::memory_order_acquire) == my_epoch) {
        sw.spin_once();
      }
    }
  }

  unsigned participants() const noexcept { return nthreads_; }

  /// Reconfigure for a new participant count. Only legal while the barrier
  /// is idle (no thread inside arrive_and_wait); the epoch counter is kept,
  /// so waiters from completed episodes are unaffected. Lets engines own
  /// one barrier for their lifetime instead of constructing one per run.
  void reset(unsigned nthreads) noexcept {
    assert(nthreads >= 1);
    assert(arrived_.value.load(std::memory_order_acquire) == 0 &&
           "Barrier::reset while in use");
    nthreads_ = nthreads;
  }

  /// Number of full barrier episodes completed so far.
  std::uint32_t epochs() const noexcept {
    return epoch_.value.load(std::memory_order_acquire);
  }

 private:
  Padded<std::atomic<unsigned>> arrived_{};    // value-initialized to 0
  Padded<std::atomic<std::uint32_t>> epoch_{};  // value-initialized to 0
  unsigned nthreads_;
};

}  // namespace pdx::rt
