// barrier.hpp — epoch-counting centralized barrier.
//
// The preprocessed doacross runs inspector / executor / postprocessor as
// three phases of one parallel region separated by barriers (paper Fig. 3).
// This is a classic central barrier: the last arriver resets the count and
// bumps the epoch; everyone else spins on the epoch. Epoch counting (rather
// than sense reversal) needs no per-thread state and is safe for arbitrary
// reuse, including back-to-back barriers.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "runtime/aligned.hpp"
#include "runtime/failure.hpp"
#include "runtime/spin_wait.hpp"

namespace pdx::rt {

class Barrier {
 public:
  explicit Barrier(unsigned nthreads) : nthreads_(nthreads) {
    assert(nthreads >= 1);
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Attach a failure latch (and optional spin-round stall budget) to the
  /// wait loop. A watched barrier stops being a deadlock point when a
  /// participant faults: waiters poll the latch every 64 rounds, throw
  /// WorkerAbort once it is raised (a thread that observes the latch
  /// *before* arriving also aborts, so it never strands the count), and
  /// throw StallError past a non-zero budget. After such a break the
  /// arrive count is stale — acceptable only because the owning plan is
  /// poisoned and never runs the barrier again. An unwatched barrier
  /// (default) never throws.
  void watch(const FailureLatch* latch, std::uint64_t stall_budget = 0)
      noexcept {
    latch_ = latch;
    budget_ = stall_budget;
  }

  /// Block until all `nthreads` participants have arrived.
  void arrive_and_wait() {
    if (latch_ && latch_->raised()) throw WorkerAbort{};
    const std::uint32_t my_epoch = epoch_.value.load(std::memory_order_acquire);
    const unsigned prior = arrived_.value.fetch_add(1, std::memory_order_acq_rel);
    if (prior + 1 == nthreads_) {
      // Last arriver releases the others. The reset of `arrived_` must be
      // visible before the epoch bump, which the release store orders.
      arrived_.value.store(0, std::memory_order_relaxed);
      epoch_.value.fetch_add(1, std::memory_order_release);
    } else {
      SpinWait sw;
      std::uint64_t rounds = 0;
      while (epoch_.value.load(std::memory_order_acquire) == my_epoch) {
        sw.spin_once();
        ++rounds;
        if (latch_ && (rounds & 63u) == 0) {
          if (latch_->raised()) throw WorkerAbort{};
          if (budget_ != 0 && rounds >= budget_) {
            throw StallError(-1, -1, my_epoch, rounds, "barrier");
          }
        }
      }
    }
  }

  unsigned participants() const noexcept { return nthreads_; }

  /// Reconfigure for a new participant count. Only legal while the barrier
  /// is idle (no thread inside arrive_and_wait); the epoch counter is kept,
  /// so waiters from completed episodes are unaffected. Lets engines own
  /// one barrier for their lifetime instead of constructing one per run.
  void reset(unsigned nthreads) noexcept {
    assert(nthreads >= 1);
    assert(arrived_.value.load(std::memory_order_acquire) == 0 &&
           "Barrier::reset while in use");
    nthreads_ = nthreads;
  }

  /// Number of full barrier episodes completed so far.
  std::uint32_t epochs() const noexcept {
    return epoch_.value.load(std::memory_order_acquire);
  }

 private:
  Padded<std::atomic<unsigned>> arrived_{};    // value-initialized to 0
  Padded<std::atomic<std::uint32_t>> epoch_{};  // value-initialized to 0
  unsigned nthreads_;
  const FailureLatch* latch_ = nullptr;
  std::uint64_t budget_ = 0;
};

}  // namespace pdx::rt
