// types.hpp — project-wide fundamental types.
//
// Part of the preprocessed-doacross library (Saltz & Mirchandaney, ICASE
// Interim Report 11, 1990). Every module uses `pdx::index_t` for loop
// iteration numbers and array offsets; it is signed so that dependence
// distances (i - j) and the paper's `check = iter(offset) - i` test are
// directly expressible.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pdx {

/// Iteration / offset index. Signed 64-bit: large index sets, and signed
/// arithmetic for dependence-distance tests.
using index_t = std::int64_t;

/// Size of a destructive-interference-free block on the target machines.
/// Used to pad per-thread mutable state so spin loops on one flag do not
/// invalidate neighbouring threads' lines.
inline constexpr std::size_t kCacheLineBytes = 64;

}  // namespace pdx
