// spin_wait.hpp — adaptive busy-wait primitive.
//
// The preprocessed doacross executor synchronizes through busy waits on
// ready flags (paper Fig. 2 statement S1 and Fig. 5 statement S4). A naive
// `while (!flag) {}` loop is hostile both to the memory system (it hammers
// the line) and to oversubscribed runs (the producer may be descheduled).
// SpinWait escalates politely: CPU pause instructions first, then
// `std::this_thread::yield`, then short sleeps, so progress is guaranteed
// even with more software threads than hardware contexts.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>

namespace pdx::rt {

/// One spin-wait episode. Construct fresh (or `reset()`) for each logical
/// wait; call `spin_once()` each time the awaited condition is still false.
///
/// Escalation is deliberately patient: doacross producers usually finish
/// within a few hundred nanoseconds, so the pause phase covers roughly a
/// microsecond, the yield phase tens of microseconds, and the sleep
/// backstop (needed only when software threads outnumber hardware
/// contexts) engages late — an early sleep would stall entire dependence
/// wavefronts behind one descheduled consumer.
class SpinWait {
 public:
  /// Number of pause-only rounds before the first yield. Doacross link
  /// latencies (producer finishing the tail of its iteration) run from
  /// nanoseconds to tens of microseconds; the pause phase must cover them
  /// without a yield, whose syscall latency would serialize dependence
  /// chains (measured: microseconds per crossing once yields begin).
  static constexpr std::uint32_t kPauseRounds = 1024;
  /// Number of yield rounds before the sleep backstop engages.
  static constexpr std::uint32_t kYieldRounds = 4096;

  void spin_once() noexcept {
    if (count_ < kPauseRounds) {
      // Exponentially growing burst of pause instructions: 1, 2, 4, ... up
      // to 64 per round. Keeps the loop short at first (low latency when
      // the producer is about to finish) and backs off under contention.
      std::uint32_t reps = 1u << (count_ < 6 ? count_ : 6);
      for (std::uint32_t r = 0; r < reps; ++r) cpu_pause();
    } else if (count_ < kPauseRounds + kYieldRounds ||
               (count_ & 63u) != 0) {
      std::this_thread::yield();
    } else {
      // Genuinely oversubscribed: sleep occasionally (every 64th round)
      // so the producer gets a full scheduling quantum.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    ++count_;
  }

  void reset() noexcept { count_ = 0; }

  /// Rounds spun so far in this episode (used by tests and stats).
  std::uint32_t rounds() const noexcept { return count_; }

  /// Architectural pause/relax hint; a plain compiler barrier elsewhere.
  static void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    asm volatile("" ::: "memory");
#endif
  }

 private:
  std::uint32_t count_ = 0;
};

/// Spin until `pred()` returns true. Returns the number of spin rounds
/// taken (0 means the predicate was already true).
template <class Pred>
inline std::uint64_t spin_until(Pred&& pred) {
  if (pred()) return 0;
  SpinWait sw;
  std::uint64_t rounds = 0;
  while (!pred()) {
    sw.spin_once();
    ++rounds;
  }
  return rounds;
}

/// Bounded-wait mode: spin until `pred()` holds or `max_rounds` rounds
/// have been burned. Returns the rounds taken on success, nullopt when the
/// budget ran out. This is the primitive under the stall watchdog — the
/// executors' flag waits use the guarded variant in core/ready_table.hpp,
/// which additionally polls the shared FailureLatch.
template <class Pred>
inline std::optional<std::uint64_t> spin_until_bounded(
    Pred&& pred, std::uint64_t max_rounds) {
  if (pred()) return 0;
  SpinWait sw;
  std::uint64_t rounds = 0;
  while (!pred()) {
    if (rounds >= max_rounds) return std::nullopt;
    sw.spin_once();
    ++rounds;
  }
  return rounds;
}

}  // namespace pdx::rt
