// schedule.hpp — iteration-to-processor assignment policies.
//
// A doacross loop must hand iterations to processors in an order that
// cannot deadlock: a true dependence always points from iteration `i` to
// some `j < i` (in executor order), so as long as (a) chunks are claimed in
// globally non-decreasing order and (b) each thread retires its own
// iterations in increasing order, the smallest unfinished iteration can
// never be blocked and the loop always makes progress. All three policies
// below satisfy (a) and (b); tests assert it.
//
//   StaticBlock  — thread t owns one contiguous block (paper-era default).
//   StaticCyclic — chunks dealt round-robin; spreads dependence chains.
//   Dynamic      — self-scheduling off a shared atomic cursor (the paper's
//                  "schedule iterations of a loop among processors").
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <string>

#include "runtime/types.hpp"

namespace pdx::rt {

enum class SchedKind : std::uint8_t { StaticBlock, StaticCyclic, Dynamic };

/// Loop scheduling policy descriptor. `chunk == 0` selects a per-policy
/// default (cyclic: 1; dynamic: ~8 chunks per thread).
struct Schedule {
  SchedKind kind = SchedKind::StaticBlock;
  index_t chunk = 0;

  static Schedule static_block() { return {SchedKind::StaticBlock, 0}; }
  static Schedule static_cyclic(index_t chunk = 1) {
    return {SchedKind::StaticCyclic, chunk};
  }
  static Schedule dynamic(index_t chunk = 0) {
    return {SchedKind::Dynamic, chunk};
  }
};

inline std::string to_string(const Schedule& s) {
  switch (s.kind) {
    case SchedKind::StaticBlock:
      return "static-block";
    case SchedKind::StaticCyclic:
      return "static-cyclic/" + std::to_string(s.chunk ? s.chunk : 1);
    case SchedKind::Dynamic:
      return "dynamic/" + std::to_string(s.chunk);
  }
  return "?";
}

/// The contiguous range [begin, end) owned by thread `tid` of `nthreads`
/// under a StaticBlock split of n iterations (remainder spread over the
/// first `n % nthreads` threads).
struct IterRange {
  index_t begin = 0;
  index_t end = 0;
  index_t size() const noexcept { return end - begin; }
};

inline IterRange static_block_range(index_t n, unsigned tid, unsigned nthreads) {
  assert(nthreads >= 1 && tid < nthreads);
  const index_t base = n / nthreads;
  const index_t extra = n % nthreads;
  const index_t begin =
      static_cast<index_t>(tid) * base + std::min<index_t>(tid, extra);
  const index_t len = base + (static_cast<index_t>(tid) < extra ? 1 : 0);
  return {begin, begin + len};
}

inline index_t default_dynamic_chunk(index_t n, unsigned nthreads) {
  const index_t denom = static_cast<index_t>(nthreads) * 8;
  return std::max<index_t>(1, n / std::max<index_t>(denom, 1));
}

/// Execute `f(i)` for every iteration assigned to (tid, nthreads) under
/// schedule `s`, in increasing order of i within this thread. `cursor` is
/// the shared claim counter for Dynamic scheduling (must be reset to 0
/// before the parallel region; ignored by the static policies).
template <class F>
inline void schedule_run(const Schedule& s, index_t n, unsigned tid,
                         unsigned nthreads, std::atomic<index_t>* cursor,
                         F&& f) {
  switch (s.kind) {
    case SchedKind::StaticBlock: {
      const IterRange r = static_block_range(n, tid, nthreads);
      for (index_t i = r.begin; i < r.end; ++i) f(i);
      return;
    }
    case SchedKind::StaticCyclic: {
      const index_t c = s.chunk > 0 ? s.chunk : 1;
      const index_t stride = c * static_cast<index_t>(nthreads);
      for (index_t s0 = static_cast<index_t>(tid) * c; s0 < n; s0 += stride) {
        const index_t hi = std::min(s0 + c, n);
        for (index_t i = s0; i < hi; ++i) f(i);
      }
      return;
    }
    case SchedKind::Dynamic: {
      assert(cursor != nullptr);
      const index_t c = s.chunk > 0 ? s.chunk : default_dynamic_chunk(n, nthreads);
      for (;;) {
        const index_t s0 = cursor->fetch_add(c, std::memory_order_relaxed);
        if (s0 >= n) return;
        const index_t hi = std::min(s0 + c, n);
        for (index_t i = s0; i < hi; ++i) f(i);
      }
    }
  }
}

}  // namespace pdx::rt
