// ablation_levelsched — busy-wait flags vs wavefront barriers (E7).
//
// Two classic executions of the same reordered triangular solve:
//   * doacross + doconsider: ready-flag busy waits, no barriers — rows of
//     the next wavefront start as soon as their own producers finish;
//   * level-scheduled: barrier after every wavefront — no flags, but the
//     slowest row of each wavefront gates all of the next.
//
// Expect the flag version to win when wavefronts are narrow or skewed
// (many levels, e.g. SPE2), and the two to converge for wide flat fronts.
#include <cstdio>
#include <iostream>
#include <vector>

#include "benchsupport/env.hpp"
#include "benchsupport/stats.hpp"
#include "benchsupport/table.hpp"
#include "benchsupport/timer.hpp"
#include "core/doconsider.hpp"
#include "gen/block_operator.hpp"
#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/levels.hpp"
#include "sparse/par_trisolve.hpp"
#include "sparse/trisolve.hpp"

namespace bench = pdx::bench;
namespace core = pdx::core;
namespace gen = pdx::gen;
namespace rt = pdx::rt;
namespace sp = pdx::sparse;
using pdx::index_t;

int main() {
  std::cout << bench::environment_banner("ablation_levelsched (design E7)")
            << "\n";
  const unsigned procs = bench::default_procs();
  const int reps = bench::default_reps();
  rt::ThreadPool pool(procs);

  struct Case {
    const char* name;
    sp::Csr matrix;
  };
  std::vector<Case> cases;
  cases.push_back({"SPE2", gen::matrix_spe2()});
  cases.push_back({"SPE5", gen::matrix_spe5()});
  cases.push_back({"5-PT", gen::matrix_5pt()});
  cases.push_back({"7-PT", gen::matrix_7pt()});
  cases.push_back({"9-PT", gen::matrix_9pt()});

  const int work = bench::quick_mode() ? 100 : 400;
  std::printf("(Multimax-emulated per-entry cost: work_reps=%d)\n", work);
  bench::Table table({"Problem", "levels", "avg width", "flags(us)",
                      "barriers(us)", "flags/barriers"});

  for (auto& c : cases) {
    const sp::Csr l = sp::ilu0(c.matrix).l;
    const core::Reordering r = sp::lower_solve_reordering(l);
    gen::SplitMix64 rng(5);
    std::vector<double> rhs(static_cast<std::size_t>(l.rows));
    for (auto& v : rhs) v = rng.next_double(-1.0, 1.0);
    std::vector<double> y(static_cast<std::size_t>(l.rows));

    core::DenseReadyTable ready(l.rows);
    sp::TrisolveOptions opts;
    opts.nthreads = procs;
    opts.order = r.order.data();
    opts.schedule = rt::Schedule::dynamic(1);
    opts.work_reps = work;
    const double t_flags =
        bench::summarize(bench::time_samples(reps, 1, [&] {
          sp::trisolve_doacross(pool, l, rhs, y, ready, opts);
        })).min;

    const double t_barriers =
        bench::summarize(bench::time_samples(reps, 1, [&] {
          sp::trisolve_levelsched(pool, l, rhs, y, r, procs, work);
        })).min;

    table.row()
        .cell(c.name)
        .cell(static_cast<long long>(r.num_levels()))
        .cell(r.average_parallelism(), 1)
        .cell(t_flags * 1e6, 1)
        .cell(t_barriers * 1e6, 1)
        .cell(t_flags / t_barriers, 2);
  }
  table.print();
  return 0;
}
