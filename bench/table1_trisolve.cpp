// table1_trisolve — reproduces Table 1: "Preprocessed Doacross Times for
// Sparse Triangular Matrices".
//
// For each appendix system (SPE2, SPE5, 5-PT, 7-PT, 9-PT) the ILU(0)
// lower factor L is solved three ways on min(16, cores) processors:
//
//   column 1 — preprocessed doacross, source iteration order;
//   column 2 — preprocessed doacross with doconsider-reordered iterations
//              (paper ref. [4]); same dependences, less waiting;
//   column 3 — optimized sequential Fig. 7 loop (T_seq).
//
// Two sections are printed:
//
//   * RAW (single right-hand side): the 1990 problems at modern speed.
//     A 13 MHz Multimax spent ~200 us of work per row; a modern core
//     spends ~10 ns, so synchronization dwarfs computation and parallel
//     efficiency collapses. This is itself a finding (see EXPERIMENTS.md).
//
//   * WORK-SCALED (nrhs right-hand sides solved simultaneously): the same
//     dependence DAG with the per-row work restored to the paper's
//     work/synchronization ratio — real multi-vector solves, not padding.
//     The paper's shape must hold here: doconsider-rearranged beats plain
//     doacross on every matrix (paper: eff 0.63-0.75 vs 0.32-0.46), both
//     beat 1/p scaling of the sequential loop.
//
// `--json <path>` writes every section's rows as a JSON artifact (CI
// publishes it as BENCH_table1.json, alongside the other benches').
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "benchsupport/env.hpp"
#include "benchsupport/stats.hpp"
#include "benchsupport/table.hpp"
#include "benchsupport/timer.hpp"
#include "core/analysis.hpp"
#include "core/doconsider.hpp"
#include "gen/block_operator.hpp"
#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/levels.hpp"
#include "sparse/par_trisolve.hpp"
#include "sparse/trisolve.hpp"

namespace bench = pdx::bench;
namespace core = pdx::core;
namespace gen = pdx::gen;
namespace rt = pdx::rt;
namespace sp = pdx::sparse;
using pdx::index_t;

namespace {

struct Case {
  const char* name;
  sp::Csr l;
  core::Reordering reorder;
};

struct JsonRow {
  std::string section;
  std::string problem;
  index_t n;
  index_t crit_path;
  double avg_par;
  double us_doacross;
  double us_rearranged;
  double us_sequential;
  double eff_dx;
  double eff_rearr;
  double rearr_speedup;
};

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  auto add = [&cases](const char* name, const sp::Csr& a) {
    sp::Csr l = sp::ilu0(a).l;
    core::Reordering r = sp::lower_solve_reordering(l);
    cases.push_back({name, std::move(l), std::move(r)});
  };
  add("SPE2", gen::matrix_spe2());
  add("SPE5", gen::matrix_spe5());
  add("5-PT", gen::matrix_5pt());
  add("7-PT", gen::matrix_7pt());
  add("9-PT", gen::matrix_9pt());
  return cases;
}

void run_section(rt::ThreadPool& pool, std::vector<Case>& cases,
                 index_t nrhs, int work_reps, unsigned procs, int reps,
                 const char* section, std::vector<JsonRow>& json_rows) {
  bench::Table table({"Problem", "n", "crit.path", "avg.par", "Doacross",
                      "Rearranged", "Sequential", "eff(dx)", "eff(rearr)",
                      "rearr speedup"});
  for (auto& c : cases) {
    const index_t n = c.l.rows;
    gen::SplitMix64 rng(7);
    std::vector<double> rhs(static_cast<std::size_t>(n * nrhs));
    for (auto& v : rhs) v = rng.next_double(-1.0, 1.0);
    std::vector<double> y(static_cast<std::size_t>(n * nrhs));

    const double t_seq = bench::summarize(bench::time_samples(reps, 1, [&] {
                           if (nrhs == 1) {
                             sp::trisolve_lower_seq(c.l, rhs, y, work_reps);
                           } else {
                             sp::trisolve_lower_seq_multi(c.l, rhs, y, nrhs);
                           }
                         })).min;

    core::DenseReadyTable ready(n);
    sp::TrisolveOptions dx;
    dx.nthreads = procs;
    dx.work_reps = work_reps;
    // Chunk 1 keeps the in-flight window at `procs` rows; larger chunks
    // pull rows many wavefronts ahead and stall threads on far-away
    // producers.
    dx.schedule = rt::Schedule::dynamic(1);
    auto run_par = [&](const sp::TrisolveOptions& o) {
      return bench::summarize(bench::time_samples(reps, 1, [&] {
               if (nrhs == 1) {
                 sp::trisolve_doacross(pool, c.l, rhs, y, ready, o);
               } else {
                 sp::trisolve_doacross_multi(pool, c.l, rhs, y, nrhs, ready,
                                             o);
               }
             })).min;
    };
    const double t_dx = run_par(dx);

    sp::TrisolveOptions dc = dx;
    dc.order = c.reorder.order.data();
    const double t_dc = run_par(dc);

    json_rows.push_back({section, c.name, n, c.reorder.critical_path(),
                         c.reorder.average_parallelism(), t_dx * 1e6,
                         t_dc * 1e6, t_seq * 1e6,
                         bench::parallel_efficiency(t_seq, t_dx, procs),
                         bench::parallel_efficiency(t_seq, t_dc, procs),
                         t_dx / t_dc});
    table.row()
        .cell(c.name)
        .cell(static_cast<long long>(n))
        .cell(static_cast<long long>(c.reorder.critical_path()))
        .cell(c.reorder.average_parallelism(), 1)
        .cell(t_dx * 1e6, 1)
        .cell(t_dc * 1e6, 1)
        .cell(t_seq * 1e6, 1)
        .cell(bench::parallel_efficiency(t_seq, t_dx, procs), 3)
        .cell(bench::parallel_efficiency(t_seq, t_dc, procs), 3)
        .cell(t_dx / t_dc, 2);
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::cout << bench::environment_banner("table1_trisolve (paper Table 1)")
            << "\n";
  const unsigned procs = bench::default_procs();
  const int reps = bench::default_reps();
  rt::ThreadPool pool(procs);

  std::vector<Case> cases = make_cases();
  std::vector<JsonRow> json_rows;

  std::printf("\n[RAW] single RHS, native per-entry cost — the 1990 "
              "problems at modern speed (times in us):\n");
  run_section(pool, cases, 1, /*work_reps=*/0, procs, reps, "raw", json_rows);

  const int work = bench::quick_mode() ? 100 : 400;
  std::printf("\n[MULTIMAX-EMULATED] single RHS, work_reps=%d — per-entry "
              "cost restored to the paper's work/synchronization ratio "
              "(times in us). This is the headline Table 1 comparison:\n",
              work);
  run_section(pool, cases, 1, work, procs, reps, "multimax-emulated",
              json_rows);

  const index_t nrhs = bench::quick_mode() ? 16 : 64;
  std::printf("\n[MULTI-RHS] %lld simultaneous right-hand sides — a real "
              "workload with the same dependence DAG and a %lldx work/sync "
              "ratio (times in us):\n",
              static_cast<long long>(nrhs), static_cast<long long>(nrhs));
  run_section(pool, cases, nrhs, /*work_reps=*/0, procs, reps, "multi-rhs",
              json_rows);

  // DAG-limit analysis: what a zero-overhead runtime that executes whole
  // rows atomically could reach with each iteration order (greedy list
  // scheduling, per-row cost = number of stored entries). The rearranged
  // column is a genuine upper bound for the doconsider runs; the source-
  // order column may be *exceeded* by the real executor, which overlaps
  // the early part of a row with the wait for its last dependence.
  std::printf("\n[ANALYSIS] atomic-iteration list-schedule bounds "
              "(row cost = nnz):\n");
  bench::Table an({"Problem", "pred eff (source)", "pred eff (rearranged)",
                   "mean dep distance"});
  for (auto& c : cases) {
    const index_t n = c.l.rows;
    core::DepGraph g;
    g.ptr.assign(static_cast<std::size_t>(n) + 1, 0);
    for (index_t i = 0; i < n; ++i) {
      index_t deps = 0;
      for (index_t col : c.l.row_cols(i)) {
        if (col < i) ++deps;
      }
      g.ptr[static_cast<std::size_t>(i) + 1] =
          g.ptr[static_cast<std::size_t>(i)] + deps;
    }
    g.adj.resize(static_cast<std::size_t>(g.ptr.back()));
    {
      std::vector<index_t> cur(g.ptr.begin(), g.ptr.end() - 1);
      for (index_t i = 0; i < n; ++i) {
        for (index_t col : c.l.row_cols(i)) {
          if (col < i) {
            g.adj[static_cast<std::size_t>(
                cur[static_cast<std::size_t>(i)]++)] = col;
          }
        }
      }
    }
    std::vector<double> cost(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      cost[static_cast<std::size_t>(i)] = static_cast<double>(c.l.row_nnz(i));
    }
    std::vector<index_t> src_order(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) src_order[static_cast<std::size_t>(i)] = i;

    const auto est_src =
        core::simulate_list_schedule(g, src_order, procs, cost);
    const auto est_ord =
        core::simulate_list_schedule(g, c.reorder.order, procs, cost);
    const auto hist = core::dependence_distance_histogram(g);
    an.row()
        .cell(c.name)
        .cell(est_src.predicted_efficiency(procs), 3)
        .cell(est_ord.predicted_efficiency(procs), 3)
        .cell(hist.mean_distance, 1);
  }
  an.print();

  std::printf("\nPaper reference points (16-proc Multimax): doacross eff "
              "0.32-0.46, rearranged 0.63-0.75; rearranged faster on every "
              "matrix.\n");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"table1_trisolve\",\n"
        << "  \"procs\": " << procs << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      const JsonRow& r = json_rows[i];
      out << "    {\"section\": \"" << r.section << "\", \"problem\": \""
          << r.problem << "\", \"n\": " << r.n
          << ", \"critical_path\": " << r.crit_path
          << ", \"avg_parallelism\": " << r.avg_par
          << ", \"us_doacross\": " << r.us_doacross
          << ", \"us_rearranged\": " << r.us_rearranged
          << ", \"us_sequential\": " << r.us_sequential
          << ", \"eff_doacross\": " << r.eff_dx
          << ", \"eff_rearranged\": " << r.eff_rearr
          << ", \"rearranged_speedup\": " << r.rearr_speedup << "}"
          << (i + 1 < json_rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
