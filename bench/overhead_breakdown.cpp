// overhead_breakdown — quantifies §3.1's overhead decomposition (E3).
//
// "The efficiencies we see for those [odd] L values reflect the overheads
//  of (1) performing the runtime preprocessing and postprocessing, and
//  (2) performing execution time dependency checks."
//
// This harness separates the two: phase timers isolate inspector and
// postprocessor cost, and a comparison of the doacross executor (with
// three-way checks) against a doall executor of the same body (no checks)
// isolates the dependency-check overhead. Run on an odd L so the physical
// work is identical.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "benchsupport/env.hpp"
#include "benchsupport/stats.hpp"
#include "benchsupport/table.hpp"
#include "benchsupport/timer.hpp"
#include "core/doacross.hpp"
#include "gen/testloop.hpp"
#include "runtime/barrier.hpp"
#include "runtime/thread_pool.hpp"

namespace bench = pdx::bench;
namespace core = pdx::core;
namespace gen = pdx::gen;
namespace rt = pdx::rt;
using pdx::index_t;

int main() {
  std::cout << bench::environment_banner("overhead_breakdown (paper §3.1)")
            << "\n";
  const unsigned procs = bench::default_procs();
  const int reps = bench::default_reps();
  const index_t n = bench::quick_mode() ? 2000 : 10000;
  rt::ThreadPool pool(procs);

  bench::Table table({"M", "L", "T_seq(us)", "T_par(us)", "inspect(us)",
                      "execute(us)", "post(us)", "pre+post %", "doall(us)",
                      "check overhead %"});

  for (int m : {1, 5}) {
    for (int l : {7, 13}) {  // odd L: zero dependences, pure overhead
      const gen::TestLoop tl = gen::make_test_loop({.n = n, .m = m, .l = l});
      std::vector<double> y = gen::make_initial_y(tl);

      const double t_seq =
          bench::summarize(bench::time_samples(reps, 1, [&] {
            y = tl.y0;
            gen::run_test_loop_seq(tl, y);
          })).min;

      core::DoacrossEngine<double> eng(pool, tl.value_space);
      core::DoacrossOptions opts;
      opts.nthreads = procs;
      core::DoacrossStats best_stats;
      double best = 1e300;
      for (int r = 0; r < reps + 1; ++r) {
        y = tl.y0;
        const auto s = eng.run(std::span<const index_t>(tl.a),
                               std::span<double>(y),
                               [&tl](auto& it) { gen::test_loop_body(tl, it); },
                               opts);
        if (r > 0 && s.total_seconds() < best) {
          best = s.total_seconds();
          best_stats = s;
        }
      }

      // Same body, same pool, same phase instrumentation, but a plain
      // doall (no iter/ready machinery): isolates the dependency-check
      // overhead of the executor phase. Timed inside the region between
      // barriers, exactly like the engine times its executor phase.
      double t_doall = 1e300;
      {
        const unsigned nth = pool.clamp_threads(procs);
        rt::Barrier barrier(nth);
        for (int r = 0; r < reps + 1; ++r) {
          y = tl.y0;
          double* yp = y.data();
          std::chrono::steady_clock::time_point p0, p1;
          pool.parallel_region(nth, [&](unsigned tid, unsigned nthreads) {
            barrier.arrive_and_wait();
            if (tid == 0) p0 = std::chrono::steady_clock::now();
            const rt::IterRange range =
                rt::static_block_range(tl.n(), tid, nthreads);
            for (index_t i = range.begin; i < range.end; ++i) {
              double acc = yp[tl.a[static_cast<std::size_t>(i)]];
              const index_t bi = tl.b[static_cast<std::size_t>(i)];
              for (int j = 0; j < tl.params.m; ++j) {
                double v = tl.val[static_cast<std::size_t>(j)] *
                           yp[bi + tl.nbrs[static_cast<std::size_t>(j)]];
                acc += v;
                if (tl.params.work_reps > 0) {
                  acc = gen::work_spin(acc, tl.params.work_reps);
                }
              }
              yp[tl.a[static_cast<std::size_t>(i)]] = acc;
            }
            barrier.arrive_and_wait();
            if (tid == 0) p1 = std::chrono::steady_clock::now();
          });
          if (r > 0) {
            t_doall = std::min(
                t_doall, std::chrono::duration<double>(p1 - p0).count());
          }
        }
      }

      const double t_par = best_stats.total_seconds();
      table.row()
          .cell(m)
          .cell(l)
          .cell(t_seq * 1e6, 1)
          .cell(t_par * 1e6, 1)
          .cell(best_stats.inspect_seconds * 1e6, 1)
          .cell(best_stats.execute_seconds * 1e6, 1)
          .cell(best_stats.post_seconds * 1e6, 1)
          .cell(100.0 * best_stats.overhead_fraction(), 1)
          .cell(t_doall * 1e6, 1)
          .cell(100.0 * (best_stats.execute_seconds - t_doall) /
                    (t_doall > 0 ? t_doall : 1e-300),
                1);
    }
  }
  table.print();
  std::printf("\n'pre+post %%' is the paper's runtime pre/postprocessing "
              "overhead; 'check overhead %%' compares the checking executor "
              "against a doall of the same body.\n");
  return 0;
}
