// plan_reuse — measures the amortization claim behind TrisolvePlan.
//
// The paper's premise: preprocessing cost is amortized because "the same
// loop is executed many times". This harness makes that a measured number
// for our hottest repeated loop, the ILU(0) preconditioner application
// (L⁻¹ then U⁻¹):
//
//   unplanned — the historical per-call path: persistent flag table, but a
//               fresh rt::Barrier + two padded stat vectors per solve, a
//               full flag-reset sweep fenced by an extra barrier, and TWO
//               pool fork/joins per application.
//   planned   — TrisolvePlan::solve under the packed layout (the default):
//               all setup hoisted to build time, O(1) epoch reset, zero
//               per-call allocation, ONE fork/join, and both factors read
//               as plan-owned execution-ordered record streams.
//   csr-view  — the same plan under PlanOptions::layout = kCsrView: the
//               kernels read the caller's CSR in original row order, so
//               the planned-vs-csr-view gap isolates what the packed
//               memory layout alone buys (DESIGN.md §10).
//
// Per-solve wall time is reported across iteration counts (1, 10, 100) and
// thread counts, with plan build cost amortized into the planned column so
// the crossover point is visible, plus the pool-dispatch counts proving
// the fusion.
// `--json <path>` additionally writes the table as a JSON artifact (CI
// publishes it as BENCH_plan.json, alongside batch_solve's); the layout
// speedups feed ci/perf_gate.py.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "benchsupport/env.hpp"
#include "benchsupport/table.hpp"
#include "benchsupport/timer.hpp"
#include "core/ready_table.hpp"
#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/levels.hpp"
#include "sparse/par_trisolve.hpp"
#include "sparse/trisolve_plan.hpp"

namespace bench = pdx::bench;
namespace core = pdx::core;
namespace gen = pdx::gen;
namespace rt = pdx::rt;
namespace sp = pdx::sparse;
using pdx::index_t;

namespace {

struct Row {
  unsigned threads;
  int solves;
  double us_unplanned;
  double us_planned;      // packed layout (the default)
  double us_planned_csr;  // kCsrView layout
  double us_amortized;
  std::uint64_t disp_unplanned;
  std::uint64_t disp_planned;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::cout << bench::environment_banner("plan_reuse (persistent solve plans)")
            << "\n";
  const unsigned max_procs = bench::default_procs();
  const int reps = bench::default_reps();
  // Large enough that the ILU factors spill the last-level cache: the
  // layout comparison is about *memory behavior*, and a cache-resident
  // factor hides it (a 40x40 grid shows ~1.0x where this size shows the
  // real packed-stream gain).
  const int grid = bench::quick_mode() ? 128 : 160;

  const sp::Csr a = gen::five_point(grid, grid);
  const sp::IluFactors f = sp::ilu0(a);
  const index_t n = f.l.rows;

  gen::SplitMix64 rng(7);
  std::vector<double> rhs(static_cast<std::size_t>(n));
  for (auto& v : rhs) v = rng.next_double(-1.0, 1.0);
  std::vector<double> tmp(static_cast<std::size_t>(n)),
      z(static_cast<std::size_t>(n));

  // Both paths use the same doconsider orders; the comparison isolates
  // per-call setup, not schedule quality.
  const core::Reordering l_ord = sp::lower_solve_reordering(f.l);
  const core::Reordering u_ord = sp::upper_solve_reordering(f.u);

  rt::ThreadPool pool(max_procs);

  std::vector<unsigned> thread_counts{1};
  if (max_procs >= 2) thread_counts.push_back(2);
  if (max_procs > 2) thread_counts.push_back(max_procs);

  bench::Table table({"threads", "solves", "unplanned(us/solve)",
                      "planned(us/solve)", "csr-view(us/solve)",
                      "planned+build(us/solve)", "speedup", "layout-speedup",
                      "dispatches/solve unplanned",
                      "dispatches/solve planned"});
  std::vector<Row> rows;

  for (unsigned nth : thread_counts) {
    // The historical per-call path (what DoacrossIlu0Preconditioner::apply
    // did before plans): persistent DenseReadyTable, everything else
    // re-paid per call, two fork/join regions.
    core::DenseReadyTable ready(n);
    sp::TrisolveOptions uopts;
    uopts.nthreads = nth;
    auto unplanned_apply = [&] {
      uopts.order = l_ord.order.data();
      sp::trisolve_doacross(pool, f.l, rhs, tmp, ready, uopts);
      uopts.order = u_ord.order.data();
      sp::trisolve_upper_doacross(pool, f.u, tmp, z, ready, uopts);
    };

    sp::PlanOptions popts;
    popts.nthreads = nth;
    std::optional<sp::TrisolvePlan> plan;
    const double build_seconds =
        bench::time_call([&] { plan.emplace(pool, f.l, f.u, popts); });
    sp::PlanOptions copts = popts;
    copts.layout = sp::PlanLayout::kCsrView;
    sp::TrisolvePlan plan_csr(pool, f.l, f.u, copts);

    for (int solves : {1, 10, 100}) {
      auto run_batch = [&](auto&& one) {
        return bench::time_samples(reps, 1, [&] {
                 for (int s = 0; s < solves; ++s) one();
               });
      };
      const std::uint64_t batch_calls =
          static_cast<std::uint64_t>((reps + 1) * solves);  // warmup + reps
      const std::uint64_t du0 = pool.dispatch_count();
      const auto t_unplanned = run_batch(unplanned_apply);
      const std::uint64_t unplanned_dispatches =
          (pool.dispatch_count() - du0) / batch_calls;
      const std::uint64_t dp0 = pool.dispatch_count();
      const auto t_planned = run_batch([&] { plan->solve(rhs, z); });
      const std::uint64_t planned_dispatches =
          (pool.dispatch_count() - dp0) / batch_calls;
      const auto t_planned_csr = run_batch([&] { plan_csr.solve(rhs, z); });

      const double us_unplanned =
          *std::min_element(t_unplanned.begin(), t_unplanned.end()) /
          solves * 1e6;
      const double us_planned =
          *std::min_element(t_planned.begin(), t_planned.end()) /
          solves * 1e6;
      const double us_planned_csr =
          *std::min_element(t_planned_csr.begin(), t_planned_csr.end()) /
          solves * 1e6;
      const double us_amortized = us_planned + build_seconds * 1e6 / solves;

      rows.push_back({nth, solves, us_unplanned, us_planned, us_planned_csr,
                      us_amortized, unplanned_dispatches,
                      planned_dispatches});
      table.row()
          .cell(nth)
          .cell(solves)
          .cell(us_unplanned, 1)
          .cell(us_planned, 1)
          .cell(us_planned_csr, 1)
          .cell(us_amortized, 1)
          .cell(us_unplanned / (us_planned > 0 ? us_planned : 1e-300), 2)
          .cell(us_planned_csr / (us_planned > 0 ? us_planned : 1e-300), 2)
          .cell(static_cast<unsigned>(unplanned_dispatches))
          .cell(static_cast<unsigned>(planned_dispatches));
    }
  }
  table.print();
  std::printf(
      "\n'planned+build' amortizes plan construction over the batch; "
      "'speedup' is unplanned/planned per-solve wall time and "
      "'layout-speedup' csr-view/packed (what the execution-ordered "
      "packed streams alone buy). A planned application is one pool "
      "fork/join (fused L+U), the unplanned path two.\n");
  {
    sp::PlanOptions popts2;
    popts2.nthreads = max_procs;
    const sp::TrisolvePlan probe_plan(pool, f.l, f.u, popts2);
    std::printf(
        "packed streams: %zu bytes (factors' CSR: %zu bytes); ready flags "
        "are stride-hashed EpochReadyTables (one line per 16 neighboring "
        "rows' flags before, distinct lines after — see "
        "bench/ablation_flags for the before/after timing).\n",
        probe_plan.packed_bytes(), f.l.memory_bytes() + f.u.memory_bytes());
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"plan_reuse\",\n"
        << "  \"grid\": " << grid << ",\n  \"rows\": " << n
        << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      out << "    {\"threads\": " << r.threads
          << ", \"solves\": " << r.solves
          << ", \"us_per_solve_unplanned\": " << r.us_unplanned
          << ", \"us_per_solve_planned\": " << r.us_planned
          << ", \"us_per_solve_planned_csrview\": " << r.us_planned_csr
          << ", \"us_per_solve_planned_amortized\": " << r.us_amortized
          << ", \"speedup\": "
          << (r.us_planned > 0 ? r.us_unplanned / r.us_planned : 0.0)
          << ", \"layout_speedup\": "
          << (r.us_planned > 0 ? r.us_planned_csr / r.us_planned : 0.0)
          << ", \"dispatches_per_solve_unplanned\": " << r.disp_unplanned
          << ", \"dispatches_per_solve_planned\": " << r.disp_planned
          << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
