// service_load — measures the multi-tenant solve service under load.
//
// Three five-point tenants of descending size share one solve::Service.
// The harness runs three phases:
//
//   sync     — one client, one job at a time through Service::solve():
//              the no-batching, no-pipelining reference rate. Measured
//              in-run so it divides out the machine.
//   burst    — open-loop flood: every job of the round-robin schedule is
//              submitted up front (arrival rate >> service rate), then
//              the drain is timed. The scheduler packs same-matrix jobs
//              into solve_batch strips, so jobs/sec here over jobs/sec
//              sync is the served batching gain ("batch_gain" — the
//              ratio the perf gate holds).
//   overload — a deliberately small bounded queue under the shed-oldest
//              policy with per-job deadlines: checks the service keeps
//              exact accounting (every job terminal, shed + expired +
//              solved + rejected + failed == submitted) while drowning.
//
// `--json <path>` writes BENCH_service.json for CI; the artifact carries
// jobs/sec for both phases, the service's own p50/p99/max latency
// telemetry, batch_gain, tail_containment (p50/p99), and the overload
// accounting verdict the gate re-checks.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "benchsupport/env.hpp"
#include "benchsupport/table.hpp"
#include "benchsupport/timer.hpp"
#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "runtime/thread_pool.hpp"
#include "solve/service.hpp"

namespace bench = pdx::bench;
namespace gen = pdx::gen;
namespace rt = pdx::rt;
namespace solve = pdx::solve;
namespace sp = pdx::sparse;
using pdx::index_t;

namespace {

struct Tenants {
  std::vector<sp::Csr> mats;
  std::vector<solve::MatrixId> ids;
};

Tenants register_tenants(solve::Service& svc, const std::vector<int>& grids) {
  Tenants t;
  for (int g : grids) {
    t.mats.push_back(gen::five_point(g, g));
    t.ids.push_back(svc.register_matrix(t.mats.back()));
  }
  return t;
}

/// One warm solve per tenant so plan builds (cache misses) happen outside
/// every timed window — the serving steady state is what's measured.
void warm(solve::Service& svc, const Tenants& t) {
  for (std::size_t i = 0; i < t.ids.size(); ++i) {
    const index_t n = t.mats[i].rows;
    std::vector<double> b(static_cast<std::size_t>(n), 1.0);
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    const solve::JobResult res = svc.solve(t.ids[i], b, x);
    if (res.outcome != solve::JobOutcome::kSolved) {
      std::fprintf(stderr, "warm solve failed: %s\n", res.error.c_str());
      std::exit(1);
    }
  }
}

std::vector<double> rhs_for(const sp::Csr& m, std::uint64_t seed) {
  gen::SplitMix64 rng(seed);
  std::vector<double> b(static_cast<std::size_t>(m.rows));
  for (auto& v : b) v = rng.next_double(-1.0, 1.0);
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::cout << bench::environment_banner("service_load (multi-tenant serving)")
            << "\n";
  const bool quick = bench::quick_mode();
  const unsigned max_procs = bench::default_procs();
  const int reps = bench::default_reps();
  const std::vector<int> grids =
      quick ? std::vector<int>{24, 20, 16} : std::vector<int>{48, 40, 32};
  const int jobs_sync = quick ? 30 : 120;
  const int jobs_burst = quick ? 60 : 240;
  const int jobs_overload = quick ? 80 : 300;

  std::vector<unsigned> thread_counts{1};
  if (max_procs >= 2) thread_counts.push_back(2);
  if (max_procs > 2) thread_counts.push_back(max_procs);

  struct Row {
    unsigned threads = 0;
    double sync_jps = 0.0;
    double burst_jps = 0.0;
    solve::ServiceReport burst_rep;
  };
  std::vector<Row> rows;

  for (unsigned nth : thread_counts) {
    rt::ThreadPool pool(nth);
    Row row;
    row.threads = nth;

    // Both phases run `reps` times; the best (highest jobs/sec) sample of
    // each is the row — open-loop serving is scheduler-jitter-heavy, and
    // best-of-reps is how every other harness here de-noises.
    for (int rep = 0; rep < reps; ++rep) {
      // ---- Phase 1: one-at-a-time reference rate -----------------------
      {
        solve::ServiceOptions opts;
        opts.solver.nthreads = nth;
        solve::Service svc(pool, opts);
        const Tenants t = register_tenants(svc, grids);
        warm(svc, t);
        std::vector<std::vector<double>> xs;
        for (const sp::Csr& m : t.mats) {
          xs.emplace_back(static_cast<std::size_t>(m.rows), 0.0);
        }
        bench::WallTimer timer;
        for (int j = 0; j < jobs_sync; ++j) {
          const std::size_t i = static_cast<std::size_t>(j) % t.ids.size();
          const auto b =
              rhs_for(t.mats[i], 100 + static_cast<std::uint64_t>(j));
          const solve::JobResult res = svc.solve(t.ids[i], b, xs[i]);
          if (res.outcome != solve::JobOutcome::kSolved) {
            std::fprintf(stderr, "sync job %d: %s\n", j, res.error.c_str());
            return 1;
          }
        }
        row.sync_jps = std::max(row.sync_jps, jobs_sync / (timer.millis() / 1e3));
        svc.shutdown(10000.0);
      }

      // ---- Phase 2: open-loop burst ------------------------------------
      {
        solve::ServiceOptions opts;
        opts.solver.nthreads = nth;
        opts.queue_capacity = static_cast<std::size_t>(jobs_burst) + 8;
        solve::Service svc(pool, opts);
        const Tenants t = register_tenants(svc, grids);
        warm(svc, t);
        std::vector<solve::JobHandle> jobs;
        jobs.reserve(static_cast<std::size_t>(jobs_burst));
        bench::WallTimer timer;
        for (int j = 0; j < jobs_burst; ++j) {
          const std::size_t i = static_cast<std::size_t>(j) % t.ids.size();
          jobs.push_back(svc.submit(
              t.ids[i],
              rhs_for(t.mats[i], 500 + static_cast<std::uint64_t>(j))));
        }
        for (int j = 0; j < jobs_burst; ++j) {
          const solve::JobResult res =
              jobs[static_cast<std::size_t>(j)]->wait();
          if (res.outcome != solve::JobOutcome::kSolved) {
            std::fprintf(stderr, "burst job %d: %s\n", j, res.error.c_str());
            return 1;
          }
        }
        const double jps = jobs_burst / (timer.millis() / 1e3);
        if (jps > row.burst_jps) {
          row.burst_jps = jps;
          row.burst_rep = svc.report();
        }
        svc.shutdown(10000.0);
      }
    }
    rows.push_back(std::move(row));
  }

  // ---- Phase 3: overload accounting under shed + deadlines -------------
  solve::ServiceReport over_rep;
  bool over_accounted = false;
  {
    rt::ThreadPool pool(max_procs);
    solve::ServiceOptions opts;
    opts.queue_capacity = 16;
    opts.backpressure = solve::BackpressurePolicy::kShedOldest;
    opts.default_timeout_ms = quick ? 250.0 : 1000.0;
    solve::Service svc(pool, opts);
    const Tenants t = register_tenants(svc, grids);
    warm(svc, t);
    std::vector<solve::JobHandle> jobs;
    jobs.reserve(static_cast<std::size_t>(jobs_overload));
    for (int j = 0; j < jobs_overload; ++j) {
      const std::size_t i = static_cast<std::size_t>(j) % t.ids.size();
      jobs.push_back(svc.submit(
          t.ids[i], rhs_for(t.mats[i], 900 + static_cast<std::uint64_t>(j))));
    }
    std::uint64_t terminal = 0;
    for (const solve::JobHandle& job : jobs) {
      if (job->wait().outcome != solve::JobOutcome::kPending) ++terminal;
    }
    svc.shutdown(10000.0);
    over_rep = svc.report();
    // +3 warm solves: every submitted job — warm, solved, shed, expired —
    // must land in exactly one terminal bucket.
    over_accounted =
        terminal == static_cast<std::uint64_t>(jobs_overload) &&
        over_rep.submitted == static_cast<std::uint64_t>(jobs_overload) + 3 &&
        over_rep.submitted == over_rep.solved + over_rep.expired +
                                  over_rep.rejected + over_rep.failed;
  }

  bench::Table table({"threads", "tenants", "sync(jobs/s)", "burst(jobs/s)",
                      "batch_gain", "p50(ms)", "p99(ms)", "max(ms)",
                      "high-water"});
  for (const Row& r : rows) {
    table.row()
        .cell(r.threads)
        .cell(static_cast<unsigned>(grids.size()))
        .cell(r.sync_jps, 1)
        .cell(r.burst_jps, 1)
        .cell(r.sync_jps > 0 ? r.burst_jps / r.sync_jps : 0.0, 2)
        .cell(r.burst_rep.p50_ms, 2)
        .cell(r.burst_rep.p99_ms, 2)
        .cell(r.burst_rep.max_ms, 2)
        .cell(static_cast<unsigned>(r.burst_rep.queue_high_water));
  }
  table.print();
  std::printf(
      "\noverload (queue 16, shed-oldest, %.0f ms deadlines): %llu submitted "
      "-> %llu solved, %llu shed, %llu expired, %llu rejected, %llu failed "
      "(accounting %s)\n",
      quick ? 250.0 : 1000.0,
      static_cast<unsigned long long>(over_rep.submitted),
      static_cast<unsigned long long>(over_rep.solved),
      static_cast<unsigned long long>(over_rep.shed),
      static_cast<unsigned long long>(over_rep.expired),
      static_cast<unsigned long long>(over_rep.rejected),
      static_cast<unsigned long long>(over_rep.failed),
      over_accounted ? "exact" : "BROKEN");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"service_load\",\n"
        << "  \"accounting_exact\": " << (over_accounted ? "true" : "false")
        << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      const double gain = r.sync_jps > 0 ? r.burst_jps / r.sync_jps : 0.0;
      const double tail =
          r.burst_rep.p99_ms > 0 ? r.burst_rep.p50_ms / r.burst_rep.p99_ms
                                 : 0.0;
      out << "    {\"threads\": " << r.threads
          << ", \"tenants\": " << grids.size()
          << ", \"jobs_per_sec_sync\": " << r.sync_jps
          << ", \"jobs_per_sec_burst\": " << r.burst_jps
          << ", \"batch_gain\": " << gain
          << ", \"p50_ms\": " << r.burst_rep.p50_ms
          << ", \"p99_ms\": " << r.burst_rep.p99_ms
          << ", \"max_ms\": " << r.burst_rep.max_ms
          << ", \"tail_containment\": " << tail
          << ", \"queue_high_water\": " << r.burst_rep.queue_high_water
          << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"overload\": {\"submitted\": " << over_rep.submitted
        << ", \"solved\": " << over_rep.solved
        << ", \"shed\": " << over_rep.shed
        << ", \"expired\": " << over_rep.expired
        << ", \"rejected\": " << over_rep.rejected
        << ", \"failed\": " << over_rep.failed << "}\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return over_accounted ? 0 : 1;
}
