// sweep_processors — efficiency vs processor count (E8) for both paper
// kernels: the Fig. 4 loop (L=8, M=5) and the 7-PT triangular solve.
//
// The paper reports single points at p = 16; this sweep shows the whole
// scaling curve so the reader can see where the overheads bite.
#include <cstdio>
#include <iostream>
#include <vector>

#include "benchsupport/env.hpp"
#include "benchsupport/stats.hpp"
#include "benchsupport/table.hpp"
#include "benchsupport/timer.hpp"
#include "core/doacross.hpp"
#include "core/doconsider.hpp"
#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "gen/testloop.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/levels.hpp"
#include "sparse/par_trisolve.hpp"
#include "sparse/trisolve.hpp"

namespace bench = pdx::bench;
namespace core = pdx::core;
namespace gen = pdx::gen;
namespace rt = pdx::rt;
namespace sp = pdx::sparse;
using pdx::index_t;

int main() {
  std::cout << bench::environment_banner("sweep_processors (E8)") << "\n";
  const unsigned max_procs = bench::default_procs();
  const int reps = bench::default_reps();
  rt::ThreadPool pool(max_procs);

  std::vector<unsigned> procs_list;
  for (unsigned p = 1; p <= max_procs; p *= 2) procs_list.push_back(p);
  if (procs_list.back() != max_procs) procs_list.push_back(max_procs);

  // Kernel 1: Fig. 4 loop with odd L (no cross-iteration dependences):
  // this curve isolates how the *mechanism* (inspector, three-way checks,
  // flag commits, postprocess) scales with p, with zero waiting. Even-L
  // scaling is dependence-limited and covered by fig6_test_loop.
  {
    const index_t n = bench::quick_mode() ? 4000 : 10000;
    const gen::TestLoop tl =
        gen::make_test_loop({.n = n, .m = 5, .l = 13, .work_reps = 32});
    std::vector<double> y = gen::make_initial_y(tl);
    const double t_seq = bench::summarize(bench::time_samples(reps, 1, [&] {
                           y = tl.y0;
                           gen::run_test_loop_seq(tl, y);
                         })).min;

    std::printf("\nFig. 4 loop (N=%lld, M=5, L=13, work_reps=32), T_seq=%.1f us:\n",
                static_cast<long long>(n), t_seq * 1e6);
    bench::Table table({"p", "T_par(us)", "speedup", "efficiency"});
    core::DoacrossEngine<double> eng(pool, tl.value_space);
    for (unsigned p : procs_list) {
      core::DoacrossOptions opts;
      opts.nthreads = p;
      opts.schedule = rt::Schedule::static_block();
      const double t_par =
          bench::summarize(bench::time_samples(reps, 1, [&] {
            y = tl.y0;
            eng.run(std::span<const index_t>(tl.a), std::span<double>(y),
                    [&tl](auto& it) { gen::test_loop_body(tl, it); }, opts);
          })).min;
      table.row()
          .cell(p)
          .cell(t_par * 1e6, 1)
          .cell(bench::speedup(t_seq, t_par), 2)
          .cell(bench::parallel_efficiency(t_seq, t_par, p), 3);
    }
    table.print();
  }

  // Kernel 2: 7-PT ILU(0) lower solve (doconsider-reordered).
  {
    const sp::Csr l = sp::ilu0(bench::quick_mode()
                                   ? gen::seven_point(10, 10, 10)
                                   : gen::matrix_7pt())
                          .l;
    const core::Reordering r = sp::lower_solve_reordering(l);
    gen::SplitMix64 rng(9);
    std::vector<double> rhs(static_cast<std::size_t>(l.rows));
    for (auto& v : rhs) v = rng.next_double(-1.0, 1.0);
    std::vector<double> y(static_cast<std::size_t>(l.rows));
    const int work = bench::quick_mode() ? 100 : 400;

    const double t_seq = bench::summarize(bench::time_samples(reps, 1, [&] {
                           sp::trisolve_lower_seq(l, rhs, y, work);
                         })).min;

    std::printf("\n7-PT lower solve (n=%lld, doconsider order, work_reps=%d), "
                "T_seq=%.1f us:\n",
                static_cast<long long>(l.rows), work, t_seq * 1e6);
    bench::Table table({"p", "T_par(us)", "speedup", "efficiency"});
    core::DenseReadyTable ready(l.rows);
    for (unsigned p : procs_list) {
      sp::TrisolveOptions opts;
      opts.nthreads = p;
      opts.order = r.order.data();
      opts.schedule = rt::Schedule::dynamic(1);
      opts.work_reps = work;
      const double t_par =
          bench::summarize(bench::time_samples(reps, 1, [&] {
            sp::trisolve_doacross(pool, l, rhs, y, ready, opts);
          })).min;
      table.row()
          .cell(p)
          .cell(t_par * 1e6, 1)
          .cell(bench::speedup(t_seq, t_par), 2)
          .cell(bench::parallel_efficiency(t_seq, t_par, p), 3);
    }
    table.print();
  }
  return 0;
}
