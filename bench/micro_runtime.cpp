// micro_runtime — google-benchmark microbenchmarks of the runtime
// primitives the doacross executor is built from (E9): pool fork/join,
// barrier crossings, ready-flag signal/wait pairs (dense vs padded vs
// epoch), and the three-way dependency check itself.
#include <benchmark/benchmark.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "core/iter_table.hpp"
#include "core/ready_table.hpp"
#include "runtime/barrier.hpp"
#include "runtime/spin_wait.hpp"
#include "runtime/thread_pool.hpp"

namespace core = pdx::core;
namespace rt = pdx::rt;
using pdx::index_t;

namespace {

rt::ThreadPool& pool4() {
  static rt::ThreadPool p(4);
  return p;
}

}  // namespace

static void BM_PoolForkJoin(benchmark::State& state) {
  rt::ThreadPool& pool = pool4();
  for (auto _ : state) {
    pool.parallel_region(4, [](unsigned, unsigned) {});
  }
}
BENCHMARK(BM_PoolForkJoin);

static void BM_BarrierCrossing(benchmark::State& state) {
  rt::ThreadPool& pool = pool4();
  const int rounds = 64;
  for (auto _ : state) {
    rt::Barrier barrier(4);
    pool.parallel_region(4, [&](unsigned, unsigned) {
      for (int i = 0; i < rounds; ++i) barrier.arrive_and_wait();
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_BarrierCrossing);

template <class Table>
static void BM_ReadySignalCheck(benchmark::State& state) {
  const index_t n = state.range(0);
  Table table(n);
  for (auto _ : state) {
    table.begin_epoch();
    for (index_t i = 0; i < n; ++i) table.mark_done(i);
    for (index_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(table.is_done(i));
    }
    for (index_t i = 0; i < n; ++i) table.clear(i);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK_TEMPLATE(BM_ReadySignalCheck, core::DenseReadyTable)->Arg(4096);
BENCHMARK_TEMPLATE(BM_ReadySignalCheck, core::PaddedReadyTable)->Arg(4096);
BENCHMARK_TEMPLATE(BM_ReadySignalCheck, core::EpochReadyTable)->Arg(4096);

static void BM_IterTableInspectorSweep(benchmark::State& state) {
  const index_t n = state.range(0);
  std::vector<index_t> writer(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) writer[static_cast<std::size_t>(i)] = 2 * i;
  core::IterTable iter(2 * n);
  for (auto _ : state) {
    iter.record_all(writer);
    iter.clear_all(writer);
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_IterTableInspectorSweep)->Arg(4096)->Arg(65536);

static void BM_ThreeWayCheck(benchmark::State& state) {
  // The executor's per-read classification cost in isolation.
  const index_t n = 4096;
  std::vector<index_t> writer(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) writer[static_cast<std::size_t>(i)] = 2 * i;
  core::IterTable iter(2 * n);
  iter.record_all(writer);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    for (index_t off = 0; off < 2 * n; ++off) {
      const index_t w = iter[off];
      // Branch structure identical to Iteration::read.
      if (w == n / 2) {
        acc += 1;
      } else if (w < n / 2) {
        acc += 2;
      } else {
        acc += 3;
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_ThreeWayCheck);

static void BM_SpinWaitHotFlag(benchmark::State& state) {
  // Producer/consumer flag handoff latency through the pool.
  rt::ThreadPool& pool = pool4();
  for (auto _ : state) {
    std::atomic<std::uint8_t> flag{0};
    pool.parallel_region(2, [&](unsigned tid, unsigned) {
      if (tid == 1) {
        flag.store(1, std::memory_order_release);
      } else {
        rt::spin_until(
            [&] { return flag.load(std::memory_order_acquire) != 0; });
      }
    });
  }
}
BENCHMARK(BM_SpinWaitHotFlag);

BENCHMARK_MAIN();
