// ablation_linear — the §2.3 linear-subscript variant (E5): eliminate the
// inspector and the iter table when a(i) = c*i + d is known.
//
// The paper: "it is possible to eliminate the execution time preprocessing
// phase along with the need to allocate storage for array iter". The
// Fig. 4 loop's a(i) = 2i qualifies. Expect: identical results, zero
// inspector time, and a modest end-to-end win that grows as the value
// space (and hence iter traffic) grows.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "benchsupport/env.hpp"
#include "benchsupport/stats.hpp"
#include "benchsupport/table.hpp"
#include "benchsupport/timer.hpp"
#include "core/doacross.hpp"
#include "core/linear_doacross.hpp"
#include "gen/testloop.hpp"
#include "runtime/thread_pool.hpp"

namespace bench = pdx::bench;
namespace core = pdx::core;
namespace gen = pdx::gen;
namespace rt = pdx::rt;
using pdx::index_t;

int main() {
  std::cout << bench::environment_banner("ablation_linear (paper §2.3)")
            << "\n";
  const unsigned procs = bench::default_procs();
  const int reps = bench::default_reps();
  rt::ThreadPool pool(procs);

  bench::Table table({"N", "M", "L", "general(us)", "inspect(us)",
                      "linear(us)", "speedup", "iter bytes saved"});

  const index_t base_n = bench::quick_mode() ? 2000 : 10000;
  for (index_t n : {base_n, base_n * 4}) {
    for (int l : {7, 8}) {
      const gen::TestLoop tl = gen::make_test_loop({.n = n, .m = 5, .l = l});
      std::vector<double> y = gen::make_initial_y(tl);

      core::DoacrossEngine<double> eng(pool, tl.value_space);
      core::DoacrossOptions opts;
      opts.nthreads = procs;
      double best_gen = 1e300;
      core::DoacrossStats gen_stats;
      for (int r = 0; r < reps + 1; ++r) {
        y = tl.y0;
        const auto s = eng.run(std::span<const index_t>(tl.a),
                               std::span<double>(y),
                               [&tl](auto& it) { gen::test_loop_body(tl, it); },
                               opts);
        if (r > 0 && s.total_seconds() < best_gen) {
          best_gen = s.total_seconds();
          gen_stats = s;
        }
      }

      // Compare phase-level totals (dispatch excluded) on both sides.
      core::LinearDoacross<double> lin(pool);
      core::LinearOptions lopts;
      lopts.nthreads = procs;
      double t_lin = 1e300;
      for (int r = 0; r < reps + 1; ++r) {
        y = tl.y0;
        const auto s = lin.run({.c = 2, .d = tl.base, .n = tl.params.n},
                               std::span<double>(y),
                               [&tl](auto& it) { gen::test_loop_body(tl, it); },
                               lopts);
        if (r > 0) t_lin = std::min(t_lin, s.total_seconds());
      }

      table.row()
          .cell(static_cast<long long>(n))
          .cell(5)
          .cell(l)
          .cell(best_gen * 1e6, 1)
          .cell(gen_stats.inspect_seconds * 1e6, 1)
          .cell(t_lin * 1e6, 1)
          .cell(best_gen / t_lin, 2)
          .cell(static_cast<long long>(tl.value_space *
                                       static_cast<index_t>(sizeof(index_t))));
    }
  }
  table.print();
  std::printf("\n'iter bytes saved' is the iter-table allocation the linear "
              "variant avoids entirely (value_space x 8 bytes).\n");
  return 0;
}
