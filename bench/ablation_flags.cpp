// ablation_flags — ready-table layout ablation (E9 companion).
//
// The paper's `ready` array is a dense flag vector, natural on a 1990
// bus-based machine. On cache-coherent multicores, layout matters: dense
// bytes share lines (producer stores invalidate neighbouring consumers'
// spin lines), padded flags trade memory for isolation, and epoch stamps
// trade a word per entry for O(1) whole-table reset — in a linear layout
// (the before) or stride-hashed across lines so neighboring offsets never
// share one (the production after). This bench times all four on both
// paper workloads.
#include <cstdio>
#include <iostream>
#include <vector>

#include "benchsupport/env.hpp"
#include "benchsupport/stats.hpp"
#include "benchsupport/table.hpp"
#include "benchsupport/timer.hpp"
#include "core/doacross.hpp"
#include "gen/stencil.hpp"
#include "gen/rng.hpp"
#include "gen/testloop.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/levels.hpp"
#include "sparse/par_trisolve.hpp"

namespace bench = pdx::bench;
namespace core = pdx::core;
namespace gen = pdx::gen;
namespace rt = pdx::rt;
namespace sp = pdx::sparse;
using pdx::index_t;

namespace {

template <class Ready>
double time_fig4(rt::ThreadPool& pool, const gen::TestLoop& tl,
                 unsigned procs, int reps) {
  core::DoacrossEngine<double, Ready> eng(pool, tl.value_space);
  core::DoacrossOptions opts;
  opts.nthreads = procs;
  opts.schedule = rt::Schedule::static_cyclic(1);
  std::vector<double> y = gen::make_initial_y(tl);
  return bench::summarize(bench::time_samples(reps, 1, [&] {
           y = tl.y0;
           eng.run(std::span<const index_t>(tl.a), std::span<double>(y),
                   [&tl](auto& it) { gen::test_loop_body(tl, it); }, opts);
         })).min;
}

template <class Ready>
double time_trisolve(rt::ThreadPool& pool, const sp::Csr& l,
                     const core::Reordering& r,
                     std::span<const double> rhs, std::span<double> y,
                     unsigned procs, int reps, int work) {
  Ready ready(l.rows);
  sp::TrisolveOptions opts;
  opts.nthreads = procs;
  opts.schedule = rt::Schedule::dynamic(1);
  opts.order = r.order.data();
  opts.work_reps = work;
  return bench::summarize(bench::time_samples(reps, 1, [&] {
           sp::trisolve_doacross(pool, l, rhs, y, ready, opts);
         })).min;
}

}  // namespace

int main() {
  std::cout << bench::environment_banner("ablation_flags (flag layout)")
            << "\n";
  const unsigned procs = bench::default_procs();
  const int reps = bench::default_reps();
  rt::ThreadPool pool(procs);

  {
    const index_t n = bench::quick_mode() ? 2000 : 10000;
    const int work = bench::quick_mode() ? 16 : 64;
    const gen::TestLoop tl =
        gen::make_test_loop({.n = n, .m = 5, .l = 8, .work_reps = work});
    std::printf("\nFig. 4 loop (N=%lld, M=5, L=8, work_reps=%d):\n",
                static_cast<long long>(n), work);
    bench::Table t({"ready table", "T(ms)", "flag bytes/entry"});
    t.row()
        .cell("dense (paper)")
        .cell(time_fig4<core::DenseReadyTable>(pool, tl, procs, reps) * 1e3, 3)
        .cell(1);
    t.row()
        .cell("padded")
        .cell(time_fig4<core::PaddedReadyTable>(pool, tl, procs, reps) * 1e3, 3)
        .cell(64);
    t.row()
        .cell("epoch-linear (before)")
        .cell(time_fig4<core::LinearEpochReadyTable>(pool, tl, procs, reps) *
                  1e3,
              3)
        .cell(4);
    t.row()
        .cell("epoch-strided (after)")
        .cell(time_fig4<core::EpochReadyTable>(pool, tl, procs, reps) * 1e3, 3)
        .cell(4);
    t.print();
  }

  {
    const sp::Csr l = sp::ilu0(bench::quick_mode()
                                   ? gen::five_point(30, 30)
                                   : gen::matrix_5pt())
                          .l;
    const core::Reordering r = sp::lower_solve_reordering(l);
    const int work = bench::quick_mode() ? 100 : 400;
    gen::SplitMix64 rng(13);
    std::vector<double> rhs(static_cast<std::size_t>(l.rows));
    for (auto& v : rhs) v = rng.next_double(-1.0, 1.0);
    std::vector<double> y(static_cast<std::size_t>(l.rows));

    std::printf("\n5-PT ILU(0) lower solve, doconsider order, work_reps=%d:\n",
                work);
    bench::Table t({"ready table", "T(us)"});
    t.row().cell("dense (paper)").cell(
        time_trisolve<core::DenseReadyTable>(pool, l, r, rhs, y, procs, reps,
                                             work) * 1e6, 1);
    t.row().cell("padded").cell(
        time_trisolve<core::PaddedReadyTable>(pool, l, r, rhs, y, procs, reps,
                                              work) * 1e6, 1);
    t.row().cell("epoch-linear (before)").cell(
        time_trisolve<core::LinearEpochReadyTable>(pool, l, r, rhs, y, procs,
                                                   reps, work) * 1e6, 1);
    t.row().cell("epoch-strided (after)").cell(
        time_trisolve<core::EpochReadyTable>(pool, l, r, rhs, y, procs, reps,
                                             work) * 1e6, 1);
    t.print();
    std::printf(
        "\n'epoch-strided' is the production EpochReadyTable: slots are "
        "stride-hashed so 16 neighboring rows' flags no longer share one "
        "64-byte line (a producer's mark invalidated every neighbor's "
        "spin line under the linear layout). 'epoch-linear' keeps the "
        "pre-stride layout as the measured before.\n");
  }
  return 0;
}
