// kernel_micro — measures the vector kernel layer (DESIGN.md §14).
//
// The lane-parallel batch kernels treat the k columns of the
// wavefront-interleaved strip as SIMD lanes; this harness isolates their
// effect by timing the SAME single-threaded serial plan over the SAME
// packed factors with the kernel table pinned to scalar vs the
// dispatched vector ISA. Everything else — schedule, layout, strip
// walks — is identical, so the ratio is the kernels' contribution alone.
//
// Two factor sizes bound the regime: a cache-resident nine-point factor
// (the kernels are compute-limited) and one sized past the last-level
// cache (the packed streams are re-fetched from memory every solve, the
// regime the record padding and software prefetch target). k=1 rides
// along as a control: single-column batches never enter the lane
// kernels, so its ratio sits at 1.0 and any drift flags harness noise.
//
// Vector results are verified bitwise against scalar per column before
// any timing is trusted. `--json <path>` writes the table as a JSON
// artifact (CI publishes it as BENCH_kernel.json and gates the lane
// speedups via ci/perf_gate.py --kernel).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <numeric>

#include "benchsupport/env.hpp"
#include "benchsupport/table.hpp"
#include "benchsupport/timer.hpp"
#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/kernels.hpp"
#include "sparse/packed_stream.hpp"
#include "sparse/trisolve_plan.hpp"

namespace bench = pdx::bench;
namespace gen = pdx::gen;
namespace kn = pdx::sparse::kernels;
namespace rt = pdx::rt;
namespace sp = pdx::sparse;
using pdx::index_t;

namespace {

struct Row {
  const char* factor;  // "resident" | "spilled"
  index_t n = 0;
  std::size_t packed_bytes = 0;
  index_t k = 0;
  double us_scalar = 0.0;  // per batch solve
  double us_vector = 0.0;
};

// Bytes one batched solve streams: both packed factor slabs plus the b
// read, x write and one strip round-trip. Coarse — a bandwidth figure
// for the table, not a cache model.
double solve_bytes(std::size_t packed, index_t n, index_t k) {
  return static_cast<double>(packed) +
         3.0 * static_cast<double>(n) * static_cast<double>(k) * 8.0;
}

// One pass of the row kernel alone over a packed slab: every record's
// dependence list against a read-only source strip, targets in a second
// strip. This is the "*_kern" rows' workload — the lane-parallel kernel
// with the executors' lookahead-prefetch schedule on the vector side and
// the plain reference walk on the scalar side, with the division, the
// strip transposes and the dependence waits of a full solve all absent.
// The solve rows above measure those too; the kern rows isolate what the
// kernel layer itself buys.
void kernel_sweep(const sp::PackedFactorStream& stream,
                  const kn::LaneOps& ops, index_t n, index_t k, double* ts,
                  const double* xs) {
  auto cur = stream.cursor(0);
  if (ops.isa != kn::KernelIsa::kScalar && k >= kn::kLaneMin) {
    // Two records of lookahead: the fused kernel retires a row in less
    // time than a last-level-cache hit, so one record of distance leaves
    // the prefetches half-finished.
    sp::PackedRow r0 = n > 0 ? cur.next() : sp::PackedRow{};
    sp::PackedRow r1 = n > 1 ? cur.next() : sp::PackedRow{};
    for (index_t i = 0; i < n; ++i) {
      const sp::PackedRow nx = i + 2 < n ? cur.next() : sp::PackedRow{};
      for (index_t j = 0; j < nx.cnt; ++j) {
        const double* p = xs + nx.cols[j] * k;
        for (index_t o = 0; o < k; o += 8) kn::prefetch_read(p + o);
      }
      ops.row_axpy(ts + r0.row * k, r0.vals, r0.cols, r0.cnt, xs, k);
      r0 = r1;
      r1 = nx;
    }
  } else {
    for (index_t i = 0; i < n; ++i) {
      const sp::PackedRow r = cur.next();
      ops.row_axpy(ts + r.row * k, r.vals, r.cols, r.cnt, xs, k);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::cout << bench::environment_banner("kernel_micro (vector kernels)")
            << "\n";
  const int reps = bench::default_reps();
  // Resident: the whole packed pair fits in L2. Spilled: streams well
  // past a desktop LLC so every solve re-fetches them from memory.
  const index_t resident_grid = 48;
  const index_t spilled_grid = bench::quick_mode() ? 180 : 420;

  rt::ThreadPool pool(1);
  const index_t ks[] = {1, 8, 16};
  const index_t max_k = 16;

  std::printf("dispatched isa: %s\n\n", kn::to_string(kn::dispatched_isa()));

  bench::Table table({"factor", "rows", "packed(MB)", "k", "scalar(us)",
                      "vector(us)", "speedup", "Mrow/s vec", "GB/s vec"});
  std::vector<Row> rows;
  bool all_exact = true;

  struct Factor {
    const char* name;
    const char* kern_name;
    index_t grid;
  };
  for (const Factor fac :
       {Factor{"resident", "resident_kern", resident_grid},
        Factor{"spilled", "spilled_kern", spilled_grid}}) {
    const sp::IluFactors f = sp::ilu0(gen::nine_point(fac.grid, fac.grid));
    const index_t n = f.l.rows;

    auto make_plan = [&](kn::KernelChoice kc) {
      sp::PlanOptions o;
      o.nthreads = 1;
      o.strategy = sp::ExecutionStrategy::kSerial;
      o.layout = sp::PlanLayout::kPacked;
      o.kernel = kc;
      return std::make_unique<sp::TrisolvePlan>(pool, f.l, f.u, o);
    };
    auto scalar = make_plan(kn::KernelChoice::kScalar);
    auto vector = make_plan(kn::KernelChoice::kVector);
    scalar->reserve_batch(max_k);
    vector->reserve_batch(max_k);
    const std::size_t packed = scalar->packed_bytes();

    gen::SplitMix64 rng(17);
    std::vector<double> b(static_cast<std::size_t>(n * max_k));
    for (auto& v : b) v = rng.next_double(-1.0, 1.0);
    std::vector<double> x_s(b.size()), x_v(b.size());

    for (index_t k : ks) {
      const std::span<const double> bk(b.data(),
                                       static_cast<std::size_t>(n * k));
      auto run_scalar = [&] {
        scalar->solve_batch(bk,
                            std::span<double>(x_s.data(),
                                              static_cast<std::size_t>(n * k)),
                            k, sp::BatchMode::kWavefrontInterleaved);
      };
      auto run_vector = [&] {
        vector->solve_batch(bk,
                            std::span<double>(x_v.data(),
                                              static_cast<std::size_t>(n * k)),
                            k, sp::BatchMode::kWavefrontInterleaved);
      };

      // Bitwise gate before timing: the lane kernels promise per-column
      // identity with the scalar reference.
      run_scalar();
      run_vector();
      for (index_t i = 0; i < n * k; ++i) {
        if (x_s[static_cast<std::size_t>(i)] !=
            x_v[static_cast<std::size_t>(i)]) {
          all_exact = false;
          std::fprintf(stderr, "MISMATCH %s k=%lld at %lld\n", fac.name,
                       static_cast<long long>(k),
                       static_cast<long long>(i));
          break;
        }
      }

      const auto t_s = bench::time_samples(reps, 1, run_scalar);
      const auto t_v = bench::time_samples(reps, 1, run_vector);

      Row r;
      r.factor = fac.name;
      r.n = n;
      r.packed_bytes = packed;
      r.k = k;
      r.us_scalar = *std::min_element(t_s.begin(), t_s.end()) * 1e6;
      r.us_vector = *std::min_element(t_v.begin(), t_v.end()) * 1e6;
      rows.push_back(r);

      const double sec_v = r.us_vector * 1e-6;
      const double mrow =
          static_cast<double>(n) * static_cast<double>(k) / sec_v * 1e-6;
      const double gbs = solve_bytes(packed, n, k) / sec_v * 1e-9;
      table.row()
          .cell(fac.name)
          .cell(static_cast<long long>(n))
          .cell(static_cast<double>(packed) / (1024.0 * 1024.0), 2)
          .cell(static_cast<long long>(k))
          .cell(r.us_scalar, 1)
          .cell(r.us_vector, 1)
          .cell(r.us_scalar / (r.us_vector > 0 ? r.us_vector : 1e-300), 2)
          .cell(mrow, 2)
          .cell(gbs, 2);
    }

    // --- kernel-only rows (the acceptance numbers) ---------------------
    // Same packed L factor, one row_axpy pass per record against a
    // read-only source strip: the lane-parallel kernel with its prefetch
    // schedule, minus the division / strip transposes / record overheads
    // a full solve shares between both tables.
    sp::PackedFactorStream stream;
    std::vector<index_t> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), index_t{0});
    stream.prepare(f.l, /*diag_first=*/false, {order},
                   /*build_position_index=*/false);
    stream.pack(0);
    const std::size_t kern_packed = stream.bytes();

    std::vector<double> src_strip(static_cast<std::size_t>(n * max_k));
    for (auto& v : src_strip) v = rng.next_double(-1.0, 1.0);
    std::vector<double> tgt0(static_cast<std::size_t>(n * max_k));
    for (auto& v : tgt0) v = rng.next_double(-1.0, 1.0);
    const kn::LaneOps& sc_ops = kn::scalar_ops();
    const kn::LaneOps& vc_ops = kn::dispatched_ops();

    for (index_t k : ks) {
      const std::size_t nk = static_cast<std::size_t>(n * k);
      std::vector<double> t_s(tgt0.begin(), tgt0.begin() + nk);
      std::vector<double> t_v(t_s);
      kernel_sweep(stream, sc_ops, n, k, t_s.data(), src_strip.data());
      kernel_sweep(stream, vc_ops, n, k, t_v.data(), src_strip.data());
      for (std::size_t i = 0; i < nk; ++i) {
        if (t_s[i] != t_v[i]) {
          all_exact = false;
          std::fprintf(stderr, "MISMATCH %s k=%lld at %zu\n", fac.kern_name,
                       static_cast<long long>(k), i);
          break;
        }
      }

      std::vector<double> scratch(tgt0.begin(), tgt0.begin() + nk);
      const auto t_ks = bench::time_samples(reps, 1, [&] {
        kernel_sweep(stream, sc_ops, n, k, scratch.data(), src_strip.data());
      });
      const auto t_kv = bench::time_samples(reps, 1, [&] {
        kernel_sweep(stream, vc_ops, n, k, scratch.data(), src_strip.data());
      });

      Row r;
      r.factor = fac.kern_name;
      r.n = n;
      r.packed_bytes = kern_packed;
      r.k = k;
      r.us_scalar = *std::min_element(t_ks.begin(), t_ks.end()) * 1e6;
      r.us_vector = *std::min_element(t_kv.begin(), t_kv.end()) * 1e6;
      rows.push_back(r);

      const double sec_v = r.us_vector * 1e-6;
      table.row()
          .cell(fac.kern_name)
          .cell(static_cast<long long>(n))
          .cell(static_cast<double>(kern_packed) / (1024.0 * 1024.0), 2)
          .cell(static_cast<long long>(k))
          .cell(r.us_scalar, 1)
          .cell(r.us_vector, 1)
          .cell(r.us_scalar / (r.us_vector > 0 ? r.us_vector : 1e-300), 2)
          .cell(static_cast<double>(n) * static_cast<double>(k) / sec_v *
                    1e-6,
                2)
          .cell(solve_bytes(kern_packed, n, k) / sec_v * 1e-9, 2);
    }
  }
  table.print();
  std::printf(
      "\nOne serial thread, wavefront-interleaved batches, packed layout; "
      "'speedup' is scalar/vector per-batch time (k=1 is a no-lane "
      "control). Bitwise check vs scalar kernels: %s.\n",
      all_exact ? "exact" : "FAILED");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"kernel_micro\",\n"
        << "  \"isa\": \"" << kn::to_string(kn::dispatched_isa()) << "\",\n"
        << "  \"lane_min\": " << kn::kLaneMin << ",\n"
        << "  \"bitwise_exact\": " << (all_exact ? "true" : "false")
        << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      const double sec_s = r.us_scalar * 1e-6;
      const double sec_v = r.us_vector * 1e-6;
      const double nk = static_cast<double>(r.n) * static_cast<double>(r.k);
      out << "    {\"factor\": \"" << r.factor << "\", \"rows\": " << r.n
          << ", \"packed_bytes\": " << r.packed_bytes << ", \"k\": " << r.k
          << ", \"us_scalar\": " << r.us_scalar
          << ", \"us_vector\": " << r.us_vector
          << ", \"rows_per_s_scalar\": " << (sec_s > 0 ? nk / sec_s : 0.0)
          << ", \"rows_per_s_vector\": " << (sec_v > 0 ? nk / sec_v : 0.0)
          << ", \"gb_per_s_scalar\": "
          << (sec_s > 0 ? solve_bytes(r.packed_bytes, r.n, r.k) / sec_s * 1e-9
                        : 0.0)
          << ", \"gb_per_s_vector\": "
          << (sec_v > 0 ? solve_bytes(r.packed_bytes, r.n, r.k) / sec_v * 1e-9
                        : 0.0)
          << ", \"lane_speedup\": "
          << r.us_scalar / (r.us_vector > 0 ? r.us_vector : 1e-300) << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return all_exact ? 0 : 1;
}
