// ablation_schedule — executor scheduling policy (E6): static-block vs
// static-cyclic vs dynamic self-scheduling, on both paper workloads.
//
// The paper "schedules iterations of a loop among processors" without
// fixing a policy; this ablation shows why the choice matters. On the
// Fig. 4 loop with even L (dependence distance L/2 - j), a blocked split
// serializes chains inside each block boundary region, while cyclic
// spreads consecutive iterations across processors so each waits on a
// *different* processor's just-finished work. On triangular solves,
// dynamic self-scheduling adapts to the skewed row costs.
#include <cstdio>
#include <iostream>
#include <vector>

#include "benchsupport/env.hpp"
#include "benchsupport/stats.hpp"
#include "benchsupport/table.hpp"
#include "benchsupport/timer.hpp"
#include "core/doacross.hpp"
#include "gen/stencil.hpp"
#include "gen/rng.hpp"
#include "gen/testloop.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/par_trisolve.hpp"
#include "sparse/trisolve.hpp"

namespace bench = pdx::bench;
namespace core = pdx::core;
namespace gen = pdx::gen;
namespace rt = pdx::rt;
namespace sp = pdx::sparse;
using pdx::index_t;

int main() {
  std::cout << bench::environment_banner("ablation_schedule (design E6)")
            << "\n";
  const unsigned procs = bench::default_procs();
  const int reps = bench::default_reps();
  rt::ThreadPool pool(procs);

  const std::vector<std::pair<const char*, rt::Schedule>> policies = {
      {"static-block", rt::Schedule::static_block()},
      {"static-cyclic/1", rt::Schedule::static_cyclic(1)},
      {"static-cyclic/16", rt::Schedule::static_cyclic(16)},
      {"dynamic/default", rt::Schedule::dynamic(0)},
      {"dynamic/4", rt::Schedule::dynamic(4)},
  };

  // Workload 1: Fig. 4 loop, even L (true dependences at distance <= 3).
  {
    const index_t n = bench::quick_mode() ? 4000 : 10000;
    const gen::TestLoop tl =
        gen::make_test_loop({.n = n, .m = 5, .l = 8, .work_reps = 16});
    std::vector<double> y = gen::make_initial_y(tl);
    core::DoacrossEngine<double> eng(pool, tl.value_space);

    std::printf("\nFig. 4 loop (N=%lld, M=5, L=8, work_reps=16):\n",
                static_cast<long long>(n));
    bench::Table table({"schedule", "T(ms)", "wait episodes", "wait rounds"});
    for (const auto& [name, sched] : policies) {
      core::DoacrossOptions opts;
      opts.nthreads = procs;
      opts.schedule = sched;
      double best = 1e300;
      core::DoacrossStats bs;
      for (int r = 0; r < reps + 1; ++r) {
        y = tl.y0;
        const auto s = eng.run(std::span<const index_t>(tl.a),
                               std::span<double>(y),
                               [&tl](auto& it) { gen::test_loop_body(tl, it); },
                               opts);
        if (r > 0 && s.total_seconds() < best) {
          best = s.total_seconds();
          bs = s;
        }
      }
      table.row()
          .cell(name)
          .cell(best * 1e3, 3)
          .cell(static_cast<long long>(bs.wait_episodes))
          .cell(static_cast<long long>(bs.wait_rounds));
    }
    table.print();
  }

  // Workload 2: 7-PT ILU(0) lower solve.
  {
    const sp::Csr l = sp::ilu0(bench::quick_mode()
                                   ? gen::seven_point(10, 10, 10)
                                   : gen::matrix_7pt())
                          .l;
    gen::SplitMix64 rng(3);
    std::vector<double> rhs(static_cast<std::size_t>(l.rows));
    for (auto& v : rhs) v = rng.next_double(-1.0, 1.0);
    std::vector<double> y(static_cast<std::size_t>(l.rows));
    core::DenseReadyTable ready(l.rows);

    std::printf("\n7-PT ILU(0) lower solve (n=%lld):\n",
                static_cast<long long>(l.rows));
    bench::Table table({"schedule", "T(us)", "wait episodes", "wait rounds"});
    for (const auto& [name, sched] : policies) {
      sp::TrisolveOptions opts;
      opts.nthreads = procs;
      opts.schedule = sched;
      double best = 1e300;
      core::DoacrossStats bs;
      for (int r = 0; r < reps + 2; ++r) {
        const auto s = sp::trisolve_doacross(pool, l, rhs, y, ready, opts);
        if (r > 1 && s.total_seconds() < best) {
          best = s.total_seconds();
          bs = s;
        }
      }
      table.row()
          .cell(name)
          .cell(best * 1e6, 1)
          .cell(static_cast<long long>(bs.wait_episodes))
          .cell(static_cast<long long>(bs.wait_rounds));
    }
    table.print();
  }
  return 0;
}
