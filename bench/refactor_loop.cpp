// refactor_loop — measures the time-stepping claim behind FactorPlan and
// TrisolvePlan::refresh_values.
//
// In implicit time integration the matrix VALUES change every step while
// the PATTERN does not. Before this pair existed, every step paid the
// full preprocessing bill again:
//
//   rebuild — sequential ilu0() (allocating fresh factors) plus a
//             complete TrisolvePlan build: strategy measurement,
//             doconsider levels, flag tables, packed-stream layout and
//             first-touch packing. Today's path.
//   planned — FactorPlan::factorize (parallel, zero-allocation numeric
//             factorization into the existing factors — the symbolic
//             phase ran once, off the clock) plus refresh_values (one
//             value-only sweep of the packed slabs). The doacross thesis
//             applied to the preprocessing itself.
//
// Both paths produce bitwise identical factors and solves (gated here).
// Reported per thread count on the 3D stencil ILU factor: microseconds
// for each phase, the factor and refresh speedups, and end-to-end
// steps/sec for a refactor+solve step. `--json <path>` writes the table
// as a JSON artifact (CI publishes it as BENCH_refactor.json and
// ci/perf_gate.py gates the in-run speedup ratios against
// ci/baselines/).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "benchsupport/env.hpp"
#include "benchsupport/table.hpp"
#include "benchsupport/timer.hpp"
#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/factor_plan.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/trisolve_plan.hpp"

namespace bench = pdx::bench;
namespace core = pdx::core;
namespace gen = pdx::gen;
namespace rt = pdx::rt;
namespace sp = pdx::sparse;
using pdx::index_t;

namespace {

struct Row {
  unsigned threads;
  double us_factor_seq;
  double us_factor_planned;
  double us_plan_build;
  double us_refresh;
  double steps_rebuild;  // steps/sec, ilu0 + plan rebuild + solve
  double steps_planned;  // steps/sec, factorize + refresh + solve
  std::string factor_strategy;
};

/// Time-step t's matrix values: same pattern, smoothly perturbed values,
/// diagonal dominance preserved so the ILU pivots stay healthy.
void evolve_values(const sp::Csr& base, sp::Csr& a, double t) {
  for (std::size_t k = 0; k < a.val.size(); ++k) {
    a.val[k] = base.val[k] *
               (1.0 + 0.2 * std::sin(0.7 * static_cast<double>(k) + t));
  }
}

bool same_values(const sp::IluFactors& x, const sp::IluFactors& y) {
  return x.l.val == y.l.val && x.u.val == y.u.val;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::cout << bench::environment_banner(
                   "refactor_loop (numeric factorization + value refresh)")
            << "\n";
  const unsigned max_procs = bench::default_procs();
  const int reps = bench::default_reps();
  // The 3D stencil factor of the acceptance target; quick mode shrinks it
  // so CI finishes, full mode runs the 128^3-class problem.
  const int g = bench::quick_mode() ? 40 : 128;
  const sp::Csr base = gen::seven_point(g, g, g);
  sp::Csr a = base;
  const index_t n = base.rows;

  gen::SplitMix64 rng(11);
  std::vector<double> rhs(static_cast<std::size_t>(n));
  for (auto& v : rhs) v = rng.next_double(-1.0, 1.0);
  std::vector<double> z(static_cast<std::size_t>(n));

  rt::ThreadPool pool(max_procs);
  std::vector<unsigned> thread_counts{1};
  if (max_procs >= 2) thread_counts.push_back(2);
  if (max_procs >= 4) thread_counts.push_back(4);
  if (max_procs > 4) thread_counts.push_back(max_procs);

  bench::Table table({"threads", "ilu0(us)", "factorize(us)", "factor-x",
                      "plan-build(us)", "refresh(us)", "refresh-x",
                      "steps/s rebuild", "steps/s planned", "strategy"});
  std::vector<Row> rows;
  bool all_exact = true;

  for (unsigned nth : thread_counts) {
    sp::FactorPlanOptions fopts;
    fopts.nthreads = nth;
    sp::FactorPlan fact(pool, base, fopts);
    sp::IluFactors f = fact.allocate_factors();
    sp::PlanOptions popts;
    popts.nthreads = nth;
    evolve_values(base, a, 0.0);
    fact.factorize(a, f);
    sp::TrisolvePlan plan(pool, f.l, f.u, popts);

    // Bitwise gates: the planned factorization reproduces ilu0() exactly,
    // and a refreshed plan solves exactly like a rebuilt one.
    {
      evolve_values(base, a, 1.0);
      const sp::IluFactors ref = sp::ilu0(a);
      fact.factorize(a, f);
      all_exact = all_exact && same_values(ref, f);
      plan.refresh_values(f);
      sp::TrisolvePlan rebuilt(pool, f.l, f.u, popts);
      std::vector<double> z2(static_cast<std::size_t>(n));
      plan.solve(rhs, z);
      rebuilt.solve(rhs, z2);
      all_exact = all_exact && z == z2;
    }

    // Phase timings. The factor phases time ONLY the factorization (the
    // value assembly runs outside the clock — it is identical for both
    // paths and would otherwise compress the gated ratio toward 1); the
    // end-to-end step timings below include it, since a real step pays
    // it.
    double step_t = 2.0;
    auto evolve = [&] { evolve_values(base, a, step_t += 0.1); };

    evolve();
    const auto t_seq = bench::time_samples(reps, 1, [&] {
      const sp::IluFactors ref = sp::ilu0(a);
      (void)ref;
    });
    evolve();
    const auto t_planned =
        bench::time_samples(reps, 1, [&] { fact.factorize(a, f); });
    const auto t_build = bench::time_samples(reps, 1, [&] {
      std::optional<sp::TrisolvePlan> p;
      p.emplace(pool, f.l, f.u, popts);
    });
    const auto t_refresh =
        bench::time_samples(reps, 1, [&] { plan.refresh_values(f); });

    // End-to-end step: adopt new values, refactor, one preconditioned
    // solve (stand-in for the Krylov drain both paths share).
    const auto t_step_rebuild = bench::time_samples(reps, 1, [&] {
      evolve();
      const sp::IluFactors ref = sp::ilu0(a);
      sp::TrisolvePlan p(pool, ref.l, ref.u, popts);
      p.solve(rhs, z);
    });
    const auto t_step_planned = bench::time_samples(reps, 1, [&] {
      evolve();
      fact.factorize(a, f);
      plan.refresh_values(f);
      plan.solve(rhs, z);
    });

    const auto us_min = [](const std::vector<double>& v) {
      return *std::min_element(v.begin(), v.end()) * 1e6;
    };
    Row r;
    r.threads = nth;
    r.us_factor_seq = us_min(t_seq);
    r.us_factor_planned = us_min(t_planned);
    r.us_plan_build = us_min(t_build);
    r.us_refresh = us_min(t_refresh);
    r.steps_rebuild = 1e6 / us_min(t_step_rebuild);
    r.steps_planned = 1e6 / us_min(t_step_planned);
    r.factor_strategy = core::to_string(fact.strategy());
    rows.push_back(r);

    table.row()
        .cell(nth)
        .cell(r.us_factor_seq, 1)
        .cell(r.us_factor_planned, 1)
        .cell(r.us_factor_seq / r.us_factor_planned, 2)
        .cell(r.us_plan_build, 1)
        .cell(r.us_refresh, 1)
        .cell(r.us_plan_build / r.us_refresh, 2)
        .cell(r.steps_rebuild, 1)
        .cell(r.steps_planned, 1)
        .cell(r.factor_strategy);
  }
  table.print();
  std::printf(
      "\n'factor-x' is sequential ilu0 / planned parallel factorization "
      "time (same values, bitwise identical factors); 'refresh-x' is full "
      "TrisolvePlan rebuild / value-only refresh_values. steps/s runs the "
      "whole per-step pipeline: new values -> factor -> plan -> one "
      "preconditioner application. Bitwise check: %s.\n",
      all_exact ? "exact" : "FAILED");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"refactor_loop\",\n"
        << "  \"grid\": " << g << ",\n  \"rows\": " << n
        << ",\n  \"bitwise_exact\": " << (all_exact ? "true" : "false")
        << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      out << "    {\"threads\": " << r.threads
          << ", \"us_factor_seq\": " << r.us_factor_seq
          << ", \"us_factor_planned\": " << r.us_factor_planned
          << ", \"factor_speedup\": " << r.us_factor_seq / r.us_factor_planned
          << ", \"us_plan_build\": " << r.us_plan_build
          << ", \"us_refresh\": " << r.us_refresh
          << ", \"refresh_speedup\": " << r.us_plan_build / r.us_refresh
          << ", \"steps_per_sec_rebuild\": " << r.steps_rebuild
          << ", \"steps_per_sec_planned\": " << r.steps_planned
          << ", \"steps_speedup\": " << r.steps_planned / r.steps_rebuild
          << ", \"factor_strategy\": \"" << r.factor_strategy << "\"}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return all_exact ? 0 : 1;
}
