// batch_solve — measures the batched multi-RHS execution layer.
//
// Serving many right-hand sides against one factorization is the repeated
// case the batched layer exists for. This harness compares, per (threads,
// k) configuration, three ways of pushing k RHS through the same
// TrisolvePlan:
//
//   sequential  — k solve() calls: k pool dispatches, k full fused L+U
//                 doacrosses (the PR 1 baseline a server would run today).
//   batch-cols  — solve_batch kColumnSequential: ONE dispatch; thread 0
//                 re-arms the epoch tables between columns in-region.
//   batch-ilv   — solve_batch kWavefrontInterleaved: ONE dispatch, ONE
//                 doacross per factor; each row carries all k columns, so
//                 synchronization is amortized k-fold and each matrix row
//                 is read once per batch.
//
// Every batched result is verified bitwise against the sequential solves
// before timing. `--json <path>` additionally writes the table as a JSON
// artifact (CI publishes it as BENCH_batch.json).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "benchsupport/env.hpp"
#include "benchsupport/table.hpp"
#include "benchsupport/timer.hpp"
#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/trisolve_plan.hpp"

namespace bench = pdx::bench;
namespace gen = pdx::gen;
namespace rt = pdx::rt;
namespace sp = pdx::sparse;
using pdx::index_t;

namespace {

struct Row {
  unsigned threads;
  index_t k;
  double us_seq;   // per RHS
  double us_cols;  // per RHS
  double us_ilv;   // per RHS
  std::uint64_t disp_seq;
  std::uint64_t disp_batch;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::cout << bench::environment_banner("batch_solve (multi-RHS batching)")
            << "\n";
  const unsigned max_procs = bench::default_procs();
  const int reps = bench::default_reps();
  const int grid = bench::quick_mode() ? 40 : 80;

  const sp::Csr a = gen::five_point(grid, grid);
  const sp::IluFactors f = sp::ilu0(a);
  const index_t n = f.l.rows;

  rt::ThreadPool pool(max_procs);
  std::vector<unsigned> thread_counts{1};
  if (max_procs >= 2) thread_counts.push_back(2);
  if (max_procs > 2) thread_counts.push_back(max_procs);

  const index_t ks[] = {1, 4, 8, 16, 32};
  const index_t max_k = 32;

  gen::SplitMix64 rng(11);
  std::vector<double> b(static_cast<std::size_t>(n * max_k));
  for (auto& v : b) v = rng.next_double(-1.0, 1.0);
  std::vector<double> x_seq(b.size()), x_batch(b.size());

  bench::Table table({"threads", "k", "seq(us/rhs)", "batch-cols(us/rhs)",
                      "batch-ilv(us/rhs)", "speedup-cols", "speedup-ilv",
                      "dispatches seq", "dispatches batch"});
  std::vector<Row> rows;
  bool all_exact = true;
  sp::PlanLayout layout = sp::PlanLayout::kPacked;  // resolved below

  for (unsigned nth : thread_counts) {
    sp::PlanOptions popts;
    popts.nthreads = nth;
    sp::TrisolvePlan plan(pool, f.l, f.u, popts);
    plan.reserve_batch(max_k);
    layout = plan.layout();

    for (index_t k : ks) {
      auto seq_apply = [&] {
        for (index_t c = 0; c < k; ++c) {
          plan.solve(std::span<const double>(b.data() + c * n,
                                             static_cast<std::size_t>(n)),
                     std::span<double>(x_seq.data() + c * n,
                                       static_cast<std::size_t>(n)));
        }
      };
      auto batch_apply = [&](sp::BatchMode mode) {
        plan.solve_batch(std::span<const double>(b.data(),
                                                 static_cast<std::size_t>(n * k)),
                         std::span<double>(x_batch.data(),
                                           static_cast<std::size_t>(n * k)),
                         k, mode);
      };

      // Correctness gate: both batch modes bitwise-match the k sequential
      // solves before any timing is trusted.
      seq_apply();
      for (sp::BatchMode mode : {sp::BatchMode::kColumnSequential,
                                 sp::BatchMode::kWavefrontInterleaved}) {
        std::fill(x_batch.begin(),
                  x_batch.begin() + static_cast<std::ptrdiff_t>(n * k), 0.0);
        batch_apply(mode);
        for (index_t i = 0; i < n * k; ++i) {
          if (x_seq[static_cast<std::size_t>(i)] !=
              x_batch[static_cast<std::size_t>(i)]) {
            all_exact = false;
            std::fprintf(stderr,
                         "MISMATCH nth=%u k=%lld mode=%d at %lld\n", nth,
                         static_cast<long long>(k), static_cast<int>(mode),
                         static_cast<long long>(i));
            break;
          }
        }
      }

      rt::DispatchProbe probe(pool);
      seq_apply();
      const std::uint64_t disp_seq = probe.delta();
      probe.rebase();
      batch_apply(sp::BatchMode::kWavefrontInterleaved);
      const std::uint64_t disp_batch = probe.delta();

      const auto t_seq = bench::time_samples(reps, 1, seq_apply);
      const auto t_cols = bench::time_samples(reps, 1, [&] {
        batch_apply(sp::BatchMode::kColumnSequential);
      });
      const auto t_ilv = bench::time_samples(reps, 1, [&] {
        batch_apply(sp::BatchMode::kWavefrontInterleaved);
      });

      const double kd = static_cast<double>(k);
      Row r;
      r.threads = nth;
      r.k = k;
      r.us_seq =
          *std::min_element(t_seq.begin(), t_seq.end()) / kd * 1e6;
      r.us_cols =
          *std::min_element(t_cols.begin(), t_cols.end()) / kd * 1e6;
      r.us_ilv =
          *std::min_element(t_ilv.begin(), t_ilv.end()) / kd * 1e6;
      r.disp_seq = disp_seq;
      r.disp_batch = disp_batch;
      rows.push_back(r);

      table.row()
          .cell(nth)
          .cell(static_cast<long long>(k))
          .cell(r.us_seq, 1)
          .cell(r.us_cols, 1)
          .cell(r.us_ilv, 1)
          .cell(r.us_seq / (r.us_cols > 0 ? r.us_cols : 1e-300), 2)
          .cell(r.us_seq / (r.us_ilv > 0 ? r.us_ilv : 1e-300), 2)
          .cell(static_cast<unsigned>(disp_seq))
          .cell(static_cast<unsigned>(disp_batch));
    }
  }
  table.print();
  std::printf(
      "\nPer-RHS wall time; 'speedup-*' is sequential/batched throughput. A "
      "batch is ONE pool dispatch in either mode (k for sequential). "
      "Bitwise check vs sequential solves: %s.\n",
      all_exact ? "exact" : "FAILED");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"batch_solve\",\n"
        << "  \"grid\": " << grid << ",\n  \"rows\": " << n << ",\n"
        << "  \"bitwise_exact\": " << (all_exact ? "true" : "false")
        << ",\n  \"layout\": \"" << sp::to_string(layout)
        << "\",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      out << "    {\"threads\": " << r.threads << ", \"k\": " << r.k
          << ", \"us_per_rhs_seq\": " << r.us_seq
          << ", \"us_per_rhs_batch_cols\": " << r.us_cols
          << ", \"us_per_rhs_batch_ilv\": " << r.us_ilv
          << ", \"speedup_cols\": "
          << r.us_seq / (r.us_cols > 0 ? r.us_cols : 1e-300)
          << ", \"speedup_ilv\": "
          << r.us_seq / (r.us_ilv > 0 ? r.us_ilv : 1e-300)
          << ", \"dispatches_seq\": " << r.disp_seq
          << ", \"dispatches_batch\": " << r.disp_batch << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return all_exact ? 0 : 1;
}
