// fig6_test_loop — reproduces Figure 6: "Effect of Loop Parameters on
// Efficiency of Preprocessed Doacross".
//
// Workload: the Fig. 4 test loop with N = 10000, a(i) = 2i,
// nbrs(j) = 2j - L, M in {1, 5}, L swept 1..14, on min(16, cores)
// processors (override with PDX_THREADS).
//
// Paper expectations (Encore Multimax/320, 16 procs):
//   * odd L  -> no cross-iteration dependences; efficiency is the flat
//     overhead floor (~0.33 for M=1, ~0.50 for M=5);
//   * even L -> efficiency rises monotonically with L (dependence
//     distance L/2 - j grows, so executors wait less).
//
// A modern core performs the loop's ~N*M flops thousands of times faster
// than a 13 MHz APC/02, which deflates all efficiencies at work_reps = 0;
// the work_reps column scales per-iteration work back toward the paper's
// work/synchronization ratio without touching any dependence. Both series
// are printed; EXPERIMENTS.md records the shape comparison.
#include <cstdio>
#include <iostream>
#include <vector>

#include "benchsupport/env.hpp"
#include "benchsupport/stats.hpp"
#include "benchsupport/table.hpp"
#include "benchsupport/timer.hpp"
#include "core/doacross.hpp"
#include "gen/testloop.hpp"
#include "runtime/thread_pool.hpp"

namespace bench = pdx::bench;
namespace core = pdx::core;
namespace gen = pdx::gen;
namespace rt = pdx::rt;
using pdx::index_t;

namespace {

struct Measurement {
  double t_seq = 0.0;
  double t_par = 0.0;
  double efficiency = 0.0;
  std::uint64_t wait_episodes = 0;
};

Measurement measure(rt::ThreadPool& pool, const gen::TestLoopParams& params,
                    unsigned procs, int reps) {
  const gen::TestLoop tl = gen::make_test_loop(params);
  Measurement m;

  std::vector<double> y = gen::make_initial_y(tl);
  m.t_seq = bench::summarize(bench::time_samples(reps, /*warmup=*/1, [&] {
              y = tl.y0;
              gen::run_test_loop_seq(tl, y);
            })).min;

  core::DoacrossEngine<double> eng(pool, tl.value_space);
  core::DoacrossOptions opts;
  opts.nthreads = procs;
  opts.schedule = rt::Schedule::static_cyclic(1);
  core::DoacrossStats last;
  m.t_par = bench::summarize(bench::time_samples(reps, /*warmup=*/1, [&] {
              y = tl.y0;
              last = eng.run(std::span<const index_t>(tl.a),
                             std::span<double>(y),
                             [&tl](auto& it) { gen::test_loop_body(tl, it); },
                             opts);
            })).min;
  m.efficiency = bench::parallel_efficiency(m.t_seq, m.t_par, procs);
  m.wait_episodes = last.wait_episodes;
  return m;
}

void run_series(rt::ThreadPool& pool, index_t n, int work_reps, unsigned procs,
                int reps) {
  std::printf("\nFigure 6 series: N=%lld, procs=%u, work_reps=%d\n",
              static_cast<long long>(n), procs, work_reps);
  bench::Table table({"L", "deps", "M=1 eff", "M=1 Tpar(ms)", "M=5 eff",
                      "M=5 Tpar(ms)", "M=5 waits"});
  for (int l = 1; l <= 14; ++l) {
    const Measurement m1 =
        measure(pool, {.n = n, .m = 1, .l = l, .work_reps = work_reps}, procs,
                reps);
    const Measurement m5 =
        measure(pool, {.n = n, .m = 5, .l = l, .work_reps = work_reps}, procs,
                reps);
    const char* kind = (l % 2 == 1) ? "none" : "true";
    table.row()
        .cell(l)
        .cell(kind)
        .cell(m1.efficiency, 3)
        .cell(m1.t_par * 1e3, 3)
        .cell(m5.efficiency, 3)
        .cell(m5.t_par * 1e3, 3)
        .cell(static_cast<long long>(m5.wait_episodes));
  }
  table.print();
}

}  // namespace

int main() {
  std::cout << bench::environment_banner("fig6_test_loop (paper Figure 6)")
            << "\n";
  const unsigned procs = bench::default_procs();
  const int reps = bench::default_reps();
  rt::ThreadPool pool(procs);

  const index_t n = bench::quick_mode() ? 2000 : 10000;

  // Series 1 [RAW]: the paper's exact parameters at native per-iteration
  // cost. On a 13 MHz Multimax this loop ran hundreds of milliseconds; on
  // a modern core it runs in microseconds, so dispatch noise and memory
  // traffic dominate — kept for the record.
  run_series(pool, n, /*work_reps=*/0, procs, reps);

  // Series 2 [MULTIMAX-EMULATED, headline]: per-read work scaled toward
  // the 1990 work/synchronization ratio. The paper's shape emerges here:
  // flat odd-L floors (M=5 above M=1), even-L below them and rising
  // monotonically with L.
  run_series(pool, n, /*work_reps=*/bench::quick_mode() ? 16 : 64, procs,
             reps);

  // Series 3 [HEAVY EMULATION]: pushing the ratio further closes the gap
  // between the even-L curve and the odd-L floor, as on the Multimax,
  // where per-iteration work dwarfed the flag-handoff latency.
  run_series(pool, n, /*work_reps=*/bench::quick_mode() ? 128 : 512, procs,
             reps);

  std::cout << "\nShape checks (paper: odd-L flat floor; even-L below it, "
               "rising monotonically; M=5 floor above M=1 floor) are "
               "recorded in EXPERIMENTS.md.\n";
  return 0;
}
