// strategy_matrix — measures every plan execution strategy against every
// matrix family, and reports what Auto would have picked.
//
// The strategy layer (DESIGN.md §9) claims the best trisolve executor is
// a function of the factor's measured dependence structure. This harness
// makes the claim inspectable: for each matrix family (regular stencil,
// RCM-permuted stencil, a randomly scattered band, and the band RCM
// recovers from it) and thread count, it times a fused L+U solve under
// all four concrete strategies, verifies each is bitwise identical to
// the sequential solves before any timing is trusted, and runs the Auto
// plan's calibration race to lock-in (DESIGN.md §13) before timing its
// steady state — so the reported Auto number is the measured winner, and
// the JSON carries the full race (per-strategy best_us, epochs) next to
// the decision. The Auto strategy is additionally timed under
// PlanOptions::layout = kCsrView so the packed-stream contribution
// (DESIGN.md §10) is separated from the strategy choice;
// ci/perf_gate.py gates Auto against the best measured strategy per
// cell and watches the layout ratio.
//
// `--json <path>` writes the table as a JSON artifact (CI publishes it
// as BENCH_strategy.json).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "benchsupport/env.hpp"
#include "benchsupport/table.hpp"
#include "benchsupport/timer.hpp"
#include "core/advisor.hpp"
#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/permute.hpp"
#include "sparse/rcm.hpp"
#include "sparse/trisolve.hpp"
#include "sparse/trisolve_plan.hpp"

namespace bench = pdx::bench;
namespace core = pdx::core;
namespace gen = pdx::gen;
namespace rt = pdx::rt;
namespace sp = pdx::sparse;
using pdx::index_t;
using sp::ExecutionStrategy;

namespace {

struct Workload {
  std::string name;
  sp::Csr a;
};

struct Row {
  std::string matrix;
  unsigned threads;
  ExecutionStrategy strategy;
  double us_per_solve;
  bool chosen_by_auto;
  std::string rationale;   // only for the auto row
  double us_csrview = 0;   // auto row: same strategy under kCsrView
  double layout_speedup = 0;  // auto row: csr-view / packed
  // Auto row only: the calibration race record (DESIGN.md §13).
  bool calibrated = false;
  bool cache_hit = false;
  int exploration_epochs = 0;
  std::vector<core::StrategyTiming> race;
};

std::vector<index_t> random_perm(index_t n, std::uint64_t seed) {
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  gen::SplitMix64 rng(seed);
  for (index_t i = n - 1; i > 0; --i) {
    const index_t j = static_cast<index_t>(
        rng.next() % static_cast<std::uint64_t>(i + 1));
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

sp::Csr banded(index_t n, index_t gap) {
  sp::CsrBuilder b(n, n);
  for (index_t i = 0; i < n; ++i) {
    if (i >= gap) b.add(i, i - gap, -1.0);
    b.add(i, i, 8.0);
    if (i + gap < n) b.add(i, i + gap, -1.0);
  }
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::cout << bench::environment_banner(
                   "strategy_matrix (plan execution strategies)")
            << "\n";
  const unsigned max_procs = bench::default_procs();
  const int reps = bench::default_reps();
  const int grid = bench::quick_mode() ? 32 : 64;
  const index_t band_n = bench::quick_mode() ? 1500 : 6000;

  std::vector<Workload> workloads;
  workloads.push_back({"stencil-5pt", gen::five_point(grid, grid)});
  {
    const sp::Csr a = gen::five_point(grid, grid);
    workloads.push_back(
        {"stencil-rcm", sp::permute_symmetric(a, sp::rcm_order(a))});
  }
  {
    const sp::Csr b = banded(band_n, 4);
    const sp::Csr scattered =
        sp::permute_symmetric(b, random_perm(band_n, 17));
    workloads.push_back({"band-scattered", scattered});
    workloads.push_back(
        {"band-rcm",
         sp::permute_symmetric(scattered, sp::rcm_order(scattered))});
  }

  rt::ThreadPool pool(max_procs);
  std::vector<unsigned> thread_counts{1};
  if (max_procs >= 2) thread_counts.push_back(2);
  if (max_procs > 2) thread_counts.push_back(max_procs);

  constexpr ExecutionStrategy kConcrete[] = {
      ExecutionStrategy::kSerial, ExecutionStrategy::kDoacross,
      ExecutionStrategy::kLevelBarrier, ExecutionStrategy::kBlockedHybrid};

  bench::Table table({"matrix", "threads", "serial(us)", "doacross(us)",
                      "level-barrier(us)", "blocked(us)", "auto picks",
                      "auto(us)", "auto csr-view(us)", "layout speedup"});
  std::vector<Row> rows;
  bool all_exact = true;

  for (const Workload& w : workloads) {
    const sp::IluFactors f = sp::ilu0(w.a);
    const index_t n = f.l.rows;
    gen::SplitMix64 rng(5);
    std::vector<double> rhs(static_cast<std::size_t>(n));
    for (auto& v : rhs) v = rng.next_double(-1.0, 1.0);
    std::vector<double> t(static_cast<std::size_t>(n)),
        z_seq(static_cast<std::size_t>(n)), z(static_cast<std::size_t>(n));
    sp::trisolve_lower_seq(f.l, rhs, t);
    sp::trisolve_upper_seq(f.u, t, z_seq);

    for (unsigned nth : thread_counts) {
      double us[4] = {0, 0, 0, 0};
      for (int s = 0; s < 4; ++s) {
        sp::PlanOptions opts;
        opts.nthreads = nth;
        opts.strategy = kConcrete[s];
        sp::TrisolvePlan plan(pool, f.l, f.u, opts);
        // Correctness gate before any timing is trusted.
        std::fill(z.begin(), z.end(), 0.0);
        plan.solve(rhs, z);
        for (index_t i = 0; i < n; ++i) {
          if (z[static_cast<std::size_t>(i)] !=
              z_seq[static_cast<std::size_t>(i)]) {
            all_exact = false;
            std::fprintf(stderr, "MISMATCH %s nth=%u %s row %lld\n",
                         w.name.c_str(), nth,
                         core::to_string(kConcrete[s]),
                         static_cast<long long>(i));
            break;
          }
        }
        const auto samples =
            bench::time_samples(reps, 1, [&] { plan.solve(rhs, z); });
        us[s] = *std::min_element(samples.begin(), samples.end()) * 1e6;
        rows.push_back({w.name, nth, kConcrete[s], us[s], false, ""});
      }

      // Each cell races from scratch: a warm process-wide cache would
      // otherwise answer later cells from earlier ones.
      core::tuning_cache().clear();
      sp::PlanOptions aopts;
      aopts.nthreads = nth;
      aopts.strategy = ExecutionStrategy::kAuto;
      sp::TrisolvePlan autoplan(pool, f.l, f.u, aopts);
      // Run the calibration race to lock-in (bitwise-gated like the
      // concrete strategies), then time only steady-state solves on the
      // measured winner.
      while (autoplan.calibrating()) autoplan.solve(rhs, z);
      for (index_t i = 0; i < n; ++i) {
        if (z[static_cast<std::size_t>(i)] !=
            z_seq[static_cast<std::size_t>(i)]) {
          all_exact = false;
          std::fprintf(stderr, "MISMATCH %s nth=%u auto row %lld\n",
                       w.name.c_str(), nth, static_cast<long long>(i));
          break;
        }
      }
      const auto auto_samples =
          bench::time_samples(reps, 1, [&] { autoplan.solve(rhs, z); });
      const double us_auto =
          *std::min_element(auto_samples.begin(), auto_samples.end()) * 1e6;
      // Same auto-chosen strategy through the caller's CSR instead of
      // the packed streams: the strategy/layout contributions separate.
      // The view plan hits the tuning cache the race just fed, so it
      // adopts the identical winner without re-racing.
      sp::PlanOptions vopts = aopts;
      vopts.layout = sp::PlanLayout::kCsrView;
      sp::TrisolvePlan viewplan(pool, f.l, f.u, vopts);
      while (viewplan.calibrating()) viewplan.solve(rhs, z);
      const auto view_samples =
          bench::time_samples(reps, 1, [&] { viewplan.solve(rhs, z); });
      const double us_view =
          *std::min_element(view_samples.begin(), view_samples.end()) * 1e6;
      Row auto_row{w.name,  nth,  autoplan.strategy(),
                   us_auto, true, autoplan.telemetry().rationale};
      auto_row.calibrated = autoplan.telemetry().race.calibrated;
      auto_row.cache_hit = autoplan.telemetry().race.cache_hit;
      auto_row.exploration_epochs =
          autoplan.telemetry().race.exploration_epochs;
      auto_row.race = autoplan.telemetry().race.timings;
      // Both plans resolved the same winner (measured, or heuristic when
      // the race is not viable); if they ever diverge the layout
      // comparison would be across strategies, so it is dropped rather
      // than reported.
      if (viewplan.strategy() == autoplan.strategy()) {
        auto_row.us_csrview = us_view;
        auto_row.layout_speedup = us_auto > 0 ? us_view / us_auto : 0.0;
      }
      rows.push_back(auto_row);
      for (Row& r : rows) {
        if (r.matrix == w.name && r.threads == nth && !r.chosen_by_auto &&
            r.strategy == autoplan.strategy()) {
          r.chosen_by_auto = true;
        }
      }

      table.row()
          .cell(w.name)
          .cell(nth)
          .cell(us[0], 1)
          .cell(us[1], 1)
          .cell(us[2], 1)
          .cell(us[3], 1)
          .cell(core::to_string(autoplan.strategy()))
          .cell(us_auto, 1)
          .cell(us_view, 1)
          .cell(auto_row.layout_speedup, 2);
    }
  }
  table.print();
  std::printf(
      "\nFused L+U solve wall time per strategy; 'auto picks' is the "
      "strategy the calibration race locked in (the heuristic advisor "
      "seeds the race; the stopwatch decides). Bitwise check vs "
      "sequential solves: %s.\n",
      all_exact ? "exact" : "FAILED");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"strategy_matrix\",\n"
        << "  \"bitwise_exact\": " << (all_exact ? "true" : "false")
        << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      out << "    {\"matrix\": \"" << r.matrix << "\", \"threads\": "
          << r.threads << ", \"strategy\": \"" << core::to_string(r.strategy)
          << "\", \"us_per_solve\": " << r.us_per_solve
          << ", \"chosen_by_auto\": " << (r.chosen_by_auto ? "true" : "false");
      if (!r.rationale.empty()) {
        out << ", \"rationale\": \"" << r.rationale << "\"";
      }
      if (r.chosen_by_auto && r.us_csrview > 0) {
        out << ", \"us_per_solve_csrview\": " << r.us_csrview
            << ", \"layout_speedup\": " << r.layout_speedup;
      }
      if (!r.rationale.empty()) {
        // The auto row: what calibration decided and the full race.
        out << ", \"chosen_after_calibration\": \""
            << core::to_string(r.strategy) << "\", \"calibrated\": "
            << (r.calibrated ? "true" : "false") << ", \"cache_hit\": "
            << (r.cache_hit ? "true" : "false")
            << ", \"exploration_epochs\": " << r.exploration_epochs;
        if (!r.race.empty()) {
          out << ", \"race\": [";
          for (std::size_t j = 0; j < r.race.size(); ++j) {
            out << (j ? ", " : "") << "{\"strategy\": \""
                << core::to_string(r.race[j].strategy)
                << "\", \"best_us\": " << r.race[j].best_us
                << ", \"epochs\": " << r.race[j].epochs << "}";
          }
          out << "]";
        }
      }
      out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return all_exact ? 0 : 1;
}
