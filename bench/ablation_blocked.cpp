// ablation_blocked — the §2.3 strip-mined variant (E4): time and arena
// memory as a function of strip size, against the unblocked engine.
//
// The paper's claim: strip-mining bounds the ready/ynew arena memory
// (reused per strip) at the price of extra barriers per strip. Expect
// times to approach the unblocked engine as the strip grows, and arena
// bytes to scale with the strip, not the value space.
#include <cstdio>
#include <iostream>
#include <vector>

#include "benchsupport/env.hpp"
#include "benchsupport/stats.hpp"
#include "benchsupport/table.hpp"
#include "benchsupport/timer.hpp"
#include "core/blocked_doacross.hpp"
#include "core/doacross.hpp"
#include "gen/testloop.hpp"
#include "runtime/thread_pool.hpp"

namespace bench = pdx::bench;
namespace core = pdx::core;
namespace gen = pdx::gen;
namespace rt = pdx::rt;
using pdx::index_t;

int main() {
  std::cout << bench::environment_banner("ablation_blocked (paper §2.3)")
            << "\n";
  const unsigned procs = bench::default_procs();
  const int reps = bench::default_reps();
  const index_t n = bench::quick_mode() ? 4000 : 20000;
  rt::ThreadPool pool(procs);

  const gen::TestLoop tl =
      gen::make_test_loop({.n = n, .m = 5, .l = 8, .work_reps = 16});
  std::vector<double> y = gen::make_initial_y(tl);

  // Unblocked engine baseline.
  core::DoacrossEngine<double> eng(pool, tl.value_space);
  core::DoacrossOptions opts;
  opts.nthreads = procs;
  const double t_full =
      bench::summarize(bench::time_samples(reps, 1, [&] {
        y = tl.y0;
        eng.run(std::span<const index_t>(tl.a), std::span<double>(y),
                [&tl](auto& it) { gen::test_loop_body(tl, it); }, opts);
      })).min;

  bench::Table table({"strip", "dense-iter T(ms)", "hash-iter T(ms)",
                      "vs unblocked", "strip arena KiB", "iter KiB (dense)",
                      "iter KiB (hash)"});
  core::BlockedDoacross<double> blk(pool, tl.value_space);
  core::CompactBlockedDoacross<double> cmp(pool, tl.value_space);
  core::BlockedOptions bopts;
  bopts.nthreads = procs;

  const std::vector<index_t> strips = {64, 256, 1024, 4096, n};
  for (index_t strip : strips) {
    const double t_blk =
        bench::summarize(bench::time_samples(reps, 1, [&] {
          y = tl.y0;
          blk.run(std::span<const index_t>(tl.a), std::span<double>(y),
                  [&tl](auto& it) { gen::test_loop_body(tl, it); }, strip,
                  bopts);
        })).min;
    const double t_cmp =
        bench::summarize(bench::time_samples(reps, 1, [&] {
          y = tl.y0;
          cmp.run(std::span<const index_t>(tl.a), std::span<double>(y),
                  [&tl](auto& it) { gen::test_loop_body(tl, it); }, strip,
                  bopts);
        })).min;
    table.row()
        .cell(static_cast<long long>(strip))
        .cell(t_blk * 1e3, 3)
        .cell(t_cmp * 1e3, 3)
        .cell(t_blk / t_full, 2)
        .cell(static_cast<double>(
                  core::BlockedDoacross<double>::strip_arena_bytes(strip)) /
                  1024.0,
              1)
        .cell(static_cast<double>(blk.iter_memory_bytes()) / 1024.0, 1)
        .cell(static_cast<double>(cmp.iter_memory_bytes()) / 1024.0, 1);
  }
  std::printf("\nUnblocked engine: %.3f ms (iter+ready+ynew arenas all "
              "value-space sized)\n",
              t_full * 1e3);
  table.print();
  return 0;
}
