#!/usr/bin/env python3
"""Perf-regression gate over the bench JSON artifacts.

Compares a fresh BENCH_plan.json / BENCH_strategy.json against the
committed baselines in ci/baselines/ and fails (exit 1) when
planned-solve throughput regressed by more than the tolerance
(default 15%, override with --tolerance or PDX_PERF_GATE_TOLERANCE).

CI runners differ wildly in absolute speed, so the gate never compares
microseconds. It compares *ratios measured within one run* — numbers
that already divide out the machine:

  plan.speedup          unplanned / planned per-solve time (plan_reuse)
  plan.layout_speedup   csr-view / packed per-solve time (plan_reuse)
  strategy.layout_speedup   csr-view / packed for the Auto pick
                            (strategy_matrix, auto rows)
  strategy.auto_vs_serial   serial / auto per-solve time per (matrix,
                            threads) — how much the chosen strategy
                            beats the in-run serial reference

Per-row jitter is absorbed by aggregating each metric class with a
geometric mean before comparing; rows present only on one side (e.g. a
different thread-count sweep on a wider runner) contribute nothing
rather than failing the gate.

Usage:
  python3 ci/perf_gate.py \
      --plan BENCH_plan.json ci/baselines/BENCH_plan.json \
      --strategy BENCH_strategy.json ci/baselines/BENCH_strategy.json
"""

import argparse
import json
import math
import os
import sys


def geomean(values):
    vals = [v for v in values if v > 0]
    if not vals:
        return None
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def load(path):
    with open(path) as f:
        return json.load(f)


def plan_metrics(doc):
    """Metric-class -> {row_key: ratio} for a plan_reuse artifact."""
    speed, layout = {}, {}
    for row in doc.get("results", []):
        key = (row.get("threads"), row.get("solves"))
        if row.get("speedup", 0) > 0:
            speed[key] = row["speedup"]
        if row.get("layout_speedup", 0) > 0:
            layout[key] = row["layout_speedup"]
    return {"plan.speedup": speed, "plan.layout_speedup": layout}


def strategy_metrics(doc):
    """Metric-class -> {row_key: ratio} for a strategy_matrix artifact."""
    rows = doc.get("results", [])
    serial_us = {}
    for row in rows:
        if row.get("strategy") == "serial" and row.get("us_per_solve", 0) > 0:
            serial_us[(row.get("matrix"), row.get("threads"))] = row[
                "us_per_solve"]
    layout, auto_vs_serial = {}, {}
    for row in rows:
        key = (row.get("matrix"), row.get("threads"))
        if "layout_speedup" in row and row["layout_speedup"] > 0:
            layout[key] = row["layout_speedup"]
        if (row.get("rationale") and row.get("us_per_solve", 0) > 0
                and key in serial_us):
            auto_vs_serial[key] = serial_us[key] / row["us_per_solve"]
    return {
        "strategy.layout_speedup": layout,
        "strategy.auto_vs_serial": auto_vs_serial,
    }


def compare(name, fresh, baseline, tolerance):
    """Return (ok, message) for one metric class."""
    shared = sorted(set(fresh) & set(baseline))
    if not shared:
        return True, f"{name}: no shared rows — skipped"
    f = geomean(fresh[k] for k in shared)
    b = geomean(baseline[k] for k in shared)
    if f is None or b is None:
        return True, f"{name}: no positive samples — skipped"
    ratio = f / b
    verdict = "OK" if ratio >= 1.0 - tolerance else "REGRESSED"
    msg = (f"{name}: geomean fresh {f:.3f} vs baseline {b:.3f} over "
           f"{len(shared)} rows -> {ratio:.3f}x ({verdict})")
    return ratio >= 1.0 - tolerance, msg


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--plan", nargs=2, metavar=("FRESH", "BASELINE"))
    ap.add_argument("--strategy", nargs=2, metavar=("FRESH", "BASELINE"))
    ap.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("PDX_PERF_GATE_TOLERANCE", "0.15")),
        help="allowed fractional slowdown (default 0.15)")
    args = ap.parse_args()
    if not args.plan and not args.strategy:
        ap.error("nothing to gate: pass --plan and/or --strategy")

    classes = {}
    if args.plan:
        fresh = plan_metrics(load(args.plan[0]))
        baseline = plan_metrics(load(args.plan[1]))
        for name, m in fresh.items():
            classes[name] = (m, baseline.get(name, {}))
    if args.strategy:
        fresh = strategy_metrics(load(args.strategy[0]))
        baseline = strategy_metrics(load(args.strategy[1]))
        for name, m in fresh.items():
            classes[name] = (m, baseline.get(name, {}))

    ok = True
    for name, (fresh, baseline) in sorted(classes.items()):
        good, msg = compare(name, fresh, baseline, args.tolerance)
        print(msg)
        ok = ok and good
    if not ok:
        print(f"perf gate FAILED (tolerance {args.tolerance:.0%})")
        return 1
    print(f"perf gate passed (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
