#!/usr/bin/env python3
"""Perf-regression gate over the bench JSON artifacts.

Compares fresh BENCH_plan.json / BENCH_strategy.json / BENCH_batch.json
/ BENCH_refactor.json artifacts against the committed baselines in
ci/baselines/ and fails (exit 1) when a gated throughput ratio regressed
by more than the tolerance (default 15%, override with --tolerance or
PDX_PERF_GATE_TOLERANCE).

CI runners differ wildly in absolute speed, so the gate never compares
microseconds. It compares *ratios measured within one run* — numbers
that already divide out the machine:

  plan.speedup          unplanned / planned per-solve time (plan_reuse)
  plan.layout_speedup   csr-view / packed per-solve time (plan_reuse)
  strategy.layout_speedup   csr-view / packed for the Auto pick
                            (strategy_matrix, auto rows)
  strategy.auto_vs_best     best measured concrete strategy / auto
                            per-solve time per CALIBRATED (matrix,
                            threads) cell — how close the calibrated
                            Auto pick runs to the in-run best strategy
                            (1.0 = Auto IS the best; the gate also
                            enforces an absolute per-cell floor,
                            default 0.8 i.e. within 25% of best,
                            override PDX_AUTO_BEST_FLOOR). Uncalibrated
                            cells (one thread, or budget 0) carry the
                            heuristic pick and are not gated.
  batch.speedup_cols    sequential / batched-column-sequential per-RHS
                        time (batch_solve)
  batch.speedup_ilv     sequential / batched-wavefront-interleaved
                        per-RHS time (batch_solve)
  refactor.factor_speedup   sequential ilu0 / planned parallel numeric
                            factorization time (refactor_loop)
  refactor.refresh_speedup  full TrisolvePlan rebuild / value-only
                            refresh_speedup time (refactor_loop)
  service.batch_gain    open-loop burst jobs/sec / one-at-a-time jobs/sec
                        through the same solve::Service (service_load) —
                        what the scheduler's same-matrix strip packing
                        buys over serial request handling, measured
                        within one run. The gate also re-checks the
                        artifact's overload accounting verdict: every
                        flooded job must have landed in exactly one
                        terminal state.
  kernel.lane_speedup   scalar-table / vector-table time per row with
                        k >= lane_min (kernel_micro; both solve-level
                        and kernel-only *_kern rows). The spilled_kern
                        widest-k row — the lane-parallel kernel itself
                        on a past-LLC factor — additionally carries an
                        absolute floor (default 1.5x, override
                        PDX_KERNEL_LANE_FLOOR). Artifacts whose
                        dispatched isa is "scalar" have no vector table
                        to measure and are skipped entirely.

Per-row jitter is absorbed by aggregating each metric class with a
geometric mean before comparing; rows present only on one side (e.g. a
different thread-count sweep on a wider runner) contribute nothing
rather than failing the gate.

Baselines must be captured WITHOUT oversubscription (PDX_THREADS no
larger than the physical core count, or threads rows stripped): a
ratio whose in-run reference was pathologically slowed by busy-wait
oversubscription commits an inflated bar that spuriously fails every
honest runner. When regenerating on wider hardware, prefer it — rows
the narrow machine could not measure honestly start being gated only
then.

Usage:
  python3 ci/perf_gate.py \
      --plan BENCH_plan.json ci/baselines/BENCH_plan.json \
      --strategy BENCH_strategy.json ci/baselines/BENCH_strategy.json \
      --batch BENCH_batch.json ci/baselines/BENCH_batch.json \
      --refactor BENCH_refactor.json ci/baselines/BENCH_refactor.json
"""

import argparse
import json
import math
import os
import sys


def geomean(values):
    vals = [v for v in values if v > 0]
    if not vals:
        return None
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def load(path):
    with open(path) as f:
        return json.load(f)


def plan_metrics(doc):
    """Metric-class -> {row_key: ratio} for a plan_reuse artifact."""
    speed, layout = {}, {}
    for row in doc.get("results", []):
        key = (row.get("threads"), row.get("solves"))
        if row.get("speedup", 0) > 0:
            speed[key] = row["speedup"]
        if row.get("layout_speedup", 0) > 0:
            layout[key] = row["layout_speedup"]
    return {"plan.speedup": speed, "plan.layout_speedup": layout}


def strategy_metrics(doc):
    """Metric-class -> {row_key: ratio} for a strategy_matrix artifact."""
    rows = doc.get("results", [])
    # Best measured concrete strategy per cell (the auto row carries a
    # rationale; concrete rows do not).
    best_us = {}
    for row in rows:
        if row.get("rationale") or row.get("us_per_solve", 0) <= 0:
            continue
        key = (row.get("matrix"), row.get("threads"))
        best_us[key] = min(best_us.get(key, float("inf")),
                           row["us_per_solve"])
    layout, auto_vs_best = {}, {}
    for row in rows:
        key = (row.get("matrix"), row.get("threads"))
        if "layout_speedup" in row and row["layout_speedup"] > 0:
            layout[key] = row["layout_speedup"]
        # Only calibrated cells are gated: a cell without a race (one
        # thread, or calibration disabled) carries the heuristic pick,
        # which makes no measured-best promise.
        if (row.get("rationale") and row.get("calibrated")
                and row.get("us_per_solve", 0) > 0 and key in best_us):
            auto_vs_best[key] = best_us[key] / row["us_per_solve"]
    return {
        "strategy.layout_speedup": layout,
        "strategy.auto_vs_best": auto_vs_best,
    }


def batch_metrics(doc):
    """Metric-class -> {row_key: ratio} for a batch_solve artifact."""
    cols, ilv = {}, {}
    for row in doc.get("results", []):
        key = (row.get("threads"), row.get("k"))
        if row.get("speedup_cols", 0) > 0:
            cols[key] = row["speedup_cols"]
        if row.get("speedup_ilv", 0) > 0:
            ilv[key] = row["speedup_ilv"]
    return {"batch.speedup_cols": cols, "batch.speedup_ilv": ilv}


def refactor_metrics(doc):
    """Metric-class -> {row_key: ratio} for a refactor_loop artifact."""
    factor, refresh = {}, {}
    for row in doc.get("results", []):
        key = (row.get("threads"),)
        if row.get("factor_speedup", 0) > 0:
            factor[key] = row["factor_speedup"]
        if row.get("refresh_speedup", 0) > 0:
            refresh[key] = row["refresh_speedup"]
    return {
        "refactor.factor_speedup": factor,
        "refactor.refresh_speedup": refresh,
    }


def service_metrics(doc):
    """Metric-class -> {row_key: ratio} for a service_load artifact."""
    gain = {}
    for row in doc.get("results", []):
        key = (row.get("threads"), row.get("tenants"))
        if row.get("batch_gain", 0) > 0:
            gain[key] = row["batch_gain"]
    return {"service.batch_gain": gain}


def kernel_metrics(doc):
    """Metric-class -> {row_key: ratio} for a kernel_micro artifact."""
    # A scalar dispatch (no AVX2/NEON, or PDX_KERNEL=scalar) times the
    # scalar table against itself; every ratio is 1.0 by construction
    # and gating it would only measure noise.
    if doc.get("isa", "scalar") == "scalar":
        return {"kernel.lane_speedup": {}}
    lane_min = doc.get("lane_min", 4)
    lanes = {}
    for row in doc.get("results", []):
        if row.get("k", 0) < lane_min:
            continue  # no-lane control rows
        if row.get("lane_speedup", 0) > 0:
            lanes[(row.get("factor"), row.get("k"))] = row["lane_speedup"]
    return {"kernel.lane_speedup": lanes}


def compare(name, fresh, baseline, tolerance):
    """Return (ok, message) for one metric class."""
    shared = sorted(set(fresh) & set(baseline))
    if not shared:
        return True, f"{name}: no shared rows — skipped"
    f = geomean(fresh[k] for k in shared)
    b = geomean(baseline[k] for k in shared)
    if f is None or b is None:
        return True, f"{name}: no positive samples — skipped"
    ratio = f / b
    verdict = "OK" if ratio >= 1.0 - tolerance else "REGRESSED"
    msg = (f"{name}: geomean fresh {f:.3f} vs baseline {b:.3f} over "
           f"{len(shared)} rows -> {ratio:.3f}x ({verdict})")
    return ratio >= 1.0 - tolerance, msg


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--plan", nargs=2, metavar=("FRESH", "BASELINE"))
    ap.add_argument("--strategy", nargs=2, metavar=("FRESH", "BASELINE"))
    ap.add_argument("--batch", nargs=2, metavar=("FRESH", "BASELINE"))
    ap.add_argument("--refactor", nargs=2, metavar=("FRESH", "BASELINE"))
    ap.add_argument("--kernel", nargs=2, metavar=("FRESH", "BASELINE"))
    ap.add_argument("--service", nargs=2, metavar=("FRESH", "BASELINE"))
    ap.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("PDX_PERF_GATE_TOLERANCE", "0.15")),
        help="allowed fractional slowdown (default 0.15)")
    args = ap.parse_args()
    if not (args.plan or args.strategy or args.batch or args.refactor
            or args.kernel or args.service):
        ap.error("nothing to gate: pass --plan, --strategy, --batch, "
                 "--refactor, --kernel and/or --service")

    classes = {}
    extractors = [
        (args.plan, plan_metrics),
        (args.strategy, strategy_metrics),
        (args.batch, batch_metrics),
        (args.refactor, refactor_metrics),
        (args.kernel, kernel_metrics),
        (args.service, service_metrics),
    ]
    for paths, extract in extractors:
        if not paths:
            continue
        fresh = extract(load(paths[0]))
        baseline = extract(load(paths[1]))
        for name, m in fresh.items():
            classes[name] = (m, baseline.get(name, {}))

    ok = True
    for name, (fresh, baseline) in sorted(classes.items()):
        good, msg = compare(name, fresh, baseline, args.tolerance)
        print(msg)
        ok = ok and good

    # Absolute per-cell floor for the calibrated Auto pick: a mispick the
    # baseline also contains would slip through the relative compare, so
    # every fresh cell must independently land within 25% (by default) of
    # that cell's best measured strategy.
    if "strategy.auto_vs_best" in classes:
        floor = float(os.environ.get("PDX_AUTO_BEST_FLOOR", "0.8"))
        for key, v in sorted(classes["strategy.auto_vs_best"][0].items()):
            if v < floor:
                print(f"strategy.auto_vs_best: cell {key} = {v:.3f} below "
                      f"floor {floor:.2f} — the Auto pick runs "
                      f"{1.0 / v:.2f}x slower than the best measured "
                      f"strategy for that cell")
                ok = False

    if args.service:
        # The bench exits non-zero when overload accounting breaks;
        # re-checking the artifact keeps the gate honest against a stale
        # or hand-edited file.
        if not load(args.service[0]).get("accounting_exact", False):
            print("service: fresh artifact reports accounting_exact=false — "
                  "an overloaded job ended in no (or more than one) "
                  "terminal state")
            ok = False

    if args.kernel:
        fresh_doc = load(args.kernel[0])
        # The bench binary already exits non-zero on a bitwise mismatch;
        # re-checking here keeps the gate honest against a stale or
        # hand-edited artifact.
        if not fresh_doc.get("bitwise_exact", False):
            print("kernel: fresh artifact reports bitwise_exact=false — "
                  "the vector batch kernels diverged from the scalar "
                  "reference")
            ok = False
        # Absolute floor on the headline acceptance row: the lane-parallel
        # kernel itself (spilled_kern, widest k) on a past-LLC factor.
        # Relative compare alone would let a regressed baseline ratchet
        # the promise away. Skipped on scalar-dispatch machines, which
        # have no vector table to hold to it.
        if fresh_doc.get("isa", "scalar") != "scalar":
            floor = float(os.environ.get("PDX_KERNEL_LANE_FLOOR", "1.5"))
            kern = {k: v
                    for k, v in classes["kernel.lane_speedup"][0].items()
                    if k[0] == "spilled_kern"}
            if kern:
                key = max(kern, key=lambda kk: kk[1])
                if kern[key] < floor:
                    print(f"kernel.lane_speedup: row {key} = "
                          f"{kern[key]:.3f} below floor {floor:.2f} — the "
                          f"k={key[1]} lane-parallel kernel no longer "
                          f"clears its vector-vs-scalar bar on the "
                          f"spilled factor")
                    ok = False
    if not ok:
        print(f"perf gate FAILED (tolerance {args.tolerance:.0%})")
        return 1
    print(f"perf gate passed (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
