// dataflow_cells — spreadsheet-style recalculation with the doacross.
//
// A sheet of cells is recalculated in a fixed storage order. Each cell's
// formula references other cells *by runtime-loaded indices* (imagine the
// formulas were read from a file): a reference to an earlier cell must see
// its freshly computed value (true dependence), a reference to a later
// cell sees the value from the previous recalculation pass
// (antidependence) — exactly the semantics the preprocessed doacross
// implements, with no compile-time knowledge of the reference pattern.
//
// The example recalculates the sheet for several passes, compares the
// parallel result against a sequential recalculation, and shows how the
// doconsider reordering compresses the dependence chains.
//
// Build & run:
//   ./examples/dataflow_cells [cells] [refs_per_cell] [passes] [formula_cost]
//
// `formula_cost` models how expensive one cell's formula is (extra
// dependent flops); cheap formulas are synchronization-bound on modern
// hardware, heavier ones let the doacross win.
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "benchsupport/timer.hpp"
#include "core/analysis.hpp"
#include "core/doacross.hpp"
#include "core/doconsider.hpp"
#include "gen/rng.hpp"
#include "gen/testloop.hpp"  // work_spin
#include "runtime/thread_pool.hpp"

using pdx::index_t;
namespace core = pdx::core;
namespace gen = pdx::gen;

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 200000;
  const int refs = argc > 2 ? std::atoi(argv[2]) : 3;
  const int passes = argc > 3 ? std::atoi(argv[3]) : 4;
  const int formula_cost = argc > 4 ? std::atoi(argv[4]) : 200;

  // "Load" the sheet: every cell has `refs` references, biased toward
  // nearby earlier cells (like real spreadsheets) with some forward refs.
  gen::SplitMix64 rng(7);
  std::vector<index_t> ref_idx(static_cast<std::size_t>(n * refs));
  std::vector<double> ref_w(static_cast<std::size_t>(n * refs));
  for (index_t i = 0; i < n; ++i) {
    for (int k = 0; k < refs; ++k) {
      index_t target;
      if (i > 0 && rng.next_double() < 0.8) {
        // backward reference within a window of 200 cells
        const index_t lo = std::max<index_t>(0, i - 200);
        target = lo + rng.next_index(i - lo);
      } else {
        target = rng.next_index(n);  // anywhere (incl. forward / self)
      }
      ref_idx[static_cast<std::size_t>(i * refs + k)] = target;
      ref_w[static_cast<std::size_t>(i * refs + k)] =
          rng.next_double(-0.3, 0.3) / refs;
    }
  }

  std::vector<index_t> writer(static_cast<std::size_t>(n));
  std::iota(writer.begin(), writer.end(), index_t{0});

  auto formula = [&](auto& it) {
    const index_t i = it.index();
    double v = 1.0;  // the cell's own constant term
    for (int k = 0; k < refs; ++k) {
      const std::size_t slot = static_cast<std::size_t>(i * refs + k);
      v += ref_w[slot] * it.read(ref_idx[slot]);
    }
    it.lhs() = gen::work_spin(v, formula_cost);
  };

  // Dependence structure of one recalculation pass.
  const core::DepGraph deps = core::build_true_deps(
      n, writer, n, [&](index_t i, const std::function<void(index_t)>& emit) {
        for (int k = 0; k < refs; ++k) {
          emit(ref_idx[static_cast<std::size_t>(i * refs + k)]);
        }
      });
  const core::Reordering reorder = core::doconsider_order(deps);
  const auto hist = core::dependence_distance_histogram(deps);
  std::printf("sheet: %lld cells, %lld true references, mean distance %.1f,"
              " critical path %lld (avg parallelism %.1f)\n",
              static_cast<long long>(n), static_cast<long long>(deps.edges()),
              hist.mean_distance,
              static_cast<long long>(reorder.critical_path()),
              reorder.average_parallelism());

  // Sequential recalculation (reference).
  std::vector<double> seq(static_cast<std::size_t>(n), 0.0);
  pdx::bench::WallTimer t_seq;
  for (int p = 0; p < passes; ++p) {
    core::doacross_reference<double>(writer, std::span<double>(seq), formula);
  }
  const double seq_ms = t_seq.millis();

  // Parallel recalculation, doconsider order.
  pdx::rt::ThreadPool pool;
  core::DoacrossEngine<double> engine(pool, n);
  core::DoacrossOptions opts;
  opts.order = reorder.order.data();
  // Level-ordered iterations must be dealt round-robin: a block split
  // would hand whole wavefronts to single threads and serialize them.
  opts.schedule = pdx::rt::Schedule::dynamic(1);
  std::vector<double> par(static_cast<std::size_t>(n), 0.0);
  pdx::bench::WallTimer t_par;
  for (int p = 0; p < passes; ++p) {
    engine.run(writer, std::span<double>(par), formula, opts);
  }
  const double par_ms = t_par.millis();

  std::size_t mismatch = 0;
  for (index_t i = 0; i < n; ++i) {
    if (seq[static_cast<std::size_t>(i)] != par[static_cast<std::size_t>(i)]) {
      ++mismatch;
    }
  }

  std::printf("%d recalculation passes: sequential %.2f ms, doacross %.2f ms "
              "on %u threads (speedup %.2f)\n",
              passes, seq_ms, par_ms, pool.width(), seq_ms / par_ms);
  std::printf("results %s\n", mismatch == 0
                                  ? "match the sequential recalculation "
                                    "exactly (bitwise)"
                                  : "MISMATCH");
  return mismatch == 0 ? 0 : 1;
}
