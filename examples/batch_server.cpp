// batch_server — the multi-tenant serving loop solve::Service exists for.
//
// Two matrices are registered as tenants of one Service; solve requests
// for both arrive interleaved. The service's scheduler packs same-matrix
// jobs into strips and drains each strip through that tenant's cached
// BatchDriver — the plan-sharing, screen-batching machinery of the lower
// layers, now behind admission control, per-job deadlines, and a
// per-matrix circuit breaker (DESIGN.md §15).
//
// The overload story is part of the demo: the queue is bounded, and the
// flags pick what happens when it fills.
//
// Usage: ./examples/batch_server [--backpressure=block|shed|reject]
//                                [--deadline-ms=D] [--queue-capacity=N]
//        (PDX_QUICK=1 shrinks the problem — the CI smoke mode.)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "benchsupport/env.hpp"
#include "benchsupport/timer.hpp"
#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "runtime/thread_pool.hpp"
#include "solve/service.hpp"

namespace gen = pdx::gen;
namespace rt = pdx::rt;
namespace solve = pdx::solve;
namespace sp = pdx::sparse;
using pdx::index_t;

int main(int argc, char** argv) {
  const bool quick = pdx::bench::quick_mode();

  solve::ServiceOptions opts;
  opts.queue_capacity = 128;
  opts.backpressure = solve::BackpressurePolicy::kBlock;
  opts.max_batch = 16;
  opts.solver.rel_tolerance = 1e-10;
  double deadline_ms = 0.0;  // 0 = none
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--backpressure=", 0) == 0) {
      const std::string v = arg.substr(15);
      if (v == "block") {
        opts.backpressure = solve::BackpressurePolicy::kBlock;
      } else if (v == "shed") {
        opts.backpressure = solve::BackpressurePolicy::kShedOldest;
      } else if (v == "reject") {
        opts.backpressure = solve::BackpressurePolicy::kReject;
      } else {
        std::fprintf(stderr, "unknown backpressure policy: %s\n", v.c_str());
        return 2;
      }
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      deadline_ms = std::atof(arg.c_str() + 14);
    } else if (arg.rfind("--queue-capacity=", 0) == 0) {
      opts.queue_capacity =
          static_cast<std::size_t>(std::atoll(arg.c_str() + 17));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  const int grid_a = quick ? 32 : 48;
  const int grid_b = quick ? 24 : 40;
  sp::Csr a = gen::five_point(grid_a, grid_a);
  const sp::Csr b_mat = gen::five_point(grid_b, grid_b);

  rt::ThreadPool pool;  // hardware width; the service is its only caller
  solve::Service svc(pool, opts);
  const solve::MatrixId ta = svc.register_matrix(a);
  const solve::MatrixId tb = svc.register_matrix(b_mat);

  std::printf(
      "batch_server: 2 tenants (%lld and %lld equations), %u threads, "
      "queue %zu, policy %s, deadline %s\n",
      static_cast<long long>(a.rows), static_cast<long long>(b_mat.rows),
      pool.width(), opts.queue_capacity, to_string(opts.backpressure),
      deadline_ms > 0 ? (std::to_string(deadline_ms) + " ms").c_str()
                      : "none");

  // Interleaved traffic: waves alternate tenants so the scheduler's
  // same-matrix strip packing has something to do.
  gen::SplitMix64 rng(2026);
  const int waves = quick ? 3 : 5;
  const int per_wave = quick ? 6 : 10;
  std::vector<solve::JobHandle> jobs;
  std::vector<double> rhs(static_cast<std::size_t>(a.rows));

  pdx::bench::WallTimer wall;
  for (int w = 0; w < waves; ++w) {
    for (int j = 0; j < per_wave; ++j) {
      const bool to_a = (w + j) % 2 == 0;
      const index_t n = to_a ? a.rows : b_mat.rows;
      for (index_t i = 0; i < n; ++i) {
        rhs[static_cast<std::size_t>(i)] = rng.next_double(-1.0, 1.0);
      }
      jobs.push_back(svc.submit(
          to_a ? ta : tb,
          std::span<const double>(rhs.data(), static_cast<std::size_t>(n)),
          deadline_ms));
    }
  }

  std::size_t solved = 0, expired = 0, rejected = 0, failed = 0;
  const auto tally = [&](const solve::JobResult& res) {
    switch (res.outcome) {
      case solve::JobOutcome::kSolved: ++solved; break;
      case solve::JobOutcome::kExpired: ++expired; break;
      case solve::JobOutcome::kRejected: ++rejected; break;
      default:
        ++failed;
        std::printf("job failed: %s\n", res.error.c_str());
        break;
    }
  };
  for (const solve::JobHandle& job : jobs) tally(job->wait());

  // Operator update mid-service: new VALUES over tenant A's (now live)
  // unchanged pattern are adopted as a value-only plan refresh — numeric
  // refactor through the persistent FactorPlan plus a packed-stream
  // refresh, no rebuild — before A's next strip.
  for (std::size_t k = 0; k < a.val.size(); ++k) {
    a.val[k] *= 1.0 + 0.1 * ((k % 7) / 7.0);
  }
  svc.update_values(ta, a);
  for (index_t i = 0; i < a.rows; ++i) {
    rhs[static_cast<std::size_t>(i)] = rng.next_double(-1.0, 1.0);
  }
  jobs.push_back(svc.submit(
      ta, std::span<const double>(rhs.data(),
                                  static_cast<std::size_t>(a.rows)),
      deadline_ms));
  tally(jobs.back()->wait());
  const double ms = wall.millis();

  const solve::ServiceReport rep = svc.report();
  std::printf(
      "%zu jobs in %.1f ms: %zu solved, %zu expired, %zu rejected, %zu "
      "failed\n",
      jobs.size(), ms, solved, expired, rejected, failed);
  std::printf(
      "queue high-water %zu/%zu; plan cache %llu hits / %llu misses / %llu "
      "evictions; %llu value refresh(es)\n",
      rep.queue_high_water, opts.queue_capacity,
      static_cast<unsigned long long>(rep.cache_hits),
      static_cast<unsigned long long>(rep.cache_misses),
      static_cast<unsigned long long>(rep.cache_evictions),
      static_cast<unsigned long long>(rep.value_refreshes));
  std::printf("latency p50 %.2f ms, p99 %.2f ms, max %.2f ms\n", rep.p50_ms,
              rep.p99_ms, rep.max_ms);
  for (solve::MatrixId id : {ta, tb}) {
    const solve::MatrixInfo mi = svc.matrix_info(id);
    std::printf("tenant %llu: plans %s, strategy %s, breaker %s\n",
                static_cast<unsigned long long>(id),
                mi.live ? "live" : "cold", pdx::core::to_string(mi.strategy),
                to_string(mi.breaker));
  }

  if (!svc.shutdown(/*drain_timeout_ms=*/10000.0)) {
    std::printf("shutdown did not drain — FAIL\n");
    return 1;
  }

  // Accounting must be exact: every job ended in exactly one state, and
  // without a deadline (the smoke configuration) everything solves.
  if (rep.submitted != rep.solved + rep.expired + rep.rejected + rep.failed) {
    std::printf("accounting mismatch — FAIL\n");
    return 1;
  }
  if (deadline_ms <= 0 &&
      opts.backpressure == solve::BackpressurePolicy::kBlock && solved != jobs.size()) {
    std::printf("expected every job solved under block policy — FAIL\n");
    return 1;
  }
  if (rep.value_refreshes < 1) {
    std::printf("value-only refresh did not happen — FAIL\n");
    return 1;
  }
  std::printf("ok\n");
  return 0;
}
