// batch_server — the serving loop the batched execution layer exists for.
//
// One matrix is factored once; solve requests then arrive continuously.
// This example simulates that traffic in waves: each wave's (b, x) pairs
// are queued on a solve::BatchDriver and drained together — the initial
// residuals of the whole wave are screened with one batched SpMV, and
// every Krylov iteration of every request reuses the same fused L+U
// TrisolvePlan. Repeat requests (a client retrying an already-answered
// system) are answered by the screen without any Krylov work.
//
// Build & run:  ./examples/batch_server
#include <cstdio>
#include <vector>

#include "benchsupport/timer.hpp"
#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "runtime/thread_pool.hpp"
#include "solve/batch_driver.hpp"

namespace gen = pdx::gen;
namespace rt = pdx::rt;
namespace solve = pdx::solve;
namespace sp = pdx::sparse;
using pdx::index_t;

int main() {
  sp::Csr a = gen::five_point(48, 48);  // values re-assembled further down
  const index_t n = a.rows;

  rt::ThreadPool pool;  // hardware width
  solve::BatchDriverOptions opts;
  opts.rel_tolerance = 1e-10;
  pdx::bench::WallTimer build_timer;
  solve::BatchDriver driver(pool, a, opts);  // ILU(0) + plan, built once
  const double build_ms = build_timer.millis();

  std::printf("batch_server: %lld equations, %u threads, setup %.1f ms\n",
              static_cast<long long>(n), pool.width(), build_ms);
  const sp::PlanTelemetry& tel = driver.preconditioner().plan().telemetry();
  std::printf("plan strategy: %s (%s)\n", pdx::core::to_string(tel.strategy),
              tel.rationale.c_str());
  std::printf("plan layout: %s (%zu packed stream bytes)\n",
              sp::to_string(tel.layout), tel.packed_bytes);
  std::printf("%-6s %-9s %-9s %-10s %-9s %-12s %-10s\n", "wave", "requests",
              "screened", "iterations", "M-solves", "dispatches", "ms");

  gen::SplitMix64 rng(2026);
  const int waves = 4;
  const int per_wave = 8;
  std::vector<std::vector<double>> b(waves * per_wave), x(waves * per_wave);

  for (int w = 0; w < waves; ++w) {
    for (int j = 0; j < per_wave; ++j) {
      auto& bj = b[static_cast<std::size_t>(w * per_wave + j)];
      auto& xj = x[static_cast<std::size_t>(w * per_wave + j)];
      bj.resize(static_cast<std::size_t>(n));
      for (auto& v : bj) v = rng.next_double(-1.0, 1.0);
      xj.assign(static_cast<std::size_t>(n), 0.0);
      driver.enqueue(bj, xj);
    }
    if (w == waves - 1) {
      // Last wave also carries retries of wave 0's (already solved)
      // systems: the batched screen answers them for one SpMV dispatch.
      for (int j = 0; j < per_wave; ++j) {
        driver.enqueue(b[static_cast<std::size_t>(j)],
                       x[static_cast<std::size_t>(j)]);
      }
    }

    pdx::bench::WallTimer drain_timer;
    const solve::BatchReport rep = driver.drain();
    const double ms = drain_timer.millis();
    std::printf("%-6d %-9zu %-9zu %-10llu %-9llu %-12llu %-10.1f\n", w,
                rep.jobs, rep.screened,
                static_cast<unsigned long long>(rep.total_iterations),
                static_cast<unsigned long long>(rep.precond_solves),
                static_cast<unsigned long long>(rep.pool_dispatches), ms);
    if (rep.converged != rep.jobs) {
      std::printf("wave %d: %zu/%zu converged — FAIL\n", w, rep.converged,
                  rep.jobs);
      return 1;
    }
  }

  // Operator update mid-service (the time-stepping hook): new matrix
  // VALUES over the same pattern are adopted by one refactor() —
  // parallel numeric ILU(0) through the persistent FactorPlan plus a
  // value-only refresh of the packed solve streams — and the next wave
  // is served against the new operator with nothing rebuilt. The report
  // forwards the refactor telemetry next to the strategy/layout fields.
  for (std::size_t k = 0; k < a.val.size(); ++k) {
    a.val[k] *= 1.0 + 0.1 * ((k % 7) / 7.0);
  }
  driver.refactor(a);
  {
    std::vector<double> br(static_cast<std::size_t>(n)),
        xr(static_cast<std::size_t>(n), 0.0);
    for (auto& v : br) v = rng.next_double(-1.0, 1.0);
    driver.enqueue(br, xr);
    const solve::BatchReport rep = driver.drain();
    std::printf(
        "\nrefactor: numeric factorization %.2f ms (%s strategy), plan "
        "value-refresh %.2f ms; wave of %zu served against the new "
        "operator (%llu iterations).\n",
        rep.factor_ms, pdx::core::to_string(rep.factor_strategy),
        rep.refresh_ms, rep.jobs,
        static_cast<unsigned long long>(rep.total_iterations));
    if (rep.converged != rep.jobs) {
      std::printf("post-refactor wave failed to converge — FAIL\n");
      return 1;
    }
  }

  // The raw batched primitive, for callers below the Krylov layer: apply
  // M⁻¹ to a whole wave of vectors in ONE pool dispatch (e.g. smoothing,
  // residual preprocessing). One dispatch, eight columns.
  const auto& m = driver.preconditioner();
  m.reserve_batch(per_wave);
  std::vector<const double*> r_cols(per_wave);
  std::vector<std::vector<double>> z(per_wave);
  std::vector<double*> z_cols(per_wave);
  for (int j = 0; j < per_wave; ++j) {
    r_cols[static_cast<std::size_t>(j)] = b[static_cast<std::size_t>(j)].data();
    z[static_cast<std::size_t>(j)].assign(static_cast<std::size_t>(n), 0.0);
    z_cols[static_cast<std::size_t>(j)] = z[static_cast<std::size_t>(j)].data();
  }
  rt::DispatchProbe probe(pool);
  pdx::bench::WallTimer batch_timer;
  m.apply_batch(r_cols.data(), z_cols.data(), per_wave);
  std::printf(
      "\napply_batch: M⁻¹ over %d vectors in %llu pool dispatch(es), "
      "%.1f ms\n",
      per_wave, static_cast<unsigned long long>(probe.delta()),
      batch_timer.millis());

  std::printf(
      "plan amortization: %llu preconditioner applications and %llu batch "
      "columns ran through one plan built at setup.\n",
      static_cast<unsigned long long>(m.plan().solves()),
      static_cast<unsigned long long>(m.plan().batch_columns()));
  return 0;
}
