// loop_playground — interactive exploration of the paper's Figure 6 loop.
//
// Runs the Fig. 4 test loop for user-chosen N, M, L, and thread count and
// prints the dependence profile and parallel efficiency, so you can watch
// the odd/even-L dichotomy and the distance effect by hand.
//
// Usage:  ./examples/loop_playground [N] [M] [L] [threads] [work_reps]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "benchsupport/stats.hpp"
#include "benchsupport/timer.hpp"
#include "core/advisor.hpp"
#include "core/doacross.hpp"
#include "core/doconsider.hpp"
#include "gen/testloop.hpp"
#include "runtime/affinity.hpp"
#include "runtime/thread_pool.hpp"

using pdx::index_t;
namespace core = pdx::core;
namespace gen = pdx::gen;
namespace bench = pdx::bench;

int main(int argc, char** argv) {
  gen::TestLoopParams params;
  params.n = argc > 1 ? std::atoll(argv[1]) : 10000;
  params.m = argc > 2 ? std::atoi(argv[2]) : 5;
  params.l = argc > 3 ? std::atoi(argv[3]) : 8;
  const unsigned threads = argc > 4 ? static_cast<unsigned>(std::atoi(argv[4]))
                                    : std::min(16u, pdx::rt::allowed_cpus());
  params.work_reps = argc > 5 ? std::atoi(argv[5]) : 16;

  const gen::TestLoop tl = gen::make_test_loop(params);
  const core::DepGraph deps = gen::test_loop_deps(tl);

  std::printf("test loop: N=%lld M=%d L=%d work_reps=%d threads=%u\n",
              static_cast<long long>(params.n), params.m, params.l,
              params.work_reps, threads);
  std::printf("dependences: %lld true cross-iteration edges (%s)\n",
              static_cast<long long>(deps.edges()),
              params.l % 2 == 1 ? "odd L: none expected"
                                : "even L: distance L/2 - j");

  // Let the dependence-aware advisor pick the executor configuration.
  const core::ScheduleAdvice advice = core::advise_schedule(deps, threads);
  std::printf("advisor: %s strategy, %s schedule, %s — %s\n",
              core::to_string(advice.strategy),
              pdx::rt::to_string(advice.schedule).c_str(),
              advice.use_reordering ? "doconsider order" : "source order",
              advice.rationale.c_str());

  std::vector<double> y = gen::make_initial_y(tl);
  const double t_seq = bench::summarize(bench::time_samples(5, 1, [&] {
                         y = tl.y0;
                         gen::run_test_loop_seq(tl, y);
                       })).min;

  pdx::rt::ThreadPool pool(threads);
  core::DoacrossEngine<double> eng(pool, tl.value_space);
  core::DoacrossOptions opts;
  opts.schedule = advice.schedule;
  core::Reordering reorder;
  if (advice.use_reordering) {
    reorder = core::doconsider_order(deps);
    opts.order = reorder.order.data();
  }
  core::DoacrossStats stats;
  const double t_par = bench::summarize(bench::time_samples(5, 1, [&] {
                         y = tl.y0;
                         stats = eng.run(
                             std::span<const index_t>(tl.a),
                             std::span<double>(y),
                             [&tl](auto& it) { gen::test_loop_body(tl, it); },
                             opts);
                       })).min;

  std::printf("\n  T_seq            %10.1f us\n", t_seq * 1e6);
  std::printf("  T_par            %10.1f us\n", t_par * 1e6);
  std::printf("    inspector      %10.1f us\n", stats.inspect_seconds * 1e6);
  std::printf("    executor       %10.1f us\n", stats.execute_seconds * 1e6);
  std::printf("    postprocessor  %10.1f us\n", stats.post_seconds * 1e6);
  std::printf("  busy waits       %10llu episodes\n",
              static_cast<unsigned long long>(stats.wait_episodes));
  std::printf("  speedup          %10.2f\n", bench::speedup(t_seq, t_par));
  std::printf("  efficiency       %10.3f   (paper metric T_seq/(p*T_par))\n",
              bench::parallel_efficiency(t_seq, t_par, threads));
  return 0;
}
