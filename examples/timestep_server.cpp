// timestep_server — the evolving-values serving loop, now through
// solve::Service.
//
// Implicit time integration of a diffusion problem with a time-varying
// coefficient field: every step the operator A(t) = I + dt·K(t) changes
// VALUES while its stencil PATTERN stays fixed. Each step is one
// update_values() — which the service applies as a value-only plan
// refresh (parallel numeric ILU(0) through the persistent FactorPlan +
// packed-stream refresh, never a plan rebuild) — followed by one
// deadline-carrying job for the implicit solve.
//
// Running the loop through the Service instead of a raw BatchDriver buys
// the serving guarantees: the step solve carries a deadline, overload on
// the submission queue follows an explicit backpressure policy, and an
// infrastructure fault would degrade this tenant to the exact serial
// fallback instead of taking the process down (DESIGN.md §15).
//
// Usage: ./examples/timestep_server [--deadline-ms=D]
//                                   [--backpressure=block|shed|reject]
//        (PDX_QUICK=1 shrinks the grid and step count — the CI smoke
//        mode.)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchsupport/env.hpp"
#include "benchsupport/timer.hpp"
#include "gen/stencil.hpp"
#include "runtime/thread_pool.hpp"
#include "solve/service.hpp"

namespace gen = pdx::gen;
namespace rt = pdx::rt;
namespace solve = pdx::solve;
namespace sp = pdx::sparse;
using pdx::index_t;

namespace {

/// K(t)'s conductivity modulation: smooth in time and space, bounded away
/// from flipping a sign so A(t) stays diagonally dominant.
void assemble(const sp::Csr& base, sp::Csr& a, double t) {
  for (std::size_t k = 0; k < a.val.size(); ++k) {
    a.val[k] = base.val[k] *
               (1.0 + 0.25 * std::sin(0.0007 * static_cast<double>(k) + t));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = pdx::bench::quick_mode();
  const int grid = quick ? 32 : 64;
  const int steps = quick ? 4 : 12;
  const double dt = 0.35;

  solve::ServiceOptions opts;
  opts.solver.rel_tolerance = 1e-10;
  double deadline_ms = 0.0;  // 0 = none
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--deadline-ms=", 0) == 0) {
      deadline_ms = std::atof(arg.c_str() + 14);
    } else if (arg.rfind("--backpressure=", 0) == 0) {
      const std::string v = arg.substr(15);
      if (v == "block") {
        opts.backpressure = solve::BackpressurePolicy::kBlock;
      } else if (v == "shed") {
        opts.backpressure = solve::BackpressurePolicy::kShedOldest;
      } else if (v == "reject") {
        opts.backpressure = solve::BackpressurePolicy::kReject;
      } else {
        std::fprintf(stderr, "unknown backpressure policy: %s\n", v.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  const sp::Csr base = gen::five_point(grid, grid);
  sp::Csr a = base;  // pattern fixed for the whole run; values per step
  const index_t n = a.rows;
  assemble(base, a, 0.0);

  rt::ThreadPool pool;  // hardware width
  solve::Service svc(pool, opts);
  pdx::bench::WallTimer build_timer;
  const solve::MatrixId id = svc.register_matrix(a);
  const double register_ms = build_timer.millis();

  std::printf(
      "timestep_server: %lld equations, %u threads, dt=%.2f, register %.1f "
      "ms (plans build lazily), deadline %s\n",
      static_cast<long long>(n), pool.width(), dt, register_ms,
      deadline_ms > 0 ? (std::to_string(deadline_ms) + " ms").c_str()
                      : "none");
  std::printf("%-5s %-9s %-10s %-10s %-9s %-10s\n", "step", "iters",
              "queue(ms)", "solve(ms)", "degraded", "step(ms)");

  // u evolves under backward Euler: (I + dt K(t)) u_next = u. The rhs of
  // each step is the previous solution — real time-stepping traffic, not
  // a fresh random vector.
  std::vector<double> u(static_cast<std::size_t>(n), 1.0);
  std::vector<double> u_next(static_cast<std::size_t>(n), 0.0);

  for (int s = 1; s <= steps; ++s) {
    pdx::bench::WallTimer step_timer;
    assemble(base, a, dt * s);
    svc.update_values(id, a);  // applied as a value-only refresh

    const solve::JobResult res = svc.solve(id, u, u_next, deadline_ms);
    if (res.outcome != solve::JobOutcome::kSolved) {
      std::printf("step %d: %s — %s\n", s, to_string(res.outcome),
                  res.error.c_str());
      return 1;
    }
    std::printf("%-5d %-9d %-10.2f %-10.2f %-9s %-10.1f\n", s,
                res.report.iterations, res.queue_ms, res.solve_ms,
                res.degraded ? "yes" : "no", step_timer.millis());
    std::swap(u, u_next);
  }

  const solve::ServiceReport rep = svc.report();
  const solve::MatrixInfo mi = svc.matrix_info(id);
  // The first step builds the plans from the step-1 values (a cache
  // miss); each later step's update lands as a value-only refresh on the
  // live plans — 1 symbolic build serving steps-1 refreshes.
  std::printf(
      "\namortization: %llu plan build(s) served %llu value refresh(es) "
      "across %d steps (strategy %s, breaker %s).\n",
      static_cast<unsigned long long>(rep.cache_misses),
      static_cast<unsigned long long>(rep.value_refreshes), steps,
      pdx::core::to_string(mi.strategy), to_string(mi.breaker));

  if (!svc.shutdown(/*drain_timeout_ms=*/10000.0)) {
    std::printf("shutdown did not drain — FAIL\n");
    return 1;
  }
  if (rep.solved != static_cast<std::uint64_t>(steps)) {
    std::printf("expected %d solved steps, saw %llu — FAIL\n", steps,
                static_cast<unsigned long long>(rep.solved));
    return 1;
  }
  if (rep.cache_misses != 1 ||
      rep.value_refreshes != static_cast<std::uint64_t>(steps - 1)) {
    std::printf("plan did not amortize across the steps — FAIL\n");
    return 1;
  }
  std::printf("ok\n");
  return 0;
}
