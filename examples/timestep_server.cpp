// timestep_server — the evolving-values serving loop FactorPlan and
// refresh_values exist for.
//
// Implicit time integration of a diffusion problem with a time-varying
// coefficient field: every step the operator A(t) = I + dt·K(t) changes
// VALUES while its stencil PATTERN stays fixed. The classic per-step
// bill — sequential re-factorization plus a full solve-plan rebuild —
// is replaced by the symbolic-once / numeric-fast split:
//
//   setup (once)     BatchDriver builds ILU(0), the TrisolvePlan, and
//                    (on the first refactor) the FactorPlan's symbolic
//                    phase;
//   per step         driver.refactor(A) — parallel zero-allocation
//                    numeric factorization + value-only refresh of the
//                    packed solve streams — then enqueue/drain the
//                    step's implicit solve through the shared plan.
//
// Every step's report carries the refactor telemetry (factor_ms,
// refresh_ms, the FactorPlan strategy) next to the Krylov work it paid
// for. Build & run:  ./examples/timestep_server   (PDX_QUICK=1 shrinks
// the grid and step count — the CI smoke mode).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "benchsupport/env.hpp"
#include "benchsupport/timer.hpp"
#include "gen/stencil.hpp"
#include "runtime/thread_pool.hpp"
#include "solve/batch_driver.hpp"

namespace gen = pdx::gen;
namespace rt = pdx::rt;
namespace solve = pdx::solve;
namespace sp = pdx::sparse;
using pdx::index_t;

namespace {

/// K(t)'s conductivity modulation: smooth in time and space, bounded away
/// from flipping a sign so A(t) stays diagonally dominant.
void assemble(const sp::Csr& base, sp::Csr& a, double t) {
  for (std::size_t k = 0; k < a.val.size(); ++k) {
    a.val[k] = base.val[k] *
               (1.0 + 0.25 * std::sin(0.0007 * static_cast<double>(k) + t));
  }
}

}  // namespace

int main() {
  const bool quick = pdx::bench::quick_mode();
  const int grid = quick ? 32 : 64;
  const int steps = quick ? 4 : 12;
  const double dt = 0.35;

  const sp::Csr base = gen::five_point(grid, grid);
  sp::Csr a = base;  // pattern fixed for the whole run; values per step
  const index_t n = a.rows;
  assemble(base, a, 0.0);

  rt::ThreadPool pool;  // hardware width
  solve::BatchDriverOptions opts;
  opts.rel_tolerance = 1e-10;
  pdx::bench::WallTimer build_timer;
  solve::BatchDriver driver(pool, a, opts);
  const double build_ms = build_timer.millis();

  std::printf(
      "timestep_server: %lld equations, %u threads, dt=%.2f, setup %.1f "
      "ms\n",
      static_cast<long long>(n), pool.width(), dt, build_ms);
  const sp::PlanTelemetry& tel = driver.preconditioner().plan().telemetry();
  std::printf("solve plan: %s / %s layout\n",
              pdx::core::to_string(tel.strategy), sp::to_string(tel.layout));
  std::printf("%-5s %-11s %-11s %-12s %-6s %-9s %-10s\n", "step",
              "factor(ms)", "refresh(ms)", "factor-strat", "iters",
              "M-solves", "step(ms)");

  // u evolves under backward Euler: (I + dt K(t)) u_next = u. The rhs of
  // each step is the previous solution — real time-stepping traffic, not
  // a fresh random vector.
  std::vector<double> u(static_cast<std::size_t>(n), 1.0);
  std::vector<double> u_next(static_cast<std::size_t>(n), 0.0);

  for (int s = 1; s <= steps; ++s) {
    pdx::bench::WallTimer step_timer;
    assemble(base, a, dt * s);
    driver.refactor(a);  // parallel numeric ILU(0) + value-only refresh

    std::fill(u_next.begin(), u_next.end(), 0.0);
    driver.enqueue(u, u_next);
    const solve::BatchReport rep = driver.drain();
    if (rep.converged != rep.jobs) {
      std::printf("step %d: solve failed to converge\n", s);
      return 1;
    }
    std::printf("%-5d %-11.2f %-11.2f %-12s %-6llu %-9llu %-10.1f\n", s,
                rep.factor_ms, rep.refresh_ms,
                pdx::core::to_string(rep.factor_strategy),
                static_cast<unsigned long long>(rep.total_iterations),
                static_cast<unsigned long long>(rep.precond_solves),
                step_timer.millis());
    std::swap(u, u_next);
  }

  const sp::FactorPlan* fp = driver.preconditioner().factor_plan();
  if (fp == nullptr || fp->factorizations() !=
                           static_cast<std::uint64_t>(steps)) {
    std::printf("FactorPlan did not amortize across the steps — FAIL\n");
    return 1;
  }
  std::printf(
      "\namortization: 1 symbolic phase (%zu bytes) served %llu numeric "
      "factorizations; the solve plan was refreshed %llu times and "
      "rebuilt 0 times.\n",
      fp->telemetry().symbolic_bytes,
      static_cast<unsigned long long>(fp->factorizations()),
      static_cast<unsigned long long>(
          driver.preconditioner().plan().refreshes()));
  return 0;
}
