// sparse_triangular_cg — the paper's §3.2 context end to end.
//
// Solves a Poisson system with ILU(0)-preconditioned conjugate gradients.
// Each CG iteration applies the preconditioner by solving two sparse
// triangular systems (paper Fig. 7); here those solves run through the
// preprocessed doacross with doconsider reordering, and we report how much
// of the solver's time they account for — the motivation quoted from [1].
//
// Build & run:  ./examples/sparse_triangular_cg [grid]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "benchsupport/timer.hpp"
#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "runtime/thread_pool.hpp"
#include "solve/cg.hpp"
#include "solve/precond.hpp"
#include "sparse/levels.hpp"
#include "sparse/spmv.hpp"

using pdx::index_t;
namespace gen = pdx::gen;
namespace sp = pdx::sparse;
namespace solve = pdx::solve;

int main(int argc, char** argv) {
  const index_t grid = argc > 1 ? std::atoll(argv[1]) : 63;
  const sp::Csr a = gen::five_point(grid, grid);
  std::printf("5-point Poisson, %lld x %lld grid -> %lld equations, %lld nnz\n",
              static_cast<long long>(grid), static_cast<long long>(grid),
              static_cast<long long>(a.rows), static_cast<long long>(a.nnz()));

  // Manufactured solution -> right-hand side.
  gen::SplitMix64 rng(63);
  std::vector<double> x_true(static_cast<std::size_t>(a.rows));
  for (auto& v : x_true) v = rng.next_double(-1.0, 1.0);
  std::vector<double> b(static_cast<std::size_t>(a.rows));
  sp::spmv(a, x_true, b);

  pdx::rt::ThreadPool pool;

  // Dependence profile of the ILU(0) lower factor: how much parallelism
  // the doacross has to work with.
  const sp::DagProfile prof = sp::profile_lower_solve(
      solve::Ilu0Preconditioner(a).factors().l);
  std::printf("L factor: critical path %lld, average parallelism %.1f\n",
              static_cast<long long>(prof.critical_path),
              prof.avg_parallelism);

  auto run = [&](const solve::Preconditioner& m, const char* label) {
    std::vector<double> x(static_cast<std::size_t>(a.rows), 0.0);
    pdx::bench::WallTimer t;
    const auto rep = solve::pcg(a, b, x, m, {.max_iterations = 500});
    const double secs = t.seconds();
    double err = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      err = std::max(err, std::abs(x[i] - x_true[i]));
    }
    std::printf("  %-22s %4d iterations  %8.2f ms  max err %.2e  %s\n", label,
                rep.iterations, secs * 1e3, err,
                rep.converged ? "converged" : "NOT CONVERGED");
    return rep.iterations;
  };

  std::printf("\nPCG with different preconditioners:\n");
  run(solve::IdentityPreconditioner{}, "none");
  run(solve::JacobiPreconditioner{a}, "jacobi");
  run(solve::Ilu0Preconditioner{a}, "ilu0 (sequential)");
  run(solve::DoacrossIlu0Preconditioner{pool, a, /*reorder=*/true},
      "ilu0 (doacross)");

  std::printf(
      "\nThe sequential and doacross ILU runs take identical iteration\n"
      "counts because the parallel triangular solves are bitwise equal to\n"
      "the sequential ones.\n");
  return 0;
}
