// quickstart — parallelize a loop whose dependences exist only at run time.
//
// The loop below is the paper's Figure 1 shape:
//
//     for i in 0..n:  y[a[i]] = y[a[i]] + 0.5 * y[b[i]]
//
// where a and b are filled from input (here: pseudo-random). A compiler
// cannot parallelize this — whether iteration i depends on iteration j
// depends on the *values* in a and b. The preprocessed doacross runs it in
// parallel anyway and produces exactly the sequential result.
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <numeric>
#include <span>
#include <vector>

#include "core/doacross.hpp"
#include "gen/rng.hpp"
#include "runtime/thread_pool.hpp"

using pdx::index_t;

int main() {
  const index_t n = 100000;
  const index_t space = 2 * n;

  // Runtime-determined index arrays: a is a random injection (no two
  // iterations write the same element — the paper's precondition), b is
  // arbitrary.
  pdx::gen::SplitMix64 rng(2024);
  std::vector<index_t> a = pdx::gen::random_injection(n, space, rng);
  std::vector<index_t> b(n);
  for (auto& off : b) off = rng.next_index(space);

  std::vector<double> y0(space);
  for (auto& v : y0) v = rng.next_double(-1.0, 1.0);

  // --- Sequential reference -------------------------------------------
  std::vector<double> y_seq = y0;
  for (index_t i = 0; i < n; ++i) {
    y_seq[a[i]] = y_seq[a[i]] + 0.5 * y_seq[b[i]];
  }

  // --- Preprocessed doacross ------------------------------------------
  pdx::rt::ThreadPool pool;  // hardware width
  pdx::core::DoacrossEngine<double> engine(pool, space);

  std::vector<double> y_par = y0;
  const auto stats = engine.run(
      std::span<const index_t>(a), std::span<double>(y_par),
      // The body sees an Iteration: lhs() is the accumulator for y[a[i]],
      // read(off) resolves y[off] against the dependence tables.
      [&b](auto& it) { it.lhs() += 0.5 * it.read(b[it.index()]); });

  // --- Verify -----------------------------------------------------------
  std::size_t mismatches = 0;
  for (index_t i = 0; i < space; ++i) {
    if (y_seq[i] != y_par[i]) ++mismatches;
  }

  std::printf("preprocessed doacross over %lld iterations on %u threads\n",
              static_cast<long long>(n), pool.width());
  std::printf("  inspector  %8.1f us\n", stats.inspect_seconds * 1e6);
  std::printf("  executor   %8.1f us  (%llu busy-wait episodes)\n",
              stats.execute_seconds * 1e6,
              static_cast<unsigned long long>(stats.wait_episodes));
  std::printf("  postproc   %8.1f us\n", stats.post_seconds * 1e6);
  std::printf("  result: %s (%zu mismatching elements)\n",
              mismatches == 0 ? "exactly matches sequential execution"
                              : "MISMATCH",
              mismatches);
  return mismatches == 0 ? 0 : 1;
}
