// wavefront_smoother — a Gauss–Seidel sweep over an unstructured ordering.
//
// Gauss–Seidel updates u[i] using the *latest* values of its neighbours:
// earlier-numbered neighbours contribute updated values, later-numbered
// ones old values. On a structured grid a compiler could wavefront this;
// after a runtime renumbering (here: a random permutation of the grid,
// standing in for an unstructured mesh ordering read from a file) the
// dependence pattern exists only at execution time — exactly the paper's
// setting. The preprocessed doacross parallelizes the sweep and, with the
// doconsider reordering, recovers wavefront-like efficiency.
//
// Build & run:  ./examples/wavefront_smoother [grid] [sweeps]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "benchsupport/timer.hpp"
#include "core/doacross.hpp"
#include "core/doconsider.hpp"
#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/csr.hpp"
#include "sparse/permute.hpp"
#include "sparse/spmv.hpp"

using pdx::index_t;
namespace core = pdx::core;
namespace gen = pdx::gen;
namespace sp = pdx::sparse;

int main(int argc, char** argv) {
  const index_t grid = argc > 1 ? std::atoll(argv[1]) : 96;
  const int sweeps = argc > 2 ? std::atoi(argv[2]) : 20;

  // "Unstructured mesh": 5-point Laplacian under a random renumbering.
  sp::Csr a = gen::five_point(grid, grid);
  gen::SplitMix64 rng(11);
  std::vector<index_t> perm(static_cast<std::size_t>(a.rows));
  std::iota(perm.begin(), perm.end(), index_t{0});
  gen::shuffle(perm, rng);
  a = sp::permute_symmetric(a, perm);
  const index_t n = a.rows;

  std::vector<double> rhs(static_cast<std::size_t>(n), 1.0);
  std::vector<double> u0(static_cast<std::size_t>(n), 0.0);

  // One Gauss–Seidel sweep as a doacross body: the LHS is u[i] itself
  // (identity writer map) and each neighbour read is dependence-resolved.
  pdx::rt::ThreadPool pool;
  core::DoacrossEngine<double> eng(pool, n);
  std::vector<index_t> writer(static_cast<std::size_t>(n));
  std::iota(writer.begin(), writer.end(), index_t{0});

  auto sweep_body = [&a, &rhs](auto& it) {
    const index_t i = it.index();
    double sum = rhs[static_cast<std::size_t>(i)];
    double diag = 1.0;
    for (index_t k = a.row_begin(i); k < a.row_end(i); ++k) {
      const index_t c = a.idx[static_cast<std::size_t>(k)];
      const double v = a.val[static_cast<std::size_t>(k)];
      if (c == i) {
        diag = v;
      } else {
        sum -= v * it.read(c);
      }
    }
    it.lhs() = sum / diag;
  };

  // The Gauss–Seidel dependence graph: lower-numbered neighbours.
  const core::DepGraph deps = core::build_true_deps(
      n, writer, n, [&a](index_t i, const std::function<void(index_t)>& emit) {
        for (index_t c : a.row_cols(i)) {
          if (c != i) emit(c);
        }
      });
  const core::Reordering reorder = core::doconsider_order(deps);
  std::printf("renumbered %lld-point mesh: critical path %lld, "
              "avg parallelism %.1f\n",
              static_cast<long long>(n),
              static_cast<long long>(reorder.critical_path()),
              reorder.average_parallelism());

  auto residual = [&](const std::vector<double>& u) {
    std::vector<double> r(static_cast<std::size_t>(n));
    sp::spmv(a, u, r);
    double nrm = 0.0;
    for (index_t i = 0; i < n; ++i) {
      const double d = rhs[static_cast<std::size_t>(i)] - r[static_cast<std::size_t>(i)];
      nrm += d * d;
    }
    return std::sqrt(nrm);
  };

  auto run = [&](const core::DoacrossOptions& opts, const char* label) {
    std::vector<double> u = u0;
    pdx::bench::WallTimer t;
    for (int s = 0; s < sweeps; ++s) {
      eng.run(std::span<const index_t>(writer), std::span<double>(u),
              sweep_body, opts);
    }
    std::printf("  %-28s %8.2f ms   residual %.3e\n", label, t.millis(),
                residual(u));
    return u;
  };

  std::printf("\n%d Gauss-Seidel sweeps:\n", sweeps);
  core::DoacrossOptions src;
  src.schedule = pdx::rt::Schedule::dynamic(1);
  const auto u_src = run(src, "doacross, source order");
  core::DoacrossOptions ord;
  ord.order = reorder.order.data();
  ord.schedule = pdx::rt::Schedule::dynamic(1);  // spread each wavefront
  const auto u_ord = run(ord, "doacross, doconsider order");

  // Both orders implement the SAME sweep (sequential semantics), so the
  // results agree exactly.
  std::size_t mismatch = 0;
  for (index_t i = 0; i < n; ++i) {
    if (u_src[static_cast<std::size_t>(i)] != u_ord[static_cast<std::size_t>(i)]) {
      ++mismatch;
    }
  }
  std::printf("\nsource-order and reordered sweeps %s\n",
              mismatch == 0 ? "agree bitwise" : "DISAGREE");
  return mismatch == 0 ? 0 : 1;
}
