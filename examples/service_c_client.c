/* service_c_client — the stable C ABI exercised from plain C.
 *
 * This file is compiled as C (not C++): it proves solve/service_c.h is a
 * genuine C header and that a foreign runtime (C, Fortran via ISO_C_BINDING,
 * Python via ctypes/cffi, ...) can drive the whole service — register a
 * matrix, submit deadline-carrying jobs, read solutions and telemetry, and
 * shut down — without a single C++ type crossing the boundary.
 *
 * Build & run:  ./examples/service_c_client
 */
#include <math.h>
#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>

#include "solve/service_c.h"

/* Assemble the 2D five-point Laplacian on an nx x ny grid: the same
 * operator the C++ examples use (gen::five_point), built here in plain C.
 * Rows are sorted with the diagonal present, as ILU(0) requires. */
static int64_t five_point(int64_t nx, int64_t ny, int64_t **ptr_out,
                          int64_t **idx_out, double **val_out) {
  const int64_t n = nx * ny;
  int64_t *ptr = (int64_t *)malloc((size_t)(n + 1) * sizeof(int64_t));
  int64_t *idx = (int64_t *)malloc((size_t)(5 * n) * sizeof(int64_t));
  double *val = (double *)malloc((size_t)(5 * n) * sizeof(double));
  int64_t nnz = 0;
  ptr[0] = 0;
  for (int64_t y = 0; y < ny; ++y) {
    for (int64_t x = 0; x < nx; ++x) {
      const int64_t row = y * nx + x;
      if (y > 0) { idx[nnz] = row - nx; val[nnz++] = -1.0; }
      if (x > 0) { idx[nnz] = row - 1; val[nnz++] = -1.0; }
      idx[nnz] = row; val[nnz++] = 4.0;
      if (x + 1 < nx) { idx[nnz] = row + 1; val[nnz++] = -1.0; }
      if (y + 1 < ny) { idx[nnz] = row + nx; val[nnz++] = -1.0; }
      ptr[row + 1] = nnz;
    }
  }
  *ptr_out = ptr;
  *idx_out = idx;
  *val_out = val;
  return n;
}

int main(void) {
  int64_t *ptr, *idx;
  double *val;
  const int64_t n = five_point(32, 32, &ptr, &idx, &val);

  pdx_service_options opts;
  pdx_service_options_init(&opts);
  opts.queue_capacity = 64;
  opts.backpressure = PDX_BACKPRESSURE_BLOCK;
  opts.rel_tolerance = 1e-10;

  pdx_service *svc = NULL;
  pdx_status s = pdx_service_create(&opts, &svc);
  if (s != PDX_OK) {
    fprintf(stderr, "create failed: %s\n", pdx_status_name(s));
    return 1;
  }

  uint64_t id = 0;
  s = pdx_service_register_matrix(svc, n, ptr, idx, val, &id);
  if (s != PDX_OK) {
    fprintf(stderr, "register failed: %s\n", pdx_status_name(s));
    return 1;
  }
  printf("service_c_client: %lld equations registered as matrix %llu\n",
         (long long)n, (unsigned long long)id);

  double *b = (double *)malloc((size_t)n * sizeof(double));
  double *x = (double *)malloc((size_t)n * sizeof(double));
  char err[256];

  /* A few synchronous solves with a generous deadline. */
  int solved = 0;
  for (int k = 0; k < 4; ++k) {
    for (int64_t i = 0; i < n; ++i) {
      b[i] = sin(0.01 * (double)(i + 1) * (double)(k + 1));
    }
    s = pdx_service_solve(svc, id, b, x, n, /*timeout_ms=*/10000.0, err,
                          sizeof err);
    if (s != PDX_OK) {
      fprintf(stderr, "solve %d failed: %s (%s)\n", k, pdx_status_name(s),
              err);
      return 1;
    }
    ++solved;
  }

  /* Async round: submit a strip, then wait each handle. */
  pdx_job *jobs[8];
  for (int k = 0; k < 8; ++k) {
    for (int64_t i = 0; i < n; ++i) b[i] = (double)((i + 7 * k) % 13) - 6.0;
    s = pdx_service_submit(svc, id, b, n, 10000.0, &jobs[k]);
    if (s != PDX_OK) {
      fprintf(stderr, "submit %d failed: %s\n", k, pdx_status_name(s));
      return 1;
    }
  }
  for (int k = 0; k < 8; ++k) {
    s = pdx_job_wait(jobs[k], x, n, err, sizeof err);
    if (s != PDX_OK) {
      fprintf(stderr, "job %d: %s (%s)\n", k, pdx_status_name(s), err);
      return 1;
    }
    ++solved;
    pdx_job_free(jobs[k]);
  }

  /* A deadline that is already unmeetable must be expired without a
   * solve — the admission-control contract, visible from C. */
  s = pdx_service_solve(svc, id, b, x, n, /*timeout_ms=*/1e-9, err,
                        sizeof err);
  if (s != PDX_ERR_EXPIRED) {
    fprintf(stderr, "expected expired, got %s\n", pdx_status_name(s));
    return 1;
  }

  pdx_service_report rep;
  if (pdx_service_get_report(svc, &rep) != PDX_OK) return 1;
  printf("solved %llu, expired %llu, rejected %llu, failed %llu "
         "(of %llu submitted)\n",
         (unsigned long long)rep.solved, (unsigned long long)rep.expired,
         (unsigned long long)rep.rejected, (unsigned long long)rep.failed,
         (unsigned long long)rep.submitted);
  printf("latency p50 %.2f ms, p99 %.2f ms over %llu samples; "
         "plan cache %llu hits / %llu misses\n",
         rep.p50_ms, rep.p99_ms, (unsigned long long)rep.latency_samples,
         (unsigned long long)rep.cache_hits,
         (unsigned long long)rep.cache_misses);

  if ((int)rep.solved != solved || rep.expired != 1 ||
      rep.submitted != rep.solved + rep.expired + rep.rejected + rep.failed) {
    fprintf(stderr, "accounting mismatch — FAIL\n");
    return 1;
  }

  s = pdx_service_shutdown(svc, 1000.0);
  if (s != PDX_OK) {
    fprintf(stderr, "shutdown: %s\n", pdx_status_name(s));
    return 1;
  }
  pdx_service_free(svc);
  free(b);
  free(x);
  free(ptr);
  free(idx);
  free(val);
  printf("ok\n");
  return 0;
}
