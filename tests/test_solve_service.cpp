// Tests for the multi-tenant solve service (DESIGN.md §15): admission
// control under every backpressure policy, deadline enforcement at
// submission and at dequeue, graceful and hard shutdown, the pattern-keyed
// plan cache (LRU eviction + value-only refresh), exact job accounting,
// and the chaos matrix — injected faults on one tenant must leave other
// tenants' answers bitwise untouched while the per-matrix circuit breaker
// trips, degrades to the exact serial fallback, and recovers.
//
// This file runs in the TSan and ASan+UBSan CI matrices: the service's
// scheduler thread, client submitters, and the pool's workers are all
// live here.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <cmath>

#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "runtime/failure.hpp"
#include "runtime/thread_pool.hpp"
#include "solve/service.hpp"
#include "solve/service_c.h"
#include "solve/vec.hpp"
#include "sparse/csr.hpp"
#include "sparse/spmv.hpp"

namespace sp = pdx::sparse;
namespace gen = pdx::gen;
namespace solve = pdx::solve;
namespace rt = pdx::rt;
using pdx::index_t;
using solve::BackpressurePolicy;
using solve::JobOutcome;
using solve::RejectReason;

namespace {

rt::ThreadPool& pool() {
  static rt::ThreadPool p(8);
  return p;
}

/// Tridiagonal SPD chain: every row depends on the previous one, so
/// injected faults and stalls always have downstream waiters under the
/// parallel executors.
sp::Csr tridiag(index_t n) {
  sp::CsrBuilder b(n, n);
  for (index_t i = 0; i < n; ++i) {
    if (i > 0) b.add(i, i - 1, -1.0);
    b.add(i, i, 4.0);
    if (i < n - 1) b.add(i, i + 1, -1.0);
  }
  return b.build();
}

std::vector<double> random_vec(index_t n, std::uint64_t seed) {
  gen::SplitMix64 rng(seed);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& e : v) e = rng.next_double(-1.0, 1.0);
  return v;
}

double relative_residual(const sp::Csr& a, std::span<const double> b,
                         std::span<const double> x) {
  std::vector<double> r(static_cast<std::size_t>(a.rows));
  sp::spmv(a, x, r);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
  const double bnorm = solve::norm2(b);
  return solve::norm2(r) / (bnorm > 0.0 ? bnorm : 1.0);
}

/// Options for the chaos tests: the doacross executor pinned (so faults
/// fire inside a genuine parallel region), no calibration or tuning-cache
/// consultation (so two Service instances execute identically).
solve::ServiceOptions chaos_options() {
  solve::ServiceOptions o;
  o.solver.strategy = sp::ExecutionStrategy::kDoacross;
  o.solver.nthreads = 2;
  o.solver.calibration_epochs = 0;
  o.solver.use_tuning_cache = false;
  return o;
}

void expect_exact_accounting(const solve::ServiceReport& rep) {
  EXPECT_EQ(rep.submitted,
            rep.solved + rep.expired + rep.rejected + rep.failed);
  EXPECT_LE(rep.shed, rep.rejected);
}

}  // namespace

// ---------------------------------------------------------------- basics

TEST(Service, SolvesAndMeetsTolerance) {
  const sp::Csr a = gen::five_point(16, 16);
  solve::Service svc(pool(), {});
  const solve::MatrixId id = svc.register_matrix(a);

  std::vector<double> x(static_cast<std::size_t>(a.rows));
  for (int k = 0; k < 3; ++k) {
    const auto b = random_vec(a.rows, 100 + static_cast<std::uint64_t>(k));
    const solve::JobResult res = svc.solve(id, b, x);
    ASSERT_EQ(res.outcome, JobOutcome::kSolved) << res.error;
    EXPECT_FALSE(res.degraded);
    EXPECT_LE(relative_residual(a, b, x), 1e-8);
    EXPECT_GT(res.total_ms, 0.0);
  }
  const solve::ServiceReport rep = svc.report();
  EXPECT_EQ(rep.submitted, 3u);
  EXPECT_EQ(rep.solved, 3u);
  EXPECT_EQ(rep.latency_samples, 3u);
  EXPECT_GT(rep.p99_ms, 0.0);
  expect_exact_accounting(rep);
  EXPECT_TRUE(svc.shutdown(10000.0));
}

TEST(Service, ConcurrentClientsAllSolve) {
  const sp::Csr a = gen::five_point(12, 12);
  solve::ServiceOptions opts;
  opts.queue_capacity = 64;
  solve::Service svc(pool(), opts);
  const solve::MatrixId id = svc.register_matrix(a);

  constexpr int kClients = 4;
  constexpr int kJobsEach = 8;
  std::atomic<int> solved{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<double> x(static_cast<std::size_t>(a.rows));
      for (int k = 0; k < kJobsEach; ++k) {
        const auto b =
            random_vec(a.rows, static_cast<std::uint64_t>(c * 1000 + k));
        const solve::JobResult res = svc.solve(id, b, x);
        if (res.outcome == JobOutcome::kSolved &&
            relative_residual(a, b, x) <= 1e-8) {
          solved.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(solved.load(), kClients * kJobsEach);
  const solve::ServiceReport rep = svc.report();
  EXPECT_EQ(rep.solved, static_cast<std::uint64_t>(kClients * kJobsEach));
  EXPECT_LE(rep.queue_high_water, opts.queue_capacity);
  expect_exact_accounting(rep);
  EXPECT_TRUE(svc.shutdown(10000.0));
}

TEST(Service, UnknownMatrixAndBadSpanAreCallerBugs) {
  solve::Service svc(pool(), {});
  const solve::MatrixId id = svc.register_matrix(gen::five_point(4, 4));
  std::vector<double> short_b(3, 1.0);
  EXPECT_THROW(svc.submit(99, short_b), std::invalid_argument);
  EXPECT_THROW(svc.submit(id, short_b), std::invalid_argument);
  const solve::ServiceReport rep = svc.report();
  EXPECT_EQ(rep.submitted, 0u);  // caller bugs are never enqueued
}

// -------------------------------------------------------------- deadlines

TEST(Service, ExpiredAtSubmissionNeverRuns) {
  solve::Service svc(pool(), {});
  const sp::Csr a = gen::five_point(8, 8);
  const solve::MatrixId id = svc.register_matrix(a);
  const auto b = random_vec(a.rows, 7);

  const solve::JobHandle job = svc.submit_at(
      id, b, std::chrono::steady_clock::now() - std::chrono::seconds(1));
  const solve::JobResult res = job->wait();
  EXPECT_EQ(res.outcome, JobOutcome::kExpired);
  EXPECT_NE(res.error.find("at submission"), std::string::npos);

  const solve::ServiceReport rep = svc.report();
  EXPECT_EQ(rep.submitted, 1u);
  EXPECT_EQ(rep.expired, 1u);
  EXPECT_EQ(rep.cache_misses, 0u);  // no plan was ever built for it
  expect_exact_accounting(rep);
}

TEST(Service, DeadlineExpiresWhileQueued) {
  solve::Service svc(pool(), {});
  const sp::Csr a = gen::five_point(8, 8);
  const solve::MatrixId id = svc.register_matrix(a);
  const auto b = random_vec(a.rows, 8);

  svc.pause();  // hold the job in the queue past its deadline
  const solve::JobHandle job = svc.submit(id, b, /*timeout_ms=*/30.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  svc.resume();

  const solve::JobResult res = job->wait();
  EXPECT_EQ(res.outcome, JobOutcome::kExpired);
  EXPECT_NE(res.error.find("while queued"), std::string::npos);
  expect_exact_accounting(svc.report());
}

// ------------------------------------------------------------ backpressure

TEST(Service, RejectPolicyFailsNewJobWhenFull) {
  solve::ServiceOptions opts;
  opts.queue_capacity = 2;
  opts.backpressure = BackpressurePolicy::kReject;
  solve::Service svc(pool(), opts);
  const sp::Csr a = gen::five_point(8, 8);
  const solve::MatrixId id = svc.register_matrix(a);
  const auto b = random_vec(a.rows, 9);

  svc.pause();
  const solve::JobHandle j0 = svc.submit(id, b);
  const solve::JobHandle j1 = svc.submit(id, b);
  const solve::JobHandle j2 = svc.submit(id, b);  // queue full
  EXPECT_TRUE(j2->done());  // verdict delivered without any solve
  const solve::JobResult r2 = j2->wait();
  EXPECT_EQ(r2.outcome, JobOutcome::kRejected);
  EXPECT_EQ(r2.reject_reason, RejectReason::kQueueFull);
  svc.resume();

  EXPECT_EQ(j0->wait().outcome, JobOutcome::kSolved);
  EXPECT_EQ(j1->wait().outcome, JobOutcome::kSolved);
  const solve::ServiceReport rep = svc.report();
  EXPECT_EQ(rep.rejected, 1u);
  EXPECT_EQ(rep.shed, 0u);
  EXPECT_EQ(rep.queue_high_water, 2u);
  expect_exact_accounting(rep);
}

TEST(Service, ShedOldestPolicyEvictsQueueHead) {
  solve::ServiceOptions opts;
  opts.queue_capacity = 2;
  opts.backpressure = BackpressurePolicy::kShedOldest;
  solve::Service svc(pool(), opts);
  const sp::Csr a = gen::five_point(8, 8);
  const solve::MatrixId id = svc.register_matrix(a);
  const auto b = random_vec(a.rows, 10);

  svc.pause();
  const solve::JobHandle j0 = svc.submit(id, b);
  const solve::JobHandle j1 = svc.submit(id, b);
  const solve::JobHandle j2 = svc.submit(id, b);  // sheds j0, queues j2
  EXPECT_TRUE(j0->done());
  const solve::JobResult r0 = j0->wait();
  EXPECT_EQ(r0.outcome, JobOutcome::kRejected);
  EXPECT_EQ(r0.reject_reason, RejectReason::kShed);
  svc.resume();

  EXPECT_EQ(j1->wait().outcome, JobOutcome::kSolved);
  EXPECT_EQ(j2->wait().outcome, JobOutcome::kSolved);
  const solve::ServiceReport rep = svc.report();
  EXPECT_EQ(rep.shed, 1u);
  EXPECT_EQ(rep.rejected, 1u);
  expect_exact_accounting(rep);
}

TEST(Service, BlockPolicyBlocksSubmitterUntilSpace) {
  solve::ServiceOptions opts;
  opts.queue_capacity = 1;
  opts.backpressure = BackpressurePolicy::kBlock;
  solve::Service svc(pool(), opts);
  const sp::Csr a = gen::five_point(8, 8);
  const solve::MatrixId id = svc.register_matrix(a);
  const auto b = random_vec(a.rows, 11);

  svc.pause();
  const solve::JobHandle j0 = svc.submit(id, b);

  std::atomic<bool> admitted{false};
  solve::JobHandle j1;
  std::thread blocked([&] {
    j1 = svc.submit(id, b);  // must block: queue is full and paused
    admitted.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_FALSE(admitted.load(std::memory_order_acquire));

  svc.resume();  // scheduler drains j0, freeing space for j1
  blocked.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(j0->wait().outcome, JobOutcome::kSolved);
  EXPECT_EQ(j1->wait().outcome, JobOutcome::kSolved);
  expect_exact_accounting(svc.report());
}

TEST(Service, BlockPolicyExpiresDeadlineWhileBlocked) {
  solve::ServiceOptions opts;
  opts.queue_capacity = 1;
  opts.backpressure = BackpressurePolicy::kBlock;
  solve::Service svc(pool(), opts);
  const sp::Csr a = gen::five_point(8, 8);
  const solve::MatrixId id = svc.register_matrix(a);
  const auto b = random_vec(a.rows, 12);

  svc.pause();
  const solve::JobHandle j0 = svc.submit(id, b);
  // Queue full, scheduler paused: this submit blocks on admission until
  // its own deadline passes, then comes back expired — bounded, not hung.
  const solve::JobHandle j1 = svc.submit(id, b, /*timeout_ms=*/60.0);
  const solve::JobResult r1 = j1->wait();
  EXPECT_EQ(r1.outcome, JobOutcome::kExpired);
  EXPECT_NE(r1.error.find("admission"), std::string::npos);

  svc.resume();
  EXPECT_EQ(j0->wait().outcome, JobOutcome::kSolved);
  expect_exact_accounting(svc.report());
}

// ---------------------------------------------------------------- shutdown

TEST(Service, GracefulShutdownDrainsInFlightAndRefusesNew) {
  const sp::Csr a = gen::five_point(12, 12);
  solve::Service svc(pool(), {});
  const solve::MatrixId id = svc.register_matrix(a);

  std::vector<solve::JobHandle> jobs;
  for (int k = 0; k < 6; ++k) {
    jobs.push_back(svc.submit(id, random_vec(a.rows, 20 + k)));
  }
  EXPECT_TRUE(svc.shutdown(/*drain_timeout_ms=*/20000.0));
  for (const auto& job : jobs) {
    EXPECT_EQ(job->wait().outcome, JobOutcome::kSolved);
  }

  // After shutdown: submissions come back rejected (not thrown — overload
  // and lifecycle are job outcomes), registration is a logic error.
  const solve::JobHandle late = svc.submit(id, random_vec(a.rows, 30));
  const solve::JobResult res = late->wait();
  EXPECT_EQ(res.outcome, JobOutcome::kRejected);
  EXPECT_EQ(res.reject_reason, RejectReason::kShutdown);
  EXPECT_THROW(svc.register_matrix(a), std::logic_error);
  EXPECT_TRUE(svc.shutdown(0.0));  // idempotent

  const solve::ServiceReport rep = svc.report();
  EXPECT_EQ(rep.solved, 6u);
  EXPECT_EQ(rep.rejected, 1u);
  expect_exact_accounting(rep);
}

TEST(Service, HardShutdownAccountsForEveryQueuedJob) {
  const sp::Csr a = gen::five_point(12, 12);
  solve::Service svc(pool(), {});
  const solve::MatrixId id = svc.register_matrix(a);

  svc.pause();
  std::vector<solve::JobHandle> jobs;
  for (int k = 0; k < 5; ++k) {
    jobs.push_back(svc.submit(id, random_vec(a.rows, 40 + k)));
  }
  const bool drained = svc.shutdown(/*drain_timeout_ms=*/0.0);

  // Zero drain budget: whatever did not get solved must come back
  // rejected(shutdown) — never lost, never pending.
  std::uint64_t solved = 0, rejected = 0;
  for (const auto& job : jobs) {
    const solve::JobResult res = job->wait();
    if (res.outcome == JobOutcome::kSolved) {
      ++solved;
    } else {
      ASSERT_EQ(res.outcome, JobOutcome::kRejected) << res.error;
      EXPECT_EQ(res.reject_reason, RejectReason::kShutdown);
      ++rejected;
    }
  }
  EXPECT_EQ(solved + rejected, 5u);
  EXPECT_EQ(drained, rejected == 0);
  const solve::ServiceReport rep = svc.report();
  EXPECT_EQ(rep.solved, solved);
  EXPECT_EQ(rep.rejected, rejected);
  expect_exact_accounting(rep);
}

TEST(Service, EveryJobEndsInExactlyOneTerminalState) {
  // The acceptance criterion, exercised under overload: a paused bounded
  // queue, the shed policy, immediate and short deadlines all at once.
  solve::ServiceOptions opts;
  opts.queue_capacity = 4;
  opts.backpressure = BackpressurePolicy::kShedOldest;
  solve::Service svc(pool(), opts);
  const sp::Csr a = gen::five_point(10, 10);
  const solve::MatrixId id = svc.register_matrix(a);

  svc.pause();
  std::vector<solve::JobHandle> jobs;
  for (int k = 0; k < 12; ++k) {
    if (k % 4 == 3) {
      jobs.push_back(svc.submit_at(  // expired at submission
          id, random_vec(a.rows, 60 + k),
          std::chrono::steady_clock::now() - std::chrono::milliseconds(1)));
    } else if (k % 4 == 2) {
      jobs.push_back(svc.submit(id, random_vec(a.rows, 60 + k),
                                /*timeout_ms=*/40.0));
    } else {
      jobs.push_back(svc.submit(id, random_vec(a.rows, 60 + k)));
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(90));
  svc.resume();

  std::uint64_t counts[5] = {0, 0, 0, 0, 0};
  for (const auto& job : jobs) {
    const solve::JobResult res = job->wait();
    ASSERT_NE(res.outcome, JobOutcome::kPending);
    ++counts[static_cast<int>(res.outcome)];
  }
  const solve::ServiceReport rep = svc.report();
  EXPECT_EQ(rep.submitted, 12u);
  EXPECT_EQ(rep.solved, counts[static_cast<int>(JobOutcome::kSolved)]);
  EXPECT_EQ(rep.expired, counts[static_cast<int>(JobOutcome::kExpired)]);
  EXPECT_EQ(rep.rejected, counts[static_cast<int>(JobOutcome::kRejected)]);
  EXPECT_EQ(rep.failed, counts[static_cast<int>(JobOutcome::kFailed)]);
  EXPECT_GE(rep.expired, 3u);  // the three expired-at-submission jobs
  expect_exact_accounting(rep);
  EXPECT_TRUE(svc.shutdown(10000.0));
}

// --------------------------------------------------------------- plan cache

TEST(Service, LruCapEvictsLeastRecentlyUsedPlans) {
  solve::ServiceOptions opts;
  opts.max_live_plans = 1;
  solve::Service svc(pool(), opts);
  const sp::Csr a = gen::five_point(10, 10);
  const sp::Csr c = tridiag(128);
  const solve::MatrixId ta = svc.register_matrix(a);
  const solve::MatrixId tc = svc.register_matrix(c);

  std::vector<double> xa(static_cast<std::size_t>(a.rows));
  std::vector<double> xc(static_cast<std::size_t>(c.rows));
  const auto ba = random_vec(a.rows, 70);
  const auto bc = random_vec(c.rows, 71);

  EXPECT_EQ(svc.solve(ta, ba, xa).outcome, JobOutcome::kSolved);  // build A
  EXPECT_EQ(svc.solve(tc, bc, xc).outcome, JobOutcome::kSolved);  // evict A
  EXPECT_EQ(svc.solve(ta, ba, xa).outcome, JobOutcome::kSolved);  // evict C
  EXPECT_EQ(svc.solve(ta, ba, xa).outcome, JobOutcome::kSolved);  // hit A

  EXPECT_LE(relative_residual(a, ba, xa), 1e-8);
  EXPECT_LE(relative_residual(c, bc, xc), 1e-8);
  const solve::ServiceReport rep = svc.report();
  EXPECT_EQ(rep.cache_misses, 3u);
  EXPECT_EQ(rep.cache_evictions, 2u);
  EXPECT_EQ(rep.cache_hits, 1u);
  EXPECT_EQ(rep.live_plans, 1u);
  EXPECT_TRUE(svc.matrix_info(ta).live);
  EXPECT_FALSE(svc.matrix_info(tc).live);
}

TEST(Service, PatternHitAppliesValueOnlyRefresh) {
  solve::Service svc(pool(), {});
  sp::Csr a = gen::five_point(12, 12);
  const solve::MatrixId id = svc.register_matrix(a);
  std::vector<double> x(static_cast<std::size_t>(a.rows));

  const auto b0 = random_vec(a.rows, 80);
  ASSERT_EQ(svc.solve(id, b0, x).outcome, JobOutcome::kSolved);

  // Same pattern, new values: must be adopted as a refresh, not a rebuild,
  // and the next solve must answer against the NEW operator.
  for (double& v : a.val) v *= 1.75;
  svc.update_values(id, a);
  const auto b1 = random_vec(a.rows, 81);
  ASSERT_EQ(svc.solve(id, b1, x).outcome, JobOutcome::kSolved);
  EXPECT_LE(relative_residual(a, b1, x), 1e-8);

  const solve::ServiceReport rep = svc.report();
  EXPECT_EQ(rep.cache_misses, 1u);
  EXPECT_EQ(rep.value_refreshes, 1u);
  EXPECT_EQ(svc.matrix_info(id).refreshes, 1u);
}

TEST(Service, PatternChangeRebuildsPlans) {
  solve::Service svc(pool(), {});
  const sp::Csr a = gen::five_point(8, 8);  // n = 64
  const sp::Csr c = tridiag(64);            // same n, different stencil
  const solve::MatrixId id = svc.register_matrix(a);
  std::vector<double> x(static_cast<std::size_t>(a.rows));

  const auto b0 = random_vec(a.rows, 90);
  ASSERT_EQ(svc.solve(id, b0, x).outcome, JobOutcome::kSolved);

  svc.update_values(id, c);  // new pattern: plans invalidated
  const auto b1 = random_vec(c.rows, 91);
  ASSERT_EQ(svc.solve(id, b1, x).outcome, JobOutcome::kSolved);
  EXPECT_LE(relative_residual(c, b1, x), 1e-8);

  const solve::ServiceReport rep = svc.report();
  EXPECT_EQ(rep.cache_misses, 2u);
  EXPECT_EQ(rep.value_refreshes, 0u);
}

// -------------------------------------------------------------------- chaos

TEST(Service, ChaosFaultsOnTenantALeaveTenantBBitwiseUntouched) {
  const sp::Csr ma = tridiag(300);
  const sp::Csr mb = gen::five_point(20, 20);
  constexpr int kBJobs = 4;

  // Reference: tenant B's exact answers with no chaos anywhere.
  std::vector<std::vector<double>> ref(kBJobs);
  {
    solve::Service svc(pool(), chaos_options());
    (void)svc.register_matrix(ma);
    const solve::MatrixId tb = svc.register_matrix(mb);
    for (int k = 0; k < kBJobs; ++k) {
      const solve::JobHandle job =
          svc.submit(tb, random_vec(mb.rows, 500 + k));
      ASSERT_EQ(job->wait().outcome, JobOutcome::kSolved);
      const auto sol = job->solution();
      ref[k].assign(sol.begin(), sol.end());
    }
  }

  // Chaos: repeated injected worker faults inside tenant A's parallel
  // plan, driving A's breaker open, while tenant B keeps serving.
  solve::ServiceOptions opts = chaos_options();
  opts.breaker_threshold = 2;
  opts.breaker_backoff_ms = 60000.0;  // stays open for the whole test
  solve::Service svc(pool(), opts);
  const solve::MatrixId ta = svc.register_matrix(ma);
  const solve::MatrixId tb = svc.register_matrix(mb);
  rt::FaultInjector inj;
  svc.set_fault_injector(ta, &inj);
  const auto b_a = random_vec(ma.rows, 600);

  for (int k = 0; k < opts.breaker_threshold; ++k) {
    inj.arm_throw(rt::FaultInjector::kAnyTid, rt::FaultInjector::kAnyRow,
                  "injected chaos fault");
    const solve::JobHandle job = svc.submit(ta, b_a);
    const solve::JobResult res = job->wait();
    // The fault poisons A's parallel plan mid-drain; the preconditioner's
    // exact serial fallback finishes the job (§12), so the tenant sees a
    // degraded SOLVE, not a failure — and the breaker counts the
    // infrastructure loss underneath.
    ASSERT_EQ(res.outcome, JobOutcome::kSolved) << res.error;
    EXPECT_TRUE(res.degraded);
    EXPECT_LE(relative_residual(ma, b_a, job->solution()), 1e-8);
  }
  EXPECT_EQ(inj.faults_fired(), opts.breaker_threshold);
  EXPECT_EQ(svc.matrix_info(ta).breaker, solve::BreakerState::kOpen);

  // Tenant A now serves degraded-but-correct through the serial fallback
  // (which never sees the injector)...
  {
    const solve::JobHandle job = svc.submit(ta, b_a);
    const solve::JobResult res = job->wait();
    ASSERT_EQ(res.outcome, JobOutcome::kSolved) << res.error;
    EXPECT_TRUE(res.degraded);
    EXPECT_LE(relative_residual(ma, b_a, job->solution()), 1e-8);
  }

  // ...and tenant B's answers are bitwise identical to the no-chaos run.
  for (int k = 0; k < kBJobs; ++k) {
    const solve::JobHandle job = svc.submit(tb, random_vec(mb.rows, 500 + k));
    const solve::JobResult res = job->wait();
    ASSERT_EQ(res.outcome, JobOutcome::kSolved) << res.error;
    EXPECT_FALSE(res.degraded);
    const auto sol = job->solution();
    ASSERT_EQ(sol.size(), ref[k].size());
    for (std::size_t i = 0; i < sol.size(); ++i) {
      ASSERT_EQ(sol[i], ref[k][i]) << "tenant B diverged at row " << i
                                   << " of job " << k;
    }
  }

  const solve::ServiceReport rep = svc.report();
  EXPECT_GE(rep.breaker_trips, 1u);
  // threshold faulted jobs + one served while the breaker was open.
  EXPECT_EQ(rep.degraded_jobs,
            static_cast<std::uint64_t>(opts.breaker_threshold) + 1u);
  EXPECT_EQ(rep.failed, 0u);  // every chaos job still got an exact answer
  expect_exact_accounting(rep);
  EXPECT_TRUE(svc.shutdown(20000.0));
}

TEST(Service, BreakerTripsDegradesAndRecovers) {
  solve::ServiceOptions opts = chaos_options();
  opts.breaker_threshold = 2;
  opts.breaker_backoff_ms = 400.0;
  solve::Service svc(pool(), opts);
  const sp::Csr a = tridiag(300);
  const solve::MatrixId id = svc.register_matrix(a);
  rt::FaultInjector inj;
  svc.set_fault_injector(id, &inj);
  const auto b = random_vec(a.rows, 700);

  // Two consecutive infrastructure failures (faults poison the plan; the
  // jobs themselves still solve exactly, degraded): closed -> open.
  for (int k = 0; k < 2; ++k) {
    inj.arm_throw();
    const solve::JobResult res = svc.submit(id, b)->wait();
    ASSERT_EQ(res.outcome, JobOutcome::kSolved) << res.error;
    EXPECT_TRUE(res.degraded);
  }
  solve::MatrixInfo mi = svc.matrix_info(id);
  EXPECT_EQ(mi.breaker, solve::BreakerState::kOpen);
  EXPECT_GE(mi.backoff_ms, opts.breaker_backoff_ms);

  // Open: immediately-following traffic is served degraded (fallback),
  // exactly (the factors are intact — §12).
  {
    const solve::JobHandle job = svc.submit(id, b);
    const solve::JobResult res = job->wait();
    ASSERT_EQ(res.outcome, JobOutcome::kSolved) << res.error;
    EXPECT_TRUE(res.degraded);
    EXPECT_LE(relative_residual(a, b, job->solution()), 1e-8);
  }

  // Backoff elapsed, injector quiet: the half-open probe rebuilds the
  // planned path, succeeds, and closes the breaker.
  inj.disarm();
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  {
    const solve::JobHandle job = svc.submit(id, b);
    const solve::JobResult res = job->wait();
    ASSERT_EQ(res.outcome, JobOutcome::kSolved) << res.error;
    EXPECT_FALSE(res.degraded);
  }
  mi = svc.matrix_info(id);
  EXPECT_EQ(mi.breaker, solve::BreakerState::kClosed);
  EXPECT_EQ(mi.consecutive_failures, 0);

  const solve::ServiceReport rep = svc.report();
  EXPECT_GE(rep.breaker_trips, 1u);
  EXPECT_GE(rep.breaker_recoveries, 1u);
  EXPECT_EQ(rep.degraded_jobs, 3u);  // two faulted + one breaker-open
  EXPECT_EQ(rep.failed, 0u);
  expect_exact_accounting(rep);
}

TEST(Service, StallErrorCarriesStrategyAndMatrixContext) {
  solve::ServiceOptions opts = chaos_options();
  opts.stall_budget = 8000;  // well past any healthy in-region wait
  // The refresh stall below must hit a PARALLEL numeric refactor — the
  // serial factor path has no peers to wedge, only the sleep valve.
  opts.solver.factor_strategy = sp::ExecutionStrategy::kDoacross;
  solve::Service svc(pool(), opts);
  const index_t n = 400;
  const sp::Csr a = tridiag(n);
  const solve::MatrixId id = svc.register_matrix(a);
  rt::FaultInjector inj;
  svc.set_fault_injector(id, &inj);
  const auto b = random_vec(n, 800);

  // Warm the plan so the stall hits live serving state, not a cold build.
  ASSERT_EQ(svc.submit(id, b)->wait().outcome, JobOutcome::kSolved);

  // A stall during a value-only refresh: the parallel refactor's watchdog
  // throws rt::StallError out of the plan-refresh path, and the service
  // must annotate it with the serving context (which executor, which
  // tenant) before it becomes the job-level error. The injector's escape
  // valve is deliberately huge: the watchdog burns spin ROUNDS, not wall
  // time, and on an oversubscribed CI box each post-pause round is a
  // yield that can cost a scheduling quantum — the valve must stay far
  // above the budget's worst-case burn or the stall resolves itself and
  // the test goes flaky.
  sp::Csr scaled = a;
  for (double& v : scaled.val) v *= 1.25;
  svc.update_values(id, scaled);
  inj.arm_stall(rt::FaultInjector::kAnyTid, n / 2, /*max_stall_ms=*/240000);
  const solve::JobHandle job = svc.submit(id, b);
  const solve::JobResult res = job->wait();
  ASSERT_EQ(res.outcome, JobOutcome::kFailed);
  EXPECT_NE(res.error.find("stall watchdog"), std::string::npos) << res.error;
  EXPECT_NE(res.error.find("strategy doacross"), std::string::npos)
      << res.error;
  EXPECT_NE(res.error.find("matrix " + std::to_string(id)), std::string::npos)
      << res.error;
  EXPECT_EQ(inj.stalls_fired(), 1);

  // One stall is below the breaker threshold: the next job rebuilds the
  // planned path (from the refreshed values) and the service keeps
  // serving at full speed.
  inj.disarm();
  const solve::JobHandle next = svc.submit(id, b);
  const solve::JobResult after = next->wait();
  ASSERT_EQ(after.outcome, JobOutcome::kSolved) << after.error;
  EXPECT_FALSE(after.degraded);
  EXPECT_LE(relative_residual(scaled, b, next->solution()), 1e-8);

  // A stall during a DRAIN, by contrast, is absorbed by the
  // preconditioner's exact serial fallback: the job still solves,
  // degraded, and the breaker hears about the lost executor.
  inj.arm_stall(rt::FaultInjector::kAnyTid, n / 2, /*max_stall_ms=*/240000);
  const solve::JobResult deg = svc.submit(id, b)->wait();
  ASSERT_EQ(deg.outcome, JobOutcome::kSolved) << deg.error;
  EXPECT_TRUE(deg.degraded);
  EXPECT_EQ(inj.stalls_fired(), 2);

  const solve::ServiceReport rep = svc.report();
  EXPECT_EQ(rep.stalls, 1u);  // only the surfaced (refresh) stall
  EXPECT_EQ(rep.failed, 1u);
  expect_exact_accounting(rep);
  EXPECT_TRUE(svc.shutdown(20000.0));
}

// ----------------------------------------------------------- bad client data

TEST(Service, NonFiniteRhsFailsJobWithoutKillingSchedulerOrBreaker) {
  // Regression: BatchDriver::enqueue throws on a NaN/Inf b when
  // screen_nonfinite is on. That throw used to escape the scheduler
  // thread (no handler around the enqueue loop) and std::terminate the
  // whole service. It must instead fail the strip's jobs, leave the
  // breaker alone (client data, not infrastructure), and keep serving.
  solve::ServiceOptions opts;
  opts.solver.screen_nonfinite = true;
  solve::Service svc(pool(), opts);
  const sp::Csr a = gen::five_point(8, 8);
  const solve::MatrixId id = svc.register_matrix(a);

  auto bad = random_vec(a.rows, 900);
  bad[5] = std::nan("");
  const solve::JobResult res = svc.submit(id, bad)->wait();
  ASSERT_EQ(res.outcome, JobOutcome::kFailed);
  EXPECT_NE(res.error.find("non-finite"), std::string::npos) << res.error;

  // No breaker charge for caller data: the planned path stays armed.
  const solve::MatrixInfo mi = svc.matrix_info(id);
  EXPECT_EQ(mi.breaker, solve::BreakerState::kClosed);
  EXPECT_EQ(mi.consecutive_failures, 0);

  // The scheduler survived: the next clean job solves at full speed.
  const auto good = random_vec(a.rows, 901);
  const solve::JobHandle job = svc.submit(id, good);
  const solve::JobResult ok = job->wait();
  ASSERT_EQ(ok.outcome, JobOutcome::kSolved) << ok.error;
  EXPECT_FALSE(ok.degraded);
  EXPECT_LE(relative_residual(a, good, job->solution()), 1e-8);

  const solve::ServiceReport rep = svc.report();
  EXPECT_EQ(rep.failed, 1u);
  EXPECT_EQ(rep.solved, 1u);
  expect_exact_accounting(rep);
  EXPECT_TRUE(svc.shutdown(10000.0));
}

TEST(Service, SchedulerSurvivesDeadPoolAndDegradesToSerialFallback) {
  // The scheduler must absorb a pool that refuses regions (thrown
  // std::logic_error at dispatch) the same way it absorbs any other
  // infrastructure failure: fail the strip, trip the breaker, and keep
  // serving through the inline serial fallback — never terminate.
  rt::ThreadPool own_pool(4);
  solve::ServiceOptions opts = chaos_options();
  opts.breaker_threshold = 1;
  opts.breaker_backoff_ms = 60000.0;  // stays open for the whole test
  solve::Service svc(own_pool, opts);
  const sp::Csr a = tridiag(300);
  const solve::MatrixId id = svc.register_matrix(a);
  const auto b = random_vec(a.rows, 910);

  {  // Warm the planned (parallel) path while the pool is healthy.
    const solve::JobHandle job = svc.submit(id, b);
    ASSERT_EQ(job->wait().outcome, JobOutcome::kSolved);
  }

  // All workers idle: this join is clean, but every later region throws.
  own_pool.shutdown(std::chrono::milliseconds(10000));

  const solve::JobResult dead = svc.submit(id, b)->wait();
  ASSERT_EQ(dead.outcome, JobOutcome::kFailed);
  EXPECT_NE(dead.error.find("shut down"), std::string::npos) << dead.error;
  EXPECT_EQ(svc.matrix_info(id).breaker, solve::BreakerState::kOpen);

  // Breaker open: the serial fallback runs inline (width-1 regions never
  // touch the dead pool) and still serves exact answers.
  const solve::JobHandle job = svc.submit(id, b);
  const solve::JobResult deg = job->wait();
  ASSERT_EQ(deg.outcome, JobOutcome::kSolved) << deg.error;
  EXPECT_TRUE(deg.degraded);
  EXPECT_LE(relative_residual(a, b, job->solution()), 1e-8);

  const solve::ServiceReport rep = svc.report();
  EXPECT_EQ(rep.submitted, 3u);
  EXPECT_EQ(rep.solved, 2u);
  EXPECT_EQ(rep.failed, 1u);
  EXPECT_GE(rep.breaker_trips, 1u);
  expect_exact_accounting(rep);
  EXPECT_TRUE(svc.shutdown(10000.0));
}

// ------------------------------------------------------------------- C ABI

TEST(ServiceCAbi, MalformedCsrIsRejectedBeforeAnyCopy) {
  // Regression: make_csr used to trust ptr[n] as the element count
  // before any validation — a negative or garbage value cast to a huge
  // size_t and read far out of bounds across the exception-free C
  // boundary. The C layer must reject malformed arrays up front.
  pdx_service* svc = nullptr;
  pdx_service_options o;
  pdx_service_options_init(&o);
  ASSERT_EQ(pdx_service_create(&o, &svc), PDX_OK);

  int64_t ptr_ok[3] = {0, 1, 2};
  int64_t idx_ok[2] = {0, 1};
  double val[2] = {4.0, 4.0};
  uint64_t id = 0;

  int64_t ptr_negative_nnz[3] = {0, 1, -4};
  EXPECT_EQ(pdx_service_register_matrix(svc, 2, ptr_negative_nnz, idx_ok, val,
                                        &id),
            PDX_ERR_INVALID_ARGUMENT);
  int64_t ptr_decreasing[3] = {0, 2, 1};
  EXPECT_EQ(pdx_service_register_matrix(svc, 2, ptr_decreasing, idx_ok, val,
                                        &id),
            PDX_ERR_INVALID_ARGUMENT);
  int64_t ptr_nonzero_base[3] = {1, 1, 2};
  EXPECT_EQ(pdx_service_register_matrix(svc, 2, ptr_nonzero_base, idx_ok, val,
                                        &id),
            PDX_ERR_INVALID_ARGUMENT);
  int64_t idx_out_of_range[2] = {0, 5};
  EXPECT_EQ(pdx_service_register_matrix(svc, 2, ptr_ok, idx_out_of_range, val,
                                        &id),
            PDX_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(pdx_service_register_matrix(svc, 0, ptr_ok, idx_ok, val, &id),
            PDX_ERR_INVALID_ARGUMENT);

  ASSERT_EQ(pdx_service_register_matrix(svc, 2, ptr_ok, idx_ok, val, &id),
            PDX_OK);
  EXPECT_EQ(pdx_service_update_values(svc, id, 2, ptr_negative_nnz, idx_ok,
                                      val),
            PDX_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(pdx_service_update_values(svc, id, 2, ptr_ok, idx_ok, val),
            PDX_OK);

  pdx_service_free(svc);
}

TEST(ServiceCAbi, NegativeXLenIsInvalidNotABufferOverflow) {
  // Regression: pdx_job_wait cast x_len straight to size_t, so a
  // negative length passed the too-small check and memcpy overran the
  // caller's buffer.
  pdx_service* svc = nullptr;
  pdx_service_options o;
  pdx_service_options_init(&o);
  ASSERT_EQ(pdx_service_create(&o, &svc), PDX_OK);

  int64_t ptr[3] = {0, 1, 2};
  int64_t idx[2] = {0, 1};
  double val[2] = {4.0, 4.0};
  uint64_t id = 0;
  ASSERT_EQ(pdx_service_register_matrix(svc, 2, ptr, idx, val, &id), PDX_OK);

  double b[2] = {4.0, 8.0};
  pdx_job* job = nullptr;
  ASSERT_EQ(pdx_service_submit(svc, id, b, 2, /*timeout_ms=*/0.0, &job),
            PDX_OK);

  char err[128] = {0};
  double x[2] = {0.0, 0.0};
  EXPECT_EQ(pdx_job_wait(job, x, -1, err, sizeof err),
            PDX_ERR_INVALID_ARGUMENT);
  EXPECT_NE(std::string(err).find("negative"), std::string::npos) << err;
  EXPECT_EQ(x[0], 0.0);  // nothing was written

  // The same handle with a sane length still hands out the solution.
  ASSERT_EQ(pdx_job_wait(job, x, 2, err, sizeof err), PDX_OK);
  EXPECT_NEAR(x[0], 1.0, 1e-8);
  EXPECT_NEAR(x[1], 2.0, 1e-8);

  pdx_job_free(job);
  pdx_service_free(svc);
}
