// Tests for the RCM ordering and the BiCGSTAB solver.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "gen/block_operator.hpp"
#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "solve/bicgstab.hpp"
#include "solve/precond.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/levels.hpp"
#include "sparse/permute.hpp"
#include "sparse/rcm.hpp"
#include "sparse/spmv.hpp"
#include "sparse/trisolve.hpp"

namespace sp = pdx::sparse;
namespace gen = pdx::gen;
namespace solve = pdx::solve;
using pdx::index_t;

TEST(Rcm, ProducesAPermutation) {
  const sp::Csr a = gen::five_point(9, 7);
  const auto perm = sp::rcm_order(a);
  ASSERT_EQ(static_cast<index_t>(perm.size()), a.rows);
  std::set<index_t> uniq(perm.begin(), perm.end());
  EXPECT_EQ(static_cast<index_t>(uniq.size()), a.rows);
  EXPECT_GE(*uniq.begin(), 0);
  EXPECT_LT(*uniq.rbegin(), a.rows);
}

TEST(Rcm, ReducesBandwidthOfShuffledMesh) {
  // Destroy the natural ordering with a random permutation; RCM must
  // recover a bandwidth close to the grid's natural nx.
  sp::Csr a = gen::five_point(24, 24);
  gen::SplitMix64 rng(17);
  std::vector<index_t> shuffle_perm(static_cast<std::size_t>(a.rows));
  std::iota(shuffle_perm.begin(), shuffle_perm.end(), index_t{0});
  gen::shuffle(shuffle_perm, rng);
  const sp::Csr shuffled = sp::permute_symmetric(a, shuffle_perm);
  const index_t bw_shuffled = sp::bandwidth(shuffled);

  const auto perm = sp::rcm_order(shuffled);
  const sp::Csr ordered = sp::permute_symmetric(shuffled, perm);
  const index_t bw_rcm = sp::bandwidth(ordered);

  EXPECT_LT(bw_rcm, bw_shuffled / 4) << "RCM failed to reduce bandwidth";
  EXPECT_LE(bw_rcm, 64);  // natural bandwidth is 24; allow generous slack
}

TEST(Rcm, HandlesDisconnectedComponents) {
  // Two independent 1-D chains in one matrix.
  sp::CsrBuilder b(8, 8);
  for (index_t i = 0; i < 4; ++i) b.add(i, i, 2.0);
  for (index_t i = 4; i < 8; ++i) b.add(i, i, 2.0);
  b.add(0, 1, -1.0); b.add(1, 0, -1.0);
  b.add(1, 2, -1.0); b.add(2, 1, -1.0);
  b.add(5, 6, -1.0); b.add(6, 5, -1.0);
  const sp::Csr m = b.build();
  const auto perm = sp::rcm_order(m);
  std::set<index_t> uniq(perm.begin(), perm.end());
  EXPECT_EQ(uniq.size(), 8u);
}

TEST(Rcm, ShortensTrisolveDependenceDistances) {
  // The library-level motivation: after RCM, the ILU(0) factor's
  // dependences are near-diagonal, shrinking the max distance the
  // schedule advisor keys on.
  sp::Csr a = gen::five_point(20, 20);
  gen::SplitMix64 rng(23);
  std::vector<index_t> shuffle_perm(static_cast<std::size_t>(a.rows));
  std::iota(shuffle_perm.begin(), shuffle_perm.end(), index_t{0});
  gen::shuffle(shuffle_perm, rng);
  const sp::Csr shuffled = sp::permute_symmetric(a, shuffle_perm);

  const index_t bw_before = sp::bandwidth(sp::ilu0(shuffled).l);
  const sp::Csr rcm_mat =
      sp::permute_symmetric(shuffled, sp::rcm_order(shuffled));
  const index_t bw_after = sp::bandwidth(sp::ilu0(rcm_mat).l);
  EXPECT_LT(bw_after, bw_before / 2);
}

TEST(Rcm, RejectsNonSquare) {
  sp::CsrBuilder b(2, 3);
  b.add(0, 0, 1.0);
  EXPECT_THROW(sp::rcm_order(b.build()), std::invalid_argument);
}

TEST(Bandwidth, KnownValues) {
  const sp::Csr a = gen::five_point(5, 5);
  EXPECT_EQ(sp::bandwidth(a), 5);  // the nx coupling
  sp::CsrBuilder d(3, 3);
  for (index_t i = 0; i < 3; ++i) d.add(i, i, 1.0);
  EXPECT_EQ(sp::bandwidth(d.build()), 0);
}

// ---------------------------------------------------------------------
// BiCGSTAB.
// ---------------------------------------------------------------------

namespace {

std::vector<double> rhs_for(const sp::Csr& a, std::vector<double>* x_true,
                            std::uint64_t seed) {
  gen::SplitMix64 rng(seed);
  std::vector<double> x(static_cast<std::size_t>(a.rows));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  std::vector<double> b(static_cast<std::size_t>(a.rows));
  sp::spmv(a, x, b);
  if (x_true) *x_true = std::move(x);
  return b;
}

}  // namespace

TEST(Bicgstab, ConvergesOnSpdPoisson) {
  const sp::Csr a = gen::five_point(25, 25);
  std::vector<double> x_true;
  const auto b = rhs_for(a, &x_true, 31);
  std::vector<double> x(static_cast<std::size_t>(a.rows), 0.0);
  const auto rep = solve::bicgstab(a, b, x, solve::Ilu0Preconditioner{a});
  EXPECT_TRUE(rep.converged);
  double err = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    err = std::max(err, std::abs(x[i] - x_true[i]));
  }
  EXPECT_LT(err, 1e-6);
}

TEST(Bicgstab, ConvergesOnNonsymmetricBlockOperator) {
  const sp::Csr a = gen::block_seven_point(
      {.nx = 5, .ny = 4, .nz = 2, .block = 3, .seed = 33});
  std::vector<double> x_true;
  const auto b = rhs_for(a, &x_true, 34);
  std::vector<double> x(static_cast<std::size_t>(a.rows), 0.0);
  const auto rep = solve::bicgstab(a, b, x, solve::Ilu0Preconditioner{a});
  EXPECT_TRUE(rep.converged);
  double err = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    err = std::max(err, std::abs(x[i] - x_true[i]));
  }
  EXPECT_LT(err, 1e-6);
}

TEST(Bicgstab, PreconditioningCutsIterations) {
  const sp::Csr a = gen::five_point(35, 35);
  const auto b = rhs_for(a, nullptr, 35);
  std::vector<double> x1(static_cast<std::size_t>(a.rows), 0.0);
  const auto rep_id = solve::bicgstab(a, b, x1, solve::IdentityPreconditioner{});
  std::vector<double> x2(static_cast<std::size_t>(a.rows), 0.0);
  const auto rep_ilu = solve::bicgstab(a, b, x2, solve::Ilu0Preconditioner{a});
  EXPECT_TRUE(rep_ilu.converged);
  EXPECT_LT(rep_ilu.iterations, rep_id.iterations);
}

TEST(Bicgstab, IterationCapReportsNonConvergence) {
  const sp::Csr a = gen::five_point(20, 20);
  const auto b = rhs_for(a, nullptr, 36);
  std::vector<double> x(static_cast<std::size_t>(a.rows), 0.0);
  const auto rep = solve::bicgstab(a, b, x, solve::IdentityPreconditioner{},
                                   {.max_iterations = 2,
                                    .rel_tolerance = 1e-14});
  EXPECT_FALSE(rep.converged);
  EXPECT_LE(rep.iterations, 2);
}

TEST(Bicgstab, ZeroRhsImmediate) {
  const sp::Csr a = gen::five_point(6, 6);
  std::vector<double> b(static_cast<std::size_t>(a.rows), 0.0);
  std::vector<double> x(static_cast<std::size_t>(a.rows), 0.0);
  const auto rep = solve::bicgstab(a, b, x, solve::IdentityPreconditioner{});
  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(rep.iterations, 0);
}
