// Tests for the doconsider reordering: level computation, schedule
// validity, reordered execution correctness, and waiting reduction.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/doacross.hpp"
#include "core/doconsider.hpp"
#include "gen/random_loop.hpp"
#include "gen/testloop.hpp"
#include "runtime/thread_pool.hpp"

namespace core = pdx::core;
namespace gen = pdx::gen;
namespace rt = pdx::rt;
using pdx::index_t;

namespace {

rt::ThreadPool& pool() {
  static rt::ThreadPool p(8);
  return p;
}

core::DepFn chain_deps() {
  // i depends on i-1: one serial chain.
  return [](index_t i, const core::DepVisitor& emit) {
    if (i > 0) emit(i - 1);
  };
}

core::DepFn no_deps() {
  return [](index_t, const core::DepVisitor&) {};
}

}  // namespace

TEST(DependenceLevels, IndependentIterationsAllLevelZero) {
  const auto lv = core::dependence_levels(10, no_deps());
  for (index_t l : lv) EXPECT_EQ(l, 0);
}

TEST(DependenceLevels, ChainLevelsAreDepth) {
  const auto lv = core::dependence_levels(6, chain_deps());
  for (index_t i = 0; i < 6; ++i) EXPECT_EQ(lv[static_cast<std::size_t>(i)], i);
}

TEST(DependenceLevels, DiamondTakesLongestPath) {
  // 0 -> 1, 0 -> 2, {1,2} -> 3, 3 -> 4 ; plus 2 -> 4 shortcut (ignored by max)
  core::DepFn deps = [](index_t i, const core::DepVisitor& emit) {
    switch (i) {
      case 1: emit(0); break;
      case 2: emit(0); break;
      case 3: emit(1); emit(2); break;
      case 4: emit(3); emit(2); break;
      default: break;
    }
  };
  const auto lv = core::dependence_levels(5, deps);
  EXPECT_EQ(lv, (std::vector<index_t>{0, 1, 1, 2, 3}));
}

TEST(DependenceLevels, RejectsForwardDependence) {
  core::DepFn bad = [](index_t i, const core::DepVisitor& emit) {
    if (i == 0) emit(1);  // forward: not a true dependence
  };
  EXPECT_THROW(core::dependence_levels(2, bad), std::invalid_argument);
}

TEST(DoconsiderOrder, ProducesValidScheduleAndWavefronts) {
  core::DepFn deps = [](index_t i, const core::DepVisitor& emit) {
    if (i >= 3) emit(i - 3);  // three interleaved chains
  };
  const core::Reordering r = core::doconsider_order(12, deps);
  EXPECT_TRUE(core::is_valid_schedule(12, r.order, deps));
  EXPECT_EQ(r.num_levels(), 4);
  EXPECT_EQ(r.critical_path(), 4);
  EXPECT_DOUBLE_EQ(r.average_parallelism(), 3.0);
  for (index_t l = 0; l < r.num_levels(); ++l) EXPECT_EQ(r.level_size(l), 3);
  // Stable within level: source order preserved.
  EXPECT_EQ(r.order[0], 0);
  EXPECT_EQ(r.order[1], 1);
  EXPECT_EQ(r.order[2], 2);
  // position is the inverse of order.
  for (index_t k = 0; k < 12; ++k) {
    EXPECT_EQ(r.position[static_cast<std::size_t>(
                  r.order[static_cast<std::size_t>(k)])],
              k);
  }
}

TEST(IsValidSchedule, DetectsViolations) {
  const auto deps = chain_deps();
  std::vector<index_t> good = {0, 1, 2, 3};
  EXPECT_TRUE(core::is_valid_schedule(4, good, deps));
  std::vector<index_t> bad = {1, 0, 2, 3};  // 1 before its producer 0
  EXPECT_FALSE(core::is_valid_schedule(4, bad, deps));
  std::vector<index_t> dup = {0, 0, 2, 3};
  EXPECT_FALSE(core::is_valid_schedule(4, dup, deps));
  std::vector<index_t> short_order = {0, 1};
  EXPECT_FALSE(core::is_valid_schedule(4, short_order, deps));
}

TEST(BuildTrueDeps, ClassifiesReadsLikeTheExecutor) {
  // writer: i -> 2i over value space 8; iteration 2 reads offsets
  // {0 (true dep on iter 0), 4 (self), 6 (antidep on iter 3), 1 (never)}.
  std::vector<index_t> writer = {0, 2, 4, 6};
  const core::DepGraph g = core::build_true_deps(
      4, writer, 8, [](index_t i, const std::function<void(index_t)>& emit) {
        if (i == 2) {
          emit(0);
          emit(4);
          emit(6);
          emit(1);
        }
      });
  EXPECT_EQ(g.iterations(), 4);
  EXPECT_EQ(g.edges(), 1);
  ASSERT_EQ(g.deps_of(2).size(), 1u);
  EXPECT_EQ(g.deps_of(2)[0], 0);
}

TEST(Doconsider, TestLoopDepsHaveExpectedStructure) {
  // Even L: every iteration i with i >= L/2 - j has deps; odd L: none.
  const gen::TestLoop odd = gen::make_test_loop({.n = 500, .m = 5, .l = 7});
  EXPECT_EQ(gen::test_loop_deps(odd).edges(), 0);

  const gen::TestLoop even = gen::make_test_loop({.n = 500, .m = 5, .l = 8});
  const core::DepGraph g = gen::test_loop_deps(even);
  EXPECT_GT(g.edges(), 0);
  // Dependence distance is L/2 - j for j = 1..min(M, L/2-1).
  for (index_t i = 10; i < 20; ++i) {
    for (index_t j : g.deps_of(i)) {
      EXPECT_LT(j, i);
      EXPECT_GE(i - j, 1);
      EXPECT_LE(i - j, 3);  // L/2 - 1 = 3
    }
  }
}

TEST(Doconsider, ReorderedExecutionMatchesReference) {
  gen::RandomLoopParams p{.n = 1200, .value_space = 1800, .min_reads = 1,
                          .max_reads = 4, .dep_bias = 0.8};
  const gen::RandomLoop rl = gen::make_random_loop(p, 777);
  const core::DepGraph g = gen::random_loop_deps(rl);
  const core::Reordering r = core::doconsider_order(g);
  ASSERT_TRUE(core::is_valid_schedule(rl.n(), r.order, g.as_fn()));

  std::vector<double> y_ref = rl.y0;
  gen::run_random_loop_seq(rl, y_ref);

  std::vector<double> y_ord = rl.y0;
  core::DoacrossEngine<double> eng(pool(), rl.value_space);
  core::DoacrossOptions opts;
  opts.order = r.order.data();
  eng.run(std::span<const index_t>(rl.writer), std::span<double>(y_ord),
          [&rl](auto& it) { gen::random_loop_body(rl, it); }, opts);

  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    ASSERT_EQ(y_ref[i], y_ord[i]) << i;
  }
}

TEST(Doconsider, ReorderingReducesWaitingOnSerialChains) {
  // A workload with long chains interleaved: source order forces waits,
  // level order eliminates nearly all of them.
  const index_t n = 8000;
  const index_t chains = 64;
  std::vector<index_t> writer(n);
  std::iota(writer.begin(), writer.end(), index_t{0});
  // Iteration i depends on i - chains (its chain predecessor) — but we lay
  // the chains out so that source order interleaves badly: dependence
  // distance 1 within blocks of `chains`.
  auto body = [&](auto& it) {
    const index_t i = it.index();
    if (i % chains != 0) it.lhs() += it.read(i - 1) * 1e-6;
  };
  core::DepFn deps = [&](index_t i, const core::DepVisitor& emit) {
    if (i % chains != 0) emit(i - 1);
  };
  const core::Reordering r = core::doconsider_order(n, deps);
  ASSERT_TRUE(core::is_valid_schedule(n, r.order, deps));

  core::DoacrossEngine<double> eng(pool(), n);
  std::vector<double> y(n, 1.0);
  core::DoacrossOptions src_opts;  // source order, block schedule: each
  src_opts.schedule = rt::Schedule::static_cyclic(1);  // chain spread wide
  const auto s_src = eng.run(writer, std::span<double>(y), body, src_opts);

  std::vector<double> y2(n, 1.0);
  core::DoacrossOptions ord_opts;
  ord_opts.order = r.order.data();
  const auto s_ord = eng.run(writer, std::span<double>(y2), body, ord_opts);

  for (index_t i = 0; i < n; ++i) ASSERT_EQ(y[i], y2[i]);
  // The reordered run should wait dramatically less (allow slack: both can
  // be zero on a lightly loaded machine only for the reordered run).
  EXPECT_LE(s_ord.wait_rounds, s_src.wait_rounds + 1000);
}
