// Tests for the bench-support utilities: statistics, the paper's
// efficiency metric, table rendering, timers, and env parsing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <thread>

#include "benchsupport/env.hpp"
#include "benchsupport/stats.hpp"
#include "benchsupport/table.hpp"
#include "benchsupport/timer.hpp"

namespace bench = pdx::bench;

TEST(Stats, SummaryOfKnownSamples) {
  const auto s = bench::summarize({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, 1.2909944487358056, 1e-12);
  EXPECT_EQ(s.n, 4u);
}

TEST(Stats, OddCountMedianAndSingleton) {
  EXPECT_DOUBLE_EQ(bench::summarize({5.0, 1.0, 3.0}).median, 3.0);
  const auto s = bench::summarize({2.0});
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, EmptySamplesThrow) {
  EXPECT_THROW(bench::summarize({}), std::invalid_argument);
}

TEST(Stats, PaperEfficiencyMetric) {
  // T_seq = 160, p = 16, T_par = 20 -> eff = 160 / 320 = 0.5
  EXPECT_DOUBLE_EQ(bench::parallel_efficiency(160.0, 20.0, 16), 0.5);
  EXPECT_DOUBLE_EQ(bench::parallel_efficiency(1.0, 0.0, 4), 0.0);
  EXPECT_DOUBLE_EQ(bench::parallel_efficiency(1.0, 1.0, 0), 0.0);
  EXPECT_DOUBLE_EQ(bench::speedup(100.0, 25.0), 4.0);
}

TEST(Table, RendersAlignedColumns) {
  bench::Table t({"name", "value"});
  t.row().cell("alpha").cell(1.5, 2);
  t.row().cell("b").cell(10.25, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("10.25"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);  // header rule
}

TEST(Table, CsvEscapesNothingButDelimits) {
  bench::Table t({"a", "b"});
  t.row().cell(1).cell(2);
  t.row().cell(3).cell(4);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(Timer, MeasuresElapsedTime) {
  bench::WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double s = t.seconds();
  EXPECT_GE(s, 0.009);
  EXPECT_LT(s, 5.0);
  t.restart();
  EXPECT_LT(t.seconds(), 0.009);
}

TEST(Timer, TimeSamplesRunsWarmupPlusReps) {
  int calls = 0;
  const auto samples = bench::time_samples(3, 2, [&] { ++calls; });
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(samples.size(), 3u);
  for (double s : samples) EXPECT_GE(s, 0.0);
}

TEST(Env, ParsesIntegersWithFallback) {
  ::setenv("PDX_TEST_INT", "42", 1);
  EXPECT_EQ(bench::env_int("PDX_TEST_INT", 7), 42);
  ::setenv("PDX_TEST_INT", "garbage", 1);
  EXPECT_EQ(bench::env_int("PDX_TEST_INT", 7), 7);
  ::setenv("PDX_TEST_INT", "-3", 1);
  EXPECT_EQ(bench::env_int("PDX_TEST_INT", 7), 7);
  ::unsetenv("PDX_TEST_INT");
  EXPECT_EQ(bench::env_int("PDX_TEST_INT", 7), 7);
}

TEST(Env, DefaultProcsRespectsOverrideAndPaperCap) {
  ::setenv("PDX_THREADS", "3", 1);
  EXPECT_EQ(bench::default_procs(), 3u);
  ::unsetenv("PDX_THREADS");
  EXPECT_LE(bench::default_procs(), 16u);  // paper's processor count cap
  EXPECT_GE(bench::default_procs(), 1u);
}

TEST(Env, BannerMentionsBenchName) {
  const std::string b = bench::environment_banner("my_bench");
  EXPECT_NE(b.find("my_bench"), std::string::npos);
  EXPECT_NE(b.find("procs="), std::string::npos);
}
