// Tests for the matrix generators: exact appendix sizes, stencil
// structure, symmetry, and diagonal dominance of the block operators.
#include <gtest/gtest.h>

#include <cmath>

#include "gen/block_operator.hpp"
#include "gen/stencil.hpp"

namespace gen = pdx::gen;
namespace sp = pdx::sparse;
using pdx::index_t;

TEST(Stencil, FivePointAppendixSize) {
  const sp::Csr a = gen::matrix_5pt();
  EXPECT_EQ(a.rows, 3969);  // 63 x 63
  EXPECT_NO_THROW(a.validate());
}

TEST(Stencil, SevenPointAppendixSize) {
  const sp::Csr a = gen::matrix_7pt();
  EXPECT_EQ(a.rows, 8000);  // 20^3
  EXPECT_NO_THROW(a.validate());
}

TEST(Stencil, NinePointAppendixSize) {
  const sp::Csr a = gen::matrix_9pt();
  EXPECT_EQ(a.rows, 3969);
  EXPECT_NO_THROW(a.validate());
}

TEST(Stencil, FivePointRowStructure) {
  const sp::Csr a = gen::five_point(5, 4);
  // Interior point: 5 entries; corner: 3; edge: 4.
  EXPECT_EQ(a.row_nnz(0), 3);                  // corner (0,0)
  EXPECT_EQ(a.row_nnz(2), 4);                  // top edge
  EXPECT_EQ(a.row_nnz(1 * 5 + 2), 5);          // interior
  EXPECT_DOUBLE_EQ(a.at(7, 7), 4.0);
  EXPECT_DOUBLE_EQ(a.at(7, 6), -1.0);
  EXPECT_DOUBLE_EQ(a.at(7, 12), -1.0);
  EXPECT_DOUBLE_EQ(a.at(7, 9), 0.0);  // not a neighbour
}

TEST(Stencil, SevenPointRowStructure) {
  const sp::Csr a = gen::seven_point(4, 4, 4);
  const index_t interior = (1 * 4 + 1) * 4 + 1;  // (1,1,1)
  EXPECT_EQ(a.row_nnz(interior), 7);
  EXPECT_DOUBLE_EQ(a.at(interior, interior), 6.0);
  EXPECT_EQ(a.row_nnz(0), 4);  // corner: self + 3 neighbours
}

TEST(Stencil, NinePointRowStructure) {
  const sp::Csr a = gen::nine_point(5, 5);
  const index_t interior = 2 * 5 + 2;
  EXPECT_EQ(a.row_nnz(interior), 9);
  EXPECT_DOUBLE_EQ(a.at(interior, interior), 8.0);
  EXPECT_DOUBLE_EQ(a.at(interior, interior - 5 - 1), -1.0);  // diagonal nbr
  EXPECT_EQ(a.row_nnz(0), 4);  // corner: self + 3
}

TEST(Stencil, OperatorsAreSymmetric) {
  for (const sp::Csr& a :
       {gen::five_point(7, 9), gen::seven_point(4, 5, 3), gen::nine_point(6, 6)}) {
    const sp::Csr t = a.transposed();
    ASSERT_EQ(t.nnz(), a.nnz());
    for (index_t r = 0; r < a.rows; ++r) {
      for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
        const index_t c = a.idx[static_cast<std::size_t>(k)];
        ASSERT_DOUBLE_EQ(a.val[static_cast<std::size_t>(k)], t.at(r, c));
      }
    }
  }
}

TEST(Stencil, RejectsDegenerateGrids) {
  EXPECT_THROW(gen::five_point(0, 5), std::invalid_argument);
  EXPECT_THROW(gen::seven_point(2, 0, 2), std::invalid_argument);
  EXPECT_THROW(gen::nine_point(3, -1), std::invalid_argument);
}

TEST(BlockOperator, Spe2AppendixStructure) {
  const sp::Csr a = gen::matrix_spe2();
  EXPECT_EQ(a.rows, 1080);  // 6*6*5 points x 6 unknowns
  EXPECT_NO_THROW(a.validate());
  // Interior point couples to itself + 6 neighbours, each 6x6 dense:
  // row nnz = 7 * 6 = 42 for interior block rows.
  index_t max_nnz = 0;
  for (index_t r = 0; r < a.rows; ++r) max_nnz = std::max(max_nnz, a.row_nnz(r));
  EXPECT_EQ(max_nnz, 7 * 6);
}

TEST(BlockOperator, Spe5AppendixStructure) {
  const sp::Csr a = gen::matrix_spe5();
  EXPECT_EQ(a.rows, 3312);  // 16*23*3 points x 3 unknowns
  EXPECT_NO_THROW(a.validate());
  index_t max_nnz = 0;
  for (index_t r = 0; r < a.rows; ++r) max_nnz = std::max(max_nnz, a.row_nnz(r));
  EXPECT_EQ(max_nnz, 7 * 3);
}

TEST(BlockOperator, StrictDiagonalDominance) {
  const sp::Csr a = gen::block_seven_point(
      {.nx = 4, .ny = 3, .nz = 2, .block = 4, .seed = 99});
  for (index_t r = 0; r < a.rows; ++r) {
    double diag = 0.0, off = 0.0;
    for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      if (a.idx[static_cast<std::size_t>(k)] == r) {
        diag = a.val[static_cast<std::size_t>(k)];
      } else {
        off += std::fabs(a.val[static_cast<std::size_t>(k)]);
      }
    }
    EXPECT_GT(diag, off) << "row " << r;
  }
}

TEST(BlockOperator, SeedChangesValuesNotStructure) {
  const sp::Csr a = gen::matrix_spe5(1);
  const sp::Csr b = gen::matrix_spe5(2);
  ASSERT_EQ(a.nnz(), b.nnz());
  EXPECT_EQ(a.idx, b.idx);
  EXPECT_EQ(a.ptr, b.ptr);
  bool any_diff = false;
  for (std::size_t k = 0; k < a.val.size(); ++k) {
    if (a.val[k] != b.val[k]) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(BlockOperator, SameSeedReproducesExactly) {
  const sp::Csr a = gen::matrix_spe2(77);
  const sp::Csr b = gen::matrix_spe2(77);
  EXPECT_EQ(a.val, b.val);
}

TEST(BlockOperator, RejectsBadParameters) {
  EXPECT_THROW(
      gen::block_seven_point({.nx = 0, .ny = 1, .nz = 1, .block = 1}),
      std::invalid_argument);
  EXPECT_THROW(
      gen::block_seven_point({.nx = 1, .ny = 1, .nz = 1, .block = 0}),
      std::invalid_argument);
}
