// Tests for the wavefront/level analysis of triangular dependence DAGs.
#include <gtest/gtest.h>

#include <vector>

#include "gen/block_operator.hpp"
#include "gen/stencil.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/levels.hpp"

namespace sp = pdx::sparse;
namespace gen = pdx::gen;
namespace core = pdx::core;
using pdx::index_t;

TEST(LowerSolveLevels, DiagonalMatrixIsOneWavefront) {
  sp::CsrBuilder b(5, 5);
  for (index_t i = 0; i < 5; ++i) b.add(i, i, 2.0);
  const sp::Csr l = b.build();
  const auto lv = sp::lower_solve_levels(l);
  for (index_t v : lv) EXPECT_EQ(v, 0);
  const core::Reordering r = sp::lower_solve_reordering(l);
  EXPECT_EQ(r.critical_path(), 1);
  EXPECT_DOUBLE_EQ(r.average_parallelism(), 5.0);
}

TEST(LowerSolveLevels, BidiagonalIsFullySerial) {
  const index_t n = 10;
  sp::CsrBuilder b(n, n);
  for (index_t i = 0; i < n; ++i) {
    if (i > 0) b.add(i, i - 1, -1.0);
    b.add(i, i, 2.0);
  }
  const sp::Csr l = b.build();
  const auto lv = sp::lower_solve_levels(l);
  for (index_t i = 0; i < n; ++i) EXPECT_EQ(lv[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(sp::lower_solve_reordering(l).critical_path(), n);
}

TEST(LowerSolveLevels, LevelAlwaysExceedsDependencies) {
  const sp::Csr l = sp::ilu0(gen::five_point(17, 13)).l;
  const auto lv = sp::lower_solve_levels(l);
  for (index_t i = 0; i < l.rows; ++i) {
    for (index_t c : l.row_cols(i)) {
      if (c < i) {
        EXPECT_GT(lv[static_cast<std::size_t>(i)],
                  lv[static_cast<std::size_t>(c)])
            << "row " << i << " dep " << c;
      }
    }
  }
}

TEST(LowerSolveLevels, FivePointGridWavefrontsAreAntiDiagonals) {
  // For the 5-pt ILU(0) L factor on an nx-by-ny grid, row (x, y) depends
  // on (x-1, y) and (x, y-1): level = x + y, the classic anti-diagonal
  // wavefront. Critical path = nx + ny - 1.
  const index_t nx = 9, ny = 7;
  const sp::Csr l = sp::ilu0(gen::five_point(nx, ny)).l;
  const auto lv = sp::lower_solve_levels(l);
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      EXPECT_EQ(lv[static_cast<std::size_t>(y * nx + x)], x + y);
    }
  }
  EXPECT_EQ(sp::lower_solve_reordering(l).critical_path(), nx + ny - 1);
}

TEST(LowerSolveLevels, SevenPointGridCriticalPath) {
  const index_t nx = 6, ny = 5, nz = 4;
  const sp::Csr l = sp::ilu0(gen::seven_point(nx, ny, nz)).l;
  EXPECT_EQ(sp::lower_solve_reordering(l).critical_path(), nx + ny + nz - 2);
}

TEST(ProfileLowerSolve, ReportsConsistentNumbers) {
  const sp::Csr l = sp::ilu0(gen::matrix_spe5()).l;
  const sp::DagProfile p = sp::profile_lower_solve(l);
  EXPECT_EQ(p.n, 3312);
  EXPECT_GT(p.edges, 0);
  EXPECT_GT(p.critical_path, 0);
  EXPECT_GT(p.avg_parallelism, 1.0);
  EXPECT_GE(p.max_level_size,
            static_cast<index_t>(p.avg_parallelism));
  EXPECT_NEAR(p.avg_parallelism,
              static_cast<double>(p.n) / static_cast<double>(p.critical_path),
              1e-9);
}

TEST(LowerSolveReordering, WavefrontPointersPartitionOrder) {
  const sp::Csr l = sp::ilu0(gen::nine_point(12, 12)).l;
  const core::Reordering r = sp::lower_solve_reordering(l);
  EXPECT_EQ(r.level_ptr.front(), 0);
  EXPECT_EQ(r.level_ptr.back(), l.rows);
  for (index_t lvl = 0; lvl < r.num_levels(); ++lvl) {
    EXPECT_GT(r.level_size(lvl), 0) << "empty wavefront " << lvl;
    for (index_t k = r.level_ptr[static_cast<std::size_t>(lvl)];
         k < r.level_ptr[static_cast<std::size_t>(lvl) + 1]; ++k) {
      EXPECT_EQ(r.level_of[static_cast<std::size_t>(
                    r.order[static_cast<std::size_t>(k)])],
                lvl);
    }
  }
}
