// Tests for the synchronization primitives: spin wait (bounded and
// unbounded), barrier (plain and latch-watched), padding.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "runtime/aligned.hpp"
#include "runtime/barrier.hpp"
#include "runtime/failure.hpp"
#include "runtime/spin_wait.hpp"
#include "runtime/thread_pool.hpp"

namespace rt = pdx::rt;

TEST(SpinWait, EscalatesAndResets) {
  rt::SpinWait sw;
  EXPECT_EQ(sw.rounds(), 0u);
  for (int i = 0; i < 10; ++i) sw.spin_once();
  EXPECT_EQ(sw.rounds(), 10u);
  sw.reset();
  EXPECT_EQ(sw.rounds(), 0u);
}

TEST(SpinWait, SpinUntilImmediateTakesZeroRounds) {
  EXPECT_EQ(rt::spin_until([] { return true; }), 0u);
}

TEST(SpinWait, SpinUntilObservesAsyncFlag) {
  // The setter waits for the spinner to provably enter the wait before
  // storing the flag, so at least one predicate check fails and the
  // round count is deterministic even on a heavily loaded machine (a 5ms
  // sleep alone can elapse before the spinner's first check).
  std::atomic<bool> entered{false};
  std::atomic<bool> flag{false};
  std::thread setter([&] {
    while (!entered.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    flag.store(true, std::memory_order_release);
  });
  const auto rounds = rt::spin_until([&] {
    entered.store(true, std::memory_order_release);
    return flag.load(std::memory_order_acquire);
  });
  setter.join();
  EXPECT_GT(rounds, 0u);
}

TEST(Padded, OccupiesFullCacheLines) {
  EXPECT_GE(sizeof(rt::Padded<int>), pdx::kCacheLineBytes);
  EXPECT_EQ(alignof(rt::Padded<long>), pdx::kCacheLineBytes);
  std::vector<rt::Padded<int>> v(4);
  const auto a = reinterpret_cast<std::uintptr_t>(&v[0]);
  const auto b = reinterpret_cast<std::uintptr_t>(&v[1]);
  EXPECT_GE(b - a, pdx::kCacheLineBytes);
}

TEST(CacheAlignedAllocator, ReturnsAlignedStorage) {
  std::vector<double, rt::CacheAlignedAllocator<double>> v(1000);
  const auto p = reinterpret_cast<std::uintptr_t>(v.data());
  EXPECT_EQ(p % pdx::kCacheLineBytes, 0u);
}

TEST(Barrier, SingleThreadPassesThrough) {
  rt::Barrier b(1);
  b.arrive_and_wait();
  b.arrive_and_wait();
  EXPECT_EQ(b.epochs(), 2u);
}

TEST(Barrier, SynchronizesWritesAcrossPhases) {
  constexpr unsigned kThreads = 8;
  constexpr int kRounds = 50;
  rt::ThreadPool pool(kThreads);
  rt::Barrier barrier(kThreads);
  std::vector<int> data(kThreads, 0);

  // Each round: everyone writes its slot, barrier, everyone checks all
  // slots have the round value. Any missed synchronization fails fast.
  pool.parallel_region(kThreads, [&](unsigned tid, unsigned nth) {
    for (int round = 1; round <= kRounds; ++round) {
      data[tid] = round;
      barrier.arrive_and_wait();
      for (unsigned t = 0; t < nth; ++t) {
        ASSERT_EQ(data[t], round) << "round " << round << " slot " << t;
      }
      barrier.arrive_and_wait();  // keep writers out of the next round
    }
  });
  EXPECT_EQ(barrier.epochs(), static_cast<std::uint32_t>(2 * kRounds));
}

TEST(Barrier, BackToBackBarriersDoNotDeadlock) {
  constexpr unsigned kThreads = 4;
  rt::ThreadPool pool(kThreads);
  rt::Barrier barrier(kThreads);
  std::atomic<int> counter{0};
  pool.parallel_region(kThreads, [&](unsigned, unsigned) {
    for (int i = 0; i < 1000; ++i) {
      barrier.arrive_and_wait();
    }
    counter.fetch_add(1);
  });
  EXPECT_EQ(counter.load(), static_cast<int>(kThreads));
}

TEST(SpinWait, BoundedSpinReportsBudgetExhaustion) {
  // A predicate that never turns true must come back nullopt, not hang.
  const auto exhausted =
      rt::spin_until_bounded([] { return false; }, /*max_rounds=*/500);
  EXPECT_FALSE(exhausted.has_value());
  // An already-true predicate takes zero rounds, and a concurrently set
  // flag succeeds within the budget.
  EXPECT_EQ(rt::spin_until_bounded([] { return true; }, 500), 0u);
  std::atomic<bool> flag{false};
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    flag.store(true, std::memory_order_release);
  });
  const auto rounds = rt::spin_until_bounded(
      [&] { return flag.load(std::memory_order_acquire); }, 50'000'000);
  setter.join();
  ASSERT_TRUE(rounds.has_value());
  EXPECT_GT(*rounds, 0u);
  EXPECT_LE(*rounds, 50'000'000u);
}

TEST(SpinWait, EscalationCompletesUnderGenuineOversubscription) {
  // More spinners than hardware contexts, all waiting on one late flag:
  // the yield/sleep escalation must still let every spinner observe the
  // store (the pause-only phase alone could livelock a machine this
  // oversubscribed).
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned spinners = 2 * hw;
  std::atomic<bool> flag{false};
  std::atomic<unsigned> done{0};
  std::atomic<unsigned> spun{0};
  std::vector<std::thread> threads;
  threads.reserve(spinners);
  for (unsigned t = 0; t < spinners; ++t) {
    threads.emplace_back([&] {
      const std::uint64_t rounds = rt::spin_until(
          [&] { return flag.load(std::memory_order_acquire); });
      if (rounds > 0) spun.fetch_add(1, std::memory_order_relaxed);
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  flag.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  // Every spinner finished; at least some genuinely waited through the
  // escalation (a loaded CI machine may start a few threads late, after
  // the store — those legitimately take zero rounds).
  EXPECT_EQ(done.load(), spinners);
  EXPECT_GE(spun.load(), 1u);
}

TEST(Barrier, WatchedBarrierBreaksOnLatch) {
  // One thread parks in the barrier; raising the latch must break it out
  // with WorkerAbort instead of leaving it spinning for a second arrival
  // that will never come.
  rt::Barrier barrier(2);
  rt::FailureLatch latch;
  barrier.watch(&latch);
  std::atomic<bool> aborted{false};
  std::thread waiter([&] {
    try {
      barrier.arrive_and_wait();
    } catch (const rt::WorkerAbort&) {
      aborted.store(true, std::memory_order_release);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  latch.raise(std::make_exception_ptr(std::runtime_error("peer died")));
  waiter.join();
  EXPECT_TRUE(aborted.load());
  // A thread that observes the latch BEFORE arriving must abort without
  // bumping the (now stale) arrive count.
  EXPECT_THROW(barrier.arrive_and_wait(), rt::WorkerAbort);
  latch.reset();
}

TEST(Barrier, WatchedBarrierStallBudgetRaisesStallError) {
  // A single arrival at a 2-party barrier with a finite budget is a
  // genuine stall: the watchdog must convert it into StallError with the
  // barrier site named, not spin forever.
  rt::Barrier barrier(2);
  rt::FailureLatch latch;
  barrier.watch(&latch, /*stall_budget=*/2000);
  bool stalled = false;
  try {
    barrier.arrive_and_wait();
  } catch (const rt::StallError& e) {
    stalled = true;
    EXPECT_GE(e.rounds(), 2000u);
    EXPECT_EQ(e.site(), "barrier");
  }
  EXPECT_TRUE(stalled);
}
