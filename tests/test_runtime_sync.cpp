// Tests for the synchronization primitives: spin wait, barrier, padding.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/aligned.hpp"
#include "runtime/barrier.hpp"
#include "runtime/spin_wait.hpp"
#include "runtime/thread_pool.hpp"

namespace rt = pdx::rt;

TEST(SpinWait, EscalatesAndResets) {
  rt::SpinWait sw;
  EXPECT_EQ(sw.rounds(), 0u);
  for (int i = 0; i < 10; ++i) sw.spin_once();
  EXPECT_EQ(sw.rounds(), 10u);
  sw.reset();
  EXPECT_EQ(sw.rounds(), 0u);
}

TEST(SpinWait, SpinUntilImmediateTakesZeroRounds) {
  EXPECT_EQ(rt::spin_until([] { return true; }), 0u);
}

TEST(SpinWait, SpinUntilObservesAsyncFlag) {
  std::atomic<bool> flag{false};
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    flag.store(true, std::memory_order_release);
  });
  const auto rounds =
      rt::spin_until([&] { return flag.load(std::memory_order_acquire); });
  setter.join();
  EXPECT_GT(rounds, 0u);
}

TEST(Padded, OccupiesFullCacheLines) {
  EXPECT_GE(sizeof(rt::Padded<int>), pdx::kCacheLineBytes);
  EXPECT_EQ(alignof(rt::Padded<long>), pdx::kCacheLineBytes);
  std::vector<rt::Padded<int>> v(4);
  const auto a = reinterpret_cast<std::uintptr_t>(&v[0]);
  const auto b = reinterpret_cast<std::uintptr_t>(&v[1]);
  EXPECT_GE(b - a, pdx::kCacheLineBytes);
}

TEST(CacheAlignedAllocator, ReturnsAlignedStorage) {
  std::vector<double, rt::CacheAlignedAllocator<double>> v(1000);
  const auto p = reinterpret_cast<std::uintptr_t>(v.data());
  EXPECT_EQ(p % pdx::kCacheLineBytes, 0u);
}

TEST(Barrier, SingleThreadPassesThrough) {
  rt::Barrier b(1);
  b.arrive_and_wait();
  b.arrive_and_wait();
  EXPECT_EQ(b.epochs(), 2u);
}

TEST(Barrier, SynchronizesWritesAcrossPhases) {
  constexpr unsigned kThreads = 8;
  constexpr int kRounds = 50;
  rt::ThreadPool pool(kThreads);
  rt::Barrier barrier(kThreads);
  std::vector<int> data(kThreads, 0);

  // Each round: everyone writes its slot, barrier, everyone checks all
  // slots have the round value. Any missed synchronization fails fast.
  pool.parallel_region(kThreads, [&](unsigned tid, unsigned nth) {
    for (int round = 1; round <= kRounds; ++round) {
      data[tid] = round;
      barrier.arrive_and_wait();
      for (unsigned t = 0; t < nth; ++t) {
        ASSERT_EQ(data[t], round) << "round " << round << " slot " << t;
      }
      barrier.arrive_and_wait();  // keep writers out of the next round
    }
  });
  EXPECT_EQ(barrier.epochs(), static_cast<std::uint32_t>(2 * kRounds));
}

TEST(Barrier, BackToBackBarriersDoNotDeadlock) {
  constexpr unsigned kThreads = 4;
  rt::ThreadPool pool(kThreads);
  rt::Barrier barrier(kThreads);
  std::atomic<int> counter{0};
  pool.parallel_region(kThreads, [&](unsigned, unsigned) {
    for (int i = 0; i < 1000; ++i) {
      barrier.arrive_and_wait();
    }
    counter.fetch_add(1);
  });
  EXPECT_EQ(counter.load(), static_cast<int>(kThreads));
}
