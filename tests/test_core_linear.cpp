// Tests for the linear-subscript (inspector-free) doacross of §2.3:
// closed-form writer inversion, equivalence with the general engine, and
// the paper's claim that the preprocessing phase disappears.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/doacross.hpp"
#include "core/linear_doacross.hpp"
#include "gen/testloop.hpp"
#include "runtime/thread_pool.hpp"

namespace core = pdx::core;
namespace gen = pdx::gen;
namespace rt = pdx::rt;
using pdx::index_t;

namespace {

rt::ThreadPool& pool() {
  static rt::ThreadPool p(8);
  return p;
}

}  // namespace

TEST(LinearWriter, InvertsItsOwnMap) {
  const core::LinearWriter w{.c = 2, .d = 5, .n = 100};
  for (index_t i = 0; i < w.n; ++i) {
    EXPECT_EQ(w.writer_of(w(i)), i);
  }
}

TEST(LinearWriter, RejectsNonImageOffsets) {
  const core::LinearWriter w{.c = 2, .d = 5, .n = 100};
  EXPECT_EQ(w.writer_of(4), core::kNeverWritten);   // below d
  EXPECT_EQ(w.writer_of(6), core::kNeverWritten);   // wrong residue
  EXPECT_EQ(w.writer_of(5 + 2 * 100), core::kNeverWritten);  // past n
  EXPECT_EQ(w.writer_of(0), core::kNeverWritten);
}

TEST(LinearWriter, WrittenExtentIsTight) {
  const core::LinearWriter w{.c = 3, .d = 2, .n = 10};
  EXPECT_EQ(w.written_extent(), 3 * 9 + 2 + 1);
  const core::LinearWriter empty{.c = 3, .d = 2, .n = 0};
  EXPECT_EQ(empty.written_extent(), 0);
}

TEST(LinearDoacross, PrefixChain) {
  // y[i] = y[i-1] + 1 with identity writer (c=1, d=0).
  const index_t n = 1000;
  std::vector<double> y(n, 0.0);
  core::LinearDoacross<double> eng(pool());
  const auto stats =
      eng.run({.c = 1, .d = 0, .n = n}, std::span<double>(y), [](auto& it) {
        const index_t i = it.index();
        if (i > 0) it.lhs() = it.read(i - 1) + 1.0;
      });
  for (index_t i = 0; i < n; ++i) ASSERT_DOUBLE_EQ(y[i], static_cast<double>(i));
  // The §2.3 claim: no inspector phase at all.
  EXPECT_EQ(stats.inspect_seconds, 0.0);
}

TEST(LinearDoacross, MatchesGeneralEngineOnPaperLoop) {
  // The paper's own initialization a(i) = 2i is linear: c = 2, d = base.
  for (int l : {1, 2, 4, 5, 8, 12, 14}) {
    const gen::TestLoop tl = gen::make_test_loop({.n = 2000, .m = 5, .l = l});
    std::vector<double> y_ref = gen::make_initial_y(tl);
    gen::run_test_loop_seq(tl, y_ref);

    std::vector<double> y_lin = gen::make_initial_y(tl);
    // y must also cover read offsets beyond the written extent.
    core::LinearDoacross<double> eng(pool());
    eng.run({.c = 2, .d = tl.base, .n = tl.params.n},
            std::span<double>(y_lin),
            [&tl](auto& it) { gen::test_loop_body(tl, it); });

    for (std::size_t i = 0; i < y_ref.size(); ++i) {
      ASSERT_EQ(y_ref[i], y_lin[i]) << "L=" << l << " offset " << i;
    }
  }
}

TEST(LinearDoacross, StrideThreeWriterWithGaps) {
  // Writers hit offsets {1, 4, 7, ...}; reads probe the gaps (old values)
  // and the previous writer (true dep).
  const index_t n = 500;
  const core::LinearWriter w{.c = 3, .d = 1, .n = n};
  std::vector<double> y0(w.written_extent() + 3);
  for (std::size_t i = 0; i < y0.size(); ++i) y0[i] = static_cast<double>(i);

  // Reference through the general engine.
  std::vector<index_t> writer(n);
  for (index_t i = 0; i < n; ++i) writer[i] = w(i);
  auto body = [&w](auto& it) {
    const index_t i = it.index();
    it.lhs() += it.read(w(i) + 1);           // gap: never written
    if (i > 0) it.lhs() += it.read(w(i - 1));  // previous writer: true dep
  };
  std::vector<double> y_ref = y0;
  core::doacross_reference<double>(writer, std::span<double>(y_ref), body);

  std::vector<double> y_lin = y0;
  core::LinearDoacross<double> eng(pool());
  eng.run(w, std::span<double>(y_lin), body);

  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    ASSERT_EQ(y_ref[i], y_lin[i]) << i;
  }
}

TEST(LinearDoacross, AllSchedulesAgree) {
  const gen::TestLoop tl = gen::make_test_loop({.n = 3000, .m = 3, .l = 6});
  std::vector<double> y_ref = gen::make_initial_y(tl);
  gen::run_test_loop_seq(tl, y_ref);

  for (const auto& sched :
       {rt::Schedule::static_block(), rt::Schedule::static_cyclic(2),
        rt::Schedule::dynamic(32)}) {
    std::vector<double> y_lin = gen::make_initial_y(tl);
    core::LinearDoacross<double> eng(pool());
    core::LinearOptions opts;
    opts.schedule = sched;
    eng.run({.c = 2, .d = tl.base, .n = tl.params.n}, std::span<double>(y_lin),
            [&tl](auto& it) { gen::test_loop_body(tl, it); }, opts);
    for (std::size_t i = 0; i < y_ref.size(); ++i) {
      ASSERT_EQ(y_ref[i], y_lin[i]) << rt::to_string(sched) << " " << i;
    }
  }
}

TEST(LinearDoacross, RejectsBadArguments) {
  core::LinearDoacross<double> eng(pool());
  std::vector<double> y(10);
  EXPECT_THROW(eng.run({.c = 0, .d = 0, .n = 5}, std::span<double>(y),
                       [](auto&) {}),
               std::invalid_argument);
  EXPECT_THROW(eng.run({.c = 4, .d = 0, .n = 5}, std::span<double>(y),
                       [](auto&) {}),
               std::invalid_argument);  // written extent 17 > y.size()
}

TEST(LinearDoacross, EpochReadyVariantReusable) {
  const index_t n = 400;
  core::LinearDoacross<double, core::EpochReadyTable> eng(pool());
  for (int rep = 0; rep < 5; ++rep) {
    std::vector<double> y(n, 0.0);
    eng.run({.c = 1, .d = 0, .n = n}, std::span<double>(y), [](auto& it) {
      const index_t i = it.index();
      if (i > 0) it.lhs() = it.read(i - 1) + 1.0;
    });
    ASSERT_DOUBLE_EQ(y[n - 1], static_cast<double>(n - 1)) << "rep " << rep;
  }
}
