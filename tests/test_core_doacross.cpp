// Core engine tests: the preprocessed doacross must reproduce sequential
// source-order semantics bitwise, on all dependence shapes (true deps,
// antideps, intra-iteration, never-written), all schedules, all ready
// tables, with arenas reusable across loops.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/doacross.hpp"
#include "gen/testloop.hpp"
#include "runtime/thread_pool.hpp"

namespace core = pdx::core;
namespace gen = pdx::gen;
namespace rt = pdx::rt;
using pdx::index_t;

namespace {

/// Shared pool across tests (construction is cheap but not free).
rt::ThreadPool& pool() {
  static rt::ThreadPool p(8);
  return p;
}

}  // namespace

TEST(Doacross, IdentityLoopNoDependencies) {
  // y[i] = y[i] + 1 — a doall in disguise; writer map identity.
  const index_t n = 1000;
  std::vector<index_t> writer(n);
  std::iota(writer.begin(), writer.end(), index_t{0});
  std::vector<double> y(n, 1.0);

  core::DoacrossEngine<double> eng(pool(), n);
  eng.run(writer, y, [](auto& it) { it.lhs() += 1.0; });
  for (index_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(y[i], 2.0);
}

TEST(Doacross, PrefixChainTrueDependencies) {
  // y[i] = y[i-1] + 1: the fully serial chain (iteration i reads i-1).
  const index_t n = 500;
  std::vector<index_t> writer(n);
  std::iota(writer.begin(), writer.end(), index_t{0});
  std::vector<double> y(n, 0.0);
  y[0] = 0.0;

  core::DoacrossEngine<double> eng(pool(), n);
  eng.run(writer, y, [](auto& it) {
    const index_t i = it.index();
    if (i > 0) it.lhs() = it.read(i - 1) + 1.0;
  });
  for (index_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(y[i], static_cast<double>(i));
}

TEST(Doacross, AntidependenceReadsOldValue) {
  // Iteration i reads y[i+1] (written by iteration i+1): every read must
  // observe the ORIGINAL value, not the updated one.
  const index_t n = 400;
  std::vector<index_t> writer(n);
  std::iota(writer.begin(), writer.end(), index_t{0});
  std::vector<double> y(n);
  for (index_t i = 0; i < n; ++i) y[i] = static_cast<double>(i);

  core::DoacrossEngine<double> eng(pool(), n);
  eng.run(writer, y, [n](auto& it) {
    const index_t i = it.index();
    if (i + 1 < n) it.lhs() = 1000.0 + it.read(i + 1);
  });
  for (index_t i = 0; i + 1 < n; ++i) {
    EXPECT_DOUBLE_EQ(y[i], 1000.0 + static_cast<double>(i + 1)) << i;
  }
}

TEST(Doacross, IntraIterationReadSeesPartialLhs) {
  // Iteration reads its own LHS offset mid-body: check == 0 path.
  const index_t n = 64;
  std::vector<index_t> writer(n);
  std::iota(writer.begin(), writer.end(), index_t{0});
  std::vector<double> y(n, 1.0);

  core::DoacrossEngine<double> eng(pool(), n);
  eng.run(writer, y, [](auto& it) {
    it.lhs() += 2.0;                        // partial update
    it.lhs() += it.read(it.lhs_index());    // must see 3.0, not 1.0
  });
  for (index_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(y[i], 6.0);
}

TEST(Doacross, NeverWrittenOffsetsReadOldValues) {
  // Writers land on even offsets; reads on odd ones (never written).
  const index_t n = 200;
  std::vector<index_t> writer(n);
  for (index_t i = 0; i < n; ++i) writer[i] = 2 * i;
  std::vector<double> y(2 * n, 0.0);
  for (index_t i = 0; i < 2 * n; ++i) y[i] = static_cast<double>(i);

  core::DoacrossEngine<double> eng(pool(), 2 * n);
  eng.run(writer, y, [n](auto& it) {
    const index_t odd = (2 * it.index() + 1) % (2 * n);
    it.lhs() = it.read(odd);
  });
  for (index_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(y[2 * i], static_cast<double>((2 * i + 1) % (2 * n)));
  }
}

TEST(Doacross, MatchesReferenceOnPaperTestLoop) {
  for (int l : {1, 2, 3, 4, 8, 13, 14}) {
    const gen::TestLoop tl = gen::make_test_loop({.n = 2000, .m = 5, .l = l});
    std::vector<double> y_ref = gen::make_initial_y(tl);
    gen::run_test_loop_seq(tl, y_ref);

    std::vector<double> y_par = gen::make_initial_y(tl);
    core::DoacrossEngine<double> eng(pool(), tl.value_space);
    eng.run(std::span<const index_t>(tl.a), std::span<double>(y_par),
            [&tl](auto& it) { gen::test_loop_body(tl, it); });

    ASSERT_EQ(y_ref.size(), y_par.size());
    for (std::size_t i = 0; i < y_ref.size(); ++i) {
      ASSERT_EQ(y_ref[i], y_par[i]) << "L=" << l << " offset " << i;
    }
  }
}

TEST(Doacross, ArenaReuseAcrossManyLoops) {
  const gen::TestLoop tl = gen::make_test_loop({.n = 500, .m = 3, .l = 4});
  core::DoacrossEngine<double> eng(pool(), tl.value_space);

  std::vector<double> y_ref = gen::make_initial_y(tl);
  std::vector<double> y_par = gen::make_initial_y(tl);
  for (int loop = 0; loop < 10; ++loop) {
    gen::run_test_loop_seq(tl, y_ref);
    eng.run(std::span<const index_t>(tl.a), std::span<double>(y_par),
            [&tl](auto& it) { gen::test_loop_body(tl, it); });
    // Arenas must be pristine after every postprocessing phase.
    ASSERT_TRUE(eng.iter_table().pristine()) << "loop " << loop;
    ASSERT_TRUE(eng.ready_table().pristine()) << "loop " << loop;
    for (std::size_t i = 0; i < y_ref.size(); ++i) {
      ASSERT_EQ(y_ref[i], y_par[i]) << "loop " << loop << " offset " << i;
    }
  }
}

TEST(Doacross, StatsPhasesArePopulated) {
  const gen::TestLoop tl = gen::make_test_loop({.n = 5000, .m = 5, .l = 2});
  std::vector<double> y = gen::make_initial_y(tl);
  core::DoacrossEngine<double> eng(pool(), tl.value_space);
  const core::DoacrossStats s =
      eng.run(std::span<const index_t>(tl.a), std::span<double>(y),
              [&tl](auto& it) { gen::test_loop_body(tl, it); });
  EXPECT_GT(s.total_seconds(), 0.0);
  EXPECT_GE(s.inspect_seconds, 0.0);
  EXPECT_GT(s.execute_seconds, 0.0);
  EXPECT_GE(s.post_seconds, 0.0);
  EXPECT_GE(s.overhead_fraction(), 0.0);
  EXPECT_LE(s.overhead_fraction(), 1.0);
}

TEST(Doacross, WaitStatsZeroWhenNoCrossIterationDeps) {
  // Odd L: no dependences at all -> no wait episodes.
  const gen::TestLoop tl = gen::make_test_loop({.n = 3000, .m = 5, .l = 7});
  ASSERT_EQ(gen::count_true_deps(tl), 0);
  std::vector<double> y = gen::make_initial_y(tl);
  core::DoacrossEngine<double> eng(pool(), tl.value_space);
  const auto s = eng.run(std::span<const index_t>(tl.a), std::span<double>(y),
                         [&tl](auto& it) { gen::test_loop_body(tl, it); });
  EXPECT_EQ(s.wait_episodes, 0u);
  EXPECT_EQ(s.wait_rounds, 0u);
}

TEST(Doacross, ValidateRejectsOutputDependence) {
  std::vector<index_t> writer = {0, 1, 1};  // duplicate target
  std::vector<double> y(4, 0.0);
  core::DoacrossEngine<double> eng(pool(), 4);
  core::DoacrossOptions opts;
  opts.validate = true;
  EXPECT_THROW(eng.run(writer, y, [](auto&) {}, opts), std::invalid_argument);
}

TEST(Doacross, ValidateRejectsWriterBeyondY) {
  std::vector<index_t> writer = {0, 1};
  std::vector<double> y(1, 0.0);  // writer offset 1 is out of y's extent
  core::DoacrossEngine<double> eng(pool(), 8);
  core::DoacrossOptions opts;
  opts.validate = true;
  EXPECT_THROW(eng.run(writer, y, [](auto&) {}, opts), std::invalid_argument);
}

TEST(Doacross, ArenaShrinksAndGrowsAcrossLoops) {
  // A big loop followed by a small one must both work on one engine.
  core::DoacrossEngine<double> eng(pool(), 4);
  std::vector<index_t> big_writer(256);
  std::iota(big_writer.begin(), big_writer.end(), index_t{0});
  std::vector<double> big_y(256, 1.0);
  eng.run(big_writer, big_y, [](auto& it) { it.lhs() += 1.0; });
  EXPECT_DOUBLE_EQ(big_y[255], 2.0);

  std::vector<index_t> small_writer = {0, 1, 2};
  std::vector<double> small_y(3, 5.0);
  eng.run(small_writer, small_y, [](auto& it) { it.lhs() += 1.0; });
  EXPECT_DOUBLE_EQ(small_y[2], 6.0);
}

TEST(Doacross, EmptyLoopIsANoop) {
  std::vector<index_t> writer;
  std::vector<double> y(4, 1.0);
  core::DoacrossEngine<double> eng(pool(), 4);
  const auto s = eng.run(writer, y, [](auto&) { FAIL(); });
  EXPECT_EQ(s.wait_episodes, 0u);
  for (double v : y) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Doacross, WorksWithFloatValues) {
  const index_t n = 128;
  std::vector<index_t> writer(n);
  std::iota(writer.begin(), writer.end(), index_t{0});
  std::vector<float> y(n, 0.5f);
  core::DoacrossEngine<float> eng(pool(), n);
  eng.run(std::span<const index_t>(writer), std::span<float>(y), [](auto& it) {
    const index_t i = it.index();
    if (i > 0) it.lhs() += it.read(i - 1);
  });
  EXPECT_FLOAT_EQ(y[0], 0.5f);
  EXPECT_FLOAT_EQ(y[1], 1.0f);
  EXPECT_FLOAT_EQ(y[2], 1.5f);
}

TEST(Doacross, SingleThreadPoolStillCorrect) {
  rt::ThreadPool serial(1);
  const gen::TestLoop tl = gen::make_test_loop({.n = 1000, .m = 2, .l = 4});
  std::vector<double> y_ref = gen::make_initial_y(tl);
  gen::run_test_loop_seq(tl, y_ref);
  std::vector<double> y_par = gen::make_initial_y(tl);
  core::DoacrossEngine<double> eng(serial, tl.value_space);
  eng.run(std::span<const index_t>(tl.a), std::span<double>(y_par),
          [&tl](auto& it) { gen::test_loop_body(tl, it); });
  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    ASSERT_EQ(y_ref[i], y_par[i]);
  }
}
