// Tests for plan-owned packed factor streams (DESIGN.md §10): the packed
// layout is bitwise identical to kCsrView and to the sequential Fig. 7
// solves across every strategy, thread count and batch shape; packed
// solves stay zero-allocation and one-dispatch (zero for serial); build
// pays exactly one extra pool dispatch for the first-touch packing pass;
// and telemetry records the layout decision with its byte cost.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "runtime/thread_pool.hpp"
#include "solve/batch_driver.hpp"
#include "solve/precond.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/trisolve.hpp"
#include "sparse/trisolve_plan.hpp"

namespace sp = pdx::sparse;
namespace gen = pdx::gen;
namespace solve = pdx::solve;
namespace rt = pdx::rt;
namespace core = pdx::core;
using pdx::index_t;

// --- global allocation probe -----------------------------------------
//
// The zero-allocation promise of packed solves is asserted by counting
// every route into the heap this binary has (plain, nothrow, and aligned
// operator new — the plan's scratch uses the aligned forms). Counters
// are relaxed atomics: the probe is read only while the pool is idle.
namespace {

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

void* operator new(std::size_t sz) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) { return ::operator new(sz); }
void* operator new(std::size_t sz, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (sz + static_cast<std::size_t>(al) - 1) /
                                       static_cast<std::size_t>(al) *
                                       static_cast<std::size_t>(al))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz, std::align_val_t al) {
  return ::operator new(sz, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

rt::ThreadPool& pool() {
  static rt::ThreadPool p(8);
  return p;
}

std::vector<double> random_columns(index_t n, index_t k, std::uint64_t seed) {
  gen::SplitMix64 rng(seed);
  std::vector<double> m(static_cast<std::size_t>(n * k));
  for (auto& v : m) v = rng.next_double(-1.0, 1.0);
  return m;
}

constexpr sp::ExecutionStrategy kStrategies[] = {
    sp::ExecutionStrategy::kSerial, sp::ExecutionStrategy::kDoacross,
    sp::ExecutionStrategy::kLevelBarrier,
    sp::ExecutionStrategy::kBlockedHybrid};

constexpr sp::BatchMode kModes[] = {sp::BatchMode::kColumnSequential,
                                    sp::BatchMode::kWavefrontInterleaved};

sp::PlanOptions plan_opts(sp::ExecutionStrategy s, unsigned nth,
                          sp::PlanLayout layout) {
  sp::PlanOptions o;
  o.nthreads = nth;
  o.strategy = s;
  o.layout = layout;
  return o;
}

}  // namespace

TEST(PackedLayout, FusedSolveBitwiseMatchesCsrViewAndSequential) {
  const sp::IluFactors f = sp::ilu0(gen::five_point(17, 19));
  const index_t n = f.l.rows;
  const auto rhs = random_columns(n, 1, 31);
  std::vector<double> t(static_cast<std::size_t>(n)),
      z_seq(static_cast<std::size_t>(n));
  sp::trisolve_lower_seq(f.l, rhs, t);
  sp::trisolve_upper_seq(f.u, t, z_seq);

  for (sp::ExecutionStrategy s : kStrategies) {
    for (unsigned nth : {1u, 2u, 4u}) {
      sp::TrisolvePlan packed(pool(), f.l, f.u,
                              plan_opts(s, nth, sp::PlanLayout::kPacked));
      sp::TrisolvePlan csr(pool(), f.l, f.u,
                           plan_opts(s, nth, sp::PlanLayout::kCsrView));
      ASSERT_EQ(packed.layout(), sp::PlanLayout::kPacked);
      ASSERT_EQ(csr.layout(), sp::PlanLayout::kCsrView);
      std::vector<double> z_p(static_cast<std::size_t>(n)),
          z_c(static_cast<std::size_t>(n));
      for (int epoch = 0; epoch < 3; ++epoch) {
        packed.solve(rhs, z_p);
        csr.solve(rhs, z_c);
        for (index_t i = 0; i < n; ++i) {
          ASSERT_EQ(z_seq[static_cast<std::size_t>(i)],
                    z_p[static_cast<std::size_t>(i)])
              << core::to_string(s) << " nth=" << nth << " epoch=" << epoch
              << " row " << i << " (packed vs sequential)";
          ASSERT_EQ(z_c[static_cast<std::size_t>(i)],
                    z_p[static_cast<std::size_t>(i)])
              << core::to_string(s) << " nth=" << nth << " epoch=" << epoch
              << " row " << i << " (packed vs csr-view)";
        }
      }
    }
  }
}

TEST(PackedLayout, LowerAndUpperSolvesBitwise) {
  const sp::IluFactors f = sp::ilu0(gen::seven_point(6, 7, 5));
  const index_t n = f.l.rows;
  const auto rhs = random_columns(n, 1, 32);
  std::vector<double> y_seq(static_cast<std::size_t>(n)),
      z_seq(static_cast<std::size_t>(n));
  sp::trisolve_lower_seq(f.l, rhs, y_seq);
  sp::trisolve_upper_seq(f.u, rhs, z_seq);

  for (sp::ExecutionStrategy s : kStrategies) {
    for (unsigned nth : {1u, 2u, 4u}) {
      sp::TrisolvePlan plan(pool(), f.l, f.u,
                            plan_opts(s, nth, sp::PlanLayout::kPacked));
      std::vector<double> y(static_cast<std::size_t>(n)),
          z(static_cast<std::size_t>(n));
      plan.solve_lower(rhs, y);
      plan.solve_upper(rhs, z);
      for (index_t i = 0; i < n; ++i) {
        ASSERT_EQ(y_seq[static_cast<std::size_t>(i)],
                  y[static_cast<std::size_t>(i)])
            << core::to_string(s) << " nth=" << nth << " lower row " << i;
        ASSERT_EQ(z_seq[static_cast<std::size_t>(i)],
                  z[static_cast<std::size_t>(i)])
            << core::to_string(s) << " nth=" << nth << " upper row " << i;
      }
    }
  }
}

TEST(PackedLayout, BatchSolvesBitwiseAcrossStrategiesModesAndK) {
  const sp::IluFactors f = sp::ilu0(gen::five_point(14, 14));
  const index_t n = f.l.rows;

  for (sp::ExecutionStrategy s : kStrategies) {
    for (unsigned nth : {1u, 2u, 4u}) {
      sp::TrisolvePlan packed(pool(), f.l, f.u,
                              plan_opts(s, nth, sp::PlanLayout::kPacked));
      sp::TrisolvePlan csr(pool(), f.l, f.u,
                           plan_opts(s, nth, sp::PlanLayout::kCsrView));
      for (index_t k : {index_t{1}, index_t{8}}) {
        const auto b = random_columns(n, k, 500 + static_cast<unsigned>(k));
        // Reference: k sequential fused solves.
        std::vector<double> x_ref(b.size()), t(static_cast<std::size_t>(n));
        for (index_t c = 0; c < k; ++c) {
          sp::trisolve_lower_seq(
              f.l,
              std::span<const double>(b.data() + c * n,
                                      static_cast<std::size_t>(n)),
              t);
          sp::trisolve_upper_seq(
              f.u, t,
              std::span<double>(x_ref.data() + c * n,
                                static_cast<std::size_t>(n)));
        }
        for (sp::BatchMode mode : kModes) {
          std::vector<double> x_p(b.size(), 0.0), x_c(b.size(), 0.0);
          packed.solve_batch(b, x_p, k, mode);
          csr.solve_batch(b, x_c, k, mode);
          for (index_t i = 0; i < n * k; ++i) {
            ASSERT_EQ(x_ref[static_cast<std::size_t>(i)],
                      x_p[static_cast<std::size_t>(i)])
                << core::to_string(s) << " nth=" << nth << " k=" << k
                << " mode=" << static_cast<int>(mode) << " at " << i
                << " (packed vs sequential)";
            ASSERT_EQ(x_c[static_cast<std::size_t>(i)],
                      x_p[static_cast<std::size_t>(i)])
                << core::to_string(s) << " nth=" << nth << " k=" << k
                << " mode=" << static_cast<int>(mode) << " at " << i
                << " (packed vs csr-view)";
          }
        }
      }
    }
  }
}

TEST(PackedLayout, PackedSolvesAreZeroAllocAndOneDispatch) {
  const sp::IluFactors f = sp::ilu0(gen::five_point(16, 16));
  const index_t n = f.l.rows;
  const index_t k = 4;
  const auto b = random_columns(n, k, 77);
  std::vector<double> x(b.size());

  for (sp::ExecutionStrategy s : kStrategies) {
    sp::TrisolvePlan plan(pool(), f.l, f.u,
                          plan_opts(s, 4, sp::PlanLayout::kPacked));
    plan.reserve_batch(k);
    // Warm-up grows nothing afterwards: scratch, flag tables and streams
    // are all build-time state.
    plan.solve(b, x);
    plan.solve_batch(b, x, k, sp::BatchMode::kWavefrontInterleaved);
    plan.solve_batch(b, x, k, sp::BatchMode::kColumnSequential);

    const std::uint64_t expected_dispatches =
        s == sp::ExecutionStrategy::kSerial ? 0u : 1u;
    const rt::DispatchProbe probe(pool());
    const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    plan.solve(b, x);
    const std::uint64_t alloc_solve =
        g_allocs.load(std::memory_order_relaxed) - a0;
    const std::uint64_t disp_solve = probe.delta();

    const rt::DispatchProbe probe2(pool());
    const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
    plan.solve_batch(b, x, k, sp::BatchMode::kWavefrontInterleaved);
    const std::uint64_t alloc_batch =
        g_allocs.load(std::memory_order_relaxed) - a1;
    const std::uint64_t disp_batch = probe2.delta();

    EXPECT_EQ(alloc_solve, 0u) << core::to_string(s);
    EXPECT_EQ(disp_solve, expected_dispatches) << core::to_string(s);
    EXPECT_EQ(alloc_batch, 0u) << core::to_string(s);
    EXPECT_EQ(disp_batch, expected_dispatches) << core::to_string(s);
  }
}

TEST(PackedLayout, BuildCostsExactlyOneExtraDispatchForParallelPlans) {
  const sp::IluFactors f = sp::ilu0(gen::five_point(12, 12));

  // Parallel strategies: the first-touch packing pass is ONE pool
  // dispatch covering BOTH factors; a kCsrView build dispatches nothing.
  for (sp::ExecutionStrategy s : {sp::ExecutionStrategy::kDoacross,
                                  sp::ExecutionStrategy::kLevelBarrier,
                                  sp::ExecutionStrategy::kBlockedHybrid}) {
    rt::DispatchProbe probe(pool());
    sp::TrisolvePlan packed(pool(), f.l, f.u,
                            plan_opts(s, 4, sp::PlanLayout::kPacked));
    EXPECT_EQ(probe.delta(), 1u) << core::to_string(s);
    probe.rebase();
    sp::TrisolvePlan csr(pool(), f.l, f.u,
                         plan_opts(s, 4, sp::PlanLayout::kCsrView));
    EXPECT_EQ(probe.delta(), 0u) << core::to_string(s);
  }
  // Serial plans pack inline: the calling thread is the executor, so
  // even the packing pass costs zero dispatches.
  rt::DispatchProbe probe(pool());
  sp::TrisolvePlan serial(
      pool(), f.l, f.u,
      plan_opts(sp::ExecutionStrategy::kSerial, 4, sp::PlanLayout::kPacked));
  EXPECT_EQ(probe.delta(), 0u);
  EXPECT_EQ(serial.layout(), sp::PlanLayout::kPacked);
}

TEST(PackedLayout, RecordLayoutKeeps32ByteAlignment) {
  // Compile-time record geometry (DESIGN.md §14): vals starts on a
  // four-word (32B) offset and every record is a whole number of 32B
  // groups, so record bases — and therefore vals — stay 32B-aligned for
  // the vector kernels given the slabs' cache-line alignment.
  using Stream = sp::PackedFactorStream;
  for (index_t cnt : {index_t{0}, index_t{1}, index_t{4}, index_t{5},
                      index_t{9}, index_t{100}}) {
    EXPECT_EQ(Stream::vals_offset_words(cnt) % 4, 0) << "cnt=" << cnt;
    EXPECT_GE(Stream::vals_offset_words(cnt), 3 + cnt) << "cnt=" << cnt;
    EXPECT_EQ(Stream::record_bytes(cnt) % 32, 0u) << "cnt=" << cnt;
    EXPECT_GE(Stream::record_bytes(cnt),
              static_cast<std::size_t>(Stream::vals_offset_words(cnt) + cnt) *
                  8)
        << "cnt=" << cnt;
  }

  // And at run time: every record's vals pointer in a packed factor is
  // 32B-aligned (nine-point rows mix widths, so tails are exercised).
  const sp::IluFactors f = sp::ilu0(gen::nine_point(9, 11));
  sp::PackedFactorStream stream;
  std::vector<index_t> rows(static_cast<std::size_t>(f.l.rows));
  for (index_t i = 0; i < f.l.rows; ++i) {
    rows[static_cast<std::size_t>(i)] = i;
  }
  stream.prepare(f.l, /*diag_first=*/false, {rows},
                 /*build_position_index=*/false);
  stream.pack(0);
  sp::PackedFactorStream::Cursor cur = stream.cursor(0);
  for (index_t i = 0; i < f.l.rows; ++i) {
    const sp::PackedRow r = cur.next();
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(r.vals) % 32, 0u)
        << "row " << r.row;
    EXPECT_EQ(r.row, i);
  }
}

TEST(PackedLayout, TelemetryRecordsLayoutAndBytes) {
  const sp::IluFactors f = sp::ilu0(gen::five_point(10, 10));
  sp::TrisolvePlan packed(pool(), f.l, f.u,
                          plan_opts(sp::ExecutionStrategy::kDoacross, 2,
                                    sp::PlanLayout::kPacked));
  EXPECT_EQ(packed.telemetry().layout, sp::PlanLayout::kPacked);
  // Streams carry every record plus per-record headers; they are at
  // least the size of the idx/val payload they fuse.
  const std::size_t payload =
      static_cast<std::size_t>(f.l.nnz() + f.u.nnz()) * sizeof(double);
  EXPECT_GE(packed.telemetry().packed_bytes, payload);
  EXPECT_EQ(packed.packed_bytes(), packed.telemetry().packed_bytes);

  sp::TrisolvePlan csr(pool(), f.l, f.u,
                       plan_opts(sp::ExecutionStrategy::kDoacross, 2,
                                 sp::PlanLayout::kCsrView));
  EXPECT_EQ(csr.telemetry().layout, sp::PlanLayout::kCsrView);
  EXPECT_EQ(csr.packed_bytes(), 0u);
}

TEST(PackedLayout, LayoutKnobThreadsThroughPreconditionerAndDriver) {
  const sp::Csr a = gen::five_point(15, 15);
  gen::SplitMix64 rng(91);
  std::vector<double> b(static_cast<std::size_t>(a.rows));
  for (auto& v : b) v = rng.next_double(-1.0, 1.0);

  // Same Krylov path bitwise under both layouts.
  std::vector<double> x_p(b.size(), 0.0), x_c(b.size(), 0.0);
  const auto rep_p = solve::pcg(
      a, b, x_p,
      solve::DoacrossIlu0Preconditioner{pool(), a, true, 0,
                                        sp::ExecutionStrategy::kAuto,
                                        sp::PlanLayout::kPacked});
  const auto rep_c = solve::pcg(
      a, b, x_c,
      solve::DoacrossIlu0Preconditioner{pool(), a, true, 0,
                                        sp::ExecutionStrategy::kAuto,
                                        sp::PlanLayout::kCsrView});
  EXPECT_TRUE(rep_p.converged);
  EXPECT_EQ(rep_p.iterations, rep_c.iterations);
  for (std::size_t i = 0; i < x_p.size(); ++i) ASSERT_EQ(x_p[i], x_c[i]) << i;

  // BatchDriver reports the layout decision alongside the strategy.
  solve::BatchDriverOptions dopts;
  dopts.layout = sp::PlanLayout::kPacked;
  solve::BatchDriver driver(pool(), a, dopts);
  std::vector<double> x(b.size(), 0.0);
  driver.enqueue(b, x);
  const solve::BatchReport rep = driver.drain();
  EXPECT_EQ(rep.layout, sp::PlanLayout::kPacked);
  EXPECT_GT(rep.packed_bytes, 0u);
}
