// Tests for the Figure 2 simple doacross (true dependences only).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/doconsider.hpp"
#include "core/simple_doacross.hpp"
#include "gen/rng.hpp"
#include "runtime/thread_pool.hpp"

namespace core = pdx::core;
namespace gen = pdx::gen;
namespace rt = pdx::rt;
using pdx::index_t;

namespace {

rt::ThreadPool& pool() {
  static rt::ThreadPool p(8);
  return p;
}

}  // namespace

TEST(SimpleDoacross, PrefixSums) {
  const index_t n = 2000;
  std::vector<double> y(n, 0.0);
  core::DenseReadyTable ready(n);
  const auto stats = core::simple_doacross(
      pool(), n, std::span<double>(y), ready, [](auto& it) {
        const index_t i = it.index();
        it.lhs() = (i > 0 ? it.read(i - 1) : 0.0) + 1.0;
      });
  for (index_t i = 0; i < n; ++i) {
    ASSERT_DOUBLE_EQ(y[static_cast<std::size_t>(i)],
                     static_cast<double>(i + 1));
  }
  EXPECT_EQ(stats.inspect_seconds, 0.0);  // Figure 2 has no inspector
}

TEST(SimpleDoacross, RandomFanInMatchesReference) {
  const index_t n = 3000;
  gen::SplitMix64 rng(8);
  // Each iteration reads up to 3 random earlier offsets.
  std::vector<std::vector<index_t>> reads(static_cast<std::size_t>(n));
  for (index_t i = 1; i < n; ++i) {
    const int k = static_cast<int>(rng.next_below(4));
    for (int r = 0; r < k; ++r) {
      reads[static_cast<std::size_t>(i)].push_back(rng.next_index(i));
    }
  }
  auto body = [&reads](auto& it) {
    const index_t i = it.index();
    double acc = it.read_own() + 1.0;
    for (index_t j : reads[static_cast<std::size_t>(i)]) {
      acc += 0.125 * it.read(j);
    }
    it.lhs() = acc;
  };

  std::vector<double> y_ref(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    y_ref[static_cast<std::size_t>(i)] = static_cast<double>(i % 7);
  }
  std::vector<double> y_par = y_ref;

  core::simple_doacross_reference(n, std::span<double>(y_ref), body);
  core::DenseReadyTable ready(n);
  core::SimpleDoacrossOptions opts;
  opts.schedule = rt::Schedule::dynamic(8);
  core::simple_doacross(pool(), n, std::span<double>(y_par), ready, body,
                        opts);
  for (index_t i = 0; i < n; ++i) {
    ASSERT_EQ(y_ref[static_cast<std::size_t>(i)],
              y_par[static_cast<std::size_t>(i)])
        << i;
  }
}

TEST(SimpleDoacross, ReorderedExecutionStillExact) {
  const index_t n = 1024;
  const index_t stride = 32;  // 32 interleaved chains
  auto body = [stride](auto& it) {
    const index_t i = it.index();
    it.lhs() = (i >= stride ? it.read(i - stride) : 0.0) + 1.0;
  };
  core::DepFn deps = [stride](index_t i, const core::DepVisitor& emit) {
    if (i >= stride) emit(i - stride);
  };
  const core::Reordering r = core::doconsider_order(n, deps);

  std::vector<double> y_ref(static_cast<std::size_t>(n), 0.0);
  core::simple_doacross_reference(n, std::span<double>(y_ref), body);

  std::vector<double> y_ord(static_cast<std::size_t>(n), 0.0);
  core::DenseReadyTable ready(n);
  core::SimpleDoacrossOptions opts;
  opts.order = r.order.data();
  core::simple_doacross(pool(), n, std::span<double>(y_ord), ready, body,
                        opts);
  EXPECT_EQ(y_ref, y_ord);
}

TEST(SimpleDoacross, ReadyTableReusedAcrossCalls) {
  const index_t n = 500;
  core::EpochReadyTable ready(n);
  for (int rep = 0; rep < 6; ++rep) {
    std::vector<double> y(static_cast<std::size_t>(n), 1.0);
    core::simple_doacross(pool(), n, std::span<double>(y), ready,
                          [](auto& it) {
                            const index_t i = it.index();
                            it.lhs() = (i > 0 ? it.read(i - 1) : 0.0) + 2.0;
                          });
    ASSERT_DOUBLE_EQ(y[static_cast<std::size_t>(n - 1)], 2.0 * n)
        << "rep " << rep;
  }
}

TEST(SimpleDoacross, EmptyAndUndersized) {
  core::DenseReadyTable ready(4);
  std::vector<double> y(4, 0.0);
  const auto s = core::simple_doacross(pool(), 0, std::span<double>(y),
                                       ready, [](auto&) { FAIL(); });
  EXPECT_EQ(s.wait_episodes, 0u);
  std::vector<double> tiny(2);
  EXPECT_THROW(core::simple_doacross(pool(), 4, std::span<double>(tiny),
                                     ready, [](auto&) {}),
               std::invalid_argument);
}

TEST(SimpleDoacross, IntegerValuesWork) {
  const index_t n = 256;
  std::vector<long> y(static_cast<std::size_t>(n), 0);
  core::DenseReadyTable ready(n);
  core::simple_doacross(pool(), n, std::span<long>(y), ready, [](auto& it) {
    const index_t i = it.index();
    it.lhs() = (i > 0 ? it.read(i - 1) : 0L) + static_cast<long>(i);
  });
  // y[i] = sum_{k<=i} k
  ASSERT_EQ(y[255], 255L * 256L / 2L);
}
