// Tests for the fork/join thread pool: region dispatch, participation,
// nesting of sequential fallbacks, exception propagation, parallel_for.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/aligned.hpp"
#include "runtime/failure.hpp"
#include "runtime/thread_pool.hpp"

namespace rt = pdx::rt;
using pdx::index_t;

TEST(ThreadPool, WidthDefaultsToHardware) {
  rt::ThreadPool pool;
  EXPECT_GE(pool.width(), 1u);
}

TEST(ThreadPool, WidthOneRunsInline) {
  rt::ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.parallel_region(1, [&](unsigned tid, unsigned nth) {
    EXPECT_EQ(tid, 0u);
    EXPECT_EQ(nth, 1u);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, AllMembersParticipateExactlyOnce) {
  rt::ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(8);
  for (auto& h : hits) h.store(0);
  pool.parallel_region(8, [&](unsigned tid, unsigned nth) {
    EXPECT_EQ(nth, 8u);
    hits[tid].fetch_add(1);
  });
  for (unsigned t = 0; t < 8; ++t) EXPECT_EQ(hits[t].load(), 1) << "tid " << t;
}

TEST(ThreadPool, NarrowerRegionUsesLowTids) {
  rt::ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(8);
  for (auto& h : hits) h.store(0);
  pool.parallel_region(3, [&](unsigned tid, unsigned nth) {
    EXPECT_EQ(nth, 3u);
    EXPECT_LT(tid, 3u);
    hits[tid].fetch_add(1);
  });
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[1].load(), 1);
  EXPECT_EQ(hits[2].load(), 1);
  for (unsigned t = 3; t < 8; ++t) EXPECT_EQ(hits[t].load(), 0);
}

TEST(ThreadPool, OversizedRequestClampsToWidth) {
  rt::ThreadPool pool(4);
  unsigned seen_width = 0;
  pool.parallel_region(64, [&](unsigned tid, unsigned nth) {
    if (tid == 0) seen_width = nth;
  });
  EXPECT_EQ(seen_width, 4u);
}

TEST(ThreadPool, ZeroThreadRequestMeansFullWidth) {
  rt::ThreadPool pool(4);
  unsigned seen_width = 0;
  pool.parallel_region(0, [&](unsigned tid, unsigned nth) {
    if (tid == 0) seen_width = nth;
  });
  EXPECT_EQ(seen_width, 4u);
}

TEST(ThreadPool, ManySequentialRegionsReuseWorkers) {
  rt::ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_region(4, [&](unsigned, unsigned) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200 * 4);
}

TEST(ThreadPool, DistinctThreadsBackEachMember) {
  rt::ThreadPool pool(4);
  std::vector<std::thread::id> ids(4);
  pool.parallel_region(4, [&](unsigned tid, unsigned) {
    ids[tid] = std::this_thread::get_id();
  });
  std::set<std::thread::id> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 4u);
}

TEST(ThreadPool, ExceptionFromWorkerPropagatesToCaller) {
  rt::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_region(4,
                           [&](unsigned tid, unsigned) {
                             if (tid == 2) throw std::runtime_error("boom");
                           }),
      std::runtime_error);
  // Pool must remain usable afterwards.
  std::atomic<int> ok{0};
  pool.parallel_region(4, [&](unsigned, unsigned) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPool, ExceptionFromCallerMemberPropagates) {
  rt::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_region(4,
                           [&](unsigned tid, unsigned) {
                             if (tid == 0) throw std::logic_error("caller");
                           }),
      std::logic_error);
}

TEST(ThreadPool, SurvivesRepeatedMemberExceptions) {
  // The fault-containment story leans on the pool staying reusable after
  // ANY member throws, round after round. Rotate the thrower across every
  // member and interleave a healthy full-width region each time.
  rt::ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    const unsigned thrower = static_cast<unsigned>(round) % 4;
    EXPECT_THROW(pool.parallel_region(
                     4,
                     [&](unsigned tid, unsigned) {
                       if (tid == thrower) {
                         throw std::runtime_error("round fault");
                       }
                     }),
                 std::runtime_error)
        << "round " << round;
    std::atomic<int> ok{0};
    pool.parallel_region(4, [&](unsigned, unsigned) { ok.fetch_add(1); });
    ASSERT_EQ(ok.load(), 4) << "round " << round;
  }
}

TEST(ThreadPool, AllMembersThrowingStillPropagatesAndRecovers) {
  rt::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_region(4,
                                    [&](unsigned, unsigned) {
                                      throw std::runtime_error("everybody");
                                    }),
               std::runtime_error);
  std::atomic<int> ok{0};
  pool.parallel_region(4, [&](unsigned, unsigned) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPool, ParallelForCoversAllIterationsOnce) {
  rt::ThreadPool pool(6);
  constexpr index_t n = 10007;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(n, 6, [&](index_t i) { hits[i].fetch_add(1); });
  for (index_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForEmptyAndSingleton) {
  rt::ThreadPool pool(4);
  int count = 0;
  pool.parallel_for(0, 4, [&](index_t) { ++count; });
  EXPECT_EQ(count, 0);
  pool.parallel_for(1, 4, [&](index_t i) {
    EXPECT_EQ(i, 0);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, ParallelForDynamicSchedule) {
  rt::ThreadPool pool(4);
  constexpr index_t n = 5000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(
      n, 4, [&](index_t i) { hits[i].fetch_add(1); },
      rt::Schedule::dynamic(16));
  for (index_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  rt::ThreadPool& a = rt::ThreadPool::global();
  rt::ThreadPool& b = rt::ThreadPool::global();
  EXPECT_EQ(&a, &b);
}

TEST(ThreadPool, ShutdownJoinsIdleWorkersAndRefusesNewRegions) {
  rt::ThreadPool pool(4);
  std::atomic<int> ok{0};
  pool.parallel_region(4, [&](unsigned, unsigned) { ok.fetch_add(1); });
  ASSERT_EQ(ok.load(), 4);

  pool.shutdown(std::chrono::milliseconds(1000));  // all idle: joins clean
  EXPECT_TRUE(pool.is_shutdown());
  EXPECT_THROW(pool.parallel_region(4, [&](unsigned, unsigned) {}),
               std::logic_error);
  // Idempotent: a second shutdown (and the destructor) are no-ops.
  pool.shutdown(std::chrono::milliseconds(0));
}

TEST(ThreadPool, ShutdownTimeoutThrowsInsteadOfHangingOnStuckWorker) {
  auto* pool = new rt::ThreadPool(2);
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::atomic<bool> worker_done{false};
  std::atomic<bool> caller_unblocked{false};

  // A caller thread drives a region where the non-caller member wedges in
  // an uninstrumented spin — the failure mode shutdown(timeout) exists
  // for. The caller member finishes its body but blocks in the region's
  // join, so from the outside the whole solve looks hung. The region fn
  // is a TEST-scope lvalue (not a temporary in the driver thread): the
  // abandoned worker keeps executing it after the driver unwinds, so it
  // must outlive the driver.
  const rt::ThreadPool::RegionFn fn = [&](unsigned tid, unsigned) {
    if (tid == 1) {
      entered.store(true, std::memory_order_release);
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      worker_done.store(true, std::memory_order_release);
    }
  };
  std::thread driver([&] {
    try {
      pool->parallel_region(2, fn);
    } catch (const rt::PoolShutdownError&) {
      // The abandon path must release this join — a region caller left
      // blocked forever would hang any service waiting on it (the exact
      // hang shutdown(timeout) exists to prevent).
      caller_unblocked.store(true, std::memory_order_release);
    }
  });
  while (!entered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  try {
    pool->shutdown(std::chrono::milliseconds(100));
    FAIL() << "shutdown must throw while a worker is stuck in a region";
  } catch (const rt::PoolShutdownError& e) {
    EXPECT_GE(e.stuck_workers(), 1u);
    EXPECT_NE(std::string(e.what()).find("still inside a parallel region"),
              std::string::npos);
  }
  EXPECT_TRUE(pool->is_shutdown());

  // The region caller must come back (with PoolShutdownError) even though
  // the wedged worker never finished — joinable without unwedging it.
  driver.join();
  EXPECT_TRUE(caller_unblocked.load(std::memory_order_acquire));

  // Now unwedge the detached worker and wait for it to leave the region
  // body before the test scope (which it captures) goes away. Workers
  // co-own the shared pool state, so dropping the pool object afterwards
  // is safe even though they were detached.
  release.store(true, std::memory_order_release);
  while (!worker_done.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  delete pool;
}

TEST(StallError, AddContextAnnotatesWhatAndPreservesDiagnostics) {
  rt::StallError e(/*row=*/41, /*waiting_on=*/40, /*epoch=*/3,
                   /*rounds=*/123456, "trisolve");
  const std::string before = e.what();
  EXPECT_NE(before.find("stall watchdog"), std::string::npos);
  EXPECT_NE(before.find("row 41"), std::string::npos);

  e.add_context("strategy doacross, matrix 7");
  const std::string after = e.what();
  EXPECT_NE(after.find(before), std::string::npos)
      << "original diagnostic must survive annotation";
  EXPECT_NE(after.find("[strategy doacross, matrix 7]"), std::string::npos);
  // Structured accessors are unchanged by the annotation.
  EXPECT_EQ(e.row(), 41);
  EXPECT_EQ(e.waiting_on(), 40);
  EXPECT_EQ(e.rounds(), 123456u);
  EXPECT_EQ(e.site(), "trisolve");
}

TEST(ThreadPool, ReductionAcrossMembersIsComplete) {
  rt::ThreadPool pool(8);
  constexpr index_t n = 100000;
  std::vector<pdx::rt::Padded<long>> partial(8);
  pool.parallel_region(8, [&](unsigned tid, unsigned nth) {
    const rt::IterRange r = rt::static_block_range(n, tid, nth);
    long s = 0;
    for (index_t i = r.begin; i < r.end; ++i) s += i;
    partial[tid].value = s;
  });
  long total = 0;
  for (const auto& p : partial) total += p.value;
  EXPECT_EQ(total, static_cast<long>(n) * (n - 1) / 2);
}
