// Tests for ILU(0): exactness on the stored pattern, structural shape of
// the factors, and behaviour on the paper's matrix families.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gen/block_operator.hpp"
#include "gen/stencil.hpp"
#include "sparse/dense.hpp"
#include "sparse/ilu0.hpp"

namespace sp = pdx::sparse;
namespace gen = pdx::gen;
using pdx::index_t;

namespace {

/// (L*U)(i,j) must equal A(i,j) at every STORED position of A — the
/// defining property of ILU(0).
void expect_pattern_exact(const sp::Csr& a, const sp::IluFactors& f,
                          double tol) {
  const sp::Dense dl = sp::Dense::from_csr(f.l);
  const sp::Dense du = sp::Dense::from_csr(f.u);
  const sp::Dense lu = dl.matmul(du);
  for (index_t r = 0; r < a.rows; ++r) {
    for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      const index_t c = a.idx[static_cast<std::size_t>(k)];
      EXPECT_NEAR(lu(r, c), a.val[static_cast<std::size_t>(k)], tol)
          << "entry (" << r << "," << c << ")";
    }
  }
}

}  // namespace

TEST(Ilu0, ExactOnTriangularInput) {
  // A lower-triangular A factors as L = A (unit-scaled) exactly.
  sp::CsrBuilder b(3, 3);
  b.add(0, 0, 2.0);
  b.add(1, 0, 1.0);
  b.add(1, 1, 4.0);
  b.add(2, 1, 2.0);
  b.add(2, 2, 8.0);
  const sp::Csr a = b.build();
  const sp::IluFactors f = sp::ilu0(a);
  expect_pattern_exact(a, f, 1e-12);
  // U must be diagonal here.
  for (index_t r = 0; r < 3; ++r) {
    EXPECT_EQ(f.u.row_nnz(r), 1);
  }
}

TEST(Ilu0, FactorsOfDenseSmallMatrixMatchFullLU) {
  // With a fully dense pattern, ILU(0) IS complete LU.
  sp::CsrBuilder b(3, 3);
  const double vals[3][3] = {{4, 1, 2}, {1, 5, 1}, {2, 1, 6}};
  for (index_t r = 0; r < 3; ++r) {
    for (index_t c = 0; c < 3; ++c) b.add(r, c, vals[r][c]);
  }
  const sp::Csr a = b.build();
  const sp::IluFactors f = sp::ilu0(a);
  expect_pattern_exact(a, f, 1e-12);
  // And the product matches everywhere, not just on the pattern.
  const sp::Dense lu =
      sp::Dense::from_csr(f.l).matmul(sp::Dense::from_csr(f.u));
  const sp::Dense da = sp::Dense::from_csr(a);
  EXPECT_LT(sp::Dense::max_abs_diff(lu, da), 1e-12);
}

TEST(Ilu0, StructuralShapeOfFactors) {
  const sp::Csr a = gen::five_point(8, 8);
  const sp::IluFactors f = sp::ilu0(a);
  EXPECT_TRUE(f.l.is_lower_triangular());
  EXPECT_TRUE(f.u.is_upper_triangular());
  EXPECT_NO_THROW(f.l.validate());
  EXPECT_NO_THROW(f.u.validate());
  for (index_t i = 0; i < f.l.rows; ++i) {
    // Unit diagonal stored last in each L row.
    const index_t last = f.l.row_end(i) - 1;
    EXPECT_EQ(f.l.idx[static_cast<std::size_t>(last)], i);
    EXPECT_DOUBLE_EQ(f.l.val[static_cast<std::size_t>(last)], 1.0);
    // U diagonal first and nonzero.
    const index_t first = f.u.row_begin(i);
    EXPECT_EQ(f.u.idx[static_cast<std::size_t>(first)], i);
    EXPECT_NE(f.u.val[static_cast<std::size_t>(first)], 0.0);
  }
  // Pattern split: |L| + |U| == |A| + n (the added unit diagonal).
  EXPECT_EQ(f.l.nnz() + f.u.nnz(), a.nnz() + a.rows);
}

TEST(Ilu0, PatternExactOnPoisson) {
  const sp::Csr a = gen::five_point(10, 10);
  expect_pattern_exact(a, sp::ilu0(a), 1e-10);
}

TEST(Ilu0, PatternExactOnBlockOperator) {
  const sp::Csr a = gen::block_seven_point(
      {.nx = 3, .ny = 3, .nz = 2, .block = 3, .seed = 7});
  expect_pattern_exact(a, sp::ilu0(a), 1e-9);
}

TEST(Ilu0, RejectsMissingDiagonal) {
  sp::CsrBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(1, 0, 1.0);  // no (1,1)
  const sp::Csr a = b.build();
  EXPECT_THROW(sp::ilu0(a), std::invalid_argument);
}

TEST(Ilu0, RejectsNonSquare) {
  sp::CsrBuilder b(2, 3);
  b.add(0, 0, 1.0);
  b.add(1, 1, 1.0);
  const sp::Csr a = b.build();
  EXPECT_THROW(sp::ilu0(a), std::invalid_argument);
}

TEST(Ilu0, ThrowsOnZeroPivot) {
  sp::CsrBuilder b(2, 2);
  b.add(0, 0, 0.0);  // zero pivot immediately
  b.add(0, 1, 1.0);
  b.add(1, 0, 1.0);
  b.add(1, 1, 1.0);
  const sp::Csr a = b.build();
  EXPECT_THROW(sp::ilu0(a), std::runtime_error);
}

TEST(Ilu0, DeterministicAcrossCalls) {
  const sp::Csr a = gen::matrix_spe5(123);
  const sp::IluFactors f1 = sp::ilu0(a);
  const sp::IluFactors f2 = sp::ilu0(a);
  ASSERT_EQ(f1.l.val.size(), f2.l.val.size());
  for (std::size_t i = 0; i < f1.l.val.size(); ++i) {
    EXPECT_EQ(f1.l.val[i], f2.l.val[i]);
  }
}
