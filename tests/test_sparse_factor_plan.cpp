// Tests for persistent ILU(0) factorization plans and value-only plan
// refresh (DESIGN.md §11): parallel numeric factorization is bitwise
// identical to the sequential ilu0() under every strategy and thread
// count; refresh_values leaves a plan bitwise identical to a full
// rebuild for both layouts and all four strategies; both stay inside
// their dispatch budgets and allocate nothing after construction; and
// pattern mismatches throw instead of corrupting plan state.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "runtime/thread_pool.hpp"
#include "solve/batch_driver.hpp"
#include "solve/cg.hpp"
#include "solve/precond.hpp"
#include "sparse/factor_plan.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/levels.hpp"
#include "sparse/trisolve.hpp"
#include "sparse/trisolve_plan.hpp"

namespace sp = pdx::sparse;
namespace gen = pdx::gen;
namespace solve = pdx::solve;
namespace rt = pdx::rt;
namespace core = pdx::core;
using pdx::index_t;

// --- global allocation probe -----------------------------------------
//
// Same idiom as test_sparse_packed.cpp: every route into the heap this
// binary has is counted, so the zero-allocation promises of factorize()
// and refresh_values() are machine-checked, not aspirational.
namespace {

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

void* operator new(std::size_t sz) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) { return ::operator new(sz); }
void* operator new(std::size_t sz, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (sz + static_cast<std::size_t>(al) - 1) /
                                       static_cast<std::size_t>(al) *
                                       static_cast<std::size_t>(al))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz, std::align_val_t al) {
  return ::operator new(sz, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

rt::ThreadPool& pool() {
  static rt::ThreadPool p(8);
  return p;
}

/// The time-stepping shape: same pattern, values perturbed smoothly and
/// kept diagonally dominant so every step's ILU(0) pivots stay healthy.
sp::Csr evolve_values(const sp::Csr& base, double t) {
  sp::Csr a = base;
  for (std::size_t k = 0; k < a.val.size(); ++k) {
    a.val[k] *= 1.0 + 0.2 * std::sin(0.7 * static_cast<double>(k) + t);
  }
  return a;
}

void expect_factors_bitwise(const sp::IluFactors& ref, const sp::IluFactors& f,
                            const char* what) {
  ASSERT_EQ(ref.l.ptr, f.l.ptr) << what;
  ASSERT_EQ(ref.l.idx, f.l.idx) << what;
  ASSERT_EQ(ref.u.ptr, f.u.ptr) << what;
  ASSERT_EQ(ref.u.idx, f.u.idx) << what;
  for (std::size_t k = 0; k < ref.l.val.size(); ++k) {
    ASSERT_EQ(ref.l.val[k], f.l.val[k]) << what << " L value " << k;
  }
  for (std::size_t k = 0; k < ref.u.val.size(); ++k) {
    ASSERT_EQ(ref.u.val[k], f.u.val[k]) << what << " U value " << k;
  }
}

std::vector<double> random_vec(index_t n, std::uint64_t seed) {
  gen::SplitMix64 rng(seed);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.next_double(-1.0, 1.0);
  return v;
}

constexpr sp::ExecutionStrategy kStrategies[] = {
    sp::ExecutionStrategy::kSerial, sp::ExecutionStrategy::kDoacross,
    sp::ExecutionStrategy::kLevelBarrier,
    sp::ExecutionStrategy::kBlockedHybrid};

sp::FactorPlanOptions factor_opts(sp::ExecutionStrategy s, unsigned nth) {
  sp::FactorPlanOptions o;
  o.nthreads = nth;
  o.strategy = s;
  return o;
}

sp::PlanOptions plan_opts(sp::ExecutionStrategy s, unsigned nth,
                          sp::PlanLayout layout) {
  sp::PlanOptions o;
  o.nthreads = nth;
  o.strategy = s;
  o.layout = layout;
  return o;
}

}  // namespace

TEST(FactorPlan, ParallelFactorizationBitwiseMatchesSequential) {
  for (const sp::Csr& base :
       {gen::five_point(17, 19), gen::seven_point(6, 7, 5)}) {
    for (sp::ExecutionStrategy s : kStrategies) {
      for (unsigned nth : {1u, 2u, 4u}) {
        sp::FactorPlan plan(pool(), base, factor_opts(s, nth));
        ASSERT_EQ(plan.strategy(), s);
        sp::IluFactors f = plan.allocate_factors();
        // Several epochs through one plan, evolving values each time —
        // every numeric pass must reproduce ilu0() exactly.
        for (int step = 0; step < 3; ++step) {
          const sp::Csr a = evolve_values(base, 0.3 * step);
          const sp::IluFactors ref = sp::ilu0(a);
          plan.factorize(a, f);
          expect_factors_bitwise(ref, f, core::to_string(s));
        }
        EXPECT_EQ(plan.factorizations(), 3u);
      }
    }
  }
}

TEST(FactorPlan, FactorizeOverwritesAnIlu0Result) {
  // The factors ilu0() emits share the split pattern allocate_factors()
  // produces, so a plan can re-fill them in place — the preconditioner's
  // refactor path.
  const sp::Csr base = gen::five_point(13, 11);
  sp::IluFactors f = sp::ilu0(base);
  sp::FactorPlan plan(pool(), base,
                      factor_opts(sp::ExecutionStrategy::kDoacross, 4));
  const sp::Csr a1 = evolve_values(base, 1.0);
  plan.factorize(a1, f);
  expect_factors_bitwise(sp::ilu0(a1), f, "ilu0-allocated factors");
}

TEST(FactorPlan, AutoConsultsTheFactorAdvisor) {
  const sp::Csr a = gen::five_point(24, 24);
  // Calibration off: this test asserts the heuristic opening bid itself.
  sp::FactorPlanOptions aopts = factor_opts(sp::ExecutionStrategy::kAuto, 4);
  aopts.calibration_epochs = 0;
  sp::FactorPlan plan(pool(), a, aopts);
  const core::ScheduleAdvice advice = core::advise_factor_schedule(
      sp::measure_lower_solve(a), 4);
  EXPECT_EQ(plan.strategy(), advice.strategy);
  EXPECT_EQ(plan.telemetry().requested, sp::ExecutionStrategy::kAuto);
  EXPECT_EQ(plan.telemetry().rationale, advice.rationale);
  EXPECT_GT(plan.telemetry().structure.n, 0);
  EXPECT_GT(plan.telemetry().symbolic_bytes, 0u);
  // factor_bytes reports the Csr::memory_bytes() footprint of the pair
  // allocate_factors() hands out.
  const sp::IluFactors f = plan.allocate_factors();
  EXPECT_EQ(plan.telemetry().factor_bytes,
            f.l.memory_bytes() + f.u.memory_bytes());
}

TEST(FactorPlan, CalibrationRacesFactorizationsAndCacheSkipsSecondRace) {
  // The factor-side calibration race (DESIGN.md §13): exploration
  // factorizations stay bitwise identical to ilu0(), the plan locks in
  // after its budget, and a second plan over the same pattern hits the
  // process-wide cache (under the factor=true fingerprint) with zero
  // exploration epochs.
  core::tuning_cache().clear();
  const sp::Csr base = gen::five_point(16, 16);
  const sp::FactorPlanOptions o = factor_opts(sp::ExecutionStrategy::kAuto, 4);
  sp::FactorPlan plan(pool(), base, o);
  ASSERT_TRUE(plan.calibrating());
  ASSERT_NE(plan.strategy(), sp::ExecutionStrategy::kAuto);
  sp::IluFactors f = plan.allocate_factors();

  const std::size_t budget =
      plan.telemetry().race.timings.size() *
      static_cast<std::size_t>(o.calibration_epochs);
  std::size_t epochs = 0;
  while (plan.calibrating()) {
    ASSERT_LT(epochs, budget) << "race must lock in after its budget";
    const sp::Csr a = evolve_values(base, 0.1 * static_cast<double>(epochs));
    plan.factorize(a, f);
    expect_factors_bitwise(sp::ilu0(a), f, "exploration factorization");
    ++epochs;
  }
  EXPECT_EQ(epochs, budget);
  EXPECT_TRUE(plan.telemetry().race.calibrated);
  EXPECT_FALSE(plan.telemetry().race.cache_hit);

  sp::FactorPlan second(pool(), base, o);
  EXPECT_FALSE(second.calibrating());
  EXPECT_TRUE(second.telemetry().race.cache_hit);
  EXPECT_EQ(second.telemetry().race.exploration_epochs, 0);
  EXPECT_EQ(second.strategy(), plan.strategy());
  // Locked-in and cache-hit plans still factor bitwise.
  const sp::Csr a = evolve_values(base, 1.7);
  sp::IluFactors f2 = second.allocate_factors();
  second.factorize(a, f2);
  expect_factors_bitwise(sp::ilu0(a), f2, "cache-hit factorization");
  core::tuning_cache().clear();
}

TEST(FactorPlan, FactorizeIsZeroAllocWithinDispatchBudget) {
  const sp::Csr base = gen::five_point(16, 16);
  for (sp::ExecutionStrategy s : kStrategies) {
    sp::FactorPlan plan(pool(), base, factor_opts(s, 4));
    sp::IluFactors f = plan.allocate_factors();
    const sp::Csr a = evolve_values(base, 0.5);
    plan.factorize(a, f);  // warm-up: every epoch after this is steady state

    const std::uint64_t expected_dispatches =
        s == sp::ExecutionStrategy::kSerial ? 0u : 1u;
    const rt::DispatchProbe probe(pool());
    const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    plan.factorize(a, f);
    const std::uint64_t allocs =
        g_allocs.load(std::memory_order_relaxed) - a0;
    EXPECT_EQ(allocs, 0u) << core::to_string(s);
    EXPECT_EQ(probe.delta(), expected_dispatches) << core::to_string(s);
  }
}

TEST(FactorPlan, PatternMismatchThrows) {
  const sp::Csr a = gen::five_point(12, 12);
  const sp::Csr other = gen::five_point(12, 13);
  sp::FactorPlan plan(pool(), a,
                      factor_opts(sp::ExecutionStrategy::kSerial, 1));
  sp::IluFactors f = plan.allocate_factors();
  EXPECT_THROW(plan.factorize(other, f), std::invalid_argument);
  // Wrong-pattern factors are rejected too.
  sp::IluFactors wrong = sp::ilu0(other);
  EXPECT_THROW(plan.factorize(a, wrong), std::invalid_argument);
  // Factors whose per-row split COUNTS coincide but whose columns differ
  // must also be rejected — writing through the wrong columns would
  // corrupt silently. Rows: {0}, {0,1}, {1,2} vs {0}, {0,1}, {0,2}.
  {
    sp::CsrBuilder ba(3, 3), bb(3, 3);
    for (auto* b : {&ba, &bb}) {
      b->add(0, 0, 4.0);
      b->add(1, 0, -1.0);
      b->add(1, 1, 4.0);
      b->add(2, 2, 4.0);
    }
    ba.add(2, 1, -1.0);
    bb.add(2, 0, -1.0);
    const sp::Csr ma = ba.build(), mb = bb.build();
    sp::FactorPlan pb(pool(), mb,
                      factor_opts(sp::ExecutionStrategy::kSerial, 1));
    sp::IluFactors fa = sp::ilu0(ma);
    ASSERT_EQ(fa.l.ptr, pb.allocate_factors().l.ptr);  // counts coincide
    EXPECT_THROW(pb.factorize(mb, fa), std::invalid_argument);
  }
  // And the plan stays usable after a rejected call.
  plan.factorize(a, f);
  expect_factors_bitwise(sp::ilu0(a), f, "after rejected factorize");
}

TEST(FactorPlan, BadPivotThrowsAfterTheRegionCompletes) {
  // A(1,1) eliminates to exactly zero: u11 = 1 - 1*1. The sequential
  // loop throws at row 1; the parallel plan must report the same row
  // without deadlocking peers.
  sp::CsrBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 1, 1.0);
  b.add(1, 0, 1.0);
  b.add(1, 1, 1.0);
  const sp::Csr a = b.build();
  EXPECT_THROW(sp::ilu0(a), std::runtime_error);
  for (sp::ExecutionStrategy s : kStrategies) {
    sp::FactorPlan plan(pool(), a, factor_opts(s, 2));
    sp::IluFactors f = plan.allocate_factors();
    EXPECT_THROW(plan.factorize(a, f), std::runtime_error)
        << core::to_string(s);
  }
}

TEST(TrisolvePlanRefresh, BitwiseMatchesFullRebuildAcrossStrategiesAndLayouts) {
  const sp::Csr base = gen::five_point(15, 17);
  const index_t n = base.rows;
  const auto rhs = random_vec(n, 41);
  for (sp::ExecutionStrategy s : kStrategies) {
    for (sp::PlanLayout layout :
         {sp::PlanLayout::kPacked, sp::PlanLayout::kCsrView}) {
      // Build the plan over step 0's values, then step the values twice:
      // each refresh must leave the plan solving exactly like a plan
      // freshly built over the new factors.
      sp::IluFactors f = sp::ilu0(base);
      sp::TrisolvePlan plan(pool(), f.l, f.u, plan_opts(s, 4, layout));
      sp::FactorPlan fact(pool(), base, factor_opts(s, 4));
      for (int step = 1; step <= 2; ++step) {
        const sp::Csr a = evolve_values(base, 0.4 * step);
        fact.factorize(a, f);
        plan.refresh_values(f);
        sp::IluFactors f2 = sp::ilu0(a);
        sp::TrisolvePlan rebuilt(pool(), f2.l, f2.u,
                                 plan_opts(s, 4, layout));
        std::vector<double> z_r(static_cast<std::size_t>(n)),
            z_f(static_cast<std::size_t>(n));
        plan.solve(rhs, z_r);
        rebuilt.solve(rhs, z_f);
        for (index_t i = 0; i < n; ++i) {
          ASSERT_EQ(z_f[static_cast<std::size_t>(i)],
                    z_r[static_cast<std::size_t>(i)])
              << core::to_string(s) << " " << sp::to_string(layout)
              << " step " << step << " row " << i;
        }
      }
      EXPECT_EQ(plan.refreshes(), 2u);
      EXPECT_GE(plan.telemetry().refresh_ms, 0.0);
    }
  }
}

TEST(TrisolvePlanRefresh, RefreshIsZeroAllocWithinDispatchBudget) {
  const sp::Csr base = gen::five_point(16, 16);
  for (sp::ExecutionStrategy s : kStrategies) {
    for (sp::PlanLayout layout :
         {sp::PlanLayout::kPacked, sp::PlanLayout::kCsrView}) {
      sp::IluFactors f = sp::ilu0(base);
      sp::TrisolvePlan plan(pool(), f.l, f.u, plan_opts(s, 4, layout));
      plan.refresh_values(f);  // warm-up

      // Budget: one dispatch re-streams both factors' slabs for a
      // parallel packed plan; serial plans repack inline and kCsrView is
      // a pointer swap — zero dispatches either way.
      const bool parallel_packed = layout == sp::PlanLayout::kPacked &&
                                   s != sp::ExecutionStrategy::kSerial;
      const rt::DispatchProbe probe(pool());
      const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
      plan.refresh_values(f);
      const std::uint64_t allocs =
          g_allocs.load(std::memory_order_relaxed) - a0;
      EXPECT_EQ(allocs, 0u)
          << core::to_string(s) << " " << sp::to_string(layout);
      EXPECT_EQ(probe.delta(), parallel_packed ? 1u : 0u)
          << core::to_string(s) << " " << sp::to_string(layout);
    }
  }
}

TEST(TrisolvePlanRefresh, PatternMismatchThrows) {
  const sp::Csr a = gen::five_point(12, 12);
  sp::IluFactors f = sp::ilu0(a);
  sp::TrisolvePlan plan(pool(), f.l, f.u);
  sp::IluFactors other = sp::ilu0(gen::five_point(12, 13));
  EXPECT_THROW(plan.refresh_values(other), std::invalid_argument);
  // A rejected refresh leaves the plan bound to its original factors.
  const index_t n = a.rows;
  const auto rhs = random_vec(n, 9);
  std::vector<double> t(static_cast<std::size_t>(n)),
      z_seq(static_cast<std::size_t>(n)), z(static_cast<std::size_t>(n));
  sp::trisolve_lower_seq(f.l, rhs, t);
  sp::trisolve_upper_seq(f.u, t, z_seq);
  plan.solve(rhs, z);
  for (index_t i = 0; i < n; ++i) {
    ASSERT_EQ(z_seq[static_cast<std::size_t>(i)],
              z[static_cast<std::size_t>(i)]);
  }
}

TEST(TrisolvePlanRefresh, ForeignFactorsWithEqualPatternAreAdopted) {
  // kCsrView refresh is a pointer swap: a *different* IluFactors object
  // with the identical pattern is legal, and subsequent solves read the
  // new object's values.
  const sp::Csr base = gen::five_point(10, 10);
  sp::IluFactors f0 = sp::ilu0(base);
  sp::TrisolvePlan plan(pool(), f0.l, f0.u,
                        plan_opts(sp::ExecutionStrategy::kDoacross, 2,
                                  sp::PlanLayout::kCsrView));
  const sp::Csr a1 = evolve_values(base, 2.0);
  sp::IluFactors f1 = sp::ilu0(a1);
  plan.refresh_values(f1);
  const index_t n = base.rows;
  const auto rhs = random_vec(n, 77);
  std::vector<double> t(static_cast<std::size_t>(n)),
      z_seq(static_cast<std::size_t>(n)), z(static_cast<std::size_t>(n));
  sp::trisolve_lower_seq(f1.l, rhs, t);
  sp::trisolve_upper_seq(f1.u, t, z_seq);
  plan.solve(rhs, z);
  for (index_t i = 0; i < n; ++i) {
    ASSERT_EQ(z_seq[static_cast<std::size_t>(i)],
              z[static_cast<std::size_t>(i)]);
  }
}

TEST(Refactor, PreconditionerRefactorMatchesFreshBitwise) {
  const sp::Csr base = gen::five_point(14, 14);
  const index_t n = base.rows;
  const auto r = random_vec(n, 5);
  rt::ThreadPool& p = pool();
  solve::DoacrossIlu0Preconditioner stepped(p, base);
  EXPECT_EQ(stepped.factor_plan(), nullptr);
  for (int step = 1; step <= 3; ++step) {
    const sp::Csr a = evolve_values(base, 0.6 * step);
    stepped.refactor(a);
    solve::DoacrossIlu0Preconditioner fresh(p, a);
    std::vector<double> z_s(static_cast<std::size_t>(n)),
        z_f(static_cast<std::size_t>(n));
    stepped.apply(r, z_s);
    fresh.apply(r, z_f);
    for (index_t i = 0; i < n; ++i) {
      ASSERT_EQ(z_f[static_cast<std::size_t>(i)],
                z_s[static_cast<std::size_t>(i)])
          << "step " << step << " row " << i;
    }
  }
  ASSERT_NE(stepped.factor_plan(), nullptr);
  EXPECT_EQ(stepped.factor_plan()->factorizations(), 3u);
  EXPECT_EQ(stepped.plan().refreshes(), 3u);
  // Telemetry carries the refactor decision and costs.
  EXPECT_NE(stepped.plan().telemetry().factor_strategy,
            sp::ExecutionStrategy::kAuto);
  EXPECT_GE(stepped.plan().telemetry().factor_ms, 0.0);
  EXPECT_THROW(stepped.refactor(gen::five_point(14, 15)),
               std::invalid_argument);
}

TEST(Refactor, BatchDriverHookForwardsTelemetryAndStaysBitwise) {
  const sp::Csr base = gen::five_point(13, 13);
  const index_t n = base.rows;
  const auto b = random_vec(n, 23);
  rt::ThreadPool& p = pool();

  solve::BatchDriver driver(p, base);
  std::vector<double> x0(static_cast<std::size_t>(n), 0.0);
  driver.enqueue(b, x0);
  // Refactor with systems queued is a protocol error.
  const sp::Csr a1 = evolve_values(base, 1.3);
  EXPECT_THROW(driver.refactor(a1), std::logic_error);
  driver.drain();

  driver.refactor(a1);
  std::vector<double> x_s(static_cast<std::size_t>(n), 0.0);
  driver.enqueue(b, x_s);
  const solve::BatchReport rep = driver.drain();
  EXPECT_EQ(rep.converged, rep.jobs);
  EXPECT_NE(rep.factor_strategy, sp::ExecutionStrategy::kAuto);
  EXPECT_GE(rep.factor_ms, 0.0);
  EXPECT_GE(rep.refresh_ms, 0.0);

  // Bitwise identical to a driver built from scratch over a1.
  solve::BatchDriver fresh(p, a1);
  std::vector<double> x_f(static_cast<std::size_t>(n), 0.0);
  fresh.enqueue(b, x_f);
  fresh.drain();
  for (index_t i = 0; i < n; ++i) {
    ASSERT_EQ(x_f[static_cast<std::size_t>(i)],
              x_s[static_cast<std::size_t>(i)])
        << "row " << i;
  }
}

TEST(Ilu0, ExactReservationAndSplitPattern) {
  const sp::Csr a = gen::seven_point(5, 6, 4);
  const sp::IluFactors f = sp::ilu0(a);
  // The counted split allocates every array exactly once at final size.
  EXPECT_EQ(f.l.idx.capacity(), f.l.idx.size());
  EXPECT_EQ(f.l.val.capacity(), f.l.val.size());
  EXPECT_EQ(f.u.idx.capacity(), f.u.idx.size());
  EXPECT_EQ(f.u.val.capacity(), f.u.val.size());
  EXPECT_EQ(f.l.nnz() + f.u.nnz(), a.nnz() + a.rows);
  f.l.validate();
  f.u.validate();
  EXPECT_TRUE(f.l.is_lower_triangular());
  EXPECT_TRUE(f.u.is_upper_triangular());
  for (index_t i = 0; i < a.rows; ++i) {
    EXPECT_EQ(f.l.val[static_cast<std::size_t>(f.l.row_end(i) - 1)], 1.0);
  }
}
