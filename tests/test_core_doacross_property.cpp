// Property suite: for ANY randomly generated irregular loop, the parallel
// preprocessed doacross must reproduce the sequential reference bitwise —
// across seeds, shapes, schedules, thread counts, and ready-table kinds.
// This is the paper's central correctness claim under randomized attack.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/doacross.hpp"
#include "gen/random_loop.hpp"
#include "runtime/thread_pool.hpp"

namespace core = pdx::core;
namespace gen = pdx::gen;
namespace rt = pdx::rt;
using pdx::index_t;

namespace {

rt::ThreadPool& pool() {
  static rt::ThreadPool p(8);
  return p;
}

void expect_parallel_matches_reference(const gen::RandomLoop& rl,
                                       const core::DoacrossOptions& opts,
                                       const std::string& label) {
  std::vector<double> y_ref = rl.y0;
  gen::run_random_loop_seq(rl, y_ref);

  std::vector<double> y_par = rl.y0;
  core::DoacrossEngine<double> eng(pool(), rl.value_space);
  eng.run(std::span<const index_t>(rl.writer), std::span<double>(y_par),
          [&rl](auto& it) { gen::random_loop_body(rl, it); }, opts);

  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    ASSERT_EQ(y_ref[i], y_par[i]) << label << " offset " << i;
  }
}

}  // namespace

struct PropertyCase {
  gen::RandomLoopParams params;
  std::uint64_t seed;
  rt::Schedule sched;
  unsigned nthreads;
};

class RandomLoopSweep : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(RandomLoopSweep, ParallelEqualsSequential) {
  const PropertyCase& c = GetParam();
  const gen::RandomLoop rl = gen::make_random_loop(c.params, c.seed);
  core::DoacrossOptions opts;
  opts.schedule = c.sched;
  opts.nthreads = c.nthreads;
  opts.validate = true;
  expect_parallel_matches_reference(
      rl, opts, "seed=" + std::to_string(c.seed));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSchedules, RandomLoopSweep,
    ::testing::Values(
        // Dense dependences, small space: lots of waiting.
        PropertyCase{{.n = 400, .value_space = 500, .min_reads = 1,
                      .max_reads = 6, .dep_bias = 0.9},
                     1, rt::Schedule::static_block(), 8},
        PropertyCase{{.n = 400, .value_space = 500, .min_reads = 1,
                      .max_reads = 6, .dep_bias = 0.9},
                     2, rt::Schedule::static_cyclic(1), 8},
        PropertyCase{{.n = 400, .value_space = 500, .min_reads = 1,
                      .max_reads = 6, .dep_bias = 0.9},
                     3, rt::Schedule::dynamic(8), 8},
        // Sparse dependences, big space: mostly never-written reads.
        PropertyCase{{.n = 1000, .value_space = 10000, .min_reads = 0,
                      .max_reads = 3, .dep_bias = 0.2},
                     4, rt::Schedule::static_block(), 4},
        PropertyCase{{.n = 1000, .value_space = 10000, .min_reads = 0,
                      .max_reads = 3, .dep_bias = 0.2},
                     5, rt::Schedule::dynamic(0), 8},
        // All reads biased to written offsets (true-dep heavy).
        PropertyCase{{.n = 2000, .value_space = 2000, .min_reads = 2,
                      .max_reads = 2, .dep_bias = 1.0},
                     6, rt::Schedule::static_cyclic(16), 8},
        // Tiny loops and degenerate widths.
        PropertyCase{{.n = 1, .value_space = 4, .min_reads = 0,
                      .max_reads = 2, .dep_bias = 0.5},
                     7, rt::Schedule::static_block(), 8},
        PropertyCase{{.n = 17, .value_space = 17, .min_reads = 1,
                      .max_reads = 4, .dep_bias = 0.7},
                     8, rt::Schedule::dynamic(1), 3},
        // More threads than iterations.
        PropertyCase{{.n = 5, .value_space = 50, .min_reads = 1,
                      .max_reads = 3, .dep_bias = 0.5},
                     9, rt::Schedule::static_block(), 8}));

class SeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweep, ManySeedsAllSchedules) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  gen::RandomLoopParams p{.n = 600, .value_space = 900, .min_reads = 0,
                          .max_reads = 5, .dep_bias = 0.6};
  const gen::RandomLoop rl = gen::make_random_loop(p, seed);
  for (const auto& sched :
       {rt::Schedule::static_block(), rt::Schedule::static_cyclic(4),
        rt::Schedule::dynamic(16)}) {
    core::DoacrossOptions opts;
    opts.schedule = sched;
    expect_parallel_matches_reference(
        rl, opts, "seed=" + std::to_string(seed) + " " + rt::to_string(sched));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range(100, 120));

TEST(RandomLoopProperty, EpochReadyTableMatchesReferenceOverReusedRuns) {
  gen::RandomLoopParams p{.n = 800, .value_space = 1200, .min_reads = 1,
                          .max_reads = 4, .dep_bias = 0.7};
  const gen::RandomLoop rl = gen::make_random_loop(p, 321);

  // Apply the loop three times in a row (reusing the epoch arenas) and
  // compare against three sequential applications.
  std::vector<double> y_ref = rl.y0;
  std::vector<double> y_epoch = rl.y0;
  core::DoacrossEngine<double, core::EpochReadyTable> eng(pool(),
                                                          rl.value_space);
  for (int loop = 0; loop < 3; ++loop) {
    gen::run_random_loop_seq(rl, y_ref);
    eng.run(std::span<const index_t>(rl.writer), std::span<double>(y_epoch),
            [&rl](auto& it) { gen::random_loop_body(rl, it); });
  }
  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    ASSERT_EQ(y_ref[i], y_epoch[i]) << i;
  }
}

TEST(RandomLoopProperty, PaddedReadyTableMatchesDense) {
  gen::RandomLoopParams p{.n = 500, .value_space = 800, .min_reads = 1,
                          .max_reads = 4, .dep_bias = 0.8};
  const gen::RandomLoop rl = gen::make_random_loop(p, 9000);
  std::vector<double> y_ref = rl.y0;
  gen::run_random_loop_seq(rl, y_ref);

  std::vector<double> y_pad = rl.y0;
  core::DoacrossEngine<double, core::PaddedReadyTable> eng(pool(),
                                                           rl.value_space);
  eng.run(std::span<const index_t>(rl.writer), std::span<double>(y_pad),
          [&rl](auto& it) { gen::random_loop_body(rl, it); });
  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    ASSERT_EQ(y_ref[i], y_pad[i]) << i;
  }
}

TEST(RandomLoopProperty, RepeatedRunsAreDeterministic) {
  gen::RandomLoopParams p{.n = 700, .value_space = 1000, .min_reads = 1,
                          .max_reads = 5, .dep_bias = 0.75};
  const gen::RandomLoop rl = gen::make_random_loop(p, 555);
  core::DoacrossEngine<double> eng(pool(), rl.value_space);

  std::vector<double> first;
  for (int rep = 0; rep < 5; ++rep) {
    std::vector<double> y = rl.y0;
    eng.run(std::span<const index_t>(rl.writer), std::span<double>(y),
            [&rl](auto& it) { gen::random_loop_body(rl, it); });
    if (rep == 0) {
      first = y;
    } else {
      for (std::size_t i = 0; i < y.size(); ++i) {
        ASSERT_EQ(first[i], y[i]) << "rep " << rep << " offset " << i;
      }
    }
  }
}
