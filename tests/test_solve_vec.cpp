// Tests for the dense vector kernels under the Krylov solvers.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "solve/vec.hpp"

namespace solve = pdx::solve;

TEST(Vec, DotBasics) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {4, -5, 6};
  EXPECT_DOUBLE_EQ(solve::dot(a, b), 4 - 10 + 18);
  EXPECT_DOUBLE_EQ(solve::dot(a, a), 14.0);
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(solve::dot(empty, empty), 0.0);
}

TEST(Vec, Norm2MatchesHandComputation) {
  const std::vector<double> a = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(solve::norm2(a), 5.0);
  const std::vector<double> zero(10, 0.0);
  EXPECT_DOUBLE_EQ(solve::norm2(zero), 0.0);
}

TEST(Vec, AxpyAccumulates) {
  const std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {10, 20, 30};
  solve::axpy(2.0, x, y);
  EXPECT_EQ(y, (std::vector<double>{12, 24, 36}));
  solve::axpy(0.0, x, y);
  EXPECT_EQ(y, (std::vector<double>{12, 24, 36}));
  solve::axpy(-1.0, y, y);  // aliased self-cancel
  EXPECT_EQ(y, (std::vector<double>{0, 0, 0}));
}

TEST(Vec, XpbyFormsCgDirectionUpdate) {
  const std::vector<double> x = {1, 1};
  std::vector<double> y = {4, 6};
  solve::xpby(x, 0.5, y);  // y = x + 0.5 y
  EXPECT_EQ(y, (std::vector<double>{3, 4}));
}

TEST(Vec, ScaleCopyFill) {
  std::vector<double> v = {1, -2, 4};
  solve::scale(-2.0, v);
  EXPECT_EQ(v, (std::vector<double>{-2, 4, -8}));

  std::vector<double> dst(3, 0.0);
  solve::copy(v, dst);
  EXPECT_EQ(dst, v);

  solve::fill(dst, 7.5);
  EXPECT_EQ(dst, (std::vector<double>{7.5, 7.5, 7.5}));
}
